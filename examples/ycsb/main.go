// YCSB example: run the paper's workload mixes against the Cuckoo Trie and
// print throughput — a miniature of Figure 7's evaluation loop.
package main

import (
	"fmt"
	"time"

	cuckootrie "repro"
	"repro/internal/dataset"
	"repro/internal/ycsb"
)

func main() {
	const n = 100_000
	keys := dataset.Generate(dataset.Rand8, n, 1)
	for _, wl := range []ycsb.Workload{ycsb.A, ycsb.B, ycsb.C, ycsb.F} {
		t := cuckootrie.New(cuckootrie.Config{CapacityHint: n, AutoResize: true})
		if _, err := ycsb.LoadPhase(t, keys); err != nil {
			panic(err)
		}
		g := ycsb.NewGenerator(wl, ycsb.Uniform, keys, n, 42)
		start := time.Now()
		done := g.Run(t, n)
		d := time.Since(start)
		fmt.Printf("YCSB-%s: %d ops in %v (%.2f Mops/s)\n",
			wl, done, d.Round(time.Millisecond), float64(done)/d.Seconds()/1e6)
	}
}
