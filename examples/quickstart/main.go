// Quickstart: the Cuckoo Trie as an ordered map — point operations, ordered
// iteration, predecessor/successor queries.
package main

import (
	"fmt"
	"log"

	cuckootrie "repro"
)

func main() {
	t := cuckootrie.New(cuckootrie.Config{CapacityHint: 1024, AutoResize: true})

	// Point operations. Set reports whether the key was newly added.
	for i, word := range []string{"banana", "apple", "cherry", "date", "apricot"} {
		added, err := t.Set([]byte(word), uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		if !added {
			log.Fatalf("%s unexpectedly already present", word)
		}
	}
	if v, ok := t.Get([]byte("cherry")); ok {
		fmt.Println("cherry =", v)
	}
	t.Delete([]byte("date"))

	// Batched lookups: the probes of the whole batch are staged up front so
	// their DRAM accesses overlap (the trie's MLP thesis, across keys).
	batch := [][]byte{[]byte("apple"), []byte("durian"), []byte("banana")}
	vals := make([]uint64, len(batch))
	found := make([]bool, len(batch))
	t.MultiGet(batch, vals, found)
	for i, k := range batch {
		if found[i] {
			fmt.Printf("%s = %d\n", k, vals[i])
		} else {
			fmt.Printf("%s: not present\n", k)
		}
	}

	// Cursor iteration from a seek point (pagination-friendly: no callback).
	c := t.NewCursor()
	fmt.Println("keys >= \"app\":")
	for ok := c.Seek([]byte("app")); ok; ok = c.Next() {
		fmt.Printf("  %s = %d\n", c.Key(), c.Value())
	}
	c.Close()

	// Predecessor / successor queries.
	if k, _, ok := t.Predecessor([]byte("bz")); ok {
		fmt.Printf("predecessor of \"bz\": %s\n", k)
	}
	if k, _, ok := t.Successor([]byte("bz")); ok {
		fmt.Printf("successor of \"bz\": %s\n", k)
	}
	fmt.Println("total keys:", t.Len())
}
