// Quickstart: the Cuckoo Trie as an ordered map — point operations, ordered
// iteration, predecessor/successor queries.
package main

import (
	"fmt"
	"log"

	cuckootrie "repro"
)

func main() {
	t := cuckootrie.New(cuckootrie.Config{CapacityHint: 1024, AutoResize: true})

	// Point operations.
	for i, word := range []string{"banana", "apple", "cherry", "date", "apricot"} {
		if err := t.Set([]byte(word), uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	if v, ok := t.Get([]byte("cherry")); ok {
		fmt.Println("cherry =", v)
	}
	t.Delete([]byte("date"))

	// Ordered iteration from a seek point.
	it, err := t.Seek([]byte("app"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("keys >= \"app\":")
	for it.Valid() {
		fmt.Printf("  %s = %d\n", it.Key(), it.Value())
		it.Next()
	}

	// Predecessor / successor queries.
	if k, _, ok := t.Predecessor([]byte("bz")); ok {
		fmt.Printf("predecessor of \"bz\": %s\n", k)
	}
	if k, _, ok := t.Successor([]byte("bz")); ok {
		fmt.Printf("successor of \"bz\": %s\n", k)
	}
	fmt.Println("total keys:", t.Len())
}
