// Redis example: start an in-process mini-Redis server backed by the Cuckoo
// Trie, and talk to it over loopback TCP with the RESP client — the paper's
// full-system setting (§6.8) in miniature.
package main

import (
	"fmt"
	"log"

	cuckootrie "repro"
	"repro/internal/index"
	"repro/internal/miniredis"
)

func main() {
	srv := miniredis.NewServer(func(c int) index.Index {
		return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
	}, 1024, true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()
	fmt.Println("server on", addr)

	cl, err := miniredis.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	for _, user := range []string{"carol", "alice", "dave", "bob"} {
		if _, err := cl.Do([]byte("ZADD"), []byte("users"), []byte(user), []byte("1")); err != nil {
			log.Fatal(err)
		}
	}
	score, _ := cl.Do([]byte("ZSCORE"), []byte("users"), []byte("alice"))
	fmt.Printf("ZSCORE alice = %s\n", score)

	// Re-adding an existing member updates its score and replies 0.
	reply, _ := cl.Do([]byte("ZADD"), []byte("users"), []byte("alice"), []byte("2"))
	fmt.Println("ZADD alice again =", reply)

	// Batched scores in one round trip (served by one MultiGet).
	scores, _ := cl.Do([]byte("ZMSCORE"), []byte("users"),
		[]byte("bob"), []byte("mallory"), []byte("carol"))
	fmt.Println("ZMSCORE bob mallory carol:")
	for _, s := range scores.([]interface{}) {
		if b, _ := s.([]byte); b != nil {
			fmt.Printf("  %s\n", b)
		} else {
			fmt.Println("  (nil)")
		}
	}

	members, _ := cl.Do([]byte("ZRANGEBYLEX"), []byte("users"), []byte("b"), []byte("10"))
	fmt.Println("ZRANGEBYLEX from \"b\":")
	for _, m := range members.([]interface{}) {
		fmt.Printf("  %s\n", m)
	}
	size, _ := cl.Do([]byte("DBSIZE"))
	fmt.Println("DBSIZE =", size)
}
