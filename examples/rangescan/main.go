// Range-scan example: time-series retention queries over an ordered index.
// Keys are (sensor, timestamp) tuples encoded order-preservingly; range
// scans retrieve per-sensor windows — the workload shape that motivates
// ordered indexes over hash tables (paper §1).
package main

import (
	"fmt"

	cuckootrie "repro"
	"repro/internal/keys"
)

func seriesKey(sensor uint16, ts uint64) []byte {
	k := []byte{byte(sensor >> 8), byte(sensor)}
	return keys.AppendUint64Key(k, ts)
}

func main() {
	t := cuckootrie.New(cuckootrie.Config{CapacityHint: 1 << 16, AutoResize: true})

	// Ingest: 4 sensors x 1000 readings.
	for sensor := uint16(0); sensor < 4; sensor++ {
		for i := uint64(0); i < 1000; i++ {
			ts := 1_700_000_000 + i*60
			t.Set(seriesKey(sensor, ts), uint64(sensor)*1000+i)
		}
	}

	// Window query: sensor 2, first five readings at or after a timestamp.
	start := seriesKey(2, 1_700_000_000+500*60)
	fmt.Println("sensor 2, five readings from t+500min:")
	t.Scan(start, 5, func(k []byte, v uint64) bool {
		ts := keys.Uint64FromKey(k[2:])
		fmt.Printf("  sensor=%d ts=%d value=%d\n", uint16(k[0])<<8|uint16(k[1]), ts, v)
		return true
	})

	// Retention: delete sensor 0's oldest 100 readings.
	deleted := 0
	var victims [][]byte
	t.Scan(seriesKey(0, 0), 100, func(k []byte, v uint64) bool {
		victims = append(victims, append([]byte(nil), k...))
		return true
	})
	for _, k := range victims {
		if t.Delete(k) {
			deleted++
		}
	}
	fmt.Printf("retention pass deleted %d readings; %d remain\n", deleted, t.Len())
}
