// ctvet is the repo's invariant checker: a multichecker for the custom
// analyzers in internal/analyzers (lockorder, cursorclose, durabilityerr,
// atomicfield), built on the in-repo analysis kernel — no dependency on
// golang.org/x/tools, which the offline build environment cannot fetch.
//
// It runs two ways:
//
//	go build -o ctvet ./cmd/ctvet
//	go vet -vettool=./ctvet ./...     # the CI invocation
//	./ctvet ./...                     # same thing: re-execs go vet on itself
//
// As a vettool it speaks cmd/go's vet protocol: -V=full prints a version
// line keyed to the binary's own hash (so go vet's result cache
// invalidates when an analyzer changes), -flags describes the analyzer
// selection flags as JSON, and a <pkg>.cfg argument runs the analyzers
// over one package using the export data the go command already built —
// no duplicate type-checking of dependencies.
//
// _test.go files are skipped: the analyzers encode production invariants
// (tests legitimately drop teardown errors and leak cursors into
// t.Cleanup). Per-line suppression is //ctvet:ignore <reason>; testdata
// fixture trees are outside the go command's package patterns and are
// never vetted.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysis"
)

func main() {
	log := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ctvet: "+format+"\n", args...)
	}

	versionFlag := flag.String("V", "", "print version and exit (-V=full, for the go command's build cache)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet's flag discovery)")
	// Analyzer selection, mirroring go vet: naming any analyzer with
	// -<name>=true runs only the named ones.
	enabled := map[string]*bool{}
	for _, a := range analyzers.All() {
		enabled[a.Name] = flag.Bool(a.Name, false, "enable only named analyzers: "+firstLine(a.Doc))
	}
	// Tolerated no-ops so stray driver flags never break the protocol.
	flag.Bool("json", false, "ignored (protocol compatibility)")
	flag.String("c", "", "ignored (protocol compatibility)")
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlags()
		return
	}

	selected := analyzers.All()
	var chosen []*analysis.Analyzer
	for _, a := range selected {
		if *enabled[a.Name] {
			chosen = append(chosen, a)
		}
	}
	if len(chosen) > 0 {
		selected = chosen
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// vettool mode: one package, preparsed config from cmd/go.
		exitCode, err := runUnit(args[0], selected)
		if err != nil {
			log("%v", err)
			os.Exit(1)
		}
		os.Exit(exitCode)
	}

	// Standalone mode: delegate to go vet with ourselves as the vettool,
	// so package loading, export data and caching are the go command's
	// problem.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		log("cannot locate own binary: %v", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout, cmd.Stderr, cmd.Stdin = os.Stdout, os.Stderr, os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		log("go vet: %v", err)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion emits the "name version ..." line the go command hashes
// into its build cache key. Hashing our own binary means editing an
// analyzer invalidates cached vet results.
func printVersion() {
	name := "ctvet"
	h := sha256.New()
	if self, err := os.Executable(); err == nil {
		name = strings.TrimSuffix(filepath.Base(self), ".exe")
		if f, err := os.Open(self); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	// The exact shape cmd/go's toolID parser accepts for unreleased
	// tools: "<name> version devel ... buildID=<id>".
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}

// printFlags describes our flags in the JSON shape go vet's flag
// discovery expects.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers.All() {
		out = append(out, jsonFlag{a.Name, true, firstLine(a.Doc)})
	}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
}

// vetConfig is the package description cmd/go writes for vet tools (the
// fields unitchecker reads; unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package from its vet config, printing diagnostics
// to stderr. Exit code 2 signals findings, matching vet convention.
func runUnit(cfgFile string, selected []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// The go command requires an output facts file for caching even
	// though these analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependency pass, wanted only for facts — we have none.
		return 0, nil
	}

	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(filepath.Base(f), "_test.go") {
			continue // production invariants: test files are out of scope
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0, nil // external test package: nothing but _test.go files
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		parsed = append(parsed, f)
	}

	pkg, info, err := typeCheck(fset, parsed, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	findings, err := analysis.RunAnalyzers(selected, fset, parsed, pkg, info)
	if err != nil {
		return 0, err
	}
	if len(findings) == 0 {
		return 0, nil
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return 2, nil
}

// typeCheck type-checks the package against the export data the go
// command already compiled for its dependencies (cfg.PackageFile), so a
// vet run never re-type-checks the world from source.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, goarch()),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func goarch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
