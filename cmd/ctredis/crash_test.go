package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/miniredis"
)

// buildCtredis compiles the ctredis binary once per test run.
func buildCtredis(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ctredis")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startCtredis launches the binary and parses the bound address from its
// "ctredis listening on <addr>" banner.
func startCtredis(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "ctredis listening on "); ok {
				addrCh <- strings.Fields(rest)[0]
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-deadline:
		cmd.Process.Kill()
		t.Fatal("ctredis did not print its listen banner")
		return nil, ""
	}
}

// TestCrashRecoverySmoke is the end-to-end crash drill CI runs: start a
// persistent ctredis, write through the real RESP path with -fsync always,
// kill the process with SIGKILL (no shutdown path runs — whatever is on
// disk is all recovery gets), restart on the same directory, and DBSIZE
// must report every acknowledged write.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server process")
	}
	bin := buildCtredis(t)
	dir := t.TempDir()

	cmd, addr := startCtredis(t, bin, "-data-dir", dir, "-fsync", "always")
	cl, err := miniredis.Dial(addr)
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	const writes = 500
	for i := 0; i < writes; i++ {
		r, err := cl.Do([]byte("ZADD"), []byte(fmt.Sprintf("set%d", i%8)),
			[]byte(fmt.Sprintf("m%05d", i)), []byte(fmt.Sprint(i)))
		if err != nil || r != int64(1) {
			cmd.Process.Kill()
			t.Fatalf("ZADD #%d = %v, %v", i, r, err)
		}
	}
	cl.Close()
	// SIGKILL: the process gets no chance to flush or close anything.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2, addr2 := startCtredis(t, bin, "-data-dir", dir, "-fsync", "always")
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	cl2, err := miniredis.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	r, err := cl2.Do([]byte("DBSIZE"))
	if err != nil {
		t.Fatal(err)
	}
	if r != int64(writes) {
		t.Fatalf("DBSIZE after kill -9 + restart = %v, want %d (acknowledged fsync=always writes lost)", r, writes)
	}
	if r, _ := cl2.Do([]byte("ZSCORE"), []byte("set3"), []byte("m00123")); string(r.([]byte)) != "123" {
		t.Fatalf("recovered score = %v", r)
	}
	// And the recovered server keeps serving writes.
	if r, _ := cl2.Do([]byte("ZADD"), []byte("set0"), []byte("post-crash"), []byte("1")); r != int64(1) {
		t.Fatalf("post-recovery ZADD = %v", r)
	}
}

// TestGroupCommitCrashDrill: 500 PIPELINED writes under -fsync group, then
// SIGKILL. Group commit withholds a pipeline's replies until one fsync
// covers its last LSN, so every write the client saw acknowledged must be
// present after restart — the same contract as fsync=always, at batched
// cost.
func TestGroupCommitCrashDrill(t *testing.T) {
	groupCommitCrashDrill(t, "serial")
}

// TestGroupCommitCrashDrillStripedExec runs the same drill with pipelines
// fanned out across per-stripe executors: concurrent lanes reorder the
// appends, but the ack barrier still withholds replies until the fsync
// covers the batch, so the durability contract is identical.
func TestGroupCommitCrashDrillStripedExec(t *testing.T) {
	groupCommitCrashDrill(t, "striped-exec")
}

func groupCommitCrashDrill(t *testing.T, execMode string) {
	if testing.Short() {
		t.Skip("builds and kills a real server process")
	}
	bin := buildCtredis(t)
	dir := t.TempDir()

	cmd, addr := startCtredis(t, bin, "-data-dir", dir, "-fsync", "group", "-exec", execMode)
	cl, err := miniredis.Dial(addr)
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	const writes, pipeline = 500, 50
	for base := 0; base < writes; base += pipeline {
		cmds := make([][][]byte, pipeline)
		for i := range cmds {
			n := base + i
			cmds[i] = [][]byte{[]byte("ZADD"), []byte(fmt.Sprintf("set%d", n%8)),
				[]byte(fmt.Sprintf("m%05d", n)), []byte(fmt.Sprint(n))}
		}
		out, err := cl.Pipeline(cmds)
		if err != nil || len(out) != pipeline {
			cmd.Process.Kill()
			t.Fatalf("pipeline at %d: %d replies, %v", base, len(out), err)
		}
	}
	cl.Close()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2, addr2 := startCtredis(t, bin, "-data-dir", dir, "-fsync", "group", "-exec", execMode)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	cl2, err := miniredis.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if r, err := cl2.Do([]byte("DBSIZE")); err != nil || r != int64(writes) {
		t.Fatalf("DBSIZE after kill -9 + restart = %v, %v, want %d (group-acked writes lost)", r, err, writes)
	}
	if r, _ := cl2.Do([]byte("ZSCORE"), []byte("set3"), []byte("m00123")); string(r.([]byte)) != "123" {
		t.Fatalf("recovered score = %v", r)
	}
}

// TestAsyncAckCrashDrill asserts async mode's WEAKER contract: replies come
// back before durability, so after a SIGKILL the store must hold at least
// everything at or below the last DurableLSN the client observed via INFO
// persistence — not necessarily every acknowledged write.
func TestAsyncAckCrashDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server process")
	}
	bin := buildCtredis(t)
	dir := t.TempDir()

	cmd, addr := startCtredis(t, bin, "-data-dir", dir, "-fsync", "async")
	cl, err := miniredis.Dial(addr)
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	const writes = 500
	for i := 0; i < writes; i++ {
		// Unique members across one set: LSN i+1 is exactly write i, so the
		// durable watermark translates directly into a key count.
		r, err := cl.Do([]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%05d", i)), []byte(fmt.Sprint(i)))
		if err != nil || r != int64(1) {
			cmd.Process.Kill()
			t.Fatalf("ZADD #%d = %v, %v", i, r, err)
		}
	}
	info, err := cl.Do([]byte("INFO"), []byte("persistence"))
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	var durable int64 = -1
	for _, line := range strings.Split(string(info.([]byte)), "\r\n") {
		if rest, ok := strings.CutPrefix(line, "aof_durable_lsn:"); ok {
			fmt.Sscanf(rest, "%d", &durable)
		}
	}
	if durable < 0 {
		cmd.Process.Kill()
		t.Fatal("INFO persistence did not report aof_durable_lsn")
	}
	cl.Close()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2, addr2 := startCtredis(t, bin, "-data-dir", dir, "-fsync", "async")
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	cl2, err := miniredis.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	r, err := cl2.Do([]byte("DBSIZE"))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.(int64); got < durable {
		t.Fatalf("DBSIZE after crash = %d, but DurableLSN promised ≥ %d records", got, durable)
	} else if got > int64(writes) {
		t.Fatalf("DBSIZE after crash = %d > %d writes ever made", got, writes)
	}
}

// TestReplicationCrashDrill is the replication drill CI runs: a persistent
// primary and a -replicaof read replica as separate processes, 500 writes
// each confirmed replicated with WAIT 1, then SIGKILL the primary — the
// replica must still serve every key on its own.
func TestReplicationCrashDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server processes")
	}
	bin := buildCtredis(t)
	dir := t.TempDir()

	prim, paddr := startCtredis(t, bin, "-data-dir", dir, "-fsync", "no")
	defer func() {
		prim.Process.Kill()
		prim.Wait()
	}()
	rep, raddr := startCtredis(t, bin, "-replicaof", paddr)
	defer func() {
		rep.Process.Kill()
		rep.Wait()
	}()

	cl, err := miniredis.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	const writes = 500
	for i := 0; i < writes; i++ {
		r, err := cl.Do([]byte("ZADD"), []byte(fmt.Sprintf("set%d", i%8)),
			[]byte(fmt.Sprintf("m%05d", i)), []byte(fmt.Sprint(i)))
		if err != nil || r != int64(1) {
			t.Fatalf("ZADD #%d = %v, %v", i, r, err)
		}
	}
	if r, err := cl.Do([]byte("WAIT"), []byte("1"), []byte("30000")); err != nil || r != int64(1) {
		t.Fatalf("WAIT 1 = %v, %v", r, err)
	}
	cl.Close()

	// SIGKILL the primary: the replica keeps serving what it applied.
	if err := prim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	prim.Wait()

	rcl, err := miniredis.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	if r, err := rcl.Do([]byte("DBSIZE")); err != nil || r != int64(writes) {
		t.Fatalf("replica DBSIZE after primary crash = %v, %v (want %d)", r, err, writes)
	}
	if r, err := rcl.Do([]byte("ZSCORE"), []byte("set3"), []byte("m00123")); err != nil || string(r.([]byte)) != "123" {
		t.Fatalf("replica ZSCORE = %v, %v", r, err)
	}
}
