// Command ctredis serves the mini-Redis store with a selectable sorted-set
// engine (paper §6.8). Try it with redis-cli:
//
//	ctredis -addr :6380 -engine CuckooTrie
//	redis-cli -p 6380 ZADD s hello 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	cuckootrie "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/miniredis"
	"repro/internal/sharded"
	"repro/internal/skiplist"
	"repro/internal/wormhole"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	engine := flag.String("engine", "CuckooTrie", "sorted-set engine: CuckooTrie|ARTOLC|HOT|Wormhole|STX|SkipList")
	capacity := flag.Int("capacity", 1<<20, "expected keys per sorted set")
	shards := flag.Int("shards", 1, "shards per sorted set (>1 enables scatter-gather across cores)")
	flag.Parse()

	factories := map[string]miniredis.EngineFactory{
		"CuckooTrie": func(c int) index.Index {
			return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
		},
		"ARTOLC":   func(c int) index.Index { return art.New() },
		"HOT":      func(c int) index.Index { return hot.New() },
		"Wormhole": func(c int) index.Index { return wormhole.New() },
		"STX":      func(c int) index.Index { return btree.New() },
		"SkipList": func(c int) index.Index { return skiplist.New(7) },
	}
	f, ok := factories[*engine]
	if !ok {
		log.Fatalf("unknown engine %q", *engine)
	}
	name := *engine
	if *shards > 1 {
		f = miniredis.ShardedFactory(f, *shards)
		name = fmt.Sprintf("%s x%d shards", name, sharded.RoundShards(*shards))
	}
	srv := miniredis.NewServer(f, *capacity, true)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ctredis listening on %s (engine: %s)\n", bound, name)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}
