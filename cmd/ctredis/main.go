// Command ctredis serves the mini-Redis store with a selectable sorted-set
// engine (paper §6.8). Try it with redis-cli:
//
//	ctredis -addr :6380 -engine CuckooTrie
//	redis-cli -p 6380 ZADD s hello 1
//
// With -data-dir the store is durable: the directory is recovered on boot
// (newest valid snapshot bulk-loaded, then the WAL tail replayed), writes
// append to the segmented WAL under the -fsync policy, and SAVE/BGSAVE —
// or -snapshot-every N — cut compacting snapshots:
//
//	ctredis -data-dir /var/lib/ctredis -fsync everysec -snapshot-every 100000
//
// With -replicaof the server boots as a memory-only read replica: it syncs
// from the primary (full snapshot stream or partial WAL tail), follows the
// replicated log, answers reads, and rejects client writes with -READONLY.
// REPLICAOF NO ONE promotes it back to a writable standalone:
//
//	ctredis -addr :6381 -replicaof 127.0.0.1:6380
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	cuckootrie "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/miniredis"
	"repro/internal/persist"
	"repro/internal/sharded"
	"repro/internal/skiplist"
	"repro/internal/wormhole"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	engine := flag.String("engine", "CuckooTrie", "sorted-set engine: CuckooTrie|ARTOLC|HOT|Wormhole|STX|SkipList")
	capacity := flag.Int("capacity", 1<<20, "expected keys per sorted set")
	shards := flag.Int("shards", 1, "shards per sorted set (>1 enables scatter-gather across cores)")
	router := flag.String("router", "hash", "key→shard routing for sharded sets: hash|range|sampled (range/sampled keep scans single-shard when possible; sampled derives balanced shard boundaries from the preload stream)")
	preload := flag.Int("preload", 0, "bulk-load N random 8-byte keys into set 'bench' before serving (partitioned load for sharded sets; trains the sampled router's boundaries)")
	dataDir := flag.String("data-dir", "", "enable persistence: recover this directory on boot (snapshot + WAL replay) and log writes to it")
	fsync := flag.String("fsync", "everysec", "WAL fsync policy with -data-dir: always|everysec|no|group|async (group batches a pipeline's writes into one fsync before acking; async acks immediately and tracks durability via the DurableLSN watermark in INFO persistence)")
	snapEvery := flag.Int("snapshot-every", 0, "cut a background snapshot every N logged writes (0 disables; SAVE/BGSAVE always work)")
	autoRewrite := flag.Int64("auto-rewrite-bytes", 64<<20, "rewrite the log (background snapshot + segment compaction) once the WAL grows this many bytes past the last snapshot (0 disables)")
	replicaOf := flag.String("replicaof", "", "replicate from this primary (host:port); the server is a memory-only read replica")
	execFlag := flag.String("exec", "serial", "command execution mode: serial (Redis's one-at-a-time loop) | striped-conn (per-connection concurrency, concurrent-safe engines only) | striped-exec (pipelines fan out across per-stripe executors, any engine)")
	maxConns := flag.Int("maxconns", 0, "max simultaneous client connections; over the cap new connections get -ERR and are closed (0 = unlimited; rejections counted in INFO clients)")
	slowlogThreshold := flag.Duration("slowlog-threshold", 10*time.Millisecond, "log commands at least this slow to SLOWLOG (0 logs everything, negative disables)")
	flag.Parse()

	if *replicaOf != "" && *dataDir != "" {
		log.Fatal("-replicaof and -data-dir are mutually exclusive: a replica's durability is its primary's job")
	}
	if *replicaOf != "" && *preload > 0 {
		log.Fatal("-replicaof and -preload are mutually exclusive: a replica's keyspace mirrors the primary")
	}

	factories := map[string]miniredis.EngineFactory{
		"CuckooTrie": func(c int) index.Index {
			return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
		},
		"ARTOLC":   func(c int) index.Index { return art.New() },
		"HOT":      func(c int) index.Index { return hot.New() },
		"Wormhole": func(c int) index.Index { return wormhole.New() },
		"STX":      func(c int) index.Index { return btree.New() },
		"SkipList": func(c int) index.Index { return skiplist.New(7) },
	}
	f, ok := factories[*engine]
	if !ok {
		log.Fatalf("unknown engine %q", *engine)
	}
	name := *engine
	if *shards > 1 {
		mk, ok := sharded.RouterByName(*router)
		if !ok {
			log.Fatalf("unknown router %q (want hash, range or sampled)", *router)
		}
		f = miniredis.ShardedFactoryWithRouter(f, *shards, mk)
		name = fmt.Sprintf("%s x%d shards, %s-routed", name, sharded.RoundShards(*shards), *router)
	}
	mode, err := miniredis.ParseExecMode(*execFlag)
	if err != nil {
		log.Fatal(err)
	}
	if mode == miniredis.ExecStripedConn && *dataDir != "" && !index.IsConcurrent(f(1)) {
		// Refuse the combination at boot instead of serving a store whose
		// SAVE/BGSAVE/full-sync paths can only ever reply -ERR: striped-conn
		// has no execution lock to quiesce a non-concurrent engine with.
		log.Fatalf("-exec striped-conn with engine %s cannot persist: no safe snapshot path for a non-concurrent engine (use -exec serial or striped-exec)", *engine)
	}
	srv := miniredis.NewServerExec(f, *capacity, mode)
	srv.SetMaxConns(*maxConns)
	srv.SetSlowlogThreshold(*slowlogThreshold)
	recovered := 0
	if *dataDir != "" {
		policy, err := persist.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := srv.EnablePersistenceWithOptions(*dataDir, miniredis.PersistOptions{
			Policy:           policy,
			SnapshotEvery:    *snapEvery,
			AutoRewriteBytes: *autoRewrite,
		})
		if err != nil {
			log.Fatalf("recover %s: %v", *dataDir, err)
		}
		recovered = res.Keys()
		if recovered > 0 || res.Replayed > 0 {
			fmt.Printf("recovered %d keys (%d sets; snapshot LSN %d + %d WAL records, torn tail: %v) in %v\n",
				recovered, len(res.Sets), res.SnapshotLSN, res.Replayed, res.TornTail,
				time.Since(start).Round(time.Millisecond))
		}
	}
	if *preload > 0 && recovered > 0 {
		// A recovered keyspace already holds its data; preloading on top
		// would double-count the benchmark set.
		fmt.Printf("skipping -preload %d: recovered %d keys from %s\n", *preload, recovered, *dataDir)
	} else if *preload > 0 {
		keys := dataset.Generate(dataset.Rand8, *preload, 1)
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = uint64(i)
		}
		start := time.Now()
		added, err := srv.Preload("bench", keys, vals)
		if err != nil {
			log.Fatalf("preload: %v", err)
		}
		d := time.Since(start)
		fmt.Printf("preloaded %d keys into 'bench' in %v (%.3f Mops/s)\n",
			added, d.Round(time.Millisecond), float64(len(keys))/d.Seconds()/1e6)
		if srv.Persistent() {
			// Preload rides the bulk-load path, not the WAL: one snapshot
			// makes it durable without logging a record per key.
			if err := srv.Save(); err != nil {
				log.Fatalf("post-preload snapshot: %v", err)
			}
		}
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	if srv.Persistent() {
		name = fmt.Sprintf("%s, persisted to %s, fsync %s", name, *dataDir, *fsync)
	}
	role := "master"
	if *replicaOf != "" {
		// ReplicaOf after Listen, so the session can advertise this
		// server's own address to the primary (REPLCONF listening-port).
		if _, err := srv.ReplicaOf(*replicaOf, 0); err != nil {
			log.Fatal(err)
		}
		role = fmt.Sprintf("replica of %s", *replicaOf)
	}
	fmt.Printf("ctredis listening on %s (engine: %s, %d keyspace stripes, exec: %s, role: %s)\n", bound, name, srv.Stripes(), srv.Mode(), role)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	// Close's error is the WAL's final flush+fsync; a silent exit here
	// could hide a non-durable tail.
	if err := srv.Close(); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}
