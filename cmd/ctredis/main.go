// Command ctredis serves the mini-Redis store with a selectable sorted-set
// engine (paper §6.8). Try it with redis-cli:
//
//	ctredis -addr :6380 -engine CuckooTrie
//	redis-cli -p 6380 ZADD s hello 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	cuckootrie "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/miniredis"
	"repro/internal/sharded"
	"repro/internal/skiplist"
	"repro/internal/wormhole"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "listen address")
	engine := flag.String("engine", "CuckooTrie", "sorted-set engine: CuckooTrie|ARTOLC|HOT|Wormhole|STX|SkipList")
	capacity := flag.Int("capacity", 1<<20, "expected keys per sorted set")
	shards := flag.Int("shards", 1, "shards per sorted set (>1 enables scatter-gather across cores)")
	router := flag.String("router", "hash", "key→shard routing for sharded sets: hash|range|sampled (range/sampled keep scans single-shard when possible; sampled derives balanced shard boundaries from the preload stream)")
	preload := flag.Int("preload", 0, "bulk-load N random 8-byte keys into set 'bench' before serving (partitioned load for sharded sets; trains the sampled router's boundaries)")
	flag.Parse()

	factories := map[string]miniredis.EngineFactory{
		"CuckooTrie": func(c int) index.Index {
			return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
		},
		"ARTOLC":   func(c int) index.Index { return art.New() },
		"HOT":      func(c int) index.Index { return hot.New() },
		"Wormhole": func(c int) index.Index { return wormhole.New() },
		"STX":      func(c int) index.Index { return btree.New() },
		"SkipList": func(c int) index.Index { return skiplist.New(7) },
	}
	f, ok := factories[*engine]
	if !ok {
		log.Fatalf("unknown engine %q", *engine)
	}
	name := *engine
	if *shards > 1 {
		mk, ok := sharded.RouterByName(*router)
		if !ok {
			log.Fatalf("unknown router %q (want hash, range or sampled)", *router)
		}
		f = miniredis.ShardedFactoryWithRouter(f, *shards, mk)
		name = fmt.Sprintf("%s x%d shards, %s-routed", name, sharded.RoundShards(*shards), *router)
	}
	srv := miniredis.NewServer(f, *capacity, true)
	if *preload > 0 {
		keys := dataset.Generate(dataset.Rand8, *preload, 1)
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = uint64(i)
		}
		start := time.Now()
		added, err := srv.Preload("bench", keys, vals)
		if err != nil {
			log.Fatalf("preload: %v", err)
		}
		d := time.Since(start)
		fmt.Printf("preloaded %d keys into 'bench' in %v (%.3f Mops/s)\n",
			added, d.Round(time.Millisecond), float64(len(keys))/d.Seconds()/1e6)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ctredis listening on %s (engine: %s, %d keyspace stripes)\n", bound, name, srv.Stripes())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}
