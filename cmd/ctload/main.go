// Command ctload generates a dataset, loads it into the Cuckoo Trie, and
// reports Table 1 statistics plus index structure stats — a quick smoke
// test for dataset generators and sizing.
package main

import (
	"flag"
	"fmt"
	"log"

	cuckootrie "repro"
	"repro/internal/dataset"
)

func main() {
	name := flag.String("dataset", "rand-8", "dataset: rand-8|rand-16|osm|az|reddit")
	n := flag.Int("keys", 1_000_000, "number of keys")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	keys := dataset.Generate(dataset.Name(*name), *n, *seed)
	st := dataset.Measure(dataset.Name(*name), keys)
	fmt.Printf("dataset %s: %d keys, avg %.1f bytes, avg unique prefix %.1f bits\n",
		st.Name, st.Keys, st.AvgKeyBytes, st.AvgUniquePrefix)

	t := cuckootrie.New(cuckootrie.Config{CapacityHint: *n, AutoResize: true})
	for i, k := range keys {
		if _, err := t.Set(k, uint64(i)); err != nil {
			log.Fatal(err)
		}
	}
	ts := t.Stats()
	fmt.Printf("cuckoo trie: %d keys, %.3f nodes/key, load factor %.2f\n",
		ts.Keys, ts.NodesPerKey, ts.LoadFactor)
	fmt.Printf("memory: %.1f bytes/key (Go layout), %.1f bytes/key (paper layout)\n",
		ts.BytesPerKey, ts.PaperBytesPerKey)
}
