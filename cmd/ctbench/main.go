// Command ctbench regenerates the paper's tables and figures. Each
// sub-command corresponds to one experiment; `all` runs everything.
//
//	ctbench -keys 200000 -ops 200000 fig7
//	ctbench -keys 1000000 -threads 8 fig8
//	ctbench all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	keys := flag.Int("keys", 200_000, "dataset size (paper: 71M-200M)")
	ops := flag.Int("ops", 0, "operations per measurement (default: = keys)")
	threads := flag.Int("threads", 0, "threads for multithreaded figures (default: GOMAXPROCS)")
	shards := flag.Int("shards", 0, "max shard count for the sharded figure (default: GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "dataset/workload seed")
	jsonOut := flag.Bool("json", false, "emit the figure as one JSON report (banner fields + rows) instead of text; supported: sharded, load, persist, repl, fig7, fig8, fig10")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ctbench [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 fig2 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 table3 ablation multiget sharded load persist repl exec all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	o := bench.Options{Keys: *keys, Ops: *ops, Threads: *threads, Shards: *shards, Seed: *seed}
	if *jsonOut {
		jsonRunners := map[string]func() error{
			"sharded": func() error { return bench.FigShardedJSON(os.Stdout, o) },
			"load":    func() error { return bench.FigLoadJSON(os.Stdout, o) },
			"persist": func() error { return bench.FigPersistJSON(os.Stdout, o) },
			"repl":    func() error { return bench.FigReplJSON(os.Stdout, o) },
			"exec":    func() error { return bench.FigExecJSON(os.Stdout, o) },
			"fig7":    func() error { return bench.Fig7JSON(os.Stdout, o) },
			"fig8":    func() error { return bench.Fig8JSON(os.Stdout, o) },
			"fig10":   func() error { return bench.Fig10JSON(os.Stdout, o) },
		}
		run, ok := jsonRunners[flag.Arg(0)]
		if !ok {
			fmt.Fprintf(os.Stderr, "ctbench: -json supports only: sharded, load, persist, repl, exec, fig7, fig8, fig10 (got %q)\n", flag.Arg(0))
			os.Exit(2)
		}
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "ctbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	runners := map[string]func(){
		"table1":   func() { bench.Table1(os.Stdout, o) },
		"fig2":     func() { bench.Fig2(os.Stdout, o) },
		"fig6":     func() { bench.Fig6(os.Stdout, o) },
		"fig7":     func() { bench.Fig7(os.Stdout, o) },
		"fig8":     func() { bench.Fig8(os.Stdout, o) },
		"fig9":     func() { bench.Fig9(os.Stdout, o) },
		"fig10":    func() { bench.Fig10(os.Stdout, o) },
		"fig11":    func() { bench.Fig11(os.Stdout, o) },
		"fig12":    func() { bench.Fig12(os.Stdout, o) },
		"fig13":    func() { bench.Fig13(os.Stdout, o) },
		"table3":   func() { bench.Table3(os.Stdout, o) },
		"ablation": func() { bench.Ablation(os.Stdout, o) },
		"multiget": func() { bench.MultiGetBench(os.Stdout, o) },
		"sharded":  func() { bench.FigSharded(os.Stdout, o) },
		"load":     func() { bench.FigLoad(os.Stdout, o) },
		"persist":  func() { bench.FigPersist(os.Stdout, o) },
		"repl":     func() { bench.FigRepl(os.Stdout, o) },
		"exec":     func() { bench.FigExec(os.Stdout, o) },
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, k := range []string{"table1", "fig2", "fig6", "fig7", "fig8", "fig9",
			"fig10", "fig11", "fig12", "fig13", "table3", "ablation", "multiget", "sharded", "load", "persist", "repl", "exec"} {
			runners[k]()
		}
		return
	}
	run, ok := runners[name]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	run()
}
