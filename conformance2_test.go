package cuckootrie_test

import (
	"testing"

	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/mlpindex"
	"repro/internal/wormhole"
)

func TestConformanceWormhole(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return wormhole.New() }, indextest.Options{})
}

func TestConformanceHOT(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return hot.New() }, indextest.Options{})
}

func TestConformanceMlpIndex(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return mlpindex.New(capacity) },
		indextest.Options{FixedKeyLen: 8, NoScan: true, NoDelete: true})
}
