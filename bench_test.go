package cuckootrie_test

// One testing.B benchmark per paper table/figure (deliverable d). The
// figure benchmarks emit the paper-style rows once per run via the bench
// harness (they are report generators, sized down so `go test -bench=.`
// completes in minutes); the micro-benchmarks below give per-op numbers for
// the hot paths. Scale up with cmd/ctbench for closer-to-paper runs.

import (
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"

	cuckootrie "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/keys"
)

// benchOpts sizes the figure regeneration so a full `go test -bench=.` run
// finishes in minutes; scale up with cmd/ctbench for closer-to-paper runs.
func benchOpts() bench.Options {
	return bench.Options{Keys: 30_000, Ops: 30_000, Threads: 2, Seed: 1}
}

func runFigure(b *testing.B, fn func(o bench.Options)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fn(benchOpts())
	}
}

func BenchmarkTable1Datasets(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Table1(os.Stdout, o) })
}

func BenchmarkFig2LatencyBreakdown(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Fig2(os.Stdout, o) })
}

func BenchmarkFig6Scalability(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Fig6(os.Stdout, o) })
}

func BenchmarkFig7SingleThread(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Fig7(os.Stdout, o) })
}

func BenchmarkFig8MultiThread(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Fig8(os.Stdout, o) })
}

func BenchmarkFig9SizeScaling(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Fig9(os.Stdout, o) })
}

func BenchmarkFig10Scans(b *testing.B) {
	o := benchOpts()
	o.Ops = 10_000
	runFigure(b, func(bench.Options) { bench.Fig10(os.Stdout, o) })
}

func BenchmarkFig11Memory(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Fig11(os.Stdout, o) })
}

func BenchmarkFig12MlpIndex(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Fig12(os.Stdout, o) })
}

func BenchmarkFig13Redis(b *testing.B) {
	o := benchOpts()
	o.Keys = 10_000
	o.Ops = 10_000
	runFigure(b, func(bench.Options) { bench.Fig13(os.Stdout, o) })
}

func BenchmarkTable3Bandwidth(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Table3(os.Stdout, o) })
}

func BenchmarkAblations(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.Ablation(os.Stdout, o) })
}

func BenchmarkMultiGetFigure(b *testing.B) {
	runFigure(b, func(o bench.Options) { bench.MultiGetBench(os.Stdout, o) })
}

func BenchmarkShardedFigure(b *testing.B) {
	o := benchOpts()
	o.Shards = 4
	runFigure(b, func(bench.Options) { bench.FigSharded(os.Stdout, o) })
}

// --- micro-benchmarks on the Cuckoo Trie hot paths ---

func newLoadedTrie(n int) (*cuckootrie.Trie, [][]byte) {
	ks := dataset.Generate(dataset.Rand8, n, 3)
	t := cuckootrie.New(cuckootrie.Config{CapacityHint: n, AutoResize: true})
	for i, k := range ks {
		if _, err := t.Set(k, uint64(i)); err != nil {
			panic(err)
		}
	}
	return t, ks
}

func BenchmarkTrieGet(b *testing.B) {
	t, ks := newLoadedTrie(1 << 18)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		if _, ok := t.Get(ks[rng.Intn(len(ks))]); ok {
			hits++
		}
	}
	if hits == 0 {
		b.Fatal("no hits")
	}
}

// BenchmarkMultiGet exercises core's interleaved batch lookup path at the
// batch sizes of the MLP experiment: batch=1 is the degenerate (single-Get)
// baseline; larger batches let the staged probes' DRAM misses overlap.
func BenchmarkMultiGet(b *testing.B) {
	t, ks := newLoadedTrie(1 << 18)
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			kbuf := make([][]byte, batch)
			vals := make([]uint64, batch)
			found := make([]bool, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				for j := 0; j < batch; j++ {
					kbuf[j] = ks[rng.Intn(len(ks))]
				}
				t.MultiGet(kbuf, vals, found)
			}
			b.StopTimer()
			for j := 0; j < batch; j++ {
				if !found[j] {
					b.Fatal("MultiGet missed a loaded key")
				}
			}
		})
	}
}

func BenchmarkTrieGetParallel(b *testing.B) {
	t, ks := newLoadedTrie(1 << 18)
	b.ReportAllocs()
	b.ResetTimer()
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			t.Get(ks[rng.Intn(len(ks))])
		}
	})
}

func BenchmarkTrieSet(b *testing.B) {
	ks := dataset.Generate(dataset.Rand8, 1<<18, 4)
	b.ReportAllocs()
	b.ResetTimer()
	var t *cuckootrie.Trie
	for i := 0; i < b.N; i++ {
		if i%len(ks) == 0 {
			b.StopTimer()
			t = cuckootrie.New(cuckootrie.Config{CapacityHint: len(ks), AutoResize: true})
			b.StartTimer()
		}
		if _, err := t.Set(ks[i%len(ks)], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrieDelete(b *testing.B) {
	ks := dataset.Generate(dataset.Rand8, 1<<17, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(ks) {
		b.StopTimer()
		t, _ := func() (*cuckootrie.Trie, [][]byte) {
			t := cuckootrie.New(cuckootrie.Config{CapacityHint: len(ks), AutoResize: true})
			for j, k := range ks {
				t.Set(k, uint64(j))
			}
			return t, ks
		}()
		b.StartTimer()
		for j := 0; j < len(ks) && i+j < b.N; j++ {
			t.Delete(ks[j])
		}
	}
}

func BenchmarkTrieScan100(b *testing.B) {
	t, ks := newLoadedTrie(1 << 17)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		t.Scan(ks[rng.Intn(len(ks))], 100, func(k []byte, v uint64) bool {
			sink += v
			return true
		})
	}
	_ = sink
}

func BenchmarkTrieSeek(b *testing.B) {
	t, ks := newLoadedTrie(1 << 17)
	rng := rand.New(rand.NewSource(6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := t.Seek(ks[rng.Intn(len(ks))])
		if err != nil || !it.Valid() {
			b.Fatal("seek failed")
		}
	}
}

func BenchmarkSymbolHashPath(b *testing.B) {
	// Cost of expanding a 16-byte key to symbols (the per-lookup setup).
	k := []byte("sixteen-byte-key")
	var buf [64]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = keys.AppendSymbols(buf[:0], k)
	}
}

func ExampleTrie() {
	t := cuckootrie.New(cuckootrie.Config{CapacityHint: 16})
	t.Set([]byte("b"), 2)
	t.Set([]byte("a"), 1)
	t.Scan(nil, 10, func(k []byte, v uint64) bool {
		fmt.Printf("%s=%d\n", k, v)
		return true
	})
	// Output:
	// a=1
	// b=2
}
