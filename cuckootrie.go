// Package cuckootrie is a Go implementation of the Cuckoo Trie (Zeitak &
// Morrison, SOSP 2021): a fast, memory-efficient ordered index designed for
// memory-level parallelism (MLP).
//
// Instead of chasing pointers down a tree — a serial chain of DRAM accesses
// the CPU cannot overlap — the Cuckoo Trie stores path-compressed trie nodes
// in a bucketized cuckoo hash table keyed by the node's name (a prefix of
// the key). All prefixes of a lookup key are known up front, so the probes
// for an entire root-to-leaf path are independent and can be serviced by
// DRAM in parallel. A novel key-eliminating entry format (last symbol + tag
// + color + parent color, with a peelable hash function) keeps entries at
// constant size regardless of key length.
//
// The index is linearizable under concurrent use: lookups and scans are
// lock-free (per-bucket seqlock validation), writers lock only the buckets
// they touch.
//
// The API is batch-first (v2): MultiGet stages the hash ladders and bucket
// addresses of a whole batch before resolving any key, so the independent
// DRAM misses of all descents overlap — the same MLP argument the paper
// makes for one lookup, generalized across a pipeline of requests. Set
// reports whether the key was newly added, and NewCursor provides paginated
// ordered iteration without a callback frame.
//
// Basic usage:
//
//	t := cuckootrie.New(cuckootrie.Config{CapacityHint: 1 << 20})
//	added, _ := t.Set([]byte("key"), 42)
//	v, ok := t.Get([]byte("key"))
//
//	// Batched lookups: independent probes overlap in DRAM.
//	vals := make([]uint64, len(batch))
//	found := make([]bool, len(batch))
//	t.MultiGet(batch, vals, found)
//
//	// Cursor iteration.
//	c := t.NewCursor()
//	for ok := c.Seek([]byte("k")); ok; ok = c.Next() { _ = c.Key() }
//	c.Close()
package cuckootrie

import (
	"repro/internal/core"
	"repro/internal/index"
)

// Config controls trie geometry and features. See core.Config for the
// field-by-field documentation.
type Config = core.Config

// Stats reports structural and memory statistics (paper §6.5 accounting).
type Stats = core.Stats

// Iterator walks keys in ascending order.
type Iterator = core.Iterator

// Cursor is the paginated-iteration interface shared with every engine
// (Seek/Valid/Key/Value/Next/Close). The trie's cursor is its native
// Iterator; see NewCursor.
type Cursor = index.Cursor

// Errors returned by trie operations.
var (
	ErrTableFull     = core.ErrTableFull
	ErrKeyTooLong    = core.ErrKeyTooLong
	ErrScansDisabled = core.ErrScansDisabled
)

// Trie is a Cuckoo Trie: a linearizable, concurrently-accessible ordered
// index from byte-string keys to uint64 values.
type Trie struct {
	t *core.Trie
}

// New creates an empty Cuckoo Trie.
func New(cfg Config) *Trie { return &Trie{t: core.New(cfg)} }

// Set inserts key with value, or updates the value if key is present. added
// reports whether key was newly inserted rather than updated.
func (t *Trie) Set(key []byte, value uint64) (added bool, err error) { return t.t.Set(key, value) }

// Get returns the value stored for key.
func (t *Trie) Get(key []byte) (uint64, bool) { return t.t.Get(key) }

// MultiGet looks up a batch of keys with interleaved probes: the hash
// ladders and bucket addresses of the whole batch are staged (and their
// cache lines touched) before any key resolves, so the independent DRAM
// misses overlap instead of serializing. vals and found must each have at
// least len(keys) elements.
func (t *Trie) MultiGet(keys [][]byte, vals []uint64, found []bool) {
	t.t.MultiGet(keys, vals, found)
}

// MultiSet inserts or updates a batch of keys, returning how many were newly
// added. errs, when non-nil, receives the per-key error (nil on success).
func (t *Trie) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	return t.t.MultiSet(keys, vals, errs)
}

// NewCursor returns an unpositioned cursor backed by the trie's native
// iterator (the sorted leaf list); position it with Seek.
func (t *Trie) NewCursor() Cursor { return t.t.NewCursor() }

// Contains reports whether key is present.
func (t *Trie) Contains(key []byte) bool { return t.t.Contains(key) }

// Delete removes key, reporting whether it was present.
func (t *Trie) Delete(key []byte) bool { return t.t.Delete(key) }

// Len returns the number of stored keys.
func (t *Trie) Len() int { return t.t.Len() }

// Min returns the smallest key and its value.
func (t *Trie) Min() (key []byte, value uint64, ok bool) { return t.t.Min() }

// Max returns the largest key and its value.
func (t *Trie) Max() (key []byte, value uint64, ok bool) { return t.t.Max() }

// Successor returns the smallest stored key ≥ k.
func (t *Trie) Successor(k []byte) (key []byte, value uint64, ok bool) { return t.t.Successor(k) }

// Predecessor returns the largest stored key ≤ k.
func (t *Trie) Predecessor(k []byte) (key []byte, value uint64, ok bool) { return t.t.Predecessor(k) }

// Seek returns an iterator positioned at the smallest key ≥ start
// (the minimum key when start is nil).
func (t *Trie) Seek(start []byte) (*Iterator, error) { return t.t.Seek(start) }

// Scan visits up to n keys ≥ start in ascending order; fn returning false
// stops early. Returns the number of keys visited. With scans disabled it
// visits nothing.
func (t *Trie) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	visited, _ := t.t.Scan(start, n, fn)
	return visited
}

// Stats scans the table and reports structural statistics. Not linearizable
// with concurrent writers.
func (t *Trie) Stats() Stats { return t.t.Stats() }

// CheckInvariants deep-checks the structure; for tests and debugging on a
// quiescent trie.
func (t *Trie) CheckInvariants() error { return t.t.CheckInvariants() }

// MemoryOverheadBytes reports the index's own memory — the hash table plus
// per-key record bookkeeping, excluding key-value bytes (§6.5).
func (t *Trie) MemoryOverheadBytes() int64 {
	s := t.t.Stats()
	return s.TableBytes + s.RecordPtrBytes
}

// LookupLevels returns the cache-line addresses a lookup of k would touch,
// one slice per trie level (two candidate buckets each, plus the record
// line). Used by the memory simulator to regenerate the paper's
// counter-based results (Figure 2, Table 3).
func (t *Trie) LookupLevels(k []byte) [][]uint64 { return t.t.LookupLevels(k) }

// Name identifies the index in benchmark output.
func (t *Trie) Name() string { return "CuckooTrie" }

// ConcurrentSafe marks the trie safe for concurrent use.
func (t *Trie) ConcurrentSafe() bool { return true }
