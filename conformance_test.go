package cuckootrie_test

import (
	"testing"

	cuckootrie "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/skiplist"
)

// The shared conformance suite runs against the Cuckoo Trie and every
// baseline so the benchmark comparisons are apples-to-apples.

func TestConformanceCuckooTrie(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index {
		return cuckootrie.New(cuckootrie.Config{CapacityHint: capacity, AutoResize: true})
	}, indextest.Options{})
}

func TestConformanceART(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return art.New() }, indextest.Options{})
}

func TestConformanceBTree(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return btree.New() }, indextest.Options{})
}

func TestConformanceSkipList(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return skiplist.New(1) }, indextest.Options{})
}
