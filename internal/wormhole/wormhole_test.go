package wormhole_test

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/wormhole"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return wormhole.New() }, indextest.Options{})
}

func TestAnchorSplits(t *testing.T) {
	// Keys with deep shared prefixes force long anchors in the meta-trie.
	ix := wormhole.New()
	n := 5000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("shared/prefix/path/%08d", i))
		if _, err := ix.Set(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("shared/prefix/path/%08d", i))
		if v, ok := ix.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(%s) = %d,%v", k, v, ok)
		}
	}
	// Ordered scan across many leaves.
	prev := -1
	ix.Scan(nil, n, func(k []byte, v uint64) bool {
		if int(v) <= prev {
			t.Fatalf("disorder %d after %d", v, prev)
		}
		prev = int(v)
		return true
	})
}
