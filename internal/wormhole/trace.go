package wormhole

import "reflect"

// LookupLevels models Wormhole's lookup memory behaviour: a binary search
// over prefix LENGTHS — each probe is a hash-table access whose target
// depends on the previous probe's outcome, so the ~log2(L) probes are
// serial — followed by a binary search inside the multi-key leaf.
func (t *Index) LookupLevels(key []byte) [][]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var levels [][]uint64
	lo, hi := 0, len(key)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		p := string(key[:mid])
		// Address: identity of the meta node (or a synthetic miss address).
		if node, ok := t.meta[p]; ok {
			levels = append(levels, []uint64{uint64(reflect.ValueOf(node).Pointer()) / 64})
			lo = mid
		} else {
			levels = append(levels, []uint64{0x2_0000_0000 + hashAddr(p)})
			hi = mid - 1
		}
	}
	l := t.findLeaf(key)
	if l != nil {
		addr := uint64(reflect.ValueOf(l).Pointer())
		levels = append(levels, []uint64{addr / 64, addr/64 + 5, addr/64 + 11, addr/64 + 17})
	}
	return levels
}

func hashAddr(p string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h % (1 << 24)
}
