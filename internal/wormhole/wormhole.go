// Package wormhole implements a simplified Wormhole index (Wu, Ni & Jiang,
// EuroSys'19), the paper's "Wormhole" baseline (§6.1): sorted multi-key leaf
// nodes linked in key order, plus a hashed meta-trie over leaf anchor
// prefixes that locates the target leaf with a binary search over prefix
// LENGTHS — O(log L) hash probes for L-byte keys instead of O(log N)
// comparisons.
//
// Simplifications versus the original (documented in DESIGN.md): byte (not
// bit) granularity for anchors, Go map as the meta-trie hash table, and a
// global RWMutex for thread safety (the paper observes Wormhole's insert
// throughput saturating under concurrency; ours does too, for a different
// reason).
package wormhole

import (
	"bytes"
	"sort"
	"sync"
)

const leafCap = 128

type leaf struct {
	anchor     []byte
	keys       [][]byte
	vals       []uint64
	prev, next *leaf
}

type metaNode struct {
	lmost, rmost *leaf     // leftmost/rightmost leaves whose anchor has this prefix
	children     [4]uint64 // bitmap over next anchor byte
	leafHere     *leaf     // leaf whose anchor equals this prefix exactly
}

// Index is a simplified Wormhole ordered index.
type Index struct {
	mu   sync.RWMutex
	meta map[string]*metaNode
	head *leaf // leftmost leaf (anchor = empty prefix)
	size int
}

// New creates an empty index.
func New() *Index {
	ix := &Index{meta: make(map[string]*metaNode)}
	h := &leaf{anchor: []byte{}}
	ix.head = h
	ix.insertAnchor(h)
	return ix
}

// Name implements index.Index.
func (ix *Index) Name() string { return "Wormhole" }

// Len returns the number of stored keys.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.size
}

// ConcurrentSafe implements index.Concurrent.
func (ix *Index) ConcurrentSafe() bool { return true }

func bmHas(bm *[4]uint64, b byte) bool { return bm[b>>6]>>(b&63)&1 != 0 }
func bmSet(bm *[4]uint64, b byte)      { bm[b>>6] |= 1 << (b & 63) }
func bmMaxBelow(bm *[4]uint64, b byte) int {
	for w := int(b) - 1; w >= 0; w-- {
		if bmHas(bm, byte(w)) {
			return w
		}
	}
	return -1
}

// findLeaf locates the leaf that must contain key if present: the leaf with
// the largest anchor ≤ key. Callers hold at least the read lock.
func (ix *Index) findLeaf(key []byte) *leaf {
	// Binary search over prefix lengths for the longest prefix of key that
	// exists in the meta-trie (Wormhole's core trick).
	lo, hi := 0, len(key) // invariant: key[:lo] exists in meta
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if _, ok := ix.meta[string(key[:mid])]; ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	node := ix.meta[string(key[:lo])]
	if lo == len(key) {
		if node.leafHere != nil {
			return node.leafHere
		}
		// All anchors under this prefix extend it and sort above key.
		return node.lmost.prev
	}
	b := key[lo]
	if w := bmMaxBelow(&node.children, b); w >= 0 {
		child := ix.meta[string(append(append([]byte(nil), key[:lo]...), byte(w)))]
		return child.rmost
	}
	if node.leafHere != nil {
		return node.leafHere
	}
	return node.lmost.prev
}

// Get returns the value stored for key.
func (ix *Index) Get(key []byte) (uint64, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	l := ix.findLeaf(key)
	if l == nil {
		return 0, false
	}
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], key) >= 0 })
	if i < len(l.keys) && bytes.Equal(l.keys[i], key) {
		return l.vals[i], true
	}
	return 0, false
}

// Set inserts or updates key. added reports whether key was newly inserted.
func (ix *Index) Set(key []byte, value uint64) (added bool, err error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	l := ix.findLeaf(key)
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], key) >= 0 })
	if i < len(l.keys) && bytes.Equal(l.keys[i], key) {
		l.vals[i] = value
		return false, nil
	}
	l.keys = append(l.keys, nil)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = append([]byte(nil), key...)
	l.vals = append(l.vals, 0)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = value
	ix.size++
	if len(l.keys) > leafCap {
		ix.split(l)
	}
	return true, nil
}

// split divides leaf l, registering the right half's anchor in the meta-trie.
func (ix *Index) split(l *leaf) {
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append(make([][]byte, 0, leafCap+1), l.keys[mid:]...),
		vals: append(make([]uint64, 0, leafCap+1), l.vals[mid:]...),
		prev: l,
		next: l.next,
	}
	// Anchor: shortest prefix of right.min strictly greater than left.max —
	// the first differing byte position + 1 (byte granularity).
	leftMax := l.keys[mid-1]
	rightMin := right.keys[0]
	cp := 0
	for cp < len(leftMax) && cp < len(rightMin) && leftMax[cp] == rightMin[cp] {
		cp++
	}
	alen := cp + 1
	if alen > len(rightMin) {
		alen = len(rightMin)
	}
	right.anchor = append([]byte(nil), rightMin[:alen]...)
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	if l.next != nil {
		l.next.prev = right
	}
	l.next = right
	ix.insertAnchor(right)
}

// insertAnchor registers a leaf's anchor and all its prefixes.
func (ix *Index) insertAnchor(l *leaf) {
	a := l.anchor
	for n := 0; n <= len(a); n++ {
		p := string(a[:n])
		node, ok := ix.meta[p]
		if !ok {
			node = &metaNode{lmost: l, rmost: l}
			ix.meta[p] = node
		} else {
			if bytes.Compare(l.anchor, node.lmost.anchor) < 0 {
				node.lmost = l
			}
			if bytes.Compare(l.anchor, node.rmost.anchor) > 0 {
				node.rmost = l
			}
		}
		if n == len(a) {
			node.leafHere = l
		} else {
			bmSet(&node.children, a[n])
		}
	}
}

// Delete removes key. Emptied leaves are retained (their anchors stay in the
// meta-trie); scans skip them.
func (ix *Index) Delete(key []byte) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	l := ix.findLeaf(key)
	if l == nil {
		return false
	}
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], key) >= 0 })
	if i >= len(l.keys) || !bytes.Equal(l.keys[i], key) {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	ix.size--
	return true
}

// Scan visits up to n keys ≥ start in ascending order.
func (ix *Index) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	l := ix.findLeaf(start)
	if l == nil {
		l = ix.head
	}
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], start) >= 0 })
	visited := 0
	for l != nil && visited < n {
		for ; i < len(l.keys) && visited < n; i++ {
			visited++
			if !fn(l.keys[i], l.vals[i]) {
				return visited
			}
		}
		l = l.next
		i = 0
	}
	return visited
}

// MemoryOverheadBytes counts leaves, per-key slots, and the meta-trie,
// excluding key bytes (§6.5).
func (ix *Index) MemoryOverheadBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var total int64
	for l := ix.head; l != nil; l = l.next {
		total += 80 + int64(cap(l.keys))*24 + int64(cap(l.vals))*8 + int64(cap(l.anchor))
	}
	// Meta-trie: map entry overhead ≈ 48B + node struct 56B + anchor prefix.
	for p := range ix.meta {
		total += 48 + 56 + int64(len(p))
	}
	return total
}
