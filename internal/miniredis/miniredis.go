// Package miniredis is a small Redis-like in-memory data store over RESP,
// reproducing the paper's full-system benchmark (§6.8, Figure 13): its
// sorted-set type has a pluggable ordered-index engine, so the Cuckoo Trie
// and every baseline can replace Redis's default hashtable+skiplist pair.
// The client and server run over loopback TCP, and per-element work during
// scans happens in the server loop — which is exactly the setting where the
// Cuckoo Trie's next-leaf prefetch overlaps with system work (§4.4).
//
// Commands: PING, ZADD key member value, ZSCORE key member,
// ZMSCORE key member [member ...], ZRANGEBYLEX key start count,
// ZREM key member, DBSIZE, FLUSHALL, SAVE, BGSAVE.
//
// With EnablePersistence the server is durable (see internal/persist):
// writes append to a segmented WAL after they apply, SAVE/BGSAVE cut
// snapshots through the engines' ordered cursors — BGSAVE blocking
// writers only for the all-stripe set-list capture — and boot-time
// recovery bulk-loads the newest valid snapshot before replaying the WAL
// tail.
//
// The server drains pipelined commands in batches: runs of ZSCOREs against
// the same sorted set collapse into one MultiGet, so an MLP-aware engine
// overlaps the whole pipeline's DRAM misses (§4.4 generalized across keys).
// The keyspace itself — set name → index — is striped across power-of-two
// lock stripes (set-name hash routing), so concurrent connections never
// serialize on a single keyspace mutex just to resolve which set a command
// targets.
package miniredis

import (
	"errors"
	"fmt"
	"hash/maphash"
	"io"
	"net"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/resp"
	"repro/internal/sharded"
)

// Engine names a sorted-set index implementation.
type Engine string

// EngineFactory creates an index for a sorted set.
type EngineFactory func(capacityHint int) index.Index

// ShardedFactory wraps an engine factory so every sorted set is an N-shard
// scatter-gather index (see internal/sharded): pipelined ZSCORE runs that
// collapse into one MultiGet then fan out across cores, one sub-batch per
// shard, composing cross-core parallelism with each shard's batch path.
// Keys route by hash; see ShardedFactoryWithRouter for range routing.
func ShardedFactory(inner EngineFactory, shards int) EngineFactory {
	return ShardedFactoryWithRouter(inner, shards, sharded.NewHashRouter)
}

// ShardedFactoryWithRouter is ShardedFactory with an explicit routing mode:
// under sharded.NewPrefixRouter the shards range-partition each sorted set,
// so a ZRANGEBYLEX whose range lives in one shard bypasses the k-way merge.
func ShardedFactoryWithRouter(inner EngineFactory, shards int, mk sharded.RouterMaker) EngineFactory {
	return func(capacityHint int) index.Index {
		return sharded.NewWithRouter(shards, capacityHint, inner, mk)
	}
}

// keyspace maps set names to their indexes across power-of-two lock
// stripes, so concurrent connections resolving different sets do not
// serialize on one mutex: a set name hashes to a stripe, and only that
// stripe's lock is taken. Lookups of existing sets take the stripe's read
// lock; creation upgrades to the write lock and re-checks, so two
// connections racing to create the same set always converge on one index.
type keyspace struct {
	seed    maphash.Seed
	mask    uint64
	stripes []stripe
}

type stripe struct {
	mu   sync.RWMutex
	sets map[string]index.Index
	// Pad each stripe to its own cache line (RWMutex 24B + map header 8B
	// = 32B on 64-bit): without it two adjacent stripes share a line and
	// their lock traffic false-shares, re-serializing at the coherence
	// level what the striping is meant to spread.
	_ [32]byte
}

// newKeyspace builds a keyspace with n stripes rounded up to a power of
// two.
func newKeyspace(n int) *keyspace {
	n = sharded.RoundShards(n)
	ks := &keyspace{
		seed:    maphash.MakeSeed(),
		mask:    uint64(n - 1),
		stripes: make([]stripe, n),
	}
	for i := range ks.stripes {
		ks.stripes[i].sets = make(map[string]index.Index)
	}
	return ks
}

func (ks *keyspace) stripeIdx(name string) int {
	return int(maphash.String(ks.seed, name) & ks.mask)
}

func (ks *keyspace) stripeFor(name string) *stripe {
	return &ks.stripes[ks.stripeIdx(name)]
}

// get returns the named set, creating it with mk on first use.
func (ks *keyspace) get(name string, mk func() index.Index) index.Index {
	st := ks.stripeFor(name)
	st.mu.RLock()
	ix, ok := st.sets[name]
	st.mu.RUnlock()
	if ok {
		return ix
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if ix, ok := st.sets[name]; ok {
		return ix // lost the creation race: use the winner's index
	}
	ix = mk()
	st.sets[name] = ix
	return ix
}

// lookup returns the named set without creating it. The replication applier
// uses it for OpDelete: deleting from a set that does not exist must not
// conjure an empty index.
func (ks *keyspace) lookup(name string) (index.Index, bool) {
	st := ks.stripeFor(name)
	st.mu.RLock()
	ix, ok := st.sets[name]
	st.mu.RUnlock()
	return ix, ok
}

// lockAll / rlockAll acquire every stripe in index order — one global
// order, so keyspace-wide operations (FLUSHALL, DBSIZE, BGSAVE's set
// collection) can never deadlock against each other and always observe a
// CONSISTENT set list: before the fix, flush cleared stripe-by-stripe
// while a concurrent snapshot or DBSIZE walked them, so either could see
// half the keyspace flushed and half not.
func (ks *keyspace) lockAll() {
	for i := range ks.stripes {
		ks.stripes[i].mu.Lock()
	}
}

func (ks *keyspace) unlockAll() {
	for i := range ks.stripes {
		ks.stripes[i].mu.Unlock()
	}
}

func (ks *keyspace) rlockAll() {
	for i := range ks.stripes {
		ks.stripes[i].mu.RLock()
	}
}

func (ks *keyspace) runlockAll() {
	for i := range ks.stripes {
		ks.stripes[i].mu.RUnlock()
	}
}

// totalLen sums the key counts of every set (DBSIZE), against a consistent
// set list: all stripes are read-locked before any is summed, so a racing
// FLUSHALL is observed entirely or not at all.
func (ks *keyspace) totalLen() int {
	ks.rlockAll()
	defer ks.runlockAll()
	total := 0
	for i := range ks.stripes {
		for _, ix := range ks.stripes[i].sets {
			total += ix.Len()
		}
	}
	return total
}

// flush drops every set (FLUSHALL), atomically with respect to every other
// keyspace-wide operation: all stripes are write-locked before any is
// cleared.
func (ks *keyspace) flush() {
	ks.lockAll()
	defer ks.unlockAll()
	for i := range ks.stripes {
		ks.stripes[i].sets = make(map[string]index.Index)
	}
}

// snapshotSets collects every set's name, cursor and length under the
// all-stripe read lock — the only moment BGSAVE blocks writers (and only
// those resolving a set name). Sets are returned in name order so
// snapshots of the same state are byte-identical.
func (ks *keyspace) snapshotSets() []persist.SetSnapshot {
	ks.rlockAll()
	defer ks.runlockAll()
	var sets []persist.SetSnapshot
	for i := range ks.stripes {
		for name, ix := range ks.stripes[i].sets {
			sets = append(sets, persist.SetSnapshot{
				Set:     name,
				Cursor:  ix.NewCursor(),
				LenHint: ix.Len(),
			})
		}
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Set < sets[j].Set })
	return sets
}

// Server is the mini-Redis server.
type Server struct {
	create   func() index.Index // factory bound to the capacity hint once
	factory  EngineFactory
	capacity int
	ks       *keyspace
	ln       net.Listener
	wg       sync.WaitGroup
	serial   bool // single-threaded command execution (Redis's model)
	cmdMu    sync.Mutex

	// Persistence (nil/zero when the server is memory-only).
	wal        *persist.WAL
	dataDir    string
	fsyncPol   persist.FsyncPolicy
	snapEvery  int          // logged writes between automatic BGSAVEs
	rewriteAt  int64        // WAL bytes since last snapshot that trigger one; 0 disables
	sinceSave  atomic.Int64 // logged writes since the last snapshot
	savedBytes atomic.Int64 // WAL AppendedBytes watermark at the last snapshot cut
	saving     atomic.Bool  // one BGSAVE at a time
	saveMu     sync.Mutex   // serializes snapshot cuts (SAVE vs BGSAVE)
	// quiesceSaves: the engine is not concurrent-safe, so snapshot cursors
	// cannot run against live writers — saves must hold cmdMu (taken
	// BEFORE saveMu; dispatch already holds cmdMu when it calls save, so
	// the order is fixed as cmdMu → saveMu everywhere).
	quiesceSaves bool
	// writeMus (persistent concurrent servers only) order apply+log per
	// keyspace stripe; see lockWrite.
	writeMus  []sync.Mutex
	bgWg      sync.WaitGroup
	bgSaveErr error // last background save failure, under saveMu

	// Replication (see internal/repl and replication.go in this package).
	// repl is the primary-side manager, created with persistence; bulkMu
	// fences bulk loads against full-sync snapshot cuts (Preload holds the
	// read lock, a PSYNC handshake write-locks to wait in-flight loads
	// out). replMu guards the replica-side session.
	repl        *repl.Manager
	fanoutBytes int
	bulkMu      sync.RWMutex
	replMu      sync.Mutex
	replSess    *repl.Replica
	lastMaster  string // resume cache: last primary this server replicated
	lastApplied uint64 // ...and the LSN applied when that session detached
}

// NewServer creates a server whose sorted sets use the given engine.
// serial mimics Redis's single-threaded command loop; with serial=false,
// connections execute commands concurrently (safe only for concurrent-safe
// engines). The keyspace is striped either way, so set resolution never
// serializes connections on a single lock.
func NewServer(factory EngineFactory, capacityHint int, serial bool) *Server {
	return &Server{
		create:   func() index.Index { return factory(capacityHint) },
		factory:  factory,
		capacity: capacityHint,
		ks:       newKeyspace(max(8, runtime.GOMAXPROCS(0))),
		serial:   serial,
	}
}

// Stripes reports the power-of-two keyspace stripe count.
func (s *Server) Stripes() int { return len(s.ks.stripes) }

// ErrNoPersistence reports a SAVE/BGSAVE against a memory-only server.
var ErrNoPersistence = errors.New("miniredis: persistence not enabled")

// EnablePersistence makes the server durable: it recovers dir's newest
// valid snapshot plus WAL tail into the keyspace (each set bulk-loaded, so
// sharded engines ride the partitioned ingest and untrained sampled
// routers train from the snapshot stream), then opens the WAL for the
// write path. ZADD/ZREM/FLUSHALL append a record after they apply;
// snapshotEvery > 0 triggers a background snapshot every that many logged
// writes. Must be called before Listen. The returned Result reports what
// was recovered.
//
// Preload bypasses the WAL by design (logging a bulk load record-by-record
// would forfeit the partitioned ingest); call Save after preloading to
// make the loaded keys durable.
func (s *Server) EnablePersistence(dir string, policy persist.FsyncPolicy, snapshotEvery int) (*persist.Result, error) {
	return s.EnablePersistenceWithOptions(dir, PersistOptions{Policy: policy, SnapshotEvery: snapshotEvery})
}

// PersistOptions tunes persistence beyond EnablePersistence's defaults —
// exposed mainly so tests can force tiny WAL segments and replication
// fan-out buffers to exercise retention edges.
type PersistOptions struct {
	Policy        persist.FsyncPolicy
	SnapshotEvery int   // logged writes between automatic BGSAVEs; 0 disables
	SegmentBytes  int64 // WAL segment rotation threshold; 0 = persist default
	FanoutBytes   int   // replication fan-out ring bound; 0 = repl default
	// GroupMaxDelay is the group-commit coalescing window under
	// FsyncGroup/FsyncAsync; 0 = persist default (2ms), negative = none.
	GroupMaxDelay time.Duration
	// AutoRewriteBytes caps the WAL tail's estimated replay cost: once the
	// record bytes appended since the last snapshot exceed it, a background
	// snapshot (the BGSAVE + RemoveObsolete path) rewrites the log
	// automatically, independent of the SnapshotEvery record cadence.
	// 0 disables.
	AutoRewriteBytes int64
}

// EnablePersistenceWithOptions is EnablePersistence with explicit tuning.
func (s *Server) EnablePersistenceWithOptions(dir string, opts PersistOptions) (*persist.Result, error) {
	if s.ln != nil {
		return nil, errors.New("miniredis: enable persistence before Listen")
	}
	if s.wal != nil {
		return nil, errors.New("miniredis: persistence already enabled")
	}
	res, err := persist.Recover(dir, func(set string, hint int) index.Index {
		if hint <= 0 {
			hint = s.capacity
		}
		return s.factory(hint)
	})
	if err != nil {
		return nil, err
	}
	for name, ix := range res.Sets {
		st := s.ks.stripeFor(name)
		st.mu.Lock()
		st.sets[name] = ix
		st.mu.Unlock()
	}
	// FloorLSN: a durable snapshot can be ahead of an unsynced WAL tail
	// after a crash; new LSNs must start past everything recovery used, or
	// the next recovery's LSN filter would skip acknowledged writes.
	wal, err := persist.OpenWAL(dir, persist.WALOptions{
		Policy:        opts.Policy,
		SegmentBytes:  opts.SegmentBytes,
		FloorLSN:      res.LastLSN,
		GroupMaxDelay: opts.GroupMaxDelay,
	})
	if err != nil {
		return nil, err
	}
	s.wal, s.dataDir, s.snapEvery = wal, dir, opts.SnapshotEvery
	s.fsyncPol, s.rewriteAt = opts.Policy, opts.AutoRewriteBytes
	// A durable server can feed read replicas: every WAL append publishes
	// its wire frame into the fan-out ring, in LSN order because the hook
	// runs under the WAL's own mutex.
	s.repl = repl.NewManager(repl.Config{
		Dir:         dir,
		LastLSN:     wal.LSN(),
		FanoutBytes: opts.FanoutBytes,
		CutSnapshot: s.snapshotForSync,
	})
	wal.SetOnAppend(s.repl.Publish)
	// Probe the engine once: every set comes from the same factory, so one
	// throwaway instance says whether snapshots may run against live
	// writers or must quiesce the command loop first.
	s.quiesceSaves = s.serial && !index.IsConcurrent(s.factory(1))
	if !s.serial {
		// Concurrent command execution needs explicit write ordering: the
		// WAL replays in LSN order, so two racing writes to the same set
		// must log in the order they applied or recovery rebuilds a state
		// the live server never exposed. Serial mode gets this from cmdMu.
		s.writeMus = make([]sync.Mutex, len(s.ks.stripes))
	}
	return res, nil
}

// lockWrite makes apply+log atomic for one set's stripe on a persistent
// concurrent server (no-op otherwise — serial servers order writes via
// cmdMu, memory-only servers have no log to keep in order). It returns the
// unlock, or nil when no locking is needed.
func (s *Server) lockWrite(set string) func() {
	if s.writeMus == nil {
		return nil
	}
	mu := &s.writeMus[s.ks.stripeIdx(set)]
	mu.Lock()
	return mu.Unlock
}

// lockAllWrites is lockWrite for keyspace-wide writes (FLUSHALL): every
// stripe's write order is pinned around the flush-and-log pair, so no
// racing ZADD can apply to a pre-flush index and log after the OpFlushAll
// record (which would resurrect on recovery a key the live server lost).
func (s *Server) lockAllWrites() func() {
	if s.writeMus == nil {
		return nil
	}
	for i := range s.writeMus {
		s.writeMus[i].Lock()
	}
	return func() {
		for i := range s.writeMus {
			s.writeMus[i].Unlock()
		}
	}
}

// Persistent reports whether the server has a data directory attached.
func (s *Server) Persistent() bool { return s.wal != nil }

// logWrite appends one record for an applied write and drives the
// automatic snapshot cadence, returning the record's LSN — the offset a
// later WAIT on the same connection targets. A nil WAL (memory-only
// server) is a no-op returning 0.
func (s *Server) logWrite(op persist.Op, set string, key []byte, val uint64) (uint64, error) {
	if s.wal == nil {
		return 0, nil
	}
	lsn, err := s.wal.Append(op, set, key, val)
	if err != nil {
		return 0, err
	}
	if s.snapEvery > 0 && s.sinceSave.Add(1) >= int64(s.snapEvery) {
		s.sinceSave.Store(0)
		s.BGSave()
	} else if s.rewriteAt > 0 && s.wal.AppendedBytes()-s.savedBytes.Load() >= s.rewriteAt {
		// Automatic log rewrite: the WAL tail past the last snapshot has
		// grown beyond the replay-cost budget, so compact it into a snapshot
		// (BGSave ends with RemoveObsolete, which drops the covered
		// segments). BGSave's one-at-a-time CAS dedupes the burst of writes
		// that all see the budget exceeded before the cut resets the
		// watermark.
		s.BGSave()
	}
	return lsn, nil
}

// Save cuts a snapshot in the foreground: the keyspace's set list is
// captured under the all-stripe lock at the WAL's current LSN, every set
// is serialized through its cursor into snap-<lsn>.snap (temp file +
// rename, so a crash mid-save never damages the previous snapshot), the
// MANIFEST is repointed, and WAL segments the snapshot fully covers are
// removed. Writers are only blocked for the stripe acquisition — cursor
// draining runs against the live (concurrent-safe) engines.
func (s *Server) Save() error { return s.save(false) }

// save implements Save; cmdLocked says the calling goroutine already
// holds cmdMu (a SAVE command dispatched in serial mode).
func (s *Server) save(cmdLocked bool) error {
	if s.wal == nil {
		return ErrNoPersistence
	}
	if s.quiesceSaves && !cmdLocked {
		// A non-concurrent-safe engine cannot be iterated while writers
		// mutate it: quiesce commands for the duration (Redis without
		// fork(2) semantics). Concurrent-safe engines skip this. cmdMu is
		// always taken before saveMu.
		s.cmdMu.Lock()
		defer s.cmdMu.Unlock()
	}
	_, _, err := s.cutSnapshot()
	return err
}

// cutSnapshot writes one snapshot and returns its LSN and file path; it
// serializes against concurrent cuts via saveMu. Callers handle the
// quiesce-vs-cmdMu question (see save and snapshotForSync).
func (s *Server) cutSnapshot() (uint64, string, error) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	// The LSN is captured BEFORE the cursors: every record ≤ lsn was
	// applied before this point (writes log after they apply), so the
	// cursors see it; records > lsn replay idempotently on top whether or
	// not the cursors caught them.
	lsn := s.wal.LSN()
	// Reset the auto-rewrite budget at the same point the snapshot LSN is
	// captured: bytes logged at or below lsn are about to be covered.
	s.savedBytes.Store(s.wal.AppendedBytes())
	sets := s.ks.snapshotSets()
	path, err := persist.WriteSnapshot(s.dataDir, lsn, sets)
	if err != nil {
		return 0, "", err
	}
	s.sinceSave.Store(0)
	return lsn, path, persist.RemoveObsolete(s.dataDir, lsn)
}

// snapshotForSync cuts the fresh snapshot a replica's full sync streams
// (the repl.Manager's CutSnapshot hook). Always fresh, never a cached
// file: bulk preloads bypass the WAL, so only a snapshot cut now is
// guaranteed to contain them.
func (s *Server) snapshotForSync() (uint64, string, error) {
	if s.quiesceSaves {
		s.cmdMu.Lock()
		defer s.cmdMu.Unlock()
	}
	return s.cutSnapshot()
}

// BGSave starts Save on a background goroutine, at most one at a time.
// It reports whether a new save was started; a failure is retrievable via
// LastBGSaveError. Close waits for an in-flight background save.
func (s *Server) BGSave() bool {
	if s.wal == nil || !s.saving.CompareAndSwap(false, true) {
		return false
	}
	s.bgWg.Add(1)
	go func() {
		defer s.bgWg.Done()
		defer s.saving.Store(false)
		err := s.save(false)
		s.saveMu.Lock()
		s.bgSaveErr = err
		s.saveMu.Unlock()
	}()
	return true
}

// LastBGSaveError returns the most recent background save's error (nil
// after a success).
func (s *Server) LastBGSaveError() error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	return s.bgSaveErr
}

// Preload bulk-loads keys[i] → vals[i] into the named sorted set through
// the engine's bulk-load path (index.BulkLoad) — the partitioned
// concurrent ingest for sharded engines — creating the set if needed. It
// is meant for warming a server before benchmarking, off the RESP path.
func (s *Server) Preload(set string, keys [][]byte, vals []uint64) (int, error) {
	if s.isReplica() {
		return 0, errors.New("miniredis: cannot preload a replica (its keyspace mirrors the primary)")
	}
	// The read lock fences replication: a PSYNC handshake write-locks
	// bulkMu before cutting its full-sync snapshot, so a replica that
	// connects mid-load waits for the load to finish instead of streaming a
	// half-loaded keyspace.
	s.bulkMu.RLock()
	defer s.bulkMu.RUnlock()
	n, err := index.BulkLoad(s.set(set), keys, vals)
	if err == nil && s.repl != nil {
		// Preloaded keys bypass the WAL, so no replica state from before
		// this point can catch up through the log alone: fence partial
		// syncs below the current LSN and kick connected replicas into
		// fresh full syncs.
		s.repl.InvalidatePartialBelow(s.wal.LSN())
	}
	return n, err
}

// Listen starts accepting on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server, waits for connections and any background save
// to drain, and cleanly closes the WAL. The returned error is the WAL
// close's: that close is the log's final flush+fsync, so discarding it
// would silently un-durable the tail of acknowledged writes (caught by
// ctvet's durabilityerr when this method returned nothing).
func (s *Server) Close() error {
	if s.ln != nil {
		s.ln.Close()
	}
	if s.repl != nil {
		// Kick replica connections first: their serve goroutines are
		// blocked in the feed and must return before wg drains.
		s.repl.Close()
	}
	s.detachReplica(true)
	s.wg.Wait()
	s.bgWg.Wait()
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) set(key string) index.Index {
	return s.ks.get(key, s.create)
}

// maxPipelineBatch bounds how many pipelined commands one dispatch drains.
const maxPipelineBatch = 128

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	cs := &connState{}
	batch := make([][][]byte, 0, maxPipelineBatch)
	for {
		cmd, err := r.ReadCommand()
		if err != nil {
			s.dropWithError(w, err)
			return
		}
		// Drain any further pipelined commands already buffered: the batch is
		// dispatched as a unit so independent lookups can share one MultiGet.
		// CommandBuffered (not Buffered) gates the drain so a half-received
		// command never blocks the reads while replies are withheld.
		batch = append(batch[:0], cmd)
		for r.CommandBuffered() && len(batch) < maxPipelineBatch {
			cmd, err = r.ReadCommand()
			if err != nil {
				break
			}
			batch = append(batch, cmd)
		}
		// PSYNC turns the connection into a replication feed: dispatch
		// whatever preceded it, then hand the connection to the manager for
		// its remaining lifetime.
		if i := psyncIndex(batch); i >= 0 {
			s.dispatchBatch(w, batch[:i], cs)
			s.servePSync(conn, r, w, cs, batch[i])
			return
		}
		// A lone WAIT dispatches outside cmdMu: it blocks until replicas
		// ack, and a serial server must keep executing the very writes the
		// replicas need to ack while it waits.
		prevWrite := cs.lastWrite
		if len(batch) == 1 && len(batch[0]) > 0 && strings.EqualFold(string(batch[0][0]), "WAIT") {
			s.cmdWait(w, cs, batch[0], false)
		} else {
			s.dispatchBatch(w, batch, cs)
		}
		// Group commit's ack barrier: the batch's replies are still only
		// buffered in w, so parking here — after dispatch released cmdMu and
		// the stripe write mutexes, before the flush that acknowledges —
		// delays nothing but this connection while one fsync covers the
		// whole pipeline. Async mode skips the wait: replies flush
		// immediately and DurableLSN reports how far durability lags.
		if s.fsyncPol == persist.FsyncGroup && cs.lastWrite > prevWrite {
			if cerr := s.wal.Commit(cs.lastWrite); cerr != nil {
				// The buffered replies contain acks for writes that never
				// became durable: drop the connection without flushing them.
				// A reset connection promises nothing; a flushed ":1" does.
				return
			}
		}
		if err != nil { // tail read error: answer what we got, then drop
			s.dropWithError(w, err)
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// psyncIndex finds a PSYNC command in a drained batch (-1 when absent). A
// replica never pipelines past its PSYNC, so anything after one would be
// handshake bytes misread as commands — the index lets serve stop exactly
// there.
func psyncIndex(batch [][][]byte) int {
	for i, cmd := range batch {
		if len(cmd) > 0 && strings.EqualFold(string(cmd[0]), "PSYNC") {
			return i
		}
	}
	return -1
}

// dropWithError ends a connection the way Redis does: a clean hangup (EOF
// between commands) just closes, but malformed input gets an
// "-ERR Protocol error" reply first, so the client can diagnose what it
// sent instead of seeing a silent disconnect. The reply rides the same
// flush as any replies already owed for the drained pipeline; flush errors
// are moot — the connection is being dropped either way.
func (s *Server) dropWithError(w *resp.Writer, err error) {
	if err != io.EOF {
		w.WriteError(fmt.Sprintf("Protocol error: %v", err))
	}
	w.Flush() //ctvet:ignore the connection is being dropped; this flush is best-effort diagnostics, not an ack
}

// dispatchBatch executes a pipeline of commands. Consecutive ZSCOREs against
// the same key collapse into a single MultiGet; everything else dispatches
// one-by-one. Replies are written in command order either way.
func (s *Server) dispatchBatch(w *resp.Writer, batch [][][]byte, cs *connState) {
	if len(batch) == 0 {
		return
	}
	if s.serial {
		s.cmdMu.Lock()
		defer s.cmdMu.Unlock()
	}
	for i := 0; i < len(batch); {
		// Find a run of ZSCOREs with identical set keys.
		j := i
		for j < len(batch) && isZScore(batch[j]) &&
			(j == i || string(batch[j][1]) == string(batch[i][1])) {
			j++
		}
		if j-i >= 2 {
			s.zscoreBatch(w, batch[i][1], batch[i:j])
			i = j
			continue
		}
		s.dispatchOne(w, batch[i], cs)
		i++
	}
}

func isZScore(cmd [][]byte) bool {
	return len(cmd) == 3 && strings.EqualFold(string(cmd[0]), "ZSCORE")
}

// zscoreBatch answers a run of same-set ZSCOREs with one MultiGet.
func (s *Server) zscoreBatch(w *resp.Writer, key []byte, cmds [][][]byte) {
	members := make([][]byte, len(cmds))
	for i, c := range cmds {
		members[i] = c[2]
	}
	vals := make([]uint64, len(members))
	found := make([]bool, len(members))
	s.set(string(key)).MultiGet(members, vals, found)
	for i := range members {
		if found[i] {
			w.WriteBulk([]byte(strconv.FormatUint(vals[i], 10)))
		} else {
			w.WriteBulk(nil)
		}
	}
}

// dispatchOne executes a single command. The caller holds cmdMu when the
// server runs in serial mode.
func (s *Server) dispatchOne(w *resp.Writer, cmd [][]byte, cs *connState) {
	if len(cmd) == 0 {
		w.WriteError("empty command")
		return
	}
	var sink uint64
	switch strings.ToUpper(string(cmd[0])) {
	case "PING":
		w.WriteSimple("PONG")
	case "ZADD":
		if len(cmd) != 4 {
			w.WriteError("wrong number of arguments for ZADD")
			return
		}
		if s.rejectReadonly(w) {
			return
		}
		v, err := strconv.ParseUint(string(cmd[3]), 10, 64)
		if err != nil {
			w.WriteError("value is not an integer")
			return
		}
		if unlock := s.lockWrite(string(cmd[1])); unlock != nil {
			defer unlock()
		}
		added, err := s.set(string(cmd[1])).Set(cmd[2], v)
		if err != nil {
			w.WriteError(err.Error())
			return
		}
		// The write is logged after it applied (AOF-style); a WAL failure
		// is reported instead of acknowledging a write that cannot become
		// durable.
		lsn, err := s.logWrite(persist.OpSet, string(cmd[1]), cmd[2], v)
		if err != nil {
			w.WriteError("persistence: " + err.Error())
			return
		}
		cs.lastWrite = lsn
		// Redis semantics: reply 1 only for a newly added member, 0 when an
		// existing member's score was updated.
		if added {
			w.WriteInt(1)
		} else {
			w.WriteInt(0)
		}
	case "ZSCORE":
		if len(cmd) != 3 {
			w.WriteError("wrong number of arguments for ZSCORE")
			return
		}
		v, ok := s.set(string(cmd[1])).Get(cmd[2])
		if !ok {
			w.WriteBulk(nil)
			return
		}
		w.WriteBulk([]byte(strconv.FormatUint(v, 10)))
	case "ZMSCORE":
		// ZMSCORE key member [member ...] — batched scores via MultiGet.
		if len(cmd) < 3 {
			w.WriteError("wrong number of arguments for ZMSCORE")
			return
		}
		members := cmd[2:]
		vals := make([]uint64, len(members))
		found := make([]bool, len(members))
		s.set(string(cmd[1])).MultiGet(members, vals, found)
		w.WriteArrayHeader(len(members))
		for i := range members {
			if found[i] {
				w.WriteBulk([]byte(strconv.FormatUint(vals[i], 10)))
			} else {
				w.WriteBulk(nil)
			}
		}
	case "ZREM":
		if len(cmd) != 3 {
			w.WriteError("wrong number of arguments for ZREM")
			return
		}
		if s.rejectReadonly(w) {
			return
		}
		if unlock := s.lockWrite(string(cmd[1])); unlock != nil {
			defer unlock()
		}
		if s.set(string(cmd[1])).Delete(cmd[2]) {
			// Only a removal that happened is logged: replaying a delete of
			// a key that was never there is harmless, but not logging one
			// that was would resurrect the key on recovery.
			lsn, err := s.logWrite(persist.OpDelete, string(cmd[1]), cmd[2], 0)
			if err != nil {
				w.WriteError("persistence: " + err.Error())
				return
			}
			cs.lastWrite = lsn
			w.WriteInt(1)
		} else {
			w.WriteInt(0)
		}
	case "ZRANGEBYLEX":
		// ZRANGEBYLEX key start count — scan `count` members ≥ start.
		if len(cmd) != 4 {
			w.WriteError("wrong number of arguments for ZRANGEBYLEX")
			return
		}
		count, err := strconv.Atoi(string(cmd[3]))
		if err != nil || count < 0 {
			w.WriteError("count is not an integer")
			return
		}
		var members [][]byte
		s.set(string(cmd[1])).Scan(cmd[2], count, func(k []byte, v uint64) bool {
			// Per-element system work: copy the member for the reply (the
			// work that §4.4's next-leaf prefetch overlaps with).
			members = append(members, append([]byte(nil), k...))
			sink += v
			return true
		})
		w.WriteArrayHeader(len(members))
		for _, m := range members {
			w.WriteBulk(m)
		}
	case "DBSIZE":
		w.WriteInt(int64(s.ks.totalLen()))
	case "FLUSHALL":
		if s.rejectReadonly(w) {
			return
		}
		if unlock := s.lockAllWrites(); unlock != nil {
			defer unlock()
		}
		s.ks.flush()
		lsn, err := s.logWrite(persist.OpFlushAll, "", nil, 0)
		if err != nil {
			w.WriteError("persistence: " + err.Error())
			return
		}
		cs.lastWrite = lsn
		w.WriteSimple("OK")
	case "SAVE":
		// Foreground snapshot; in serial mode cmdMu is already held by this
		// dispatch, so save must not retake it.
		if err := s.save(s.serial); err != nil {
			w.WriteError(err.Error())
			return
		}
		w.WriteSimple("OK")
	case "BGSAVE":
		if !s.Persistent() {
			w.WriteError(ErrNoPersistence.Error())
			return
		}
		if s.BGSave() {
			w.WriteSimple("Background saving started")
		} else {
			w.WriteSimple("Background save already in progress")
		}
	case "REPLICAOF", "SLAVEOF":
		s.cmdReplicaOf(w, cmd)
	case "REPLCONF":
		s.cmdReplconf(w, cs, cmd)
	case "WAIT":
		// A WAIT that reached dispatch was pipelined behind other commands
		// (a lone WAIT bypasses cmdMu in serve). Waiting here under cmdMu
		// only delays other clients, never the acks themselves: replica
		// appliers and ack readers run outside this server's command loop.
		s.cmdWait(w, cs, cmd, true)
	case "INFO":
		s.cmdInfo(w, cmd)
	default:
		w.WriteError(fmt.Sprintf("unknown command '%s'", cmd[0]))
	}
	_ = sink
}

// Client is a minimal pipelining RESP client for the benchmarks.
type Client struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
	err  error // sticky: set once the connection state is unknown
}

// Dial connects to a mini-Redis server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() { c.conn.Close() }

// Do sends one command and reads its reply.
func (c *Client) Do(args ...[]byte) (interface{}, error) {
	if c.err != nil {
		return nil, c.err
	}
	if err := c.w.WriteCommand(args...); err != nil {
		return nil, c.poison(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.poison(err)
	}
	v, err := c.r.ReadReply()
	if err != nil {
		if resp.FrameSafe(err) {
			return nil, err // bad value, but the stream is still in sync
		}
		return nil, c.poison(err)
	}
	return v, nil
}

// Pipeline sends a batch of commands and reads all replies. If one reply
// carries a malformed value but its frame was fully consumed
// (resp.FrameSafe), the remaining replies are still drained so the
// connection stays in sync for subsequent calls; if the transport or the
// reply framing itself fails mid-pipeline, the client is poisoned — every
// later call fails fast instead of reading a reply that belongs to an
// earlier command.
func (c *Client) Pipeline(cmds [][][]byte) ([]interface{}, error) {
	if c.err != nil {
		return nil, c.err
	}
	for _, cmd := range cmds {
		if err := c.w.WriteCommand(cmd...); err != nil {
			return nil, c.poison(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.poison(err)
	}
	out := make([]interface{}, 0, len(cmds))
	var firstErr error
	for range cmds {
		v, err := c.r.ReadReply()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if resp.FrameSafe(err) {
				continue // drain the replies still owed to this pipeline
			}
			// The reply framing is gone, not just one value: the stream
			// position is unknown, so draining would misread replies.
			c.poison(err)
			break
		}
		if firstErr == nil {
			out = append(out, v)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// poison records the first connection-desynchronizing error and returns it.
func (c *Client) poison(err error) error {
	if c.err == nil {
		c.err = fmt.Errorf("miniredis: connection desynchronized: %w", err)
	}
	return c.err
}
