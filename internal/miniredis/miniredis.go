// Package miniredis is a small Redis-like in-memory data store over RESP,
// reproducing the paper's full-system benchmark (§6.8, Figure 13): its
// sorted-set type has a pluggable ordered-index engine, so the Cuckoo Trie
// and every baseline can replace Redis's default hashtable+skiplist pair.
// The client and server run over loopback TCP, and per-element work during
// scans happens in the server loop — which is exactly the setting where the
// Cuckoo Trie's next-leaf prefetch overlaps with system work (§4.4).
//
// Commands: PING, ZADD key member value, ZSCORE key member,
// ZMSCORE key member [member ...], ZRANGEBYLEX key start count,
// ZREM key member, DBSIZE, FLUSHALL, SAVE, BGSAVE.
//
// With EnablePersistence the server is durable (see internal/persist):
// writes append to a segmented WAL after they apply, SAVE/BGSAVE cut
// snapshots through the engines' ordered cursors — BGSAVE blocking
// writers only for the all-stripe set-list capture — and boot-time
// recovery bulk-loads the newest valid snapshot before replaying the WAL
// tail.
//
// The server drains pipelined commands in batches: runs of ZSCOREs against
// the same sorted set collapse into one MultiGet, so an MLP-aware engine
// overlaps the whole pipeline's DRAM misses (§4.4 generalized across keys).
// The keyspace itself — set name → index — is striped across power-of-two
// lock stripes (set-name hash routing), so concurrent connections never
// serialize on a single keyspace mutex just to resolve which set a command
// targets.
//
// Command execution is an explicit layer: serve parses (dispatch.go),
// dispatch routes, and an executor (executor.go) runs each segment under
// one of three modes — serial (Redis's one-lock loop), striped-conn
// (per-connection, lockless), or striped-exec (per-stripe lanes that run
// disjoint-set pipelines concurrently with replies reassembled in order).
// See ExecMode.
package miniredis

import (
	"errors"
	"fmt"
	"hash/maphash"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/resp"
	"repro/internal/sharded"
)

// Engine names a sorted-set index implementation.
type Engine string

// EngineFactory creates an index for a sorted set.
type EngineFactory func(capacityHint int) index.Index

// ShardedFactory wraps an engine factory so every sorted set is an N-shard
// scatter-gather index (see internal/sharded): pipelined ZSCORE runs that
// collapse into one MultiGet then fan out across cores, one sub-batch per
// shard, composing cross-core parallelism with each shard's batch path.
// Keys route by hash; see ShardedFactoryWithRouter for range routing.
func ShardedFactory(inner EngineFactory, shards int) EngineFactory {
	return ShardedFactoryWithRouter(inner, shards, sharded.NewHashRouter)
}

// ShardedFactoryWithRouter is ShardedFactory with an explicit routing mode:
// under sharded.NewPrefixRouter the shards range-partition each sorted set,
// so a ZRANGEBYLEX whose range lives in one shard bypasses the k-way merge.
func ShardedFactoryWithRouter(inner EngineFactory, shards int, mk sharded.RouterMaker) EngineFactory {
	return func(capacityHint int) index.Index {
		return sharded.NewWithRouter(shards, capacityHint, inner, mk)
	}
}

// keyspace maps set names to their indexes across power-of-two lock
// stripes, so concurrent connections resolving different sets do not
// serialize on one mutex: a set name hashes to a stripe, and only that
// stripe's lock is taken. Lookups of existing sets take the stripe's read
// lock; creation upgrades to the write lock and re-checks, so two
// connections racing to create the same set always converge on one index.
type keyspace struct {
	seed    maphash.Seed
	mask    uint64
	stripes []stripe
}

type stripe struct {
	mu   sync.RWMutex
	sets map[string]index.Index
	// Pad each stripe to its own cache line (RWMutex 24B + map header 8B
	// = 32B on 64-bit): without it two adjacent stripes share a line and
	// their lock traffic false-shares, re-serializing at the coherence
	// level what the striping is meant to spread.
	_ [32]byte
}

// newKeyspace builds a keyspace with n stripes rounded up to a power of
// two.
func newKeyspace(n int) *keyspace {
	n = sharded.RoundShards(n)
	ks := &keyspace{
		seed:    maphash.MakeSeed(),
		mask:    uint64(n - 1),
		stripes: make([]stripe, n),
	}
	for i := range ks.stripes {
		ks.stripes[i].sets = make(map[string]index.Index)
	}
	return ks
}

func (ks *keyspace) stripeIdx(name string) int {
	return int(maphash.String(ks.seed, name) & ks.mask)
}

func (ks *keyspace) stripeFor(name string) *stripe {
	return &ks.stripes[ks.stripeIdx(name)]
}

// get returns the named set, creating it with mk on first use.
func (ks *keyspace) get(name string, mk func() index.Index) index.Index {
	st := ks.stripeFor(name)
	st.mu.RLock()
	ix, ok := st.sets[name]
	st.mu.RUnlock()
	if ok {
		return ix
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if ix, ok := st.sets[name]; ok {
		return ix // lost the creation race: use the winner's index
	}
	ix = mk()
	st.sets[name] = ix
	return ix
}

// lookup returns the named set without creating it. The replication applier
// uses it for OpDelete: deleting from a set that does not exist must not
// conjure an empty index.
func (ks *keyspace) lookup(name string) (index.Index, bool) {
	st := ks.stripeFor(name)
	st.mu.RLock()
	ix, ok := st.sets[name]
	st.mu.RUnlock()
	return ix, ok
}

// lockAll / rlockAll acquire every stripe in index order — one global
// order, so keyspace-wide operations (FLUSHALL, DBSIZE, BGSAVE's set
// collection) can never deadlock against each other and always observe a
// CONSISTENT set list: before the fix, flush cleared stripe-by-stripe
// while a concurrent snapshot or DBSIZE walked them, so either could see
// half the keyspace flushed and half not.
func (ks *keyspace) lockAll() {
	for i := range ks.stripes {
		ks.stripes[i].mu.Lock()
	}
}

func (ks *keyspace) unlockAll() {
	for i := range ks.stripes {
		ks.stripes[i].mu.Unlock()
	}
}

func (ks *keyspace) rlockAll() {
	for i := range ks.stripes {
		ks.stripes[i].mu.RLock()
	}
}

func (ks *keyspace) runlockAll() {
	for i := range ks.stripes {
		ks.stripes[i].mu.RUnlock()
	}
}

// totalLen sums the key counts of every set (DBSIZE), against a consistent
// set list: all stripes are read-locked before any is summed, so a racing
// FLUSHALL is observed entirely or not at all.
func (ks *keyspace) totalLen() int {
	ks.rlockAll()
	defer ks.runlockAll()
	total := 0
	for i := range ks.stripes {
		for _, ix := range ks.stripes[i].sets {
			total += ix.Len()
		}
	}
	return total
}

// flush drops every set (FLUSHALL), atomically with respect to every other
// keyspace-wide operation: all stripes are write-locked before any is
// cleared.
func (ks *keyspace) flush() {
	ks.lockAll()
	defer ks.unlockAll()
	for i := range ks.stripes {
		ks.stripes[i].sets = make(map[string]index.Index)
	}
}

// snapshotSets collects every set's name, cursor and length under the
// all-stripe read lock — the only moment BGSAVE blocks writers (and only
// those resolving a set name). Sets are returned in name order so
// snapshots of the same state are byte-identical.
func (ks *keyspace) snapshotSets() []persist.SetSnapshot {
	ks.rlockAll()
	defer ks.runlockAll()
	var sets []persist.SetSnapshot
	for i := range ks.stripes {
		for name, ix := range ks.stripes[i].sets {
			sets = append(sets, persist.SetSnapshot{
				Set:     name,
				Cursor:  ix.NewCursor(),
				LenHint: ix.Len(),
			})
		}
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Set < sets[j].Set })
	return sets
}

// Server is the mini-Redis server.
type Server struct {
	create   func() index.Index // factory bound to the capacity hint once
	factory  EngineFactory
	capacity int
	ks       *keyspace
	ln       net.Listener
	wg       sync.WaitGroup
	mode     ExecMode // command execution strategy; see executor.go
	exec     executor
	stats    *serverStats // command observability (stats.go): counters, histograms, slowlog
	cmdMu    sync.Mutex   // ExecSerial's one-at-a-time command loop lock

	// maxConns caps simultaneous client connections; 0 = unlimited. Set
	// via SetMaxConns before Listen. Connections over the cap are refused
	// with -ERR and counted in rejected (INFO clients).
	maxConns int
	conns    atomic.Int64
	rejected atomic.Int64
	// execMus (ExecStripedExec only): one executor lock per keyspace
	// stripe. A per-stripe lane holds exactly its own; the cross-stripe
	// barrier takes all of them in ascending index order. Rank 15 in the
	// global lock order — after cmdMu, before bulkMu (see
	// internal/analyzers/lockorder).
	execMus []sync.Mutex

	// Persistence (nil/zero when the server is memory-only).
	wal        *persist.WAL
	dataDir    string
	fsyncPol   persist.FsyncPolicy
	snapEvery  int          // logged writes between automatic BGSAVEs
	rewriteAt  int64        // WAL bytes since last snapshot that trigger one; 0 disables
	sinceSave  atomic.Int64 // logged writes since the last snapshot
	savedBytes atomic.Int64 // WAL AppendedBytes watermark at the last snapshot cut
	saving     atomic.Bool  // one BGSAVE at a time
	saveMu     sync.Mutex   // serializes snapshot cuts (SAVE vs BGSAVE)
	// quiesceSaves: the engine is not concurrent-safe, so snapshot cursors
	// cannot run against live writers — saves must hold the execution
	// mode's quiesce lock (serial's cmdMu or striped-exec's all-stripe
	// barrier, always taken BEFORE saveMu; dispatch already holds it when
	// a SAVE command calls save, so the order is fixed everywhere).
	quiesceSaves bool
	// unsafeSnapshots: striped-conn execution over a non-concurrent engine
	// has NO safe snapshot path — there is no execution lock to quiesce
	// with, so a snapshot cursor would race live writers. SAVE, BGSAVE and
	// replica full syncs all refuse with ErrUnsafeSnapshot instead of
	// corrupting the snapshot (or crashing the engine) silently.
	unsafeSnapshots bool
	// writeMus (persistent concurrent servers only) order apply+log per
	// keyspace stripe; see lockWrite.
	writeMus  []sync.Mutex
	bgWg      sync.WaitGroup
	bgSaveErr error // last background save failure, under saveMu

	// Replication (see internal/repl and replication.go in this package).
	// repl is the primary-side manager, created with persistence; bulkMu
	// fences bulk loads against full-sync snapshot cuts (Preload holds the
	// read lock, a PSYNC handshake write-locks to wait in-flight loads
	// out). replMu guards the replica-side session.
	repl        *repl.Manager
	fanoutBytes int
	bulkMu      sync.RWMutex
	replMu      sync.Mutex
	replSess    *repl.Replica
	lastMaster  string // resume cache: last primary this server replicated
	lastApplied uint64 // ...and the LSN applied when that session detached
}

// NewServer creates a server whose sorted sets use the given engine.
// serial=true mimics Redis's single-threaded command loop (ExecSerial);
// serial=false executes each connection's commands concurrently with no
// execution lock (ExecStripedConn — safe only for concurrent-safe
// engines). See NewServerExec for the full mode set, including
// striped-exec's per-stripe concurrent execution. The keyspace is striped
// in every mode, so set resolution never serializes connections on a
// single lock.
func NewServer(factory EngineFactory, capacityHint int, serial bool) *Server {
	mode := ExecStripedConn
	if serial {
		mode = ExecSerial
	}
	return NewServerExec(factory, capacityHint, mode)
}

// NewServerExec creates a server with an explicit execution mode (see
// ExecMode in executor.go). An unknown mode falls back to ExecSerial, the
// one strategy that is safe for every engine.
func NewServerExec(factory EngineFactory, capacityHint int, mode ExecMode) *Server {
	s := &Server{
		create:   func() index.Index { return factory(capacityHint) },
		factory:  factory,
		capacity: capacityHint,
		ks:       newKeyspace(max(8, runtime.GOMAXPROCS(0))),
		mode:     mode,
		stats:    newServerStats(),
	}
	switch mode {
	case ExecStripedConn:
		s.exec = connExecutor{s}
	case ExecStripedExec:
		s.execMus = make([]sync.Mutex, len(s.ks.stripes))
		s.exec = stripedExecutor{s}
	default:
		s.mode = ExecSerial
		s.exec = serialExecutor{s}
	}
	return s
}

// Mode reports the server's execution mode.
func (s *Server) Mode() ExecMode { return s.mode }

// Stripes reports the power-of-two keyspace stripe count.
func (s *Server) Stripes() int { return len(s.ks.stripes) }

// ErrNoPersistence reports a SAVE/BGSAVE against a memory-only server.
var ErrNoPersistence = errors.New("miniredis: persistence not enabled")

// ErrUnsafeSnapshot reports a snapshot request (SAVE, BGSAVE, a replica's
// full sync) on a server with no safe snapshot path: striped-conn
// execution has no quiesce lock, so over a non-concurrent engine the
// snapshot cursors would race live writers. Pick -exec serial or
// striped-exec, or a concurrent-safe engine.
var ErrUnsafeSnapshot = errors.New("miniredis: no safe snapshot path under striped-conn execution with a non-concurrent engine (use -exec serial or striped-exec)")

// EnablePersistence makes the server durable: it recovers dir's newest
// valid snapshot plus WAL tail into the keyspace (each set bulk-loaded, so
// sharded engines ride the partitioned ingest and untrained sampled
// routers train from the snapshot stream), then opens the WAL for the
// write path. ZADD/ZREM/FLUSHALL append a record after they apply;
// snapshotEvery > 0 triggers a background snapshot every that many logged
// writes. Must be called before Listen. The returned Result reports what
// was recovered.
//
// Preload bypasses the WAL by design (logging a bulk load record-by-record
// would forfeit the partitioned ingest); call Save after preloading to
// make the loaded keys durable.
func (s *Server) EnablePersistence(dir string, policy persist.FsyncPolicy, snapshotEvery int) (*persist.Result, error) {
	return s.EnablePersistenceWithOptions(dir, PersistOptions{Policy: policy, SnapshotEvery: snapshotEvery})
}

// PersistOptions tunes persistence beyond EnablePersistence's defaults —
// exposed mainly so tests can force tiny WAL segments and replication
// fan-out buffers to exercise retention edges.
type PersistOptions struct {
	Policy        persist.FsyncPolicy
	SnapshotEvery int   // logged writes between automatic BGSAVEs; 0 disables
	SegmentBytes  int64 // WAL segment rotation threshold; 0 = persist default
	FanoutBytes   int   // replication fan-out ring bound; 0 = repl default
	// GroupMaxDelay is the group-commit coalescing window under
	// FsyncGroup/FsyncAsync; 0 = persist default (2ms), negative = none.
	GroupMaxDelay time.Duration
	// AutoRewriteBytes caps the WAL tail's estimated replay cost: once the
	// record bytes appended since the last snapshot exceed it, a background
	// snapshot (the BGSAVE + RemoveObsolete path) rewrites the log
	// automatically, independent of the SnapshotEvery record cadence.
	// 0 disables.
	AutoRewriteBytes int64
}

// EnablePersistenceWithOptions is EnablePersistence with explicit tuning.
func (s *Server) EnablePersistenceWithOptions(dir string, opts PersistOptions) (*persist.Result, error) {
	if s.ln != nil {
		return nil, errors.New("miniredis: enable persistence before Listen")
	}
	if s.wal != nil {
		return nil, errors.New("miniredis: persistence already enabled")
	}
	res, err := persist.Recover(dir, func(set string, hint int) index.Index {
		if hint <= 0 {
			hint = s.capacity
		}
		return s.factory(hint)
	})
	if err != nil {
		return nil, err
	}
	for name, ix := range res.Sets {
		st := s.ks.stripeFor(name)
		st.mu.Lock()
		st.sets[name] = ix
		st.mu.Unlock()
	}
	// FloorLSN: a durable snapshot can be ahead of an unsynced WAL tail
	// after a crash; new LSNs must start past everything recovery used, or
	// the next recovery's LSN filter would skip acknowledged writes.
	wal, err := persist.OpenWAL(dir, persist.WALOptions{
		Policy:        opts.Policy,
		SegmentBytes:  opts.SegmentBytes,
		FloorLSN:      res.LastLSN,
		GroupMaxDelay: opts.GroupMaxDelay,
	})
	if err != nil {
		return nil, err
	}
	s.wal, s.dataDir, s.snapEvery = wal, dir, opts.SnapshotEvery
	s.fsyncPol, s.rewriteAt = opts.Policy, opts.AutoRewriteBytes
	// A durable server can feed read replicas: every WAL append publishes
	// its wire frame into the fan-out ring, in LSN order because the hook
	// runs under the WAL's own mutex.
	s.repl = repl.NewManager(repl.Config{
		Dir:         dir,
		LastLSN:     wal.LSN(),
		FanoutBytes: opts.FanoutBytes,
		CutSnapshot: s.snapshotForSync,
	})
	wal.SetOnAppend(s.repl.Publish)
	// Probe the engine once: every set comes from the same factory, so one
	// throwaway instance says whether snapshots may run against live
	// writers or must quiesce execution first. Serial and striped-exec
	// both have a quiesce lock to take (cmdMu, the all-stripe barrier);
	// striped-conn has none — over a concurrent-safe engine its saves run
	// live, and over a non-concurrent engine there is no safe snapshot
	// path at all (unsafeSnapshots: SAVE/BGSAVE/full syncs refuse).
	concurrent := index.IsConcurrent(s.factory(1))
	s.quiesceSaves = s.mode != ExecStripedConn && !concurrent
	s.unsafeSnapshots = s.mode == ExecStripedConn && !concurrent
	if s.mode != ExecSerial {
		// Concurrent command execution needs explicit write ordering: the
		// WAL replays in LSN order, so two racing writes to the same set
		// must log in the order they applied or recovery rebuilds a state
		// the live server never exposed. Serial mode gets this from cmdMu;
		// both striped modes pin it per stripe (striped-exec's lanes hold
		// execMus across apply+log too, but the replication applier and
		// FLUSHALL order against writers through writeMus).
		s.writeMus = make([]sync.Mutex, len(s.ks.stripes))
	}
	return res, nil
}

// lockWrite makes apply+log atomic for one set's stripe on a persistent
// concurrent server (no-op otherwise — serial servers order writes via
// cmdMu, memory-only servers have no log to keep in order). It returns the
// unlock, or nil when no locking is needed.
func (s *Server) lockWrite(set string) func() {
	if s.writeMus == nil {
		return nil
	}
	mu := &s.writeMus[s.ks.stripeIdx(set)]
	mu.Lock()
	return mu.Unlock
}

// lockAllWrites is lockWrite for keyspace-wide writes (FLUSHALL): every
// stripe's write order is pinned around the flush-and-log pair, so no
// racing ZADD can apply to a pre-flush index and log after the OpFlushAll
// record (which would resurrect on recovery a key the live server lost).
func (s *Server) lockAllWrites() func() {
	if s.writeMus == nil {
		return nil
	}
	for i := range s.writeMus {
		s.writeMus[i].Lock()
	}
	return func() {
		for i := range s.writeMus {
			s.writeMus[i].Unlock()
		}
	}
}

// Persistent reports whether the server has a data directory attached.
func (s *Server) Persistent() bool { return s.wal != nil }

// logWrite appends one record for an applied write and drives the
// automatic snapshot cadence, returning the record's LSN — the offset a
// later WAIT on the same connection targets. A nil WAL (memory-only
// server) is a no-op returning 0.
func (s *Server) logWrite(op persist.Op, set string, key []byte, val uint64) (uint64, error) {
	if s.wal == nil {
		return 0, nil
	}
	lsn, err := s.wal.Append(op, set, key, val)
	if err != nil {
		return 0, err
	}
	if s.snapEvery > 0 && s.sinceSave.Add(1) >= int64(s.snapEvery) {
		s.sinceSave.Store(0)
		s.BGSave()
	} else if s.rewriteAt > 0 && s.wal.AppendedBytes()-s.savedBytes.Load() >= s.rewriteAt {
		// Automatic log rewrite: the WAL tail past the last snapshot has
		// grown beyond the replay-cost budget, so compact it into a snapshot
		// (BGSave ends with RemoveObsolete, which drops the covered
		// segments). BGSave's one-at-a-time CAS dedupes the burst of writes
		// that all see the budget exceeded before the cut resets the
		// watermark.
		s.BGSave()
	}
	return lsn, nil
}

// Save cuts a snapshot in the foreground: the keyspace's set list is
// captured under the all-stripe lock at the WAL's current LSN, every set
// is serialized through its cursor into snap-<lsn>.snap (temp file +
// rename, so a crash mid-save never damages the previous snapshot), the
// MANIFEST is repointed, and WAL segments the snapshot fully covers are
// removed. Writers are only blocked for the stripe acquisition — cursor
// draining runs against the live (concurrent-safe) engines.
func (s *Server) Save() error { return s.save(false) }

// save implements Save; quiesced says the calling goroutine already holds
// this server's quiesce lock (a SAVE command dispatched under serial
// mode's cmdMu or striped-exec's all-stripe barrier).
func (s *Server) save(quiesced bool) error {
	if s.wal == nil {
		return ErrNoPersistence
	}
	if s.unsafeSnapshots {
		return ErrUnsafeSnapshot
	}
	if s.quiesceSaves && !quiesced {
		// A non-concurrent-safe engine cannot be iterated while writers
		// mutate it: quiesce execution for the duration (Redis without
		// fork(2) semantics) — cmdMu on a serial server, the all-stripe
		// executor barrier under striped-exec. Concurrent-safe engines
		// skip this. The quiesce lock is always taken before saveMu.
		release := s.quiesce()
		defer release()
	}
	_, _, err := s.cutSnapshot()
	return err
}

// cutSnapshot writes one snapshot and returns its LSN and file path; it
// serializes against concurrent cuts via saveMu. Callers handle the
// quiesce-vs-cmdMu question (see save and snapshotForSync).
func (s *Server) cutSnapshot() (uint64, string, error) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	// The LSN is captured BEFORE the cursors: every record ≤ lsn was
	// applied before this point (writes log after they apply), so the
	// cursors see it; records > lsn replay idempotently on top whether or
	// not the cursors caught them.
	lsn := s.wal.LSN()
	// Reset the auto-rewrite budget at the same point the snapshot LSN is
	// captured: bytes logged at or below lsn are about to be covered.
	s.savedBytes.Store(s.wal.AppendedBytes())
	sets := s.ks.snapshotSets()
	path, err := persist.WriteSnapshot(s.dataDir, lsn, sets)
	if err != nil {
		return 0, "", err
	}
	s.sinceSave.Store(0)
	return lsn, path, persist.RemoveObsolete(s.dataDir, lsn)
}

// snapshotForSync cuts the fresh snapshot a replica's full sync streams
// (the repl.Manager's CutSnapshot hook). Always fresh, never a cached
// file: bulk preloads bypass the WAL, so only a snapshot cut now is
// guaranteed to contain them.
func (s *Server) snapshotForSync() (uint64, string, error) {
	if s.unsafeSnapshots {
		// The manager turns this into a clean "-ERR full sync snapshot: ..."
		// on the PSYNC connection instead of shipping a corrupt stream.
		return 0, "", ErrUnsafeSnapshot
	}
	if s.quiesceSaves {
		release := s.quiesce()
		defer release()
	}
	return s.cutSnapshot()
}

// BGSave starts Save on a background goroutine, at most one at a time.
// It reports whether a new save was started; a failure is retrievable via
// LastBGSaveError. Close waits for an in-flight background save.
func (s *Server) BGSave() bool {
	if s.wal == nil || s.unsafeSnapshots || !s.saving.CompareAndSwap(false, true) {
		return false
	}
	s.bgWg.Add(1)
	go func() {
		defer s.bgWg.Done()
		defer s.saving.Store(false)
		err := s.save(false)
		s.saveMu.Lock()
		s.bgSaveErr = err
		s.saveMu.Unlock()
	}()
	return true
}

// LastBGSaveError returns the most recent background save's error (nil
// after a success).
func (s *Server) LastBGSaveError() error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	return s.bgSaveErr
}

// Preload bulk-loads keys[i] → vals[i] into the named sorted set through
// the engine's bulk-load path (index.BulkLoad) — the partitioned
// concurrent ingest for sharded engines — creating the set if needed. It
// is meant for warming a server before benchmarking, off the RESP path.
func (s *Server) Preload(set string, keys [][]byte, vals []uint64) (int, error) {
	if s.isReplica() {
		return 0, errors.New("miniredis: cannot preload a replica (its keyspace mirrors the primary)")
	}
	// The read lock fences replication: a PSYNC handshake write-locks
	// bulkMu before cutting its full-sync snapshot, so a replica that
	// connects mid-load waits for the load to finish instead of streaming a
	// half-loaded keyspace.
	s.bulkMu.RLock()
	defer s.bulkMu.RUnlock()
	n, err := index.BulkLoad(s.set(set), keys, vals)
	if err == nil && s.repl != nil {
		// Preloaded keys bypass the WAL, so no replica state from before
		// this point can catch up through the log alone: fence partial
		// syncs below the current LSN and kick connected replicas into
		// fresh full syncs.
		s.repl.InvalidatePartialBelow(s.wal.LSN())
	}
	return n, err
}

// Listen starts accepting on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server, waits for connections and any background save
// to drain, and cleanly closes the WAL. The returned error is the WAL
// close's: that close is the log's final flush+fsync, so discarding it
// would silently un-durable the tail of acknowledged writes (caught by
// ctvet's durabilityerr when this method returned nothing).
func (s *Server) Close() error {
	if s.ln != nil {
		s.ln.Close()
	}
	if s.repl != nil {
		// Kick replica connections first: their serve goroutines are
		// blocked in the feed and must return before wg drains.
		s.repl.Close()
	}
	s.detachReplica(true)
	s.wg.Wait()
	s.bgWg.Wait()
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

// SetMaxConns caps simultaneous client connections (0 = unlimited).
// Connections accepted over the cap get "-ERR max number of clients
// reached" and are closed; INFO clients counts the rejections. Must be
// called before Listen.
func (s *Server) SetMaxConns(n int) { s.maxConns = n }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.maxConns > 0 && s.conns.Load() >= int64(s.maxConns) {
			// Redis's over-maxclients behavior: a best-effort error reply,
			// then hang up. The write error is moot — the connection is
			// being refused either way.
			s.rejected.Add(1)
			conn.Write([]byte("-ERR max number of clients reached\r\n"))
			conn.Close()
			continue
		}
		s.conns.Add(1)
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) set(key string) index.Index {
	return s.ks.get(key, s.create)
}

// Client is a minimal pipelining RESP client for the benchmarks.
type Client struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
	err  error // sticky: set once the connection state is unknown
}

// Dial connects to a mini-Redis server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() { c.conn.Close() }

// Do sends one command and reads its reply.
func (c *Client) Do(args ...[]byte) (interface{}, error) {
	if c.err != nil {
		return nil, c.err
	}
	if err := c.w.WriteCommand(args...); err != nil {
		return nil, c.poison(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.poison(err)
	}
	v, err := c.r.ReadReply()
	if err != nil {
		if resp.FrameSafe(err) {
			return nil, err // bad value, but the stream is still in sync
		}
		return nil, c.poison(err)
	}
	return v, nil
}

// Pipeline sends a batch of commands and reads all replies. If one reply
// carries a malformed value but its frame was fully consumed
// (resp.FrameSafe), the remaining replies are still drained so the
// connection stays in sync for subsequent calls; if the transport or the
// reply framing itself fails mid-pipeline, the client is poisoned — every
// later call fails fast instead of reading a reply that belongs to an
// earlier command.
func (c *Client) Pipeline(cmds [][][]byte) ([]interface{}, error) {
	if c.err != nil {
		return nil, c.err
	}
	for _, cmd := range cmds {
		if err := c.w.WriteCommand(cmd...); err != nil {
			return nil, c.poison(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.poison(err)
	}
	out := make([]interface{}, 0, len(cmds))
	var firstErr error
	for range cmds {
		v, err := c.r.ReadReply()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if resp.FrameSafe(err) {
				continue // drain the replies still owed to this pipeline
			}
			// The reply framing is gone, not just one value: the stream
			// position is unknown, so draining would misread replies.
			c.poison(err)
			break
		}
		if firstErr == nil {
			out = append(out, v)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// poison records the first connection-desynchronizing error and returns it.
func (c *Client) poison(err error) error {
	if c.err == nil {
		c.err = fmt.Errorf("miniredis: connection desynchronized: %w", err)
	}
	return c.err
}
