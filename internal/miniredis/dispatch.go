package miniredis

// The parse → route half of the command path. serve parses: it drains
// pipelined commands off the RESP reader into batches. dispatch routes: a
// PSYNC hands the connection to replication (handled in serve, since the
// connection itself changes hands), WAIT splits out of the batch in every
// execution mode, and the remaining segments go to the server's executor
// (executor.go). commands.go holds the per-command handlers.

import (
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/persist"
	"repro/internal/resp"
)

// maxPipelineBatch bounds how many pipelined commands one dispatch drains.
const maxPipelineBatch = 128

// connBufSize sizes each connection's read and write buffers. 16 KiB holds
// a full pipeline batch of typical commands while keeping per-connection
// memory at a quarter of the previous 64 KiB bufio default — at a thousand
// connections the difference is tens of megabytes of idle buffers (see
// TestManyConnectionsSoak).
const connBufSize = 16 << 10

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	defer s.conns.Add(-1)
	r := resp.NewReaderSize(conn, connBufSize)
	w := resp.NewWriterSize(conn, connBufSize)
	cs := &connState{}
	batch := make([][][]byte, 0, maxPipelineBatch)
	for {
		cmd, err := r.ReadCommand()
		if err != nil {
			s.dropWithError(w, err)
			return
		}
		// Drain any further pipelined commands already buffered: the batch is
		// dispatched as a unit so independent lookups can share one MultiGet.
		// CommandBuffered (not Buffered) gates the drain so a half-received
		// command never blocks the reads while replies are withheld.
		batch = append(batch[:0], cmd)
		for r.CommandBuffered() && len(batch) < maxPipelineBatch {
			cmd, err = r.ReadCommand()
			if err != nil {
				break
			}
			batch = append(batch, cmd)
		}
		// PSYNC turns the connection into a replication feed: dispatch
		// whatever preceded it, then hand the connection to the manager for
		// its remaining lifetime.
		if i := psyncIndex(batch); i >= 0 {
			s.dispatch(w, batch[:i], cs)
			s.servePSync(conn, r, w, cs, batch[i])
			return
		}
		prevWrite := cs.lastWrite
		s.dispatch(w, batch, cs)
		// Group commit's ack barrier: the batch's replies are still only
		// buffered in w, so parking here — after dispatch released cmdMu, the
		// execMus and the stripe write mutexes, before the flush that
		// acknowledges — delays nothing but this connection while one fsync
		// covers the whole pipeline. Async mode skips the wait: replies flush
		// immediately and DurableLSN reports how far durability lags.
		if s.fsyncPol == persist.FsyncGroup && cs.lastWrite > prevWrite {
			if cerr := s.wal.Commit(cs.lastWrite); cerr != nil {
				// The buffered replies contain acks for writes that never
				// became durable: drop the connection without flushing them.
				// A reset connection promises nothing; a flushed ":1" does.
				return
			}
		}
		if err != nil { // tail read error: answer what we got, then drop
			s.dropWithError(w, err)
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch routes one drained batch: WAIT commands split it, everything
// between them goes to the executor as one segment. WAIT runs bare on the
// connection goroutine in every mode — it parks, on the local-durability
// gate (WAL.Commit) and then on replica acks, so it must never hold cmdMu,
// an execMu, or anything else another connection's writes need. (Before
// the executor layer, only a LONE wait on a serial server got this
// treatment; a pipelined WAIT ran under cmdMu with the durability gate
// skipped. Now the gate and the replica-ack accounting are identical
// across serial, striped-conn and striped-exec, pipelined or not.)
func (s *Server) dispatch(w *resp.Writer, batch [][][]byte, cs *connState) {
	for i := 0; i < len(batch); {
		j := i
		for j < len(batch) && !isWaitCmd(batch[j]) {
			j++
		}
		if j > i {
			s.exec.run(w, batch[i:j], cs)
		}
		if j < len(batch) {
			// WAIT never flows through dispatchOne (it parks, so it runs
			// bare here), so it is observed at its own dispatch site. Its
			// latency sample deliberately includes the parks — the wait IS
			// the command.
			st := s.stats.cmds["wait"]
			errsBefore := w.ErrorsWritten()
			start := time.Now()
			s.cmdWait(w, cs, batch[j])
			s.observeCmd(st, w, batch[j], errsBefore, start)
			j++
		}
		i = j
	}
}

func isWaitCmd(cmd [][]byte) bool {
	return len(cmd) > 0 && strings.EqualFold(string(cmd[0]), "WAIT")
}

// psyncIndex finds a PSYNC command in a drained batch (-1 when absent). A
// replica never pipelines past its PSYNC, so anything after one would be
// handshake bytes misread as commands — the index lets serve stop exactly
// there.
func psyncIndex(batch [][][]byte) int {
	for i, cmd := range batch {
		if len(cmd) > 0 && strings.EqualFold(string(cmd[0]), "PSYNC") {
			return i
		}
	}
	return -1
}

// dropWithError ends a connection the way Redis does: a clean hangup (EOF
// between commands) just closes, but malformed input gets an
// "-ERR Protocol error" reply first, so the client can diagnose what it
// sent instead of seeing a silent disconnect. The reply rides the same
// flush as any replies already owed for the drained pipeline; flush errors
// are moot — the connection is being dropped either way.
func (s *Server) dropWithError(w *resp.Writer, err error) {
	if err != io.EOF {
		w.WriteError(fmt.Sprintf("Protocol error: %v", err))
	}
	w.Flush() //ctvet:ignore the connection is being dropped; this flush is best-effort diagnostics, not an ack
}
