package miniredis

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/persist"
)

// newServerWithPersist is newPersistentServer with full PersistOptions
// control, for the group-commit and auto-rewrite tests.
func newServerWithPersist(t *testing.T, dir string, serial bool, opts PersistOptions) (*Server, *Client) {
	t.Helper()
	srv := NewServer(skiplistFactory, 256, serial)
	if _, err := srv.EnablePersistenceWithOptions(dir, opts); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cl
}

// TestGroupCommitPipelineAck: a pipelined batch of writes under -fsync
// group is acknowledged only after the WAL's durable watermark covers its
// last LSN — the whole pipeline rides one (or few) fsyncs, and by the time
// the client sees the replies the records are on stable storage.
func TestGroupCommitPipelineAck(t *testing.T) {
	for _, serial := range []bool{true, false} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			dir := t.TempDir()
			srv, cl := newServerWithPersist(t, dir, serial, PersistOptions{Policy: persist.FsyncGroup})
			defer srv.Close()
			defer cl.Close()
			const n = 64
			cmds := make([][][]byte, n)
			for i := 0; i < n; i++ {
				cmds[i] = [][]byte{[]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%03d", i)), []byte("1")}
			}
			out, err := cl.Pipeline(cmds)
			if err != nil || len(out) != n {
				t.Fatalf("pipeline: %d replies, %v", len(out), err)
			}
			// Replies reached the client, so the ack barrier has run: every
			// logged record must already be durable.
			if last, durable := srv.wal.LSN(), srv.wal.DurableLSN(); durable < last {
				t.Fatalf("acked with DurableLSN=%d behind LSN=%d", durable, last)
			}
		})
	}
}

// TestGroupCommitConcurrentWriters: ≥8 connections writing pipelines in
// parallel against a group-commit server — the coalescing path under real
// contention — and every acknowledged write survives a clean restart.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	srv, cl := newServerWithPersist(t, dir, true, PersistOptions{Policy: persist.FsyncGroup})
	cl.Close()
	addr := srv.ln.Addr().String()
	const writers, perWriter = 8, 30
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs[g] = err
				return
			}
			defer c.Close()
			cmds := make([][][]byte, perWriter)
			for i := range cmds {
				cmds[i] = [][]byte{[]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("w%dm%03d", g, i)), []byte("1")}
			}
			_, errs[g] = c.Pipeline(cmds)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, cl2, res := newPersistentServer(t, dir, skiplistFactory, 0)
	defer srv2.Close()
	defer cl2.Close()
	if res.Keys() != writers*perWriter {
		t.Fatalf("recovered %d keys, want %d", res.Keys(), writers*perWriter)
	}
}

// TestAsyncAckDurability: FsyncAsync replies immediately, and INFO
// persistence exposes the ack-vs-durable gap; the watermark catches up to
// the last LSN within a few group cycles without any explicit sync.
func TestAsyncAckDurability(t *testing.T) {
	dir := t.TempDir()
	srv, cl := newServerWithPersist(t, dir, true, PersistOptions{Policy: persist.FsyncAsync})
	defer srv.Close()
	defer cl.Close()
	for i := 0; i < 50; i++ {
		if r, err := cl.Do([]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%03d", i)), []byte("1")); err != nil || r != int64(1) {
			t.Fatalf("ZADD %d: %v %v", i, r, err)
		}
	}
	last := srv.wal.LSN()
	deadline := time.Now().Add(5 * time.Second)
	for srv.wal.DurableLSN() < last {
		if time.Now().After(deadline) {
			t.Fatalf("async watermark stuck at %d, want ≥ %d", srv.wal.DurableLSN(), last)
		}
		time.Sleep(time.Millisecond)
	}
	r, err := cl.Do([]byte("INFO"), []byte("persistence"))
	if err != nil {
		t.Fatal(err)
	}
	info := string(r.([]byte))
	for _, want := range []string{"# Persistence", "appendfsync:async", "aof_enabled:1",
		fmt.Sprintf("aof_last_lsn:%d", last), fmt.Sprintf("aof_durable_lsn:%d", last)} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO persistence missing %q:\n%s", want, info)
		}
	}
	// WAIT 0 doubles as the async client's explicit local-durability
	// barrier: it drives wal.Commit for the connection's last write.
	if r, err := cl.Do([]byte("WAIT"), []byte("0"), []byte("10")); err != nil || r != int64(0) {
		t.Fatalf("WAIT = %v, %v", r, err)
	}
}

// TestAutoRewrite: once the WAL tail since the last snapshot exceeds the
// byte budget, the server snapshots and compacts on its own — no
// SnapshotEvery cadence, no explicit SAVE.
func TestAutoRewrite(t *testing.T) {
	dir := t.TempDir()
	srv, cl := newServerWithPersist(t, dir, true, PersistOptions{
		Policy:           persist.FsyncNo,
		AutoRewriteBytes: 2 << 10,
	})
	defer srv.Close()
	defer cl.Close()
	for i := 0; i < 400; i++ {
		if _, err := cl.Do([]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("member%05d", i)), []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	// ~30 bytes/record × 400 writes ≈ 12KiB appended against a 2KiB budget:
	// at least one background rewrite must have fired and cut a snapshot.
	countSnaps := func() int {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".snap") {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(5 * time.Second)
	for countSnaps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-rewrite never cut a snapshot despite blowing the byte budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.bgWg.Wait()
	if err := srv.LastBGSaveError(); err != nil {
		t.Fatalf("auto-rewrite save failed: %v", err)
	}
	// The rewrite must not have cost any data.
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(400) {
		t.Fatalf("DBSIZE after rewrite = %v", r)
	}
}
