package miniredis

// Command observability: per-family call/error counters and latency
// histograms (INFO commandstats / INFO latencystats, LATENCY HISTOGRAM),
// plus a Redis-style slowlog ring (SLOWLOG GET/RESET/LEN). The counters
// and histograms are lock-free (internal/metrics + atomics), so the
// instrumentation rides every execution mode's hot path — including
// striped-exec lanes running the same family concurrently — without
// adding a shared lock the executor layer worked to remove. Only the
// slowlog takes a mutex, and only for commands already slower than the
// threshold (default 10ms), where one lock acquisition is noise.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/resp"
)

// statFamilies is the fixed command-family set, in INFO presentation
// order. The stats map is built from it once and never mutated, so
// lookups need no lock. "unknown" absorbs unrecognized commands and
// malformed (empty) input.
var statFamilies = []string{
	"ping", "zadd", "zscore", "zmscore", "zrem", "zrangebylex",
	"dbsize", "flushall", "save", "bgsave",
	"replicaof", "replconf", "wait", "info", "latency", "slowlog",
	"unknown",
}

// cmdStat is one family's counters: calls, commands that replied with an
// error, and the latency distribution of the handler (measured around
// runCommand, so it includes engine work, WAL appends and reply
// encoding, but not the connection flush or a group-commit park — those
// belong to the pipeline, not one command).
type cmdStat struct {
	calls atomic.Uint64
	errs  atomic.Uint64
	hist  *metrics.Histogram
}

// serverStats aggregates a server's command observability state.
type serverStats struct {
	cmds map[string]*cmdStat // family → stat; read-only after construction
	slow slowlog
}

func newServerStats() *serverStats {
	st := &serverStats{cmds: make(map[string]*cmdStat, len(statFamilies))}
	for _, f := range statFamilies {
		st.cmds[f] = &cmdStat{hist: metrics.New()}
	}
	st.slow.threshold.Store(int64(defaultSlowlogThreshold))
	return st
}

// family maps a command's first word to its stat family. SLAVEOF is
// REPLICAOF's legacy spelling, so the two share one family, matching the
// dispatch switch.
func (st *serverStats) family(cmd [][]byte) string {
	if len(cmd) == 0 {
		return "unknown"
	}
	name := strings.ToLower(string(cmd[0]))
	if name == "slaveof" {
		return "replicaof"
	}
	if _, ok := st.cmds[name]; ok {
		return name
	}
	return "unknown"
}

func (st *serverStats) statFor(cmd [][]byte) *cmdStat { return st.cmds[st.family(cmd)] }

// observeCmd folds one executed command into its family's counters and,
// when it ran slower than the slowlog threshold, the slowlog ring. The
// error delta comes from the reply writer: WriteError/WriteErrorCode
// bumped its counter iff the handler replied with an error, so handlers
// need no second reporting channel. w may be a lane's pooled sink writer —
// the delta comparison is what makes reuse safe.
func (s *Server) observeCmd(st *cmdStat, w *resp.Writer, cmd [][]byte, errsBefore uint64, start time.Time) {
	d := time.Since(start)
	st.calls.Add(1)
	if w.ErrorsWritten() != errsBefore {
		st.errs.Add(1)
	}
	st.hist.RecordDuration(int64(d))
	if s.stats.slow.eligible(d) {
		s.stats.slow.add(cmd, d, s.mode, s.laneOf(cmd))
	}
}

// observeZScoreRun folds a collapsed same-set ZSCORE run (one MultiGet
// answering n pipelined ZSCOREs) into the zscore family: n calls, one
// latency sample — the batch is the unit that ran, and splitting its
// duration n ways would fabricate per-op latencies nothing measured. A
// slow batch lands in the slowlog as one entry under its first command.
func (s *Server) observeZScoreRun(cmds [][][]byte, start time.Time) {
	d := time.Since(start)
	st := s.stats.cmds["zscore"]
	st.calls.Add(uint64(len(cmds)))
	st.hist.RecordDuration(int64(d))
	if s.stats.slow.eligible(d) {
		s.stats.slow.add(cmds[0], d, s.mode, s.laneOf(cmds[0]))
	}
}

// --- slowlog ---

const (
	// slowlogCap bounds the ring: Redis's default is 128 entries.
	slowlogCap = 128
	// defaultSlowlogThreshold logs commands slower than 10ms — generous
	// enough that a healthy in-memory server logs nothing, tight enough
	// that a stalled fsync or a quiesced save shows up.
	defaultSlowlogThreshold = 10 * time.Millisecond
	// slowlogMaxArgs/slowlogMaxArgLen truncate captured commands the way
	// Redis does, so a slow ZADD with a huge member cannot pin megabytes
	// in the ring.
	slowlogMaxArgs   = 4
	slowlogMaxArgLen = 64
)

// slowEntry is one captured slow command. Mode and Stripe replace Redis's
// client-addr/client-name fields: under striped execution the interesting
// question is which lane ran the command (-1 = the stripe-less lane).
type slowEntry struct {
	ID     int64
	Unix   int64
	Dur    time.Duration
	Args   [][]byte
	Mode   ExecMode
	Stripe int
}

// slowlog is a fixed-size ring of the slowest commands. threshold is in
// nanoseconds: negative disables logging entirely, zero logs every
// command (Redis's slowlog-log-slower-than semantics).
type slowlog struct {
	threshold atomic.Int64
	mu        sync.Mutex
	nextID    int64
	total     int64 // entries ever added; min(total, slowlogCap) are live
	ring      [slowlogCap]slowEntry
}

// eligible is the lock-free fast path: one atomic load decides whether a
// command's duration warrants touching the ring at all.
func (sl *slowlog) eligible(d time.Duration) bool {
	t := sl.threshold.Load()
	return t >= 0 && int64(d) >= t
}

func (sl *slowlog) add(cmd [][]byte, d time.Duration, mode ExecMode, stripe int) {
	args := make([][]byte, 0, minIntStats(len(cmd), slowlogMaxArgs+1))
	for i, a := range cmd {
		if i == slowlogMaxArgs && len(cmd) > slowlogMaxArgs+1 {
			args = append(args, []byte(fmt.Sprintf("... (%d more arguments)", len(cmd)-slowlogMaxArgs)))
			break
		}
		if len(a) > slowlogMaxArgLen {
			a = append(append([]byte(nil), a[:slowlogMaxArgLen]...), "..."...)
		} else {
			a = append([]byte(nil), a...)
		}
		args = append(args, a)
	}
	e := slowEntry{Unix: time.Now().Unix(), Dur: d, Args: args, Mode: mode, Stripe: stripe}
	sl.mu.Lock()
	e.ID = sl.nextID
	sl.nextID++
	sl.ring[sl.total%slowlogCap] = e
	sl.total++
	sl.mu.Unlock()
}

// entries returns up to max entries, newest first.
func (sl *slowlog) entries(max int) []slowEntry {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	n := int(minInt64Stats(sl.total, slowlogCap))
	if max >= 0 && max < n {
		n = max
	}
	out := make([]slowEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sl.ring[(sl.total-1-int64(i))%slowlogCap])
	}
	return out
}

func (sl *slowlog) size() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return int(minInt64Stats(sl.total, slowlogCap))
}

func (sl *slowlog) reset() {
	sl.mu.Lock()
	sl.total = 0
	sl.ring = [slowlogCap]slowEntry{}
	sl.mu.Unlock()
}

// SetSlowlogThreshold sets the slowlog's minimum duration: commands at or
// above it are captured. Zero logs every command; negative disables the
// slowlog. Safe to call while serving.
func (s *Server) SetSlowlogThreshold(d time.Duration) {
	s.stats.slow.threshold.Store(int64(d))
}

// --- LATENCY / SLOWLOG command handlers ---

// cmdLatency handles LATENCY HISTOGRAM [cmd ...] and LATENCY RESET
// [cmd ...]. HISTOGRAM replies with an alternating array — family name,
// then [ "calls", n, "histogram_usec", [upper_us, count, ...] ] — for the
// requested families (default: every family with at least one recorded
// sample). RESET zeroes the named families' histograms (default all) and
// replies with how many were reset.
func (s *Server) cmdLatency(w *resp.Writer, cmd [][]byte) {
	if len(cmd) < 2 {
		w.WriteError("wrong number of arguments for LATENCY")
		return
	}
	families := func() []string {
		if len(cmd) > 2 {
			var out []string
			for _, c := range cmd[2:] {
				out = append(out, s.stats.family([][]byte{c}))
			}
			return out
		}
		return statFamilies
	}
	switch strings.ToUpper(string(cmd[1])) {
	case "HISTOGRAM":
		type famHist struct {
			name string
			sn   metrics.Snapshot
		}
		var hists []famHist
		seen := map[string]bool{}
		for _, f := range families() {
			if seen[f] {
				continue
			}
			seen[f] = true
			sn := s.stats.cmds[f].hist.Snapshot()
			if sn.Count() == 0 && len(cmd) == 2 {
				continue // default listing: only families that ran
			}
			hists = append(hists, famHist{f, sn})
		}
		w.WriteArrayHeader(2 * len(hists))
		for _, fh := range hists {
			w.WriteBulk([]byte(fh.name))
			var uppers, counts []uint64
			fh.sn.Buckets(func(upper, count uint64) {
				uppers = append(uppers, (upper+999)/1000) // ns → µs, ceil so sub-µs buckets stay visible
				counts = append(counts, count)
			})
			w.WriteArrayHeader(4)
			w.WriteBulk([]byte("calls"))
			w.WriteInt(int64(fh.sn.Count()))
			w.WriteBulk([]byte("histogram_usec"))
			w.WriteArrayHeader(2 * len(uppers))
			for i := range uppers {
				w.WriteInt(int64(uppers[i]))
				w.WriteInt(int64(counts[i]))
			}
		}
	case "RESET":
		n := 0
		seen := map[string]bool{}
		for _, f := range families() {
			if seen[f] {
				continue
			}
			seen[f] = true
			s.stats.cmds[f].hist.Reset()
			n++
		}
		w.WriteInt(int64(n))
	default:
		w.WriteError(fmt.Sprintf("unknown LATENCY subcommand '%s' (want HISTOGRAM or RESET)", cmd[1]))
	}
}

// cmdSlowlog handles SLOWLOG GET [count] | RESET | LEN. GET replies with
// the newest entries first; each entry is [id, unixtime, duration_us,
// args..., exec-mode, stripe] — mode and stripe stand where Redis puts
// the client address and name, because under striped execution "which
// lane was that on" is the question a slow entry needs to answer.
func (s *Server) cmdSlowlog(w *resp.Writer, cmd [][]byte) {
	if len(cmd) < 2 {
		w.WriteError("wrong number of arguments for SLOWLOG")
		return
	}
	switch strings.ToUpper(string(cmd[1])) {
	case "GET":
		max := 10
		if len(cmd) == 3 {
			n, err := strconv.Atoi(string(cmd[2]))
			if err != nil {
				w.WriteError("count is not an integer")
				return
			}
			max = n // negative = everything, matching Redis
		}
		ents := s.stats.slow.entries(max)
		w.WriteArrayHeader(len(ents))
		for _, e := range ents {
			w.WriteArrayHeader(6)
			w.WriteInt(e.ID)
			w.WriteInt(e.Unix)
			w.WriteInt(int64(e.Dur / time.Microsecond))
			w.WriteArrayHeader(len(e.Args))
			for _, a := range e.Args {
				w.WriteBulk(a)
			}
			w.WriteBulk([]byte(e.Mode))
			w.WriteInt(int64(e.Stripe))
		}
	case "RESET":
		s.stats.slow.reset()
		w.WriteSimple("OK")
	case "LEN":
		w.WriteInt(int64(s.stats.slow.size()))
	default:
		w.WriteError(fmt.Sprintf("unknown SLOWLOG subcommand '%s' (want GET, RESET or LEN)", cmd[1]))
	}
}

// --- INFO sections ---

// appendClientsInfo writes the "# Clients" INFO section: live connection
// count, the -maxconns cap (0 = unlimited) and how many connections the
// cap has refused.
func (s *Server) appendClientsInfo(b *strings.Builder) {
	b.WriteString("# Clients\r\n")
	fmt.Fprintf(b, "connected_clients:%d\r\nmaxclients:%d\r\nrejected_connections:%d\r\n",
		s.conns.Load(), s.maxConns, s.rejected.Load())
}

// appendCommandStats writes the "# Commandstats" INFO section: one
// cmdstat_<family> line per family that has run, Redis's spelling
// (calls/errors/usec_per_call) so existing tooling parses it.
func (s *Server) appendCommandStats(b *strings.Builder) {
	b.WriteString("# Commandstats\r\n")
	for _, f := range statFamilies {
		st := s.stats.cmds[f]
		calls := st.calls.Load()
		if calls == 0 {
			continue
		}
		sn := st.hist.Snapshot()
		perCall := 0.0
		if sn.Count() > 0 {
			// Mean over histogram samples: collapsed ZSCORE runs count n
			// calls but one sample, so this is µs per executed unit, the
			// number that predicts a pipeline's cost.
			perCall = sn.Mean() / float64(time.Microsecond)
		}
		fmt.Fprintf(b, "cmdstat_%s:calls=%d,errors=%d,usec_per_call=%.2f\r\n",
			f, calls, st.errs.Load(), perCall)
	}
}

// appendLatencyStats writes the "# Latencystats" INFO section: Redis's
// latency_percentiles_usec_<family> lines, percentiles in microseconds
// from the family's log-bucketed histogram.
func (s *Server) appendLatencyStats(b *strings.Builder) {
	b.WriteString("# Latencystats\r\n")
	for _, f := range statFamilies {
		sn := s.stats.cmds[f].hist.Snapshot()
		if sn.Count() == 0 {
			continue
		}
		fmt.Fprintf(b, "latency_percentiles_usec_%s:p50=%.3f,p99=%.3f,p99.9=%.3f\r\n",
			f,
			float64(sn.Quantile(0.5))/float64(time.Microsecond),
			float64(sn.Quantile(0.99))/float64(time.Microsecond),
			float64(sn.Quantile(0.999))/float64(time.Microsecond))
	}
}

// appendWALMetricsInfo extends "# Persistence" with the WAL's durability
// histograms: fsync duration, Commit park time and group-commit batch
// size. Zero-count histograms still print their count lines (so parsers
// need no existence check) but omit the percentile lines.
func (s *Server) appendWALMetricsInfo(b *strings.Builder) {
	m := s.wal.Metrics()
	writeDur := func(prefix string, sn metrics.Snapshot) {
		fmt.Fprintf(b, "%s_count:%d\r\n", prefix, sn.Count())
		if sn.Count() == 0 {
			return
		}
		fmt.Fprintf(b, "%s_p50_us:%d\r\n%s_p99_us:%d\r\n%s_max_us:%d\r\n",
			prefix, sn.Quantile(0.5)/1000, prefix, sn.Quantile(0.99)/1000, prefix, sn.Max()/1000)
	}
	writeDur("aof_fsync", m.Fsync.Snapshot())
	writeDur("aof_commit_wait", m.CommitWait.Snapshot())
	bs := m.BatchSize.Snapshot()
	fmt.Fprintf(b, "aof_group_batch_count:%d\r\n", bs.Count())
	if bs.Count() > 0 {
		fmt.Fprintf(b, "aof_group_batch_p50:%d\r\naof_group_batch_max:%d\r\n",
			bs.Quantile(0.5), bs.Max())
	}
}

func minIntStats(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minInt64Stats(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
