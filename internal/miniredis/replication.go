package miniredis

// Replication wiring: the mini-Redis faces of internal/repl. A durable
// server is a potential primary — its repl.Manager is created alongside the
// WAL and fed by the WAL's append hook — and any memory-only server can
// become a read replica with REPLICAOF (or the ReplicaOf method). Replicas
// reject client writes with -READONLY; their keyspace changes only through
// the replication applier, which reuses the same bulk-load and apply paths
// recovery uses, so engines (including sharded ones with sampled routers)
// cannot tell a replication sync from a local restart.

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/resp"
)

// connState is per-connection command context: the LSN of the connection's
// last logged write (the offset WAIT targets — Redis semantics: WAIT covers
// the writes THIS client issued) and the listening port a replica announced
// before PSYNC.
type connState struct {
	lastWrite  uint64
	listenPort string
}

// rejectReadonly answers a write command with -READONLY when this server is
// a replica, reporting whether it did. Only client writes are gated; the
// replication applier mutates the keyspace directly.
func (s *Server) rejectReadonly(w *resp.Writer) bool {
	if !s.isReplica() {
		return false
	}
	// A failed reply write is sticky in the bufio layer: serve's checked
	// Flush after the dispatch surfaces it and drops the connection, so no
	// ack is ever fabricated past a failed reply write.
	w.WriteErrorCode("READONLY You can't write against a read only replica.")
	return true
}

// isReplica reports whether a replica session is attached.
func (s *Server) isReplica() bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replSess != nil
}

// ReplicaOf attaches this server to a primary as a read replica, replacing
// any existing session. Re-attaching to the SAME primary offers the old
// session's applied LSN in the handshake, so a broken link resumes with a
// partial sync where the primary's WAL retention allows. Only memory-only
// servers may be replicas: a replica's durability is the primary's job, and
// a local WAL would assign LSNs conflicting with the replicated ones.
// reconnectDelay tunes the session's reconnect pacing (0 = default).
func (s *Server) ReplicaOf(addr string, reconnectDelay time.Duration) (*repl.Replica, error) {
	if s.Persistent() {
		return nil, errors.New("miniredis: a persistent server cannot be a replica (run it memory-only)")
	}
	s.replMu.Lock()
	var resume uint64
	if s.lastMaster == addr {
		resume = s.lastApplied // re-attach after a detach: offer a partial sync
	}
	if old := s.replSess; old != nil {
		if old.MasterAddr() == addr {
			resume = old.Applied()
		}
		s.replSess = nil
		// Stop asynchronously: a REPLICAOF dispatched in serial mode holds
		// cmdMu, and a synchronous Stop would wait on an applier batch that
		// is itself waiting for cmdMu. The old connection closes
		// immediately; at most one already-read batch still applies, and
		// the new session's full sync replaces the keyspace regardless.
		go old.Stop()
	}
	listen := ""
	if s.ln != nil {
		listen = s.ln.Addr().String()
	}
	sess := repl.StartReplica(repl.ReplicaConfig{
		Addr:           addr,
		ListenAddr:     listen,
		Target:         replTarget{s},
		ResumeFrom:     resume,
		ReconnectDelay: reconnectDelay,
	})
	s.replSess = sess
	s.lastMaster = addr
	s.replMu.Unlock()
	return sess, nil
}

// ReplicaOfNoOne detaches the replica session (REPLICAOF NO ONE) and waits
// for it to stop. The keyspace keeps whatever was applied; the server
// accepts writes again.
func (s *Server) ReplicaOfNoOne() { s.detachReplica(true) }

// detachReplica clears the replica session, remembering its master address
// and applied LSN so a later ReplicaOf back to the same primary can offer a
// partial resync instead of re-shipping everything. wait=false stops the
// session on a goroutine — required when the caller holds cmdMu (see
// ReplicaOf).
func (s *Server) detachReplica(wait bool) {
	s.replMu.Lock()
	old := s.replSess
	s.replSess = nil
	if old != nil {
		s.lastMaster, s.lastApplied = old.MasterAddr(), old.Applied()
	}
	s.replMu.Unlock()
	if old == nil {
		return
	}
	if wait {
		old.Stop()
		// The applier may have landed one more batch between the capture
		// above and the stop; record the final cursor (unless a new session
		// already took over).
		s.replMu.Lock()
		if s.replSess == nil && s.lastMaster == old.MasterAddr() {
			s.lastApplied = old.Applied()
		}
		s.replMu.Unlock()
	} else {
		go old.Stop()
	}
}

// ReplicaSession returns the attached replica session, nil when this server
// is not a replica.
func (s *Server) ReplicaSession() *repl.Replica {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replSess
}

// ReplManager returns the primary-side replication manager, nil on
// memory-only servers.
func (s *Server) ReplManager() *repl.Manager { return s.repl }

// cmdReplicaOf handles REPLICAOF/SLAVEOF <host> <port> | NO ONE.
func (s *Server) cmdReplicaOf(w *resp.Writer, cmd [][]byte) {
	if len(cmd) != 3 {
		w.WriteError("wrong number of arguments for REPLICAOF")
		return
	}
	host, port := string(cmd[1]), string(cmd[2])
	if strings.EqualFold(host, "no") && strings.EqualFold(port, "one") {
		s.detachReplica(false) // async: may hold cmdMu (see ReplicaOf)
		w.WriteSimple("OK")
		return
	}
	if _, err := strconv.ParseUint(port, 10, 16); err != nil {
		w.WriteError("invalid port")
		return
	}
	if _, err := s.ReplicaOf(net.JoinHostPort(host, port), 0); err != nil {
		w.WriteError(err.Error())
		return
	}
	w.WriteSimple("OK")
}

// cmdReplconf handles pre-PSYNC REPLCONF options. ACK gets no reply (after
// the handshake acks are consumed by the manager's per-replica reader, not
// here); everything else is acknowledged and tolerated.
func (s *Server) cmdReplconf(w *resp.Writer, cs *connState, cmd [][]byte) {
	if len(cmd) == 3 && strings.EqualFold(string(cmd[1]), "listening-port") {
		cs.listenPort = string(cmd[2])
		w.WriteSimple("OK")
		return
	}
	if len(cmd) >= 2 && strings.EqualFold(string(cmd[1]), "ACK") {
		return
	}
	w.WriteSimple("OK")
}

// cmdWait handles WAIT <numreplicas> <timeout-ms>: it blocks until the
// given number of replicas have acknowledged this connection's last write
// (timeout 0 = indefinitely) and replies with the count that had at that
// moment. With no replication manager the answer is always 0. It always
// runs bare on the connection goroutine — dispatch splits WAIT out of
// every batch in every execution mode — so neither of its parks (the
// local-durability gate below, then WaitAcks) can hold a lock another
// connection's writes or the replication appliers need.
func (s *Server) cmdWait(w *resp.Writer, cs *connState, cmd [][]byte) {
	if len(cmd) != 3 {
		w.WriteError("wrong number of arguments for WAIT")
		return
	}
	n, err1 := strconv.Atoi(string(cmd[1]))
	ms, err2 := strconv.Atoi(string(cmd[2]))
	if err1 != nil || err2 != nil || n < 0 || ms < 0 {
		w.WriteError("value is not an integer or out of range")
		return
	}
	// Local durability before replica counting: WAIT's reply must never
	// claim more than the log can back (acks must not run ahead of
	// durability, even though replication shipping may). Under group/async
	// this parks on the group syncer; under the inline policies Commit
	// syncs on the spot. The gate applies identically in every execution
	// mode, pipelined or lone: dispatch guarantees no execution lock is
	// held here, so parking stalls only this connection.
	if s.wal != nil && cs.lastWrite > 0 {
		if err := s.wal.Commit(cs.lastWrite); err != nil {
			w.WriteError("persistence: " + err.Error())
			return
		}
	}
	if s.repl == nil {
		w.WriteInt(0)
		return
	}
	got := s.repl.WaitAcks(cs.lastWrite, n, time.Duration(ms)*time.Millisecond)
	w.WriteInt(int64(got))
}

// cmdInfo handles INFO [section]. Replication, persistence and clients
// make up the default reply; commandstats and latencystats — Redis's
// optional sections — come only when named, since their size grows with
// the command set. Fields follow Redis's spelling where one exists so
// existing tooling parses them.
func (s *Server) cmdInfo(w *resp.Writer, cmd [][]byte) {
	if len(cmd) > 2 {
		w.WriteError("wrong number of arguments for INFO")
		return
	}
	section := ""
	if len(cmd) == 2 {
		section = strings.ToLower(string(cmd[1]))
	}
	want := func(name string) bool {
		if section == "" {
			return name == "replication" || name == "persistence" || name == "clients"
		}
		return section == name
	}
	var b strings.Builder
	sep := func() {
		if b.Len() > 0 {
			b.WriteString("\r\n")
		}
	}
	if want("replication") {
		s.appendReplicationInfo(&b)
	}
	if want("persistence") {
		sep()
		s.appendPersistenceInfo(&b)
	}
	if want("clients") {
		sep()
		s.appendClientsInfo(&b)
	}
	if want("commandstats") {
		sep()
		s.appendCommandStats(&b)
	}
	if want("latencystats") {
		sep()
		s.appendLatencyStats(&b)
	}
	w.WriteBulk([]byte(b.String()))
}

// appendReplicationInfo writes the "# Replication" INFO section.
func (s *Server) appendReplicationInfo(b *strings.Builder) {
	b.WriteString("# Replication\r\n")
	if sess := s.ReplicaSession(); sess != nil {
		host, port, _ := net.SplitHostPort(sess.MasterAddr())
		status := "down"
		if sess.LinkUp() {
			status = "up"
		}
		fmt.Fprintf(b, "role:slave\r\nmaster_host:%s\r\nmaster_port:%s\r\nmaster_link_status:%s\r\nslave_repl_offset:%d\r\n",
			host, port, status, sess.Applied())
	} else {
		b.WriteString("role:master\r\n")
		var last uint64
		var reps []repl.ReplicaInfo
		if s.repl != nil {
			last = s.repl.LastLSN()
			reps = s.repl.Replicas()
			sort.Slice(reps, func(i, j int) bool { return reps[i].Addr < reps[j].Addr })
		}
		fmt.Fprintf(b, "connected_slaves:%d\r\nmaster_repl_offset:%d\r\n", len(reps), last)
		for i, r := range reps {
			host, port, err := net.SplitHostPort(r.Addr)
			if err != nil {
				host, port = r.Addr, "0"
			}
			lag := int64(last) - int64(r.Acked)
			if lag < 0 {
				lag = 0
			}
			fmt.Fprintf(b, "slave%d:ip=%s,port=%s,ack_offset=%d,lag=%d\r\n", i, host, port, r.Acked, lag)
		}
	}
}

// appendPersistenceInfo writes the "# Persistence" INFO section: the fsync
// policy, the last assigned LSN, and the durable watermark — the pair that
// makes async mode's ack-vs-durable gap observable (aof_last_lsn -
// aof_durable_lsn is exactly the writes a crash right now would lose).
func (s *Server) appendPersistenceInfo(b *strings.Builder) {
	b.WriteString("# Persistence\r\n")
	if s.wal == nil {
		b.WriteString("aof_enabled:0\r\n")
		return
	}
	last, durable := s.wal.LSN(), s.wal.DurableLSN()
	fmt.Fprintf(b, "aof_enabled:1\r\nappendfsync:%s\r\naof_last_lsn:%d\r\naof_durable_lsn:%d\r\naof_pending_records:%d\r\naof_appended_bytes:%d\r\n",
		s.fsyncPol, last, durable, last-durable, s.wal.AppendedBytes())
	s.appendWALMetricsInfo(b)
}

// servePSync hands a connection over to the replication manager for the
// rest of its lifetime. It runs on the connection's serve goroutine,
// outside cmdMu.
func (s *Server) servePSync(conn net.Conn, r *resp.Reader, w *resp.Writer, cs *connState, cmd [][]byte) {
	if s.repl == nil {
		w.WriteError("replication requires persistence (start the primary with a data dir)")
		w.Flush() //ctvet:ignore best-effort error reply on a handshake being rejected; the replica retries either way
		return
	}
	if len(cmd) != 2 {
		w.WriteError("wrong number of arguments for PSYNC")
		w.Flush() //ctvet:ignore best-effort error reply on a handshake being rejected; the replica retries either way
		return
	}
	lsn, err := strconv.ParseUint(string(cmd[1]), 10, 64)
	if err != nil {
		w.WriteError("invalid PSYNC offset")
		w.Flush() //ctvet:ignore best-effort error reply on a handshake being rejected; the replica retries either way
		return
	}
	// Preload fence: a bulk load in flight bypasses the WAL, so a snapshot
	// cut now would ship a half-loaded keyspace. Waiting out the write lock
	// means every Preload that started before this handshake has finished
	// (and has raised the partial-sync fence) by the time the sync begins.
	s.bulkMu.Lock()
	s.bulkMu.Unlock() //nolint:staticcheck // the barrier IS the point
	addr := ""
	if cs.listenPort != "" {
		if host, _, err := net.SplitHostPort(conn.RemoteAddr().String()); err == nil {
			addr = net.JoinHostPort(host, cs.listenPort)
		}
	}
	s.repl.Serve(conn, r, w, lsn, addr)
}

// replTarget adapts the server to repl.Target: the replica session's
// single applier goroutine funnels all keyspace mutation through these
// three methods. Each takes the server's quiesce lock — cmdMu on a serial
// server, the all-stripe executor barrier under striped-exec, nothing
// under striped-conn — because the engine may not be concurrent-safe:
// replicated writes must quiesce client reads exactly as local writes
// quiesce each other. Replicas are memory-only (no WAL), so holding the
// quiesce lock across a batch can never park on a group commit.
type replTarget struct{ s *Server }

func (t replTarget) FlushAll() {
	release := t.s.quiesce()
	defer release()
	t.s.ks.flush()
}

func (t replTarget) LoadSnapshot(sets []persist.SnapshotSet) error {
	release := t.s.quiesce()
	defer release()
	for _, set := range sets {
		hint := set.LenHint
		if hint < len(set.Keys) {
			hint = len(set.Keys)
		}
		if hint <= 0 {
			hint = t.s.capacity
		}
		ix := t.s.factory(hint)
		if _, err := index.BulkLoad(ix, set.Keys, set.Vals); err != nil {
			return fmt.Errorf("miniredis: bulk-loading replicated set %q: %w", set.Set, err)
		}
		st := t.s.ks.stripeFor(set.Set)
		st.mu.Lock()
		st.sets[set.Set] = ix
		st.mu.Unlock()
	}
	return nil
}

func (t replTarget) ApplyBatch(recs []persist.Record) error {
	release := t.s.quiesce()
	defer release()
	for i := range recs {
		rec := &recs[i]
		switch rec.Op {
		case persist.OpSet:
			if _, err := t.s.set(rec.Set).Set(rec.Key, rec.Val); err != nil {
				return err
			}
		case persist.OpDelete:
			// lookup, not set: deleting from an absent set must not create
			// it (the primary only logs deletes that removed something, but
			// a full sync may have landed us past that set's creation).
			if ix, ok := t.s.ks.lookup(rec.Set); ok {
				ix.Delete(rec.Key)
			}
		case persist.OpFlushAll:
			t.s.ks.flush()
		default:
			return fmt.Errorf("miniredis: unexpected replicated op %d", rec.Op)
		}
	}
	return nil
}
