package miniredis

// Per-command handlers — the execute stage's leaf. dispatchOne runs one
// command on the calling goroutine under whatever discipline the executor
// chose (cmdMu, a stripe's execMu, the all-stripe barrier, or nothing);
// the handlers themselves only add the per-stripe write mutexes that pin
// WAL order to apply order. WAIT is deliberately absent: dispatch splits
// it out of every batch in every mode, because its handler parks.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/persist"
	"repro/internal/resp"
)

// dispatchOne executes a single command and folds it into the server's
// observability state (stats.go): one clock pair around the handler, the
// family's call/error counters, and — for commands over the slowlog
// threshold — a slowlog entry. quiesced says the caller holds this
// server's quiesce lock (serial mode's cmdMu, or striped-exec's
// all-stripe barrier), so SAVE must not retake it.
func (s *Server) dispatchOne(w *resp.Writer, cmd [][]byte, cs *connState, quiesced bool) {
	st := s.stats.statFor(cmd)
	errsBefore := w.ErrorsWritten()
	start := time.Now()
	s.runCommand(w, cmd, cs, quiesced)
	s.observeCmd(st, w, cmd, errsBefore, start)
}

// runCommand executes a single command's handler (see dispatchOne for the
// locking contract).
func (s *Server) runCommand(w *resp.Writer, cmd [][]byte, cs *connState, quiesced bool) {
	if len(cmd) == 0 {
		w.WriteError("empty command")
		return
	}
	var sink uint64
	switch strings.ToUpper(string(cmd[0])) {
	case "PING":
		w.WriteSimple("PONG")
	case "ZADD":
		if len(cmd) != 4 {
			w.WriteError("wrong number of arguments for ZADD")
			return
		}
		if s.rejectReadonly(w) {
			return
		}
		v, err := strconv.ParseUint(string(cmd[3]), 10, 64)
		if err != nil {
			w.WriteError("value is not an integer")
			return
		}
		if unlock := s.lockWrite(string(cmd[1])); unlock != nil {
			defer unlock()
		}
		added, err := s.set(string(cmd[1])).Set(cmd[2], v)
		if err != nil {
			w.WriteError(err.Error())
			return
		}
		// The write is logged after it applied (AOF-style); a WAL failure
		// is reported instead of acknowledging a write that cannot become
		// durable.
		lsn, err := s.logWrite(persist.OpSet, string(cmd[1]), cmd[2], v)
		if err != nil {
			w.WriteError("persistence: " + err.Error())
			return
		}
		cs.lastWrite = lsn
		// Redis semantics: reply 1 only for a newly added member, 0 when an
		// existing member's score was updated.
		if added {
			w.WriteInt(1)
		} else {
			w.WriteInt(0)
		}
	case "ZSCORE":
		if len(cmd) != 3 {
			w.WriteError("wrong number of arguments for ZSCORE")
			return
		}
		v, ok := s.set(string(cmd[1])).Get(cmd[2])
		if !ok {
			w.WriteBulk(nil)
			return
		}
		w.WriteBulk([]byte(strconv.FormatUint(v, 10)))
	case "ZMSCORE":
		// ZMSCORE key member [member ...] — batched scores via MultiGet.
		if len(cmd) < 3 {
			w.WriteError("wrong number of arguments for ZMSCORE")
			return
		}
		members := cmd[2:]
		vals := make([]uint64, len(members))
		found := make([]bool, len(members))
		s.set(string(cmd[1])).MultiGet(members, vals, found)
		w.WriteArrayHeader(len(members))
		for i := range members {
			if found[i] {
				w.WriteBulk([]byte(strconv.FormatUint(vals[i], 10)))
			} else {
				w.WriteBulk(nil)
			}
		}
	case "ZREM":
		if len(cmd) != 3 {
			w.WriteError("wrong number of arguments for ZREM")
			return
		}
		if s.rejectReadonly(w) {
			return
		}
		if unlock := s.lockWrite(string(cmd[1])); unlock != nil {
			defer unlock()
		}
		if s.set(string(cmd[1])).Delete(cmd[2]) {
			// Only a removal that happened is logged: replaying a delete of
			// a key that was never there is harmless, but not logging one
			// that was would resurrect the key on recovery.
			lsn, err := s.logWrite(persist.OpDelete, string(cmd[1]), cmd[2], 0)
			if err != nil {
				w.WriteError("persistence: " + err.Error())
				return
			}
			cs.lastWrite = lsn
			w.WriteInt(1)
		} else {
			w.WriteInt(0)
		}
	case "ZRANGEBYLEX":
		// ZRANGEBYLEX key start count — scan `count` members ≥ start.
		if len(cmd) != 4 {
			w.WriteError("wrong number of arguments for ZRANGEBYLEX")
			return
		}
		count, err := strconv.Atoi(string(cmd[3]))
		if err != nil || count < 0 {
			w.WriteError("count is not an integer")
			return
		}
		var members [][]byte
		s.set(string(cmd[1])).Scan(cmd[2], count, func(k []byte, v uint64) bool {
			// Per-element system work: copy the member for the reply (the
			// work that §4.4's next-leaf prefetch overlaps with).
			members = append(members, append([]byte(nil), k...))
			sink += v
			return true
		})
		w.WriteArrayHeader(len(members))
		for _, m := range members {
			w.WriteBulk(m)
		}
	case "DBSIZE":
		w.WriteInt(int64(s.ks.totalLen()))
	case "FLUSHALL":
		if s.rejectReadonly(w) {
			return
		}
		if unlock := s.lockAllWrites(); unlock != nil {
			defer unlock()
		}
		s.ks.flush()
		lsn, err := s.logWrite(persist.OpFlushAll, "", nil, 0)
		if err != nil {
			w.WriteError("persistence: " + err.Error())
			return
		}
		cs.lastWrite = lsn
		w.WriteSimple("OK")
	case "SAVE":
		// Foreground snapshot; the executor may already hold the quiesce
		// lock (serial's cmdMu, striped-exec's barrier), so save must not
		// retake it.
		if err := s.save(quiesced); err != nil {
			w.WriteError(err.Error())
			return
		}
		w.WriteSimple("OK")
	case "BGSAVE":
		if !s.Persistent() {
			w.WriteError(ErrNoPersistence.Error())
			return
		}
		if s.unsafeSnapshots {
			// BGSave() below would just report false (as if a save were in
			// flight); the client deserves the real reason.
			w.WriteError(ErrUnsafeSnapshot.Error())
			return
		}
		if s.BGSave() {
			w.WriteSimple("Background saving started")
		} else {
			w.WriteSimple("Background save already in progress")
		}
	case "REPLICAOF", "SLAVEOF":
		s.cmdReplicaOf(w, cmd)
	case "REPLCONF":
		s.cmdReplconf(w, cs, cmd)
	case "INFO":
		s.cmdInfo(w, cmd)
	case "LATENCY":
		s.cmdLatency(w, cmd)
	case "SLOWLOG":
		s.cmdSlowlog(w, cmd)
	default:
		w.WriteError(fmt.Sprintf("unknown command '%s'", cmd[0]))
	}
	_ = sink
}

func isZScore(cmd [][]byte) bool {
	return len(cmd) == 3 && strings.EqualFold(string(cmd[0]), "ZSCORE")
}

// zscoreMulti answers a run of same-set ZSCOREs with one MultiGet,
// returning the scores for the caller to write (the striped executor
// interleaves reply-boundary marks between them; see runLane). The run is
// observed here — n zscore calls, one latency sample covering the batch —
// so both collapse paths (execSeq and runLane) stay instrumented without
// each duplicating the accounting. Reply encoding is outside the sample;
// the MultiGet dominates.
func (s *Server) zscoreMulti(cmds [][][]byte) ([]uint64, []bool) {
	start := time.Now()
	members := make([][]byte, len(cmds))
	for i, c := range cmds {
		members[i] = c[2]
	}
	vals := make([]uint64, len(members))
	found := make([]bool, len(members))
	s.set(string(cmds[0][1])).MultiGet(members, vals, found)
	s.observeZScoreRun(cmds, start)
	return vals, found
}

// zscoreBatch is zscoreMulti plus the replies, for the sequential
// executors where no boundary marking is needed.
func (s *Server) zscoreBatch(w *resp.Writer, cmds [][][]byte) {
	vals, found := s.zscoreMulti(cmds)
	for i := range cmds {
		writeScore(w, vals[i], found[i])
	}
}

// writeScore writes one ZSCORE reply: the score as a bulk string, or the
// null bulk for a missing member.
func writeScore(w *resp.Writer, v uint64, ok bool) {
	if ok {
		w.WriteBulk([]byte(strconv.FormatUint(v, 10)))
	} else {
		w.WriteBulk(nil)
	}
}
