package miniredis

import (
	"bufio"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/sharded"
)

// newReplicaServer starts a memory-only server and attaches it to the
// primary at addr as a read replica.
func newReplicaServer(t *testing.T, addr string, factory EngineFactory, serial bool) (*Server, *repl.Replica) {
	t.Helper()
	srv := NewServer(factory, 256, serial)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.ReplicaOf(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return srv, sess
}

// mustDo runs one command through cl and fails the test on a transport
// error (an -ERR reply comes back as an error value, not a failure).
func mustDo(t *testing.T, cl *Client, args ...string) interface{} {
	t.Helper()
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	r, err := cl.Do(bs...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return r
}

// dumpKeyspace captures a server's full state — every set, every member —
// for element-for-element equivalence checks. Empty sets appear with empty
// member maps, so a replica that resurrected or dropped a whole set fails
// the comparison even when the total key count matches.
func dumpKeyspace(s *Server) map[string]map[string]uint64 {
	out := map[string]map[string]uint64{}
	s.ks.rlockAll()
	defer s.ks.runlockAll()
	for i := range s.ks.stripes {
		for name, ix := range s.ks.stripes[i].sets {
			m := map[string]uint64{}
			ix.Scan(nil, ix.Len(), func(k []byte, v uint64) bool {
				m[string(k)] = v
				return true
			})
			out[name] = m
		}
	}
	return out
}

// waitUntil polls cond up to the deadline.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationConvergence is the acceptance path: a replica attaches to
// a live primary (full sync), then follows streamed writes, updates,
// deletes and a FLUSHALL; after WAIT 1 confirms the replica acked, the two
// keyspaces must match element for element.
func TestReplicationConvergence(t *testing.T) {
	dir := t.TempDir()
	prim, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	defer prim.Close()
	defer cl.Close()

	// Pre-attach state: the replica must receive these via the full sync.
	for i := 0; i < 100; i++ {
		mustDo(t, cl, "ZADD", fmt.Sprintf("set%d", i%3), fmt.Sprintf("pre%04d", i), fmt.Sprint(i))
	}
	addr := prim.ln.Addr().String()
	rep, sess := newReplicaServer(t, addr, skiplistFactory, true)
	defer rep.Close()
	waitUntil(t, 5*time.Second, "replica link", sess.LinkUp)

	// Streamed phase: writes, an update, deletes, a FLUSHALL mid-stream,
	// then a rebuild — the replica must track every transition.
	for i := 0; i < 100; i++ {
		mustDo(t, cl, "ZADD", "live", fmt.Sprintf("m%04d", i), fmt.Sprint(i))
	}
	mustDo(t, cl, "ZADD", "live", "m0000", "999")
	mustDo(t, cl, "ZREM", "live", "m0001")
	mustDo(t, cl, "ZREM", "set0", "pre0000")
	mustDo(t, cl, "FLUSHALL")
	for i := 0; i < 50; i++ {
		mustDo(t, cl, "ZADD", "after", fmt.Sprintf("a%04d", i), fmt.Sprint(i+1000))
	}
	mustDo(t, cl, "ZREM", "after", "a0007")
	if got := mustDo(t, cl, "WAIT", "1", "10000"); got.(int64) != 1 {
		t.Fatalf("WAIT 1 = %v", got)
	}

	want, got := dumpKeyspace(prim), dumpKeyspace(rep)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replica diverged:\nprimary: %v\nreplica: %v", want, got)
	}
	if st := sess.Stats(); st.FullSyncs != 1 {
		t.Fatalf("full syncs = %d, want 1 (stats %+v)", st.FullSyncs, st)
	}
}

// TestReplicationShardedSampled replicates into a 4-shard sampled-router
// engine on a concurrent (serial=false) pair: the full-sync bulk load must
// train the replica's untrained routers exactly like crash recovery does.
func TestReplicationShardedSampled(t *testing.T) {
	dir := t.TempDir()
	factory := ShardedFactoryWithRouter(trieFactory, 4, sharded.NewSampledRouter)
	prim := NewServer(factory, 256, false)
	if _, err := prim.EnablePersistence(dir, persist.FsyncNo, 0); err != nil {
		t.Fatal(err)
	}
	addr, err := prim.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	keys := make([][]byte, 400)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("m%05d", i))
		vals[i] = uint64(i)
	}
	if added, err := prim.Preload("s", keys, vals); err != nil || added != 400 {
		t.Fatalf("Preload = %d, %v", added, err)
	}

	rep, sess := newReplicaServer(t, addr, factory, false)
	defer rep.Close()
	waitUntil(t, 5*time.Second, "replica link", sess.LinkUp)
	waitUntil(t, 5*time.Second, "snapshot load", func() bool { return rep.ks.totalLen() == 400 })

	ix, ok := rep.ks.lookup("s")
	if !ok {
		t.Fatal("replica missing set s")
	}
	sx, ok := ix.(*sharded.Index)
	if !ok {
		t.Fatalf("replica set is %T", ix)
	}
	if !sx.Router().(*sharded.SampledRouter).Trained() {
		t.Fatal("replica sampled router not trained by the sync bulk load")
	}
	raddr := rep.ln.Addr().String()
	rcl, err := Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	if r := mustDo(t, rcl, "ZSCORE", "s", "m00123"); string(r.([]byte)) != "123" {
		t.Fatalf("replica ZSCORE = %v", r)
	}
}

// TestReplicationResumeNoDup kicks a streaming replica mid-run and counts
// applied records exactly: after the reconnect resumes at the acked LSN,
// every write must have been applied once — no gap, no duplicate.
func TestReplicationResumeNoDup(t *testing.T) {
	dir := t.TempDir()
	prim, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	defer prim.Close()
	defer cl.Close()
	addr := prim.ln.Addr().String()
	rep, sess := newReplicaServer(t, addr, skiplistFactory, true)
	defer rep.Close()
	waitUntil(t, 5*time.Second, "replica link", sess.LinkUp)

	for i := 0; i < 1000; i++ {
		mustDo(t, cl, "ZADD", "s", fmt.Sprintf("m%05d", i), fmt.Sprint(i))
	}
	if got := mustDo(t, cl, "WAIT", "1", "10000"); got.(int64) != 1 {
		t.Fatalf("WAIT = %v", got)
	}
	prim.ReplManager().DisconnectAll()
	for i := 1000; i < 2000; i++ {
		mustDo(t, cl, "ZADD", "s", fmt.Sprintf("m%05d", i), fmt.Sprint(i))
	}
	if got := mustDo(t, cl, "WAIT", "1", "10000"); got.(int64) != 1 {
		t.Fatalf("WAIT after reconnect = %v", got)
	}
	st := sess.Stats()
	if st.Records != 2000 {
		t.Fatalf("applied %d records, want exactly 2000 (stats %+v)", st.Records, st)
	}
	if st.PartialSyncs < 1 {
		t.Fatalf("reconnect did not partial-sync (stats %+v)", st)
	}
	if rep.ks.totalLen() != 2000 {
		t.Fatalf("replica holds %d keys", rep.ks.totalLen())
	}
}

// TestReplicationResumeAcrossSessions stops a replica session entirely,
// lets the primary advance, and re-attaches with the saved applied LSN:
// while the WAL still retains that LSN the new session must CONTINUE (no
// full sync), and the state must converge element for element.
func TestReplicationResumeAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	prim, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	defer prim.Close()
	defer cl.Close()
	addr := prim.ln.Addr().String()
	rep, sess := newReplicaServer(t, addr, skiplistFactory, true)
	defer rep.Close()
	waitUntil(t, 5*time.Second, "replica link", sess.LinkUp)

	for i := 0; i < 200; i++ {
		mustDo(t, cl, "ZADD", "s", fmt.Sprintf("m%05d", i), fmt.Sprint(i))
	}
	if got := mustDo(t, cl, "WAIT", "1", "10000"); got.(int64) != 1 {
		t.Fatalf("WAIT = %v", got)
	}
	rep.ReplicaOfNoOne()
	for i := 200; i < 400; i++ {
		mustDo(t, cl, "ZADD", "s", fmt.Sprintf("m%05d", i), fmt.Sprint(i))
	}
	// Re-attach to the same primary: ReplicaOf seeds ResumeFrom with the
	// stopped session's applied LSN, so the handshake offers a resumable
	// offset and the primary answers CONTINUE.
	sess2, err := rep.ReplicaOf(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDo(t, cl, "WAIT", "1", "10000"); got.(int64) != 1 {
		t.Fatalf("WAIT after re-attach = %v", got)
	}
	st := sess2.Stats()
	if st.FullSyncs != 0 || st.PartialSyncs != 1 {
		t.Fatalf("re-attach syncs = %+v, want exactly one partial", st)
	}
	if st.Records != 200 {
		t.Fatalf("re-attach applied %d records, want exactly 200", st.Records)
	}
	if !reflect.DeepEqual(dumpKeyspace(prim), dumpKeyspace(rep)) {
		t.Fatal("replica diverged after cross-session resume")
	}
}

// TestReplicationFallBehindFullSync re-attaches a replica whose LSN has
// been compacted out of the primary's WAL retention (tiny segments + a SAVE
// removed the segments it would need): the primary must answer with a fresh
// full sync — graceful degradation, not an error — and the state must still
// converge.
func TestReplicationFallBehindFullSync(t *testing.T) {
	dir := t.TempDir()
	prim := NewServer(skiplistFactory, 256, true)
	if _, err := prim.EnablePersistenceWithOptions(dir, PersistOptions{
		Policy:       persist.FsyncNo,
		SegmentBytes: 256,
	}); err != nil {
		t.Fatal(err)
	}
	addr, err := prim.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rep, sess := newReplicaServer(t, addr, skiplistFactory, true)
	defer rep.Close()
	waitUntil(t, 5*time.Second, "replica link", sess.LinkUp)
	for i := 0; i < 50; i++ {
		mustDo(t, cl, "ZADD", "s", fmt.Sprintf("m%05d", i), fmt.Sprint(i))
	}
	if got := mustDo(t, cl, "WAIT", "1", "10000"); got.(int64) != 1 {
		t.Fatalf("WAIT = %v", got)
	}
	rep.ReplicaOfNoOne()

	// Advance far past the detached replica's LSN and compact: SAVE removes
	// every fully-covered 256-byte segment, so LSN 50 is gone.
	for i := 50; i < 500; i++ {
		mustDo(t, cl, "ZADD", "s", fmt.Sprintf("m%05d", i), fmt.Sprint(i))
	}
	mustDo(t, cl, "SAVE")
	if oldest, ok := persist.OldestWALLSN(dir); !ok || oldest <= 51 {
		t.Fatalf("compaction did not advance retention (oldest=%d ok=%v)", oldest, ok)
	}

	sess2, err := rep.ReplicaOf(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustDo(t, cl, "WAIT", "1", "10000"); got.(int64) != 1 {
		t.Fatalf("WAIT after fall-behind = %v", got)
	}
	st := sess2.Stats()
	if st.FullSyncs != 1 || st.PartialSyncs != 0 {
		t.Fatalf("fall-behind syncs = %+v, want exactly one full sync", st)
	}
	if !reflect.DeepEqual(dumpKeyspace(prim), dumpKeyspace(rep)) {
		t.Fatal("replica diverged after fall-behind full sync")
	}
}

// TestPSyncHandshakeRaw speaks the wire protocol by hand and asserts the
// primary's reply line for each regime: fresh replica → FULLSYNC, retained
// LSN → CONTINUE, future LSN → FULLSYNC.
func TestPSyncHandshakeRaw(t *testing.T) {
	dir := t.TempDir()
	prim, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	defer prim.Close()
	defer cl.Close()
	for i := 0; i < 20; i++ {
		mustDo(t, cl, "ZADD", "s", fmt.Sprintf("m%02d", i), fmt.Sprint(i))
	}
	addr := prim.ln.Addr().String()

	handshake := func(offer string) string {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "*2\r\n$5\r\nPSYNC\r\n$%d\r\n%s\r\n", len(offer), offer)
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatalf("PSYNC %s: %v", offer, err)
		}
		return strings.TrimRight(line, "\r\n")
	}

	if got := handshake("0"); !strings.HasPrefix(got, "+FULLSYNC 20 ") {
		t.Fatalf("PSYNC 0 → %q, want +FULLSYNC 20 <bytes>", got)
	}
	if got := handshake("10"); got != "+CONTINUE 10" {
		t.Fatalf("PSYNC 10 → %q, want +CONTINUE 10", got)
	}
	// An LSN from the future (e.g. a replica of a different primary) is not
	// resumable no matter what the WAL holds.
	if got := handshake("999"); !strings.HasPrefix(got, "+FULLSYNC ") {
		t.Fatalf("PSYNC 999 → %q, want +FULLSYNC", got)
	}
}

// gatedFactory wraps an engine factory so every Set blocks until the gate
// closes — a stand-in for a long bulk load in flight.
type gatedIndex struct {
	index.Index
	gate chan struct{}
}

func (g *gatedIndex) Set(k []byte, v uint64) (bool, error) {
	<-g.gate
	return g.Index.Set(k, v)
}

// MultiSet blocks too: index.BulkLoad's fallback feeds MultiSet, not Set.
func (g *gatedIndex) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	<-g.gate
	return g.Index.MultiSet(keys, vals, errs)
}

// TestPreloadGateHoldsPSync is the regression test for the preload race: a
// replica that connects while -preload style bulk loading is in flight must
// be held at the handshake until the load finishes, then receive a full
// sync containing every preloaded key — never a snapshot of a half-loaded
// keyspace.
func TestPreloadGateHoldsPSync(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	factory := func(c int) index.Index {
		return &gatedIndex{Index: skiplistFactory(c), gate: gate}
	}
	prim, cl, _ := newPersistentServer(t, dir, factory, 0)
	defer prim.Close()
	defer cl.Close()
	addr := prim.ln.Addr().String()

	keys := make([][]byte, 200)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%05d", i))
		vals[i] = uint64(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := prim.Preload("bench", keys, vals); err != nil {
			t.Error(err)
		}
	}()

	rep, sess := newReplicaServer(t, addr, skiplistFactory, true)
	defer rep.Close()
	// The preload is parked on the gate, so the replica's PSYNC must be
	// parked on the bulk fence: no sync of any kind completes.
	time.Sleep(200 * time.Millisecond)
	if st := sess.Stats(); st.FullSyncs != 0 || st.PartialSyncs != 0 {
		t.Fatalf("replica synced against a half-loaded keyspace: %+v", st)
	}
	close(gate)
	wg.Wait()
	waitUntil(t, 5*time.Second, "post-preload full sync", func() bool {
		return sess.Stats().FullSyncs == 1 && rep.ks.totalLen() == 200
	})
	if !reflect.DeepEqual(dumpKeyspace(prim), dumpKeyspace(rep)) {
		t.Fatal("replica diverged after gated preload")
	}
}

// TestWaitSemantics covers WAIT's reply in each regime: no replicas (times
// out at 0), enough replicas (returns promptly), more than exist (times out
// reporting what acked).
func TestWaitSemantics(t *testing.T) {
	dir := t.TempDir()
	prim, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	defer prim.Close()
	defer cl.Close()

	mustDo(t, cl, "ZADD", "s", "m", "1")
	if got := mustDo(t, cl, "WAIT", "1", "100"); got.(int64) != 0 {
		t.Fatalf("WAIT with no replicas = %v, want 0", got)
	}
	addr := prim.ln.Addr().String()
	rep, sess := newReplicaServer(t, addr, skiplistFactory, true)
	defer rep.Close()
	waitUntil(t, 5*time.Second, "replica link", sess.LinkUp)
	mustDo(t, cl, "ZADD", "s", "m2", "2")
	if got := mustDo(t, cl, "WAIT", "1", "10000"); got.(int64) != 1 {
		t.Fatalf("WAIT 1 = %v, want 1", got)
	}
	start := time.Now()
	if got := mustDo(t, cl, "WAIT", "2", "200"); got.(int64) != 1 {
		t.Fatalf("WAIT 2 with one replica = %v, want 1", got)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Fatal("WAIT 2 returned before its timeout")
	}
}

// TestInfoReplication checks both roles' INFO replication sections.
func TestInfoReplication(t *testing.T) {
	dir := t.TempDir()
	prim, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	defer prim.Close()
	defer cl.Close()

	info := func(c *Client) string {
		return string(mustDo(t, c, "INFO", "replication").([]byte))
	}
	if got := info(cl); !strings.Contains(got, "role:master") || !strings.Contains(got, "connected_slaves:0") {
		t.Fatalf("primary INFO before replicas:\n%s", got)
	}
	addr := prim.ln.Addr().String()
	rep, sess := newReplicaServer(t, addr, skiplistFactory, true)
	defer rep.Close()
	waitUntil(t, 5*time.Second, "replica link", sess.LinkUp)
	mustDo(t, cl, "ZADD", "s", "m", "1")
	mustDo(t, cl, "WAIT", "1", "10000")

	got := info(cl)
	if !strings.Contains(got, "connected_slaves:1") || !strings.Contains(got, "slave0:ip=") {
		t.Fatalf("primary INFO with a replica:\n%s", got)
	}
	// The replica advertised its listening port, so the primary should name
	// it by that address, not the ephemeral outbound port.
	_, wantPort, _ := net.SplitHostPort(rep.ln.Addr().String())
	if !strings.Contains(got, "port="+wantPort+",") {
		t.Fatalf("primary INFO does not name the replica's listen port %s:\n%s", wantPort, got)
	}

	rcl, err := Dial(rep.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	rgot := info(rcl)
	if !strings.Contains(rgot, "role:slave") || !strings.Contains(rgot, "master_link_status:up") {
		t.Fatalf("replica INFO:\n%s", rgot)
	}
}

// TestReplicaRejectsWrites: client writes against a replica answer
// -READONLY; after REPLICAOF NO ONE the server accepts writes again.
func TestReplicaRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	prim, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	defer prim.Close()
	defer cl.Close()
	addr := prim.ln.Addr().String()
	rep, sess := newReplicaServer(t, addr, skiplistFactory, true)
	defer rep.Close()
	waitUntil(t, 5*time.Second, "replica link", sess.LinkUp)

	rcl, err := Dial(rep.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	r, err := rcl.Do([]byte("ZADD"), []byte("s"), []byte("m"), []byte("1"))
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := r.(error); !ok || !strings.Contains(e.Error(), "READONLY") {
		t.Fatalf("ZADD on replica = %v, want READONLY error", r)
	}
	if r := mustDo(t, rcl, "REPLICAOF", "NO", "ONE"); r != "OK" {
		t.Fatalf("REPLICAOF NO ONE = %v", r)
	}
	waitUntil(t, 5*time.Second, "detach", func() bool { return !rep.isReplica() })
	if r := mustDo(t, rcl, "ZADD", "s", "m", "1"); r.(int64) != 1 {
		t.Fatalf("ZADD after detach = %v", r)
	}
}

// TestReplicaOfRejectsPersistent: a server with its own WAL cannot become a
// replica.
func TestReplicaOfRejectsPersistent(t *testing.T) {
	dir := t.TempDir()
	srv, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	defer srv.Close()
	defer cl.Close()
	if _, err := srv.ReplicaOf("127.0.0.1:1", 0); err == nil {
		t.Fatal("ReplicaOf on a persistent server succeeded")
	}
	r := mustDo(t, cl, "REPLICAOF", "127.0.0.1", "1")
	if _, ok := r.(error); !ok {
		t.Fatalf("REPLICAOF command on persistent server = %v, want error", r)
	}
}
