package miniredis

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/skiplist"
)

var allExecModes = []ExecMode{ExecSerial, ExecStripedConn, ExecStripedExec}

func newExecServer(t *testing.T, mode ExecMode) (*Server, *Client) {
	t.Helper()
	srv := NewServerExec(skiplistFactory, 64, mode)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close(); srv.Close() })
	return srv, cl
}

func TestParseExecMode(t *testing.T) {
	for _, s := range []string{"serial", "striped-conn", "striped-exec"} {
		m, err := ParseExecMode(s)
		if err != nil || string(m) != s {
			t.Fatalf("ParseExecMode(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseExecMode("threaded"); err == nil {
		t.Fatal("ParseExecMode accepted an unknown mode")
	}
}

// TestExecModeMatrix runs the same pipeline — writes interleaved with the
// cross-stripe barrier commands DBSIZE and FLUSHALL — under every
// execution mode and checks each reply positionally: whatever the
// executor does internally, replies must come back in submission order
// with serial-equivalent values.
func TestExecModeMatrix(t *testing.T) {
	for _, mode := range allExecModes {
		t.Run(string(mode), func(t *testing.T) {
			srv, cl := newExecServer(t, mode)
			if srv.Mode() != mode {
				t.Fatalf("Mode() = %v, want %v", srv.Mode(), mode)
			}
			var cmds [][][]byte
			var want []interface{}
			for i := 0; i < 20; i++ {
				cmds = append(cmds, [][]byte{[]byte("ZADD"),
					[]byte(fmt.Sprintf("set%d", i%4)), []byte(fmt.Sprintf("m%02d", i)), []byte(fmt.Sprint(i))})
				want = append(want, int64(1))
			}
			cmds = append(cmds, [][]byte{[]byte("DBSIZE")})
			want = append(want, int64(20))
			for i := 20; i < 40; i++ {
				cmds = append(cmds, [][]byte{[]byte("ZADD"),
					[]byte(fmt.Sprintf("set%d", i%4)), []byte(fmt.Sprintf("m%02d", i)), []byte(fmt.Sprint(i))})
				want = append(want, int64(1))
			}
			cmds = append(cmds, [][]byte{[]byte("DBSIZE")})
			want = append(want, int64(40))
			cmds = append(cmds, [][]byte{[]byte("FLUSHALL")})
			want = append(want, "OK")
			cmds = append(cmds, [][]byte{[]byte("DBSIZE")})
			want = append(want, int64(0))
			cmds = append(cmds, [][]byte{[]byte("ZADD"), []byte("a"), []byte("x"), []byte("7")})
			want = append(want, int64(1))
			cmds = append(cmds, [][]byte{[]byte("ZSCORE"), []byte("a"), []byte("x")})
			want = append(want, "7")

			out, err := cl.Pipeline(cmds)
			if err != nil || len(out) != len(want) {
				t.Fatalf("pipeline: %d replies, %v", len(out), err)
			}
			for i, w := range want {
				switch w := w.(type) {
				case int64:
					if out[i] != w {
						t.Fatalf("reply[%d] = %v, want %d", i, out[i], w)
					}
				case string:
					got, ok := out[i].(string)
					if !ok {
						if b, bok := out[i].([]byte); bok {
							got, ok = string(b), true
						}
					}
					if !ok || got != w {
						t.Fatalf("reply[%d] = %v, want %q", i, out[i], w)
					}
				}
			}
		})
	}
}

// gateIndex gates Set by member-key prefix: a "wait*" member blocks until
// the gate opens, a "sig*" member opens it. Two such writes in one
// pipeline can only both complete if the executor really runs their
// stripes concurrently — a serial or per-connection executor hits the
// timeout and surfaces the error instead of deadlocking the test.
type gateIndex struct {
	index.Index
	gate chan struct{}
	once *sync.Once
}

func (g *gateIndex) Set(key []byte, v uint64) (bool, error) {
	switch {
	case bytes.HasPrefix(key, []byte("wait")):
		select {
		case <-g.gate:
		case <-time.After(5 * time.Second):
			return false, errors.New("gate timeout: stripes did not execute concurrently")
		}
	case bytes.HasPrefix(key, []byte("sig")):
		g.once.Do(func() { close(g.gate) })
	}
	return g.Index.Set(key, v)
}

// twoStripeSets returns two set names that route to different keyspace
// stripes (the stripe count is ≥ 8, so a handful of candidates suffice).
func twoStripeSets(t *testing.T, srv *Server) (string, string) {
	t.Helper()
	first := "s0"
	for i := 1; i < 256; i++ {
		name := fmt.Sprintf("s%d", i)
		if srv.ks.stripeIdx(name) != srv.ks.stripeIdx(first) {
			return first, name
		}
	}
	t.Fatal("could not find two sets on distinct stripes")
	return "", ""
}

// TestStripedExecConcurrentLanes proves the tentpole's core claim: under
// striped-exec, one pipeline's commands on different stripes execute
// CONCURRENTLY (the gated write completes only because the other lane
// runs while it blocks), and the out-of-order completion is invisible in
// the reply stream — replies arrive in submission order.
func TestStripedExecConcurrentLanes(t *testing.T) {
	gate := make(chan struct{})
	once := &sync.Once{}
	srv := NewServerExec(func(c int) index.Index {
		return &gateIndex{Index: skiplist.New(1), gate: gate, once: once}
	}, 64, ExecStripedExec)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	a, b := twoStripeSets(t, srv)
	out, err := cl.Pipeline([][][]byte{
		{[]byte("ZADD"), []byte(a), []byte("wait1"), []byte("1")}, // lane A blocks...
		{[]byte("ZADD"), []byte(b), []byte("sig1"), []byte("2")},  // ...until lane B runs
		{[]byte("ZSCORE"), []byte(a), []byte("wait1")},
		{[]byte("ZSCORE"), []byte(b), []byte("sig1")},
		{[]byte("DBSIZE")}, // and the all-stripe barrier still works after a gated span
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != int64(1) || out[1] != int64(1) {
		t.Fatalf("gated ZADDs = %v, %v (lanes did not run concurrently?)", out[0], out[1])
	}
	if string(out[2].([]byte)) != "1" || string(out[3].([]byte)) != "2" {
		t.Fatalf("reply order broken: ZSCOREs = %v, %v", out[2], out[3])
	}
	if out[4] != int64(2) {
		t.Fatalf("DBSIZE after gated span = %v", out[4])
	}
}

// TestStripedExecOrderingRace hammers a striped-exec server over several
// connections with pipelines that each touch a private set AND a shared
// set, on a non-concurrent engine (skiplist): execMus must serialize the
// shared lane across connections (the race detector proves it), and
// read-your-write must hold within each pipeline.
func TestStripedExecOrderingRace(t *testing.T) {
	srv, _ := newExecServer(t, ExecStripedExec)
	const workers, iters = 8, 50
	addr := srv.ln.Addr().String()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			own := []byte(fmt.Sprintf("own%d", g))
			member := []byte(fmt.Sprintf("g%d", g))
			for j := 1; j <= iters; j++ {
				val := []byte(fmt.Sprint(j))
				out, err := cl.Pipeline([][][]byte{
					{[]byte("ZADD"), own, []byte("m"), val},
					{[]byte("ZADD"), []byte("shared"), member, val},
					{[]byte("ZSCORE"), own, []byte("m")},
					{[]byte("ZSCORE"), []byte("shared"), member},
				})
				if err != nil {
					errCh <- err
					return
				}
				if got := string(out[2].([]byte)); got != string(val) {
					errCh <- fmt.Errorf("worker %d iter %d: own read-your-write = %s, want %s", g, j, got, val)
					return
				}
				if got := string(out[3].([]byte)); got != string(val) {
					errCh <- fmt.Errorf("worker %d iter %d: shared read-your-write = %s, want %s", g, j, got, val)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cl := mustDial(t, addr)
	defer cl.Close()
	// workers private sets with one member each + the shared set's members.
	if r, err := cl.Do([]byte("DBSIZE")); err != nil || r != int64(workers+workers) {
		t.Fatalf("DBSIZE = %v, %v, want %d", r, err, workers+workers)
	}
}

func mustDial(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestWaitAllModes runs WAIT — lone and mid-pipeline — under every
// execution mode on a persistent fsync=group server with no replicas
// attached. Before the executor refactor, a pipelined WAIT under serial
// mode parked on the group syncer while holding cmdMu (the exact deadlock
// ctvet's lockorder pass rejects); dispatch now splits WAIT out of the
// batch in every mode, so all of these must complete promptly.
func TestWaitAllModes(t *testing.T) {
	for _, mode := range allExecModes {
		t.Run(string(mode), func(t *testing.T) {
			srv := NewServerExec(skiplistFactory, 64, mode)
			if _, err := srv.EnablePersistenceWithOptions(t.TempDir(), PersistOptions{Policy: persist.FsyncGroup}); err != nil {
				t.Fatal(err)
			}
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cl := mustDial(t, addr)
			defer cl.Close()

			// Lone WAIT on a fresh connection (no prior write to gate on).
			if r, err := cl.Do([]byte("WAIT"), []byte("0"), []byte("100")); err != nil || r != int64(0) {
				t.Fatalf("lone WAIT = %v, %v", r, err)
			}
			// Lone WAIT after a write: gates on local durability, then replies.
			if r, err := cl.Do([]byte("ZADD"), []byte("s"), []byte("a"), []byte("1")); err != nil || r != int64(1) {
				t.Fatalf("ZADD = %v, %v", r, err)
			}
			if r, err := cl.Do([]byte("WAIT"), []byte("0"), []byte("1000")); err != nil || r != int64(0) {
				t.Fatalf("WAIT after write = %v, %v", r, err)
			}
			// Pipelined: writes before each WAIT must be durable when it replies.
			out, err := cl.Pipeline([][][]byte{
				{[]byte("ZADD"), []byte("s"), []byte("b"), []byte("2")},
				{[]byte("WAIT"), []byte("0"), []byte("1000")},
				{[]byte("ZADD"), []byte("s"), []byte("c"), []byte("3")},
				{[]byte("WAIT"), []byte("0"), []byte("1000")},
			})
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != int64(1) || out[1] != int64(0) || out[2] != int64(1) || out[3] != int64(0) {
				t.Fatalf("pipelined WAIT replies = %v", out)
			}
			if last, durable := srv.wal.LSN(), srv.wal.DurableLSN(); durable < last {
				t.Fatalf("WAIT acked with DurableLSN=%d behind LSN=%d", durable, last)
			}
		})
	}
}

// TestStripedExecBGSaveNonConcurrent is the quiesce regression test: a
// NON-concurrent engine (skiplist) under striped-exec may only be
// snapshotted while every executor lane is stopped at the all-stripe
// barrier. Background saves race pipelined writers here; -race catches
// any snapshot iteration overlapping a Set if the barrier is broken.
func TestStripedExecBGSaveNonConcurrent(t *testing.T) {
	srv := NewServerExec(skiplistFactory, 256, ExecStripedExec)
	if _, err := srv.EnablePersistenceWithOptions(t.TempDir(), PersistOptions{Policy: persist.FsyncNo}); err != nil {
		t.Fatal(err)
	}
	if !srv.quiesceSaves {
		t.Fatal("striped-exec + skiplist must quiesce saves")
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers, iters = 4, 40
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			for j := 0; j < iters; j++ {
				cmds := make([][][]byte, 8)
				for k := range cmds {
					cmds[k] = [][]byte{[]byte("ZADD"), []byte(fmt.Sprintf("set%d", k)),
						[]byte(fmt.Sprintf("g%dj%dk%d", g, j, k)), []byte("1")}
				}
				if _, err := cl.Pipeline(cmds); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	// Snapshot continuously under load: the background path (BGSave) and
	// the command path (SAVE through the barrier).
	cl := mustDial(t, addr)
	defer cl.Close()
	for k := 0; k < 10; k++ {
		srv.BGSave()
		if r, err := cl.Do([]byte("SAVE")); err != nil || r != "OK" {
			t.Fatalf("SAVE under load = %v, %v", r, err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	srv.bgWg.Wait()
	if err := srv.LastBGSaveError(); err != nil {
		t.Fatalf("BGSave under striped-exec load: %v", err)
	}
	if r, err := cl.Do([]byte("DBSIZE")); err != nil || r != int64(workers*iters*8) {
		t.Fatalf("DBSIZE = %v, %v, want %d", r, err, workers*iters*8)
	}
}

// TestStripedExecManyConnections soaks a striped-exec server with 1000
// concurrent connections (the per-connection buffers were sized down to
// make exactly this cheap) and then verifies every serve goroutine exits:
// no goroutine leak, no reply corruption.
func TestStripedExecManyConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("opens ~1000 connections")
	}
	srv, _ := newExecServer(t, ExecStripedExec)
	addr := srv.ln.Addr().String()
	baseline := runtime.NumGoroutine()

	const conns = 1000
	clients := make([]*Client, conns)
	for i := range clients {
		clients[i] = mustDial(t, addr)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			set := []byte(fmt.Sprintf("soak%d", i%37))
			member := []byte(fmt.Sprintf("c%d", i))
			out, err := cl.Pipeline([][][]byte{
				{[]byte("PING")},
				{[]byte("ZADD"), set, member, []byte("1")},
				{[]byte("ZSCORE"), set, member},
			})
			if err != nil {
				errCh <- err
				return
			}
			if out[0] != "PONG" || out[1] != int64(1) || string(out[2].([]byte)) != "1" {
				errCh <- fmt.Errorf("conn %d replies = %v", i, out)
			}
		}(i, cl)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for _, cl := range clients {
		cl.Close()
	}
	// Every per-connection serve goroutine must wind down once its client
	// hangs up. Allow slack for runtime/test goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d: serve goroutines leaked", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
