package miniredis

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	cuckootrie "repro"
	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/sharded"
	"repro/internal/skiplist"
)

// newPersistentServer starts a serial server over the given factory with
// persistence attached to dir.
func newPersistentServer(t *testing.T, dir string, factory EngineFactory, snapEvery int) (*Server, *Client, *persist.Result) {
	t.Helper()
	srv := NewServer(factory, 256, true)
	res, err := srv.EnablePersistence(dir, persist.FsyncNo, snapEvery)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cl, res
}

func skiplistFactory(c int) index.Index { return skiplist.New(1) }

func trieFactory(c int) index.Index {
	return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
}

// TestPersistenceRestartCycle is the server-level durability loop: writes,
// deletes and a FLUSHALL all survive a close-and-reopen, across multiple
// named sets, with only the WAL (no explicit SAVE).
func TestPersistenceRestartCycle(t *testing.T) {
	dir := t.TempDir()
	srv, cl, res := newPersistentServer(t, dir, skiplistFactory, 0)
	if res.Keys() != 0 {
		t.Fatalf("fresh dir recovered %d keys", res.Keys())
	}
	mustDo := func(args ...string) interface{} {
		t.Helper()
		bs := make([][]byte, len(args))
		for i, a := range args {
			bs[i] = []byte(a)
		}
		r, err := cl.Do(bs...)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		return r
	}
	mustDo("ZADD", "stale", "gone", "1")
	mustDo("FLUSHALL")
	for i := 0; i < 40; i++ {
		mustDo("ZADD", fmt.Sprintf("set%d", i%4), fmt.Sprintf("m%03d", i), fmt.Sprint(i))
	}
	mustDo("ZREM", "set1", "m001")
	mustDo("ZADD", "set2", "m002", "999") // update, not a new member
	cl.Close()
	srv.Close()

	srv2, cl2, res2 := newPersistentServer(t, dir, skiplistFactory, 0)
	defer srv2.Close()
	defer cl2.Close()
	if res2.Keys() != 39 {
		t.Fatalf("recovered %d keys, want 39", res2.Keys())
	}
	if r, _ := cl2.Do([]byte("DBSIZE")); r != int64(39) {
		t.Fatalf("DBSIZE after restart = %v", r)
	}
	if r, _ := cl2.Do([]byte("ZSCORE"), []byte("set2"), []byte("m002")); string(r.([]byte)) != "999" {
		t.Fatalf("updated member = %v", r)
	}
	if r, _ := cl2.Do([]byte("ZSCORE"), []byte("set1"), []byte("m001")); r.([]byte) != nil {
		t.Fatalf("removed member resurrected: %v", r)
	}
	if r, _ := cl2.Do([]byte("ZSCORE"), []byte("stale"), []byte("gone")); r.([]byte) != nil {
		t.Fatalf("flushed member resurrected: %v", r)
	}
	// And the write path still works on the recovered keyspace.
	if r, _ := cl2.Do([]byte("ZADD"), []byte("set0"), []byte("fresh"), []byte("1")); r != int64(1) {
		t.Fatalf("post-recovery ZADD = %v", r)
	}
}

// TestSaveCommandCompacts: SAVE cuts a snapshot, compacts fully-covered
// WAL segments, and a restart recovers from the snapshot without
// replaying history.
func TestSaveCommandCompacts(t *testing.T) {
	dir := t.TempDir()
	srv, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	for i := 0; i < 30; i++ {
		if _, err := cl.Do([]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%03d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if r, err := cl.Do([]byte("SAVE")); err != nil || r != "OK" {
		t.Fatalf("SAVE = %v, %v", r, err)
	}
	snaps := 0
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".snap") {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshots after SAVE", snaps)
	}
	cl.Close()
	srv.Close()

	srv2, cl2, res := newPersistentServer(t, dir, skiplistFactory, 0)
	defer srv2.Close()
	defer cl2.Close()
	if res.SnapshotKeys != 30 || res.Replayed != 0 {
		t.Fatalf("recovery = %d snapshot keys + %d replayed, want 30 + 0", res.SnapshotKeys, res.Replayed)
	}
}

// TestSaveWithoutPersistence: SAVE/BGSAVE on a memory-only server reply
// with an error instead of pretending durability.
func TestSaveWithoutPersistence(t *testing.T) {
	_, cl := newTestServer(t)
	if r, err := cl.Do([]byte("SAVE")); err != nil || !strings.Contains(fmt.Sprint(r), "not enabled") {
		t.Fatalf("SAVE on memory-only server = %v, %v", r, err)
	}
	if r, err := cl.Do([]byte("BGSAVE")); err != nil || !strings.Contains(fmt.Sprint(r), "not enabled") {
		t.Fatalf("BGSAVE on memory-only server = %v, %v", r, err)
	}
}

// waitBGSave waits for an in-flight background save to finish.
func waitBGSave(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.saving.Load() {
		if time.Now().After(deadline) {
			t.Fatal("background save did not finish")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAutoSnapshotEvery: the -snapshot-every cadence triggers background
// saves from the write path.
func TestAutoSnapshotEvery(t *testing.T) {
	dir := t.TempDir()
	srv, cl, _ := newPersistentServer(t, dir, skiplistFactory, 10)
	defer srv.Close()
	defer cl.Close()
	for i := 0; i < 25; i++ {
		if _, err := cl.Do([]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%03d", i)), []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	waitBGSave(t, srv)
	if err := srv.LastBGSaveError(); err != nil {
		t.Fatalf("background save failed: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".snap") {
			found = true
		}
	}
	if !found {
		t.Fatal("no snapshot after crossing the auto-save threshold")
	}
}

// TestPreloadThenSaveDurable: the documented preload flow — bulk load off
// the RESP path, then one Save — survives a restart.
func TestPreloadThenSaveDurable(t *testing.T) {
	dir := t.TempDir()
	srv, cl, _ := newPersistentServer(t, dir, skiplistFactory, 0)
	keys := make([][]byte, 500)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%05d", i))
		vals[i] = uint64(i)
	}
	if added, err := srv.Preload("bench", keys, vals); err != nil || added != 500 {
		t.Fatalf("Preload = %d, %v", added, err)
	}
	if err := srv.Save(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	srv.Close()
	srv2, cl2, res := newPersistentServer(t, dir, skiplistFactory, 0)
	defer srv2.Close()
	defer cl2.Close()
	if res.SnapshotKeys != 500 {
		t.Fatalf("recovered %d preloaded keys", res.SnapshotKeys)
	}
}

// TestShardedSampledServerRecovery: a server whose sets are 4-shard
// sampled-routed engines recovers through the partitioned bulk load; the
// untrained router of each recovered set trains from its snapshot stream.
func TestShardedSampledServerRecovery(t *testing.T) {
	dir := t.TempDir()
	factory := ShardedFactoryWithRouter(trieFactory, 4, sharded.NewSampledRouter)
	srv, cl, _ := newPersistentServer(t, dir, factory, 0)
	for i := 0; i < 400; i++ {
		if _, err := cl.Do([]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%05d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Do([]byte("SAVE")); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	srv.Close()

	srv2, cl2, res := newPersistentServer(t, dir, factory, 0)
	defer srv2.Close()
	defer cl2.Close()
	if res.Keys() != 400 {
		t.Fatalf("recovered %d keys", res.Keys())
	}
	sx, ok := res.Sets["s"].(*sharded.Index)
	if !ok {
		t.Fatalf("recovered set is %T", res.Sets["s"])
	}
	sr := sx.Router().(*sharded.SampledRouter)
	if !sr.Trained() {
		t.Fatal("sampled router not trained from the snapshot stream")
	}
	spread := 0
	for _, l := range sx.ShardLens() {
		if l > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("snapshot-trained boundaries left shard lens %v", sx.ShardLens())
	}
	if r, _ := cl2.Do([]byte("ZSCORE"), []byte("s"), []byte("m00123")); string(r.([]byte)) != "123" {
		t.Fatalf("recovered member = %v", r)
	}
}

// TestConcurrentSameKeyWALOrder: on a persistent concurrent (serial=false)
// server, racing writes to the same key must reach the WAL in the order
// they applied — the per-stripe write ordering lock — so the state replay
// rebuilds equals the state the live server last served. Without the
// ordering lock, a writer can apply first but log second, and recovery
// resurrects the overwritten value.
func TestConcurrentSameKeyWALOrder(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(trieFactory, 256, false)
	if _, err := srv.EnablePersistence(dir, persist.FsyncNo, 0); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perWriter; i++ {
				v := fmt.Sprint(g*perWriter + i)
				if _, err := c.Do([]byte("ZADD"), []byte("hot"), []byte("k"), []byte(v)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cl.Do([]byte("ZSCORE"), []byte("hot"), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	liveFinal := string(r.([]byte))
	cl.Close()
	srv.Close()

	res, err := persist.Recover(dir, func(set string, hint int) index.Index { return trieFactory(max(hint, 16)) })
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Sets["hot"].Get([]byte("k"))
	if !ok {
		t.Fatal("hot key missing after recovery")
	}
	if got := fmt.Sprint(v); got != liveFinal {
		t.Fatalf("replayed final value %s, live server served %s (WAL order diverged from apply order)", got, liveFinal)
	}
}

// TestFlushAllDBSizeBGSaveRace is the regression for the keyspace-wide
// consistency fix: FLUSHALL, DBSIZE and BGSAVE race freely (run under
// -race in CI), and because each takes ALL stripes before acting, DBSIZE
// must always observe the flush entirely or not at all — with 64
// one-member sets spread across the stripes, any value other than 0 or 64
// means a half-flushed set list leaked.
func TestFlushAllDBSizeBGSaveRace(t *testing.T) {
	dir := t.TempDir()
	// serial=false: commands run concurrently (the engine is
	// concurrent-safe), so nothing but the stripe locks orders FLUSHALL
	// against DBSIZE and the BGSAVE set-list capture.
	srv := NewServer(trieFactory, 256, false)
	if _, err := srv.EnablePersistence(dir, persist.FsyncNo, 0); err != nil {
		t.Fatal(err)
	}
	laddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(laddr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer cl.Close()
	const nsets = 64
	refill := func(c *Client) {
		t.Helper()
		for i := 0; i < nsets; i++ {
			if _, err := c.Do([]byte("ZADD"), []byte(fmt.Sprintf("set%03d", i)), []byte("m"), []byte("1")); err != nil {
				t.Error(err)
				return
			}
		}
	}
	addr := cl.conn.RemoteAddr().String()
	for round := 0; round < 4; round++ {
		refill(cl)
		var wg sync.WaitGroup
		// One flusher, one background saver, two DBSIZE readers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			time.Sleep(time.Duration(round) * 500 * time.Microsecond)
			if _, err := c.Do([]byte("FLUSHALL")); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.BGSave()
		}()
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				for i := 0; i < 40; i++ {
					r, err := c.Do([]byte("DBSIZE"))
					if err != nil {
						t.Error(err)
						return
					}
					if n := r.(int64); n != 0 && n != nsets {
						t.Errorf("DBSIZE saw a half-flushed keyspace: %d", n)
						return
					}
				}
			}()
		}
		wg.Wait()
		waitBGSave(t, srv)
		if err := srv.LastBGSaveError(); err != nil {
			t.Fatalf("round %d: background save failed: %v", round, err)
		}
	}
	// The directory must still recover cleanly after all that churn.
	refill(cl)
	if _, err := cl.Do([]byte("SAVE")); err != nil {
		t.Fatal(err)
	}
	res, err := persist.Recover(dir, func(set string, hint int) index.Index { return trieFactory(max(hint, 16)) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys() != nsets {
		t.Fatalf("recovered %d keys, want %d", res.Keys(), nsets)
	}
}
