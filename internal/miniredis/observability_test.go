package miniredis

// Observability drills: the LATENCY / SLOWLOG / INFO surface is exercised
// over raw RESP (net.Dial + the resp package, no Client conveniences) in
// all three execution modes, against a persistent fsync=group server so
// the WAL histograms (fsync duration, commit park, group batch size) have
// real samples. Plus the -maxconns cap and the striped-conn
// unsafe-snapshot refusal.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	cuckootrie "repro"
	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/resp"
	"repro/internal/skiplist"
)

// rawConn speaks RESP over a plain TCP connection — the shape any real
// Redis client library would produce, with none of this package's Client
// helpers in the path.
type rawConn struct {
	t *testing.T
	c net.Conn
	r *resp.Reader
	w *resp.Writer
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c, r: resp.NewReader(c), w: resp.NewWriter(c)}
}

func (rc *rawConn) do(args ...string) interface{} {
	rc.t.Helper()
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	if err := rc.w.WriteCommand(bs...); err != nil {
		rc.t.Fatal(err)
	}
	if err := rc.w.Flush(); err != nil {
		rc.t.Fatal(err)
	}
	v, err := rc.r.ReadReply()
	if err != nil {
		rc.t.Fatal(err)
	}
	return v
}

func TestObservabilityDrill(t *testing.T) {
	for _, mode := range []ExecMode{ExecSerial, ExecStripedConn, ExecStripedExec} {
		t.Run(string(mode), func(t *testing.T) {
			dir, err := os.MkdirTemp("", "ct-obs-*")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { os.RemoveAll(dir) })
			srv := NewServerExec(func(c int) index.Index {
				return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
			}, 1024, mode)
			if _, err := srv.EnablePersistenceWithOptions(dir, PersistOptions{Policy: persist.FsyncGroup}); err != nil {
				t.Fatal(err)
			}
			srv.SetSlowlogThreshold(0) // log every command: the drill asserts entry shape, not slowness
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				if err := srv.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			})
			rc := dialRaw(t, addr)

			// Work the store: writes (parking on the group fsync), reads,
			// and one arity error for the error counter.
			for i := 0; i < 20; i++ {
				if v := rc.do("ZADD", "drill", fmt.Sprintf("m%02d", i), fmt.Sprint(i)); v != int64(1) {
					t.Fatalf("ZADD = %v", v)
				}
			}
			if v := rc.do("ZSCORE", "drill", "m00"); string(v.([]byte)) != "0" {
				t.Fatalf("ZSCORE = %v", v)
			}
			if v, ok := rc.do("ZADD", "drill").(error); !ok {
				t.Fatalf("short ZADD: want error reply, got %v", v)
			}
			if v := rc.do("WAIT", "0", "100"); v != int64(0) {
				t.Fatalf("WAIT = %v", v)
			}

			// LATENCY HISTOGRAM: alternating family name / details array;
			// the zadd entry must carry calls and non-empty buckets.
			hist, ok := rc.do("LATENCY", "HISTOGRAM").([]interface{})
			if !ok || len(hist) == 0 || len(hist)%2 != 0 {
				t.Fatalf("LATENCY HISTOGRAM shape: %v", hist)
			}
			foundZadd := false
			for i := 0; i+1 < len(hist); i += 2 {
				name := string(hist[i].([]byte))
				det := hist[i+1].([]interface{})
				if len(det) != 4 || string(det[0].([]byte)) != "calls" || string(det[2].([]byte)) != "histogram_usec" {
					t.Fatalf("LATENCY HISTOGRAM %s details: %v", name, det)
				}
				if name == "zadd" {
					foundZadd = true
					if det[1].(int64) < 20 {
						t.Fatalf("zadd calls = %v, want >= 20", det[1])
					}
					if buckets := det[3].([]interface{}); len(buckets) == 0 || len(buckets)%2 != 0 {
						t.Fatalf("zadd histogram_usec: %v", buckets)
					}
				}
			}
			if !foundZadd {
				t.Fatal("LATENCY HISTOGRAM: no zadd entry")
			}
			if one := rc.do("LATENCY", "HISTOGRAM", "zadd").([]interface{}); len(one) != 2 || string(one[0].([]byte)) != "zadd" {
				t.Fatalf("LATENCY HISTOGRAM zadd: %v", one)
			}

			// SLOWLOG: with threshold 0 every command logged; entries are
			// [id, unixtime, dur_us, args, exec-mode, stripe], newest first.
			if n := rc.do("SLOWLOG", "LEN").(int64); n == 0 {
				t.Fatal("SLOWLOG LEN = 0 with threshold 0")
			}
			ents := rc.do("SLOWLOG", "GET", "5").([]interface{})
			if len(ents) == 0 || len(ents) > 5 {
				t.Fatalf("SLOWLOG GET 5: %d entries", len(ents))
			}
			e := ents[0].([]interface{})
			if len(e) != 6 {
				t.Fatalf("slowlog entry arity = %d, want 6: %v", len(e), e)
			}
			if _, ok := e[0].(int64); !ok {
				t.Fatalf("slowlog id: %v", e[0])
			}
			if args := e[3].([]interface{}); len(args) == 0 {
				t.Fatal("slowlog entry has no args")
			}
			if got := string(e[4].([]byte)); got != string(mode) {
				t.Fatalf("slowlog exec mode = %q, want %q", got, mode)
			}
			if _, ok := e[5].(int64); !ok {
				t.Fatalf("slowlog stripe: %v", e[5])
			}
			if v := rc.do("SLOWLOG", "RESET"); v != "OK" {
				t.Fatalf("SLOWLOG RESET = %v", v)
			}
			// At threshold 0 the RESET itself is logged after it clears the
			// ring (as in Redis), so LEN is 1, and that one entry is it.
			if n := rc.do("SLOWLOG", "LEN").(int64); n > 1 {
				t.Fatalf("SLOWLOG LEN after RESET = %d", n)
			}
			if ents := rc.do("SLOWLOG", "GET").([]interface{}); len(ents) == 1 {
				args := ents[0].([]interface{})[3].([]interface{})
				if string(args[0].([]byte)) != "SLOWLOG" {
					t.Fatalf("post-RESET entry args: %v", args)
				}
			}

			// INFO commandstats / latencystats / persistence / clients.
			stats := string(rc.do("INFO", "commandstats").([]byte))
			if !strings.Contains(stats, "# Commandstats\r\n") || !strings.Contains(stats, "cmdstat_zadd:calls=") {
				t.Fatalf("INFO commandstats:\n%s", stats)
			}
			if !strings.Contains(stats, "cmdstat_zadd:calls=21,errors=1,") {
				t.Fatalf("INFO commandstats zadd calls/errors:\n%s", stats)
			}
			lat := string(rc.do("INFO", "latencystats").([]byte))
			if !strings.Contains(lat, "# Latencystats\r\n") || !strings.Contains(lat, "latency_percentiles_usec_zadd:p50=") {
				t.Fatalf("INFO latencystats:\n%s", lat)
			}
			pers := string(rc.do("INFO", "persistence").([]byte))
			for _, want := range []string{"aof_enabled:1", "aof_fsync_count:", "aof_commit_wait_count:", "aof_group_batch_count:"} {
				if !strings.Contains(pers, want) {
					t.Fatalf("INFO persistence missing %q:\n%s", want, pers)
				}
			}
			if strings.Contains(pers, "aof_fsync_count:0\r\n") {
				t.Fatalf("INFO persistence: no fsyncs recorded:\n%s", pers)
			}
			cli := string(rc.do("INFO", "clients").([]byte))
			if !strings.Contains(cli, "connected_clients:1") || !strings.Contains(cli, "rejected_connections:0") {
				t.Fatalf("INFO clients:\n%s", cli)
			}
			// The default INFO carries replication+persistence+clients but
			// not the stats sections.
			def := string(rc.do("INFO").([]byte))
			for _, want := range []string{"# Replication", "# Persistence", "# Clients"} {
				if !strings.Contains(def, want) {
					t.Fatalf("default INFO missing %q:\n%s", want, def)
				}
			}
			if strings.Contains(def, "# Commandstats") {
				t.Fatal("default INFO should not include commandstats")
			}

			if n := rc.do("LATENCY", "RESET").(int64); n == 0 {
				t.Fatal("LATENCY RESET reset nothing")
			}
			if after := rc.do("LATENCY", "HISTOGRAM", "zadd").([]interface{}); len(after) == 2 {
				if det := after[1].([]interface{}); det[1].(int64) != 0 {
					t.Fatalf("zadd samples after LATENCY RESET = %v", det[1])
				}
			}
		})
	}
}

func TestMaxConns(t *testing.T) {
	srv := NewServer(func(c int) index.Index { return skiplist.New(1) }, 64, true)
	srv.SetMaxConns(2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Two connections PING (the round trip proves serve() started, so the
	// cap sees them); the third must be refused with the Redis error.
	c1 := dialRaw(t, addr)
	c2 := dialRaw(t, addr)
	if v := c1.do("PING"); v != "PONG" {
		t.Fatalf("PING = %v", v)
	}
	if v := c2.do("PING"); v != "PONG" {
		t.Fatalf("PING = %v", v)
	}
	over, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	buf := make([]byte, 256)
	over.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := over.Read(buf)
	if err != nil {
		t.Fatalf("read refusal: %v", err)
	}
	if got := string(buf[:n]); got != "-ERR max number of clients reached\r\n" {
		t.Fatalf("refusal = %q", got)
	}
	if _, err := over.Read(buf); err == nil {
		t.Fatal("over-cap connection not closed")
	}

	cli := string(c1.do("INFO", "clients").([]byte))
	if !strings.Contains(cli, "connected_clients:2") ||
		!strings.Contains(cli, "maxclients:2") ||
		!strings.Contains(cli, "rejected_connections:1") {
		t.Fatalf("INFO clients after rejection:\n%s", cli)
	}

	// Closing one connection frees a slot; the decrement runs on serve's
	// exit, so poll until a fresh dial survives.
	c2.c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Write([]byte("PING\r\n")); err == nil {
			n, rerr := c.Read(buf)
			if rerr == nil && string(buf[:n]) == "+PONG\r\n" {
				c.Close()
				return
			}
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing a connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStripedConnUnsafeSnapshots(t *testing.T) {
	dir, err := os.MkdirTemp("", "ct-unsafe-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	// skiplist is not concurrent-safe, and striped-conn has no execution
	// lock to quiesce it with: the server must serve writes but refuse
	// every snapshot path with a clean error.
	srv := NewServerExec(func(c int) index.Index { return skiplist.New(1) }, 64, ExecStripedConn)
	if _, err := srv.EnablePersistence(dir, persist.FsyncNo, 0); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	rc := dialRaw(t, addr)

	if v := rc.do("ZADD", "s", "a", "1"); v != int64(1) {
		t.Fatalf("ZADD = %v", v)
	}
	for _, cmd := range []string{"SAVE", "BGSAVE"} {
		v, ok := rc.do(cmd).(error)
		if !ok || !strings.Contains(v.Error(), "no safe snapshot path") {
			t.Fatalf("%s = %v, want unsafe-snapshot error", cmd, v)
		}
	}
	// Writes keep working after the refusals.
	if v := rc.do("ZADD", "s", "b", "2"); v != int64(1) {
		t.Fatalf("ZADD after refusal = %v", v)
	}
	if !errors.Is(srv.Save(), ErrUnsafeSnapshot) {
		t.Fatalf("Save() = %v, want ErrUnsafeSnapshot", srv.Save())
	}
	if srv.BGSave() {
		t.Fatal("BGSave() started on an unsafe-snapshot server")
	}
	// The replication full-sync hook takes the same gate: a PSYNC would
	// get a clean -ERR instead of a corrupt stream.
	if _, _, err := srv.snapshotForSync(); !errors.Is(err, ErrUnsafeSnapshot) {
		t.Fatalf("snapshotForSync() = %v, want ErrUnsafeSnapshot", err)
	}
}
