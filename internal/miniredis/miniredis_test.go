package miniredis

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	cuckootrie "repro"
	"repro/internal/index"
	"repro/internal/resp"
	"repro/internal/sharded"
	"repro/internal/skiplist"
)

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(func(c int) index.Index { return skiplist.New(1) }, 64, true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close(); srv.Close() })
	return srv, cl
}

func TestPingAndBasicOps(t *testing.T) {
	_, cl := newTestServer(t)
	if r, err := cl.Do([]byte("PING")); err != nil || r != "PONG" {
		t.Fatalf("PING = %v, %v", r, err)
	}
	if r, _ := cl.Do([]byte("ZADD"), []byte("s"), []byte("alice"), []byte("7")); r != int64(1) {
		t.Fatalf("ZADD = %v", r)
	}
	// Redis semantics: updating an existing member's score replies 0.
	if r, _ := cl.Do([]byte("ZADD"), []byte("s"), []byte("alice"), []byte("9")); r != int64(0) {
		t.Fatalf("ZADD update = %v, want 0", r)
	}
	if r, _ := cl.Do([]byte("ZADD"), []byte("s"), []byte("alice"), []byte("7")); r != int64(0) {
		t.Fatalf("ZADD re-update = %v, want 0", r)
	}
	if r, _ := cl.Do([]byte("ZSCORE"), []byte("s"), []byte("alice")); string(r.([]byte)) != "7" {
		t.Fatalf("ZSCORE = %v", r)
	}
	if r, _ := cl.Do([]byte("ZSCORE"), []byte("s"), []byte("bob")); r.([]byte) != nil {
		t.Fatalf("ZSCORE absent = %v", r)
	}
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(1) {
		t.Fatalf("DBSIZE = %v", r)
	}
	if r, _ := cl.Do([]byte("ZREM"), []byte("s"), []byte("alice")); r != int64(1) {
		t.Fatalf("ZREM = %v", r)
	}
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(0) {
		t.Fatalf("DBSIZE after ZREM = %v", r)
	}
}

func TestRangeAndPipeline(t *testing.T) {
	_, cl := newTestServer(t)
	var cmds [][][]byte
	for i := 0; i < 50; i++ {
		cmds = append(cmds, [][]byte{
			[]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%03d", i)), []byte(fmt.Sprint(i)),
		})
	}
	replies, err := cl.Pipeline(cmds)
	if err != nil || len(replies) != 50 {
		t.Fatalf("pipeline: %d replies, err %v", len(replies), err)
	}
	r, err := cl.Do([]byte("ZRANGEBYLEX"), []byte("s"), []byte("m010"), []byte("5"))
	if err != nil {
		t.Fatal(err)
	}
	arr := r.([]interface{})
	if len(arr) != 5 {
		t.Fatalf("range returned %d members", len(arr))
	}
	for i, m := range arr {
		want := fmt.Sprintf("m%03d", 10+i)
		if string(m.([]byte)) != want {
			t.Fatalf("range[%d] = %s, want %s", i, m, want)
		}
	}
}

func TestZMScore(t *testing.T) {
	_, cl := newTestServer(t)
	for i := 0; i < 20; i++ {
		cl.Do([]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%02d", i)), []byte(fmt.Sprint(i)))
	}
	r, err := cl.Do([]byte("ZMSCORE"), []byte("s"),
		[]byte("m03"), []byte("nope"), []byte("m17"), []byte("m03"))
	if err != nil {
		t.Fatal(err)
	}
	arr := r.([]interface{})
	if len(arr) != 4 {
		t.Fatalf("ZMSCORE returned %d elements", len(arr))
	}
	want := []interface{}{"3", nil, "17", "3"}
	for i, w := range want {
		if w == nil {
			if arr[i].([]byte) != nil {
				t.Fatalf("ZMSCORE[%d] = %v, want nil", i, arr[i])
			}
			continue
		}
		if string(arr[i].([]byte)) != w.(string) {
			t.Fatalf("ZMSCORE[%d] = %s, want %s", i, arr[i], w)
		}
	}
	// Arity error.
	if r, _ := cl.Do([]byte("ZMSCORE"), []byte("s")); fmt.Sprint(r) == "" {
		t.Fatal("expected arity error")
	}
}

// TestPipelinedZScoreBatch drives the batched dispatch path: a pipeline of
// ZSCOREs against one set is collapsed into MultiGet calls server-side, and
// the replies must still come back in order with correct values.
func TestPipelinedZScoreBatch(t *testing.T) {
	_, cl := newTestServer(t)
	var load [][][]byte
	for i := 0; i < 300; i++ {
		load = append(load, [][]byte{
			[]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%03d", i)), []byte(fmt.Sprint(i)),
		})
	}
	if _, err := cl.Pipeline(load); err != nil {
		t.Fatal(err)
	}
	// A pure-ZSCORE pipeline longer than the server's batch cap, with hits
	// and misses interleaved.
	var pipe [][][]byte
	for i := 0; i < 200; i++ {
		m := fmt.Sprintf("m%03d", i*2) // misses for i*2 >= 300
		pipe = append(pipe, [][]byte{[]byte("ZSCORE"), []byte("s"), []byte(m)})
	}
	replies, err := cl.Pipeline(pipe)
	if err != nil || len(replies) != 200 {
		t.Fatalf("pipeline: %d replies, err %v", len(replies), err)
	}
	for i, r := range replies {
		if i*2 < 300 {
			if string(r.([]byte)) != fmt.Sprint(i*2) {
				t.Fatalf("reply[%d] = %v, want %d", i, r, i*2)
			}
		} else if r.([]byte) != nil {
			t.Fatalf("reply[%d] = %v, want nil", i, r)
		}
	}
	// A mixed pipeline: ZSCORE runs interrupted by writes and other sets
	// must still answer in order with pre-write values visible in order.
	mixed := [][][]byte{
		{[]byte("ZSCORE"), []byte("s"), []byte("m000")},
		{[]byte("ZSCORE"), []byte("s"), []byte("m001")},
		{[]byte("ZADD"), []byte("s"), []byte("m000"), []byte("999")},
		{[]byte("ZSCORE"), []byte("s"), []byte("m000")},
		{[]byte("ZSCORE"), []byte("other"), []byte("m000")},
		{[]byte("PING")},
	}
	rs, err := cl.Pipeline(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if string(rs[0].([]byte)) != "0" || string(rs[1].([]byte)) != "1" {
		t.Fatalf("pre-write scores = %v %v", rs[0], rs[1])
	}
	if rs[2] != int64(0) {
		t.Fatalf("ZADD update reply = %v, want 0", rs[2])
	}
	if string(rs[3].([]byte)) != "999" {
		t.Fatalf("post-write score = %v, want 999", rs[3])
	}
	if rs[4].([]byte) != nil {
		t.Fatalf("other-set score = %v, want nil", rs[4])
	}
	if rs[5] != "PONG" {
		t.Fatalf("PING = %v", rs[5])
	}
}

// TestPartialPipelineDoesNotStall: a complete command followed by a
// half-received next command must still get its reply immediately — the
// batch drain must not block on the partial command while withholding the
// finished one's reply.
func TestPartialPipelineDoesNotStall(t *testing.T) {
	srv := NewServer(func(c int) index.Index { return skiplist.New(1) }, 64, true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One complete PING plus the first bytes of a second command.
	if _, err := conn.Write([]byte("*1\r\n$4\r\nPING\r\n*1\r\n$4\r\nPI")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no reply for complete command behind a partial one: %v", err)
	}
	if string(buf[:n]) != "+PONG\r\n" {
		t.Fatalf("reply = %q", buf[:n])
	}
	// Completing the second command yields its reply too.
	if _, err := conn.Write([]byte("NG\r\n")); err != nil {
		t.Fatal(err)
	}
	n, err = conn.Read(buf)
	if err != nil || string(buf[:n]) != "+PONG\r\n" {
		t.Fatalf("completed second command reply = %q, %v", buf[:n], err)
	}
}

// TestProtocolErrorReply: malformed RESP from a client must draw an
// "-ERR Protocol error" reply before the server drops the connection —
// the old server closed silently, leaving the client nothing to diagnose
// with. A clean disconnect (EOF between commands) must NOT produce one.
func TestProtocolErrorReply(t *testing.T) {
	srv := NewServer(func(c int) index.Index { return skiplist.New(1) }, 64, true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	read := func(conn net.Conn) string {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var out []byte
		buf := make([]byte, 256)
		for {
			n, err := conn.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil { // server closed after the error reply
				return string(out)
			}
		}
	}

	// Malformed first command: error reply, then close.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("*x\r\n")); err != nil {
		t.Fatal(err)
	}
	if got := read(conn); !strings.HasPrefix(got, "-ERR Protocol error") {
		t.Fatalf("malformed command drew %q, want -ERR Protocol error prefix", got)
	}

	// Malformed command mid-pipeline: the completed command's reply must
	// still arrive, followed by the protocol-error reply, then close.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("*1\r\n$4\r\nPING\r\n*x\r\n")); err != nil {
		t.Fatal(err)
	}
	got := read(conn2)
	if !strings.HasPrefix(got, "+PONG\r\n") {
		t.Fatalf("mid-pipeline: completed command's reply missing: %q", got)
	}
	if !strings.Contains(got, "-ERR Protocol error") {
		t.Fatalf("mid-pipeline protocol error drew %q, want -ERR Protocol error reply", got)
	}

	// Clean EOF: no error reply, just a close.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn3.Write([]byte("*1\r\n$4\r\nPING\r\n")); err != nil {
		t.Fatal(err)
	}
	conn3.(*net.TCPConn).CloseWrite()
	if got := read(conn3); got != "+PONG\r\n" {
		t.Fatalf("clean EOF drew %q, want only +PONG", got)
	}
	conn3.Close()
}

// rawServer speaks raw RESP so tests can script malformed replies: it reads
// commands and answers the i-th command with replies[i] (cycling the last
// entry), closing when told to.
func rawServer(t *testing.T, replies []string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := resp.NewReader(conn)
		for i := 0; ; i++ {
			if _, err := r.ReadCommand(); err != nil {
				return
			}
			rep := replies[len(replies)-1]
			if i < len(replies) {
				rep = replies[i]
			}
			if rep == "" { // scripted mid-pipeline hangup
				return
			}
			if _, err := conn.Write([]byte(rep)); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestPipelineErrorDoesNotDesync is the regression test for the pipeline
// desync bug: when one reply in a pipeline is malformed, the old client
// returned immediately, leaving the rest of the pipeline's replies buffered
// — so the NEXT Do read a stale reply belonging to the failed pipeline.
// The fixed client drains the remaining replies before returning the error.
func TestPipelineErrorDoesNotDesync(t *testing.T) {
	addr := rawServer(t, []string{":0\r\n", ":not-an-int\r\n", ":2\r\n", ":3\r\n"})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ping := [][]byte{[]byte("PING")}
	if _, err := cl.Pipeline([][][]byte{ping, ping, ping}); err == nil {
		t.Fatal("pipeline with a malformed reply reported no error")
	}
	// The connection must be re-synchronized: the follow-up command gets ITS
	// OWN reply (:3), not the failed pipeline's leftover (:2).
	r, err := cl.Do([]byte("PING"))
	if err != nil {
		t.Fatalf("Do after drained pipeline error: %v", err)
	}
	if r != int64(3) {
		t.Fatalf("Do read %v — a stale reply from the failed pipeline, want 3", r)
	}
}

// TestPipelineDrainSurvivesAggregateParseError: a malformed value INSIDE an
// array reply must not desynchronize the drain — the reader consumes the
// whole aggregate frame before surfacing the error, so the remaining
// top-level replies are drained correctly and the next Do still gets its
// own reply (not a leftover array element).
func TestPipelineDrainSurvivesAggregateParseError(t *testing.T) {
	addr := rawServer(t, []string{":1\r\n", "*3\r\n:1\r\n:bad\r\n:2\r\n", ":3\r\n", ":4\r\n"})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ping := [][]byte{[]byte("PING")}
	if _, err := cl.Pipeline([][][]byte{ping, ping, ping}); err == nil {
		t.Fatal("pipeline with a malformed array element reported no error")
	}
	r, err := cl.Do([]byte("PING"))
	if err != nil {
		t.Fatalf("Do after aggregate parse error: %v", err)
	}
	if r != int64(4) {
		t.Fatalf("Do read %v — a stale reply from inside the failed pipeline, want 4", r)
	}
}

// TestPipelinePoisonOnFramingError: when a reply's framing (not just its
// value) is malformed, the stream position is unknown — the client must
// poison immediately instead of draining replies it would misread.
func TestPipelinePoisonOnFramingError(t *testing.T) {
	addr := rawServer(t, []string{":1\r\n", "?junk\r\n", ":2\r\n"})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ping := [][]byte{[]byte("PING")}
	if _, err := cl.Pipeline([][][]byte{ping, ping, ping}); err == nil {
		t.Fatal("pipeline with a framing error reported no error")
	}
	if _, err := cl.Do([]byte("PING")); err == nil {
		t.Fatal("Do on a framing-poisoned client reported no error")
	}
}

// TestPipelinePoisonOnTransportFailure: when the server hangs up
// mid-pipeline, draining is impossible; the client must fail fast on every
// subsequent call instead of blocking or reading garbage.
func TestPipelinePoisonOnTransportFailure(t *testing.T) {
	addr := rawServer(t, []string{":0\r\n", ""})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ping := [][]byte{[]byte("PING")}
	if _, err := cl.Pipeline([][][]byte{ping, ping, ping}); err == nil {
		t.Fatal("pipeline against a hung-up server reported no error")
	}
	if _, err := cl.Do([]byte("PING")); err == nil {
		t.Fatal("Do on a poisoned client reported no error")
	}
}

// TestShardedFactory runs the server over a sharded engine: batched
// pipeline dispatch lands on the scatter-gather MultiGet path, and ordered
// ZRANGEBYLEX crosses shard boundaries via the merge cursor.
func TestShardedFactory(t *testing.T) {
	factory := ShardedFactory(func(c int) index.Index { return skiplist.New(1) }, 4)
	srv := NewServer(factory, 64, true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var load [][][]byte
	for i := 0; i < 200; i++ {
		load = append(load, [][]byte{
			[]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%03d", i)), []byte(fmt.Sprint(i)),
		})
	}
	if _, err := cl.Pipeline(load); err != nil {
		t.Fatal(err)
	}
	var pipe [][][]byte
	for i := 0; i < 100; i++ {
		pipe = append(pipe, [][]byte{[]byte("ZSCORE"), []byte("s"), []byte(fmt.Sprintf("m%03d", i*2))})
	}
	replies, err := cl.Pipeline(pipe)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range replies {
		if string(r.([]byte)) != fmt.Sprint(i*2) {
			t.Fatalf("sharded ZSCORE[%d] = %v, want %d", i, r, i*2)
		}
	}
	// Ordered scan across shard boundaries.
	r, err := cl.Do([]byte("ZRANGEBYLEX"), []byte("s"), []byte("m050"), []byte("10"))
	if err != nil {
		t.Fatal(err)
	}
	arr := r.([]interface{})
	if len(arr) != 10 {
		t.Fatalf("sharded range returned %d members", len(arr))
	}
	for i, m := range arr {
		want := fmt.Sprintf("m%03d", 50+i)
		if string(m.([]byte)) != want {
			t.Fatalf("sharded range[%d] = %s, want %s", i, m, want)
		}
	}
}

// TestConcurrentSetCreationSameName: many goroutines race to create the
// SAME set — the striped keyspace's double-checked creation must hand
// every caller the one winning index (run under -race in CI). If two
// indexes were ever created for one name, some writers' members would land
// in an orphaned index and the final count would come up short.
func TestConcurrentSetCreationSameName(t *testing.T) {
	srv := NewServer(func(c int) index.Index {
		return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
	}, 64, false)
	const writers = 16
	var wg sync.WaitGroup
	first := make([]index.Index, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ix := srv.set("shared")
			first[g] = ix
			if _, err := ix.Set([]byte(fmt.Sprintf("member-%02d", g)), uint64(g)); err != nil {
				t.Errorf("writer %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < writers; g++ {
		if first[g] != first[0] {
			t.Fatalf("writer %d got a different index instance than writer 0", g)
		}
	}
	ix := srv.set("shared")
	if ix.Len() != writers {
		t.Fatalf("shared set has %d members, want %d — a creation race dropped an index",
			ix.Len(), writers)
	}
	if srv.ks.totalLen() != writers {
		t.Fatalf("keyspace total %d, want %d", srv.ks.totalLen(), writers)
	}
}

// TestConcurrentSetCreationAcrossStripes: goroutines creating DISTINCT
// sets concurrently — lookups land on different stripes and must not lose
// map entries or serialize incorrectly; every set ends up with exactly its
// own member, and DBSIZE sums across all stripes.
func TestConcurrentSetCreationAcrossStripes(t *testing.T) {
	srv, cl := newTestServer(t)
	if srv.Stripes() < 8 {
		t.Fatalf("keyspace has %d stripes, want >= 8", srv.Stripes())
	}
	const sets = 64
	var wg sync.WaitGroup
	for g := 0; g < sets; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("set-%03d", g)
			ix := srv.set(name)
			if _, err := ix.Set([]byte("m"), uint64(g)); err != nil {
				t.Errorf("set %s: %v", name, err)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < sets; g++ {
		ix := srv.set(fmt.Sprintf("set-%03d", g))
		if v, ok := ix.Get([]byte("m")); !ok || v != uint64(g) {
			t.Fatalf("set-%03d member = %d,%v want %d", g, v, ok, g)
		}
		if ix.Len() != 1 {
			t.Fatalf("set-%03d has %d members, want 1", g, ix.Len())
		}
	}
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(sets) {
		t.Fatalf("DBSIZE = %v, want %d", r, sets)
	}
	// FLUSHALL clears every stripe.
	if r, _ := cl.Do([]byte("FLUSHALL")); r != "OK" {
		t.Fatalf("FLUSHALL = %v", r)
	}
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(0) {
		t.Fatalf("DBSIZE after FLUSHALL = %v", r)
	}
}

// TestRangeRoutedFactory serves range-partitioned sorted sets: ZRANGEBYLEX
// runs ride the chain cursor (single-shard fast path when the range allows
// it) and must still return globally ordered members.
func TestRangeRoutedFactory(t *testing.T) {
	factory := ShardedFactoryWithRouter(
		func(c int) index.Index { return skiplist.New(1) }, 4, sharded.NewPrefixRouter)
	srv := NewServer(factory, 64, true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// First bytes spanning all four prefix shards.
	var load [][][]byte
	for i := 0; i < 256; i += 2 {
		load = append(load, [][]byte{
			[]byte("ZADD"), []byte("s"), {byte(i), 'x'}, []byte(fmt.Sprint(i)),
		})
	}
	if _, err := cl.Pipeline(load); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Do([]byte("ZRANGEBYLEX"), []byte("s"), []byte{0x41}, []byte("8"))
	if err != nil {
		t.Fatal(err)
	}
	arr := r.([]interface{})
	if len(arr) != 8 {
		t.Fatalf("range returned %d members", len(arr))
	}
	for i, m := range arr {
		want := []byte{byte(0x42 + 2*i), 'x'}
		if string(m.([]byte)) != string(want) {
			t.Fatalf("range[%d] = %x, want %x", i, m, want)
		}
	}
	// A range crossing the 0x80 shard boundary stays ordered.
	r, err = cl.Do([]byte("ZRANGEBYLEX"), []byte("s"), []byte{0x7b}, []byte("6"))
	if err != nil {
		t.Fatal(err)
	}
	arr = r.([]interface{})
	prev := []byte{}
	for i, m := range arr {
		b := m.([]byte)
		if string(b) <= string(prev) {
			t.Fatalf("cross-boundary range disorder at %d: %x after %x", i, b, prev)
		}
		prev = b
	}
}

// TestSampledRoutedPreload serves sampled-routed sorted sets: Preload's
// bulk load trains the router's boundaries from the preloaded key stream,
// after which the keys must be spread across shards (not piled on shard 0
// as an untrained router would), reads must come back over the wire, and
// ZRANGEBYLEX must stay globally ordered across the sampled boundaries.
func TestSampledRoutedPreload(t *testing.T) {
	factory := ShardedFactoryWithRouter(
		func(c int) index.Index { return skiplist.New(1) }, 4, sharded.NewSampledRouter)
	srv := NewServer(factory, 1024, true)
	// Skewed keys: a shared prefix defeats first-byte (prefix) routing, but
	// sampled boundaries must still spread them.
	keys := make([][]byte, 400)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user:%05d", i*7))
		vals[i] = uint64(i)
	}
	added, err := srv.Preload("warm", keys, vals)
	if err != nil || added != len(keys) {
		t.Fatalf("Preload = %d, %v", added, err)
	}
	sx, ok := srv.set("warm").(*sharded.Index)
	if !ok {
		t.Fatal("sampled factory did not build a sharded index")
	}
	lens := sx.ShardLens()
	for s, l := range lens {
		if l == 0 {
			t.Fatalf("shard %d empty after sampled preload: %v", s, lens)
		}
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if r, _ := cl.Do([]byte("ZSCORE"), []byte("warm"), []byte("user:00707")); string(r.([]byte)) != "101" {
		t.Fatalf("ZSCORE preloaded key = %v", r)
	}
	r, err := cl.Do([]byte("ZRANGEBYLEX"), []byte("warm"), []byte("user:0070"), []byte("20"))
	if err != nil {
		t.Fatal(err)
	}
	arr := r.([]interface{})
	if len(arr) != 20 {
		t.Fatalf("sampled range returned %d members", len(arr))
	}
	prev := ""
	for i, m := range arr {
		b := string(m.([]byte))
		if b <= prev {
			t.Fatalf("sampled range disorder at %d: %q after %q", i, b, prev)
		}
		prev = b
	}
}

// TestPreload bulk-loads a set off the RESP path and reads it back over
// the wire.
func TestPreload(t *testing.T) {
	factory := ShardedFactory(func(c int) index.Index { return skiplist.New(1) }, 4)
	srv := NewServer(factory, 1024, true)
	keys := make([][]byte, 500)
	vals := make([]uint64, len(keys))
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%04d", i))
		vals[i] = uint64(i)
	}
	added, err := srv.Preload("warm", keys, vals)
	if err != nil || added != len(keys) {
		t.Fatalf("Preload = %d, %v", added, err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if r, _ := cl.Do([]byte("ZSCORE"), []byte("warm"), []byte("k0123")); string(r.([]byte)) != "123" {
		t.Fatalf("ZSCORE preloaded key = %v", r)
	}
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(len(keys)) {
		t.Fatalf("DBSIZE = %v, want %d", r, len(keys))
	}
}

func TestErrors(t *testing.T) {
	_, cl := newTestServer(t)
	if r, _ := cl.Do([]byte("NOPE")); fmt.Sprint(r) == "" {
		t.Fatal("expected error reply")
	}
	if r, _ := cl.Do([]byte("ZADD"), []byte("s")); fmt.Sprint(r) == "" {
		t.Fatal("expected arity error")
	}
	if r, _ := cl.Do([]byte("ZADD"), []byte("s"), []byte("m"), []byte("notanint")); fmt.Sprint(r) == "" {
		t.Fatal("expected parse error")
	}
	// Connection still usable after errors.
	if r, err := cl.Do([]byte("PING")); err != nil || r != "PONG" {
		t.Fatalf("PING after errors = %v, %v", r, err)
	}
}

func TestFlushAll(t *testing.T) {
	_, cl := newTestServer(t)
	cl.Do([]byte("ZADD"), []byte("s"), []byte("x"), []byte("1"))
	cl.Do([]byte("FLUSHALL"))
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(0) {
		t.Fatalf("DBSIZE after FLUSHALL = %v", r)
	}
}
