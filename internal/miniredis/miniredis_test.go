package miniredis

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/skiplist"
)

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(func(c int) index.Index { return skiplist.New(1) }, 64, true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close(); srv.Close() })
	return srv, cl
}

func TestPingAndBasicOps(t *testing.T) {
	_, cl := newTestServer(t)
	if r, err := cl.Do([]byte("PING")); err != nil || r != "PONG" {
		t.Fatalf("PING = %v, %v", r, err)
	}
	if r, _ := cl.Do([]byte("ZADD"), []byte("s"), []byte("alice"), []byte("7")); r != int64(1) {
		t.Fatalf("ZADD = %v", r)
	}
	if r, _ := cl.Do([]byte("ZSCORE"), []byte("s"), []byte("alice")); string(r.([]byte)) != "7" {
		t.Fatalf("ZSCORE = %v", r)
	}
	if r, _ := cl.Do([]byte("ZSCORE"), []byte("s"), []byte("bob")); r.([]byte) != nil {
		t.Fatalf("ZSCORE absent = %v", r)
	}
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(1) {
		t.Fatalf("DBSIZE = %v", r)
	}
	if r, _ := cl.Do([]byte("ZREM"), []byte("s"), []byte("alice")); r != int64(1) {
		t.Fatalf("ZREM = %v", r)
	}
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(0) {
		t.Fatalf("DBSIZE after ZREM = %v", r)
	}
}

func TestRangeAndPipeline(t *testing.T) {
	_, cl := newTestServer(t)
	var cmds [][][]byte
	for i := 0; i < 50; i++ {
		cmds = append(cmds, [][]byte{
			[]byte("ZADD"), []byte("s"), []byte(fmt.Sprintf("m%03d", i)), []byte(fmt.Sprint(i)),
		})
	}
	replies, err := cl.Pipeline(cmds)
	if err != nil || len(replies) != 50 {
		t.Fatalf("pipeline: %d replies, err %v", len(replies), err)
	}
	r, err := cl.Do([]byte("ZRANGEBYLEX"), []byte("s"), []byte("m010"), []byte("5"))
	if err != nil {
		t.Fatal(err)
	}
	arr := r.([]interface{})
	if len(arr) != 5 {
		t.Fatalf("range returned %d members", len(arr))
	}
	for i, m := range arr {
		want := fmt.Sprintf("m%03d", 10+i)
		if string(m.([]byte)) != want {
			t.Fatalf("range[%d] = %s, want %s", i, m, want)
		}
	}
}

func TestErrors(t *testing.T) {
	_, cl := newTestServer(t)
	if r, _ := cl.Do([]byte("NOPE")); fmt.Sprint(r) == "" {
		t.Fatal("expected error reply")
	}
	if r, _ := cl.Do([]byte("ZADD"), []byte("s")); fmt.Sprint(r) == "" {
		t.Fatal("expected arity error")
	}
	if r, _ := cl.Do([]byte("ZADD"), []byte("s"), []byte("m"), []byte("notanint")); fmt.Sprint(r) == "" {
		t.Fatal("expected parse error")
	}
	// Connection still usable after errors.
	if r, err := cl.Do([]byte("PING")); err != nil || r != "PONG" {
		t.Fatalf("PING after errors = %v, %v", r, err)
	}
}

func TestFlushAll(t *testing.T) {
	_, cl := newTestServer(t)
	cl.Do([]byte("ZADD"), []byte("s"), []byte("x"), []byte("1"))
	cl.Do([]byte("FLUSHALL"))
	if r, _ := cl.Do([]byte("DBSIZE")); r != int64(0) {
		t.Fatalf("DBSIZE after FLUSHALL = %v", r)
	}
}
