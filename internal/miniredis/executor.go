package miniredis

// The execute stage of the command path (see dispatch.go for the parse →
// route stages): an executor turns one WAIT-free, PSYNC-free pipeline
// segment into engine calls and writes every reply, in submission order,
// to the connection writer. Three strategies exist:
//
//   - serialExecutor: Redis's model — every segment from every connection
//     runs under one cmdMu.
//   - connExecutor: each connection executes its own pipeline sequentially
//     with no execution lock at all; concurrency comes from connections.
//     Safe only over concurrent-safe engines.
//   - stripedExecutor: a segment is partitioned into per-stripe lanes (set
//     name → keyspace stripe, the same maphash route the keyspace uses)
//     that run concurrently, each under its stripe's execMu; buffered
//     replies are reassembled in submission order. Per-SET order is exactly
//     serial mode's — two commands on one set share a lane, and two
//     connections writing one set serialize on its stripe's execMu — while
//     disjoint-set pipelines never contend. Cross-stripe commands (DBSIZE,
//     FLUSHALL, SAVE/BGSAVE, REPLICAOF) take the ordered all-stripe
//     barrier.
//
// Lock order: the execMus array ranks between cmdMu and bulkMu (rank 15 in
// internal/analyzers/lockorder), ascending index within the array, so a
// barrier handler that goes on to take bulkMu/saveMu/replMu/writeMus/
// stripes keeps the global order. A lane holds exactly one execMu, so lanes
// cannot deadlock each other; the barrier takes all of them ascending, so
// it cannot deadlock against another barrier. No executor path ever parks
// on WAL.Commit — the group-commit ack barrier stays in serve, after the
// executor returned and every execMu is released (the PR 8 invariant).

import (
	"bytes"
	"fmt"
	"strings"
	"sync"

	"repro/internal/resp"
)

// ExecMode selects how a connection's drained pipeline executes; see the
// package comment above and the README's "Execution modes" section.
type ExecMode string

const (
	// ExecSerial mimics Redis's single-threaded command loop: one cmdMu
	// serializes every segment from every connection. Safe for any engine.
	ExecSerial ExecMode = "serial"
	// ExecStripedConn executes each connection's pipeline on its own
	// goroutine with no execution lock (the pre-executor serial=false
	// behavior). Safe only for concurrent-safe engines.
	ExecStripedConn ExecMode = "striped-conn"
	// ExecStripedExec partitions each pipeline segment into per-stripe
	// lanes that execute concurrently under per-stripe executor locks,
	// with replies reassembled in submission order. Per-set semantics are
	// serial mode's; safe for any engine.
	ExecStripedExec ExecMode = "striped-exec"
)

// ParseExecMode parses a -exec flag value.
func ParseExecMode(s string) (ExecMode, error) {
	switch m := ExecMode(s); m {
	case ExecSerial, ExecStripedConn, ExecStripedExec:
		return m, nil
	}
	return "", fmt.Errorf("miniredis: unknown exec mode %q (want serial, striped-conn or striped-exec)", s)
}

// executor runs one WAIT-free, PSYNC-free pipeline segment (dispatch
// splits those out before any executor sees the batch) and writes every
// reply, in submission order, to w.
type executor interface {
	run(w *resp.Writer, seg [][][]byte, cs *connState)
}

type serialExecutor struct{ s *Server }

func (e serialExecutor) run(w *resp.Writer, seg [][][]byte, cs *connState) {
	e.s.cmdMu.Lock()
	defer e.s.cmdMu.Unlock()
	e.s.execSeq(w, seg, cs, true)
}

type connExecutor struct{ s *Server }

func (e connExecutor) run(w *resp.Writer, seg [][][]byte, cs *connState) {
	e.s.execSeq(w, seg, cs, false)
}

// execSeq executes a segment strictly in order on the calling goroutine.
// Consecutive same-set ZSCOREs collapse into one MultiGet. quiesced says
// the caller holds this server's quiesce lock (serial mode's cmdMu), so
// SAVE must not retake it.
func (s *Server) execSeq(w *resp.Writer, seg [][][]byte, cs *connState, quiesced bool) {
	for i := 0; i < len(seg); {
		j := i
		for j < len(seg) && isZScore(seg[j]) &&
			(j == i || string(seg[j][1]) == string(seg[i][1])) {
			j++
		}
		if j-i >= 2 {
			s.zscoreBatch(w, seg[i:j])
			i = j
			continue
		}
		s.dispatchOne(w, seg[i], cs, quiesced)
		i++
	}
}

type stripedExecutor struct{ s *Server }

// run splits the segment at cross-stripe barrier commands, fanning each
// barrier-free span out across per-stripe lanes and executing each barrier
// command under the all-stripe barrier. Replies land on w in submission
// order either way: spans reassemble, barriers execute in place.
func (e stripedExecutor) run(w *resp.Writer, seg [][][]byte, cs *connState) {
	s := e.s
	for i := 0; i < len(seg); {
		j := i
		for j < len(seg) && !isBarrierCmd(seg[j]) {
			j++
		}
		if j > i {
			s.execStriped(w, seg[i:j], cs)
		}
		if j < len(seg) {
			s.runBarrier(w, seg[j], cs)
			j++
		}
		i = j
	}
}

// isBarrierCmd reports whether cmd needs the ordered all-stripe barrier
// under striped-exec: it reads or mutates the whole keyspace (DBSIZE,
// FLUSHALL, SAVE/BGSAVE) or rewires replication (REPLICAOF/SLAVEOF), so no
// per-stripe lane may run concurrently with it. WAIT never reaches an
// executor (dispatch splits it out in every mode) and PSYNC never leaves
// serve.
func isBarrierCmd(cmd [][]byte) bool {
	if len(cmd) == 0 {
		return false
	}
	switch strings.ToUpper(string(cmd[0])) {
	case "DBSIZE", "FLUSHALL", "SAVE", "BGSAVE", "REPLICAOF", "SLAVEOF":
		return true
	}
	return false
}

// runBarrier executes one cross-stripe command with every execMu held, in
// ascending index order (the same discipline as keyspace.lockAll): no lane
// from any connection runs concurrently, which is exactly the quiesce a
// SAVE over a non-concurrent engine or a keyspace-wide FLUSHALL needs. The
// acquisitions are direct loops, not a helper, so ctvet's lockorder pass
// sees the protocol and checks dispatchOne's summary against it.
func (s *Server) runBarrier(w *resp.Writer, cmd [][]byte, cs *connState) {
	for i := range s.execMus {
		s.execMus[i].Lock()
	}
	s.dispatchOne(w, cmd, cs, true)
	for i := range s.execMus {
		s.execMus[i].Unlock()
	}
}

// quiesce blocks every executor until the returned release is called — the
// window in which a snapshot of a non-concurrent engine may iterate, or
// the replication applier may mutate, without racing dispatch. Serial
// mode's quiesce lock IS cmdMu; striped-exec quiesces via the all-stripe
// barrier; striped-conn has no execution lock to take (its callers gate on
// quiesceSaves / engine concurrency instead).
func (s *Server) quiesce() func() {
	switch s.mode {
	case ExecSerial:
		s.cmdMu.Lock()
		return s.cmdMu.Unlock
	case ExecStripedExec:
		for i := range s.execMus {
			s.execMus[i].Lock()
		}
		return s.releaseExecMus
	}
	return func() {}
}

func (s *Server) releaseExecMus() {
	for i := range s.execMus {
		s.execMus[i].Unlock()
	}
}

// laneRun is one lane of a barrier-free span: the submission-order indexes
// of the span's commands that route to one keyspace stripe. lane -1
// collects stripe-less commands (PING, INFO, REPLCONF, malformed input)
// that touch no set and need no lock. cs is the lane's private connection
// state — lanes run concurrently, so they must not write the shared one —
// merged back after the join.
type laneRun struct {
	lane int
	idxs []int
	sink *replySink
	cs   connState
}

// laneOf routes one command to its keyspace stripe, -1 for commands that
// touch no set. Barrier commands never reach here (run splits them out).
func (s *Server) laneOf(cmd [][]byte) int {
	if len(cmd) >= 2 {
		switch strings.ToUpper(string(cmd[0])) {
		case "ZADD", "ZSCORE", "ZMSCORE", "ZREM", "ZRANGEBYLEX":
			return s.ks.stripeIdx(string(cmd[1]))
		}
	}
	return -1
}

// execStriped executes one barrier-free span: partition into lanes, run
// the lanes concurrently (the connection goroutine doubles as the first
// lane's worker), then stitch the buffered replies back into w in
// submission order. A single-lane span — the common case for a pipeline
// hammering one set — skips the buffering entirely and runs straight into
// the connection writer.
func (s *Server) execStriped(w *resp.Writer, span [][][]byte, cs *connState) {
	var lanes []*laneRun
	byLane := map[int]*laneRun{} // spans hold ≤ maxPipelineBatch commands
	for i, cmd := range span {
		l := s.laneOf(cmd)
		r := byLane[l]
		if r == nil {
			r = &laneRun{lane: l}
			byLane[l] = r
			lanes = append(lanes, r)
		}
		r.idxs = append(r.idxs, i)
	}
	if len(lanes) == 1 {
		s.runLane(w, lanes[0], span, cs)
		return
	}
	var wg sync.WaitGroup
	for _, r := range lanes[1:] {
		r.sink = getSink()
		r.cs = *cs
		wg.Add(1)
		go func(r *laneRun) {
			defer wg.Done()
			s.runLane(r.sink.w, r, span, &r.cs)
		}(r)
	}
	first := lanes[0]
	first.sink = getSink()
	first.cs = *cs
	s.runLane(first.sink.w, first, span, &first.cs)
	wg.Wait()
	// Reassembly: owner[i] is the lane holding span[i]'s reply, ordinal[i]
	// its position within that lane's sink.
	owner := make([]*laneRun, len(span))
	ordinal := make([]int, len(span))
	for _, r := range lanes {
		for k, i := range r.idxs {
			owner[i], ordinal[i] = r, k
		}
	}
	for i := range span {
		w.WriteRaw(owner[i].sink.reply(ordinal[i])) //ctvet:ignore sticky bufio error; surfaced by serve's checked Flush
	}
	for _, r := range lanes {
		mergeLane(cs, r)
		putSink(r.sink)
	}
}

// mergeLane folds a lane's private connection state back into the real one
// after the join. WAIT targets the connection's last write anywhere in the
// pipeline, so the merged lastWrite is the max across lanes; only the
// stripe-less lane can set listenPort (REPLCONF), so the copy is race-free.
func mergeLane(cs *connState, r *laneRun) {
	if r.cs.lastWrite > cs.lastWrite {
		cs.lastWrite = r.cs.lastWrite
	}
	if r.cs.listenPort != "" {
		cs.listenPort = r.cs.listenPort
	}
}

// runLane executes one lane's commands, in lane order, into w. A stripe
// lane holds its stripe's execMu for the duration — per-set order across
// connections, and exclusive engine access for non-concurrent engines; the
// stripe-less lane takes nothing. Adjacent same-set ZSCOREs within the
// lane collapse into one MultiGet: any command between them in the span is
// on another lane by construction (same set ⇒ same lane), so no same-set
// write can sit inside a collapsed run.
func (s *Server) runLane(w *resp.Writer, r *laneRun, span [][][]byte, cs *connState) {
	if r.lane >= 0 {
		mu := &s.execMus[r.lane]
		mu.Lock()
		defer mu.Unlock()
	}
	for k := 0; k < len(r.idxs); {
		j := k
		for j < len(r.idxs) && isZScore(span[r.idxs[j]]) &&
			(j == k || string(span[r.idxs[j]][1]) == string(span[r.idxs[k]][1])) {
			j++
		}
		if j-k >= 2 {
			cmds := make([][][]byte, 0, j-k)
			for _, i := range r.idxs[k:j] {
				cmds = append(cmds, span[i])
			}
			vals, found := s.zscoreMulti(cmds)
			for x := range cmds {
				writeScore(w, vals[x], found[x])
				r.mark()
			}
			k = j
			continue
		}
		s.dispatchOne(w, span[r.idxs[k]], cs, false)
		r.mark()
		k++
	}
}

// mark records a reply boundary in the lane's sink; a no-op for the
// inline single-lane path, which writes straight to the connection.
func (r *laneRun) mark() {
	if r.sink != nil {
		r.sink.mark()
	}
}

// replySink buffers one lane's replies with per-command boundaries, so
// reassembly can copy reply i without re-parsing RESP. Sinks are pooled —
// a busy striped-exec server would otherwise allocate one writer per lane
// per span.
type replySink struct {
	buf  bytes.Buffer
	w    *resp.Writer
	ends []int
}

// sinkBufSize sizes a sink's RESP writer buffer: most lane replies are a
// few bytes (`:1`, a score bulk), so a small buffer avoids paying the
// connection-sized 16 KiB per concurrent lane.
const sinkBufSize = 4 << 10

var sinkPool = sync.Pool{New: func() any {
	sk := &replySink{}
	sk.w = resp.NewWriterSize(&sk.buf, sinkBufSize)
	return sk
}}

func getSink() *replySink {
	sk := sinkPool.Get().(*replySink)
	sk.buf.Reset()
	sk.ends = sk.ends[:0]
	return sk
}

func putSink(sk *replySink) { sinkPool.Put(sk) }

// mark flushes the writer through to the buffer and records the end of
// one command's reply.
func (sk *replySink) mark() {
	sk.w.Flush() //ctvet:ignore writes to a bytes.Buffer cannot fail; this flush only moves bytes so the boundary below is exact
	sk.ends = append(sk.ends, sk.buf.Len())
}

// reply returns the bytes of the i-th command's reply.
func (sk *replySink) reply(i int) []byte {
	start := 0
	if i > 0 {
		start = sk.ends[i-1]
	}
	return sk.buf.Bytes()[start:sk.ends[i]]
}
