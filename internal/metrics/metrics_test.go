package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile applies the same nearest-rank rule the histogram uses to
// the exact sorted samples.
func exactQuantile(sorted []uint64, q float64) uint64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// relErr is |got-want|/want, treating want==0 specially.
func relErr(got, want uint64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return float64(got)
	}
	d := float64(got) - float64(want)
	return math.Abs(d) / float64(want)
}

func distributions(rng *rand.Rand, n int) map[string][]uint64 {
	uniform := make([]uint64, n)
	for i := range uniform {
		uniform[i] = 1_000 + uint64(rng.Int63n(9_000_000)) // 1µs..9ms in ns
	}
	pareto := make([]uint64, n)
	for i := range pareto {
		// Pareto with alpha=1.2, scale 2µs: heavy tail out to seconds.
		u := rng.Float64()
		v := 2_000 * math.Pow(1-u, -1/1.2)
		if v > 10e9 {
			v = 10e9
		}
		pareto[i] = uint64(v)
	}
	bimodal := make([]uint64, n)
	for i := range bimodal {
		if rng.Intn(10) == 0 {
			bimodal[i] = 5_000_000 + uint64(rng.Int63n(1_000_000)) // slow mode ~5ms
		} else {
			bimodal[i] = 800 + uint64(rng.Int63n(400)) // fast mode ~1µs
		}
	}
	return map[string][]uint64{"uniform": uniform, "pareto": pareto, "bimodal": bimodal}
}

func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, samples := range distributions(rng, 50_000) {
		h := New()
		for _, v := range samples {
			h.Record(v)
		}
		sorted := append([]uint64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		sn := h.Snapshot()
		if sn.Count() != uint64(len(samples)) {
			t.Fatalf("%s: count = %d, want %d", name, sn.Count(), len(samples))
		}
		if sn.Max() != sorted[len(sorted)-1] {
			t.Errorf("%s: max = %d, want %d", name, sn.Max(), sorted[len(sorted)-1])
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
			got := sn.Quantile(q)
			want := exactQuantile(sorted, q)
			// Bucket width is 1/16 of the value's octave; the midpoint
			// representative is within half a bucket, but rank ties at
			// bucket edges can land one bucket over — allow 7%.
			if e := relErr(got, want); e > 0.07 {
				t.Errorf("%s: q%.3f = %d, want %d (rel err %.3f)", name, q, got, want, e)
			}
		}
	}
}

func TestQuantileSmallAndEmpty(t *testing.T) {
	h := New()
	sn := h.Snapshot()
	if sn.Quantile(0.99) != 0 || sn.Count() != 0 || sn.Max() != 0 {
		t.Fatalf("empty snapshot should be all-zero, got q99=%d count=%d max=%d",
			sn.Quantile(0.99), sn.Count(), sn.Max())
	}
	lo, hi := sn.QuantileCI(0.99, 100, 1)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty CI = [%d,%d], want [0,0]", lo, hi)
	}
	// Small exact values bucket exactly.
	for _, v := range []uint64{0, 1, 2, 3, 15} {
		h.Record(v)
	}
	sn = h.Snapshot()
	if got := sn.Quantile(0); got != 0 {
		t.Errorf("q0 = %d, want 0", got)
	}
	if got := sn.Quantile(1); got != 15 {
		t.Errorf("q1 = %d, want 15", got)
	}
	if got := sn.Mean(); math.Abs(got-4.2) > 0.001 {
		t.Errorf("mean = %v, want 4.2", got)
	}
}

func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h1, h2, all := New(), New(), New()
	for i := 0; i < 20_000; i++ {
		v := 1_000 + uint64(rng.Int63n(1_000_000))
		all.Record(v)
		if i%2 == 0 {
			h1.Record(v)
		} else {
			h2.Record(v)
		}
	}
	merged := h1.Snapshot()
	merged.Merge(h2.Snapshot())
	whole := all.Snapshot()
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() || merged.Max() != whole.Max() {
		t.Fatalf("merged (count=%d sum=%d max=%d) != whole (count=%d sum=%d max=%d)",
			merged.Count(), merged.Sum(), merged.Max(), whole.Count(), whole.Sum(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%.3f: merged %d != whole %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestQuantileCICoversPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := New()
	for i := 0; i < 30_000; i++ {
		h.Record(1_000 + uint64(rng.Int63n(2_000_000)))
	}
	sn := h.Snapshot()
	for _, q := range []float64{0.5, 0.99, 0.999} {
		lo, hi := sn.QuantileCI(q, 300, 99)
		point := sn.Quantile(q)
		if lo > hi {
			t.Fatalf("q%.3f: lo %d > hi %d", q, lo, hi)
		}
		if point < lo || point > hi {
			t.Errorf("q%.3f: point %d outside CI [%d,%d]", q, point, lo, hi)
		}
		// The interval should be narrow relative to the estimate on a
		// well-populated quantile.
		if q <= 0.99 && float64(hi-lo) > 0.5*float64(point) {
			t.Errorf("q%.3f: CI [%d,%d] implausibly wide vs point %d", q, lo, hi, point)
		}
		// Determinism: same seed, same interval.
		lo2, hi2 := sn.QuantileCI(q, 300, 99)
		if lo2 != lo || hi2 != hi {
			t.Errorf("q%.3f: CI not deterministic for fixed seed", q)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	h := New()
	const goroutines = 8
	const perG = 20_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Record(1_000 + uint64(rng.Int63n(100_000)))
				if i%1024 == 0 {
					_ = h.Snapshot() // reader racing writers
					_ = h.Count()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	h.Reset()
	if got := h.Snapshot().Count(); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{1, 2}); got != -1 {
		t.Errorf("CV of 2 samples = %v, want -1", got)
	}
	if got := CV([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("CV of constant = %v, want 0", got)
	}
	got := CV([]float64{100, 110, 90, 100})
	if got < 0.05 || got > 0.1 {
		t.Errorf("CV = %v, want ~0.07", got)
	}
	if got := CV([]float64{0, 0, 0, 0}); got != -1 {
		t.Errorf("CV of zero mean = %v, want -1", got)
	}
}

func TestBucketsRoundTrip(t *testing.T) {
	h := New()
	vals := []uint64{1, 17, 1_000, 1_000_000, 123_456_789}
	for _, v := range vals {
		h.Record(v)
	}
	sn := h.Snapshot()
	var total uint64
	sn.Buckets(func(upper, count uint64) {
		total += count
		if upper == 0 && count > 0 {
			// bucket 0 has upper bound 0, which is fine for value 0 only
			t.Errorf("non-empty bucket with upper bound 0")
		}
	})
	if total != uint64(len(vals)) {
		t.Fatalf("bucket counts sum to %d, want %d", total, len(vals))
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(1000)
		for pb.Next() {
			h.Record(v)
			v = v*1664525 + 1013904223
		}
	})
}
