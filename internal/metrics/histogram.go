// Package metrics provides the low-overhead latency instrumentation used
// by the bench figures, the index.Tracked wrapper, and the mini-Redis
// INFO commandstats / LATENCY surfaces.
//
// The core type is Histogram: a log-bucketed (HDR-style) histogram with
// fixed memory, lock-free concurrent recording (per-goroutine shards of
// atomic counters, merged atomically at snapshot time), and bounded
// relative error. Values below 16 are bucketed exactly; above that each
// power-of-two octave splits into 16 sub-buckets, so any recorded value
// is off by at most 1/16 ≈ 6.25% (half a bucket ≈ 3.2% for the reported
// representative). The whole uint64 range is covered — for latencies
// that means sub-µs through hours in ~7.7 KiB of counters per shard —
// and snapshots of different histograms merge bucket-wise, which is what
// lets per-op and per-shard views roll up into one distribution.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

const (
	// subBits sub-bucket bits per octave: 16 linear sub-buckets, which
	// bounds relative bucketing error at 1/16.
	subBits = 4
	subPer  = 1 << subBits // 16

	// Values < 2^subBits get exact buckets [0..15]; octaves subBits..63
	// get subPer buckets each.
	numBuckets = subPer + (64-subBits)*subPer // 976

	shardBits = 2
	numShards = 1 << shardBits // 4
)

// shard is one goroutine-affine slab of counters. The pad keeps hot
// shards on separate cache lines.
type shard struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	_      [64]byte
}

// Histogram records uint64 samples (by convention nanoseconds for
// durations, raw counts for sizes). The zero value is not usable; call
// New.
type Histogram struct {
	shards [numShards]*shard
}

// New returns an empty histogram.
func New() *Histogram {
	h := &Histogram{}
	for i := range h.shards {
		h.shards[i] = &shard{}
	}
	return h
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < subPer {
		return int(v)
	}
	e := bits.Len64(v) - 1 // e >= subBits
	sub := int((v >> uint(e-subBits)) & (subPer - 1))
	return (e-subBits+1)*subPer + sub
}

// bucketBounds returns the inclusive lower bound and the width of bucket i.
func bucketBounds(i int) (lo, width uint64) {
	if i < subPer {
		return uint64(i), 1
	}
	oct := i/subPer - 1 + subBits // octave exponent e
	sub := uint64(i % subPer)
	base := uint64(1) << uint(oct)
	width = base / subPer
	return base + sub*width, width
}

// shardHint picks a shard from the current goroutine's stack address.
// Stacks of live goroutines occupy disjoint address ranges, so
// concurrent recorders tend to land on different shards; a goroutine
// whose stack moves simply switches shards, which is harmless. The
// multiplicative hash spreads both the stack base and the call depth.
func shardHint() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return int((uint64(p) * 0x9E3779B97F4A7C15) >> (64 - shardBits))
}

// Record adds one sample. Safe for concurrent use; the fast path is two
// atomic adds and (rarely) a CAS to advance the shard max.
func (h *Histogram) Record(v uint64) {
	s := h.shards[shardHint()]
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(v)
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// RecordDuration records a duration given in nanoseconds (negative
// values clamp to zero).
func (h *Histogram) RecordDuration(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Record(uint64(ns))
}

// Count returns the number of recorded samples. It walks every shard's
// buckets, so it is cheap enough for periodic sampling but not for
// per-op hot paths.
func (h *Histogram) Count() uint64 {
	var n uint64
	for _, s := range h.shards {
		for i := range s.counts {
			n += s.counts[i].Load()
		}
	}
	return n
}

// Reset zeroes all counters. Concurrent Records may survive into the
// next epoch; Reset is for test/administrative use (LATENCY RESET), not
// for synchronizing with recorders.
func (h *Histogram) Reset() {
	for _, s := range h.shards {
		for i := range s.counts {
			s.counts[i].Store(0)
		}
		s.sum.Store(0)
		s.max.Store(0)
	}
}

// Snapshot is a merged, immutable view of one or more histograms.
type Snapshot struct {
	counts [numBuckets]uint64
	total  uint64
	sum    uint64
	max    uint64
}

// Snapshot merges all shards into a point-in-time view. Concurrent
// recording keeps going; the snapshot is internally consistent enough
// for reporting (each counter is read once, atomically).
func (h *Histogram) Snapshot() Snapshot {
	var sn Snapshot
	for _, s := range h.shards {
		for i := range s.counts {
			c := s.counts[i].Load()
			sn.counts[i] += c
			sn.total += c
		}
		sn.sum += s.sum.Load()
		if m := s.max.Load(); m > sn.max {
			sn.max = m
		}
	}
	return sn
}

// Merge folds other into s.
func (s *Snapshot) Merge(other Snapshot) {
	for i := range s.counts {
		s.counts[i] += other.counts[i]
	}
	s.total += other.total
	s.sum += other.sum
	if other.max > s.max {
		s.max = other.max
	}
}

// Count returns the number of samples in the snapshot.
func (s Snapshot) Count() uint64 { return s.total }

// Sum returns the sum of all recorded values (e.g. total nanoseconds).
func (s Snapshot) Sum() uint64 { return s.sum }

// Max returns the exact maximum recorded value.
func (s Snapshot) Max() uint64 { return s.max }

// Mean returns the arithmetic mean of recorded values.
func (s Snapshot) Mean() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.total)
}

// valueAtRank returns the representative value (bucket midpoint) of the
// sample with zero-based rank k in sorted order.
func (s Snapshot) valueAtRank(k uint64) uint64 {
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum > k {
			lo, w := bucketBounds(i)
			v := lo + w/2
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by the nearest-rank rule.
// An empty snapshot returns 0; Quantile(1) returns the exact maximum.
func (s Snapshot) Quantile(q float64) uint64 {
	if s.total == 0 {
		return 0
	}
	if q >= 1 {
		return s.max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(s.total))
	if rank >= s.total {
		rank = s.total - 1
	}
	return s.valueAtRank(rank)
}

// Buckets calls fn for every non-empty bucket with the bucket's upper
// bound (inclusive representative range end) and count, in ascending
// order. Used to serialize compact histogram dumps (LATENCY HISTOGRAM).
func (s Snapshot) Buckets(fn func(upper uint64, count uint64)) {
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		lo, w := bucketBounds(i)
		fn(lo+w-1, c)
	}
}
