package metrics

import (
	"math"
	"math/rand"
	"sort"
)

// QuantileCI returns a bootstrap percentile interval for the q-quantile
// of the snapshot, at ~95% confidence. It uses the binomial-rank trick:
// the q-quantile of a resample of n i.i.d. draws is the order statistic
// at rank k ~ Binomial(n, q), so each bootstrap replicate needs one
// binomial draw and one rank lookup instead of an O(n) resample. The
// seed makes reports reproducible; resamples ≤ 0 defaults to 200.
func (s Snapshot) QuantileCI(q float64, resamples int, seed int64) (lo, hi uint64) {
	n := s.total
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		v := s.valueAtRank(0)
		return v, v
	}
	if resamples <= 0 {
		resamples = 200
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rng := rand.New(rand.NewSource(seed))
	reps := make([]uint64, resamples)
	for i := range reps {
		k := binomial(rng, n, q)
		if k >= n {
			k = n - 1
		}
		reps[i] = s.valueAtRank(k)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	loIdx := int(0.025 * float64(resamples))
	hiIdx := int(0.975 * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return reps[loIdx], reps[hiIdx]
}

// binomial draws k ~ Binomial(n, p). For well-populated tails it uses
// the normal approximation; otherwise an exact Bernoulli loop (only
// reached for small n, so the O(n) cost is bounded).
func binomial(rng *rand.Rand, n uint64, p float64) uint64 {
	nf := float64(n)
	if v := nf * p * (1 - p); v >= 10 || n > 1<<20 {
		k := math.Round(nf*p + rng.NormFloat64()*math.Sqrt(v))
		if k < 0 {
			return 0
		}
		if k > nf {
			return n
		}
		return uint64(k)
	}
	var k uint64
	for i := uint64(0); i < n; i++ {
		if rng.Float64() < p {
			k++
		}
	}
	return k
}

// CV returns the coefficient of variation (population stddev / mean) of
// the samples, or -1 when it cannot be computed (fewer than 4 samples,
// or a non-positive mean). It is the throughput-stability check: slice
// a run into timeslices, count ops per slice, and a high CV means the
// run was noisy and its tails should not be trusted.
func CV(samples []float64) float64 {
	if len(samples) < 4 {
		return -1
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	if mean <= 0 {
		return -1
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(samples))) / mean
}
