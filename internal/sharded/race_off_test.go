//go:build !race

package sharded_test

// raceDetectorEnabled reports whether the race detector is on: sync.Pool
// deliberately drops Puts at random under -race, so pooled-reuse
// assertions only hold without it.
const raceDetectorEnabled = false
