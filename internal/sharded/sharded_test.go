package sharded_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	cuckootrie "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/sharded"
	"repro/internal/skiplist"
	"repro/internal/wormhole"
)

// factories lists every scan-capable engine the registry can shard.
func factories() map[string]func(capacity int) index.Index {
	return map[string]func(capacity int) index.Index{
		"CuckooTrie": func(c int) index.Index {
			return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
		},
		"ARTOLC":   func(c int) index.Index { return art.New() },
		"HOT":      func(c int) index.Index { return hot.New() },
		"Wormhole": func(c int) index.Index { return wormhole.New() },
		"STX":      func(c int) index.Index { return btree.New() },
		"SkipList": func(c int) index.Index { return skiplist.New(3) },
	}
}

// TestConformanceSharded runs the full API v2 conformance suite against a
// 4-shard variant of every engine: point ops, batch scatter-gather, and —
// via the suite's ScanOrder/CursorOrder cases — globally sorted iteration
// across shard boundaries.
func TestConformanceSharded(t *testing.T) {
	for name, mk := range factories() {
		mk := mk
		t.Run(name, func(t *testing.T) {
			indextest.Run(t, func(c int) index.Index {
				return sharded.New(4, c, mk)
			}, indextest.Options{})
		})
	}
}

// TestConformanceShardCounts sweeps shard counts (including the degenerate
// single shard and a non-power-of-two request) on one engine.
func TestConformanceShardCounts(t *testing.T) {
	mk := factories()["CuckooTrie"]
	for _, shards := range []int{1, 2, 3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("x%d", shards), func(t *testing.T) {
			indextest.Run(t, func(c int) index.Index {
				return sharded.New(shards, c, mk)
			}, indextest.Options{})
		})
	}
}

func TestShardCountRounding(t *testing.T) {
	mk := factories()["SkipList"]
	for _, tc := range []struct{ req, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := sharded.New(tc.req, 64, mk).Shards(); got != tc.want {
			t.Fatalf("New(%d).Shards() = %d, want %d", tc.req, got, tc.want)
		}
	}
}

// TestCursorAcrossShards proves globally sorted iteration across shard
// boundaries: with 8 shards each holding a hash slice of the keyspace, a
// full cursor walk must visit every key exactly once in ascending order,
// with key runs genuinely alternating between shards.
func TestCursorAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := sharded.New(8, 1<<12, factories()["SkipList"])
	model := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := make([]byte, 1+rng.Intn(16))
		rng.Read(k)
		model[string(k)] = uint64(i)
		if _, err := ix.Set(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]string, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)

	c := ix.NewCursor()
	defer c.Close()
	i := 0
	var prev []byte
	for ok := c.Seek(nil); ok; ok = c.Next() {
		if i >= len(want) {
			t.Fatalf("cursor visited more than %d keys", len(want))
		}
		if string(c.Key()) != want[i] || c.Value() != model[want[i]] {
			t.Fatalf("cursor[%d] = %x=%d, want %x=%d",
				i, c.Key(), c.Value(), want[i], model[want[i]])
		}
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatalf("cursor disorder at %d: %x after %x", i, c.Key(), prev)
		}
		prev = append(prev[:0], c.Key()...)
		i++
	}
	if i != len(want) {
		t.Fatalf("cursor visited %d keys, want %d", i, len(want))
	}
	// Mid-stream seek lands on the global successor regardless of shard.
	mid := []byte(want[len(want)/2])
	if !c.Seek(mid) || !bytes.Equal(c.Key(), mid) {
		t.Fatalf("Seek(%x) landed on %x", mid, c.Key())
	}
	if !c.Next() || string(c.Key()) != want[len(want)/2+1] {
		t.Fatalf("Next after mid-seek = %x, want %x", c.Key(), want[len(want)/2+1])
	}
}

// TestScatterGatherOrder checks that MultiGet/MultiSet results come back at
// the caller's positions with batches big enough to take the parallel path,
// including duplicate and missing keys.
func TestScatterGatherOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ix := sharded.New(4, 1<<12, factories()["CuckooTrie"])
	n := 4096
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%05d", i))
		vals[i] = uint64(i) * 3
	}
	errs := make([]error, n)
	if added := ix.MultiSet(keys, vals, errs); added != n {
		t.Fatalf("MultiSet added %d, want %d", added, n)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
	// Shuffled batch with duplicates and misses.
	batch := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 4:
			batch = append(batch, []byte(fmt.Sprintf("missing-%d", i)))
		case 3:
			batch = append(batch, batch[rng.Intn(len(batch))])
		default:
			batch = append(batch, keys[rng.Intn(n)])
		}
	}
	got := make([]uint64, len(batch))
	found := make([]bool, len(batch))
	ix.MultiGet(batch, got, found)
	for i, k := range batch {
		if bytes.HasPrefix(k, []byte("missing-")) {
			if found[i] {
				t.Fatalf("found[%d] for missing key %s", i, k)
			}
			continue
		}
		var want uint64
		fmt.Sscanf(string(k), "key-%d", &want)
		if !found[i] || got[i] != want*3 {
			t.Fatalf("MultiGet[%d] (%s) = %d,%v want %d", i, k, got[i], found[i], want*3)
		}
	}
}

// TestConcurrentBatches hammers one sharded index from many goroutines —
// the pooled scratch and worker write-back must be race-free (run under
// -race in CI).
func TestConcurrentBatches(t *testing.T) {
	ix := sharded.New(4, 1<<14, factories()["CuckooTrie"])
	if !ix.ConcurrentSafe() {
		t.Fatal("sharded CuckooTrie should be concurrent-safe")
	}
	n := 8192
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("ck-%06d", i))
		vals[i] = uint64(i)
	}
	ix.MultiSet(keys, vals, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			batch := make([][]byte, 256)
			got := make([]uint64, len(batch))
			found := make([]bool, len(batch))
			for it := 0; it < 30; it++ {
				for j := range batch {
					batch[j] = keys[rng.Intn(n)]
				}
				if g%2 == 0 {
					ix.MultiGet(batch, got, found)
					for j := range batch {
						if !found[j] {
							t.Errorf("goroutine %d: missed loaded key %s", g, batch[j])
							return
						}
					}
				} else {
					ix.MultiSet(batch, got, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := ix.Len(); got != n {
		t.Fatalf("Len = %d after concurrent churn, want %d", got, n)
	}
}

// TestNonConcurrentInnerNotMarked: sharding does not make a single-threaded
// engine safe for concurrent callers (two callers can hit one shard).
func TestNonConcurrentInnerNotMarked(t *testing.T) {
	ix := sharded.New(4, 64, factories()["STX"])
	if index.IsConcurrent(ix) {
		t.Fatal("sharded STX must not report concurrent-safe")
	}
}
