package sharded_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	cuckootrie "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/sharded"
	"repro/internal/skiplist"
	"repro/internal/wormhole"
)

// factories lists every scan-capable engine the registry can shard.
func factories() map[string]func(capacity int) index.Index {
	return map[string]func(capacity int) index.Index{
		"CuckooTrie": func(c int) index.Index {
			return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
		},
		"ARTOLC":   func(c int) index.Index { return art.New() },
		"HOT":      func(c int) index.Index { return hot.New() },
		"Wormhole": func(c int) index.Index { return wormhole.New() },
		"STX":      func(c int) index.Index { return btree.New() },
		"SkipList": func(c int) index.Index { return skiplist.New(3) },
	}
}

// TestConformanceSharded runs the full API v2 conformance suite against a
// 4-shard variant of every engine: point ops, batch scatter-gather, and —
// via the suite's ScanOrder/CursorOrder cases — globally sorted iteration
// across shard boundaries.
func TestConformanceSharded(t *testing.T) {
	for name, mk := range factories() {
		mk := mk
		t.Run(name, func(t *testing.T) {
			indextest.Run(t, func(c int) index.Index {
				return sharded.New(4, c, mk)
			}, indextest.Options{})
		})
	}
}

// TestConformanceShardedRange runs the same suite with the range (prefix)
// router: ordered iteration comes from the chain cursor instead of the
// k-way merge, and the partition is skewed for any non-uniform key
// distribution — correctness must not depend on balance.
func TestConformanceShardedRange(t *testing.T) {
	for name, mk := range factories() {
		mk := mk
		t.Run(name, func(t *testing.T) {
			indextest.Run(t, func(c int) index.Index {
				return sharded.NewWithRouter(4, c, mk, sharded.NewPrefixRouter)
			}, indextest.Options{})
		})
	}
}

// sampledTestRouter returns a RouterMaker pre-trained on indextest's key
// distribution (random 1–20-byte keys), so the conformance suite genuinely
// spreads keys across sampled shards instead of degenerating to shard 0.
func sampledTestRouter() sharded.RouterMaker {
	rng := rand.New(rand.NewSource(99))
	sample := make([][]byte, 1024)
	for i := range sample {
		k := make([]byte, 1+rng.Intn(20))
		rng.Read(k)
		sample[i] = k
	}
	return sharded.NewSampledRouterFromSample(sample)
}

// TestConformanceShardedSampled runs the full suite with the sampled
// router: ordered iteration rides the chain cursor over sample-derived
// boundaries. Every engine runs with a pre-trained router; CuckooTrie also
// runs with an UNTRAINED router (the RouterByName "sampled" mode), where
// incremental construction degenerates to shard 0 and the suite's
// BulkLoad case covers train-on-first-load equivalence.
func TestConformanceShardedSampled(t *testing.T) {
	for name, mk := range factories() {
		mk := mk
		t.Run(name, func(t *testing.T) {
			indextest.Run(t, func(c int) index.Index {
				return sharded.NewWithRouter(4, c, mk, sampledTestRouter())
			}, indextest.Options{})
		})
	}
	t.Run("CuckooTrie-untrained", func(t *testing.T) {
		indextest.Run(t, func(c int) index.Index {
			return sharded.NewWithRouter(4, c, factories()["CuckooTrie"], sharded.NewSampledRouter)
		}, indextest.Options{})
	})
}

// TestRouterByName: every registered routing mode resolves, reports its
// own name, and unknown modes fail.
func TestRouterByName(t *testing.T) {
	for _, name := range []string{"hash", "range", "sampled"} {
		mk, ok := sharded.RouterByName(name)
		if !ok {
			t.Fatalf("RouterByName(%q) not resolved", name)
		}
		if got := mk(4).Name(); got != name {
			t.Fatalf("RouterByName(%q).Name() = %q", name, got)
		}
	}
	if _, ok := sharded.RouterByName("nope"); ok {
		t.Fatal("RouterByName resolved an unknown mode")
	}
}

// TestConformanceShardCounts sweeps shard counts (including the degenerate
// single shard and a non-power-of-two request) on one engine.
func TestConformanceShardCounts(t *testing.T) {
	mk := factories()["CuckooTrie"]
	for _, shards := range []int{1, 2, 3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("x%d", shards), func(t *testing.T) {
			indextest.Run(t, func(c int) index.Index {
				return sharded.New(shards, c, mk)
			}, indextest.Options{})
		})
	}
}

func TestShardCountRounding(t *testing.T) {
	mk := factories()["SkipList"]
	for _, tc := range []struct{ req, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := sharded.New(tc.req, 64, mk).Shards(); got != tc.want {
			t.Fatalf("New(%d).Shards() = %d, want %d", tc.req, got, tc.want)
		}
	}
}

// TestCursorAcrossShards proves globally sorted iteration across shard
// boundaries: with 8 shards each holding a hash slice of the keyspace, a
// full cursor walk must visit every key exactly once in ascending order,
// with key runs genuinely alternating between shards.
func TestCursorAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := sharded.New(8, 1<<12, factories()["SkipList"])
	model := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := make([]byte, 1+rng.Intn(16))
		rng.Read(k)
		model[string(k)] = uint64(i)
		if _, err := ix.Set(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]string, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)

	c := ix.NewCursor()
	defer c.Close()
	i := 0
	var prev []byte
	for ok := c.Seek(nil); ok; ok = c.Next() {
		if i >= len(want) {
			t.Fatalf("cursor visited more than %d keys", len(want))
		}
		if string(c.Key()) != want[i] || c.Value() != model[want[i]] {
			t.Fatalf("cursor[%d] = %x=%d, want %x=%d",
				i, c.Key(), c.Value(), want[i], model[want[i]])
		}
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatalf("cursor disorder at %d: %x after %x", i, c.Key(), prev)
		}
		prev = append(prev[:0], c.Key()...)
		i++
	}
	if i != len(want) {
		t.Fatalf("cursor visited %d keys, want %d", i, len(want))
	}
	// Mid-stream seek lands on the global successor regardless of shard.
	mid := []byte(want[len(want)/2])
	if !c.Seek(mid) || !bytes.Equal(c.Key(), mid) {
		t.Fatalf("Seek(%x) landed on %x", mid, c.Key())
	}
	if !c.Next() || string(c.Key()) != want[len(want)/2+1] {
		t.Fatalf("Next after mid-seek = %x, want %x", c.Key(), want[len(want)/2+1])
	}
}

// TestScatterGatherOrder checks that MultiGet/MultiSet results come back at
// the caller's positions with batches big enough to take the parallel path,
// including duplicate and missing keys.
func TestScatterGatherOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ix := sharded.New(4, 1<<12, factories()["CuckooTrie"])
	n := 4096
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%05d", i))
		vals[i] = uint64(i) * 3
	}
	errs := make([]error, n)
	if added := ix.MultiSet(keys, vals, errs); added != n {
		t.Fatalf("MultiSet added %d, want %d", added, n)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
	// Shuffled batch with duplicates and misses.
	batch := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 4:
			batch = append(batch, []byte(fmt.Sprintf("missing-%d", i)))
		case 3:
			batch = append(batch, batch[rng.Intn(len(batch))])
		default:
			batch = append(batch, keys[rng.Intn(n)])
		}
	}
	got := make([]uint64, len(batch))
	found := make([]bool, len(batch))
	ix.MultiGet(batch, got, found)
	for i, k := range batch {
		if bytes.HasPrefix(k, []byte("missing-")) {
			if found[i] {
				t.Fatalf("found[%d] for missing key %s", i, k)
			}
			continue
		}
		var want uint64
		fmt.Sscanf(string(k), "key-%d", &want)
		if !found[i] || got[i] != want*3 {
			t.Fatalf("MultiGet[%d] (%s) = %d,%v want %d", i, k, got[i], found[i], want*3)
		}
	}
}

// TestConcurrentBatches hammers one sharded index from many goroutines —
// the pooled scratch and worker write-back must be race-free (run under
// -race in CI).
func TestConcurrentBatches(t *testing.T) {
	ix := sharded.New(4, 1<<14, factories()["CuckooTrie"])
	if !ix.ConcurrentSafe() {
		t.Fatal("sharded CuckooTrie should be concurrent-safe")
	}
	n := 8192
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("ck-%06d", i))
		vals[i] = uint64(i)
	}
	ix.MultiSet(keys, vals, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			batch := make([][]byte, 256)
			got := make([]uint64, len(batch))
			found := make([]bool, len(batch))
			for it := 0; it < 30; it++ {
				for j := range batch {
					batch[j] = keys[rng.Intn(n)]
				}
				if g%2 == 0 {
					ix.MultiGet(batch, got, found)
					for j := range batch {
						if !found[j] {
							t.Errorf("goroutine %d: missed loaded key %s", g, batch[j])
							return
						}
					}
				} else {
					ix.MultiSet(batch, got, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := ix.Len(); got != n {
		t.Fatalf("Len = %d after concurrent churn, want %d", got, n)
	}
}

// TestNonConcurrentInnerNotMarked: sharding does not make a single-threaded
// engine safe for concurrent callers (two callers can hit one shard).
func TestNonConcurrentInnerNotMarked(t *testing.T) {
	ix := sharded.New(4, 64, factories()["STX"])
	if index.IsConcurrent(ix) {
		t.Fatal("sharded STX must not report concurrent-safe")
	}
}

// cursorSpy wraps an inner index and counts NewCursor calls, so tests can
// observe exactly which shards an ordered operation touched.
type cursorSpy struct {
	index.Index
	opens *int32
}

func (s cursorSpy) NewCursor() index.Cursor {
	atomic.AddInt32(s.opens, 1)
	return s.Index.NewCursor()
}

// spyFactory builds a sharded index whose shards count their cursor opens
// (opens[i] = NewCursor calls on shard i, in factory-call order).
func spyFactory(t *testing.T, shards int, mk sharded.RouterMaker) (*sharded.Index, []int32) {
	t.Helper()
	opens := make([]int32, shards)
	next := 0
	inner := factories()["SkipList"]
	ix := sharded.NewWithRouter(shards, 1<<10, func(c int) index.Index {
		s := cursorSpy{inner(c), &opens[next]}
		next++
		return s
	}, mk)
	if ix.Shards() != shards {
		t.Fatalf("built %d shards, want %d", ix.Shards(), shards)
	}
	return ix, opens
}

// TestRangeScanSingleShardBypass is the acceptance test for the range
// router's scan fast path: a Scan whose range is served entirely by one
// shard must open ONLY that shard's cursor — no k-way merge over all
// shards — while the hash router (key order scattered across shards) must
// still open every shard's cursor for the same scan.
func TestRangeScanSingleShardBypass(t *testing.T) {
	// 4 range shards partition on the top 2 bits of the first byte:
	// [0x00,0x40) → 0, [0x40,0x80) → 1, [0x80,0xc0) → 2, [0xc0,∞) → 3.
	ix, opens := spyFactory(t, 4, sharded.NewPrefixRouter)
	for b := 0; b < 256; b++ {
		for j := 0; j < 4; j++ {
			k := []byte{byte(b), byte(j)}
			if _, err := ix.Set(k, uint64(b*4+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A 10-key scan starting at 0x50...: every visited key has first byte
	// in [0x50, 0x53], all inside shard 1.
	var got [][]byte
	n := ix.Scan([]byte{0x50}, 10, func(k []byte, v uint64) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if n != 10 {
		t.Fatalf("scan visited %d keys, want 10", n)
	}
	for i, k := range got {
		want := []byte{byte(0x50 + i/4), byte(i % 4)}
		if !bytes.Equal(k, want) {
			t.Fatalf("scan[%d] = %x, want %x", i, k, want)
		}
	}
	for s, o := range opens {
		want := int32(0)
		if s == 1 {
			want = 1
		}
		if o != want {
			t.Fatalf("shard %d: %d cursor opens, want %d (opens = %v)", s, o, want, opens)
		}
	}

	// A scan crossing the shard-1/shard-2 boundary opens exactly the two
	// shards it reaches, in order — still no merge over all four.
	var crossed []byte
	ix.Scan([]byte{0x7f, 0x03}, 2, func(k []byte, v uint64) bool {
		crossed = append(crossed, k[0])
		return true
	})
	if !bytes.Equal(crossed, []byte{0x7f, 0x80}) {
		t.Fatalf("boundary scan first bytes = %x, want 7f80", crossed)
	}
	if opens[0] != 0 || opens[3] != 0 {
		t.Fatalf("boundary scan touched uninvolved shards: opens = %v", opens)
	}

	// Contrast: the hash router scatters key order, so the same single-
	// shard-range scan must consult every shard.
	hx, hopens := spyFactory(t, 4, sharded.NewHashRouter)
	for b := 0; b < 256; b++ {
		for j := 0; j < 4; j++ {
			if _, err := hx.Set([]byte{byte(b), byte(j)}, uint64(b*4+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	hx.Scan([]byte{0x50}, 10, func(k []byte, v uint64) bool { return true })
	for s, o := range hopens {
		if o != 1 {
			t.Fatalf("hash router shard %d: %d cursor opens, want 1", s, o)
		}
	}
}

// maxMeanRatio is the balance figure the bench tables report: the largest
// shard's key count over the mean. 1.0 is perfect balance; the shard count
// is the worst case (everything on one shard).
func maxMeanRatio(lens []int) float64 {
	total, max := 0, 0
	for _, l := range lens {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(len(lens)))
}

// TestSampledRouterBalanceSkewed is the balance acceptance test: on the
// skewed datasets (az keys share a long "B..." prefix; reddit usernames
// cluster in the lowercase range), the prefix router's first-byte
// partition piles keys onto a hot shard (max/mean well above 1.25 at 8
// shards), while the sampled router's quantile boundaries must keep
// max/mean ≤ 1.25 — order-preserving routing without the hot shard.
func TestSampledRouterBalanceSkewed(t *testing.T) {
	const shards = 8
	for _, ds := range []dataset.Name{dataset.AZ, dataset.Reddit} {
		ds := ds
		t.Run(string(ds), func(t *testing.T) {
			keys := dataset.Generate(ds, 20_000, 1)
			vals := make([]uint64, len(keys))
			for i := range vals {
				vals[i] = uint64(i)
			}
			load := func(mk sharded.RouterMaker) []int {
				ix := sharded.NewWithRouter(shards, len(keys), factories()["SkipList"], mk)
				if _, err := ix.BulkLoad(keys, vals); err != nil {
					t.Fatal(err)
				}
				return ix.ShardLens()
			}
			prefix := maxMeanRatio(load(sharded.NewPrefixRouter))
			sampled := maxMeanRatio(load(sharded.NewSampledRouter))
			if prefix <= 1.25 {
				t.Fatalf("prefix router balanced %s (max/mean %.2f) — dataset not skewed enough to prove anything", ds, prefix)
			}
			if sampled > 1.25 {
				t.Fatalf("sampled router max/mean = %.2f on %s, want <= 1.25 (prefix: %.2f)", sampled, ds, prefix)
			}
			t.Logf("%s at %d shards: prefix max/mean %.2f, sampled %.2f", ds, shards, prefix, sampled)
		})
	}
}

// TestSampledScanSingleShardBypass: the chain cursor's single-shard scan
// fast path must survive the router swap — under a trained sampled router,
// a scan whose range lives inside one sampled boundary interval opens ONLY
// that shard's cursor, exactly like the prefix router's bypass.
func TestSampledScanSingleShardBypass(t *testing.T) {
	// Train on the exact key population: 1024 two-byte keys, so the 4-shard
	// quantile boundaries are {0x40,0x00}, {0x80,0x00}, {0xc0,0x00} and
	// shard 1 owns first bytes 0x40..0x7f.
	var sample [][]byte
	for b := 0; b < 256; b++ {
		for j := 0; j < 4; j++ {
			sample = append(sample, []byte{byte(b), byte(j)})
		}
	}
	ix, opens := spyFactory(t, 4, sharded.NewSampledRouterFromSample(sample))
	if !ix.Router().Ordered() || ix.Router().Name() != "sampled" {
		t.Fatalf("router = %s ordered=%v", ix.Router().Name(), ix.Router().Ordered())
	}
	for _, k := range sample {
		if _, err := ix.Set(k, uint64(k[0])*4+uint64(k[1])); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	n := ix.Scan([]byte{0x50}, 10, func(k []byte, v uint64) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if n != 10 {
		t.Fatalf("scan visited %d keys, want 10", n)
	}
	for i, k := range got {
		want := []byte{byte(0x50 + i/4), byte(i % 4)}
		if !bytes.Equal(k, want) {
			t.Fatalf("scan[%d] = %x, want %x", i, k, want)
		}
	}
	for s, o := range opens {
		want := int32(0)
		if s == 1 {
			want = 1
		}
		if o != want {
			t.Fatalf("shard %d: %d cursor opens, want %d (opens = %v)", s, o, want, opens)
		}
	}
	// A scan crossing the sampled shard-1/shard-2 boundary opens exactly
	// the two shards it reaches.
	var crossed []byte
	ix.Scan([]byte{0x7f, 0x03}, 2, func(k []byte, v uint64) bool {
		crossed = append(crossed, k[0])
		return true
	})
	if !bytes.Equal(crossed, []byte{0x7f, 0x80}) {
		t.Fatalf("boundary scan first bytes = %x, want 7f80", crossed)
	}
	if opens[0] != 0 || opens[3] != 0 {
		t.Fatalf("boundary scan touched uninvolved shards: opens = %v", opens)
	}
}

// TestSampledTrainOnce: training happens exactly once, and only into an
// empty index — keys placed before training (all on shard 0 under the
// untrained table) must never be stranded by a later retrain, and a second
// bulk load must reuse the first load's boundaries.
func TestSampledTrainOnce(t *testing.T) {
	mkIndex := func() *sharded.Index {
		return sharded.NewWithRouter(4, 1<<10, factories()["SkipList"], sharded.NewSampledRouter)
	}
	spread := func(lo, hi, n int) ([][]byte, []uint64) {
		keys := make([][]byte, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = []byte{byte(lo + i*(hi-lo)/n), byte(i)}
			vals[i] = uint64(i)
		}
		return keys, vals
	}

	// BulkLoad into an empty index trains: keys spread across shards.
	ix := mkIndex()
	keys, vals := spread(0, 256, 512)
	if _, err := ix.BulkLoad(keys, vals); err != nil {
		t.Fatal(err)
	}
	for s, l := range ix.ShardLens() {
		if l == 0 {
			t.Fatalf("shard %d empty after training load: %v", s, ix.ShardLens())
		}
	}
	// A second, differently-distributed load must NOT retrain (boundaries
	// fixed). Its 3-byte keys cannot collide with the first load's 2-byte
	// keys, so the count must come out exact.
	moreKeys := make([][]byte, 64)
	moreVals := make([]uint64, 64)
	for i := range moreKeys {
		moreKeys[i] = []byte{byte(128 + i), byte(i), 0xff}
		moreVals[i] = uint64(i)
	}
	if _, err := ix.BulkLoad(moreKeys, moreVals); err != nil {
		t.Fatal(err)
	}
	if got := ix.Len(); got != 512+64 {
		t.Fatalf("Len after second load = %d, want %d (retrain stranded keys?)", got, 512+64)
	}

	// Set-before-BulkLoad: the index is non-empty when the load arrives, so
	// training must be skipped — under a trained table the load's duplicate
	// of the pre-load key would route to a DIFFERENT shard than the copy
	// already sitting in shard 0, leaving a stale duplicate behind.
	pre := []byte{0x80, 0xff, 0xee}
	ix2 := mkIndex()
	if _, err := ix2.Set(pre, 7); err != nil {
		t.Fatal(err)
	}
	dupKeys := append(append([][]byte{}, keys...), pre)
	dupVals := append(append([]uint64{}, vals...), 1000)
	if _, err := ix2.BulkLoad(dupKeys, dupVals); err != nil {
		t.Fatal(err)
	}
	if r, ok := ix2.Router().(*sharded.SampledRouter); !ok || r.Trained() {
		t.Fatalf("router trained into a non-empty index (trained=%v)", r.Trained())
	}
	if got := ix2.Len(); got != 512+1 {
		t.Fatalf("Len = %d after load into non-empty index, want %d", got, 512+1)
	}
	if v, ok := ix2.Get(pre); !ok || v != 1000 {
		t.Fatalf("pre-load key = %d,%v after dup load, want 1000", v, ok)
	}
	var hits int
	ix2.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
		if bytes.Equal(k, pre) {
			hits++
		}
		return true
	})
	if hits != 1 {
		t.Fatalf("pre-load key appears %d times in scan, want 1 (stale copy stranded)", hits)
	}
}

// TestPooledCursorReuse: Close recycles cursors (and their shard cursors)
// through the pool, so repeated scans stop calling NewCursor on the shards
// after warm-up, and a recycled cursor re-Seeks correctly.
func TestPooledCursorReuse(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   sharded.RouterMaker
	}{
		{"hash", sharded.NewHashRouter},
		{"range", sharded.NewPrefixRouter},
		{"sampled", sharded.NewSampledRouterFromSample(singleByteKeys())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix, opens := spyFactory(t, 4, tc.mk)
			for b := 0; b < 256; b++ {
				if _, err := ix.Set([]byte{byte(b)}, uint64(b)); err != nil {
					t.Fatal(err)
				}
			}
			total := func() (n int32) {
				for i := range opens {
					n += atomic.LoadInt32(&opens[i])
				}
				return
			}
			full := func() int {
				return ix.Scan(nil, 1<<30, func([]byte, uint64) bool { return true })
			}
			if got := full(); got != 256 {
				t.Fatalf("first scan visited %d keys, want 256", got)
			}
			after := total()
			for i := 0; i < 10; i++ {
				if got := full(); got != 256 {
					t.Fatalf("scan %d visited %d keys, want 256", i, got)
				}
			}
			// Under -race, sync.Pool drops Puts at random by design, so the
			// zero-new-cursors property only holds without the detector.
			if got := total(); got != after && !raceDetectorEnabled {
				t.Fatalf("repeated scans opened %d new shard cursors, want 0", got-after)
			}
			// A redundant Close (before the pool re-hands the cursor out) must
			// not corrupt the pool with a double Put; Close after reacquisition
			// is a use-after-Close contract violation like any other.
			c := ix.NewCursor()
			c.Close()
			c.Close()
			a, b := ix.NewCursor(), ix.NewCursor()
			if a == b {
				t.Fatal("double Close handed the same cursor out twice")
			}
			a.Close()
			b.Close()
		})
	}
}

// singleByteKeys returns every single-byte key in order — a training
// sample whose 4-shard quantile boundaries are 0x40, 0x80, 0xc0.
func singleByteKeys() [][]byte {
	out := make([][]byte, 256)
	for b := range out {
		out[b] = []byte{byte(b)}
	}
	return out
}

// allRouters lists every routing mode for tests that must hold across all
// three; the sampled entry is pre-trained on single-byte keys.
func allRouters() []struct {
	name string
	mk   sharded.RouterMaker
} {
	return []struct {
		name string
		mk   sharded.RouterMaker
	}{
		{"hash", sharded.NewHashRouter},
		{"range", sharded.NewPrefixRouter},
		{"sampled", sharded.NewSampledRouterFromSample(singleByteKeys())},
	}
}

// TestRecycledCursorSeeksFresh: a cursor re-acquired after Close must carry
// no state from its previous life — Valid/Key report unpositioned, and the
// first Seek repositions every underlying shard cursor correctly even
// though those stayed open across the recycle. Runs across all three
// routers (merge cursor under hash, chain cursor under range/sampled).
func TestRecycledCursorSeeksFresh(t *testing.T) {
	for _, tc := range allRouters() {
		t.Run(tc.name, func(t *testing.T) {
			ix, _ := spyFactory(t, 4, tc.mk)
			for b := 0; b < 256; b++ {
				if _, err := ix.Set([]byte{byte(b)}, uint64(b)); err != nil {
					t.Fatal(err)
				}
			}
			// First life: position deep into the keyspace, then Close
			// mid-iteration so cur/heap state is mid-stream, not exhausted.
			c := ix.NewCursor()
			if !c.Seek([]byte{0xe0}) || c.Value() != 0xe0 {
				t.Fatalf("first-life Seek = %v value %d", c.Valid(), c.Value())
			}
			c.Next()
			c.Close()

			// Second life (same pooled object under the hood): unpositioned
			// until Seek, then repositions from scratch at a lower key.
			c2 := ix.NewCursor()
			if c2.Valid() {
				t.Fatal("recycled cursor valid before Seek (stale position)")
			}
			if c2.Key() != nil {
				t.Fatalf("recycled cursor Key = %x before Seek", c2.Key())
			}
			if !c2.Seek([]byte{0x10}) || c2.Value() != 0x10 {
				t.Fatalf("recycled Seek(0x10) = %v value %d", c2.Valid(), c2.Value())
			}
			for want := uint64(0x11); want < 0x18; want++ {
				if !c2.Next() || c2.Value() != want {
					t.Fatalf("recycled walk at %d: valid=%v value=%d", want, c2.Valid(), c2.Value())
				}
			}
			c2.Close()

			// Third life: exhaust, recycle, and re-Seek — exhausted state
			// must not leak either.
			c3 := ix.NewCursor()
			if c3.Seek([]byte{0xff, 0x01}) {
				t.Fatal("Seek past end reported a key")
			}
			c3.Close()
			c4 := ix.NewCursor()
			if !c4.Seek(nil) || c4.Value() != 0 {
				t.Fatalf("post-exhaustion recycled Seek(nil) = %v value %d", c4.Valid(), c4.Value())
			}
			n := 1
			for c4.Next() {
				n++
			}
			if n != 256 {
				t.Fatalf("recycled full walk visited %d keys, want 256", n)
			}
			c4.Close()
		})
	}
}

// TestShardedBulkLoadLengthContract: the sharded BulkLoad method itself
// (not just the index.BulkLoad entry point) must reject a short vals slice
// with index.ErrBulkLen — the old code sliced vals[:len(keys)] and
// panicked.
func TestShardedBulkLoadLengthContract(t *testing.T) {
	ix := sharded.New(4, 64, factories()["SkipList"])
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	added, err := ix.BulkLoad(keys, []uint64{1})
	if !errors.Is(err, index.ErrBulkLen) {
		t.Fatalf("short-vals sharded BulkLoad = %d, %v, want ErrBulkLen", added, err)
	}
	if ix.Len() != 0 {
		t.Fatalf("short-vals BulkLoad inserted %d keys", ix.Len())
	}
	// Extra vals beyond len(keys) are ignored, not an error.
	if added, err := ix.BulkLoad(keys, []uint64{1, 2, 3, 4}); err != nil || added != 3 {
		t.Fatalf("extra-vals BulkLoad = %d, %v", added, err)
	}
}

// TestBulkLoadPartitioned: the sharded BulkLoad must agree with the
// incremental path on a stream with duplicates, under every router —
// including an untrained sampled router, which derives its boundaries from
// this very stream — and report per-shard added counts summed correctly.
func TestBulkLoadPartitioned(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 20000
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		if i > 0 && i%9 == 0 {
			keys[i] = keys[rng.Intn(i)] // duplicate: last value must win
		} else {
			k := make([]byte, 1+rng.Intn(12))
			rng.Read(k)
			keys[i] = k
		}
		vals[i] = uint64(i)
	}
	routers := append(allRouters(), struct {
		name string
		mk   sharded.RouterMaker
	}{"sampled-untrained", sharded.NewSampledRouter})
	for _, tc := range routers {
		t.Run(tc.name, func(t *testing.T) {
			bulk := sharded.NewWithRouter(8, n, factories()["CuckooTrie"], tc.mk)
			added, err := bulk.BulkLoad(keys, vals)
			if err != nil {
				t.Fatalf("BulkLoad: %v", err)
			}
			incr := sharded.NewWithRouter(8, n, factories()["CuckooTrie"], tc.mk)
			wantAdded := 0
			for i, k := range keys {
				a, err := incr.Set(k, vals[i])
				if err != nil {
					t.Fatal(err)
				}
				if a {
					wantAdded++
				}
			}
			if added != wantAdded {
				t.Fatalf("BulkLoad added %d, incremental %d", added, wantAdded)
			}
			if bulk.Len() != incr.Len() {
				t.Fatalf("Len: bulk %d, incremental %d", bulk.Len(), incr.Len())
			}
			got := make([]uint64, n)
			found := make([]bool, n)
			bulk.MultiGet(keys, got, found)
			want := make([]uint64, n)
			wfound := make([]bool, n)
			incr.MultiGet(keys, want, wfound)
			for i := range keys {
				if found[i] != wfound[i] || got[i] != want[i] {
					t.Fatalf("key %x: bulk %d,%v incremental %d,%v",
						keys[i], got[i], found[i], want[i], wfound[i])
				}
			}
		})
	}
}

// failAfterIndex wraps an inner index and fails Set/MultiSet for one
// specific key, so error propagation through the partitioned load path can
// be observed.
type failAfterIndex struct {
	index.Index
	bad string
}

var errBadKey = fmt.Errorf("injected bulk-load failure")

func (f failAfterIndex) Set(k []byte, v uint64) (bool, error) {
	if string(k) == f.bad {
		return false, errBadKey
	}
	return f.Index.Set(k, v)
}

func (f failAfterIndex) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	return index.FallbackMultiSet(f, keys, vals, errs)
}

// failManyIndex fails Set for every key in bad, each with its own error.
type failManyIndex struct {
	index.Index
	bad map[string]error
}

func (f failManyIndex) Set(k []byte, v uint64) (bool, error) {
	if err, ok := f.bad[string(k)]; ok {
		return false, err
	}
	return f.Index.Set(k, v)
}

func (f failManyIndex) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	return index.FallbackMultiSet(f, keys, vals, errs)
}

// TestBulkLoadFirstErrorShardOrder: when MULTIPLE shards fail during a
// partitioned load, the error surfaced is the lowest-numbered failing
// shard's — deterministic in shard order, not racy in completion order,
// even though the shards load concurrently.
func TestBulkLoadFirstErrorShardOrder(t *testing.T) {
	errShard1 := fmt.Errorf("shard-1 failure")
	errShard2 := fmt.Errorf("shard-2 failure")
	bad := map[string]error{
		"\x50bad": errShard1, // first byte 0x50 → prefix shard 1 of 4
		"\x90bad": errShard2, // first byte 0x90 → prefix shard 2 of 4
	}
	inner := factories()["SkipList"]
	for i := 0; i < 10; i++ { // repeat: completion order varies per run
		ix := sharded.NewWithRouter(4, 1<<10, func(c int) index.Index {
			return failManyIndex{inner(c), bad}
		}, sharded.NewPrefixRouter)
		// Stream order puts the HIGHER shard's bad key first: stream order
		// must not matter, only shard order.
		keys := [][]byte{{0x90, 'b', 'a', 'd'}, {0x00, 'a'}, {0x50, 'b', 'a', 'd'}, {0xd0, 'c'}}
		vals := []uint64{1, 2, 3, 4}
		added, err := ix.BulkLoad(keys, vals)
		if !errors.Is(err, errShard1) {
			t.Fatalf("BulkLoad err = %v, want shard 1's error (shard order, not completion order)", err)
		}
		if added != 2 {
			t.Fatalf("BulkLoad added %d, want 2 (the non-failing keys)", added)
		}
	}
}

// TestBulkLoadPropagatesError: a shard failing mid-load surfaces the error
// while the other shards' keys still land (MultiSet keeps going).
func TestBulkLoadPropagatesError(t *testing.T) {
	inner := factories()["SkipList"]
	ix := sharded.NewWithRouter(4, 1<<10, func(c int) index.Index {
		return failAfterIndex{inner(c), "\x10bad"}
	}, sharded.NewPrefixRouter)
	keys := [][]byte{{0x10, 'a'}, []byte("\x10bad"), {0x90, 'b'}, {0xd0, 'c'}}
	vals := []uint64{1, 2, 3, 4}
	added, err := ix.BulkLoad(keys, vals)
	if err == nil {
		t.Fatal("BulkLoad swallowed the injected shard error")
	}
	if added != 3 {
		t.Fatalf("BulkLoad added %d, want 3 (the non-failing keys)", added)
	}
	for i, k := range keys {
		_, ok := ix.Get(k)
		if want := i != 1; ok != want {
			t.Fatalf("Get(%x) = %v after failed load, want %v", k, ok, want)
		}
	}
}

// BenchmarkShardedScan measures the pooled-cursor scan path: after
// warm-up, Scan must not allocate a merge structure or fresh shard cursors
// per call (compare ReportAllocs between routers and against the
// pre-pooling path, which allocated the cursor slice + per-shard cursors
// on every Scan).
func BenchmarkShardedScan(b *testing.B) {
	for _, tc := range []struct {
		name string
		mk   sharded.RouterMaker
	}{{"hash", sharded.NewHashRouter}, {"range", sharded.NewPrefixRouter}} {
		b.Run(tc.name, func(b *testing.B) {
			ix := sharded.NewWithRouter(8, 1<<16, factories()["CuckooTrie"], tc.mk)
			rng := rand.New(rand.NewSource(7))
			keys := make([][]byte, 1<<14)
			for i := range keys {
				k := make([]byte, 8)
				rng.Read(k)
				keys[i] = k
				if _, err := ix.Set(k, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			var sink uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Scan(keys[i%len(keys)], 100, func(k []byte, v uint64) bool {
					sink += v
					return true
				})
			}
			_ = sink
		})
	}
}
