// Package sharded turns any index.Index factory into an N-shard
// hash-partitioned engine, adding the cross-core axis to the paper's MLP
// thesis: if the probes of every key in a batch are independent DRAM
// accesses, they are also independent across cores, so a batch can be
// scattered into per-shard sub-batches that execute concurrently and
// compose with each shard's own interleaved probe path (§4.4 generalized
// across keys, then across cores).
//
// Key→shard routing is pluggable (see Router): the default hash router
// spreads any key distribution evenly, the range (prefix) router preserves
// key order across shards, and the sampled router preserves order AND
// balances any distribution by picking shard boundaries from a key sample
// (see SampledRouter). MultiGet/MultiSet scatter the batch
// into per-shard sub-batches run on a bounded worker pool, with scratch
// buffers pooled and results written back into the caller's slices in
// caller order. Ordered operations (Scan, Cursor) depend on the router:
// under hash routing they are recovered with a k-way merge cursor over the
// per-shard cursors (the heap top always tracks the global minimum
// remaining key), while under range routing the shards themselves are
// ordered, so a chain cursor walks them in sequence and a range that lives
// in one shard never even opens the others. Either way the cursors are
// recycled through a sync.Pool on Close, so a Scan-heavy workload does not
// allocate a merge structure per call.
package sharded

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// Index is a partitioned wrapper over N inner indexes.
type Index struct {
	shards  []index.Index
	router  Router
	workers int
	scratch sync.Pool
	cursors sync.Pool // pooled *mergeCursor or *chainCursor, per the router
}

// RoundShards returns the shard count New actually builds for a request:
// rounded up to a power of two, minimum 1. Callers that label output by
// shard count should label with this, not the raw request.
func RoundShards(shards int) int {
	n := 1
	for n < shards {
		n <<= 1
	}
	return n
}

// New builds an engine with the given shard count (rounded up to a power of
// two, minimum 1 — see RoundShards) whose shards come from factory;
// capacity is the expected total key count, divided evenly across shards
// for the per-shard hint. Keys route by hash; use NewWithRouter for a
// different routing mode.
func New(shards, capacity int, factory func(capacity int) index.Index) *Index {
	return NewWithRouter(shards, capacity, factory, NewHashRouter)
}

// NewWithRouter is New with an explicit routing mode: mkRouter is invoked
// with the rounded power-of-two shard count and its Router owns the
// key→shard mapping for every operation.
func NewWithRouter(shards, capacity int, factory func(capacity int) index.Index, mkRouter RouterMaker) *Index {
	n := RoundShards(shards)
	x := &Index{
		shards: make([]index.Index, n),
		router: mkRouter(n),
	}
	per := (capacity + n - 1) / n
	for i := range x.shards {
		x.shards[i] = factory(per)
	}
	x.workers = runtime.GOMAXPROCS(0)
	if x.workers > n {
		x.workers = n
	}
	x.scratch.New = func() interface{} { return newScratch(n) }
	ordered := x.router.Ordered()
	x.cursors.New = func() interface{} {
		if ordered {
			return &chainCursor{x: x, cursors: make([]index.Cursor, n), cur: n}
		}
		return &mergeCursor{x: x, cursors: make([]index.Cursor, n)}
	}
	return x
}

// Shards reports the (power-of-two) shard count.
func (x *Index) Shards() int { return len(x.shards) }

// Router reports the engine's routing mode.
func (x *Index) Router() Router { return x.router }

func (x *Index) shardFor(key []byte) index.Index {
	return x.shards[x.router.Route(key)]
}

// Set routes to the owning shard.
func (x *Index) Set(key []byte, value uint64) (bool, error) {
	return x.shardFor(key).Set(key, value)
}

// Get routes to the owning shard.
func (x *Index) Get(key []byte) (uint64, bool) {
	return x.shardFor(key).Get(key)
}

// Delete routes to the owning shard.
func (x *Index) Delete(key []byte) bool {
	return x.shardFor(key).Delete(key)
}

// Len sums the shard counts.
func (x *Index) Len() int {
	total := 0
	for _, s := range x.shards {
		total += s.Len()
	}
	return total
}

// ShardLens reports each shard's key count, in shard order — the raw data
// behind a router's load-balance figure (max/mean of this slice).
func (x *Index) ShardLens() []int {
	lens := make([]int, len(x.shards))
	for i, s := range x.shards {
		lens[i] = s.Len()
	}
	return lens
}

// MemoryOverheadBytes sums the shard overheads.
func (x *Index) MemoryOverheadBytes() int64 {
	var total int64
	for _, s := range x.shards {
		total += s.MemoryOverheadBytes()
	}
	return total
}

// Name identifies the engine as an N-shard wrap of its inner engine,
// tagged with the routing mode.
func (x *Index) Name() string {
	return fmt.Sprintf("Sharded%d[%s](%s)", len(x.shards), x.router.Name(), x.shards[0].Name())
}

// ConcurrentSafe reports whether every shard is concurrent-safe: routing
// alone does not serialize two callers that hash to the same shard.
func (x *Index) ConcurrentSafe() bool {
	for _, s := range x.shards {
		if !index.IsConcurrent(s) {
			return false
		}
	}
	return true
}

// minParallelBatch is the batch size below which scatter-gather runs the
// sub-batches inline: spawning workers costs more than it overlaps.
const minParallelBatch = 32

// scratch holds one call's per-shard sub-batches, pooled across calls.
type scratch struct {
	keys   [][][]byte
	pos    [][]int
	vals   [][]uint64
	found  [][]bool
	errs   [][]error
	added  []int
	active []int // shard ids with at least one key this call
}

func newScratch(n int) *scratch {
	return &scratch{
		keys:   make([][][]byte, n),
		pos:    make([][]int, n),
		vals:   make([][]uint64, n),
		found:  make([][]bool, n),
		errs:   make([][]error, n),
		added:  make([]int, n),
		active: make([]int, 0, n),
	}
}

// split routes keys into per-shard sub-batches, recording each key's caller
// position, and returns the scratch holding them.
func (x *Index) split(keys [][]byte) *scratch {
	sc := x.scratch.Get().(*scratch)
	sc.active = sc.active[:0]
	for i, k := range keys {
		s := x.router.Route(k)
		if len(sc.keys[s]) == 0 {
			sc.keys[s] = sc.keys[s][:0]
			sc.pos[s] = sc.pos[s][:0]
			sc.active = append(sc.active, s)
		}
		sc.keys[s] = append(sc.keys[s], k)
		sc.pos[s] = append(sc.pos[s], i)
	}
	return sc
}

// release drops the sub-batch key references and returns sc to the pool.
func (sc *scratch) release(x *Index) {
	for _, s := range sc.active {
		ks := sc.keys[s]
		for i := range ks {
			ks[i] = nil
		}
		sc.keys[s] = ks[:0]
		sc.pos[s] = sc.pos[s][:0]
	}
	x.scratch.Put(sc)
}

// runShards runs fn(s) for every shard id in ids, on the calling
// goroutine for small batches or a single shard, otherwise on a bounded
// worker pool pulling shard tasks from a shared counter. It is the one
// scheduler behind scatter-gather batches and the partitioned bulk load.
func (x *Index) runShards(ids []int, batch int, fn func(s int)) {
	if len(ids) == 1 || batch < minParallelBatch || x.workers < 2 {
		for _, s := range ids {
			fn(s)
		}
		return
	}
	w := x.workers
	if w > len(ids) {
		w = len(ids)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(ids) {
					return
				}
				fn(ids[t])
			}
		}()
	}
	wg.Wait()
}

// MultiGet scatters the batch into per-shard sub-batches, looks each up with
// the shard's own (possibly interleaved) MultiGet concurrently, and gathers
// the results back into vals/found at the caller's positions. Positions are
// disjoint across shards, so workers write back without synchronization.
func (x *Index) MultiGet(keys [][]byte, vals []uint64, found []bool) {
	if len(keys) == 0 {
		return
	}
	if len(x.shards) == 1 {
		x.shards[0].MultiGet(keys, vals, found)
		return
	}
	sc := x.split(keys)
	x.runShards(sc.active, len(keys), func(s int) {
		sub := sc.keys[s]
		sv := grow(&sc.vals[s], len(sub))
		sf := grow(&sc.found[s], len(sub))
		x.shards[s].MultiGet(sub, sv, sf)
		for j, p := range sc.pos[s] {
			vals[p] = sv[j]
			found[p] = sf[j]
		}
	})
	sc.release(x)
}

// MultiSet scatters the batch like MultiGet, writes each sub-batch with the
// shard's MultiSet concurrently, gathers per-key errors back in caller
// order, and returns the total number of keys newly added.
func (x *Index) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	if len(keys) == 0 {
		return 0
	}
	if len(x.shards) == 1 {
		return x.shards[0].MultiSet(keys, vals, errs)
	}
	sc := x.split(keys)
	x.runShards(sc.active, len(keys), func(s int) {
		sub := sc.keys[s]
		sv := grow(&sc.vals[s], len(sub))
		for j, p := range sc.pos[s] {
			sv[j] = vals[p]
		}
		var se []error
		if errs != nil {
			se = grow(&sc.errs[s], len(sub))
			clear(se)
		}
		sc.added[s] = x.shards[s].MultiSet(sub, sv, se)
		if errs != nil {
			for j, p := range sc.pos[s] {
				errs[p] = se[j]
			}
		}
	})
	added := 0
	for _, s := range sc.active {
		added += sc.added[s]
	}
	sc.release(x)
	return added
}

// Scan walks a pooled cursor, preserving Index.Scan semantics. A single
// shard is scanned natively; under a range router the cursor only opens
// the shards the range actually reaches.
func (x *Index) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	if len(x.shards) == 1 {
		return x.shards[0].Scan(start, n, fn)
	}
	c := x.NewCursor()
	defer c.Close()
	visited := 0
	for ok := c.Seek(start); ok && visited < n; ok = c.Next() {
		visited++
		if !fn(c.Key(), c.Value()) {
			break
		}
	}
	return visited
}

// NewCursor returns a cursor over the shards: the single shard's native
// cursor, a sequential chain cursor when the router preserves key order
// (opening each shard only when iteration reaches it), or a k-way merge
// cursor under hash routing. Chain and merge cursors are recycled through
// a pool on Close; their per-shard cursors stay open across recycles and
// are repositioned by the next Seek.
func (x *Index) NewCursor() index.Cursor {
	if len(x.shards) == 1 {
		return x.shards[0].NewCursor()
	}
	switch c := x.cursors.Get().(type) {
	case *chainCursor:
		c.closed.Store(false)
		c.cur = len(c.cursors)
		return c
	case *mergeCursor:
		c.closed.Store(false)
		c.heap = c.heap[:0]
		return c
	}
	panic("sharded: unknown pooled cursor type")
}

// grow resizes a pooled scratch slice to n elements, reallocating only when
// capacity is short. Contents are unspecified; callers that need zeroed
// slots clear them.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
