// Package sharded turns any index.Index factory into an N-shard
// hash-partitioned engine, adding the cross-core axis to the paper's MLP
// thesis: if the probes of every key in a batch are independent DRAM
// accesses, they are also independent across cores, so a batch can be
// scattered into per-shard sub-batches that execute concurrently and
// compose with each shard's own interleaved probe path (§4.4 generalized
// across keys, then across cores).
//
// Point operations route by key hash to a single shard. MultiGet/MultiSet
// scatter the batch into per-shard sub-batches run on a bounded worker
// pool, with scratch buffers pooled and results written back into the
// caller's slices in caller order. Ordered operations (Scan, Cursor) are
// recovered with a k-way merge cursor over the per-shard cursors: the heap
// top always tracks the global minimum remaining key, so iteration is
// globally sorted even though each shard holds an arbitrary hash slice of
// the keyspace.
package sharded

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// Index is a hash-partitioned wrapper over N inner indexes.
type Index struct {
	shards  []index.Index
	mask    uint64
	seed    maphash.Seed
	workers int
	scratch sync.Pool
}

// RoundShards returns the shard count New actually builds for a request:
// rounded up to a power of two, minimum 1. Callers that label output by
// shard count should label with this, not the raw request.
func RoundShards(shards int) int {
	n := 1
	for n < shards {
		n <<= 1
	}
	return n
}

// New builds an engine with the given shard count (rounded up to a power of
// two, minimum 1 — see RoundShards) whose shards come from factory;
// capacity is the expected total key count, divided evenly across shards
// for the per-shard hint.
func New(shards, capacity int, factory func(capacity int) index.Index) *Index {
	n := RoundShards(shards)
	x := &Index{
		shards: make([]index.Index, n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
	}
	per := (capacity + n - 1) / n
	for i := range x.shards {
		x.shards[i] = factory(per)
	}
	x.workers = runtime.GOMAXPROCS(0)
	if x.workers > n {
		x.workers = n
	}
	x.scratch.New = func() interface{} { return newScratch(n) }
	return x
}

// Shards reports the (power-of-two) shard count.
func (x *Index) Shards() int { return len(x.shards) }

func (x *Index) shardFor(key []byte) index.Index {
	return x.shards[maphash.Bytes(x.seed, key)&x.mask]
}

// Set routes to the owning shard.
func (x *Index) Set(key []byte, value uint64) (bool, error) {
	return x.shardFor(key).Set(key, value)
}

// Get routes to the owning shard.
func (x *Index) Get(key []byte) (uint64, bool) {
	return x.shardFor(key).Get(key)
}

// Delete routes to the owning shard.
func (x *Index) Delete(key []byte) bool {
	return x.shardFor(key).Delete(key)
}

// Len sums the shard counts.
func (x *Index) Len() int {
	total := 0
	for _, s := range x.shards {
		total += s.Len()
	}
	return total
}

// MemoryOverheadBytes sums the shard overheads.
func (x *Index) MemoryOverheadBytes() int64 {
	var total int64
	for _, s := range x.shards {
		total += s.MemoryOverheadBytes()
	}
	return total
}

// Name identifies the engine as an N-shard wrap of its inner engine.
func (x *Index) Name() string {
	return fmt.Sprintf("Sharded%d(%s)", len(x.shards), x.shards[0].Name())
}

// ConcurrentSafe reports whether every shard is concurrent-safe: routing
// alone does not serialize two callers that hash to the same shard.
func (x *Index) ConcurrentSafe() bool {
	for _, s := range x.shards {
		if !index.IsConcurrent(s) {
			return false
		}
	}
	return true
}

// minParallelBatch is the batch size below which scatter-gather runs the
// sub-batches inline: spawning workers costs more than it overlaps.
const minParallelBatch = 32

// scratch holds one call's per-shard sub-batches, pooled across calls.
type scratch struct {
	keys   [][][]byte
	pos    [][]int
	vals   [][]uint64
	found  [][]bool
	errs   [][]error
	added  []int
	active []int // shard ids with at least one key this call
}

func newScratch(n int) *scratch {
	return &scratch{
		keys:   make([][][]byte, n),
		pos:    make([][]int, n),
		vals:   make([][]uint64, n),
		found:  make([][]bool, n),
		errs:   make([][]error, n),
		added:  make([]int, n),
		active: make([]int, 0, n),
	}
}

// split routes keys into per-shard sub-batches, recording each key's caller
// position, and returns the scratch holding them.
func (x *Index) split(keys [][]byte) *scratch {
	sc := x.scratch.Get().(*scratch)
	sc.active = sc.active[:0]
	for i, k := range keys {
		s := int(maphash.Bytes(x.seed, k) & x.mask)
		if len(sc.keys[s]) == 0 {
			sc.keys[s] = sc.keys[s][:0]
			sc.pos[s] = sc.pos[s][:0]
			sc.active = append(sc.active, s)
		}
		sc.keys[s] = append(sc.keys[s], k)
		sc.pos[s] = append(sc.pos[s], i)
	}
	return sc
}

// release drops the sub-batch key references and returns sc to the pool.
func (sc *scratch) release(x *Index) {
	for _, s := range sc.active {
		ks := sc.keys[s]
		for i := range ks {
			ks[i] = nil
		}
		sc.keys[s] = ks[:0]
		sc.pos[s] = sc.pos[s][:0]
	}
	x.scratch.Put(sc)
}

// forEachActive runs fn(shard) for every active shard, on the calling
// goroutine for small batches or a single active shard, otherwise on a
// bounded worker pool pulling shard tasks from a shared counter.
func (x *Index) forEachActive(sc *scratch, batch int, fn func(s int)) {
	if len(sc.active) == 1 || batch < minParallelBatch || x.workers < 2 {
		for _, s := range sc.active {
			fn(s)
		}
		return
	}
	w := x.workers
	if w > len(sc.active) {
		w = len(sc.active)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(sc.active) {
					return
				}
				fn(sc.active[t])
			}
		}()
	}
	wg.Wait()
}

// MultiGet scatters the batch into per-shard sub-batches, looks each up with
// the shard's own (possibly interleaved) MultiGet concurrently, and gathers
// the results back into vals/found at the caller's positions. Positions are
// disjoint across shards, so workers write back without synchronization.
func (x *Index) MultiGet(keys [][]byte, vals []uint64, found []bool) {
	if len(keys) == 0 {
		return
	}
	if len(x.shards) == 1 {
		x.shards[0].MultiGet(keys, vals, found)
		return
	}
	sc := x.split(keys)
	x.forEachActive(sc, len(keys), func(s int) {
		sub := sc.keys[s]
		sv := grow(&sc.vals[s], len(sub))
		sf := grow(&sc.found[s], len(sub))
		x.shards[s].MultiGet(sub, sv, sf)
		for j, p := range sc.pos[s] {
			vals[p] = sv[j]
			found[p] = sf[j]
		}
	})
	sc.release(x)
}

// MultiSet scatters the batch like MultiGet, writes each sub-batch with the
// shard's MultiSet concurrently, gathers per-key errors back in caller
// order, and returns the total number of keys newly added.
func (x *Index) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	if len(keys) == 0 {
		return 0
	}
	if len(x.shards) == 1 {
		return x.shards[0].MultiSet(keys, vals, errs)
	}
	sc := x.split(keys)
	x.forEachActive(sc, len(keys), func(s int) {
		sub := sc.keys[s]
		sv := grow(&sc.vals[s], len(sub))
		for j, p := range sc.pos[s] {
			sv[j] = vals[p]
		}
		var se []error
		if errs != nil {
			se = grow(&sc.errs[s], len(sub))
			clear(se)
		}
		sc.added[s] = x.shards[s].MultiSet(sub, sv, se)
		if errs != nil {
			for j, p := range sc.pos[s] {
				errs[p] = se[j]
			}
		}
	})
	added := 0
	for _, s := range sc.active {
		added += sc.added[s]
	}
	sc.release(x)
	return added
}

// Scan walks the k-way merge cursor, preserving Index.Scan semantics.
func (x *Index) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	c := x.NewCursor()
	defer c.Close()
	visited := 0
	for ok := c.Seek(start); ok && visited < n; ok = c.Next() {
		visited++
		if !fn(c.Key(), c.Value()) {
			break
		}
	}
	return visited
}

// NewCursor returns a k-way merge cursor over per-shard cursors.
func (x *Index) NewCursor() index.Cursor {
	cs := make([]index.Cursor, len(x.shards))
	for i, s := range x.shards {
		cs[i] = s.NewCursor()
	}
	return &mergeCursor{cursors: cs}
}

// grow resizes a pooled scratch slice to n elements, reallocating only when
// capacity is short. Contents are unspecified; callers that need zeroed
// slots clear them.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
