package sharded

import (
	"bytes"
	"sync/atomic"

	"repro/internal/index"
)

// mergeCursor merges the ascending streams of the per-shard cursors into
// one globally ordered stream with a binary min-heap of shard ids keyed by
// each shard cursor's current key. Hash partitioning stores a key in
// exactly one shard, but ties are still broken by shard id so iteration is
// deterministic for any inner engine.
//
// The cursor is pooled: Close returns it to its Index's pool instead of
// discarding it, and the per-shard cursors stay open across recycles — the
// next Seek repositions them, so a Scan-heavy caller allocates neither the
// merge structure nor the shard cursors after warm-up.
type mergeCursor struct {
	x       *Index
	cursors []index.Cursor // lazily opened, kept open while pooled
	heap    []int          // shard ids of valid cursors, min-heap on current key
	closed  atomic.Bool
}

// Seek positions every shard cursor at its smallest key ≥ start and
// rebuilds the heap; the heap top is then the global successor of start.
func (c *mergeCursor) Seek(start []byte) bool {
	c.heap = c.heap[:0]
	for i := range c.cursors {
		if c.cursors[i] == nil {
			c.cursors[i] = c.x.shards[i].NewCursor()
		}
		if c.cursors[i].Seek(start) {
			c.heap = append(c.heap, i)
		}
	}
	for i := len(c.heap)/2 - 1; i >= 0; i-- {
		c.siftDown(i)
	}
	return len(c.heap) > 0
}

func (c *mergeCursor) Valid() bool { return len(c.heap) > 0 }

func (c *mergeCursor) Key() []byte {
	if len(c.heap) == 0 {
		return nil
	}
	return c.cursors[c.heap[0]].Key()
}

func (c *mergeCursor) Value() uint64 {
	if len(c.heap) == 0 {
		return 0
	}
	return c.cursors[c.heap[0]].Value()
}

// Next advances the shard cursor at the heap top; if it runs dry the shard
// leaves the heap, otherwise it is sifted to its new rank.
func (c *mergeCursor) Next() bool {
	if len(c.heap) == 0 {
		return false
	}
	if !c.cursors[c.heap[0]].Next() {
		last := len(c.heap) - 1
		c.heap[0] = c.heap[last]
		c.heap = c.heap[:last]
	}
	if len(c.heap) > 0 {
		c.siftDown(0)
	}
	return len(c.heap) > 0
}

// Close invalidates the cursor and recycles it (and its still-open shard
// cursors) through the Index's pool. The CAS makes a redundant Close —
// even from another goroutine — a no-op instead of a double pool Put;
// Closing a cursor the pool has already handed to someone else is the
// same contract violation as any other use-after-Close.
func (c *mergeCursor) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.heap = c.heap[:0]
	c.x.cursors.Put(c)
}

// less orders heap entries by current key, then shard id.
func (c *mergeCursor) less(a, b int) bool {
	if cmp := bytes.Compare(c.cursors[a].Key(), c.cursors[b].Key()); cmp != 0 {
		return cmp < 0
	}
	return a < b
}

func (c *mergeCursor) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(c.heap) && c.less(c.heap[l], c.heap[min]) {
			min = l
		}
		if r < len(c.heap) && c.less(c.heap[r], c.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		c.heap[i], c.heap[min] = c.heap[min], c.heap[i]
		i = min
	}
}

// chainCursor iterates an order-preserving (range-routed) Index: shard i's
// keys all sort below shard i+1's, so global order is just shard 0, then
// shard 1, and so on — no merge. Shard cursors are opened lazily, only
// when iteration actually reaches their shard: a Seek whose range is
// served entirely by the owning shard never touches the others, which is
// the range router's scan fast path.
//
// Like mergeCursor, the cursor is pooled: Close recycles it and any opened
// shard cursors; the next Seek repositions them.
type chainCursor struct {
	x       *Index
	cursors []index.Cursor // lazily opened, kept open while pooled
	cur     int            // current shard; len(cursors) when exhausted
	closed  atomic.Bool
}

func (c *chainCursor) ensure(i int) index.Cursor {
	if c.cursors[i] == nil {
		c.cursors[i] = c.x.shards[i].NewCursor()
	}
	return c.cursors[i]
}

// Seek starts at start's owning shard — later shards hold only greater
// keys, earlier ones only smaller — and chains forward until a shard has a
// key ≥ start.
func (c *chainCursor) Seek(start []byte) bool {
	for c.cur = c.x.router.Route(start); c.cur < len(c.cursors); c.cur++ {
		if c.ensure(c.cur).Seek(start) {
			return true
		}
	}
	return false
}

func (c *chainCursor) Valid() bool {
	return c.cur < len(c.cursors) && c.cursors[c.cur].Valid()
}

func (c *chainCursor) Key() []byte {
	if !c.Valid() {
		return nil
	}
	return c.cursors[c.cur].Key()
}

func (c *chainCursor) Value() uint64 {
	if !c.Valid() {
		return 0
	}
	return c.cursors[c.cur].Value()
}

// Next advances within the current shard, rolling over to the next
// non-empty shard's minimum when it runs dry.
func (c *chainCursor) Next() bool {
	if c.cur >= len(c.cursors) {
		return false
	}
	if c.cursors[c.cur].Next() {
		return true
	}
	for c.cur++; c.cur < len(c.cursors); c.cur++ {
		if c.ensure(c.cur).Seek(nil) {
			return true
		}
	}
	return false
}

// Close invalidates the cursor and recycles it (and its opened shard
// cursors) through the Index's pool. See mergeCursor.Close for the CAS
// rationale.
func (c *chainCursor) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.cur = len(c.cursors)
	c.x.cursors.Put(c)
}
