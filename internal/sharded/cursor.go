package sharded

import (
	"bytes"

	"repro/internal/index"
)

// mergeCursor merges the ascending streams of the per-shard cursors into
// one globally ordered stream with a binary min-heap of shard ids keyed by
// each shard cursor's current key. Hash partitioning stores a key in
// exactly one shard, but ties are still broken by shard id so iteration is
// deterministic for any inner engine.
type mergeCursor struct {
	cursors []index.Cursor
	heap    []int // shard ids of valid cursors, min-heap on current key
}

// Seek positions every shard cursor at its smallest key ≥ start and
// rebuilds the heap; the heap top is then the global successor of start.
func (c *mergeCursor) Seek(start []byte) bool {
	c.heap = c.heap[:0]
	for i, cur := range c.cursors {
		if cur.Seek(start) {
			c.heap = append(c.heap, i)
		}
	}
	for i := len(c.heap)/2 - 1; i >= 0; i-- {
		c.siftDown(i)
	}
	return len(c.heap) > 0
}

func (c *mergeCursor) Valid() bool { return len(c.heap) > 0 }

func (c *mergeCursor) Key() []byte {
	if len(c.heap) == 0 {
		return nil
	}
	return c.cursors[c.heap[0]].Key()
}

func (c *mergeCursor) Value() uint64 {
	if len(c.heap) == 0 {
		return 0
	}
	return c.cursors[c.heap[0]].Value()
}

// Next advances the shard cursor at the heap top; if it runs dry the shard
// leaves the heap, otherwise it is sifted to its new rank.
func (c *mergeCursor) Next() bool {
	if len(c.heap) == 0 {
		return false
	}
	if !c.cursors[c.heap[0]].Next() {
		last := len(c.heap) - 1
		c.heap[0] = c.heap[last]
		c.heap = c.heap[:last]
	}
	if len(c.heap) > 0 {
		c.siftDown(0)
	}
	return len(c.heap) > 0
}

func (c *mergeCursor) Close() {
	for _, cur := range c.cursors {
		cur.Close()
	}
	c.heap = nil
}

// less orders heap entries by current key, then shard id.
func (c *mergeCursor) less(a, b int) bool {
	if cmp := bytes.Compare(c.cursors[a].Key(), c.cursors[b].Key()); cmp != 0 {
		return cmp < 0
	}
	return a < b
}

func (c *mergeCursor) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(c.heap) && c.less(c.heap[l], c.heap[min]) {
			min = l
		}
		if r < len(c.heap) && c.less(c.heap[r], c.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		c.heap[i], c.heap[min] = c.heap[min], c.heap[i]
		i = min
	}
}
