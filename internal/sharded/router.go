package sharded

import (
	"bytes"
	"hash/maphash"
	"sort"
	"sync/atomic"
)

// Router maps keys to shards. The routing policy determines not just load
// balance but which ordered-operation strategy is available: a hash router
// spreads any key distribution evenly but scatters the key order across
// shards, so scans need a k-way merge; a range router keeps the order, so
// scans walk shards sequentially and a range that lives in one shard opens
// only that shard's cursor.
type Router interface {
	// Route returns the owning shard of key, in [0, shards). A nil key
	// routes like the empty key.
	Route(key []byte) int
	// Ordered reports whether routing preserves key order across shards:
	// every key owned by shard i compares lexicographically below every key
	// owned by shard i+1. Ordered routers let scans and cursors iterate
	// shards in sequence — no merge — opening each shard's cursor only when
	// the iteration actually reaches it.
	Ordered() bool
	// Name identifies the routing mode in benchmark output.
	Name() string
}

// RouterMaker builds a Router for a power-of-two shard count. New and
// NewWithRouter invoke it with the rounded shard count so the router and
// the shard slice can never disagree.
type RouterMaker func(shards int) Router

// RouterByName resolves a routing mode by its benchmark name.
func RouterByName(name string) (RouterMaker, bool) {
	switch name {
	case "hash":
		return NewHashRouter, true
	case "range":
		return NewPrefixRouter, true
	case "sampled":
		return NewSampledRouter, true
	}
	return nil, false
}

// hashRouter routes by maphash of the whole key: even load for any key
// distribution, but shard-scattered key order.
type hashRouter struct {
	seed maphash.Seed
	mask uint64
}

// NewHashRouter returns the default maphash router for a power-of-two
// shard count.
func NewHashRouter(shards int) Router {
	return &hashRouter{seed: maphash.MakeSeed(), mask: uint64(shards - 1)}
}

func (r *hashRouter) Route(key []byte) int {
	return int(maphash.Bytes(r.seed, key) & r.mask)
}

func (r *hashRouter) Ordered() bool { return false }
func (r *hashRouter) Name() string  { return "hash" }

// prefixRouter partitions the keyspace by a fixed-length key prefix: shard
// = the top log2(shards) bits of the key's first 8 bytes (zero-padded).
// Zero-padded big-endian prefixes are monotone in the lexicographic key
// order, so the partition is a range partition: shard i's keys all sort
// below shard i+1's. Load balance is only as good as the key
// distribution's first bytes — uniform for random keys, skewed for keys
// sharing a common prefix — which is the classic range-partitioning
// trade-off for order-aware scans.
type prefixRouter struct {
	bits uint // log2(shards)
}

// NewPrefixRouter returns a range router over a fixed key prefix for a
// power-of-two shard count.
func NewPrefixRouter(shards int) Router {
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	return &prefixRouter{bits: bits}
}

func (r *prefixRouter) Route(key []byte) int {
	var p uint64
	for i := 0; i < 8; i++ {
		p <<= 8
		if i < len(key) {
			p |= uint64(key[i])
		}
	}
	return int(p >> (64 - r.bits)) // bits==0: p>>64 is 0 in Go, shard 0
}

func (r *prefixRouter) Ordered() bool { return true }
func (r *prefixRouter) Name() string  { return "range" }

// maxBoundarySample caps how many keys boundary selection sorts: beyond a
// few thousand samples the quantile estimate is already within a percent or
// two of the true key distribution, so sampling a stride of a large stream
// costs one pass instead of an O(n log n) sort of the whole load.
const maxBoundarySample = 8192

// SampledRouter is a range router whose shard boundaries come from a key
// sample instead of a fixed prefix: the sample is sorted and the keys at
// its n-1 evenly spaced quantiles become the boundary table, so each shard
// owns roughly the same fraction of the SAMPLED distribution — balanced
// for any key distribution, where the prefix router balances only as well
// as the keys' first bytes (one hot shard on az/reddit-style skew). A key
// routes to the number of boundaries ≤ it (binary search), which is
// monotone in lexicographic order, so the router is order-preserving and
// the chain cursor's single-shard scan bypass applies unchanged.
//
// The router starts untrained when built without a sample
// (NewSampledRouter, the "sampled" RouterByName mode): every key then
// routes to shard 0, which is trivially order-preserving. Index.BulkLoad
// trains an untrained router from the insert stream before partitioning —
// but only when the index is still empty, so keys placed under the
// untrained (or a previous) boundary table are never stranded in a shard
// the new table would not route to. Training is atomic and first-wins;
// Route always reads a consistent boundary table. The empty-index check
// assumes no writer races the first bulk load (see Index.BulkLoad); when
// that cannot be guaranteed, build the router pre-trained with
// NewSampledRouterFromSample.
type SampledRouter struct {
	shards     int
	boundaries atomic.Pointer[[][]byte] // nil until trained; len = shards-1
}

// NewSampledRouter returns an untrained sampled-boundary range router for a
// power-of-two shard count: all keys route to shard 0 until Train (or the
// first bulk load into an empty index) installs a boundary table.
func NewSampledRouter(shards int) Router {
	return &SampledRouter{shards: shards}
}

// NewSampledRouterFromSample returns a RouterMaker whose routers are
// pre-trained from sample — for engines whose key distribution is known at
// construction time (e.g. a server preloading a known dataset).
func NewSampledRouterFromSample(sample [][]byte) RouterMaker {
	return func(shards int) Router {
		r := &SampledRouter{shards: shards}
		r.Train(sample)
		return r
	}
}

// Trained reports whether a boundary table is installed.
func (r *SampledRouter) Trained() bool { return r.boundaries.Load() != nil }

// Train derives the boundary table from sample and installs it, once: the
// first successful Train wins and later calls are no-ops, so concurrent
// loaders converge on one partition. A single-shard router or an empty
// sample trains to the degenerate empty table (everything on shard 0).
func (r *SampledRouter) Train(sample [][]byte) {
	if r.Trained() {
		return
	}
	b := pickBoundaries(sample, r.shards)
	r.boundaries.CompareAndSwap(nil, &b)
}

// pickBoundaries sorts (a strided sample of) keys and returns the shards-1
// quantile keys that split them into equal-count ranges.
func pickBoundaries(keys [][]byte, shards int) [][]byte {
	if shards <= 1 || len(keys) == 0 {
		return [][]byte{}
	}
	stride := 1
	if len(keys) > maxBoundarySample {
		stride = (len(keys) + maxBoundarySample - 1) / maxBoundarySample
	}
	sample := make([][]byte, 0, (len(keys)+stride-1)/stride)
	for i := 0; i < len(keys); i += stride {
		sample = append(sample, keys[i])
	}
	sort.Slice(sample, func(i, j int) bool { return bytes.Compare(sample[i], sample[j]) < 0 })
	bounds := make([][]byte, 0, shards-1)
	for s := 1; s < shards; s++ {
		b := sample[s*len(sample)/shards]
		// Boundaries are copied: the table must outlive the caller's sample.
		bounds = append(bounds, append([]byte(nil), b...))
	}
	return bounds
}

// Route returns the number of boundaries ≤ key: keys below the first
// boundary land on shard 0, keys at or above the last on shard n-1.
func (r *SampledRouter) Route(key []byte) int {
	bp := r.boundaries.Load()
	if bp == nil {
		return 0
	}
	b := *bp
	return sort.Search(len(b), func(i int) bool { return bytes.Compare(key, b[i]) < 0 })
}

func (r *SampledRouter) Ordered() bool { return true }
func (r *SampledRouter) Name() string  { return "sampled" }
