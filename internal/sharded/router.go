package sharded

import "hash/maphash"

// Router maps keys to shards. The routing policy determines not just load
// balance but which ordered-operation strategy is available: a hash router
// spreads any key distribution evenly but scatters the key order across
// shards, so scans need a k-way merge; a range router keeps the order, so
// scans walk shards sequentially and a range that lives in one shard opens
// only that shard's cursor.
type Router interface {
	// Route returns the owning shard of key, in [0, shards). A nil key
	// routes like the empty key.
	Route(key []byte) int
	// Ordered reports whether routing preserves key order across shards:
	// every key owned by shard i compares lexicographically below every key
	// owned by shard i+1. Ordered routers let scans and cursors iterate
	// shards in sequence — no merge — opening each shard's cursor only when
	// the iteration actually reaches it.
	Ordered() bool
	// Name identifies the routing mode in benchmark output.
	Name() string
}

// RouterMaker builds a Router for a power-of-two shard count. New and
// NewWithRouter invoke it with the rounded shard count so the router and
// the shard slice can never disagree.
type RouterMaker func(shards int) Router

// RouterByName resolves a routing mode by its benchmark name.
func RouterByName(name string) (RouterMaker, bool) {
	switch name {
	case "hash":
		return NewHashRouter, true
	case "range":
		return NewPrefixRouter, true
	}
	return nil, false
}

// hashRouter routes by maphash of the whole key: even load for any key
// distribution, but shard-scattered key order.
type hashRouter struct {
	seed maphash.Seed
	mask uint64
}

// NewHashRouter returns the default maphash router for a power-of-two
// shard count.
func NewHashRouter(shards int) Router {
	return &hashRouter{seed: maphash.MakeSeed(), mask: uint64(shards - 1)}
}

func (r *hashRouter) Route(key []byte) int {
	return int(maphash.Bytes(r.seed, key) & r.mask)
}

func (r *hashRouter) Ordered() bool { return false }
func (r *hashRouter) Name() string  { return "hash" }

// prefixRouter partitions the keyspace by a fixed-length key prefix: shard
// = the top log2(shards) bits of the key's first 8 bytes (zero-padded).
// Zero-padded big-endian prefixes are monotone in the lexicographic key
// order, so the partition is a range partition: shard i's keys all sort
// below shard i+1's. Load balance is only as good as the key
// distribution's first bytes — uniform for random keys, skewed for keys
// sharing a common prefix — which is the classic range-partitioning
// trade-off for order-aware scans.
type prefixRouter struct {
	bits uint // log2(shards)
}

// NewPrefixRouter returns a range router over a fixed key prefix for a
// power-of-two shard count.
func NewPrefixRouter(shards int) Router {
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	return &prefixRouter{bits: bits}
}

func (r *prefixRouter) Route(key []byte) int {
	var p uint64
	for i := 0; i < 8; i++ {
		p <<= 8
		if i < len(key) {
			p |= uint64(key[i])
		}
	}
	return int(p >> (64 - r.bits)) // bits==0: p>>64 is 0 in Go, shard 0
}

func (r *prefixRouter) Ordered() bool { return true }
func (r *prefixRouter) Name() string  { return "range" }
