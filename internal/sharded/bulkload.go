package sharded

import "repro/internal/index"

// BulkLoad implements index.BulkLoader with a partitioned ingest path: the
// whole insert stream is split into per-shard sub-streams up front (one
// routing pass, exact-size allocations), and the sub-streams load
// concurrently on the worker pool — each through the shard's own bulk
// path. A key always routes to one shard and sub-streams preserve stream
// order, so duplicate keys keep last-write-wins semantics even though
// shards load in parallel. Returns the total newly-added count and the
// first error in shard order. A vals slice shorter than keys is rejected
// up front (index.CheckBulkLen) before any key lands.
//
// An untrained sampled router (see SampledRouter) is trained from the
// insert stream here, before the routing pass — but only while the index
// is still empty: keys already placed under the old (degenerate) table
// must not be stranded in shards the new boundaries would never route a
// lookup to. The emptiness check is decided against a quiescent index: a
// Set racing the FIRST bulk load can land under the untrained table after
// the check and be stranded once boundaries install. Deployments that
// write concurrently with their initial load must pre-train the router
// (NewSampledRouterFromSample) instead of relying on in-load training.
func (x *Index) BulkLoad(keys [][]byte, vals []uint64) (int, error) {
	if err := index.CheckBulkLen(keys, vals); err != nil {
		return 0, err
	}
	if sr, ok := x.router.(*SampledRouter); ok && !sr.Trained() && x.Len() == 0 {
		sr.Train(keys)
	}
	n := len(x.shards)
	if n == 1 {
		return index.BulkLoad(x.shards[0], keys, vals)
	}
	if len(keys) == 0 {
		return 0, nil
	}
	vals = vals[:len(keys)]

	// Routing pass: shard ids once, counts for exact sub-stream sizing.
	route := make([]int32, len(keys))
	counts := make([]int, n)
	for i, k := range keys {
		s := x.router.Route(k)
		route[i] = int32(s)
		counts[s]++
	}
	subKeys := make([][][]byte, n)
	subVals := make([][]uint64, n)
	for s := 0; s < n; s++ {
		if counts[s] > 0 {
			subKeys[s] = make([][]byte, 0, counts[s])
			subVals[s] = make([]uint64, 0, counts[s])
		}
	}
	for i, k := range keys {
		s := route[i]
		subKeys[s] = append(subKeys[s], k)
		subVals[s] = append(subVals[s], vals[i])
	}

	// Concurrent load on the shared shard scheduler, one task per busy
	// shard.
	busy := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if counts[s] > 0 {
			busy = append(busy, s)
		}
	}
	addedBy := make([]int, n)
	errBy := make([]error, n)
	x.runShards(busy, len(keys), func(s int) {
		addedBy[s], errBy[s] = index.BulkLoad(x.shards[s], subKeys[s], subVals[s])
	})

	added := 0
	var firstErr error
	for _, s := range busy {
		added += addedBy[s]
		if errBy[s] != nil && firstErr == nil {
			firstErr = errBy[s]
		}
	}
	return added, firstErr
}
