package sharded

import "repro/internal/index"

// BulkLoad implements index.BulkLoader with a partitioned ingest path: the
// whole insert stream is split into per-shard sub-streams up front (one
// routing pass, exact-size allocations), and the sub-streams load
// concurrently on the worker pool — each through the shard's own bulk
// path. A key always routes to one shard and sub-streams preserve stream
// order, so duplicate keys keep last-write-wins semantics even though
// shards load in parallel. Returns the total newly-added count and the
// first error in shard order.
func (x *Index) BulkLoad(keys [][]byte, vals []uint64) (int, error) {
	n := len(x.shards)
	if n == 1 {
		return index.BulkLoad(x.shards[0], keys, vals)
	}
	if len(keys) == 0 {
		return 0, nil
	}
	vals = vals[:len(keys)]

	// Routing pass: shard ids once, counts for exact sub-stream sizing.
	route := make([]int32, len(keys))
	counts := make([]int, n)
	for i, k := range keys {
		s := x.router.Route(k)
		route[i] = int32(s)
		counts[s]++
	}
	subKeys := make([][][]byte, n)
	subVals := make([][]uint64, n)
	for s := 0; s < n; s++ {
		if counts[s] > 0 {
			subKeys[s] = make([][]byte, 0, counts[s])
			subVals[s] = make([]uint64, 0, counts[s])
		}
	}
	for i, k := range keys {
		s := route[i]
		subKeys[s] = append(subKeys[s], k)
		subVals[s] = append(subVals[s], vals[i])
	}

	// Concurrent load on the shared shard scheduler, one task per busy
	// shard.
	busy := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if counts[s] > 0 {
			busy = append(busy, s)
		}
	}
	addedBy := make([]int, n)
	errBy := make([]error, n)
	x.runShards(busy, len(keys), func(s int) {
		addedBy[s], errBy[s] = index.BulkLoad(x.shards[s], subKeys[s], subVals[s])
	})

	added := 0
	var firstErr error
	for _, s := range busy {
		added += addedBy[s]
		if errBy[s] != nil && firstErr == nil {
			firstErr = errBy[s]
		}
	}
	return added, firstErr
}
