package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/sharded"
)

// FigLoad measures the partitioned bulk-load path: LOAD-phase throughput
// (Mops/s) by shard count and router. Column x1 is the unsharded engine
// loading through the chunked-MultiSet fallback; the hash-xN / range-xN
// columns partition the insert stream up front and load the per-shard
// sub-streams concurrently on the worker pool — the ingest-side analogue
// of the scatter-gather MultiGet figure. On a single-core box the sharded
// columns only bound the partitioning overhead; the banner's GOMAXPROCS
// says which regime produced the numbers.
func FigLoad(w io.Writer, o Options) {
	o.Fill()
	header(w, "Load: partitioned bulk-load throughput by shard count and router (Mops/s)",
		"ingest-side cross-core MLP; range routing trades first-byte balance for scan locality")
	shardCounts := shardLadder(o.Shards)

	type column struct {
		label  string
		shards int
		mk     sharded.RouterMaker
	}
	cols := []column{{"x1", 1, nil}}
	for _, s := range shardCounts {
		if s == 1 {
			continue
		}
		cols = append(cols, column{fmt.Sprintf("hash-x%d", s), s, sharded.NewHashRouter})
		cols = append(cols, column{fmt.Sprintf("range-x%d", s), s, sharded.NewPrefixRouter})
	}

	ks := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	vals := make([]uint64, len(ks))
	for i := range vals {
		vals[i] = uint64(i)
	}
	fmt.Fprintf(w, "\n%-14s", "")
	for _, c := range cols {
		fmt.Fprintf(w, "%10s", c.label)
	}
	fmt.Fprintln(w)
	for _, e := range Engines() {
		if !e.Concurrent {
			continue
		}
		fmt.Fprintf(w, "%-14s", e.Name)
		for _, c := range cols {
			var ix index.Index
			if c.shards == 1 {
				ix = e.New(len(ks))
			} else {
				ix = sharded.NewWithRouter(c.shards, len(ks), e.New, c.mk)
			}
			start := time.Now()
			if _, err := index.BulkLoad(ix, ks, vals); err != nil {
				panic(fmt.Sprintf("%s %s load: %v", e.Name, c.label, err))
			}
			fmt.Fprintf(w, "%10.3f", mops(len(ks), time.Since(start)))
		}
		fmt.Fprintln(w)
	}
}
