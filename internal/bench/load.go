package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
)

// routedModes are the routing modes the shard-axis figures sweep, in
// presentation order: hash (balanced, order-scattered), range (ordered,
// first-byte balanced), sampled (ordered AND balanced via sample-derived
// boundaries).
var routedModes = []string{"hash", "range", "sampled"}

// skewedDatasets is the skewed-dataset axis of the router figures: az keys
// share a long "B..." prefix and reddit usernames cluster in the lowercase
// range, so first-byte (prefix) range routing piles either onto one hot
// shard — exactly the regime the sampled router exists for.
var skewedDatasets = []dataset.Name{dataset.AZ, dataset.Reddit}

// rowIndex keys a Report's rows by their identifying axes for table
// rendering.
func rowIndex(rep Report) map[string]Row {
	rows := map[string]Row{}
	for _, r := range rep.Rows {
		rows[r.axes()] = r
	}
	return rows
}

// rowKey is the axes key of the shard figures' cells (no workload, mode or
// thread axis).
func rowKey(engine, ds, router string, shards int) string {
	return Row{Engine: engine, Dataset: ds, Router: router, Shards: shards}.axes()
}

// valsFor numbers a key stream 0..n-1, the value convention of every load.
func valsFor(ks [][]byte) []uint64 {
	vals := make([]uint64, len(ks))
	for i := range vals {
		vals[i] = uint64(i)
	}
	return vals
}

// loadReport measures the partitioned bulk-load path into a Report: on
// rand-8, LOAD throughput across the full shard ladder × router; on the
// skewed datasets, the router trade-off at the max shard count with the
// loaded index's per-shard balance. One measurement path feeds both the
// text table and -json.
func loadReport(o Options) Report {
	o.Fill()
	rep := newReport("load", o)
	cell := func(e Engine, router string, shards int, ds dataset.Name, ks [][]byte, vals []uint64) Row {
		var ix index.Index
		if shards == 1 {
			ix = e.New(len(ks))
		} else {
			se, ok := ShardedEngineRouted(e, shards, router)
			if !ok {
				panic("bench: unknown router " + router)
			}
			ix = se.New(len(ks))
		}
		start := time.Now()
		if _, err := index.BulkLoad(ix, ks, vals); err != nil {
			panic(fmt.Sprintf("%s %s-x%d load: %v", e.Name, router, shards, err))
		}
		return Row{
			Engine:  e.Name,
			Dataset: string(ds),
			Router:  router,
			Shards:  shards,
			Mops:    mops(len(ks), time.Since(start)),
			Balance: balanceOf(ix),
		}
	}

	ks := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	vals := valsFor(ks)
	for _, e := range Engines() {
		if !e.Concurrent {
			continue
		}
		rep.Rows = append(rep.Rows, cell(e, "", 1, dataset.Rand8, ks, vals))
		for _, s := range shardLadder(o.Shards) {
			if s == 1 {
				continue
			}
			for _, r := range routedModes {
				rep.Rows = append(rep.Rows, cell(e, r, s, dataset.Rand8, ks, vals))
			}
		}
	}
	if rep.MaxShards > 1 {
		for _, ds := range skewedDatasets {
			ks := datasetKeys(ds, o.Keys, o.Seed)
			vals := valsFor(ks)
			for _, e := range Engines() {
				if !e.Concurrent {
					continue
				}
				rep.Rows = append(rep.Rows, cell(e, "", 1, ds, ks, vals))
				for _, r := range routedModes {
					rep.Rows = append(rep.Rows, cell(e, r, rep.MaxShards, ds, ks, vals))
				}
			}
		}
	}
	return rep
}

// FigLoad renders the partitioned bulk-load figure as text: LOAD-phase
// throughput (Mops/s) by shard count and router on rand-8, then the
// hash/range/sampled trade-off on the skewed datasets with a per-shard
// balance column (max/mean key count; 1.00 = even, shard count = one hot
// shard). Column x1 is the unsharded engine loading through the
// chunked-MultiSet fallback. On a single-core box the sharded columns only
// bound the partitioning overhead; the banner's GOMAXPROCS says which
// regime produced the numbers.
func FigLoad(w io.Writer, o Options) {
	o.Fill()
	rep := loadReport(o)
	header(w, "Load: partitioned bulk-load throughput by dataset, shard count and router (Mops/s)",
		"ingest-side cross-core MLP; sampled boundaries keep range routing balanced on skew")
	rows := rowIndex(rep)

	// rand-8: shard ladder × router.
	fmt.Fprintf(w, "\nrand-8 (shard ladder):\n%-14s%12s", "", "x1")
	var ladder []int
	for _, s := range shardLadder(o.Shards) {
		if s > 1 {
			ladder = append(ladder, s)
		}
	}
	for _, s := range ladder {
		for _, r := range routedModes {
			fmt.Fprintf(w, "%12s", fmt.Sprintf("%s-x%d", r, s))
		}
	}
	fmt.Fprintln(w)
	for _, e := range Engines() {
		if !e.Concurrent {
			continue
		}
		fmt.Fprintf(w, "%-14s%12.3f", e.Name, rows[rowKey(e.Name, "rand-8", "", 1)].Mops)
		for _, s := range ladder {
			for _, r := range routedModes {
				fmt.Fprintf(w, "%12.3f", rows[rowKey(e.Name, "rand-8", r, s)].Mops)
			}
		}
		fmt.Fprintln(w)
	}

	renderSkewedTables(w, rep, rows)
}

// FigLoadJSON is FigLoad's -json mode: the same measurements as one JSON
// report (banner fields + rows) for machine diffing across runs.
func FigLoadJSON(w io.Writer, o Options) error {
	return loadReport(o).WriteJSON(w)
}

// renderSkewedTables renders the skewed-dataset router trade-off tables of
// a load/sharded Report: per dataset, engines × {x1, hash, range, sampled}
// at the max shard count, with a per-router balance footer (max/mean shard
// key count, from the first engine's cells — balance is a router×dataset
// property; engines only add hash-seed noise).
func renderSkewedTables(w io.Writer, rep Report, rows map[string]Row) {
	if rep.MaxShards <= 1 {
		return
	}
	first := ""
	for _, e := range Engines() {
		if e.Concurrent {
			first = e.Name
			break
		}
	}
	for _, ds := range skewedDatasets {
		fmt.Fprintf(w, "\n%s (skewed keys, x%d):\n%-14s%12s", ds, rep.MaxShards, "", "x1")
		for _, r := range routedModes {
			fmt.Fprintf(w, "%12s", fmt.Sprintf("%s-x%d", r, rep.MaxShards))
		}
		fmt.Fprintln(w)
		for _, e := range Engines() {
			if !e.Concurrent {
				continue
			}
			fmt.Fprintf(w, "%-14s%12.3f", e.Name, rows[rowKey(e.Name, string(ds), "", 1)].Mops)
			for _, r := range routedModes {
				fmt.Fprintf(w, "%12.3f", rows[rowKey(e.Name, string(ds), r, rep.MaxShards)].Mops)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-14s%12s", "balance", "-")
		for _, r := range routedModes {
			fmt.Fprintf(w, "%12.2f", rows[rowKey(first, string(ds), r, rep.MaxShards)].Balance)
		}
		fmt.Fprintf(w, "   (max/mean shard keys; 1.00 even, %d.00 one hot shard)\n", rep.MaxShards)
	}
}
