package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/miniredis"
)

// execModesSweep is the exec figure's mode axis: Redis's one-at-a-time
// command loop, per-connection concurrency, and the per-stripe executor
// fan-out the executor layer adds.
var execModesSweep = []miniredis.ExecMode{
	miniredis.ExecSerial, miniredis.ExecStripedConn, miniredis.ExecStripedExec,
}

// execWorkloads: "disjoint" interleaves each pipeline across this many
// independent sets — the shape striped-exec fans out across stripe lanes —
// while "shared" hammers one set, where every mode degenerates to a single
// serialized lane and the sweep measures pure executor overhead.
var execWorkloads = []string{"disjoint", "shared"}

const execDisjointSets = 8

// execPipelineDepth matches the server's batch drain bound: a full batch
// gives the striped executor the widest span to partition.
const execPipelineDepth = 128

// execReport measures pipelined ZADD throughput from one connection under
// each execution mode × workload. A single connection is the interesting
// client: striped-conn already runs different CONNECTIONS concurrently,
// so only the per-stripe executor can extract parallelism from one
// client's pipeline. On GOMAXPROCS=1 the lanes time-slice one core and
// the disjoint rows bound fan-out overhead instead of showing a win (the
// report banner records which run this was).
func execReport(o Options) Report {
	o.Fill()
	rep := newReport("exec", o)
	rep.MaxShards = 1
	e, _ := engineByName("CuckooTrie")
	ops := minInt(o.Ops, 200_000)
	for _, mode := range execModesSweep {
		for _, wl := range execWorkloads {
			m, lat := execZAddMops(e, mode, wl, ops, o)
			row := Row{
				Engine:   e.Name,
				Workload: wl,
				Mode:     string(mode),
				Shards:   1,
				Threads:  1,
				Mops:     m,
			}
			applyLat(&row, lat)
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// execZAddMops runs one cell: ops fresh-key ZADDs from a single client in
// execPipelineDepth-deep pipelines, round-robin across the workload's set
// count, against a memory-only server in the given mode. Each pipeline's
// round trip (write, dispatch, reply reassembly, read) is one latency
// sample — the unit the client actually waits on.
func execZAddMops(e Engine, mode miniredis.ExecMode, wl string, ops int, o Options) (float64, latCell) {
	srv := miniredis.NewServerExec(e.New, o.Keys, mode)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("exec figure: %v", err))
	}
	//ctvet:ignore memory-only server (no WAL): Close has nothing durable to flush
	defer srv.Close()
	cl, err := miniredis.Dial(addr)
	if err != nil {
		panic(fmt.Sprintf("exec figure: %v", err))
	}
	defer cl.Close()

	nsets := 1
	if wl == "disjoint" {
		nsets = execDisjointSets
	}
	sets := make([][]byte, nsets)
	for i := range sets {
		sets[i] = []byte(fmt.Sprintf("exec%d", i))
	}
	h := metrics.New()
	start := time.Now()
	pipe := make([][][]byte, 0, execPipelineDepth)
	for i := 0; i < ops; i++ {
		pipe = append(pipe, [][]byte{[]byte("ZADD"), sets[i%nsets],
			[]byte(fmt.Sprintf("m%08d", i)), []byte("1")})
		if len(pipe) == execPipelineDepth {
			rtt := time.Now()
			if _, err := cl.Pipeline(pipe); err != nil {
				panic(fmt.Sprintf("exec figure: pipeline: %v", err))
			}
			h.RecordDuration(int64(time.Since(rtt)))
			pipe = pipe[:0]
		}
	}
	if len(pipe) > 0 {
		rtt := time.Now()
		if _, err := cl.Pipeline(pipe); err != nil {
			panic(fmt.Sprintf("exec figure: pipeline: %v", err))
		}
		h.RecordDuration(int64(time.Since(rtt)))
	}
	return mops(ops, time.Since(start)), latFromSnapshot(h.Snapshot(), o.Seed)
}

// FigExec renders the execution-mode figure: single-connection pipelined
// ZADD throughput under serial, striped-conn and striped-exec dispatch,
// on pipelines spread across disjoint sets (striped-exec's fan-out shape)
// and on one shared set (its serialization floor).
func FigExec(w io.Writer, o Options) {
	o.Fill()
	rep := execReport(o)
	header(w, "Exec: single-connection pipelined ZADD Mops/s by execution mode",
		"executor layer: per-stripe lanes vs per-connection vs serial dispatch")
	rows := rowIndex(rep)
	fmt.Fprintf(w, "\n%-22s", "workload")
	for _, mode := range execModesSweep {
		fmt.Fprintf(w, "%14s", string(mode))
	}
	for _, wl := range execWorkloads {
		fmt.Fprintf(w, "\n%-22s", wl)
		for _, mode := range execModesSweep {
			r := rows[Row{Engine: "CuckooTrie", Workload: wl, Mode: string(mode),
				Shards: 1, Threads: 1}.axes()]
			fmt.Fprintf(w, "%14.3f", r.Mops)
		}
	}
	fmt.Fprintf(w, "\n\n%-22s pipeline RTT µs (p50/p99/p999 ± p99 CI):", "")
	for _, wl := range execWorkloads {
		fmt.Fprintf(w, "\n%-22s", wl)
		for _, mode := range execModesSweep {
			r := rows[Row{Engine: "CuckooTrie", Workload: wl, Mode: string(mode),
				Shards: 1, Threads: 1}.axes()]
			fmt.Fprintf(w, " %21s", latCol(r))
		}
	}
	fmt.Fprintf(w, "\n(one client, %d-deep pipelines; disjoint = round-robin over %d sets, shared = one set; GOMAXPROCS=1 runs bound fan-out overhead, not speedup)\n",
		execPipelineDepth, execDisjointSets)
	fmt.Fprintf(w, "(latency is per %d-op pipeline round trip)\n", execPipelineDepth)
}

// FigExecJSON is FigExec's -json mode: the same measurements as one JSON
// report for machine diffing across runs.
func FigExecJSON(w io.Writer, o Options) error {
	return execReport(o).WriteJSON(w)
}
