package bench

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/sharded"
)

// shardLadder builds the figure's shard counts: powers of two from 1 up to
// the requested maximum, rounded to what sharded.New actually builds so
// every column label matches the measured configuration, and never
// exceeding the user's cap by more than that rounding.
func shardLadder(max int) []int {
	rounded := sharded.RoundShards(max)
	var out []int
	for s := 1; s <= rounded; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// shardedBatchSize is the batch the sharded figure drains per MultiGet: big
// enough that every shard's sub-batch still amortizes the scatter, the
// regime of a server emptying a deep pipeline.
const shardedBatchSize = 512

// FigSharded compares sharded vs. unsharded batched-lookup throughput
// across shard counts: the cross-core axis of the paper's MLP argument.
// Column x1 is the unsharded engine (no wrapper at all); columns x2..xN
// scatter each 512-key MultiGet into per-shard sub-batches that run
// concurrently on a worker pool, so each core overlaps its own sub-batch's
// DRAM misses while the shards overlap each other. Scaling tracks the
// machine's core count — on a single-core box the sharded columns only
// measure the scatter overhead.
func FigSharded(w io.Writer, o Options) {
	o.Fill()
	header(w, fmt.Sprintf("Sharded scatter-gather: MultiGet throughput by shard count (Mops/s, batch=%d, router=hash)", shardedBatchSize),
		"cross-core MLP; sharded engines scale with shard count up to the core count")
	shardCounts := shardLadder(o.Shards)
	ks := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	fmt.Fprintf(w, "\n%-14s", "")
	for _, s := range shardCounts {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("x%d", s))
	}
	fmt.Fprintln(w)
	for _, e := range Engines() {
		if !e.Concurrent {
			continue
		}
		fmt.Fprintf(w, "%-14s", e.Name)
		for _, s := range shardCounts {
			eng := e
			if s > 1 {
				eng = ShardedEngine(e, s)
			}
			ix := load(eng, ks, len(ks))
			fmt.Fprintf(w, "%10.3f", runMultiGet(ix, ks, o.Ops, shardedBatchSize, o.Seed))
		}
		fmt.Fprintln(w)
	}
}
