package bench

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/sharded"
)

// shardLadder builds the figure's shard counts: powers of two from 1 up to
// the requested maximum, rounded to what sharded.New actually builds so
// every column label matches the measured configuration, and never
// exceeding the user's cap by more than that rounding.
func shardLadder(max int) []int {
	rounded := sharded.RoundShards(max)
	var out []int
	for s := 1; s <= rounded; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// shardedBatchSize is the batch the sharded figure drains per MultiGet: big
// enough that every shard's sub-batch still amortizes the scatter, the
// regime of a server emptying a deep pipeline.
const shardedBatchSize = 512

// shardedReport measures scatter-gather MultiGet throughput into a Report:
// on rand-8, the hash-routed shard ladder (the original cross-core MLP
// sweep); on the skewed datasets, the hash/range/sampled trade-off at the
// max shard count — a range-routed sub-batch scatter is only as parallel
// as its balance, so the hot shard the prefix router creates on az/reddit
// shows up directly as lost MultiGet throughput, and the balance field
// quantifies it.
func shardedReport(o Options) Report {
	o.Fill()
	rep := newReport("sharded", o)
	cell := func(e Engine, router string, shards int, ds dataset.Name, ks [][]byte) Row {
		eng := e
		if shards > 1 {
			var ok bool
			if eng, ok = ShardedEngineRouted(e, shards, router); !ok {
				panic("bench: unknown router " + router)
			}
		}
		ix := load(eng, ks, len(ks))
		return Row{
			Engine:  e.Name,
			Dataset: string(ds),
			Router:  router,
			Shards:  shards,
			Mops:    runMultiGet(ix, ks, o.Ops, shardedBatchSize, o.Seed),
			Balance: balanceOf(ix),
		}
	}

	ks := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	for _, e := range Engines() {
		if !e.Concurrent {
			continue
		}
		for _, s := range shardLadder(o.Shards) {
			router := "hash"
			if s == 1 {
				router = ""
			}
			rep.Rows = append(rep.Rows, cell(e, router, s, dataset.Rand8, ks))
		}
	}
	if rep.MaxShards > 1 {
		for _, ds := range skewedDatasets {
			ks := datasetKeys(ds, o.Keys, o.Seed)
			for _, e := range Engines() {
				if !e.Concurrent {
					continue
				}
				rep.Rows = append(rep.Rows, cell(e, "", 1, ds, ks))
				for _, r := range routedModes {
					rep.Rows = append(rep.Rows, cell(e, r, rep.MaxShards, ds, ks))
				}
			}
		}
	}
	return rep
}

// FigSharded renders sharded vs. unsharded batched-lookup throughput:
// the cross-core axis of the paper's MLP argument. The rand-8 table
// sweeps the shard ladder under hash routing — column x1 is the unsharded
// engine (no wrapper at all); columns x2..xN scatter each 512-key MultiGet
// into per-shard sub-batches that run concurrently on a worker pool. The
// skewed-dataset tables compare the routing modes at the max shard count,
// with the balance footer showing why the prefix router loses throughput
// there (its sub-batches all land on one hot shard). Scaling tracks the
// machine's core count — on a single-core box the sharded columns only
// measure the scatter overhead; the banner's GOMAXPROCS says which regime
// produced the numbers.
func FigSharded(w io.Writer, o Options) {
	o.Fill()
	rep := shardedReport(o)
	header(w, fmt.Sprintf("Sharded scatter-gather: MultiGet throughput by shard count and router (Mops/s, batch=%d)", shardedBatchSize),
		"cross-core MLP; sharded engines scale with shard count up to the core count")
	rows := rowIndex(rep)

	fmt.Fprintf(w, "\nrand-8 (shard ladder, router=hash):\n%-14s", "")
	for _, s := range shardLadder(o.Shards) {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("x%d", s))
	}
	fmt.Fprintln(w)
	for _, e := range Engines() {
		if !e.Concurrent {
			continue
		}
		fmt.Fprintf(w, "%-14s", e.Name)
		for _, s := range shardLadder(o.Shards) {
			router := "hash"
			if s == 1 {
				router = ""
			}
			fmt.Fprintf(w, "%10.3f", rows[rowKey(e.Name, "rand-8", router, s)].Mops)
		}
		fmt.Fprintln(w)
	}

	renderSkewedTables(w, rep, rows)
}

// FigShardedJSON is FigSharded's -json mode: the same measurements as one
// JSON report (banner fields + rows) for machine diffing across runs.
func FigShardedJSON(w io.Writer, o Options) error {
	return shardedReport(o).WriteJSON(w)
}
