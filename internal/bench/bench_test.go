package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sharded"
)

// tiny returns options small enough for CI smoke runs.
func tiny() Options { return Options{Keys: 5000, Ops: 5000, Threads: 2, Seed: 1} }

func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	cases := []struct {
		name string
		run  func(o Options, buf *bytes.Buffer)
		want []string
	}{
		{"table1", func(o Options, b *bytes.Buffer) { Table1(b, o) }, []string{"rand-8", "az", "reddit"}},
		{"fig2", func(o Options, b *bytes.Buffer) { Fig2(b, o) }, []string{"CuckooTrie", "STX", "eff.lat"}},
		{"fig9", func(o Options, b *bytes.Buffer) { Fig9(b, o) }, []string{"CuckooTrie", "Wormhole"}},
		{"fig11", func(o Options, b *bytes.Buffer) { Fig11(b, o) }, []string{"CuckooTrie (resize)", "HOT"}},
		{"fig12", func(o Options, b *bytes.Buffer) { Fig12(b, o) }, []string{"MlpIndex", "bytes/key"}},
		{"table3", func(o Options, b *bytes.Buffer) { Table3(b, o) }, []string{"DRAM", "UPI"}},
		{"ablation", func(o Options, b *bytes.Buffer) { Ablation(b, o) }, []string{"nodes/key", "D=5"}},
		{"sharded", func(o Options, b *bytes.Buffer) { o.Shards = 4; FigSharded(b, o) },
			[]string{"CuckooTrie", "x2", "x4", "shard count", "router=hash", "GOMAXPROCS=", "sampled-x4", "az", "reddit", "balance"}},
		{"load", func(o Options, b *bytes.Buffer) { o.Shards = 4; FigLoad(b, o) },
			[]string{"CuckooTrie", "hash-x2", "range-x4", "sampled-x2", "router", "GOMAXPROCS=", "az", "reddit", "balance"}},
		{"persist", func(o Options, b *bytes.Buffer) { o.Keys, o.Ops = 3000, 3000; FigPersist(b, o) },
			[]string{"CuckooTrie-sampled-x4", "load-mem", "snapshot", "recover", "wal-always", "wal-group", "wal-async", "replay",
				"recovered balance", "GOMAXPROCS=", "8 concurrent writers"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			c.run(tiny(), &buf)
			out := buf.String()
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Fatalf("%s output missing %q:\n%s", c.name, w, out)
				}
			}
		})
	}
}

func TestFig2Shape(t *testing.T) {
	// The reproduction target: the Cuckoo Trie's effective DRAM latency must
	// be well below the serial indexes' (the paper reports ~3x).
	var buf bytes.Buffer
	o := Options{Keys: 30000, Ops: 10000, Threads: 1, Seed: 1}
	Fig2(&buf, o)
	var ctEff, artEff float64
	for _, line := range strings.Split(buf.String(), "\n") {
		f := strings.Fields(line)
		if len(f) < 6 {
			continue
		}
		switch f[0] {
		case "CuckooTrie":
			ctEff = atofOr(f[5], 0)
		case "ARTOLC":
			artEff = atofOr(f[5], 0)
		}
	}
	if ctEff <= 0 || artEff <= 0 {
		t.Fatalf("could not parse Fig2 output:\n%s", buf.String())
	}
	if ctEff*1.5 > artEff {
		t.Fatalf("effective latency gap too small: CT %.1f vs ART %.1f", ctEff, artEff)
	}
}

// TestThreadLadder: the Fig6 ladder must measure at the actual core count
// even when it is not a power of two (the old ladder skipped 6/12/20-core
// machines entirely), without duplicates and in ascending order.
func TestThreadLadder(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1, 2, 4}},
		{2, []int{1, 2, 4}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
		{12, []int{1, 2, 4, 8, 12}},
		{16, []int{1, 2, 4, 8, 16}},
		{20, []int{1, 2, 4, 8, 16, 20}},
	}
	for _, c := range cases {
		got := threadLadder(c.max)
		if len(got) != len(c.want) {
			t.Fatalf("threadLadder(%d) = %v, want %v", c.max, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("threadLadder(%d) = %v, want %v", c.max, got, c.want)
			}
		}
	}
}

// TestShardLadder: the sharded figure's columns are powers of two, respect
// the user's cap (modulo the power-of-two rounding sharded.New itself
// applies), and always label the count actually measured.
func TestShardLadder(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 8}}, // 6 rounds to 8 shards; label what is built
		{8, []int{1, 2, 4, 8}},
	}
	for _, c := range cases {
		got := shardLadder(c.max)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("shardLadder(%d) = %v, want %v", c.max, got, c.want)
		}
	}
}

// TestShardedEngineRegistry: "-xN" names resolve to sharded variants whose
// batch results match the unsharded engine.
func TestShardedEngineRegistry(t *testing.T) {
	e, ok := engineByName("CuckooTrie-x4")
	if !ok {
		t.Fatal("CuckooTrie-x4 not resolved")
	}
	if e.Name != "CuckooTrie-x4" || !e.Concurrent {
		t.Fatalf("resolved engine = %+v", e)
	}
	if _, ok := engineByName("Nope-x4"); ok {
		t.Fatal("Nope-x4 resolved")
	}
	if _, ok := engineByName("CuckooTrie-xz"); ok {
		t.Fatal("CuckooTrie-xz resolved")
	}
	// Non-power-of-two requests are named for the shard count actually built.
	if e3, ok := engineByName("CuckooTrie-x3"); !ok || e3.Name != "CuckooTrie-x4" {
		t.Fatalf("CuckooTrie-x3 resolved to %q, want CuckooTrie-x4", e3.Name)
	}
	if got := len(ShardedEngines(2)); got != 4 {
		t.Fatalf("ShardedEngines(2) has %d engines, want the 4 concurrent ones", got)
	}
	ix := e.New(1 << 10)
	keys := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	vals := []uint64{1, 2, 3}
	if added := ix.MultiSet(keys, vals, nil); added != 3 {
		t.Fatalf("sharded MultiSet added %d", added)
	}
	got := make([]uint64, 3)
	found := make([]bool, 3)
	ix.MultiGet(keys, got, found)
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("sharded MultiGet[%d] = %d,%v", i, got[i], found[i])
		}
	}
}

// TestRoutedEngineRegistry: router-qualified "-<router>-xN" names resolve
// to sharded variants with the requested routing mode; unknown routers
// fail rather than silently falling back to hash.
func TestRoutedEngineRegistry(t *testing.T) {
	for _, router := range []string{"hash", "range", "sampled"} {
		name := "CuckooTrie-" + router + "-x4"
		e, ok := engineByName(name)
		if !ok {
			t.Fatalf("%s not resolved", name)
		}
		if e.Name != name {
			t.Fatalf("resolved name = %q, want %q", e.Name, name)
		}
		sx, ok := e.New(64).(*sharded.Index)
		if !ok {
			t.Fatalf("%s did not build a sharded index", name)
		}
		if got := sx.Router().Name(); got != router {
			t.Fatalf("%s built router %q", name, got)
		}
	}
	if _, ok := engineByName("CuckooTrie-mystery-x4"); ok {
		t.Fatal("unknown router resolved")
	}
	// Unqualified "-xN" stays hash-routed (back-compat with recorded runs).
	e, _ := engineByName("CuckooTrie-x4")
	if sx := e.New(64).(*sharded.Index); sx.Router().Name() != "hash" {
		t.Fatalf("CuckooTrie-x4 router = %q, want hash", sx.Router().Name())
	}
}

// TestJSONReports: every figure with a -json mode emits one parseable
// report carrying the banner fields (GOMAXPROCS, keys, seed) and per-cell
// rows — the contract that makes cross-machine runs diffable. Per-figure
// checks pin the axes that figure sweeps: sampled-router balance for the
// shard figures, the workload/threads axes for the YCSB grids, the mode
// axis for persist.
func TestJSONReports(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	type check func(t *testing.T, rep Report)
	wantSampled := func(t *testing.T, rep Report) {
		t.Helper()
		sampled := 0
		for _, r := range rep.Rows {
			if r.Router == "sampled" {
				sampled++
				if r.Shards != 2 || r.Balance <= 0 {
					t.Fatalf("sampled row %+v: want shards=2 and a balance figure", r)
				}
			}
		}
		if sampled == 0 {
			t.Fatal("no sampled-router rows in the report")
		}
		if rep.MaxShards != 2 {
			t.Fatalf("MaxShards = %d, want 2", rep.MaxShards)
		}
	}
	wantWorkloads := func(wls ...string) check {
		return func(t *testing.T, rep Report) {
			t.Helper()
			seen := map[string]bool{}
			for _, r := range rep.Rows {
				if r.Workload == "" || r.Threads == 0 {
					t.Fatalf("YCSB row %+v missing workload/threads axes", r)
				}
				seen[r.Workload] = true
			}
			for _, wl := range wls {
				if !seen[wl] {
					t.Fatalf("no rows for workload %s (saw %v)", wl, seen)
				}
			}
		}
	}
	// wantLatency: every row must carry the latency axes — a sane p50≤p99
	// ordering and a max at least as large as p99.9. Any figure whose
	// inner loop is instrumented gets this composed onto its check.
	wantLatency := func(inner check) check {
		return func(t *testing.T, rep Report) {
			t.Helper()
			inner(t, rep)
			for _, r := range rep.Rows {
				if r.P99us <= 0 {
					t.Fatalf("row %+v carries no latency measurement", r)
				}
				if r.P50us > r.P99us || r.P99us > r.P999us || r.P999us > r.MaxUs {
					t.Fatalf("row %+v: latency percentiles out of order", r)
				}
			}
		}
	}
	cases := map[string]struct {
		emit  func(io.Writer, Options) error
		check check
	}{
		"load":    {FigLoadJSON, wantSampled},
		"sharded": {FigShardedJSON, wantSampled},
		"fig7":    {Fig7JSON, wantLatency(wantWorkloads("LOAD", "A", "C"))},
		"fig8":    {Fig8JSON, wantWorkloads("LOAD", "A", "C")},
		"fig10":   {Fig10JSON, wantWorkloads("E")},
		"persist": {FigPersistJSON, func(t *testing.T, rep Report) {
			t.Helper()
			modes := map[string]bool{}
			balance := 0.0
			for _, r := range rep.Rows {
				modes[r.Mode] = true
				if r.Mode == "recover" && r.Engine == "CuckooTrie-sampled-x4" {
					balance = r.Balance
				}
			}
			for _, m := range persistModes {
				if !modes[m] {
					t.Fatalf("no rows for persist mode %s", m)
				}
			}
			if balance <= 0 {
				t.Fatal("sampled recovery row carries no balance (router not trained from the snapshot stream?)")
			}
			if rep.Writers != walGroupWriters {
				t.Fatalf("persist report writers banner = %d, want %d", rep.Writers, walGroupWriters)
			}
			// The per-op write cells are the ones a server would charge a
			// command; they must carry the latency axes. Bulk cells
			// (load/snapshot/recover/replay) measure whole passes and stay bare.
			for _, r := range rep.Rows {
				perOp := r.Mode == "set-mem" || strings.HasPrefix(r.Mode, "wal-")
				if perOp && r.P99us <= 0 {
					t.Fatalf("persist row %+v carries no latency measurement", r)
				}
				if !perOp && r.P99us != 0 {
					t.Fatalf("persist row %+v: bulk cell should not report per-op latency", r)
				}
			}
		}},
		"repl": {FigReplJSON, func(t *testing.T, rep Report) {
			t.Helper()
			seen := map[int]bool{}
			for _, r := range rep.Rows {
				if r.Engine != "CuckooTrie" || r.Mode != "read" {
					t.Fatalf("repl row %+v: want CuckooTrie read rows", r)
				}
				seen[r.Replicas] = true
				if r.Replicas > 0 && r.LagMS <= 0 {
					t.Fatalf("repl row %+v carries no lag measurement", r)
				}
				if r.Replicas == 0 && r.LagMS != 0 {
					t.Fatalf("repl row %+v: lag with no replicas", r)
				}
			}
			for _, n := range replCounts {
				if !seen[n] {
					t.Fatalf("no row for %d replicas (saw %v)", n, seen)
				}
			}
		}},
		"exec": {FigExecJSON, func(t *testing.T, rep Report) {
			t.Helper()
			seen := map[string]bool{}
			for _, r := range rep.Rows {
				if r.Engine != "CuckooTrie" || r.Workload == "" || r.Mops <= 0 {
					t.Fatalf("exec row %+v: want CuckooTrie rows with a workload axis and throughput", r)
				}
				seen[r.Mode+"/"+r.Workload] = true
			}
			for _, mode := range execModesSweep {
				for _, wl := range execWorkloads {
					if !seen[string(mode)+"/"+wl] {
						t.Fatalf("no row for mode %s workload %s (saw %v)", mode, wl, seen)
					}
				}
			}
		}},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			o := tiny()
			o.Keys, o.Ops, o.Shards = 2000, 2000, 2
			var buf bytes.Buffer
			if err := c.emit(&buf, o); err != nil {
				t.Fatal(err)
			}
			var rep Report
			if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
				t.Fatalf("output is not one JSON document: %v\n%s", err, buf.String())
			}
			if rep.Figure != name {
				t.Fatalf("figure = %q, want %q", rep.Figure, name)
			}
			if rep.GOMAXPROCS != runtime.GOMAXPROCS(0) || rep.Keys != 2000 || rep.Seed != 1 {
				t.Fatalf("banner fields = %+v", rep)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, r := range rep.Rows {
				if r.Mops <= 0 {
					t.Fatalf("row %+v has no throughput", r)
				}
			}
			c.check(t, rep)
		})
	}
}

// TestHeaderNamesEnvironment: every figure banner must carry GOMAXPROCS so
// multi-core runs are attributable (PR 2's 1-core sharded numbers were
// ambiguous without it).
func TestHeaderNamesEnvironment(t *testing.T) {
	var buf bytes.Buffer
	header(&buf, "t", "p")
	want := fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("header output missing %q:\n%s", want, buf.String())
	}
}

func atofOr(s string, def float64) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return v
}
