package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns options small enough for CI smoke runs.
func tiny() Options { return Options{Keys: 5000, Ops: 5000, Threads: 2, Seed: 1} }

func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	cases := []struct {
		name string
		run  func(o Options, buf *bytes.Buffer)
		want []string
	}{
		{"table1", func(o Options, b *bytes.Buffer) { Table1(b, o) }, []string{"rand-8", "az", "reddit"}},
		{"fig2", func(o Options, b *bytes.Buffer) { Fig2(b, o) }, []string{"CuckooTrie", "STX", "eff.lat"}},
		{"fig9", func(o Options, b *bytes.Buffer) { Fig9(b, o) }, []string{"CuckooTrie", "Wormhole"}},
		{"fig11", func(o Options, b *bytes.Buffer) { Fig11(b, o) }, []string{"CuckooTrie (resize)", "HOT"}},
		{"fig12", func(o Options, b *bytes.Buffer) { Fig12(b, o) }, []string{"MlpIndex", "bytes/key"}},
		{"table3", func(o Options, b *bytes.Buffer) { Table3(b, o) }, []string{"DRAM", "UPI"}},
		{"ablation", func(o Options, b *bytes.Buffer) { Ablation(b, o) }, []string{"nodes/key", "D=5"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			c.run(tiny(), &buf)
			out := buf.String()
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Fatalf("%s output missing %q:\n%s", c.name, w, out)
				}
			}
		})
	}
}

func TestFig2Shape(t *testing.T) {
	// The reproduction target: the Cuckoo Trie's effective DRAM latency must
	// be well below the serial indexes' (the paper reports ~3x).
	var buf bytes.Buffer
	o := Options{Keys: 30000, Ops: 10000, Threads: 1, Seed: 1}
	Fig2(&buf, o)
	var ctEff, artEff float64
	for _, line := range strings.Split(buf.String(), "\n") {
		f := strings.Fields(line)
		if len(f) < 6 {
			continue
		}
		switch f[0] {
		case "CuckooTrie":
			ctEff = atofOr(f[5], 0)
		case "ARTOLC":
			artEff = atofOr(f[5], 0)
		}
	}
	if ctEff <= 0 || artEff <= 0 {
		t.Fatalf("could not parse Fig2 output:\n%s", buf.String())
	}
	if ctEff*1.5 > artEff {
		t.Fatalf("effective latency gap too small: CT %.1f vs ART %.1f", ctEff, artEff)
	}
}

func atofOr(s string, def float64) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return v
}
