package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/dataset"
)

// MultiGetBatchSizes are the batch sizes of the batched-lookup experiment.
var MultiGetBatchSizes = []int{1, 8, 64}

// MultiGetBench measures batched point-lookup throughput (Mops/s) for every
// engine at batch sizes 1/8/64. This is the paper's MLP argument (§4.4)
// generalized across keys: the Cuckoo Trie's MultiGet stages the hash
// ladders and bucket addresses of a whole batch before resolving any key, so
// its independent DRAM misses overlap, while pointer-chasing engines gain
// nothing from batching (their fallback is a plain loop). The batch=1 column
// doubles as a sanity baseline: it must track single-Get throughput.
func MultiGetBench(w io.Writer, o Options) {
	o.Fill()
	header(w, "MultiGet: batched lookup throughput (Mops/s)",
		"cross-key MLP; CuckooTrie gains with batch size, serial engines stay flat")

	engines := append([]Engine{}, Engines()...)
	if mlp, ok := engineByName("MlpIndex"); ok {
		engines = append(engines, mlp)
	}
	if sl, ok := engineByName("SkipList"); ok {
		engines = append(engines, sl)
	}

	ks := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	fmt.Fprintf(w, "\n%-14s", "")
	for _, bs := range MultiGetBatchSizes {
		fmt.Fprintf(w, "%10s", fmt.Sprintf("batch=%d", bs))
	}
	fmt.Fprintln(w)
	for _, e := range engines {
		ix := load(e, ks, len(ks))
		fmt.Fprintf(w, "%-14s", e.Name)
		for _, bs := range MultiGetBatchSizes {
			fmt.Fprintf(w, "%10.3f", runMultiGet(ix, ks, o.Ops, bs, o.Seed))
		}
		fmt.Fprintln(w)
	}
}

// runMultiGet issues ops random lookups in batches of size bs and returns
// Mops/s. Every batch is verified to have found all its (present) keys so a
// broken batch path cannot masquerade as a fast one.
func runMultiGet(ix interface {
	MultiGet(keys [][]byte, vals []uint64, found []bool)
	Name() string
}, ks [][]byte, ops, bs int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	batch := make([][]byte, bs)
	vals := make([]uint64, bs)
	found := make([]bool, bs)
	done := 0
	start := time.Now()
	for done < ops {
		for j := 0; j < bs; j++ {
			batch[j] = ks[rng.Intn(len(ks))]
		}
		ix.MultiGet(batch, vals, found)
		for j := 0; j < bs; j++ {
			if !found[j] {
				panic(fmt.Sprintf("%s: MultiGet missed a loaded key", ix.Name()))
			}
		}
		done += bs
	}
	return mops(done, time.Since(start))
}
