package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/miniredis"
	"repro/internal/persist"
)

// replCounts is the repl figure's replica-count sweep: the primary alone,
// then the primary plus 1, 2 and 4 WAL-shipped read replicas.
var replCounts = []int{0, 1, 2, 4}

// replLagBurst is the write burst behind the lag column: this many fresh
// ZADDs through the primary, then WAIT until every replica has applied
// them. Fresh keys force one WAL record each — an update burst could be
// absorbed by the trie without measuring the shipping path.
const replLagBurst = 1000

// replSyncTimeout bounds how long a newly attached replica may take to
// finish its full sync before the figure gives up.
const replSyncTimeout = 60 * time.Second

// replReport measures the replication subsystem: pipelined ZSCORE
// throughput with the reads spread round-robin across the primary and N
// memory-only replicas, plus the replication lag of a write burst (time
// from the last write's reply on the primary until WAIT reports every
// replica has applied it). Each serial server is single-core-bound, so on
// a multi-core host the read rows scale with the node count; on
// GOMAXPROCS=1 the sweep instead bounds the replication overhead (the
// report banner records which run this was).
func replReport(o Options) Report {
	o.Fill()
	rep := newReport("repl", o)
	rep.MaxShards = 1 // replication fans out whole keyspaces, not shards

	keys := minInt(o.Keys, 50_000) // RESP round trips dominate; keep it snappy
	ops := minInt(o.Ops, 4*keys)
	e, _ := engineByName("CuckooTrie")
	ks := datasetKeys(dataset.Rand8, keys, o.Seed)
	vals := valsFor(ks)

	dir, err := os.MkdirTemp("", "ctbench-repl-*")
	if err != nil {
		panic(fmt.Sprintf("repl figure: %v", err))
	}
	defer os.RemoveAll(dir)

	// Persistent serial primary: replication ships the WAL, so the primary
	// must have one. FsyncNo keeps disk flushes out of the lag column.
	prim := miniredis.NewServer(e.New, keys, true)
	if _, err := prim.EnablePersistenceWithOptions(dir, miniredis.PersistOptions{Policy: persist.FsyncNo}); err != nil {
		panic(fmt.Sprintf("repl figure: enable persistence: %v", err))
	}
	if _, err := prim.Preload("bench", ks, vals); err != nil {
		panic(fmt.Sprintf("repl figure: preload: %v", err))
	}
	paddr, err := prim.Listen("127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("repl figure: %v", err))
	}
	defer func() {
		if err := prim.Close(); err != nil {
			panic(fmt.Sprintf("repl figure: close primary: %v", err))
		}
	}()

	pc, err := miniredis.Dial(paddr)
	if err != nil {
		panic(fmt.Sprintf("repl figure: %v", err))
	}
	defer pc.Close()

	var replicas []*miniredis.Server
	defer func() {
		for _, r := range replicas {
			//ctvet:ignore memory-only replica (no WAL): Close has nothing durable to flush
			r.Close()
		}
	}()
	addrs := []string{paddr}

	for round, n := range replCounts {
		// Grow the replica set to n and wait for each newcomer's sync: a
		// replica serving reads before its snapshot lands would inflate
		// the throughput column with empty-keyspace misses.
		want := replDBSize(pc)
		for len(replicas) < n {
			rs := miniredis.NewServer(e.New, keys, true)
			raddr, err := rs.Listen("127.0.0.1:0")
			if err != nil {
				panic(fmt.Sprintf("repl figure: replica listen: %v", err))
			}
			if _, err := rs.ReplicaOf(paddr, 0); err != nil {
				panic(fmt.Sprintf("repl figure: attach replica: %v", err))
			}
			replicas = append(replicas, rs)
			addrs = append(addrs, raddr)
			replWaitSynced(raddr, want)
		}

		mopsRead, lat := replReadMops(addrs, ks, ops, o.Threads, o.Seed)
		lag := 0.0
		if n > 0 {
			lag = replLagMS(pc, n, round)
		}
		row := Row{
			Engine:   e.Name,
			Dataset:  string(dataset.Rand8),
			Mode:     "read",
			Shards:   1,
			Threads:  o.Threads,
			Replicas: n,
			Mops:     mopsRead,
			LagMS:    lag,
		}
		applyLat(&row, lat)
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// replDBSize reads DBSIZE through a client.
func replDBSize(c *miniredis.Client) int64 {
	v, err := c.Do([]byte("DBSIZE"))
	if err != nil {
		panic(fmt.Sprintf("repl figure: DBSIZE: %v", err))
	}
	n, ok := v.(int64)
	if !ok {
		panic(fmt.Sprintf("repl figure: DBSIZE reply %T", v))
	}
	return n
}

// replWaitSynced polls a replica until its keyspace holds at least want
// keys — the signal that its initial sync (snapshot + WAL tail) landed.
func replWaitSynced(addr string, want int64) {
	cl, err := miniredis.Dial(addr)
	if err != nil {
		panic(fmt.Sprintf("repl figure: dial replica: %v", err))
	}
	defer cl.Close()
	deadline := time.Now().Add(replSyncTimeout)
	for replDBSize(cl) < want {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("repl figure: replica %s stuck below %d keys after %v", addr, want, replSyncTimeout))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// replReadMops measures pipelined ZSCORE throughput with threads client
// connections spread round-robin across the given nodes (primary first).
// Throughput is total ops over the slowest client's wall time, matching
// the other figures' multithreaded convention. Every client records each
// pipeline's round trip into one shared (lock-free) histogram, so the
// latency columns see all nodes, not just the fastest.
func replReadMops(addrs []string, ks [][]byte, ops, threads int, seed int64) (float64, latCell) {
	per := ops / threads
	if per == 0 {
		per = 1
	}
	h := metrics.New()
	done := make(chan time.Duration, threads)
	for t := 0; t < threads; t++ {
		go func(t int) {
			cl, err := miniredis.Dial(addrs[t%len(addrs)])
			if err != nil {
				panic(fmt.Sprintf("repl figure: dial: %v", err))
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(seed + int64(t)))
			set := []byte("bench")
			var pipe [][][]byte
			start := time.Now()
			for i := 0; i < per; i++ {
				pipe = append(pipe, [][]byte{[]byte("ZSCORE"), set, ks[rng.Intn(len(ks))]})
				if len(pipe) >= 64 {
					rtt := time.Now()
					if _, err := cl.Pipeline(pipe); err != nil {
						panic(fmt.Sprintf("repl figure: read pipeline: %v", err))
					}
					h.RecordDuration(int64(time.Since(rtt)))
					pipe = pipe[:0]
				}
			}
			if len(pipe) > 0 {
				rtt := time.Now()
				if _, err := cl.Pipeline(pipe); err != nil {
					panic(fmt.Sprintf("repl figure: read pipeline: %v", err))
				}
				h.RecordDuration(int64(time.Since(rtt)))
			}
			done <- time.Since(start)
		}(t)
	}
	var maxDur time.Duration
	for t := 0; t < threads; t++ {
		if d := <-done; d > maxDur {
			maxDur = d
		}
	}
	return mops(per*threads, maxDur), latFromSnapshot(h.Snapshot(), seed)
}

// replLagMS writes a burst of fresh keys through the primary, then times
// how long WAIT n takes to report every replica has applied it. The clock
// starts after the burst's replies: what is measured is shipping + apply +
// ack, not the primary's own write path.
func replLagMS(pc *miniredis.Client, n, round int) float64 {
	set := []byte("bench")
	var pipe [][][]byte
	for i := 0; i < replLagBurst; i++ {
		key := []byte(fmt.Sprintf("lag-%d-%06d", round, i))
		pipe = append(pipe, [][]byte{[]byte("ZADD"), set, key, []byte(fmt.Sprint(i))})
		if len(pipe) >= 128 {
			if _, err := pc.Pipeline(pipe); err != nil {
				panic(fmt.Sprintf("repl figure: lag burst: %v", err))
			}
			pipe = pipe[:0]
		}
	}
	if len(pipe) > 0 {
		if _, err := pc.Pipeline(pipe); err != nil {
			panic(fmt.Sprintf("repl figure: lag burst: %v", err))
		}
	}
	start := time.Now()
	v, err := pc.Do([]byte("WAIT"), []byte(fmt.Sprint(n)), []byte("60000"))
	if err != nil {
		panic(fmt.Sprintf("repl figure: WAIT: %v", err))
	}
	if acked, ok := v.(int64); !ok || acked < int64(n) {
		panic(fmt.Sprintf("repl figure: WAIT %d returned %v", n, v))
	}
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// FigRepl renders the replication figure: pipelined read throughput with
// the reads spread across the primary plus 0/1/2/4 WAL-shipped replicas,
// and the lag column — how long a 1000-write burst takes to be applied and
// acked by every replica (the WAIT round trip). Serial servers are
// single-core-bound, so read rows scale with node count on multi-core
// hosts; a GOMAXPROCS=1 run bounds replication overhead instead.
func FigRepl(w io.Writer, o Options) {
	o.Fill()
	rep := replReport(o)
	header(w, "Repl: read throughput vs WAL-shipped replica count (Mops/s)",
		"read scaling via replicas; lag = write burst shipped + applied + acked (WAIT)")
	rows := rowIndex(rep)
	fmt.Fprintf(w, "\n%-22s", "replicas")
	for _, n := range replCounts {
		fmt.Fprintf(w, "%14d", n)
	}
	fmt.Fprintf(w, "\n%-22s", "read Mops/s")
	for _, n := range replCounts {
		r := rows[Row{Engine: "CuckooTrie", Dataset: string(dataset.Rand8), Mode: "read",
			Shards: 1, Threads: o.Threads, Replicas: n}.axes()]
		fmt.Fprintf(w, "%14.3f", r.Mops)
	}
	fmt.Fprintf(w, "\n%-22s", "burst lag ms")
	for _, n := range replCounts {
		if n == 0 {
			fmt.Fprintf(w, "%14s", "-")
			continue
		}
		r := rows[Row{Engine: "CuckooTrie", Dataset: string(dataset.Rand8), Mode: "read",
			Shards: 1, Threads: o.Threads, Replicas: n}.axes()]
		fmt.Fprintf(w, "%14.3f", r.LagMS)
	}
	fmt.Fprintf(w, "\n%-22s", "read RTT µs")
	for _, n := range replCounts {
		r := rows[Row{Engine: "CuckooTrie", Dataset: string(dataset.Rand8), Mode: "read",
			Shards: 1, Threads: o.Threads, Replicas: n}.axes()]
		fmt.Fprintf(w, " %13s", latCol(r))
	}
	fmt.Fprintf(w, "\n(lag: %d fresh ZADDs through the primary, then WAIT <replicas>; clock starts after the burst's replies)\n", replLagBurst)
	fmt.Fprintf(w, "(read RTT: per 64-op ZSCORE pipeline round trip, p50/p99/p999 ± p99 CI)\n")
}

// FigReplJSON is FigRepl's -json mode: the same measurements as one JSON
// report for machine diffing across runs.
func FigReplJSON(w io.Writer, o Options) error {
	return replReport(o).WriteJSON(w)
}
