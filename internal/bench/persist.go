package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/persist"
)

// persistModes are the persist figure's measurement modes, in presentation
// order: the memory-only ingest baseline, snapshot write and bulk-load
// recovery (keys/s through the cursor serializer and the partitioned
// loader), the per-op Set baseline, the same Set stream with a WAL append
// under each fsync policy, and WAL-only replay recovery.
var persistModes = []string{
	"load-mem", "snapshot", "recover",
	"set-mem", "wal-no", "wal-everysec", "wal-always", "wal-group", "wal-async", "replay",
}

// walAlwaysOpsCap bounds the fsync-per-op cell: one fsync per write is the
// point being measured, and a few hundred of them already average it out.
// The group/async cells take no cap — coalescing the fsync is exactly what
// makes the full op count affordable.
const walAlwaysOpsCap = 1000

// walGroupWriters/walGroupPipeline shape the group-commit cells: 8
// concurrent writers each parking on 64-deep pipelines — the shape the
// mini-Redis ack barrier produces under pipelined RESP load, and the
// writer count the ≥10×-over-wal-always target is defined against.
const (
	walGroupWriters  = 8
	walGroupPipeline = 64
)

// persistEngines is the figure's lineup: the plain Cuckoo Trie, and its
// 4-shard sampled-routed variant — whose recovery cell exercises exactly
// the ROADMAP path of an untrained router learning its boundaries from the
// snapshot stream (the recovered cell's balance column proves it).
func persistEngines() []Engine {
	ct, _ := engineByName("CuckooTrie")
	se, _ := ShardedEngineRouted(ct, 4, "sampled")
	return []Engine{ct, se}
}

// persistReport measures the durability subsystem against the memory-only
// baseline on rand-8: what ingest, snapshot, recovery and the write-path
// WAL each cost. One measurement path feeds the text table and -json.
func persistReport(o Options) Report {
	o.Fill()
	rep := newReport("persist", o)
	rep.MaxShards = 4 // the sampled variant's fixed shard count
	rep.Writers = walGroupWriters

	ks := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	vals := valsFor(ks)
	nops := minInt(o.Ops, len(ks))

	for _, e := range persistEngines() {
		dir, err := os.MkdirTemp("", "ctbench-persist-*")
		if err != nil {
			panic(fmt.Sprintf("persist figure: %v", err))
		}
		row := func(mode string, ops int, d time.Duration, balance float64, lat latCell) {
			r := Row{
				Engine:  e.Name,
				Dataset: string(dataset.Rand8),
				Mode:    mode,
				Shards:  1,
				Mops:    mops(ops, d),
				Balance: balance,
			}
			applyLat(&r, lat)
			rep.Rows = append(rep.Rows, r)
		}

		// Memory-only bulk load: the ingest baseline.
		ix := e.New(len(ks))
		start := time.Now()
		if _, err := index.BulkLoad(ix, ks, vals); err != nil {
			panic(fmt.Sprintf("%s load: %v", e.Name, err))
		}
		row("load-mem", len(ks), time.Since(start), 0, latCell{})

		// Snapshot write: the loaded index through its cursor to disk.
		start = time.Now()
		if _, err := persist.SaveIndex(dir, 0, ix); err != nil {
			panic(fmt.Sprintf("%s snapshot: %v", e.Name, err))
		}
		row("snapshot", len(ks), time.Since(start), 0, latCell{})

		// Recovery: snapshot bulk-loaded into a fresh index — for the
		// sampled variant the router trains from this very stream, and the
		// balance column records how well.
		start = time.Now()
		rec, _, err := persist.RecoverIndex(dir, e.New)
		if err != nil {
			panic(fmt.Sprintf("%s recover: %v", e.Name, err))
		}
		row("recover", len(ks), time.Since(start), balanceOf(rec), latCell{})

		// Per-op Set baseline, then Set+WAL under each fsync policy. Each
		// iteration (Set, plus the WAL append when one is wired in) is one
		// latency sample — the write path a serial server would charge one
		// command.
		setLoop := func(wal *persist.WAL, n int) (time.Duration, latCell) {
			fresh := e.New(n)
			h := metrics.New()
			start := time.Now()
			for i := 0; i < n; i++ {
				opStart := time.Now()
				if _, err := fresh.Set(ks[i], vals[i]); err != nil {
					panic(fmt.Sprintf("%s set: %v", e.Name, err))
				}
				if wal != nil {
					if _, err := wal.Append(persist.OpSet, "", ks[i], vals[i]); err != nil {
						panic(fmt.Sprintf("%s wal append: %v", e.Name, err))
					}
				}
				h.RecordDuration(int64(time.Since(opStart)))
			}
			return time.Since(start), latFromSnapshot(h.Snapshot(), o.Seed)
		}
		d, lat := setLoop(nil, nops)
		row("set-mem", nops, d, 0, lat)

		// Group-commit cells: walGroupWriters concurrent writers, each
		// applying+logging a pipeline under a shared mutex (engines need not
		// be concurrent-safe; the real server orders apply+log the same way)
		// and then parking on the pipeline's last LSN (group) or acking
		// immediately (async). The writers share the syncer's coalesced
		// fsyncs, which is the entire measurement.
		// Each writer's pipeline — lock, apply+append 64 ops, then park on
		// Commit (group) or ack immediately (async) — is one latency
		// sample: the unit a pipelined RESP client would wait on.
		groupLoop := func(pol persist.FsyncPolicy, n int) (time.Duration, latCell) {
			walDir, err := os.MkdirTemp("", "ctbench-wal-*")
			if err != nil {
				panic(fmt.Sprintf("persist figure: %v", err))
			}
			defer os.RemoveAll(walDir)
			wal, err := persist.OpenWAL(walDir, persist.WALOptions{Policy: pol})
			if err != nil {
				panic(fmt.Sprintf("%s wal open: %v", e.Name, err))
			}
			fresh := e.New(n)
			h := metrics.New()
			var setMu sync.Mutex
			var wg sync.WaitGroup
			per := n / walGroupWriters
			start := time.Now()
			for g := 0; g < walGroupWriters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					lo, hi := g*per, (g+1)*per
					if g == walGroupWriters-1 {
						hi = n
					}
					for i := lo; i < hi; {
						end := minInt(i+walGroupPipeline, hi)
						var last uint64
						pipeStart := time.Now()
						setMu.Lock()
						for ; i < end; i++ {
							if _, err := fresh.Set(ks[i], vals[i]); err != nil {
								panic(fmt.Sprintf("%s set: %v", e.Name, err))
							}
							if last, err = wal.Append(persist.OpSet, "", ks[i], vals[i]); err != nil {
								panic(fmt.Sprintf("%s wal append: %v", e.Name, err))
							}
						}
						setMu.Unlock()
						if pol == persist.FsyncGroup {
							if err := wal.Commit(last); err != nil {
								panic(fmt.Sprintf("%s wal commit: %v", e.Name, err))
							}
						}
						h.RecordDuration(int64(time.Since(pipeStart)))
					}
				}(g)
			}
			wg.Wait()
			d := time.Since(start)
			if err := wal.Close(); err != nil {
				panic(fmt.Sprintf("%s wal close: %v", e.Name, err))
			}
			return d, latFromSnapshot(h.Snapshot(), o.Seed)
		}

		var replayDir string
		for _, pol := range []persist.FsyncPolicy{persist.FsyncNo, persist.FsyncEverySec, persist.FsyncAlways} {
			n := nops
			if pol == persist.FsyncAlways {
				n = minInt(n, walAlwaysOpsCap)
			}
			walDir, err := os.MkdirTemp("", "ctbench-wal-*")
			if err != nil {
				panic(fmt.Sprintf("persist figure: %v", err))
			}
			wal, err := persist.OpenWAL(walDir, persist.WALOptions{Policy: pol})
			if err != nil {
				panic(fmt.Sprintf("%s wal open: %v", e.Name, err))
			}
			d, lat := setLoop(wal, n)
			if err := wal.Close(); err != nil {
				panic(fmt.Sprintf("%s wal close: %v", e.Name, err))
			}
			row("wal-"+pol.String(), n, d, 0, lat)
			if pol == persist.FsyncNo {
				replayDir = walDir // reuse its records for the replay cell
			} else {
				os.RemoveAll(walDir)
			}
		}
		d, lat = groupLoop(persist.FsyncGroup, nops)
		row("wal-group", nops, d, 0, lat)
		d, lat = groupLoop(persist.FsyncAsync, nops)
		row("wal-async", nops, d, 0, lat)

		// WAL-only recovery: replay throughput with no snapshot to seed.
		start = time.Now()
		replayed, _, err := persist.RecoverIndex(replayDir, e.New)
		if err != nil {
			panic(fmt.Sprintf("%s replay: %v", e.Name, err))
		}
		if replayed.Len() == 0 {
			panic("persist figure: replay recovered nothing")
		}
		row("replay", nops, time.Since(start), 0, latCell{})

		os.RemoveAll(replayDir)
		os.RemoveAll(dir)
	}
	return rep
}

// FigPersist renders the durability figure: Mops/s per mode (columns) and
// engine (rows). load-mem vs snapshot/recover/replay is the
// serialize-and-rebuild cost of the durable store; set-mem vs the wal-*
// columns is the write-path WAL overhead under each fsync policy (the
// wal-always column pays one fsync per op and is measured over at most
// 1000 ops). The recover cell of the sampled-sharded engine trains its
// router boundaries from the snapshot stream; the balance footer shows the
// resulting max/mean shard load.
func FigPersist(w io.Writer, o Options) {
	o.Fill()
	rep := persistReport(o)
	header(w, "Persist: snapshot + WAL subsystem throughput by mode (Mops/s)",
		"durable serving; recovery = bulk load of the snapshot stream + WAL tail replay")
	rows := rowIndex(rep)
	fmt.Fprintf(w, "\n%-22s", "")
	for _, m := range persistModes {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)
	for _, e := range persistEngines() {
		fmt.Fprintf(w, "%-22s", e.Name)
		for _, m := range persistModes {
			r := rows[Row{Engine: e.Name, Dataset: string(dataset.Rand8), Mode: m, Shards: 1}.axes()]
			fmt.Fprintf(w, "%14.3f", r.Mops)
		}
		fmt.Fprintln(w)
	}
	for _, e := range persistEngines() {
		r := rows[Row{Engine: e.Name, Dataset: string(dataset.Rand8), Mode: "recover", Shards: 1}.axes()]
		if r.Balance > 0 {
			fmt.Fprintf(w, "%s recovered balance: %.2f max/mean shard keys (boundaries trained from the snapshot stream)\n",
				e.Name, r.Balance)
		}
	}
	fmt.Fprintf(w, "\n%-22s latency µs (p50/p99/p999 ± p99 CI) per write-path cell:\n", "")
	for _, e := range persistEngines() {
		fmt.Fprintf(w, "%-22s", e.Name)
		for _, m := range persistModes {
			r := rows[Row{Engine: e.Name, Dataset: string(dataset.Rand8), Mode: m, Shards: 1}.axes()]
			fmt.Fprintf(w, " %21s", latCol(r))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(wal-always measured over ≤%d ops: one fsync per op is the cost under test)\n", walAlwaysOpsCap)
	fmt.Fprintf(w, "(wal-group/wal-async: %d concurrent writers, %d-deep pipelines, full op count — the coalesced fsync is the win under test)\n",
		walGroupWriters, walGroupPipeline)
	fmt.Fprintf(w, "(latency: set-mem/wal-no/everysec/always per op; wal-group/wal-async per %d-op pipeline incl. the Commit park)\n",
		walGroupPipeline)
}

// FigPersistJSON is FigPersist's -json mode: the same measurements as one
// JSON report for machine diffing across runs.
func FigPersistJSON(w io.Writer, o Options) error {
	return persistReport(o).WriteJSON(w)
}
