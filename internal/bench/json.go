package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/index"
	"repro/internal/sharded"
)

// Report is the machine-readable form of a figure: the banner fields that
// make a run attributable (GOMAXPROCS above all — a 1-core container's
// sharded numbers only bound scatter overhead) plus one Row per measured
// cell. Two Reports from different machines diff cleanly where the text
// tables (padded columns, interleaved banners) do not.
type Report struct {
	Figure     string `json:"figure"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Keys       int    `json:"keys"`
	Ops        int    `json:"ops"`
	Seed       int64  `json:"seed"`
	MaxShards  int    `json:"max_shards,omitempty"`
	// Writers is the concurrent pipelined-writer count behind the persist
	// figure's group-commit cells (wal-group/wal-async): the coalescing win
	// only exists relative to how many writers share each fsync.
	Writers int   `json:"writers,omitempty"`
	Rows    []Row `json:"rows"`
}

// Row is one measured cell: which engine, on which dataset, under which
// workload, routing mode, shard count, thread count and measurement mode,
// at what throughput. Balance is the loaded index's max/mean per-shard
// key-count ratio (1.0 = perfectly even; the shard count = everything on
// one hot shard); zero when the cell is unsharded or balance was not
// measured. Workload/Threads are set by the YCSB figures, Mode by the
// persist figure ("load-mem", "snapshot", "recover", ...); Replicas and
// LagMS by the repl figure (read-replica count behind the measured
// throughput, and the WAIT-measured lag of a write burst reaching every
// replica). Axes a figure does not sweep are omitted.
type Row struct {
	Engine   string  `json:"engine"`
	Dataset  string  `json:"dataset,omitempty"`
	Workload string  `json:"workload,omitempty"`
	Router   string  `json:"router,omitempty"`
	Mode     string  `json:"mode,omitempty"`
	Shards   int     `json:"shards"`
	Threads  int     `json:"threads,omitempty"`
	Replicas int     `json:"replicas,omitempty"`
	Mops     float64 `json:"mops"`
	Balance  float64 `json:"balance_max_mean,omitempty"`
	LagMS    float64 `json:"lag_ms,omitempty"`

	// Latency axes (µs), measured per op for the YCSB/persist set paths
	// and per pipeline for the RESP figures (exec/repl) — see each
	// figure's footer for the unit it measured. P99CIus is the half-width
	// of a bootstrap-resampled 95% confidence interval around p99; CVPct
	// is the coefficient of variation of per-timeslice throughput (the
	// noisy-run flag). All are measurements, not identity: they stay out
	// of axes() and are omitted where a cell did not capture latency.
	P50us   float64 `json:"p50_us,omitempty"`
	P99us   float64 `json:"p99_us,omitempty"`
	P999us  float64 `json:"p999_us,omitempty"`
	P99CIus float64 `json:"p99_ci_us,omitempty"`
	MaxUs   float64 `json:"max_us,omitempty"`
	CVPct   float64 `json:"cv_pct,omitempty"`
}

// axes serializes every identifying axis of a row (everything but the
// measurements) — the key the text renderers use to pick cells out of a
// report.
func (r Row) axes() string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%d|%d|%d",
		r.Engine, r.Dataset, r.Workload, r.Router, r.Mode, r.Shards, r.Threads, r.Replicas)
}

// newReport stamps the environment fields every figure shares.
func newReport(figure string, o Options) Report {
	return Report{
		Figure:     figure,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Keys:       o.Keys,
		Ops:        o.Ops,
		Seed:       o.Seed,
		MaxShards:  sharded.RoundShards(o.Shards),
	}
}

// WriteJSON emits a report as one JSON document, newline-terminated.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(rep)
}

// balanceOf measures a loaded index's per-shard balance: max/mean of its
// shard key counts, 0 for unsharded engines (no shards to balance).
func balanceOf(ix index.Index) float64 {
	sx, ok := ix.(*sharded.Index)
	if !ok {
		return 0
	}
	total, max := 0, 0
	for _, l := range sx.ShardLens() {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(sx.Shards()))
}
