// Package bench regenerates every table and figure of the paper's
// evaluation (§6) on the simulated substrate: workload generation, index
// loading, throughput measurement, the memory simulator for
// counter-based results, and paper-style text output. The cmd/ctbench
// binary and the root bench_test.go both drive this package.
//
// Absolute numbers will not match the paper's Xeon testbed; the shapes —
// who wins, by roughly what factor, where the crossovers fall — are the
// reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	cuckootrie "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/mlpindex"
	"repro/internal/sharded"
	"repro/internal/skiplist"
	"repro/internal/wormhole"
	"repro/internal/ycsb"
)

// Options scales the experiments.
type Options struct {
	Keys    int // dataset size (the paper uses 71M–200M; default 200k)
	Ops     int // operations per workload measurement
	Threads int // "all cores" thread count for the multithreaded figures
	Shards  int // max shard count for the sharded scatter-gather figure
	Seed    int64
}

// Fill applies defaults.
func (o *Options) Fill() {
	if o.Keys <= 0 {
		o.Keys = 200_000
	}
	if o.Ops <= 0 {
		o.Ops = o.Keys
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Engine describes one benchmarked index.
type Engine struct {
	Name       string
	New        func(capacity int) index.Index
	Concurrent bool // included in multithreaded figures
	Fixed8     bool // supports only 8-byte keys (MlpIndex)
	Scans      bool
}

// Engines returns the paper's index lineup (§6.1).
func Engines() []Engine {
	return []Engine{
		{Name: "CuckooTrie", Concurrent: true, Scans: true,
			New: func(c int) index.Index {
				return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true})
			}},
		{Name: "ARTOLC", Concurrent: true, Scans: true,
			New: func(c int) index.Index { return art.New() }},
		{Name: "HOT", Concurrent: true, Scans: true,
			New: func(c int) index.Index { return hot.New() }},
		{Name: "Wormhole", Concurrent: true, Scans: true,
			New: func(c int) index.Index { return wormhole.New() }},
		{Name: "STX", Concurrent: false, Scans: true,
			New: func(c int) index.Index { return btree.New() }},
	}
}

// ShardedEngine wraps e's factory in an N-shard scatter-gather engine (see
// internal/sharded): point ops route by key hash, batches fan out across
// shards on a worker pool, ordered ops merge the per-shard cursors. The
// name reflects the shard count actually built (power-of-two rounded), so
// figure rows are never attributed to a count that was not measured.
func ShardedEngine(e Engine, shards int) Engine {
	se, _ := ShardedEngineRouted(e, shards, "hash")
	// The historical registry name carries no router tag for hash.
	se.Name = fmt.Sprintf("%s-x%d", e.Name, sharded.RoundShards(shards))
	return se
}

// ShardedEngineRouted is ShardedEngine with an explicit routing mode from
// sharded.RouterByName ("hash", "range", "sampled"); the engine is named
// "<base>-<router>-xN". It reports false for an unknown router.
func ShardedEngineRouted(e Engine, shards int, router string) (Engine, bool) {
	mk, ok := sharded.RouterByName(router)
	if !ok {
		return Engine{}, false
	}
	inner := e.New
	shards = sharded.RoundShards(shards)
	return Engine{
		Name:       fmt.Sprintf("%s-%s-x%d", e.Name, router, shards),
		Concurrent: e.Concurrent,
		Fixed8:     e.Fixed8,
		Scans:      e.Scans,
		New:        func(c int) index.Index { return sharded.NewWithRouter(shards, c, inner, mk) },
	}, true
}

// ShardedEngines returns N-shard variants of the concurrent engines — the
// lineup of the sharded scatter-gather figure.
func ShardedEngines(shards int) []Engine {
	var out []Engine
	for _, e := range Engines() {
		if e.Concurrent {
			out = append(out, ShardedEngine(e, shards))
		}
	}
	return out
}

// engineByName finds an engine. A "-xN" suffix (e.g. "CuckooTrie-x4")
// resolves the base engine and wraps it in an N-shard hash-routed variant;
// a router-qualified suffix (e.g. "CuckooTrie-sampled-x4") selects the
// routing mode.
func engineByName(name string) (Engine, bool) {
	if i := strings.LastIndex(name, "-x"); i > 0 {
		if shards, err := strconv.Atoi(name[i+2:]); err == nil && shards > 0 {
			base := name[:i]
			if j := strings.LastIndex(base, "-"); j > 0 {
				if _, isRouter := sharded.RouterByName(base[j+1:]); isRouter {
					if be, ok := engineByName(base[:j]); ok {
						if se, ok := ShardedEngineRouted(be, shards, base[j+1:]); ok {
							return se, true
						}
					}
					return Engine{}, false
				}
			}
			if be, ok := engineByName(base); ok {
				return ShardedEngine(be, shards), true
			}
		}
	}
	for _, e := range Engines() {
		if e.Name == name {
			return e, true
		}
	}
	switch name {
	case "MlpIndex":
		return Engine{Name: "MlpIndex", Fixed8: true,
			New: func(c int) index.Index { return mlpindex.New(c) }}, true
	case "SkipList":
		return Engine{Name: "SkipList", Scans: true,
			New: func(c int) index.Index { return skiplist.New(7) }}, true
	}
	return Engine{}, false
}

// load inserts keys[0:n] into a fresh index through the bulk-load path, so
// harness setup rides the partitioned ingest of sharded engines instead of
// serializing one Set at a time.
func load(e Engine, keys [][]byte, n int) index.Index {
	ix := e.New(n)
	if _, err := ycsb.LoadPhase(ix, keys[:n]); err != nil {
		panic(fmt.Sprintf("%s load: %v", e.Name, err))
	}
	return ix
}

// mops converts an op count and duration to millions of ops per second.
func mops(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}

// runWorkload measures a YCSB workload with the given thread count.
// keys[0:loaded] are pre-loaded; the rest feed inserts.
func runWorkload(e Engine, w ycsb.Workload, keys [][]byte, loaded, ops, threads int, seed int64) float64 {
	m, _ := measureWorkload(e, w, keys, loaded, ops, threads, seed, false)
	return m
}

// runWorkloadLat is runWorkload with per-op latency capture: the engine
// runs behind index.Tracked (one clock pair per op on top of the
// workload), a sampler watches per-timeslice throughput for the
// stability check, and the merged per-op distribution becomes the cell's
// latency columns. Figures that report tails use this path; figures that
// only compare throughput keep the untracked one.
func runWorkloadLat(e Engine, w ycsb.Workload, keys [][]byte, loaded, ops, threads int, seed int64) (float64, latCell) {
	return measureWorkload(e, w, keys, loaded, ops, threads, seed, true)
}

func measureWorkload(e Engine, w ycsb.Workload, keys [][]byte, loaded, ops, threads int, seed int64, track bool) (float64, latCell) {
	if w == ycsb.Load {
		// LOAD measures insertion of the whole dataset.
		return runLoad(e, keys, threads, seed, track)
	}
	ix := load(e, keys, loaded)
	var (
		target index.Index = ix
		tr     *index.TrackedIndex
		smp    *cvSampler
	)
	if track {
		tr = index.Tracked(ix)
		target = tr
		smp = startCVSampler(tr.TotalOps)
	}
	perThread := ops / threads
	extraPer := (len(keys) - loaded) / maxInt(threads, 1)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			// Each thread gets a disjoint slice of insert keys.
			lo := loaded + t*extraPer
			hi := lo + extraPer
			if hi > len(keys) {
				hi = len(keys)
			}
			tk := make([][]byte, 0, loaded+hi-lo)
			tk = append(tk, keys[:loaded]...)
			tk = append(tk, keys[lo:hi]...)
			g := ycsb.NewGenerator(w, ycsb.Uniform, tk, loaded, seed+int64(t))
			g.Run(target, perThread)
		}(t)
	}
	wg.Wait()
	m := mops(perThread*threads, time.Since(start))
	var lat latCell
	if track {
		lat = latFromSnapshot(tr.Snapshot(), seed)
		lat.CVPct = smp.CVPct()
	}
	return m, lat
}

func runLoad(e Engine, keys [][]byte, threads int, seed int64, track bool) (float64, latCell) {
	var (
		target index.Index = e.New(len(keys))
		tr     *index.TrackedIndex
		smp    *cvSampler
	)
	if track {
		tr = index.Tracked(target)
		target = tr
		smp = startCVSampler(tr.TotalOps)
	}
	per := len(keys) / threads
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			lo, hi := t*per, (t+1)*per
			if t == threads-1 {
				hi = len(keys)
			}
			for i := lo; i < hi; i++ {
				if _, err := target.Set(keys[i], uint64(i)); err != nil {
					panic(fmt.Sprintf("%s load: %v", e.Name, err))
				}
			}
		}(t)
	}
	wg.Wait()
	m := mops(len(keys), time.Since(start))
	var lat latCell
	if track {
		lat = latFromSnapshot(tr.Snapshot(), seed)
		lat.CVPct = smp.CVPct()
	}
	return m, lat
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// datasetKeys generates a dataset, memoized: the experiment grids request
// the same dataset for every (engine, workload) cell.
var (
	dsMu    sync.Mutex
	dsCache = map[string][][]byte{}
)

func datasetKeys(name dataset.Name, n int, seed int64) [][]byte {
	key := fmt.Sprintf("%s/%d/%d", name, n, seed)
	dsMu.Lock()
	defer dsMu.Unlock()
	if ks, ok := dsCache[key]; ok {
		return ks
	}
	ks := dataset.Generate(name, n, seed)
	dsCache[key] = ks
	return ks
}

// header prints a figure/table banner. Every banner names GOMAXPROCS so
// multi-core results stay attributable to the schedule that produced them
// (a 1-core container's sharded numbers only bound the scatter overhead);
// figures with a shard/router axis add those to their own titles.
func header(w io.Writer, title, paperRef string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
	fmt.Fprintf(w, "(paper: %s)\n", paperRef)
	fmt.Fprintf(w, "(env: GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
}
