package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	cuckootrie "repro"
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/memsim"
	"repro/internal/wormhole"
	"repro/internal/ycsb"
)

// Table1 regenerates the dataset-statistics table.
func Table1(w io.Writer, o Options) {
	o.Fill()
	header(w, "Table 1: datasets", "avg key bytes / avg unique prefix bits / #keys")
	fmt.Fprintf(w, "%-10s %14s %22s %10s\n", "dataset", "avg key bytes", "avg uniq prefix bits", "keys")
	paper := map[dataset.Name][2]float64{
		dataset.Rand8: {8, 28.9}, dataset.Rand16: {16, 28.9}, dataset.OSM: {8, 36.8},
		dataset.AZ: {35.7, 138.2}, dataset.Reddit: {10.9, 63.7},
	}
	for _, name := range dataset.All {
		ks := datasetKeys(name, o.Keys, o.Seed)
		st := dataset.Measure(name, ks)
		p := paper[name]
		fmt.Fprintf(w, "%-10s %14.1f %22.1f %10d   (paper: %.1f B, %.1f bits)\n",
			name, st.AvgKeyBytes, st.AvgUniquePrefix, st.Keys, p[0], p[1])
	}
}

// Fig2 regenerates the lookup latency breakdown: cycles (exec vs stall) and
// DRAM accesses per lookup on rand-8, via the memory simulator.
func Fig2(w io.Writer, o Options) {
	o.Fill()
	header(w, "Figure 2: cycles and DRAM accesses per lookup (rand-8)",
		"CuckooTrie total < serial indexes' stall; effective DRAM latency ≈3x lower")
	keys := datasetKeys(dataset.Rand8, o.Keys, o.Seed)

	type probeSource struct {
		name   string
		levels func(k []byte) [][]uint64
		depth  int // prefetch depth; 0 = serial
	}
	var sources []probeSource

	ct := cuckootrie.New(cuckootrie.Config{CapacityHint: o.Keys, AutoResize: true})
	a := art.New()
	h := hot.New()
	wh := wormhole.New()
	bt := btree.New()
	for i, k := range keys {
		ct.Set(k, uint64(i))
		a.Set(k, uint64(i))
		h.Set(k, uint64(i))
		wh.Set(k, uint64(i))
		bt.Set(k, uint64(i))
	}
	ctc := core(ct)
	sources = append(sources,
		probeSource{"CuckooTrie", ctc, 5},
		probeSource{"ARTOLC", a.LookupLevels, 0},
		probeSource{"HOT", h.LookupLevels, 0},
		probeSource{"Wormhole", wh.LookupLevels, 0},
		probeSource{"STX", bt.LookupLevels, 0},
	)

	fmt.Fprintf(w, "%-12s %9s %9s %9s %8s %14s\n",
		"index", "cycles", "exec", "stall", "DRAM/op", "eff.lat (cyc)")
	rng := rand.New(rand.NewSource(o.Seed + 7))
	probes := minInt(o.Ops, 20000)
	for _, src := range sources {
		sim := memsim.New(simConfig(o.Keys))
		var agg memsim.Aggregate
		// Warm the simulated cache, then measure.
		for phase := 0; phase < 2; phase++ {
			if phase == 1 {
				agg = memsim.Aggregate{}
			}
			for i := 0; i < probes/2; i++ {
				k := keys[rng.Intn(len(keys))]
				levels := src.levels(k)
				var acc []memsim.Access
				if src.depth > 0 {
					acc = memsim.PrefetchedLevels(levels, src.depth, 8)
				} else {
					acc = memsim.SerialLevels(levels, 12)
				}
				agg.Add(sim.Run(acc))
			}
		}
		cyc, exec, stall, dram := agg.PerOp()
		fmt.Fprintf(w, "%-12s %9.0f %9.0f %9.0f %8.1f %14.1f\n",
			src.name, cyc, exec, stall, dram, agg.EffectiveDRAMLatency())
	}
	fmt.Fprintln(w, "paper (200M keys): CuckooTrie ~33.5 eff. cycles vs ~100+ for serial; STX stall 4413")
}

// simConfig scales the simulated LLC so that, as in the paper (§6.1), the
// index far exceeds cache capacity: the dataset-to-cache ratio — not the
// absolute size — drives the DRAM-bound behaviour Figure 2 shows.
func simConfig(keys int) memsim.Config {
	cfg := memsim.Default()
	lines := keys / 24
	if lines < 1024 {
		lines = 1024
	}
	if lines > cfg.CacheLines {
		lines = cfg.CacheLines
	}
	cfg.CacheLines = lines
	return cfg
}

// core adapts the Cuckoo Trie's LookupLevels through the public wrapper.
func core(t *cuckootrie.Trie) func(k []byte) [][]uint64 {
	return t.LookupLevels
}

// Fig6 regenerates the lookup/insert scalability curves on rand-8.
func Fig6(w io.Writer, o Options) {
	o.Fill()
	header(w, "Figure 6: insert & lookup scalability (rand-8)",
		"speedup vs single thread; ARTOLC/CuckooTrie near-linear, Wormhole inserts saturate")
	keys := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	threadCounts := threadLadder(o.Threads)
	for _, mode := range []ycsb.Workload{ycsb.C, ycsb.Load} {
		label := "Lookup"
		if mode == ycsb.Load {
			label = "Insert"
		}
		fmt.Fprintf(w, "\n%s speedup:\n%-12s", label, "threads:")
		for _, t := range threadCounts {
			fmt.Fprintf(w, "%8d", t)
		}
		fmt.Fprintln(w)
		for _, e := range Engines() {
			if !e.Concurrent {
				continue
			}
			var base float64
			fmt.Fprintf(w, "%-12s", e.Name)
			for _, t := range threadCounts {
				th := runWorkload(e, mode, keys, o.Keys, o.Ops, t, o.Seed)
				if t == 1 {
					base = th
				}
				fmt.Fprintf(w, "%8.2f", th/base)
			}
			fmt.Fprintln(w)
		}
	}
}

// threadLadder builds Fig6's thread counts: 1, 2, 4 then doubling, PLUS max
// itself when the doubling misses it — on machines whose core count is not
// a power of two (6, 12, 20), the figure must still measure at the actual
// core count. The result is dedup-sorted.
func threadLadder(max int) []int {
	counts := []int{1, 2, 4}
	for t := 8; t <= max; t *= 2 {
		counts = append(counts, t)
	}
	if max > 0 {
		counts = append(counts, max)
	}
	sort.Ints(counts)
	out := counts[:1]
	for _, t := range counts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Fig7 regenerates single-threaded YCSB point-operation throughput.
func Fig7(w io.Writer, o Options) {
	o.Fill()
	header(w, "Figure 7: single-threaded YCSB throughput (Mops/s)",
		"CuckooTrie leads on most dataset/workload pairs except az")
	renderYCSB(w, ycsbPointReport("fig7", o, 1))
}

// Fig7JSON is Fig7's -json mode: the same measurements as one JSON report.
func Fig7JSON(w io.Writer, o Options) error {
	o.Fill()
	return ycsbPointReport("fig7", o, 1).WriteJSON(w)
}

// Fig8 regenerates multithreaded YCSB point-operation throughput.
func Fig8(w io.Writer, o Options) {
	o.Fill()
	header(w, fmt.Sprintf("Figure 8: multithreaded (%d threads) YCSB throughput (Mops/s)", o.Threads),
		"same shape as Figure 7 for scalable indexes; STX omitted")
	renderYCSB(w, ycsbPointReport("fig8", o, o.Threads))
}

// Fig8JSON is Fig8's -json mode.
func Fig8JSON(w io.Writer, o Options) error {
	o.Fill()
	return ycsbPointReport("fig8", o, o.Threads).WriteJSON(w)
}

// ycsbPointReport measures the point-operation YCSB grid (workload ×
// dataset × engine at one thread count) into a Report — the one
// measurement path behind both the text tables and -json, like the shard
// figures'.
func ycsbPointReport(figure string, o Options, threads int) Report {
	rep := newReport(figure, o)
	rep.MaxShards = 0 // no shard axis in the YCSB grids
	for _, wl := range ycsb.PointWorkloads {
		for _, e := range Engines() {
			if threads > 1 && !e.Concurrent {
				continue
			}
			for _, ds := range dataset.All {
				keys := datasetKeys(ds, o.Keys, o.Seed)
				m, lat := runWorkloadLat(e, wl, keys, loadedFor(wl, len(keys)), o.Ops, threads, o.Seed)
				row := Row{
					Engine:   e.Name,
					Dataset:  string(ds),
					Workload: string(wl),
					Threads:  threads,
					Shards:   1,
					Mops:     m,
				}
				applyLat(&row, lat)
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep
}

// renderYCSB prints a YCSB point-operation report as the familiar
// workload-by-workload tables (engines × datasets).
func renderYCSB(w io.Writer, rep Report) {
	rows := rowIndex(rep)
	threads := 0
	for _, r := range rep.Rows {
		threads = r.Threads
		break
	}
	for _, wl := range ycsb.PointWorkloads {
		fmt.Fprintf(w, "\nYCSB-%s:\n%-12s", wl, "")
		for _, ds := range dataset.All {
			fmt.Fprintf(w, "%10s", ds)
		}
		fmt.Fprintln(w)
		for _, e := range Engines() {
			if threads > 1 && !e.Concurrent {
				continue
			}
			fmt.Fprintf(w, "%-12s", e.Name)
			for _, ds := range dataset.All {
				r := rows[Row{Engine: e.Name, Dataset: string(ds), Workload: string(wl),
					Threads: threads, Shards: 1}.axes()]
				fmt.Fprintf(w, "%10.3f", r.Mops)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "latency µs (p50/p99/p999 ± p99 CI):\n")
		for _, e := range Engines() {
			if threads > 1 && !e.Concurrent {
				continue
			}
			fmt.Fprintf(w, "%-12s", e.Name)
			for _, ds := range dataset.All {
				r := rows[Row{Engine: e.Name, Dataset: string(ds), Workload: string(wl),
					Threads: threads, Shards: 1}.axes()]
				fmt.Fprintf(w, " %21s", latCol(r))
			}
			fmt.Fprintln(w)
		}
	}
	stabilityBanner(w, rep)
}

// loadedFor leaves headroom keys for insert-bearing workloads.
func loadedFor(wl ycsb.Workload, n int) int {
	switch wl {
	case ycsb.D, ycsb.E:
		return n * 9 / 10
	default:
		return n
	}
}

// Fig9 regenerates lookup throughput as a function of dataset size.
func Fig9(w io.Writer, o Options) {
	o.Fill()
	header(w, "Figure 9: single-threaded lookup throughput vs dataset size (rand-8)",
		"CuckooTrie degrades ~1.2x over 64x growth; serial trees degrade ~1.7x")
	sizes := []int{o.Keys / 16, o.Keys / 8, o.Keys / 4, o.Keys / 2, o.Keys}
	fmt.Fprintf(w, "%-12s", "keys:")
	for _, s := range sizes {
		fmt.Fprintf(w, "%10d", s)
	}
	fmt.Fprintln(w)
	all := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	for _, e := range Engines() {
		fmt.Fprintf(w, "%-12s", e.Name)
		for _, s := range sizes {
			th := runWorkload(e, ycsb.C, all[:s], s, minInt(o.Ops, s), 1, o.Seed)
			fmt.Fprintf(w, "%10.3f", th)
		}
		fmt.Fprintln(w)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fig10Report measures the scan-heavy YCSB-E grid at 1 and o.Threads
// threads into a Report.
func fig10Report(o Options) Report {
	rep := newReport("fig10", o)
	rep.MaxShards = 0
	threadCounts := []int{1}
	if o.Threads > 1 {
		threadCounts = append(threadCounts, o.Threads)
	}
	for _, threads := range threadCounts {
		for _, e := range Engines() {
			if threads > 1 && !e.Concurrent {
				continue
			}
			for _, ds := range dataset.All {
				keys := datasetKeys(ds, o.Keys, o.Seed)
				m, lat := runWorkloadLat(e, ycsb.E, keys, loadedFor(ycsb.E, len(keys)), minInt(o.Ops, 50_000), threads, o.Seed)
				row := Row{
					Engine:   e.Name,
					Dataset:  string(ds),
					Workload: string(ycsb.E),
					Threads:  threads,
					Shards:   1,
					Mops:     m,
				}
				applyLat(&row, lat)
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep
}

// Fig10 regenerates the scan-heavy YCSB-E throughput (single and multi).
func Fig10(w io.Writer, o Options) {
	o.Fill()
	header(w, "Figure 10: YCSB-E scan throughput (Mops/s)",
		"CuckooTrie below multi-key-leaf indexes when scan results are unused (§6.4)")
	rep := fig10Report(o)
	rows := rowIndex(rep)
	threadCounts := []int{1}
	if o.Threads > 1 {
		threadCounts = append(threadCounts, o.Threads)
	}
	for _, threads := range threadCounts {
		fmt.Fprintf(w, "\n%d thread(s):\n%-12s", threads, "")
		for _, ds := range dataset.All {
			fmt.Fprintf(w, "%10s", ds)
		}
		fmt.Fprintln(w)
		for _, e := range Engines() {
			if threads > 1 && !e.Concurrent {
				continue
			}
			fmt.Fprintf(w, "%-12s", e.Name)
			for _, ds := range dataset.All {
				r := rows[Row{Engine: e.Name, Dataset: string(ds), Workload: string(ycsb.E),
					Threads: threads, Shards: 1}.axes()]
				fmt.Fprintf(w, "%10.3f", r.Mops)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "latency µs (p50/p99/p999 ± p99 CI):\n")
		for _, e := range Engines() {
			if threads > 1 && !e.Concurrent {
				continue
			}
			fmt.Fprintf(w, "%-12s", e.Name)
			for _, ds := range dataset.All {
				r := rows[Row{Engine: e.Name, Dataset: string(ds), Workload: string(ycsb.E),
					Threads: threads, Shards: 1}.axes()]
				fmt.Fprintf(w, " %21s", latCol(r))
			}
			fmt.Fprintln(w)
		}
	}
	stabilityBanner(w, rep)
}

// Fig10JSON is Fig10's -json mode.
func Fig10JSON(w io.Writer, o Options) error {
	o.Fill()
	return fig10Report(o).WriteJSON(w)
}

// Fig11 regenerates memory overhead per key, including the paper's resize
// estimate ((1+K)/2 · M for K=2).
func Fig11(w io.Writer, o Options) {
	o.Fill()
	header(w, "Figure 11: memory overhead (bytes/key)",
		"CuckooTrie below ARTOLC/Wormhole (≤28%), above HOT/STX; resize est. = 1.5x table")
	fmt.Fprintf(w, "%-22s", "")
	for _, ds := range dataset.All {
		fmt.Fprintf(w, "%10s", ds)
	}
	fmt.Fprintln(w)
	for _, e := range Engines() {
		fmt.Fprintf(w, "%-22s", e.Name)
		for _, ds := range dataset.All {
			keys := datasetKeys(ds, o.Keys, o.Seed)
			ix := load(e, keys, len(keys))
			fmt.Fprintf(w, "%10.1f", float64(ix.MemoryOverheadBytes())/float64(len(keys)))
		}
		fmt.Fprintln(w)
	}
	// Paper-layout equivalent and resize estimate for the Cuckoo Trie.
	fmt.Fprintf(w, "%-22s", "CuckooTrie (paper-eq)")
	for _, ds := range dataset.All {
		keys := datasetKeys(ds, o.Keys, o.Seed)
		t := cuckootrie.New(cuckootrie.Config{CapacityHint: len(keys), AutoResize: true})
		for i, k := range keys {
			t.Set(k, uint64(i))
		}
		st := t.Stats()
		fmt.Fprintf(w, "%10.1f", st.PaperBytesPerKey)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s", "CuckooTrie (resize)")
	for _, ds := range dataset.All {
		keys := datasetKeys(ds, o.Keys, o.Seed)
		t := cuckootrie.New(cuckootrie.Config{CapacityHint: len(keys), AutoResize: true})
		for i, k := range keys {
			t.Set(k, uint64(i))
		}
		st := t.Stats()
		fmt.Fprintf(w, "%10.1f", st.PaperBytesPerKey*1.5)
	}
	fmt.Fprintln(w)
}

// Fig12 regenerates the MlpIndex comparison: insert/lookup throughput and
// memory on the 8-byte-key datasets.
func Fig12(w io.Writer, o Options) {
	o.Fill()
	header(w, "Figure 12: CuckooTrie vs MlpIndex (rand-8, osm)",
		"MlpIndex 30-80% faster; ~3x the memory")
	mlp, _ := engineByName("MlpIndex")
	ct, _ := engineByName("CuckooTrie")
	fmt.Fprintf(w, "%-12s %-8s %12s %12s %12s\n", "index", "dataset", "insert Mops", "lookup Mops", "bytes/key")
	for _, ds := range []dataset.Name{dataset.Rand8, dataset.OSM} {
		keys := datasetKeys(ds, o.Keys, o.Seed)
		for _, e := range []Engine{ct, mlp} {
			ins := runWorkload(e, ycsb.Load, keys, len(keys), o.Ops, 1, o.Seed)
			lok := runWorkload(e, ycsb.C, keys, len(keys), o.Ops, 1, o.Seed)
			ix := load(e, keys, len(keys))
			fmt.Fprintf(w, "%-12s %-8s %12.3f %12.3f %12.1f\n",
				e.Name, ds, ins, lok, float64(ix.MemoryOverheadBytes())/float64(len(keys)))
		}
	}
}

// Table3 regenerates the bandwidth analysis: DRAM and interconnect demand of
// the 28-thread YCSB-C run, versus hardware limits, derived from measured
// throughput and simulated per-op DRAM access counts.
func Table3(w io.Writer, o Options) {
	o.Fill()
	header(w, "Table 3: memory bandwidth usage (YCSB-C, rand-8, all cores)",
		"DRAM demand well under limits: 3.6x under spec, 2.15x under random-read max")
	keys := datasetKeys(dataset.Rand8, o.Keys, o.Seed)
	ct, _ := engineByName("CuckooTrie")
	th := runWorkload(ct, ycsb.C, keys, len(keys), o.Ops, o.Threads, o.Seed) // Mops/s

	// DRAM accesses per op from the simulator (cold-cache dominated).
	t := cuckootrie.New(cuckootrie.Config{CapacityHint: o.Keys, AutoResize: true})
	for i, k := range keys {
		t.Set(k, uint64(i))
	}
	sim := memsim.New(simConfig(o.Keys))
	var agg memsim.Aggregate
	rng := rand.New(rand.NewSource(o.Seed))
	for i := 0; i < minInt(o.Ops, 20000); i++ {
		k := keys[rng.Intn(len(keys))]
		agg.Add(sim.Run(memsim.PrefetchedLevels(t.LookupLevels(k), 5, 8)))
	}
	_, _, _, dramPerOp := agg.PerOp()

	opsPerSec := th * 1e6
	dramBytesPerSec := opsPerSec * dramPerOp * 64
	const specDRAM = 256e9 // 2 x 6 DDR4-2666 channels (§6.6)
	const randReadMax = specDRAM * 0.6
	const specUPI = 93e9
	upi := dramBytesPerSec * 0.5 * 1.7 // half remote + coherence overhead
	fmt.Fprintf(w, "measured throughput: %.2f Mops/s; simulated DRAM accesses/op: %.1f\n", th, dramPerOp)
	fmt.Fprintf(w, "%-10s %14s %18s %18s\n", "resource", "GB/s demand", "% of spec max", "% of rand-read max")
	fmt.Fprintf(w, "%-10s %14.2f %18.1f %18.1f\n", "DRAM",
		dramBytesPerSec/1e9, dramBytesPerSec/specDRAM*100, dramBytesPerSec/randReadMax*100)
	fmt.Fprintf(w, "%-10s %14.2f %18.1f %18s\n", "UPI", upi/1e9, upi/specUPI*100, "-")
	fmt.Fprintln(w, "paper: DRAM 71.24 GB/s = 27.8% of spec, 46.3% of rand-read; UPI 61 GB/s = 65.5%")
}

// Ablation regenerates the design-choice measurements of §4.6/§6.2:
// nodes/key, the no-leaf-list insert ablation (footnote 10), and a prefetch
// depth sweep.
func Ablation(w io.Writer, o Options) {
	o.Fill()
	header(w, "Ablations (§4.6, §6.2 fn10)", "nodes/key ≈1.25; no-list insert ≈ ARTOLC; D=5 best")
	keys := datasetKeys(dataset.Rand8, o.Keys, o.Seed)

	t := cuckootrie.New(cuckootrie.Config{CapacityHint: o.Keys, AutoResize: true})
	for i, k := range keys {
		t.Set(k, uint64(i))
	}
	st := t.Stats()
	fmt.Fprintf(w, "nodes/key on rand-8: %.3f (paper: 1.25); load factor %.2f\n", st.NodesPerKey, st.LoadFactor)

	// Insert-throughput ablation: leaf list on vs off vs ARTOLC.
	full, _ := engineByName("CuckooTrie")
	noList := Engine{Name: "CuckooTrie-nolist", Concurrent: true,
		New: func(c int) index.Index {
			return cuckootrie.New(cuckootrie.Config{CapacityHint: c, AutoResize: true, DisableLeafList: true})
		}}
	artE, _ := engineByName("ARTOLC")
	fmt.Fprintf(w, "\nLOAD throughput (Mops/s, 1 thread):\n")
	for _, e := range []Engine{full, noList, artE} {
		fmt.Fprintf(w, "  %-18s %8.3f\n", e.Name, runWorkload(e, ycsb.Load, keys, len(keys), o.Ops, 1, o.Seed))
	}

	// Prefetch-depth sweep on the simulator.
	fmt.Fprintf(w, "\nsimulated lookup cycles by prefetch depth D (rand-8):\n")
	rng := rand.New(rand.NewSource(o.Seed))
	for _, d := range []int{1, 2, 3, 5, 8, 12} {
		sim := memsim.New(simConfig(o.Keys))
		var agg memsim.Aggregate
		for i := 0; i < minInt(o.Ops, 10000); i++ {
			k := keys[rng.Intn(len(keys))]
			agg.Add(sim.Run(memsim.PrefetchedLevels(t.LookupLevels(k), d, 8)))
		}
		cyc, _, _, _ := agg.PerOp()
		fmt.Fprintf(w, "  D=%-3d %8.0f cycles/lookup\n", d, cyc)
	}
}
