package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/miniredis"
	"repro/internal/skiplist"
	"repro/internal/ycsb"
)

// Fig13 regenerates the full-system benchmark: YCSB over the mini-Redis
// sorted set with each index as the engine, over loopback TCP with
// pipelining clients (§6.8). The "Redis default" engine is the
// hashtable+skiplist pair Redis uses (our skiplist keeps a Go map alongside
// for point lookups, matching Redis's dual structure).
func Fig13(w io.Writer, o Options) {
	o.Fill()
	keys := minInt(o.Keys, 50_000) // RESP round trips dominate; keep it snappy
	ops := minInt(o.Ops, keys)
	header(w, "Figure 13: mini-Redis sorted-set throughput (Mops/s)",
		"CuckooTrie best on A-D except az; YCSB-E overlap hides leaf-list latency (§6.8)")

	engines := []Engine{}
	for _, e := range Engines() {
		engines = append(engines, e)
	}
	engines = append(engines, Engine{Name: "Redis-default", Scans: true,
		New: func(c int) index.Index { return newRedisDefault() }})

	workloads := []ycsb.Workload{ycsb.Load, ycsb.A, ycsb.C, ycsb.D, ycsb.E}
	for _, wl := range workloads {
		fmt.Fprintf(w, "\nYCSB-%s:\n%-14s", wl, "")
		for _, ds := range dataset.All {
			fmt.Fprintf(w, "%10s", ds)
		}
		fmt.Fprintln(w)
		for _, e := range engines {
			fmt.Fprintf(w, "%-14s", e.Name)
			for _, ds := range dataset.All {
				ks := datasetKeys(ds, keys, o.Seed)
				th := runRedisWorkload(e, wl, ks, ops, o.Seed)
				fmt.Fprintf(w, "%10.3f", th)
			}
			fmt.Fprintln(w)
		}
	}
}

// runRedisWorkload runs one workload through the RESP server with 4
// pipelining client connections (the paper's best-performing client count).
func runRedisWorkload(e Engine, wl ycsb.Workload, keys [][]byte, ops int, seed int64) float64 {
	srv := miniredis.NewServer(func(c int) index.Index { return e.New(c) }, len(keys), true)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	//ctvet:ignore memory-only server (no WAL): Close has nothing durable to flush
	defer srv.Close()

	loaded := len(keys)
	if wl == ycsb.D || wl == ycsb.E {
		loaded = len(keys) * 9 / 10
	}
	setName := []byte("bench")

	// Load phase (pipelined batches).
	loadClient, err := miniredis.Dial(addr)
	if err != nil {
		panic(err)
	}
	loadStart := time.Now()
	const batch = 64
	var cmds [][][]byte
	for i := 0; i < loaded; i++ {
		cmds = append(cmds, [][]byte{[]byte("ZADD"), setName, keys[i], []byte(fmt.Sprint(i))})
		if len(cmds) == batch || i == loaded-1 {
			if _, err := loadClient.Pipeline(cmds); err != nil {
				panic(err)
			}
			cmds = cmds[:0]
		}
	}
	loadDur := time.Since(loadStart)
	loadClient.Close()
	if wl == ycsb.Load {
		return mops(loaded, loadDur)
	}

	// Run phase: 4 client goroutines issuing pipelined batches.
	const clients = 4
	perClient := ops / clients
	done := make(chan time.Duration, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			cl, err := miniredis.Dial(addr)
			if err != nil {
				panic(err)
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			g := ycsb.NewGenerator(wl, ycsb.Uniform, keys, loaded, seed+int64(c))
			start := time.Now()
			var pipe [][][]byte
			flush := func() {
				if len(pipe) == 0 {
					return
				}
				if _, err := cl.Pipeline(pipe); err != nil {
					panic(err)
				}
				pipe = pipe[:0]
			}
			for i := 0; i < perClient; i++ {
				op, key, scanLen := g.Next()
				if key == nil {
					continue
				}
				switch op {
				case ycsb.OpInsert, ycsb.OpUpdate, ycsb.OpRMW:
					pipe = append(pipe, [][]byte{[]byte("ZADD"), setName, key, []byte(fmt.Sprint(rng.Intn(1 << 20)))})
				case ycsb.OpRead:
					pipe = append(pipe, [][]byte{[]byte("ZSCORE"), setName, key})
				case ycsb.OpScan:
					pipe = append(pipe, [][]byte{[]byte("ZRANGEBYLEX"), setName, key, []byte(fmt.Sprint(scanLen))})
				}
				if len(pipe) >= 16 {
					flush()
				}
			}
			flush()
			done <- time.Since(start)
		}(c)
	}
	var maxDur time.Duration
	for c := 0; c < clients; c++ {
		if d := <-done; d > maxDur {
			maxDur = d
		}
	}
	return mops(perClient*clients, maxDur)
}

// redisDefault mimics Redis's sorted set: a hash map for point lookups plus
// a skip list for ordered operations, with every key in both (§6.8).
type redisDefault struct {
	m  map[string]uint64
	sl *skiplist.List
}

func newRedisDefault() index.Index {
	return &redisDefault{m: make(map[string]uint64), sl: skiplist.New(11)}
}

func (r *redisDefault) Name() string { return "Redis-default" }
func (r *redisDefault) Len() int     { return len(r.m) }

func (r *redisDefault) Set(k []byte, v uint64) (bool, error) {
	_, existed := r.m[string(k)]
	r.m[string(k)] = v
	if _, err := r.sl.Set(k, v); err != nil {
		return false, err
	}
	return !existed, nil
}

func (r *redisDefault) Get(k []byte) (uint64, bool) {
	v, ok := r.m[string(k)]
	return v, ok
}

func (r *redisDefault) MultiGet(keys [][]byte, vals []uint64, found []bool) {
	index.FallbackMultiGet(r, keys, vals, found)
}

func (r *redisDefault) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	return index.FallbackMultiSet(r, keys, vals, errs)
}

func (r *redisDefault) NewCursor() index.Cursor { return index.NewScanCursor(r) }

func (r *redisDefault) Delete(k []byte) bool {
	if _, ok := r.m[string(k)]; !ok {
		return false
	}
	delete(r.m, string(k))
	r.sl.Delete(k)
	return true
}

func (r *redisDefault) Scan(start []byte, n int, fn func([]byte, uint64) bool) int {
	return r.sl.Scan(start, n, fn)
}

func (r *redisDefault) MemoryOverheadBytes() int64 {
	// map entry ≈ 48B + key header; both structures hold every key.
	return int64(len(r.m))*56 + r.sl.MemoryOverheadBytes()
}
