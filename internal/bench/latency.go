package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
)

// latResamples is the bootstrap resample count behind every reported
// confidence interval; enough for a stable 95% percentile interval
// without the resampling showing up in figure runtime.
const latResamples = 200

// cvInterval is the timeslice width of the throughput-stability check.
const cvInterval = 10 * time.Millisecond

// noisyCVPct is the stability threshold: a cell whose per-timeslice
// throughput varies by more than this (CV, percent) gets the figure
// banner's NOISY flag — its tail percentiles reflect interference, not
// the engine.
const noisyCVPct = 20.0

// latCell carries one cell's latency measurements in µs, in the same
// shape Row stores them.
type latCell struct {
	P50us   float64
	P99us   float64
	P999us  float64
	P99CIus float64
	MaxUs   float64
	CVPct   float64
}

func usOf(ns uint64) float64 { return float64(ns) / 1e3 }

// latFromSnapshot extracts the reported percentiles and the bootstrap CI
// half-width around p99 from a merged histogram snapshot. The seed keeps
// the resampling (and thus the emitted JSON) reproducible.
func latFromSnapshot(sn metrics.Snapshot, seed int64) latCell {
	if sn.Count() == 0 {
		return latCell{}
	}
	lo, hi := sn.QuantileCI(0.99, latResamples, seed)
	return latCell{
		P50us:   usOf(sn.Quantile(0.5)),
		P99us:   usOf(sn.Quantile(0.99)),
		P999us:  usOf(sn.Quantile(0.999)),
		P99CIus: usOf(hi-lo) / 2,
		MaxUs:   usOf(sn.Max()),
	}
}

// applyLat copies a cell's latency measurements onto its row.
func applyLat(r *Row, l latCell) {
	r.P50us, r.P99us, r.P999us = l.P50us, l.P99us, l.P999us
	r.P99CIus, r.MaxUs, r.CVPct = l.P99CIus, l.MaxUs, l.CVPct
}

// cvSampler watches a monotonically-increasing op counter on a fixed
// interval so a run's throughput can be judged for stability afterwards.
type cvSampler struct {
	stop   chan struct{}
	done   chan struct{}
	counts []uint64
}

func startCVSampler(read func() uint64) *cvSampler {
	s := &cvSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(cvInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.counts = append(s.counts, read())
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// CVPct stops the sampler and returns the coefficient of variation of
// per-timeslice throughput, in percent — 0 when the run finished before
// enough full timeslices accumulated to judge.
func (s *cvSampler) CVPct() float64 {
	close(s.stop)
	<-s.done
	deltas := make([]float64, 0, len(s.counts))
	var prev uint64
	for _, c := range s.counts {
		deltas = append(deltas, float64(c-prev))
		prev = c
	}
	cv := metrics.CV(deltas)
	if cv < 0 {
		return 0
	}
	return cv * 100
}

// fmtUs formats a µs value for a latency table cell.
func fmtUs(v float64) string {
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// latCol renders one row's latency cell as "p50/p99/p999±ci" (µs, the
// ±half-width being p99's bootstrap CI), or "-" when the cell carries no
// latency measurement.
func latCol(r Row) string {
	if r.P99us == 0 {
		return "-"
	}
	return fmt.Sprintf("%s/%s/%s±%s", fmtUs(r.P50us), fmtUs(r.P99us), fmtUs(r.P999us), fmtUs(r.P99CIus))
}

// stabilityBanner prints the figure's throughput-stability line: the
// worst per-cell CV, flagged NOISY when it crosses noisyCVPct. Figures
// whose cells ran too briefly to sample print nothing.
func stabilityBanner(w io.Writer, rep Report) {
	maxCV := 0.0
	for _, r := range rep.Rows {
		if r.CVPct > maxCV {
			maxCV = r.CVPct
		}
	}
	if maxCV == 0 {
		return
	}
	verdict := "stable"
	if maxCV > noisyCVPct {
		verdict = fmt.Sprintf("NOISY, tails untrustworthy above %.0f%%", noisyCVPct)
	}
	fmt.Fprintf(w, "(throughput stability: worst per-cell CV %.1f%% over %v slices — %s)\n",
		maxCV, cvInterval, verdict)
}
