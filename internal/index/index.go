// Package index defines the ordered-index interface implemented by the
// Cuckoo Trie and every baseline competitor, so that the YCSB workload
// engine, the mini-Redis store, and the benchmark harness can drive them
// interchangeably — mirroring the paper's evaluation setup (§6.1), where all
// indexes store pointers to key-value pairs.
package index

// Index is an ordered dictionary from byte-string keys to uint64 values.
type Index interface {
	// Set inserts or updates a key.
	Set(key []byte, value uint64) error
	// Get returns the value for key.
	Get(key []byte) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
	// Scan visits up to n keys ≥ start in ascending order; fn returning
	// false stops early. Returns the number visited.
	Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int
	// Len returns the number of stored keys.
	Len() int
	// MemoryOverheadBytes reports the index's own memory, including
	// pointers to key-value pairs but excluding the key-value bytes (§6.5).
	MemoryOverheadBytes() int64
	// Name identifies the index in benchmark output.
	Name() string
}

// Concurrent is implemented by indexes that are safe for concurrent use by
// multiple goroutines (the paper omits STX and MlpIndex from multithreaded
// runs; we do the same via this marker).
type Concurrent interface {
	Index
	ConcurrentSafe() bool
}

// IsConcurrent reports whether ix is safe for multi-goroutine use.
func IsConcurrent(ix Index) bool {
	c, ok := ix.(Concurrent)
	return ok && c.ConcurrentSafe()
}
