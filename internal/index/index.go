// Package index defines the ordered-index interface implemented by the
// Cuckoo Trie and every baseline competitor, so that the YCSB workload
// engine, the mini-Redis store, and the benchmark harness can drive them
// interchangeably — mirroring the paper's evaluation setup (§6.1), where all
// indexes store pointers to key-value pairs.
//
// The interface is batch-first (API v2): alongside the point operations it
// carries MultiGet/MultiSet, so engines whose probes are independent memory
// accesses — the Cuckoo Trie's whole design thesis — can overlap the DRAM
// misses of an entire batch instead of serializing them (§4.4, generalized
// across keys). Engines without a native batch path satisfy the interface
// with the loop-based Fallback helpers in this package.
package index

// Index is an ordered dictionary from byte-string keys to uint64 values.
type Index interface {
	// Set inserts or updates a key. added reports whether the key was newly
	// inserted (true) rather than an existing key updated (false) — the
	// distinction Redis's ZADD reply and YCSB's insert accounting need.
	Set(key []byte, value uint64) (added bool, err error)
	// Get returns the value for key.
	Get(key []byte) (uint64, bool)
	// MultiGet looks up a batch of keys. vals and found must each have at
	// least len(keys) elements; vals[i], found[i] receive the result for
	// keys[i]. MLP-aware engines overlap the independent probes of the whole
	// batch; others fall back to one Get per key.
	MultiGet(keys [][]byte, vals []uint64, found []bool)
	// MultiSet inserts or updates a batch of keys with vals[i] as the value
	// for keys[i] (vals must have at least len(keys) elements). When errs is
	// non-nil it must also have at least len(keys) elements and receives the
	// per-key error (nil on success). It returns the number of keys newly
	// added. Later keys are attempted even if earlier ones fail.
	MultiSet(keys [][]byte, vals []uint64, errs []error) (added int)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
	// Scan visits up to n keys ≥ start in ascending order; fn returning
	// false stops early. Returns the number visited.
	Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int
	// NewCursor returns a new, unpositioned cursor over the index. Position
	// it with Seek. Engines without ordered iteration return a cursor that
	// is never valid.
	NewCursor() Cursor
	// Len returns the number of stored keys.
	Len() int
	// MemoryOverheadBytes reports the index's own memory, including
	// pointers to key-value pairs but excluding the key-value bytes (§6.5).
	MemoryOverheadBytes() int64
	// Name identifies the index in benchmark output.
	Name() string
}

// Cursor pages through keys in ascending order without holding a callback
// frame, so servers can interleave iteration with other work (e.g. paginated
// scan replies). Key and Value are valid only while Valid reports true, and
// the Key slice may be reused by the next Seek/Next.
type Cursor interface {
	// Seek positions the cursor at the smallest key ≥ start (the minimum
	// key when start is nil) and reports whether such a key exists.
	Seek(start []byte) bool
	// Valid reports whether the cursor is positioned on a key.
	Valid() bool
	// Key returns the current key.
	Key() []byte
	// Value returns the current value.
	Value() uint64
	// Next advances to the next key in order, reporting whether one exists.
	Next() bool
	// Close releases cursor resources. The cursor must not be used after.
	Close()
}

// Concurrent is implemented by indexes that are safe for concurrent use by
// multiple goroutines (the paper omits STX and MlpIndex from multithreaded
// runs; we do the same via this marker).
type Concurrent interface {
	Index
	ConcurrentSafe() bool
}

// IsConcurrent reports whether ix is safe for multi-goroutine use.
func IsConcurrent(ix Index) bool {
	c, ok := ix.(Concurrent)
	return ok && c.ConcurrentSafe()
}
