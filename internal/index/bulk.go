package index

import "fmt"

// BulkLoader is implemented by indexes with a native bulk-ingest path —
// e.g. the sharded engine, which partitions the whole insert stream into
// per-shard sub-streams up front and loads them concurrently. Semantics
// match a sequence of Set calls in stream order: a key appearing twice
// ends up with its later value, and added counts only first appearances.
type BulkLoader interface {
	// BulkLoad inserts keys[i] → vals[i] for every i, returning the number
	// of keys newly added and the first error encountered. Keys after a
	// failed one are still attempted, matching MultiSet. The length
	// contract is CheckBulkLen's: vals must have at least len(keys)
	// elements, and a shorter vals is an error, not a panic — a mismatched
	// batch is caller data, not a programming invariant the loader may
	// assume.
	BulkLoad(keys [][]byte, vals []uint64) (added int, err error)
}

// ErrBulkLen reports a bulk-load batch whose vals slice is shorter than its
// keys slice. Returned (wrapped, with the observed lengths) by every
// BulkLoad path before any key is inserted.
var ErrBulkLen = fmt.Errorf("index: bulk load vals shorter than keys")

// CheckBulkLen enforces the shared bulk-load length contract: vals must
// have at least len(keys) elements (extra values are ignored). It returns
// a wrapped ErrBulkLen naming both lengths, so every implementation —
// native BulkLoaders and the fallback alike — rejects a mismatched batch
// the same way.
func CheckBulkLen(keys [][]byte, vals []uint64) error {
	if len(vals) < len(keys) {
		return fmt.Errorf("%w: %d keys, %d vals", ErrBulkLen, len(keys), len(vals))
	}
	return nil
}

// BulkLoad loads keys[i] → vals[i] into ix through its native BulkLoader
// when it has one, and through the chunked MultiSet fallback otherwise.
// This is the one entry point the YCSB LOAD phase, the bench harness, and
// the mini-Redis preload all share.
func BulkLoad(ix Index, keys [][]byte, vals []uint64) (int, error) {
	if err := CheckBulkLen(keys, vals); err != nil {
		return 0, err
	}
	if bl, ok := ix.(BulkLoader); ok {
		return bl.BulkLoad(keys, vals)
	}
	return FallbackBulkLoad(ix, keys, vals)
}

// bulkChunk is the batch size FallbackBulkLoad feeds to MultiSet: large
// enough to amortize any native batch path, small enough that the per-key
// error scratch stays cache-resident.
const bulkChunk = 4096

// FallbackBulkLoad implements BulkLoader semantics over MultiSet, in
// chunks of bulkChunk keys. Every chunk is attempted even when an earlier
// one carried an error (matching MultiSet's keep-going contract); the
// first error is returned.
func FallbackBulkLoad(ix Index, keys [][]byte, vals []uint64) (int, error) {
	if err := CheckBulkLen(keys, vals); err != nil {
		return 0, err
	}
	added := 0
	var firstErr error
	errs := make([]error, min(bulkChunk, len(keys)))
	for off := 0; off < len(keys); off += bulkChunk {
		end := min(off+bulkChunk, len(keys))
		ec := errs[:end-off]
		added += ix.MultiSet(keys[off:end], vals[off:end], ec)
		if firstErr == nil {
			for _, e := range ec {
				if e != nil {
					firstErr = e
					break
				}
			}
		}
	}
	return added, firstErr
}
