package index

// BulkLoader is implemented by indexes with a native bulk-ingest path —
// e.g. the sharded engine, which partitions the whole insert stream into
// per-shard sub-streams up front and loads them concurrently. Semantics
// match a sequence of Set calls in stream order: a key appearing twice
// ends up with its later value, and added counts only first appearances.
type BulkLoader interface {
	// BulkLoad inserts keys[i] → vals[i] for every i (vals must have at
	// least len(keys) elements), returning the number of keys newly added
	// and the first error encountered. Keys after a failed one are still
	// attempted, matching MultiSet.
	BulkLoad(keys [][]byte, vals []uint64) (added int, err error)
}

// BulkLoad loads keys[i] → vals[i] into ix through its native BulkLoader
// when it has one, and through the chunked MultiSet fallback otherwise.
// This is the one entry point the YCSB LOAD phase, the bench harness, and
// the mini-Redis preload all share.
func BulkLoad(ix Index, keys [][]byte, vals []uint64) (int, error) {
	if bl, ok := ix.(BulkLoader); ok {
		return bl.BulkLoad(keys, vals)
	}
	return FallbackBulkLoad(ix, keys, vals)
}

// bulkChunk is the batch size FallbackBulkLoad feeds to MultiSet: large
// enough to amortize any native batch path, small enough that the per-key
// error scratch stays cache-resident.
const bulkChunk = 4096

// FallbackBulkLoad implements BulkLoader semantics over MultiSet, in
// chunks of bulkChunk keys. Every chunk is attempted even when an earlier
// one carried an error (matching MultiSet's keep-going contract); the
// first error is returned.
func FallbackBulkLoad(ix Index, keys [][]byte, vals []uint64) (int, error) {
	added := 0
	var firstErr error
	errs := make([]error, min(bulkChunk, len(keys)))
	for off := 0; off < len(keys); off += bulkChunk {
		end := min(off+bulkChunk, len(keys))
		ec := errs[:end-off]
		added += ix.MultiSet(keys[off:end], vals[off:end], ec)
		if firstErr == nil {
			for _, e := range ec {
				if e != nil {
					firstErr = e
					break
				}
			}
		}
	}
	return added, firstErr
}
