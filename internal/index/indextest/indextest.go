// Package indextest provides a reusable conformance suite run against every
// index.Index implementation (Cuckoo Trie and all baselines), so that the
// benchmark harness compares functionally equivalent structures. It covers
// the full API v2 surface: point operations, the Set added-flag, batched
// MultiGet/MultiSet, callback scans, and cursors.
package indextest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
	"repro/internal/persist"
)

// Options tailor the suite to an implementation's documented limits.
type Options struct {
	// FixedKeyLen restricts generated keys to exactly this many bytes
	// (MlpIndex supports only 8-byte keys).
	FixedKeyLen int
	// NoScan skips ordered-iteration tests (MlpIndex has no scans); cursor
	// tests then only assert that the cursor is never valid.
	NoScan bool
	// NoDelete skips deletion tests.
	NoDelete bool
}

// Run executes the conformance suite. mk must return a fresh empty index
// sized for at least the given capacity.
func Run(t *testing.T, mk func(capacity int) index.Index, opts Options) {
	t.Run("Empty", func(t *testing.T) { testEmpty(t, mk, opts) })
	t.Run("SetGet", func(t *testing.T) { testSetGet(t, mk, opts) })
	t.Run("Update", func(t *testing.T) { testUpdate(t, mk, opts) })
	t.Run("SetAdded", func(t *testing.T) { testSetAdded(t, mk, opts) })
	t.Run("MultiGet", func(t *testing.T) { testMultiGet(t, mk, opts) })
	t.Run("MultiSet", func(t *testing.T) { testMultiSet(t, mk, opts) })
	t.Run("BulkLoad", func(t *testing.T) { testBulkLoad(t, mk, opts) })
	t.Run("RandomModel", func(t *testing.T) { testRandomModel(t, mk, opts) })
	t.Run("Cursor", func(t *testing.T) { testCursor(t, mk, opts) })
	if !opts.NoScan {
		t.Run("ScanOrder", func(t *testing.T) { testScanOrder(t, mk, opts) })
		t.Run("ScanBounds", func(t *testing.T) { testScanBounds(t, mk, opts) })
		t.Run("CursorOrder", func(t *testing.T) { testCursorOrder(t, mk, opts) })
		t.Run("PersistRecover", func(t *testing.T) { testPersistRecover(t, mk, opts) })
	}
	if !opts.NoDelete {
		t.Run("Delete", func(t *testing.T) { testDelete(t, mk, opts) })
	}
	t.Run("Memory", func(t *testing.T) { testMemory(t, mk, opts) })
}

func (o Options) key(rng *rand.Rand) []byte {
	n := o.FixedKeyLen
	if n == 0 {
		n = 1 + rng.Intn(20)
	}
	k := make([]byte, n)
	rng.Read(k)
	return k
}

func u64key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// mustSet is a Set that fails the test on error and returns the added flag.
func mustSet(t *testing.T, ix index.Index, k []byte, v uint64) bool {
	t.Helper()
	added, err := ix.Set(k, v)
	if err != nil {
		t.Fatalf("Set(%x): %v", k, err)
	}
	return added
}

func testEmpty(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(16)
	if ix.Len() != 0 {
		t.Fatal("fresh index not empty")
	}
	if _, ok := ix.Get(u64key(42)); ok {
		t.Fatal("Get on empty index")
	}
	// Empty-batch edge cases: must be no-ops, not panics.
	ix.MultiGet(nil, nil, nil)
	if added := ix.MultiSet(nil, nil, nil); added != 0 {
		t.Fatalf("empty MultiSet added %d", added)
	}
	// Batch ops against an empty index.
	vals := make([]uint64, 2)
	found := []bool{true, true}
	ix.MultiGet([][]byte{u64key(1), u64key(2)}, vals, found)
	if found[0] || found[1] {
		t.Fatal("MultiGet found keys in empty index")
	}
	// A cursor over an empty index is never valid.
	c := ix.NewCursor()
	if c.Valid() {
		t.Fatal("fresh cursor valid on empty index")
	}
	if c.Seek(nil) || c.Valid() {
		t.Fatal("cursor seek on empty index succeeded")
	}
	c.Close()
	if !opts.NoScan {
		n := ix.Scan(nil, 10, func([]byte, uint64) bool { return true })
		if n != 0 {
			t.Fatal("scan on empty index visited keys")
		}
	}
}

func testSetGet(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(1024)
	for i := 0; i < 500; i++ {
		if !mustSet(t, ix, u64key(uint64(i*7)), uint64(i)) {
			t.Fatalf("Set(%d) of fresh key reported update", i*7)
		}
	}
	for i := 0; i < 500; i++ {
		if v, ok := ix.Get(u64key(uint64(i * 7))); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v", i*7, v, ok)
		}
	}
	if _, ok := ix.Get(u64key(1)); ok {
		t.Fatal("found absent key")
	}
	if ix.Len() != 500 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func testUpdate(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(64)
	k := u64key(99)
	mustSet(t, ix, k, 1)
	mustSet(t, ix, k, 2)
	if v, _ := ix.Get(k); v != 2 {
		t.Fatalf("update: v = %d", v)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after update", ix.Len())
	}
}

func testSetAdded(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(256)
	k := u64key(7)
	if !mustSet(t, ix, k, 1) {
		t.Fatal("first Set: added = false")
	}
	if mustSet(t, ix, k, 2) {
		t.Fatal("second Set of same key: added = true")
	}
	if v, _ := ix.Get(k); v != 2 {
		t.Fatalf("value after update = %d", v)
	}
	// Interleave fresh keys and updates; the added flags must track exactly.
	rng := rand.New(rand.NewSource(47))
	seen := map[string]bool{}
	seen[string(k)] = true
	var pool [][]byte
	pool = append(pool, k)
	for i := 0; i < 2000; i++ {
		var kk []byte
		if rng.Intn(3) == 0 {
			kk = pool[rng.Intn(len(pool))]
		} else {
			kk = opts.key(rng)
		}
		wantAdded := !seen[string(kk)]
		if got := mustSet(t, ix, kk, uint64(i)); got != wantAdded {
			t.Fatalf("Set(%x) added = %v, want %v", kk, got, wantAdded)
		}
		if wantAdded {
			seen[string(kk)] = true
			pool = append(pool, kk)
		}
	}
	if ix.Len() != len(seen) {
		t.Fatalf("Len = %d, distinct keys %d", ix.Len(), len(seen))
	}
	if !opts.NoDelete {
		if !ix.Delete(k) {
			t.Fatal("Delete of live key failed")
		}
		if !mustSet(t, ix, k, 3) {
			t.Fatal("re-Set after Delete: added = false")
		}
	}
}

func testMultiGet(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(48))
	ix := mk(1 << 13)
	model := map[string]uint64{}
	var stored [][]byte
	for i := 0; i < 5000; i++ {
		k := opts.key(rng)
		mustSet(t, ix, k, uint64(i))
		model[string(k)] = uint64(i)
		stored = append(stored, k)
	}
	// Mixed batch: present keys, missing keys, and duplicates.
	for _, batchSize := range []int{1, 2, 8, 64, 257} {
		batch := make([][]byte, batchSize)
		for j := range batch {
			switch j % 3 {
			case 0, 1:
				batch[j] = stored[rng.Intn(len(stored))]
			default:
				batch[j] = opts.key(rng) // almost surely missing
			}
		}
		if batchSize > 2 {
			batch[batchSize-1] = batch[0] // duplicate within the batch
		}
		vals := make([]uint64, batchSize)
		found := make([]bool, batchSize)
		ix.MultiGet(batch, vals, found)
		for j, k := range batch {
			want, ok := model[string(k)]
			if found[j] != ok {
				t.Fatalf("batch %d: MultiGet found[%d] = %v, want %v (key %x)",
					batchSize, j, found[j], ok, k)
			}
			if ok && vals[j] != want {
				t.Fatalf("batch %d: MultiGet vals[%d] = %d, want %d",
					batchSize, j, vals[j], want)
			}
		}
	}
	// All-missing batch.
	missing := make([][]byte, 16)
	for j := range missing {
		missing[j] = opts.key(rng)
		for {
			if _, ok := model[string(missing[j])]; !ok {
				break
			}
			missing[j] = opts.key(rng)
		}
	}
	vals := make([]uint64, len(missing))
	found := make([]bool, len(missing))
	for j := range found {
		found[j] = true // must be overwritten
	}
	ix.MultiGet(missing, vals, found)
	for j := range missing {
		if _, ok := model[string(missing[j])]; !ok && found[j] {
			t.Fatalf("MultiGet reported missing key %x as found", missing[j])
		}
	}
}

func testMultiSet(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(49))
	ix := mk(1 << 12)
	// Fresh batch: all keys added.
	n := 500
	ks := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	seen := map[string]bool{}
	for len(ks) < n {
		k := opts.key(rng)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		ks = append(ks, k)
		vals = append(vals, uint64(len(ks)))
	}
	errs := make([]error, n)
	if added := ix.MultiSet(ks, vals, errs); added != n {
		t.Fatalf("MultiSet added %d of %d fresh keys", added, n)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("MultiSet errs[%d] = %v", i, errs[i])
		}
	}
	if ix.Len() != n {
		t.Fatalf("Len = %d after MultiSet, want %d", ix.Len(), n)
	}
	// Re-setting the same batch updates in place: zero added, values change.
	for i := range vals {
		vals[i] += 1000
	}
	if added := ix.MultiSet(ks, vals, nil); added != 0 {
		t.Fatalf("MultiSet re-set added %d, want 0", added)
	}
	got := make([]uint64, n)
	found := make([]bool, n)
	ix.MultiGet(ks, got, found)
	for i := range ks {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("after MultiSet update: key %d = %d,%v want %d",
				i, got[i], found[i], vals[i])
		}
	}
	// Half-and-half batch: updates mixed with fresh inserts.
	mixed := make([][]byte, 0, 100)
	mvals := make([]uint64, 0, 100)
	wantAdded := 0
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			mixed = append(mixed, ks[rng.Intn(len(ks))])
		} else {
			k := opts.key(rng)
			if seen[string(k)] {
				continue
			}
			seen[string(k)] = true
			mixed = append(mixed, k)
			wantAdded++
		}
		mvals = append(mvals, uint64(i))
	}
	if added := ix.MultiSet(mixed, mvals, nil); added != wantAdded {
		t.Fatalf("mixed MultiSet added %d, want %d", added, wantAdded)
	}
}

// testBulkLoad is the bulk-load equivalence test: an index built through
// index.BulkLoad (native BulkLoader or the MultiSet fallback) must be
// element-for-element identical — Len, Get, and full Scan stream — to one
// built by incremental Set over the same insert stream, including
// duplicate keys (last write wins) and the newly-added accounting.
func testBulkLoad(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(50))
	n := 3000
	keys := make([][]byte, 0, n)
	vals := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		var k []byte
		if len(keys) > 0 && i%7 == 3 {
			k = keys[rng.Intn(len(keys))] // in-stream duplicate: later value wins
		} else {
			k = opts.key(rng)
		}
		keys = append(keys, k)
		vals = append(vals, uint64(i))
	}

	bulk := mk(n)
	added, err := index.BulkLoad(bulk, keys, vals)
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}

	incr := mk(n)
	wantAdded := 0
	for i, k := range keys {
		if mustSet(t, incr, k, vals[i]) {
			wantAdded++
		}
	}
	if added != wantAdded {
		t.Fatalf("BulkLoad added %d, incremental added %d", added, wantAdded)
	}
	if bulk.Len() != incr.Len() {
		t.Fatalf("Len: bulk %d, incremental %d", bulk.Len(), incr.Len())
	}
	for _, k := range keys {
		bv, bok := bulk.Get(k)
		iv, iok := incr.Get(k)
		if bok != iok || bv != iv {
			t.Fatalf("Get(%x): bulk %d,%v incremental %d,%v", k, bv, bok, iv, iok)
		}
	}
	if !opts.NoScan {
		type kv struct {
			k string
			v uint64
		}
		collect := func(ix index.Index) []kv {
			var out []kv
			ix.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
				out = append(out, kv{string(k), v})
				return true
			})
			return out
		}
		bs, is := collect(bulk), collect(incr)
		if len(bs) != len(is) {
			t.Fatalf("scan: bulk %d keys, incremental %d", len(bs), len(is))
		}
		for i := range bs {
			if bs[i] != is[i] {
				t.Fatalf("scan[%d]: bulk %x=%d, incremental %x=%d",
					i, bs[i].k, bs[i].v, is[i].k, is[i].v)
			}
		}
	}
	// An empty load is a no-op, not a panic.
	if added, err := index.BulkLoad(mk(4), nil, nil); added != 0 || err != nil {
		t.Fatalf("empty BulkLoad = %d, %v", added, err)
	}
	// A vals slice shorter than keys is a reported error (index.ErrBulkLen)
	// before any key lands — a mismatched batch is caller data, not a
	// license to panic.
	short := mk(4)
	if _, err := index.BulkLoad(short, [][]byte{u64key(1), u64key(2)}, []uint64{9}); !errors.Is(err, index.ErrBulkLen) {
		t.Fatalf("short-vals BulkLoad err = %v, want ErrBulkLen", err)
	}
	if short.Len() != 0 {
		t.Fatalf("short-vals BulkLoad inserted %d keys before failing", short.Len())
	}
}

func testRandomModel(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(42))
	ix := mk(1 << 14)
	model := map[string]uint64{}
	for i := 0; i < 10000; i++ {
		k := opts.key(rng)
		model[string(k)] = uint64(i)
		mustSet(t, ix, k, uint64(i))
	}
	if ix.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", ix.Len(), len(model))
	}
	for k, v := range model {
		if got, ok := ix.Get([]byte(k)); !ok || got != v {
			t.Fatalf("Get(%x) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func testScanOrder(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(43))
	ix := mk(1 << 13)
	model := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := opts.key(rng)
		model[string(k)] = uint64(i)
		ix.Set(k, uint64(i))
	}
	var want []string
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	ix.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan: %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %x, want %x", i, got[i], want[i])
		}
	}
}

func testScanBounds(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(1 << 10)
	for i := 0; i < 100; i++ {
		ix.Set(u64key(uint64(i*2)), uint64(i*2))
	}
	var got []uint64
	ix.Scan(u64key(31), 5, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	want := []uint64{32, 34, 36, 38, 40}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("bounded scan = %v, want %v", got, want)
	}
	// Early stop.
	n := ix.Scan(nil, 100, func(k []byte, v uint64) bool { return v < 10 })
	if n != 6 {
		t.Fatalf("early-stop visited %d, want 6", n)
	}
}

// testCursor covers cursor mechanics that hold for every engine, including
// scanless ones (whose cursors are simply never valid).
func testCursor(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(1 << 10)
	for i := 0; i < 100; i++ {
		mustSet(t, ix, u64key(uint64(i*2)), uint64(i*2))
	}
	c := ix.NewCursor()
	defer c.Close()
	if c.Valid() {
		t.Fatal("unpositioned cursor is valid")
	}
	if opts.NoScan {
		if c.Seek(nil) || c.Valid() {
			t.Fatal("scanless engine produced a valid cursor")
		}
		return
	}
	// Seek to an absent key lands on its successor.
	if !c.Seek(u64key(31)) {
		t.Fatal("Seek(31) found nothing")
	}
	for i, want := range []uint64{32, 34, 36, 38} {
		if !c.Valid() || c.Value() != want || !bytes.Equal(c.Key(), u64key(want)) {
			t.Fatalf("cursor step %d: key %x value %d, want %d",
				i, c.Key(), c.Value(), want)
		}
		c.Next()
	}
	// Seek past the maximum key: invalid, and Next stays invalid.
	if c.Seek(u64key(10_000)) {
		t.Fatal("Seek past end reported a key")
	}
	if c.Valid() || c.Next() || c.Valid() {
		t.Fatal("cursor valid after seek past end")
	}
	// Re-seek after exhaustion works.
	if !c.Seek(nil) || c.Value() != 0 {
		t.Fatalf("re-Seek(nil) = %v value %d", c.Valid(), c.Value())
	}
	// Walking off the end invalidates.
	steps := 0
	for c.Valid() {
		steps++
		if steps > 200 {
			t.Fatal("cursor did not terminate")
		}
		c.Next()
	}
	if steps != 100 {
		t.Fatalf("cursor walked %d keys, want 100", steps)
	}
}

// testCursorOrder cross-checks a full cursor walk against Scan on a random
// key set large enough to exercise page boundaries in adapted cursors.
func testCursorOrder(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(46))
	ix := mk(1 << 13)
	for i := 0; i < 3000; i++ {
		mustSet(t, ix, opts.key(rng), uint64(i))
	}
	var want []string
	var wantVals []uint64
	ix.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
		want = append(want, string(k))
		wantVals = append(wantVals, v)
		return true
	})
	c := ix.NewCursor()
	defer c.Close()
	i := 0
	for ok := c.Seek(nil); ok; ok = c.Next() {
		if i >= len(want) {
			t.Fatalf("cursor visited more than %d keys", len(want))
		}
		if string(c.Key()) != want[i] || c.Value() != wantVals[i] {
			t.Fatalf("cursor[%d] = %x=%d, want %x=%d",
				i, c.Key(), c.Value(), want[i], wantVals[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("cursor visited %d keys, scan visited %d", i, len(want))
	}
	// Mid-stream seek agrees with a bounded scan.
	mid := []byte(want[len(want)/2])
	if !c.Seek(mid) || !bytes.Equal(c.Key(), mid) {
		t.Fatalf("mid-stream Seek(%x) landed on %x", mid, c.Key())
	}
}

// testPersistRecover is the snapshot→recover equivalence case: a mixed
// write stream is applied to a live index and logged to a WAL, a snapshot
// is cut mid-stream, and the index persist.Recover rebuilds — snapshot
// bulk-loaded (training any untrained sampled router from the stream),
// then the WAL tail replayed — must be element-for-element identical to
// the live index. Skipped for scanless engines: with no ordered cursor
// there is nothing to serialize.
func testPersistRecover(t *testing.T, mk func(int) index.Index, opts Options) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	live := mk(4096)
	rng := rand.New(rand.NewSource(51))
	var pool [][]byte
	apply := func(n int) {
		for i := 0; i < n; i++ {
			switch {
			case !opts.NoDelete && len(pool) > 0 && rng.Intn(5) == 0:
				k := pool[rng.Intn(len(pool))]
				if live.Delete(k) {
					if _, err := wal.Append(persist.OpDelete, "", k, 0); err != nil {
						t.Fatalf("WAL delete: %v", err)
					}
				}
			default:
				var k []byte
				if len(pool) > 0 && rng.Intn(6) == 0 {
					k = pool[rng.Intn(len(pool))] // update an existing key
				} else {
					k = opts.key(rng)
					pool = append(pool, k)
				}
				v := uint64(rng.Intn(1 << 20))
				mustSet(t, live, k, v)
				if _, err := wal.Append(persist.OpSet, "", k, v); err != nil {
					t.Fatalf("WAL set: %v", err)
				}
			}
		}
	}
	apply(2500)
	snapLSN := wal.LSN()
	if _, err := persist.SaveIndex(dir, snapLSN, live); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	apply(800)
	tail := int(wal.LSN() - snapLSN)
	if err := wal.Close(); err != nil {
		t.Fatalf("WAL close: %v", err)
	}

	got, res, err := persist.RecoverIndex(dir, mk)
	if err != nil {
		t.Fatalf("RecoverIndex: %v", err)
	}
	if res.SnapshotLSN != snapLSN || res.Replayed != tail || res.TornTail {
		t.Fatalf("recovery stats = %+v, want snapshot %d + %d replayed, clean tail",
			res, snapLSN, tail)
	}
	if got.Len() != live.Len() {
		t.Fatalf("Len: recovered %d, live %d", got.Len(), live.Len())
	}
	for _, k := range pool {
		lv, lok := live.Get(k)
		gv, gok := got.Get(k)
		if lok != gok || lv != gv {
			t.Fatalf("Get(%x): recovered %d,%v live %d,%v", k, gv, gok, lv, lok)
		}
	}
	lc, gc := live.NewCursor(), got.NewCursor()
	defer lc.Close()
	defer gc.Close()
	lok, gok := lc.Seek(nil), gc.Seek(nil)
	for lok && gok {
		if !bytes.Equal(lc.Key(), gc.Key()) || lc.Value() != gc.Value() {
			t.Fatalf("stream diverged: live %x=%d, recovered %x=%d",
				lc.Key(), lc.Value(), gc.Key(), gc.Value())
		}
		lok, gok = lc.Next(), gc.Next()
	}
	if lok != gok {
		t.Fatalf("stream lengths differ (live more: %v)", lok)
	}
}

func testDelete(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(44))
	ix := mk(1 << 12)
	model := map[string]uint64{}
	var live []string
	for i := 0; i < 4000; i++ {
		if len(live) == 0 || rng.Intn(10) < 6 {
			k := opts.key(rng)
			if _, dup := model[string(k)]; dup {
				continue
			}
			ix.Set(k, uint64(i))
			model[string(k)] = uint64(i)
			live = append(live, string(k))
		} else {
			j := rng.Intn(len(live))
			k := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if !ix.Delete([]byte(k)) {
				t.Fatalf("Delete(%x) failed for live key", k)
			}
			delete(model, k)
		}
	}
	if ix.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", ix.Len(), len(model))
	}
	for k, v := range model {
		if got, ok := ix.Get([]byte(k)); !ok || got != v {
			t.Fatalf("Get(%x) after churn = %d,%v want %d", k, got, ok, v)
		}
	}
	if !opts.NoScan {
		var prev []byte
		ix.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("scan disorder after deletes")
			}
			prev = append(prev[:0], k...)
			return true
		})
	}
}

func testMemory(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(45))
	ix := mk(1 << 13)
	for i := 0; i < 8000; i++ {
		ix.Set(opts.key(rng), uint64(i))
	}
	m := ix.MemoryOverheadBytes()
	if m <= 0 {
		t.Fatal("no memory accounting")
	}
	perKey := float64(m) / float64(ix.Len())
	if perKey < 4 || perKey > 2000 {
		t.Fatalf("implausible bytes/key %.1f", perKey)
	}
	if ix.Name() == "" {
		t.Fatal("index has no name")
	}
}
