// Package indextest provides a reusable conformance suite run against every
// index.Index implementation (Cuckoo Trie and all baselines), so that the
// benchmark harness compares functionally equivalent structures.
package indextest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
)

// Options tailor the suite to an implementation's documented limits.
type Options struct {
	// FixedKeyLen restricts generated keys to exactly this many bytes
	// (MlpIndex supports only 8-byte keys).
	FixedKeyLen int
	// NoScan skips ordered-iteration tests (MlpIndex has no scans).
	NoScan bool
	// NoDelete skips deletion tests.
	NoDelete bool
}

// Run executes the conformance suite. mk must return a fresh empty index
// sized for at least the given capacity.
func Run(t *testing.T, mk func(capacity int) index.Index, opts Options) {
	t.Run("Empty", func(t *testing.T) { testEmpty(t, mk, opts) })
	t.Run("SetGet", func(t *testing.T) { testSetGet(t, mk, opts) })
	t.Run("Update", func(t *testing.T) { testUpdate(t, mk, opts) })
	t.Run("RandomModel", func(t *testing.T) { testRandomModel(t, mk, opts) })
	if !opts.NoScan {
		t.Run("ScanOrder", func(t *testing.T) { testScanOrder(t, mk, opts) })
		t.Run("ScanBounds", func(t *testing.T) { testScanBounds(t, mk, opts) })
	}
	if !opts.NoDelete {
		t.Run("Delete", func(t *testing.T) { testDelete(t, mk, opts) })
	}
	t.Run("Memory", func(t *testing.T) { testMemory(t, mk, opts) })
}

func (o Options) key(rng *rand.Rand) []byte {
	n := o.FixedKeyLen
	if n == 0 {
		n = 1 + rng.Intn(20)
	}
	k := make([]byte, n)
	rng.Read(k)
	return k
}

func u64key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func testEmpty(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(16)
	if ix.Len() != 0 {
		t.Fatal("fresh index not empty")
	}
	if _, ok := ix.Get(u64key(42)); ok {
		t.Fatal("Get on empty index")
	}
	if !opts.NoScan {
		n := ix.Scan(nil, 10, func([]byte, uint64) bool { return true })
		if n != 0 {
			t.Fatal("scan on empty index visited keys")
		}
	}
}

func testSetGet(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(1024)
	for i := 0; i < 500; i++ {
		if err := ix.Set(u64key(uint64(i*7)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if v, ok := ix.Get(u64key(uint64(i * 7))); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v", i*7, v, ok)
		}
	}
	if _, ok := ix.Get(u64key(1)); ok {
		t.Fatal("found absent key")
	}
	if ix.Len() != 500 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func testUpdate(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(64)
	k := u64key(99)
	ix.Set(k, 1)
	ix.Set(k, 2)
	if v, _ := ix.Get(k); v != 2 {
		t.Fatalf("update: v = %d", v)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after update", ix.Len())
	}
}

func testRandomModel(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(42))
	ix := mk(1 << 14)
	model := map[string]uint64{}
	for i := 0; i < 10000; i++ {
		k := opts.key(rng)
		model[string(k)] = uint64(i)
		if err := ix.Set(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", ix.Len(), len(model))
	}
	for k, v := range model {
		if got, ok := ix.Get([]byte(k)); !ok || got != v {
			t.Fatalf("Get(%x) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func testScanOrder(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(43))
	ix := mk(1 << 13)
	model := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := opts.key(rng)
		model[string(k)] = uint64(i)
		ix.Set(k, uint64(i))
	}
	var want []string
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	ix.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan: %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %x, want %x", i, got[i], want[i])
		}
	}
}

func testScanBounds(t *testing.T, mk func(int) index.Index, opts Options) {
	ix := mk(1 << 10)
	for i := 0; i < 100; i++ {
		ix.Set(u64key(uint64(i*2)), uint64(i*2))
	}
	var got []uint64
	ix.Scan(u64key(31), 5, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	want := []uint64{32, 34, 36, 38, 40}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("bounded scan = %v, want %v", got, want)
	}
	// Early stop.
	n := ix.Scan(nil, 100, func(k []byte, v uint64) bool { return v < 10 })
	if n != 6 {
		t.Fatalf("early-stop visited %d, want 6", n)
	}
}

func testDelete(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(44))
	ix := mk(1 << 12)
	model := map[string]uint64{}
	var live []string
	for i := 0; i < 4000; i++ {
		if len(live) == 0 || rng.Intn(10) < 6 {
			k := opts.key(rng)
			if _, dup := model[string(k)]; dup {
				continue
			}
			ix.Set(k, uint64(i))
			model[string(k)] = uint64(i)
			live = append(live, string(k))
		} else {
			j := rng.Intn(len(live))
			k := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if !ix.Delete([]byte(k)) {
				t.Fatalf("Delete(%x) failed for live key", k)
			}
			delete(model, k)
		}
	}
	if ix.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", ix.Len(), len(model))
	}
	for k, v := range model {
		if got, ok := ix.Get([]byte(k)); !ok || got != v {
			t.Fatalf("Get(%x) after churn = %d,%v want %d", k, got, ok, v)
		}
	}
	if !opts.NoScan {
		var prev []byte
		ix.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("scan disorder after deletes")
			}
			prev = append(prev[:0], k...)
			return true
		})
	}
}

func testMemory(t *testing.T, mk func(int) index.Index, opts Options) {
	rng := rand.New(rand.NewSource(45))
	ix := mk(1 << 13)
	for i := 0; i < 8000; i++ {
		ix.Set(opts.key(rng), uint64(i))
	}
	m := ix.MemoryOverheadBytes()
	if m <= 0 {
		t.Fatal("no memory accounting")
	}
	perKey := float64(m) / float64(ix.Len())
	if perKey < 4 || perKey > 2000 {
		t.Fatalf("implausible bytes/key %.1f", perKey)
	}
	if ix.Name() == "" {
		t.Fatal("index has no name")
	}
}
