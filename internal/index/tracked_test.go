package index_test

import (
	"testing"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/index"
)

// TestTrackedPassThrough: the wrapper must be behaviorally transparent —
// every op forwards to the inner engine — while each call lands exactly
// one sample in its op's histogram.
func TestTrackedPassThrough(t *testing.T) {
	tr := index.Tracked(btree.New())

	if added, err := tr.Set([]byte("a"), 1); err != nil || !added {
		t.Fatalf("Set = %v, %v", added, err)
	}
	if v, ok := tr.Get([]byte("a")); !ok || v != 1 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	keys := [][]byte{[]byte("b"), []byte("c")}
	if added := tr.MultiSet(keys, []uint64{2, 3}, nil); added != 2 {
		t.Fatalf("MultiSet added %d", added)
	}
	vals := make([]uint64, 2)
	found := make([]bool, 2)
	tr.MultiGet(keys, vals, found)
	if !found[0] || !found[1] || vals[0] != 2 || vals[1] != 3 {
		t.Fatalf("MultiGet = %v, %v", vals, found)
	}
	if n := tr.Scan(nil, 10, func([]byte, uint64) bool { return true }); n != 3 {
		t.Fatalf("Scan visited %d", n)
	}
	c := tr.NewCursor()
	if !c.Seek(nil) || string(c.Key()) != "a" {
		t.Fatalf("cursor Seek landed on %q", c.Key())
	}
	c.Close()
	if !tr.Delete([]byte("a")) {
		t.Fatal("Delete missed")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Name() != btree.New().Name() {
		t.Fatalf("Name = %q", tr.Name())
	}

	wantCounts := map[index.Op]uint64{
		index.OpSet: 1, index.OpGet: 1, index.OpMultiSet: 1, index.OpMultiGet: 1,
		index.OpScan: 1, index.OpCursor: 1, index.OpDelete: 1,
	}
	var total uint64
	for op, want := range wantCounts {
		if got := tr.OpHist(op).Count(); got != want {
			t.Errorf("op %v recorded %d samples, want %d", op, got, want)
		}
		total += want
	}
	if got := tr.TotalOps(); got != total {
		t.Errorf("TotalOps = %d, want %d", got, total)
	}
	if got := tr.Snapshot().Count(); got != total {
		t.Errorf("merged snapshot count = %d, want %d", got, total)
	}
	tr.Reset()
	if got := tr.TotalOps(); got != 0 {
		t.Errorf("TotalOps after reset = %d", got)
	}
}

// TestTrackedForwardsCapabilities: concurrency marker and bulk load must
// shine through the wrapper, and re-wrapping must be a no-op.
func TestTrackedForwardsCapabilities(t *testing.T) {
	if index.IsConcurrent(index.Tracked(btree.New())) {
		t.Fatal("Tracked(STX) should not report concurrent")
	}
	if !index.IsConcurrent(index.Tracked(art.New())) {
		t.Fatal("Tracked(ARTOLC) should report concurrent")
	}
	tr := index.Tracked(btree.New())
	if again := index.Tracked(tr); again != tr {
		t.Fatal("re-wrapping allocated a second tracker")
	}
	if tr.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
	keys := [][]byte{[]byte("x"), []byte("y")}
	if added, err := index.BulkLoad(tr, keys, []uint64{7, 8}); err != nil || added != 2 {
		t.Fatalf("BulkLoad through wrapper = %d, %v", added, err)
	}
	if v, ok := tr.Get([]byte("y")); !ok || v != 8 {
		t.Fatalf("value after bulk load = %d, %v", v, ok)
	}
	if got := tr.OpHist(index.OpMultiSet).Count(); got != 1 {
		t.Fatalf("bulk load recorded %d MultiSet samples, want 1", got)
	}
}
