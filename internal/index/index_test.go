package index_test

import (
	"testing"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/index"
)

func TestIsConcurrent(t *testing.T) {
	if !index.IsConcurrent(art.New()) {
		t.Fatal("ARTOLC should be concurrent")
	}
	if index.IsConcurrent(btree.New()) {
		t.Fatal("STX should not be concurrent")
	}
}

// TestScanCursorPaging drives the fallback cursor across several page
// boundaries (page size 64) and checks it against a full callback scan.
func TestScanCursorPaging(t *testing.T) {
	tr := btree.New()
	const n = 300
	for i := 0; i < n; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if added, err := tr.Set(k, uint64(i)); err != nil || !added {
			t.Fatalf("Set(%d) = %v, %v", i, added, err)
		}
	}
	c := tr.NewCursor()
	defer c.Close()
	i := 0
	for ok := c.Seek(nil); ok; ok = c.Next() {
		if c.Value() != uint64(i) {
			t.Fatalf("cursor[%d] value = %d", i, c.Value())
		}
		i++
	}
	if i != n {
		t.Fatalf("cursor visited %d keys, want %d", i, n)
	}
}

func TestFallbackBatchHelpers(t *testing.T) {
	tr := btree.New()
	ks := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	vals := []uint64{1, 2, 3}
	if added := index.FallbackMultiSet(tr, ks, vals, nil); added != 3 {
		t.Fatalf("FallbackMultiSet added %d", added)
	}
	got := make([]uint64, 4)
	found := make([]bool, 4)
	index.FallbackMultiGet(tr, append(ks, []byte("zz")), got, found)
	for i := range ks {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("FallbackMultiGet[%d] = %d,%v", i, got[i], found[i])
		}
	}
	if found[3] {
		t.Fatal("FallbackMultiGet found a missing key")
	}
}
