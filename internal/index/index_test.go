package index_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/index"
)

func TestIsConcurrent(t *testing.T) {
	if !index.IsConcurrent(art.New()) {
		t.Fatal("ARTOLC should be concurrent")
	}
	if index.IsConcurrent(btree.New()) {
		t.Fatal("STX should not be concurrent")
	}
}

// TestScanCursorPaging drives the fallback cursor across several page
// boundaries (page size 64) and checks it against a full callback scan.
func TestScanCursorPaging(t *testing.T) {
	tr := btree.New()
	const n = 300
	for i := 0; i < n; i++ {
		k := []byte{byte(i >> 8), byte(i)}
		if added, err := tr.Set(k, uint64(i)); err != nil || !added {
			t.Fatalf("Set(%d) = %v, %v", i, added, err)
		}
	}
	c := tr.NewCursor()
	defer c.Close()
	i := 0
	for ok := c.Seek(nil); ok; ok = c.Next() {
		if c.Value() != uint64(i) {
			t.Fatalf("cursor[%d] value = %d", i, c.Value())
		}
		i++
	}
	if i != n {
		t.Fatalf("cursor visited %d keys, want %d", i, n)
	}
}

func TestFallbackBatchHelpers(t *testing.T) {
	tr := btree.New()
	ks := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	vals := []uint64{1, 2, 3}
	if added := index.FallbackMultiSet(tr, ks, vals, nil); added != 3 {
		t.Fatalf("FallbackMultiSet added %d", added)
	}
	got := make([]uint64, 4)
	found := make([]bool, 4)
	index.FallbackMultiGet(tr, append(ks, []byte("zz")), got, found)
	for i := range ks {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("FallbackMultiGet[%d] = %d,%v", i, got[i], found[i])
		}
	}
	if found[3] {
		t.Fatal("FallbackMultiGet found a missing key")
	}
}

// failKeyIndex wraps an index and fails Set for one specific key, routing
// MultiSet through the loop fallback so the failure is visible to it.
type failKeyIndex struct {
	index.Index
	bad string
}

func (f failKeyIndex) Set(k []byte, v uint64) (bool, error) {
	if string(k) == f.bad {
		return false, errBad
	}
	return f.Index.Set(k, v)
}

func (f failKeyIndex) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	return index.FallbackMultiSet(f, keys, vals, errs)
}

var errBad = fmt.Errorf("injected failure")

// TestBulkLoadLengthContract: every bulk-load path shares one documented
// length rule — vals must have at least len(keys) elements; a shorter vals
// returns index.ErrBulkLen before any insert. Extra vals are ignored.
func TestBulkLoadLengthContract(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	for _, load := range []struct {
		name string
		fn   func(index.Index, [][]byte, []uint64) (int, error)
	}{
		{"BulkLoad", index.BulkLoad},
		{"FallbackBulkLoad", index.FallbackBulkLoad},
	} {
		ix := btree.New()
		if _, err := load.fn(ix, keys, []uint64{1, 2}); !errors.Is(err, index.ErrBulkLen) {
			t.Fatalf("%s with short vals: err = %v, want ErrBulkLen", load.name, err)
		}
		if ix.Len() != 0 {
			t.Fatalf("%s inserted %d keys before failing", load.name, ix.Len())
		}
		// At-length and over-length vals both load fine.
		if added, err := load.fn(ix, keys, []uint64{1, 2, 3, 4}); err != nil || added != 3 {
			t.Fatalf("%s with extra vals = %d, %v", load.name, added, err)
		}
	}
}

// TestFallbackBulkLoadKeepsGoing: an error in an early chunk must not
// abandon the later chunks — BulkLoader semantics match MultiSet's
// keep-going contract, so every loadable key lands and the first error is
// still reported. The stream here spans several 4096-key chunks with the
// failing key in the first one.
func TestFallbackBulkLoadKeepsGoing(t *testing.T) {
	n := 10_000
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%05d", i))
		vals[i] = uint64(i)
	}
	ix := failKeyIndex{btree.New(), "k00100"}
	added, err := index.BulkLoad(ix, keys, vals)
	if err == nil {
		t.Fatal("BulkLoad swallowed the injected error")
	}
	if added != n-1 {
		t.Fatalf("BulkLoad added %d, want %d (all but the failing key)", added, n-1)
	}
	if _, ok := ix.Get([]byte("k09999")); !ok {
		t.Fatal("key from a chunk after the failing one never landed")
	}
	if _, ok := ix.Get([]byte("k00100")); ok {
		t.Fatal("failing key landed")
	}
}
