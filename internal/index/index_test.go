package index_test

import (
	"testing"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/index"
)

func TestIsConcurrent(t *testing.T) {
	if !index.IsConcurrent(art.New()) {
		t.Fatal("ARTOLC should be concurrent")
	}
	if index.IsConcurrent(btree.New()) {
		t.Fatal("STX should not be concurrent")
	}
}
