package index

import "bytes"

// Fallback helpers: correct loop-based implementations of the batch and
// cursor portions of Index v2 in terms of an engine's point operations.
// Baselines without a native batch path (ART, B-tree, HOT, Wormhole, skip
// list, MlpIndex) delegate to these so every engine satisfies the same
// interface; the Cuckoo Trie overrides MultiGet with its interleaved probe
// path in internal/core.

// FallbackMultiGet implements Index.MultiGet with one Get per key.
func FallbackMultiGet(ix Index, keys [][]byte, vals []uint64, found []bool) {
	for i, k := range keys {
		vals[i], found[i] = ix.Get(k)
	}
}

// FallbackMultiSet implements Index.MultiSet with one Set per key, returning
// the number of keys newly added. Later keys are attempted even when earlier
// ones fail.
func FallbackMultiSet(ix Index, keys [][]byte, vals []uint64, errs []error) int {
	added := 0
	for i, k := range keys {
		a, err := ix.Set(k, vals[i])
		if errs != nil {
			errs[i] = err
		}
		if err == nil && a {
			added++
		}
	}
	return added
}

// scanCursorPage is how many keys a ScanCursor fetches per underlying Scan.
const scanCursorPage = 64

// scanCursor adapts a callback-based Scan into a Cursor by buffering
// fixed-size pages of (key, value) pairs and re-seeking from the last key
// when a page drains. With concurrent writers it provides the same
// best-effort consistency as the underlying Scan.
type scanCursor struct {
	ix   Index
	keys [][]byte
	vals []uint64
	pos  int
	more bool // last page was full: the stream may continue
}

// NewScanCursor returns a Cursor over ix implemented with paged Scan calls.
// Engines whose Scan visits nothing (e.g. MlpIndex) yield a cursor that is
// never valid, matching their documented lack of ordered iteration.
func NewScanCursor(ix Index) Cursor { return &scanCursor{ix: ix} }

// fill loads one page starting at start; when skipEqual is set, a first key
// equal to start (the previous page's last key) is skipped.
func (c *scanCursor) fill(start []byte, skipEqual bool) {
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	n := c.ix.Scan(start, scanCursorPage, func(k []byte, v uint64) bool {
		c.keys = append(c.keys, append([]byte(nil), k...))
		c.vals = append(c.vals, v)
		return true
	})
	c.more = n == scanCursorPage
	c.pos = 0
	if skipEqual && len(c.keys) > 0 && bytes.Equal(c.keys[0], start) {
		c.pos = 1
	}
}

func (c *scanCursor) Seek(start []byte) bool {
	c.fill(start, false)
	return c.Valid()
}

func (c *scanCursor) Valid() bool { return c.pos < len(c.keys) }

func (c *scanCursor) Key() []byte {
	if !c.Valid() {
		return nil
	}
	return c.keys[c.pos]
}

func (c *scanCursor) Value() uint64 {
	if !c.Valid() {
		return 0
	}
	return c.vals[c.pos]
}

func (c *scanCursor) Next() bool {
	if !c.Valid() {
		return false
	}
	c.pos++
	if c.pos < len(c.keys) {
		return true
	}
	if !c.more {
		return false
	}
	last := c.keys[len(c.keys)-1]
	c.fill(last, true)
	return c.Valid()
}

func (c *scanCursor) Close() {
	c.keys = nil
	c.vals = nil
	c.pos = 0
	c.more = false
}
