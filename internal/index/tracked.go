package index

import (
	"time"

	"repro/internal/metrics"
)

// Op names one instrumented index operation on a TrackedIndex.
type Op int

const (
	OpGet Op = iota
	OpSet
	OpMultiGet
	OpMultiSet
	OpDelete
	OpScan
	OpCursor // cursor Seek (positioning is the expensive step)
	numOps
)

var opNames = [numOps]string{"get", "set", "multiget", "multiset", "delete", "scan", "cursor"}

// String returns the op's lower-case name.
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return "unknown"
	}
	return opNames[o]
}

// TrackedIndex decorates an Index with per-op latency histograms
// (nanoseconds). The overhead is one clock pair per call on top of two
// atomic adds, so batched operations amortize it across the batch; the
// wrapper forwards the Concurrent and BulkLoader capabilities of the
// inner engine, so it can stand in anywhere the engine itself can.
type TrackedIndex struct {
	inner Index
	hists [numOps]*metrics.Histogram
}

// Tracked wraps ix with latency tracking. If ix is already tracked it is
// returned unchanged (re-wrapping would double-count).
func Tracked(ix Index) *TrackedIndex {
	if t, ok := ix.(*TrackedIndex); ok {
		return t
	}
	t := &TrackedIndex{inner: ix}
	for i := range t.hists {
		t.hists[i] = metrics.New()
	}
	return t
}

// Unwrap returns the inner index.
func (t *TrackedIndex) Unwrap() Index { return t.inner }

// OpHist returns the live histogram for one op (shared, safe for
// concurrent snapshotting).
func (t *TrackedIndex) OpHist(op Op) *metrics.Histogram { return t.hists[op] }

// Snapshot merges every op's histogram into one distribution.
func (t *TrackedIndex) Snapshot() metrics.Snapshot {
	sn := t.hists[0].Snapshot()
	for _, h := range t.hists[1:] {
		sn.Merge(h.Snapshot())
	}
	return sn
}

// TotalOps returns the number of recorded operations across all ops —
// cheap enough for periodic throughput sampling.
func (t *TrackedIndex) TotalOps() uint64 {
	var n uint64
	for _, h := range t.hists {
		n += h.Count()
	}
	return n
}

// Reset clears every op histogram.
func (t *TrackedIndex) Reset() {
	for _, h := range t.hists {
		h.Reset()
	}
}

func (t *TrackedIndex) Set(key []byte, value uint64) (bool, error) {
	start := time.Now()
	added, err := t.inner.Set(key, value)
	t.hists[OpSet].RecordDuration(int64(time.Since(start)))
	return added, err
}

func (t *TrackedIndex) Get(key []byte) (uint64, bool) {
	start := time.Now()
	v, ok := t.inner.Get(key)
	t.hists[OpGet].RecordDuration(int64(time.Since(start)))
	return v, ok
}

func (t *TrackedIndex) MultiGet(keys [][]byte, vals []uint64, found []bool) {
	start := time.Now()
	t.inner.MultiGet(keys, vals, found)
	t.hists[OpMultiGet].RecordDuration(int64(time.Since(start)))
}

func (t *TrackedIndex) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	start := time.Now()
	added := t.inner.MultiSet(keys, vals, errs)
	t.hists[OpMultiSet].RecordDuration(int64(time.Since(start)))
	return added
}

func (t *TrackedIndex) Delete(key []byte) bool {
	start := time.Now()
	ok := t.inner.Delete(key)
	t.hists[OpDelete].RecordDuration(int64(time.Since(start)))
	return ok
}

func (t *TrackedIndex) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	begin := time.Now()
	visited := t.inner.Scan(start, n, fn)
	t.hists[OpScan].RecordDuration(int64(time.Since(begin)))
	return visited
}

// NewCursor returns a cursor whose Seek calls are timed under OpCursor;
// Next/Key/Value stay untimed (they are too fine-grained to clock
// per-call without distorting the iteration they measure).
func (t *TrackedIndex) NewCursor() Cursor {
	return &trackedCursor{Cursor: t.inner.NewCursor(), hist: t.hists[OpCursor]}
}

func (t *TrackedIndex) Len() int                   { return t.inner.Len() }
func (t *TrackedIndex) MemoryOverheadBytes() int64 { return t.inner.MemoryOverheadBytes() }
func (t *TrackedIndex) Name() string               { return t.inner.Name() }

// ConcurrentSafe forwards the inner engine's concurrency marker: the
// histograms themselves are lock-free, so the wrapper is exactly as
// concurrent-safe as what it wraps.
func (t *TrackedIndex) ConcurrentSafe() bool { return IsConcurrent(t.inner) }

// BulkLoad forwards to the inner engine's native bulk path (or the
// shared fallback), timed under OpMultiSet as one sample — the load is
// one logical operation, not len(keys) of them.
func (t *TrackedIndex) BulkLoad(keys [][]byte, vals []uint64) (int, error) {
	start := time.Now()
	added, err := BulkLoad(t.inner, keys, vals)
	t.hists[OpMultiSet].RecordDuration(int64(time.Since(start)))
	return added, err
}

type trackedCursor struct {
	Cursor
	hist *metrics.Histogram
}

func (c *trackedCursor) Seek(start []byte) bool {
	begin := time.Now()
	ok := c.Cursor.Seek(start)
	c.hist.RecordDuration(int64(time.Since(begin)))
	return ok
}
