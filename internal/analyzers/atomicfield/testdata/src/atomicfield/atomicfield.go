// Package atomicfield is the analyzer's fixture — the pre-fix rootColor
// shape from PR 1: a plain uint32 field written with atomic.StoreUint32 by
// resize but read plainly by the lock-free reader path.
package atomicfield

import "sync/atomic"

type trie struct {
	rootColor uint32 // the historical bug: plain field, mixed access
	size      int
}

// flipColor is the resize side: atomic, as it always was.
func (t *trie) flipColor() {
	atomic.StoreUint32(&t.rootColor, 1-atomic.LoadUint32(&t.rootColor))
}

// lookup is the reader side of the historical bug: a plain read of a field
// the writer publishes atomically.
func (t *trie) lookup() uint32 {
	return t.rootColor // want `field rootColor is accessed atomically elsewhere .* but plainly here`
}

func (t *trie) reset() {
	t.size = 0      // no finding: size is never touched atomically
	t.rootColor = 0 // want `field rootColor is accessed atomically elsewhere .* but plainly here`
}

// newTrie's plain write happens before the value is shared; the directive
// records that and suppresses the finding.
func newTrie() *trie {
	t := &trie{}
	t.rootColor = 1 //ctvet:ignore pre-publication write: t is not shared until newTrie returns
	return t
}

// modern is the post-fix shape: the type system forbids plain access to
// atomic.Uint32, so there is nothing for the analyzer to say.
type modern struct {
	color atomic.Uint32
}

func (m *modern) read() uint32 { return m.color.Load() }
