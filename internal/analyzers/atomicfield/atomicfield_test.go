package atomicfield

import (
	"testing"

	"repro/internal/analyzers/analysis/analysistest"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "atomicfield")
}
