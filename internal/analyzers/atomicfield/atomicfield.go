// Package atomicfield generalizes the repo's historical rootColor bug: a
// struct field that is accessed through sync/atomic anywhere must be
// accessed atomically everywhere in the package.
//
// PR 1's lock-free readers navigate the trie through atomically published
// words; the root's color was originally a plain uint32 field written
// with atomic.StoreUint32 by resize but read plainly by readers — a data
// race the detector only reports when a resize happens to overlap a read
// in a -race run. (The field is an atomic.Uint32 today; the pre-fix shape
// lives on as this analyzer's fixture.) The general rule: mixing
// atomic.<Op>(&s.f, ...) with plain `s.f` reads or writes silently
// forfeits the happens-before edge the atomic side is paying for.
//
// The check is package-scoped and field-granular: pass 1 records every
// field whose address feeds a sync/atomic call; pass 2 flags every other
// access to those fields. Fields of type atomic.Uint32/atomic.Pointer/...
// need no checking — the type system already forbids plain access.
// Intentional pre-publication plain writes (constructors) carry
// //ctvet:ignore with the reason.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "check that struct fields accessed via sync/atomic are accessed " +
		"atomically everywhere (the rootColor bug generalized)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: fields whose address is taken directly in a sync/atomic
	// call argument, and the positions of those sanctioned selector uses.
	atomicFields := map[types.Object]token.Pos{} // field -> first atomic use
	sanctioned := map[token.Pos]bool{}           // SelectorExpr positions inside atomic calls
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObject(pass, sel); obj != nil {
					if _, seen := atomicFields[obj]; !seen {
						atomicFields[obj] = sel.Pos()
					}
					sanctioned[sel.Pos()] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other access to those fields is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel.Pos()] {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil {
				return true
			}
			first, ok := atomicFields[obj]
			if !ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed atomically elsewhere (e.g. %s) but plainly here; mixed atomic/plain access loses the happens-before edge (the rootColor bug)",
				obj.Name(), pass.Fset.Position(first))
			return true
		})
	}
	return nil
}

// fieldObject returns the struct-field object a selector resolves to, nil
// for methods, package selectors, and non-field selections.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicCall reports whether call targets a function in sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}
