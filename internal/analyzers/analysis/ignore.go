package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //ctvet:ignore escape hatch. A directive with a reason suppresses
// every ctvet diagnostic on its own source line — or, when the comment
// stands alone, on the next line — so a deliberate exception reads as
//
//	w.Flush() //ctvet:ignore connection is being dropped; flush is best-effort
//
// or
//
//	//ctvet:ignore bench teardown; durability is not what this measures
//	srv.Close()
//
// A bare //ctvet:ignore with no reason is itself reported: the reason is
// the audit trail.
const ignorePrefix = "//ctvet:ignore"

type ignoreSet struct {
	// lines maps filename → set of suppressed line numbers.
	lines map[string]map[int]bool
	// bare records directives missing a reason.
	bare []token.Position
}

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{lines: map[string]map[int]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // a longer word, e.g. //ctvet:ignoreme — not ours
				}
				if strings.TrimSpace(rest) == "" {
					ig.bare = append(ig.bare, fset.Position(c.Pos()))
					continue
				}
				pos := fset.Position(c.Pos())
				m := ig.lines[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					ig.lines[pos.Filename] = m
				}
				// Suppress the directive's own line (trailing comment) and
				// the following line (standalone comment above the
				// statement). Suppressing both is harmless: the directive
				// line holds either code or only the comment.
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return ig
}

func (ig *ignoreSet) suppresses(pos token.Position) bool {
	return ig.lines[pos.Filename][pos.Line]
}
