// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want "regexp" comments — the same fixture
// convention as x/tools/go/analysis/analysistest, reimplemented on the
// in-repo analysis kernel. Fixtures live under <analyzer>/testdata/src/<pkg>
// and may import sibling fixture packages (repo-type stubs) as well as the
// real standard library.
//
// Expectation syntax, per source line:
//
//	call()           // want "regexp"
//	twoFindings()    // want "first" "second"
//
// Every diagnostic must match a want on its line, and every want must be
// matched by a diagnostic; //ctvet:ignore suppression runs first, so a
// violating line carrying an ignore directive and no want asserts the
// suppression works.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyzers/analysis"
)

// TestData returns the caller package's testdata/src root.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata", "src")
}

// Run loads each named fixture package from root and applies the
// analyzer, failing t on any mismatch between diagnostics and wants.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, root, a, pkg)
	}
}

func runOne(t *testing.T, root string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(root, filepath.FromSlash(pkgpath))
	loaded, err := analysis.LoadDir(dir, pkgpath, root)
	if err != nil {
		t.Fatalf("%s: loading fixture: %v", pkgpath, err)
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, loaded.Fset, loaded.Files, loaded.Pkg, loaded.Info)
	if err != nil {
		t.Fatalf("%s: running %s: %v", pkgpath, a.Name, err)
	}

	wants, err := collectWants(loaded.Fset, dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgpath, err)
	}
	matched := map[*want]bool{}
	for _, f := range findings {
		w := findWant(wants, f.Pos, f.Message)
		if w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pkgpath, f)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkgpath, w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(fset *token.FileSet, dir string) ([]*want, error) {
	_ = fset
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats, err := splitPatterns(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want: %v", e.Name(), i+1, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, p, err)
				}
				wants = append(wants, &want{file: filepath.Join(dir, e.Name()), line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a sequence of Go-quoted or backquoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		q := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == q && (q == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}

func findWant(wants []*want, pos token.Position, msg string) *want {
	for _, w := range wants {
		if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}
