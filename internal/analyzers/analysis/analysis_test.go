package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// A bare directive is a finding in its own right: the reason is the audit
// trail, and silently accepting its absence would make the escape hatch
// unreviewable.
func TestBareIgnoreIsAFinding(t *testing.T) {
	fset, files := parseOne(t, "package p\n\nfunc f() {\n\t//ctvet:ignore\n\t_ = 0\n}\n")
	findings, err := RunAnalyzers(nil, fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if findings[0].Analyzer != "ctvet" || !strings.Contains(findings[0].Message, "needs a reason") {
		t.Fatalf("unexpected finding: %v", findings[0])
	}
}

// A directive with a reason suppresses its own line and the next — and
// nothing beyond.
func TestIgnoreSuppressionScope(t *testing.T) {
	src := "package p\n\nfunc f() {\n\t_ = 0 //ctvet:ignore the reason\n\t_ = 1\n\t_ = 2\n}\n"
	fset, files := parseOne(t, src)
	body := files[0].Decls[0].(*ast.FuncDecl).Body.List
	a := &Analyzer{
		Name: "probe",
		Doc:  "reports at every statement",
		Run: func(p *Pass) error {
			for _, st := range body {
				p.Reportf(st.Pos(), "probe finding")
			}
			return nil
		},
	}
	findings, err := RunAnalyzers([]*Analyzer{a}, fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Statements sit on lines 4, 5, 6; the directive on 4 suppresses 4
	// and 5, so only line 6 survives.
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if got := findings[0].Pos.Line; got != 6 {
		t.Fatalf("surviving finding on line %d, want 6", got)
	}
	if s := findings[0].String(); !strings.Contains(s, "probe: probe finding") {
		t.Fatalf("finding renders as %q", s)
	}
}

// A longer word sharing the prefix is not our directive.
func TestIgnorePrefixIsWordBounded(t *testing.T) {
	fset, files := parseOne(t, "package p\n\nfunc f() {\n\t//ctvet:ignoreme\n\t_ = 0\n}\n")
	findings, err := RunAnalyzers(nil, fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(findings), findings)
	}
}
