package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loaded is one parsed, type-checked package ready for RunAnalyzers.
type Loaded struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers read
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadDir parses and type-checks the package in dir as importPath.
// Imports resolve first against root (a GOPATH-style src tree, as used by
// testdata fixtures) and then through the standard library's source
// importer, so fixtures can both stub repo packages and import real
// stdlib ones — all without network or export data.
func LoadDir(dir, importPath, root string) (*Loaded, error) {
	fset := token.NewFileSet()
	imp := &treeImporter{
		fset:     fset,
		root:     root,
		fallback: importer.ForCompiler(fset, "source", nil),
		loaded:   map[string]*types.Package{},
	}
	pkg, files, info, err := imp.check(dir, importPath)
	if err != nil {
		return nil, err
	}
	return &Loaded{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// treeImporter resolves imports from a source tree first, then from the
// stdlib source importer.
type treeImporter struct {
	fset     *token.FileSet
	root     string
	fallback types.Importer
	loaded   map[string]*types.Package
}

func (ti *treeImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ti.loaded[path]; ok {
		return pkg, nil
	}
	if ti.root != "" {
		dir := filepath.Join(ti.root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			pkg, _, _, err := ti.check(dir, path)
			if err != nil {
				return nil, err
			}
			return pkg, nil
		}
	}
	return ti.fallback.Import(path)
}

func (ti *treeImporter) check(dir, importPath string) (*types.Package, []*ast.File, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ti.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: ti}
	pkg, err := conf.Check(importPath, ti.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	ti.loaded[importPath] = pkg
	return pkg, files, info, nil
}
