// Package analysis is a minimal, dependency-free core of the go/analysis
// model (golang.org/x/tools is not vendored here, and the build
// environment is offline, so the framework is reimplemented on the
// standard library's go/ast + go/types). It carries exactly what the
// repo's own analyzers need: an Analyzer with a Run hook over a
// type-checked package, positional diagnostics, and the shared
// //ctvet:ignore suppression layer. The API deliberately mirrors
// x/tools/go/analysis so the analyzers could be rebased onto the real
// framework by swapping one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags; it must be a
	// valid Go identifier.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to a package. Diagnostics go through
	// pass.Report/Reportf; the error return is for analysis failures, not
	// findings.
	Run func(pass *Pass) error
}

// Pass is the input to one analyzer run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzers applies every analyzer to the package, applies the
// //ctvet:ignore suppression layer, and returns the surviving
// diagnostics tagged with their analyzer.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info) ([]Finding, error) {

	ig := collectIgnores(fset, files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		var diags []Diagnostic
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			if ig.suppresses(fset.Position(d.Pos)) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
		}
	}
	// Malformed directives are findings in their own right: an ignore
	// without a reason silences a checker with no trace of why.
	for _, bad := range ig.bare {
		out = append(out, Finding{
			Analyzer: "ctvet",
			Pos:      bad,
			Message:  "//ctvet:ignore needs a reason (write //ctvet:ignore <why this invariant does not apply here>)",
		})
	}
	return out, nil
}

// Finding is a post-suppression diagnostic ready for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}
