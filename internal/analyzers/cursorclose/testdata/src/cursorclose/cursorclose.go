// Package cursorclose is the analyzer's fixture: leaks on early returns,
// branch-dependent closes, overwrites, legitimate hand-offs, and the
// //ctvet:ignore escape hatch.
package cursorclose

import "index"

func closesOnAllPaths(t *index.Tree, keys [][]byte) bool {
	c := t.NewCursor()
	defer c.Close()
	for _, k := range keys {
		if !c.Seek(k) {
			return false
		}
	}
	return true
}

func closesExplicitly(t *index.Tree) {
	c := t.NewCursor()
	for c.Next() {
	}
	c.Close()
}

func leaksOnEarlyReturn(t *index.Tree, keys [][]byte) bool {
	c := t.NewCursor()
	for _, k := range keys {
		if !c.Seek(k) {
			return false // want `cursor "c" acquired at .* does not reach Close`
		}
	}
	c.Close()
	return true
}

func leaksAtFunctionEnd(t *index.Tree) {
	c := t.NewCursor()
	c.Next()
} // want `cursor "c" acquired at .* does not reach Close`

func closedInOneBranchOnly(t *index.Tree) {
	c := t.NewCursor()
	if c.Valid() {
		c.Close()
		return
	}
} // want `cursor "c" acquired at .* does not reach Close`

func overwritesWhileOpen(t *index.Tree) {
	c := t.NewCursor()
	c = t.NewCursor() // want `cursor acquired at .* is overwritten before Close`
	c.Close()
}

func handsOffByReturn(t *index.Tree) index.Cursor {
	return t.NewCursor()
}

func handsOffNamedByReturn(t *index.Tree) index.Cursor {
	c := t.NewCursor()
	c.Next()
	return c
}

type scanState struct {
	cur index.Cursor
}

func handsOffByStore(t *index.Tree, st *scanState) {
	c := t.NewCursor()
	st.cur = c
}

func drain(c index.Cursor) {
	for c.Next() {
	}
	c.Close()
}

func handsOffByCall(t *index.Tree) {
	c := t.NewCursor()
	drain(c)
}

func handsOffToClosure(t *index.Tree) func() {
	c := t.NewCursor()
	return func() { c.Close() }
}

func suppressedLeak(t *index.Tree) {
	c := t.NewCursor()
	c.Next()
	//ctvet:ignore fixture: deliberate leak proving the escape hatch suppresses it
}
