// Package index stubs the repo's index package for the cursorclose
// fixtures: the Cursor shape matches repro/internal/index.Cursor's method
// set, which is what the analyzer matches structurally.
package index

// Cursor is the pool-recycled iterator shape.
type Cursor interface {
	Seek(key []byte) bool
	Next() bool
	Valid() bool
	Key() []byte
	Close()
}

// Tree stands in for an engine that vends cursors.
type Tree struct{}

// NewCursor vends a cursor; callers own it until Close or hand-off.
func (t *Tree) NewCursor() Cursor { return nil }
