// Package cursorclose checks that every index.Cursor obtained from a
// NewCursor/Cursor call reaches Close on all intraprocedural control-flow
// paths — including early error returns.
//
// Cursors are sync.Pool-recycled (internal/sharded keeps merge/chain
// cursors and their per-shard children alive across recycles), so a
// leaked cursor never crashes anything: it just silently shrinks the pool
// and turns a Scan-heavy workload's warm path back into an allocating
// one. That makes the leak invisible to tests and the race detector both
// — exactly the kind of invariant a checker has to carry.
//
// Cursor values are matched structurally (the static type's method set
// contains Seek/Next/Valid/Close with index.Cursor's shapes), so the
// check covers index.Cursor itself, concrete engine iterators, and
// fixture stubs alike. A tracked cursor is considered handed off — no
// longer this function's to close — when it is returned, stored into a
// struct/slice/map, passed to another function, captured by a closure, or
// sent on a channel.
package cursorclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "cursorclose",
	Doc: "check that pool-recycled cursors obtained from NewCursor reach " +
		"Close on every control-flow path",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			w := &walker{pass: pass}
			open := map[types.Object]token.Pos{}
			terminated := w.block(body.List, open)
			if !terminated {
				w.reportOpen(open, body.Rbrace)
			}
			// Keep descending: nested FuncLits are analyzed as their own
			// scopes when Inspect reaches them (the enclosing walker
			// treats the literal's captures as hand-offs and never enters
			// its body, so nothing is reported twice).
			return true
		})
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// block walks a statement list with the set of open cursors, returning
// whether the list definitely terminates (returns) on every path through
// its end.
func (w *walker) block(stmts []ast.Stmt, open map[types.Object]token.Pos) bool {
	for _, stmt := range stmts {
		if w.stmt(stmt, open) {
			return true
		}
	}
	return false
}

// stmt processes one statement; it reports true when the statement
// terminates the enclosing function on all paths.
func (w *walker) stmt(stmt ast.Stmt, open map[types.Object]token.Pos) bool {
	switch st := stmt.(type) {
	case *ast.AssignStmt:
		w.assign(st, open)
	case *ast.ExprStmt:
		w.exprStmt(st.X, open)
	case *ast.DeferStmt:
		if obj := closeReceiver(w.pass, st.Call); obj != nil {
			delete(open, obj) // defer c.Close() covers every later path
			return false
		}
		w.escapeAll(st.Call, open)
	case *ast.GoStmt:
		w.escapeAll(st.Call, open)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.escape(r, open) // returning the cursor hands it off
		}
		w.reportOpen(open, st.Pos())
		return true
	case *ast.BlockStmt:
		return w.block(st.List, open)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, open)
		}
		w.escapeCond(st.Cond, open)
		thenState := clone(open)
		thenTerm := w.block(st.Body.List, thenState)
		elseState := clone(open)
		elseTerm := false
		if st.Else != nil {
			elseTerm = w.stmt(st.Else, elseState)
		}
		merge(open, thenState, thenTerm, elseState, elseTerm)
		return thenTerm && elseTerm && st.Else != nil
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, open)
		}
		if st.Cond != nil {
			w.escapeCond(st.Cond, open)
		}
		bodyState := clone(open)
		w.block(st.Body.List, bodyState)
		// The body may run zero times: a close inside it does not close
		// the outer path, and a cursor opened inside it belongs to the
		// body's own iteration scope (reported there only via fallthrough
		// of the whole function, which keeps loops conservative-quiet).
		return false
	case *ast.RangeStmt:
		w.escapeCond(st.X, open)
		bodyState := clone(open)
		w.block(st.Body.List, bodyState)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.branches(stmt, open)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, open)
	case *ast.SendStmt:
		w.escape(st.Value, open)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.escapeCond(v, open)
					}
				}
			}
		}
	}
	return false
}

// branches handles switch/select conservatively: each clause runs on a
// clone; a cursor closed in SOME clause may still be open after (union of
// opens), and termination is only certain when every clause terminates
// and the statement has a default/else-like clause — rare enough that we
// simply report nothing extra and keep the pre-switch state unioned.
func (w *walker) branches(stmt ast.Stmt, open map[types.Object]token.Pos) {
	var clauses []*ast.BlockStmt
	collect := func(list []ast.Stmt) {
		for _, c := range list {
			switch cc := c.(type) {
			case *ast.CaseClause:
				clauses = append(clauses, &ast.BlockStmt{List: cc.Body})
			case *ast.CommClause:
				clauses = append(clauses, &ast.BlockStmt{List: cc.Body})
			}
		}
	}
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, open)
		}
		if st.Tag != nil {
			w.escapeCond(st.Tag, open)
		}
		collect(st.Body.List)
	case *ast.TypeSwitchStmt:
		collect(st.Body.List)
	case *ast.SelectStmt:
		collect(st.Body.List)
	}
	for _, cl := range clauses {
		cs := clone(open)
		w.block(cl.List, cs)
	}
}

// assign tracks cursor acquisitions (c := x.NewCursor()) and hand-offs
// (field/map/slice stores, reassignments).
func (w *walker) assign(st *ast.AssignStmt, open map[types.Object]token.Pos) {
	// RHS first: uses of existing cursors, then new acquisitions.
	for _, rhs := range st.Rhs {
		w.escapeCond(rhs, open)
	}
	// A cursor stored anywhere loses single-owner tracking; a tracked
	// variable overwritten while open is reported (the old cursor leaks).
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				// A field/slice/map store (st.cur = c) hands the cursor off
				// to whoever owns the destination; a blank assign discards
				// tracking conservatively.
				w.escape(st.Rhs[i], open)
				continue
			}
			obj := w.pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if pos, was := open[obj]; was && st.Tok == token.ASSIGN {
				w.pass.Reportf(st.Pos(), "cursor acquired at %s is overwritten before Close (pool capacity leak)",
					w.pass.Fset.Position(pos))
				delete(open, obj)
			}
			if call, ok := st.Rhs[i].(*ast.CallExpr); ok && isCursorAcquisition(w.pass, call) {
				open[obj] = st.Pos()
			}
		}
		return
	}
	// Multi-value form: c, ok := f() — no cursor constructors in the repo
	// return multiple values, so only hand-offs matter here (handled by
	// escapeCond above).
}

// exprStmt handles statement-level calls: c.Close() closes, any other use
// of a tracked cursor as an argument hands it off.
func (w *walker) exprStmt(e ast.Expr, open map[types.Object]token.Pos) {
	if call, ok := e.(*ast.CallExpr); ok {
		if obj := closeReceiver(w.pass, call); obj != nil {
			delete(open, obj)
			return
		}
		// c.Seek(...) etc.: receiver use is fine; arguments escape.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if _, tracked := open[w.pass.TypesInfo.ObjectOf(id)]; tracked {
					for _, arg := range call.Args {
						w.escape(arg, open)
					}
					return
				}
			}
		}
		w.escapeAll(call, open)
		return
	}
	w.escapeCond(e, open)
}

// escapeCond scans an expression for cursor uses, treating method-call
// receiver positions (ok := c.Seek(k), loop conditions) as legitimate
// non-escaping uses and anything else — call arguments, composite
// literals, closures capturing the variable — as a hand-off.
func (w *walker) escapeCond(e ast.Expr, open map[types.Object]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Receiver position does not escape; everything else does.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if _, tracked := open[w.pass.TypesInfo.ObjectOf(id)]; tracked {
						for _, arg := range n.Args {
							w.escape(arg, open)
						}
						return false
					}
				}
			}
			for _, arg := range n.Args {
				w.escape(arg, open)
			}
			w.escapeCond(n.Fun, open)
			return false
		case *ast.FuncLit:
			w.escapeAll(n, open)
			return false
		case *ast.CompositeLit:
			w.escapeAll(n, open)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				w.escapeAll(n, open)
				return false
			}
		}
		return true
	})
}

// escape removes every tracked cursor mentioned anywhere in e: its
// ownership moved somewhere this function cannot see.
func (w *walker) escape(e ast.Expr, open map[types.Object]token.Pos) {
	if e == nil {
		return
	}
	w.escapeAll(e, open)
}

func (w *walker) escapeAll(n ast.Node, open map[types.Object]token.Pos) {
	ast.Inspect(n, func(nn ast.Node) bool {
		if id, ok := nn.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.ObjectOf(id); obj != nil {
				delete(open, obj)
			}
		}
		return true
	})
}

func (w *walker) reportOpen(open map[types.Object]token.Pos, at token.Pos) {
	for obj, pos := range open {
		w.pass.Reportf(at, "cursor %q acquired at %s does not reach Close on this path; pooled cursors that skip Close leak pool capacity",
			obj.Name(), w.pass.Fset.Position(pos))
		delete(open, obj)
	}
}

func clone(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// merge folds branch outcomes back into open: a cursor survives as open
// if any non-terminated branch leaves it open.
func merge(open map[types.Object]token.Pos, a map[types.Object]token.Pos, aTerm bool, b map[types.Object]token.Pos, bTerm bool) {
	for k := range open {
		delete(open, k)
	}
	if !aTerm {
		for k, v := range a {
			open[k] = v
		}
	}
	if !bTerm {
		for k, v := range b {
			open[k] = v
		}
	}
}

// closeReceiver returns the object of c in a plain c.Close() call, nil
// otherwise.
func closeReceiver(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// isCursorAcquisition reports whether call constructs a cursor this
// analyzer should track: a method/function named NewCursor or Cursor
// whose single result is cursor-shaped.
func isCursorAcquisition(pass *analysis.Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if name != "NewCursor" && name != "Cursor" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	return isCursorType(tv.Type)
}

// isCursorType matches index.Cursor structurally: the method set (value
// or pointer) must contain Seek([]byte) bool, Next() bool, Valid() bool
// and Close().
func isCursorType(t types.Type) bool {
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	need := map[string]bool{"Seek": false, "Next": false, "Valid": false, "Close": false}
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if _, tracked := need[m.Name()]; tracked {
			need[m.Name()] = true
		}
	}
	for _, ok := range need {
		if !ok {
			return false
		}
	}
	return true
}
