package cursorclose

import (
	"testing"

	"repro/internal/analyzers/analysis/analysistest"
)

func TestCursorClose(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "cursorclose")
}
