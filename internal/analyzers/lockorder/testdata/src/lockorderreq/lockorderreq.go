// Package lockorderreq exercises the requiresHeld table — empty in the
// repo's own order (BGSAVE legitimately takes saveMu alone), so the test
// installs saveMu→cmdMu before running this fixture.
package lockorderreq

import "sync"

type server struct {
	cmdMu  sync.Mutex
	saveMu sync.Mutex
}

func takesBare(s *server) {
	s.saveMu.Lock() // want `acquires saveMu without holding cmdMu`
	s.saveMu.Unlock()
}

func takesUnderCmd(s *server) {
	s.cmdMu.Lock()
	s.saveMu.Lock()
	s.saveMu.Unlock()
	s.cmdMu.Unlock()
}

// callerHolds declares the requirement satisfied by its caller.
//
//ctvet:holds cmdMu
func callerHolds(s *server) {
	s.saveMu.Lock()
	s.saveMu.Unlock()
}

func suppressedRequirement(s *server) {
	s.saveMu.Lock() //ctvet:ignore fixture: deliberate bare acquisition proving suppression
	s.saveMu.Unlock()
}
