// Package lockorder is the analyzer's fixture: rank inversions (including
// the historical cmdMu-after-saveMu shape), self-reacquisition, stripe
// arrays in both directions, the //ctvet:holds annotation, the
// //ctvet:ignore escape hatch, the group-commit park-on-LSN protocol
// (WAL.Commit must not park while a lock the append path needs is held),
// and the one-level call-graph propagation (a helper that locks or parks
// is flagged at the call site of a caller holding a conflicting lock).
package lockorder

import (
	"persist"
	"sync"
)

type server struct {
	cmdMu    sync.Mutex
	execMus  []sync.Mutex
	saveMu   sync.Mutex
	replMu   sync.RWMutex
	stripes  []sync.Mutex
	writeMus []sync.Mutex
	wal      *persist.WAL
}

func correctOrder(s *server) {
	s.cmdMu.Lock()
	s.saveMu.Lock()
	s.saveMu.Unlock()
	s.cmdMu.Unlock()
}

func inverted(s *server) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	s.cmdMu.Lock() // want `acquires cmdMu \(rank 10\) while holding saveMu \(rank 30\)`
	defer s.cmdMu.Unlock()
}

func releaseThenTake(s *server) {
	s.saveMu.Lock()
	s.saveMu.Unlock()
	s.cmdMu.Lock() // no finding: saveMu was released before cmdMu was taken
	s.cmdMu.Unlock()
}

func reacquire(s *server) {
	s.cmdMu.Lock()
	s.cmdMu.Lock() // want `reacquires cmdMu already held`
	s.cmdMu.Unlock()
}

func rlockCountsToo(s *server) {
	s.replMu.RLock()
	s.saveMu.Lock() // want `acquires saveMu \(rank 30\) while holding replMu \(rank 40\)`
	s.saveMu.Unlock()
	s.replMu.RUnlock()
}

func ascendingStripes(s *server) {
	for i := 0; i < len(s.stripes); i++ {
		s.stripes[i].Lock()
	}
	for i := 0; i < len(s.stripes); i++ {
		s.stripes[i].Unlock()
	}
}

func descendingStripes(s *server) {
	for i := len(s.stripes) - 1; i >= 0; i-- {
		s.stripes[i].Lock() // want `stripes acquired under a descending loop over "i"`
	}
}

func constIndexInversion(s *server) {
	s.stripes[2].Lock()
	s.stripes[1].Lock() // want `acquires stripes\[1\] while already holding stripes\[2\]`
	s.stripes[1].Unlock()
	s.stripes[2].Unlock()
}

func constIndexAscending(s *server) {
	s.stripes[1].Lock()
	s.stripes[2].Lock()
	s.stripes[2].Unlock()
	s.stripes[1].Unlock()
}

// calleeWithHolds relies on its caller holding cmdMu; taking saveMu on top
// respects the order, so declaring the held lock keeps it clean.
//
//ctvet:holds cmdMu
func calleeWithHolds(s *server) {
	s.saveMu.Lock()
	s.saveMu.Unlock()
}

// holdsThenInvert declares saveMu held, so taking cmdMu is an inversion
// even though this body performs only one acquisition itself.
//
//ctvet:holds saveMu
func holdsThenInvert(s *server) {
	s.cmdMu.Lock() // want `acquires cmdMu \(rank 10\) while holding saveMu \(rank 30\)`
	s.cmdMu.Unlock()
}

func suppressedInversion(s *server) {
	s.saveMu.Lock()
	s.cmdMu.Lock() //ctvet:ignore fixture: deliberate inversion proving the escape hatch suppresses it
	s.cmdMu.Unlock()
	s.saveMu.Unlock()
}

func goroutineHasOwnDiscipline(s *server) {
	s.saveMu.Lock()
	go func() {
		s.cmdMu.Lock() // no finding: the goroutine body is its own lock scope
		s.cmdMu.Unlock()
	}()
	s.saveMu.Unlock()
}

// parkUnderCmdMu is the serial-dispatch deadlock shape: a writer parked
// under cmdMu blocks every other writer's append, so the syncer never
// gets the batch that would release the parker.
func parkUnderCmdMu(s *server) {
	s.cmdMu.Lock()
	s.wal.Commit(7) // want `parks on \(persist\.WAL\)\.Commit while holding cmdMu`
	s.cmdMu.Unlock()
}

// parkUnderStripe starves every writer hashing to the held stripe.
func parkUnderStripe(s *server) {
	s.writeMus[1].Lock()
	s.wal.Commit(7) // want `parks on \(persist\.WAL\)\.Commit while holding writeMus`
	s.writeMus[1].Unlock()
}

// parkAfterRelease is the correct ack-barrier shape: apply+append under
// the locks, release everything, then park on the batch's last LSN.
func parkAfterRelease(s *server) {
	s.cmdMu.Lock()
	lsn, _ := s.wal.Append(1, nil, nil, nil)
	s.cmdMu.Unlock()
	s.wal.Commit(lsn) // no finding: every append-path lock was released first
}

// parkUnderSaveMu is clean: the append path never takes saveMu, so a
// snapshot-holding caller may park without starving the syncer.
func parkUnderSaveMu(s *server) {
	s.saveMu.Lock()
	s.wal.Commit(7)
	s.saveMu.Unlock()
}

func suppressedPark(s *server) {
	s.cmdMu.Lock()
	s.wal.Commit(7) //ctvet:ignore fixture: deliberate park proving the escape hatch suppresses it
	s.cmdMu.Unlock()
}

// --- executor-lock (execMus) facts ---

// execBarrier is the striped-exec barrier shape: every executor lock
// ascending, then down the order. Clean.
func execBarrier(s *server) {
	for i := range s.execMus {
		s.execMus[i].Lock()
	}
	s.saveMu.Lock()
	s.saveMu.Unlock()
	for i := range s.execMus {
		s.execMus[i].Unlock()
	}
}

// execUnderSaveMu inverts the order: execMus rank between cmdMu and bulkMu.
func execUnderSaveMu(s *server) {
	s.saveMu.Lock()
	s.execMus[0].Lock() // want `acquires execMus \(rank 15\) while holding saveMu \(rank 30\)`
	s.execMus[0].Unlock()
	s.saveMu.Unlock()
}

// parkUnderExecMu is the striped-exec lane deadlock shape: a lane parked on
// the group syncer starves every writer routed to its stripe.
func parkUnderExecMu(s *server) {
	s.execMus[1].Lock()
	s.wal.Commit(7) // want `parks on \(persist\.WAL\)\.Commit while holding execMus`
	s.execMus[1].Unlock()
}

// --- one-level call-graph propagation ---

// parkHelper parks directly; on its own that is fine (no lock held here).
func parkHelper(s *server) {
	s.wal.Commit(7)
}

// callsParkHelperUnderStripe is the shape the propagation exists for: the
// park moved one call down, the caller still holds an append-path lock.
func callsParkHelperUnderStripe(s *server) {
	s.writeMus[1].Lock()
	parkHelper(s) // want `calls parkHelper, which parks on \(persist\.WAL\)\.Commit, while holding writeMus`
	s.writeMus[1].Unlock()
}

// callsParkHelperAfterRelease is the correct shape: the helper parks only
// after every append-path lock is released.
func callsParkHelperAfterRelease(s *server) {
	s.writeMus[1].Lock()
	s.writeMus[1].Unlock()
	parkHelper(s)
}

// takesCmdMu acquires cmdMu directly.
func takesCmdMu(s *server) {
	s.cmdMu.Lock()
	s.cmdMu.Unlock()
}

// callsCmdHelperUnderSaveMu: the helper's acquisition inverts the order
// against the caller's held lock.
func callsCmdHelperUnderSaveMu(s *server) {
	s.saveMu.Lock()
	takesCmdMu(s) // want `calls takesCmdMu, which acquires cmdMu \(rank 10\) while saveMu \(rank 30\) is held here`
	s.saveMu.Unlock()
}

// callsCmdHelperUnderCmdMu: the helper reacquires the caller's Mutex —
// a guaranteed self-deadlock.
func callsCmdHelperUnderCmdMu(s *server) {
	s.cmdMu.Lock()
	takesCmdMu(s) // want `calls takesCmdMu, which acquires cmdMu already held here \(self-deadlock for a Mutex\)`
	s.cmdMu.Unlock()
}

// takesSaveMu acquires saveMu directly.
func takesSaveMu(s *server) {
	s.saveMu.Lock()
	s.saveMu.Unlock()
}

// callsDownTheOrder is clean: the helper's lock ranks above the held one,
// the direction the order allows.
func callsDownTheOrder(s *server) {
	s.cmdMu.Lock()
	takesSaveMu(s)
	s.cmdMu.Unlock()
}

// bgParkHelper parks only on a goroutine it spawns; the spawning call
// returns immediately, so a caller holding a lock is NOT parked.
func bgParkHelper(s *server) {
	go func() {
		s.wal.Commit(7)
	}()
}

func callsBgParkHelperUnderStripe(s *server) {
	s.writeMus[1].Lock()
	bgParkHelper(s) // no finding: the helper's park runs on its own goroutine
	s.writeMus[1].Unlock()
}

// suppressedHelperPark proves the escape hatch covers propagated findings.
func suppressedHelperPark(s *server) {
	s.cmdMu.Lock()
	parkHelper(s) //ctvet:ignore fixture: deliberate propagated park proving suppression
	s.cmdMu.Unlock()
}

// holdsCallsCmdHelper: a declared hold counts for propagation exactly as a
// real acquisition would.
//
//ctvet:holds saveMu
func holdsCallsCmdHelper(s *server) {
	takesCmdMu(s) // want `calls takesCmdMu, which acquires cmdMu \(rank 10\) while saveMu \(rank 30\) is held here`
}
