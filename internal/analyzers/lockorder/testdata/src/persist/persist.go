// Package persist is a minimal stub of the real persist package for the
// lockorder fixtures: the park check matches by receiver type and
// import-path suffix, so a WAL with a Commit method is all it needs.
package persist

// WAL stands in for the real write-ahead log.
type WAL struct{}

// Commit parks until the group syncer's fsync covers lsn (stub).
func (w *WAL) Commit(lsn uint64) error { return nil }

// Append appends one record (stub, here so fixtures can mix calls).
func (w *WAL) Append(op byte, set, key, val []byte) (uint64, error) { return 0, nil }
