// Package lockorder encodes the repo's lock-ordering facts and flags
// same-function acquisitions that contradict them.
//
// The server's deadlock-freedom argument is a single global order:
//
//	cmdMu → execMus → bulkMu → saveMu → replMu → stripe locks (ascending index)
//
// (miniredis.Server and keyspace; see the comments on Server's fields).
// The race detector only notices an inversion on an interleaving that
// actually deadlocks or races; this analyzer rejects the inversion on any
// path, in any build, by rank-checking every Lock/RLock a function
// performs while an earlier table lock is still held. Stripe-style lock
// arrays (keyspace.stripes, Server.writeMus, Server.execMus) must
// additionally be acquired in ascending index order: a descending loop
// over them, or constant indices acquired out of order, is flagged.
//
// The walk within one function is intraprocedural, plus ONE level of
// call-graph propagation: every function gets a summary of the table
// locks its body acquires directly and whether it parks directly, and a
// call made while a table lock is held is checked against the callee's
// summary. That is exactly the depth the executor layer's helper
// extraction needs — runBarrier holds every execMu and calls dispatchOne;
// a handler that re-took a stripe or parked on WAL.Commit would slip
// through a purely intraprocedural walk. Deeper chains still collapse to
// single-lock functions that pass vacuously. New locks are one line in
// the tables below. //ctvet:ignore <reason> suppresses a finding; a
// function whose caller guarantees a lock is held can declare
// //ctvet:holds <lock> on the line above its declaration.
//
// Group commit adds a second protocol on top of the order: WAL.Commit
// PARKS the calling goroutine until the group syncer's fsync covers its
// LSN. The syncer only ever takes the WAL's own mutex, so a writer that
// parks while holding a lock the append path needs — cmdMu on a serial
// server, a per-stripe write mutex, a keyspace stripe — stalls the very
// writers whose records would share its fsync: best case the batch
// degrades to one writer per cycle, worst case (serial dispatch behind
// cmdMu) nothing ever feeds the syncer again. The parkCalls table flags
// any park performed while one of those locks is held in the same
// function; the ack barrier belongs after dispatch releases them and
// before the reply flush.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analyzers/analysis"
)

// lockRank is the registry of ordered locks: a lock may only be acquired
// while every held table lock has a strictly smaller rank. Registering a
// new lock is one line here.
var lockRank = map[string]int{
	"cmdMu": 10,
	// execMus: striped-exec's per-stripe executor locks. A lane holds one;
	// the cross-stripe barrier (runBarrier, quiesce) takes all ascending.
	// Handlers under the barrier go on to take bulkMu/saveMu/replMu/
	// writeMus/stripes, so the array ranks between cmdMu and bulkMu.
	"execMus": 15,
	"bulkMu":  20,
	"saveMu":  30,
	"replMu":  40,
	// Lock arrays: rank applies to the whole array; ascending-index
	// acquisition within the array is checked separately.
	"writeMus": 50,
	"stripes":  50,
}

// lockArrays marks the table locks that are arrays of locks (indexed
// acquisition, ascending order required).
var lockArrays = map[string]bool{
	"execMus":  true,
	"writeMus": true,
	"stripes":  true,
}

// requiresHeld maps a lock to another lock that must already be held when
// it is acquired. The repo's current order is positional, not possessive
// — BGSAVE legitimately takes saveMu without cmdMu when the engine is
// concurrent-safe — so the table is empty here, but the mechanism is
// exercised by the fixtures and ready for locks with a hard holder
// requirement. //ctvet:holds <lock> on a function declaration satisfies
// the requirement for callees whose callers take the lock.
var requiresHeld = map[string]string{}

// parkCall names one call that parks its goroutine on the group syncer's
// durability watermark, matched by import-path suffix (so testdata stubs
// qualify), receiver type, and method name — the same resolution the
// durabilityerr analyzer uses.
type parkCall struct {
	pkg  string // import path suffix, e.g. "persist"
	recv string // named receiver type
	name string
}

// parkCalls is the registry of parking calls. WAL.Commit blocks until a
// coalesced fsync covers the given LSN; under fsync=group that fsync only
// happens once enough writers have appended, so the caller must not be
// holding anything those writers need.
var parkCalls = []parkCall{
	{"persist", "WAL", "Commit"},
}

// parkForbids lists the table locks the append path needs and that are
// therefore forbidden across a park: cmdMu serializes dispatch on serial
// servers (a park under it starves the syncer outright), execMus
// serialize striped-exec's lanes the same way, and the writeMus/stripes
// arrays serialize per-key apply+append.
var parkForbids = []string{"cmdMu", "execMus", "writeMus", "stripes"}

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check Lock/RLock sequences against the repo's global lock order " +
		"(cmdMu → execMus → bulkMu → saveMu → replMu → stripe locks ascending), " +
		"with one-level call-graph propagation, and that WAL.Commit never " +
		"parks — directly or one call deep — while a lock the append path needs is held",
	Run: run,
}

func run(pass *analysis.Pass) error {
	sums := newSummaries(pass)
	for _, file := range pass.Files {
		holds := holdsDirectives(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			st := &state{pass: pass, sums: sums, held: map[string]heldLock{}}
			for _, h := range holds[fn] {
				st.held[h] = heldLock{rank: lockRank[h], declared: true}
			}
			st.stmts(fn.Body.List)
		}
	}
	return nil
}

// funcSummary records what one function's body does DIRECTLY: the table
// locks it acquires (first-seen order) and the first park it performs.
// Goroutine bodies and nested function literals are excluded — they run
// under their own lock discipline, exactly as in the main walk.
type funcSummary struct {
	acquires []string
	parks    string // printable park-call name, "" when the body never parks
}

// summaries resolves same-package callees to their declarations and
// lazily summarizes them — the one-level call-graph propagation. A
// summary covers only the callee's direct body, never ITS callees:
// deeper chains are out of scope by design (each hop collapses to a
// single-lock function the intraprocedural walk already covers).
type summaries struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	cache map[*types.Func]*funcSummary
}

func newSummaries(pass *analysis.Pass) *summaries {
	sm := &summaries{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		cache: map[*types.Func]*funcSummary{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				sm.decls[obj] = fn
			}
		}
	}
	return sm
}

// of returns a call's static callee and its summary; the summary is nil
// when the callee is not a function declared in the analyzed package
// (cross-package calls, indirect calls, mutex methods).
func (sm *summaries) of(call *ast.CallExpr) (*types.Func, *funcSummary) {
	fn := calleeFunc(sm.pass, call)
	if fn == nil {
		return nil, nil
	}
	decl, ok := sm.decls[fn]
	if !ok {
		return fn, nil
	}
	sum, ok := sm.cache[fn]
	if !ok {
		sum = summarize(sm.pass, decl)
		sm.cache[fn] = sum
	}
	return fn, sum
}

func summarize(pass *analysis.Pass, decl *ast.FuncDecl) *funcSummary {
	sum := &funcSummary{}
	seen := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if name, method, _ := lockCall(n); name != "" && isAcquire(method) && !seen[name] {
				seen[name] = true
				sum.acquires = append(sum.acquires, name)
			}
			if sum.parks == "" {
				sum.parks = parkedCall(pass, n)
			}
		}
		return true
	})
	return sum
}

// holdsDirectives collects //ctvet:holds <lock> comments attached to
// function declarations.
func holdsDirectives(pass *analysis.Pass, file *ast.File) map[*ast.FuncDecl][]string {
	out := map[*ast.FuncDecl][]string{}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			rest, ok := strings.CutPrefix(c.Text, "//ctvet:holds")
			if !ok {
				continue
			}
			for _, name := range strings.Fields(rest) {
				if _, known := lockRank[name]; !known {
					pass.Reportf(c.Pos(), "ctvet:holds names unknown lock %q (register it in lockorder's table)", name)
					continue
				}
				out[fn] = append(out[fn], name)
			}
		}
	}
	return out
}

type heldLock struct {
	rank     int
	pos      token.Pos
	declared bool // from //ctvet:holds, not an acquisition in this body
	// lastIdx is the largest constant index acquired so far for a lock
	// array (-1 when no constant index has been seen).
	lastIdx    int
	lastIdxPos token.Pos
}

type state struct {
	pass *analysis.Pass
	sums *summaries
	held map[string]heldLock
}

// stmts walks a statement list in order, tracking the held-lock set. The
// walk descends into nested blocks with the same (shared) state: within
// one function the repo's lock acquisitions are straight-line, and a
// shared set errs on the side of reporting.
func (s *state) stmts(list []ast.Stmt) {
	for _, stmt := range list {
		s.stmt(stmt)
	}
}

func (s *state) stmt(stmt ast.Stmt) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		s.expr(st.X, false)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to function end — exactly
		// what the ordering check wants — so releases are only honored for
		// direct Unlock statements.
		s.call(st.Call, true)
	case *ast.GoStmt:
		// A goroutine body runs under its own lock discipline.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			sub := &state{pass: s.pass, sums: s.sums, held: map[string]heldLock{}}
			sub.stmts(lit.Body.List)
		}
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			s.expr(rhs, false)
		}
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond, false)
		s.stmts(st.Body.List)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.ForStmt:
		desc := descendingLoopVar(st)
		s.checkLoop(st.Body, desc, st.Pos())
	case *ast.RangeStmt:
		// range over an array/slice ascends by construction.
		s.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, false)
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	}
}

// expr looks for lock-method calls (and function literals) inside an
// expression.
func (s *state) expr(e ast.Expr, deferred bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			s.call(n, deferred)
		case *ast.FuncLit:
			sub := &state{pass: s.pass, sums: s.sums, held: map[string]heldLock{}}
			sub.stmts(n.Body.List)
			return false
		}
		return true
	})
}

// checkLoop flags indexed acquisitions of a lock array inside a loop that
// walks its index variable downward.
func (s *state) checkLoop(body *ast.BlockStmt, descVar string, loopPos token.Pos) {
	if descVar != "" {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, method, idx := lockCall(call)
			if name == "" || !lockArrays[name] || !isAcquire(method) {
				return true
			}
			if id, ok := idx.(*ast.Ident); ok && id.Name == descVar {
				s.pass.Reportf(call.Pos(),
					"%s acquired under a descending loop over %q; stripe locks must be taken in ascending index order (see keyspace.lockAll)",
					name, descVar)
			}
			return true
		})
	}
	s.stmts(body.List)
}

// descendingLoopVar reports the index variable of a `for i := hi; ...; i--`
// style loop ("" when the loop does not descend).
func descendingLoopVar(st *ast.ForStmt) string {
	switch post := st.Post.(type) {
	case *ast.IncDecStmt:
		if post.Tok == token.DEC {
			if id, ok := post.X.(*ast.Ident); ok {
				return id.Name
			}
		}
	case *ast.AssignStmt:
		if post.Tok == token.SUB_ASSIGN && len(post.Lhs) == 1 {
			if id, ok := post.Lhs[0].(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

// call classifies one call expression, updating the held set and
// reporting violations.
func (s *state) call(call *ast.CallExpr, deferred bool) {
	if park := parkedCall(s.pass, call); park != "" {
		for _, lock := range parkForbids {
			if _, held := s.held[lock]; held {
				s.pass.Reportf(call.Pos(),
					"parks on %s while holding %s; a parked writer must not hold any lock the append path needs — release it before the ack barrier (see miniredis serve)",
					park, lock)
			}
		}
	}
	name, method, idx := lockCall(call)
	if name == "" {
		s.checkCallee(call)
		return
	}
	switch {
	case isAcquire(method):
		s.acquire(name, idx, call.Pos())
	case method == "Unlock" || method == "RUnlock":
		if !deferred {
			delete(s.held, name)
		}
	}
}

// checkCallee is the one-level call-graph propagation: a call made while
// a table lock is held is checked against what the callee's body does
// directly — parking, reacquiring a held Mutex, or taking a lock that
// contradicts the order. Same-name array locks are skipped (the callee's
// index is unknowable here); deferred calls are checked like immediate
// ones, erring on the side of reporting, matching how deferred Unlocks
// keep a lock held for the rest of the walk.
func (s *state) checkCallee(call *ast.CallExpr) {
	if len(s.held) == 0 || s.sums == nil {
		return
	}
	fn, sum := s.sums.of(call)
	if sum == nil {
		return
	}
	if sum.parks != "" {
		for _, lock := range parkForbids {
			if _, held := s.held[lock]; held {
				s.pass.Reportf(call.Pos(),
					"calls %s, which parks on %s, while holding %s; a parked writer must not hold any lock the append path needs",
					fn.Name(), sum.parks, lock)
			}
		}
	}
	for _, name := range sum.acquires {
		rank := lockRank[name]
		for heldName, h := range s.held {
			if heldName == name {
				if !lockArrays[name] && !h.declared {
					s.pass.Reportf(call.Pos(),
						"calls %s, which acquires %s already held here (self-deadlock for a Mutex)",
						fn.Name(), name)
				}
				continue
			}
			if h.rank >= rank {
				s.pass.Reportf(call.Pos(),
					"calls %s, which acquires %s (rank %d) while %s (rank %d) is held here; the repo lock order is cmdMu → execMus → bulkMu → saveMu → replMu → stripe locks",
					fn.Name(), name, rank, heldName, h.rank)
			}
		}
	}
}

func isAcquire(method string) bool {
	return method == "Lock" || method == "RLock" || method == "TryLock" || method == "TryRLock"
}

func (s *state) acquire(name string, idx ast.Expr, pos token.Pos) {
	rank := lockRank[name]
	// Rank check against everything currently held.
	for heldName, h := range s.held {
		if heldName == name {
			continue // array locks and upgrades handled below
		}
		if h.rank >= rank {
			s.pass.Reportf(pos,
				"acquires %s (rank %d) while holding %s (rank %d); the repo lock order is cmdMu → execMus → bulkMu → saveMu → replMu → stripe locks",
				name, rank, heldName, h.rank)
		}
	}
	// Holder requirement.
	if req, ok := requiresHeld[name]; ok {
		if _, held := s.held[req]; !held {
			s.pass.Reportf(pos,
				"acquires %s without holding %s (required; annotate the function //ctvet:holds %s if the caller guarantees it)",
				name, req, req)
		}
	}
	prev, already := s.held[name]
	if already && !lockArrays[name] && !prev.declared {
		s.pass.Reportf(pos, "reacquires %s already held since %s (self-deadlock for a Mutex)",
			name, s.pass.Fset.Position(prev.pos))
	}
	h := heldLock{rank: rank, pos: pos, lastIdx: -1}
	if already {
		h.lastIdx, h.lastIdxPos = prev.lastIdx, prev.lastIdxPos
	}
	// Ascending-index check for lock arrays with constant indices.
	if lockArrays[name] {
		if c, ok := constIndex(idx); ok {
			if h.lastIdx >= 0 && c <= h.lastIdx {
				s.pass.Reportf(pos,
					"acquires %s[%d] while already holding %s[%d]; stripe locks must be taken in ascending index order",
					name, c, name, h.lastIdx)
			}
			h.lastIdx, h.lastIdxPos = c, pos
		}
	}
	s.held[name] = h
}

func constIndex(idx ast.Expr) (int, bool) {
	lit, ok := idx.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	n, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	return n, true
}

// lockCall decomposes expr.(...).Lock()-shaped calls: it returns the
// registered lock's table name, the method name, and the index expression
// for indexed (stripe array) acquisitions. name is "" for calls that do
// not target a registered lock.
func lockCall(call *ast.CallExpr) (name, method string, idx ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	method = sel.Sel.Name
	if !isAcquire(method) && method != "Unlock" && method != "RUnlock" {
		return "", "", nil
	}
	// Walk the receiver chain (s.ks.stripes[i].mu → mu, stripes[i],
	// stripes, ks, s) looking for the innermost registered name.
	for e := sel.X; e != nil; {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if _, ok := lockRank[x.Sel.Name]; ok {
				return x.Sel.Name, method, idx
			}
			e = x.X
		case *ast.IndexExpr:
			idx = x.Index
			e = x.X
		case *ast.Ident:
			if _, ok := lockRank[x.Name]; ok {
				return x.Name, method, idx
			}
			return "", "", nil
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return "", "", nil
		default:
			return "", "", nil
		}
	}
	return "", "", nil
}

// parkedCall resolves a call's callee against the parkCalls table,
// returning a printable name like "(persist.WAL).Commit" when it parks,
// "" otherwise. Resolution is by type, not field name: any expression
// whose static callee is the registered method matches, however the WAL
// is reached.
func parkedCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := recvTypeName(sig.Recv().Type())
	for _, p := range parkCalls {
		if p.name == fn.Name() && p.recv == recv && pkgIs(fn.Pkg(), p.pkg) {
			return "(" + p.pkg + "." + p.recv + ")." + p.name
		}
	}
	return ""
}

// calleeFunc resolves a call expression to its static *types.Func, nil
// when the callee is not a named function/method (indirect calls,
// conversions).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pkgIs matches a package against a table entry by import-path suffix:
// the real repro/internal/persist and a testdata stub named persist both
// qualify.
func pkgIs(pkg *types.Package, name string) bool {
	path := pkg.Path()
	return path == name || strings.HasSuffix(path, "/"+name)
}
