package lockorder

import (
	"testing"

	"repro/internal/analyzers/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "lockorder")
}

// TestRequiresHeld installs a holder requirement — the repo's own table is
// empty — to exercise the mechanism and its //ctvet:holds satisfaction.
func TestRequiresHeld(t *testing.T) {
	old := requiresHeld
	requiresHeld = map[string]string{"saveMu": "cmdMu"}
	defer func() { requiresHeld = old }()
	analysistest.Run(t, analysistest.TestData(), Analyzer, "lockorderreq")
}
