// Package analyzers registers the repo's invariant checkers — the rules
// the race detector can only validate on interleavings it happens to
// execute, encoded as static analysis over every path:
//
//   - lockorder: the global lock order (cmdMu → bulkMu → saveMu → replMu
//     → stripe locks ascending) holds in every function.
//   - cursorclose: pool-recycled cursors reach Close on all control-flow
//     paths.
//   - durabilityerr: errors from WAL append/sync/close, snapshot writes
//     and RESP reply writes are consumed, never dropped.
//   - atomicfield: a struct field accessed via sync/atomic anywhere is
//     accessed atomically everywhere (the rootColor bug generalized).
//
// cmd/ctvet runs them over the tree (standalone or as go vet -vettool);
// //ctvet:ignore <reason> is the per-line escape hatch.
package analyzers

import (
	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/atomicfield"
	"repro/internal/analyzers/cursorclose"
	"repro/internal/analyzers/durabilityerr"
	"repro/internal/analyzers/lockorder"
)

// All returns every registered analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		cursorclose.Analyzer,
		durabilityerr.Analyzer,
		atomicfield.Analyzer,
	}
}
