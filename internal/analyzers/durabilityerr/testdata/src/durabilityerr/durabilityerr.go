// Package durabilityerr is the analyzer's fixture: discarded, blanked,
// deferred and goroutine-lost errors from the watched durability calls,
// plus properly consumed negatives and the //ctvet:ignore escape hatch.
package durabilityerr

import (
	"bench"
	"persist"
	"resp"
)

func discards(w *persist.WAL, rw *resp.Writer, rep bench.Report) {
	w.Sync()                   // want `error from \(persist\.WAL\)\.Sync is discarded`
	w.Commit(7)                // want `error from \(persist\.WAL\)\.Commit is discarded`
	rw.Flush()                 // want `error from \(resp\.Writer\)\.Flush is discarded`
	rw.WriteRaw(nil)           // want `error from \(resp\.Writer\)\.WriteRaw is discarded`
	persist.WriteSnapshot("x") // want `error from persist\.WriteSnapshot is discarded`
	rep.WriteJSON(nil)         // want `error from \(bench\.Report\)\.WriteJSON is discarded`
}

func blanks(w *persist.WAL, rw *resp.Writer) {
	_ = w.Sync()            // want `error from \(persist\.WAL\)\.Sync is assigned to _`
	_ = w.Commit(7)         // want `error from \(persist\.WAL\)\.Commit is assigned to _`
	lsn, _ := w.Append(nil) // want `error from \(persist\.WAL\)\.Append is assigned to _`
	_ = lsn
	_ = rw.WriteCommand(nil) // want `error from \(resp\.Writer\)\.WriteCommand is assigned to _`
}

func blankedReport(rep bench.Report) {
	_ = rep.WriteJSON(nil) // want `error from \(bench\.Report\)\.WriteJSON is assigned to _`
}

func consumedReport(rep bench.Report) error {
	return rep.WriteJSON(nil)
}

func unobservable(w *persist.WAL, rw *resp.Writer) {
	defer w.Close() // want `error from deferred \(persist\.WAL\)\.Close is unobservable`
	go rw.Flush()   // want `error from \(resp\.Writer\)\.Flush in a go statement is unobservable`
}

func consumed(w *persist.WAL, rw *resp.Writer) error {
	if _, err := w.Append(nil); err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		return err
	}
	if err := rw.WriteCommand(nil); err != nil {
		return err
	}
	return rw.Flush()
}

func deferredClosureIsFine(w *persist.WAL) (err error) {
	defer func() {
		if cerr := w.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return w.Sync()
}

func suppressed(rw *resp.Writer) {
	rw.Flush() //ctvet:ignore fixture: teardown flush is best-effort by design
}
