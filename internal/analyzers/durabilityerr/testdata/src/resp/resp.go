// Package resp stubs the repo's RESP writer for the durabilityerr
// fixtures.
package resp

// Writer stands in for the buffered protocol writer.
type Writer struct{}

// Flush drains the buffer to the connection.
func (w *Writer) Flush() error { return nil }

// WriteCommand serializes one command.
func (w *Writer) WriteCommand(args ...[]byte) error { return nil }

// WriteRaw writes preserialized bytes.
func (w *Writer) WriteRaw(b []byte) error { return nil }
