// Package bench stubs the repo's figure report emitter for the
// durabilityerr fixtures.
package bench

import "io"

// Report stands in for one figure's emitted report.
type Report struct{}

// WriteJSON emits the report as one JSON document.
func (rep Report) WriteJSON(w io.Writer) error { return nil }
