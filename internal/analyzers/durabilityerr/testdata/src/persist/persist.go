// Package persist stubs the repo's persistence layer for the
// durabilityerr fixtures; the analyzer matches it by import-path suffix.
package persist

// WAL stands in for the write-ahead log.
type WAL struct{}

// Append logs one record, returning its LSN.
func (w *WAL) Append(rec []byte) (uint64, error) { return 0, nil }

// Sync flushes and fsyncs the log.
func (w *WAL) Sync() error { return nil }

// Commit parks until a coalesced fsync covers lsn.
func (w *WAL) Commit(lsn uint64) error { return nil }

// Close is the final flush+fsync.
func (w *WAL) Close() error { return nil }

// WriteSnapshot writes a point-in-time image.
func WriteSnapshot(path string) error { return nil }
