// Package durabilityerr checks that the error results of the repo's
// durability-critical calls are consumed, never discarded.
//
// The server's durability contract (PR 5/6) is "a WAL failure is an error
// reply, never a silent ack": a write is acknowledged only after its WAL
// append (and, for fsync=always, its sync) succeeded. A dropped error on
// any link of that chain — the append, the sync, the snapshot write, the
// WAL close, or the RESP reply write that carries the ack — silently
// converts a non-durable write into an acknowledged one. Unlike a race,
// that bug produces no crash and no detector report; it only shows up as
// missing data after the wrong power cut.
//
// The watched-call table below names the methods whose error result is
// load-bearing. Discarding one — as a bare statement, via `_ =`, or
// behind go/defer (where the error is unobservable) — is flagged. Sites
// where the drop is genuinely correct (teardown paths writing a
// best-effort error reply) carry //ctvet:ignore with the reason.
package durabilityerr

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analyzers/analysis"
)

// watched names one durability-critical function or method: the package
// (matched by import-path suffix so testdata stubs qualify), the receiver
// type for methods ("" for package functions), and the name. Adding a
// durability-critical call is one line here.
type watched struct {
	pkg  string // import path suffix, e.g. "persist"
	recv string // named receiver type, "" for plain functions
	name string
}

var watchedCalls = []watched{
	// WAL: the write path itself.
	{"persist", "WAL", "Append"},
	{"persist", "WAL", "Sync"},
	{"persist", "WAL", "Commit"}, // the group-commit ack barrier: a dropped error acks an unsynced pipeline
	{"persist", "WAL", "Close"},  // close = final flush+fsync: a dropped error loses the tail
	// Snapshots.
	{"persist", "", "WriteSnapshot"},
	{"persist", "", "SaveIndex"},
	// RESP reply writes: the ack's last hop to the client.
	{"resp", "Writer", "Flush"},
	{"resp", "Writer", "WriteCommand"},
	{"resp", "Writer", "WriteRaw"},
	// Server close drains background saves and closes the WAL.
	{"miniredis", "Server", "Close"},
	// Figure emission: a dropped error silently truncates a recorded
	// benchmark run — the observability analog of an unacked write.
	{"bench", "Report", "WriteJSON"},
}

var Analyzer = &analysis.Analyzer{
	Name: "durabilityerr",
	Doc: "check that errors from WAL append/sync/close, snapshot writes " +
		"and RESP reply writes are consumed (a dropped error acks a write " +
		"that was never durable)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name := watchedCall(pass, call); name != "" && errorResultIndex(pass, call) >= 0 {
						pass.Reportf(call.Pos(),
							"error from %s is discarded; on the durability path a dropped error acks a write that was never durable", name)
					}
				}
			case *ast.DeferStmt:
				if name := watchedCall(pass, st.Call); name != "" && errorResultIndex(pass, st.Call) >= 0 {
					pass.Reportf(st.Pos(),
						"error from deferred %s is unobservable; close/flush explicitly and check the error", name)
				}
			case *ast.GoStmt:
				if name := watchedCall(pass, st.Call); name != "" && errorResultIndex(pass, st.Call) >= 0 {
					pass.Reportf(st.Pos(),
						"error from %s in a go statement is unobservable; run it synchronously or plumb the error back", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags watched calls whose error result lands in the blank
// identifier: `_ = w.Flush()` and `lsn, _ := wal.Append(...)` both erase
// the only evidence the write failed.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	// Single call, possibly multi-value: x, _ := call().
	if len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			name := watchedCall(pass, call)
			if name == "" {
				return
			}
			if errIdx := errorResultIndex(pass, call); errIdx >= 0 && errIdx < len(st.Lhs) {
				if id, ok := st.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(st.Pos(),
						"error from %s is assigned to _; on the durability path a dropped error acks a write that was never durable", name)
				}
			}
			return
		}
	}
	// Parallel form: a, b := f(), g().
	if len(st.Lhs) == len(st.Rhs) {
		for i, rhs := range st.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			name := watchedCall(pass, call)
			if name == "" {
				continue
			}
			if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(st.Pos(),
					"error from %s is assigned to _; on the durability path a dropped error acks a write that was never durable", name)
			}
		}
	}
}

// errorResultIndex returns the index of the last error in the call's
// result tuple, -1 if none.
func errorResultIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := t.Len() - 1; i >= 0; i-- {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
		return -1
	default:
		if isErrorType(tv.Type) {
			return 0
		}
		return -1
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// watchedCall resolves a call's callee and returns a printable name like
// "(persist.WAL).Append" when it is in the watched table, "" otherwise.
func watchedCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	for _, w := range watchedCalls {
		if w.name != fn.Name() || w.recv != recv || !pkgIs(fn.Pkg(), w.pkg) {
			continue
		}
		if recv != "" {
			return "(" + w.pkg + "." + recv + ")." + w.name
		}
		return w.pkg + "." + w.name
	}
	return ""
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pkgIs matches a package against a table entry by import-path suffix:
// the real repro/internal/persist, a vendored copy, and a testdata stub
// named persist all qualify.
func pkgIs(pkg *types.Package, name string) bool {
	path := pkg.Path()
	return path == name || strings.HasSuffix(path, "/"+name)
}
