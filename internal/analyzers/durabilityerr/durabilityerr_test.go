package durabilityerr

import (
	"testing"

	"repro/internal/analyzers/analysis/analysistest"
)

func TestDurabilityErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "durabilityerr")
}
