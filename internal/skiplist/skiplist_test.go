package skiplist_test

import (
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/skiplist"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return skiplist.New(3) }, indextest.Options{})
}

func TestLevelDistribution(t *testing.T) {
	l := skiplist.New(5)
	for i := 0; i < 10000; i++ {
		l.Set([]byte{byte(i >> 8), byte(i)}, uint64(i))
	}
	if l.Len() != 10000 {
		t.Fatalf("Len = %d", l.Len())
	}
	m := l.MemoryOverheadBytes()
	// Expected tower height 1/(1-1/4) = 1.33 pointers/node: memory should be
	// within sane bounds of that.
	perKey := float64(m) / 10000
	if perKey < 56 || perKey > 120 {
		t.Fatalf("bytes/key %.1f out of expected skiplist range", perKey)
	}
}
