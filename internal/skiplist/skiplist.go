// Package skiplist implements Pugh's skip list, the engine behind Redis's
// default sorted set (paper §6.8: "Redis' implementation uses a hash table
// for point lookups and a skip list for range scans"). Single-threaded,
// like Redis's event loop.
package skiplist

import (
	"bytes"
	"math/rand"
)

const (
	maxLevel = 32
	pBranch  = 4 // 1/p = 1/4, Redis's setting
)

type node struct {
	key  []byte
	val  uint64
	next []*node
}

// List is an ordered map from byte-string keys to uint64 values.
type List struct {
	head  *node
	level int
	size  int
	rng   *rand.Rand
}

// New creates an empty skip list.
func New(seed int64) *List {
	return &List{
		head:  &node{next: make([]*node, maxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Name implements index.Index.
func (l *List) Name() string { return "SkipList" }

// Len returns the number of stored keys.
func (l *List) Len() int { return l.size }

func (l *List) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.rng.Intn(pBranch) == 0 {
		lvl++
	}
	return lvl
}

// findGE walks to the last node before key at every level, filling update.
func (l *List) findGE(key []byte, update []*node) *node {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		if update != nil {
			update[i] = x
		}
	}
	return x.next[0]
}

// Get returns the value stored for key.
func (l *List) Get(key []byte) (uint64, bool) {
	n := l.findGE(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.val, true
	}
	return 0, false
}

// Set inserts or updates key. added reports whether key was newly inserted.
func (l *List) Set(key []byte, value uint64) (added bool, err error) {
	var update [maxLevel]*node
	for i := range update {
		update[i] = l.head
	}
	n := l.findGE(key, update[:])
	if n != nil && bytes.Equal(n.key, key) {
		n.val = value
		return false, nil
	}
	lvl := l.randomLevel()
	if lvl > l.level {
		l.level = lvl
	}
	nn := &node{key: append([]byte(nil), key...), val: value, next: make([]*node, lvl)}
	for i := 0; i < lvl; i++ {
		nn.next[i] = update[i].next[i]
		update[i].next[i] = nn
	}
	l.size++
	return true, nil
}

// Delete removes key.
func (l *List) Delete(key []byte) bool {
	var update [maxLevel]*node
	for i := range update {
		update[i] = l.head
	}
	n := l.findGE(key, update[:])
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if update[i].next[i] == n {
			update[i].next[i] = n.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.size--
	return true
}

// Scan visits up to n keys ≥ start in order.
func (l *List) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	x := l.findGE(start, nil)
	visited := 0
	for x != nil && visited < n {
		visited++
		if !fn(x.key, x.val) {
			break
		}
		x = x.next[0]
	}
	return visited
}

// MemoryOverheadBytes counts node structures and tower pointers, excluding
// key bytes.
func (l *List) MemoryOverheadBytes() int64 {
	var total int64
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		// node struct (key header 24 + val 8 + slice header 24) + tower.
		total += 56 + int64(cap(x.next))*8
	}
	return total
}
