package skiplist

import "repro/internal/index"

// Index v2 batch and cursor operations, satisfied with the shared loop-based
// fallbacks: this engine's probes are dependent memory accesses, so there is
// no cross-key MLP to harvest by interleaving them (unlike the Cuckoo Trie).

// MultiGet implements index.Index with one Get per key.
func (l *List) MultiGet(keys [][]byte, vals []uint64, found []bool) {
	index.FallbackMultiGet(l, keys, vals, found)
}

// MultiSet implements index.Index with one Set per key.
func (l *List) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	return index.FallbackMultiSet(l, keys, vals, errs)
}

// NewCursor implements index.Index with a paginated cursor over Scan.
func (l *List) NewCursor() index.Cursor { return index.NewScanCursor(l) }
