package core

import (
	"bytes"

	"repro/internal/keys"
)

// Insertion (§4.5). A descent finds the final node from which the search can
// no longer advance:
//
//   - a regular node missing the child bit → add a leaf under it;
//   - a leaf → the stored key and the new key are split into a chain of
//     (jump-compressed) nodes for their common prefix, with two leaves below;
//   - a jump node with a symbol mismatch → the jump is split at the mismatch
//     into (prefix jump, regular branch node, suffix jump) and a leaf added.
//
// Afterwards the new leaf is linked into the sorted leaf list (requiring a
// predecessor search) and subtree-max locators on the path are updated.

// insertion attempt results
const (
	insDone = iota
	insRetry
	insNeedRoom
	insFull
)

// Set inserts key k with value v, or updates the value if k is present.
// added reports whether k was newly inserted rather than updated in place.
func (tr *Trie) Set(k []byte, v uint64) (added bool, err error) {
	if len(k) > MaxKeyLen {
		return false, ErrKeyTooLong
	}
	var sbuf [96]byte
	syms := keys.AppendSymbols(sbuf[:0], k)
	var pbuf [32]pathNode
	path := pbuf[:0]
	roomAttempts := 0
	for {
		t := tr.tbl.Load()
		var status int
		var roomHash uint64
		status, added, roomHash, path = tr.insertOnce(t, syms, k, v, path)
		switch status {
		case insDone:
			return added, nil
		case insRetry:
			continue
		case insNeedRoom:
			// Bound eviction attempts per insert: repeated failures mean the
			// table is effectively full even if isolated slots exist.
			roomAttempts++
			if roomAttempts <= 16 && tr.makeRoom(t, roomHash) {
				continue
			}
			fallthrough
		case insFull:
			if tr.cfg.AutoResize {
				if err := tr.resize(t); err != nil {
					return false, err
				}
				roomAttempts = 0
				continue
			}
			return false, ErrTableFull
		}
	}
}

func (tr *Trie) insertOnce(t *table, syms []byte, k []byte, v uint64, path []pathNode) (int, bool, uint64, []pathNode) {
	var st searchState
	path, st = tr.searchPath(t, syms, path)
	if st.outcome == soRestart {
		return insRetry, false, 0, path
	}
	term := st.terminal()

	if st.outcome == soLeaf {
		old := tr.recs.key(term.ent.recIdx)
		if bytes.Equal(old, k) {
			// Update in place: lock the leaf's bucket to pin the record.
			if !t.tryLock(term.ref.bucket, term.ref.ver) {
				return insRetry, false, 0, path
			}
			tr.recs.setValue(term.ent.recIdx, v)
			t.unlock(term.ref.bucket, term.ref.ver, false)
			return insDone, false, 0, path
		}
	}

	p := newPlan(t)
	defer p.recycle()
	var ok bool
	switch st.outcome {
	case soMissing:
		ok = tr.planSimpleLeaf(p, path, syms, st.idx, k, v)
	case soLeaf:
		ok = tr.planLeafSplit(p, path, syms, k, v)
	case soJumpMismatch:
		ok = tr.planJumpSplit(p, path, syms, st.idx, st.jumpOff, k, v)
	}
	if p.colorsFull {
		return insFull, false, 0, path
	}
	if p.needRoom {
		return insNeedRoom, false, p.needRoomHash, path
	}
	if !ok || p.failed {
		return insRetry, false, 0, path
	}
	if !p.apply(tr) {
		return insRetry, false, 0, path
	}
	tr.count.Add(1)
	return insDone, true, 0, path
}

// linkLeaf wires the new leaf (write index li, locator lloc) into the sorted
// leaf list after predecessor pred (or as the new minimum when absent), and
// applies the subtree-max update rule to the path: every ancestor whose
// subtree-max equals matchLoc now has the new leaf as its maximum.
// ancestors excludes nodes whose locators the caller sets explicitly.
func (tr *Trie) linkLeaf(p *plan, ancestors []pathNode, li int, lloc locator,
	pred predLeaf, predFound bool, matchLoc locator, matchValid bool) bool {
	if tr.cfg.DisableLeafList {
		return true
	}
	leaf := p.entOf(li)
	if predFound {
		leaf.hasNext = pred.ent.hasNext
		leaf.locHash = pred.ent.locHash
		leaf.locColor = pred.ent.locColor
		pm := p.modify(pred.ref, pred.ent)
		pm.hasNext = true
		pm.setLoc(lloc)
	} else {
		// New global minimum. Register bucket 0 first (serializes min
		// updates), then read the current min.
		if _, ok := p.snapshot(0); !ok {
			return false
		}
		if oldMin, valid := unpackMinLoc(tr.minLoc.Load()); valid {
			leaf.hasNext = true
			leaf.setLoc(oldMin)
		}
		p.setMin(lloc)
	}
	for i := range ancestors {
		n := &ancestors[i]
		if n.ent.kind == kindLeaf {
			continue
		}
		switch {
		case !n.ent.hasLoc:
			// Only the root of an empty trie lacks a subtree-max.
			m := p.modify(n.ref, n.ent)
			m.hasLoc = true
			m.setLoc(lloc)
		case matchValid && n.ent.maxLeafLoc() == matchLoc:
			m := p.modify(n.ref, n.ent)
			m.setLoc(lloc)
		}
	}
	return true
}

// planSimpleLeaf handles soMissing: a new leaf under regular node
// path[last] for symbol syms[idx].
func (tr *Trie) planSimpleLeaf(p *plan, path []pathNode, syms []byte, idx int, k []byte, v uint64) bool {
	term := &path[len(path)-1]
	s := syms[idx]
	hLeaf := p.t.step(term.hash, s)

	var pred predLeaf
	var predFound bool
	if !tr.cfg.DisableLeafList {
		var vbuf [8]entryRef
		vset := vbuf[:0]
		var ok bool
		pred, predFound, ok = p.t.predViaAncestors(path, syms, &vset)
		if !ok {
			return false
		}
		for _, r := range vset {
			p.addRef(r)
		}
	}

	rec := tr.recs.alloc(k, v)
	li, lloc := p.place(hLeaf, entry{
		kind:        kindLeaf,
		lastSym:     s,
		parentColor: term.ent.color,
		recIdx:      rec,
	})
	if li < 0 {
		tr.recs.release(rec)
		return false
	}

	pm := p.modify(term.ref, term.ent)
	pm.w1 = bitmapSet(pm.w1, s)

	return tr.linkLeaf(p, path, li, lloc, pred, predFound, pred.loc(), predFound)
}

// planLeafSplit handles soLeaf with a different stored key: replace leaf L
// (name k[:j]) with a chain of jump nodes covering the common prefix, a
// regular branch node at the divergence, and two leaves.
func (tr *Trie) planLeafSplit(p *plan, path []pathNode, syms []byte, k []byte, v uint64) bool {
	L := &path[len(path)-1]
	j := L.depth
	oldKey := tr.recs.key(L.ent.recIdx)
	var obuf [96]byte
	osyms := keys.AppendSymbols(obuf[:0], oldKey)

	// First divergence; guaranteed to exist at or after j because the
	// terminator makes no key a symbol-prefix of another.
	d := j
	for d < len(syms) && d < len(osyms) && syms[d] == osyms[d] {
		d++
	}
	if d >= len(syms) || d >= len(osyms) {
		return false // torn read: keys identical-prefixed beyond bounds
	}
	sNew, sOld := syms[d], osyms[d]

	// Hash of k[:d] (== oldKey[:d]).
	hD := L.hash
	for m := j; m < d; m++ {
		hD = p.t.step(hD, syms[m])
	}

	// Branch node R at depth d. If d == j it reuses L's entry identity.
	var rIdx = -1
	var rColor uint8
	var rIsMod bool
	if d == j {
		rm := p.modify(L.ref, L.ent)
		rm.kind = kindInternal
		rm.recIdx = 0
		rm.hasNext = false
		rm.w1 = 0
		rm.w1 = bitmapSet(rm.w1, sNew)
		rm.w1 = bitmapSet(rm.w1, sOld)
		rm.jumpLen = 0
		rColor = L.ent.color
		rIsMod = true
	} else {
		var ok bool
		rIdx, rColor, ok = tr.placeChain(p, path, syms, j, d, hD, sNew, sOld)
		if !ok {
			return false
		}
	}

	// Two leaves at depth d+1.
	hNew := p.t.step(hD, sNew)
	hOldLeaf := p.t.step(hD, sOld)
	rec := tr.recs.alloc(k, v)
	liNew, locNew := p.place(hNew, entry{
		kind: kindLeaf, lastSym: sNew, parentColor: rColor, recIdx: rec,
	})
	liOld, locOld := p.place(hOldLeaf, entry{
		kind: kindLeaf, lastSym: sOld, parentColor: rColor, recIdx: L.ent.recIdx,
	})
	if liNew < 0 || liOld < 0 {
		tr.recs.release(rec)
		return false
	}

	bigLoc, bigIdx := locNew, liNew
	if sOld > sNew {
		bigLoc, bigIdx = locOld, liOld
	}
	_ = bigIdx

	// Patch the chain's subtree-max locators.
	if rIsMod {
		for i := range p.mods {
			if p.mods[i].ref.slotRef == L.ref.slotRef {
				p.mods[i].ent.hasLoc = true
				p.mods[i].ent.setLoc(bigLoc)
			}
		}
	} else {
		// All chain entries (jumps + R) were placed with a deferred locator.
		for i := range p.writes {
			w := &p.writes[i]
			if w.ent.kind != kindLeaf && !w.ent.hasLoc {
				w.ent.hasLoc = true
				w.ent.setLoc(bigLoc)
			}
		}
		// The chain head reuses L's entry: set its locator too.
		for i := range p.mods {
			if p.mods[i].ref.slotRef == L.ref.slotRef {
				p.mods[i].ent.hasLoc = true
				p.mods[i].ent.setLoc(bigLoc)
			}
		}
	}
	if rIdx >= 0 {
		r := p.entOf(rIdx)
		r.hasLoc = true
		r.setLoc(bigLoc)
	}

	if tr.cfg.DisableLeafList {
		return true
	}

	// Leaf-list wiring. pred(min(k, oldKey)) is found by walking L's
	// ancestors; the two new leaves are adjacent in key order.
	var vbuf [8]entryRef
	vset := vbuf[:0]
	prev, prevFound, ok := p.t.predViaAncestors(path[:len(path)-1], syms, &vset)
	if !ok {
		return false
	}
	for _, r := range vset {
		p.addRef(r)
	}

	newLeaf := p.entOf(liNew)
	oldLeaf := p.entOf(liOld)
	var firstLoc locator
	var firstIdx int
	if sOld < sNew { // oldKey < k: prev → old → new → L.next
		oldLeaf.hasNext = true
		oldLeaf.setLoc(locNew)
		newLeaf.hasNext = L.ent.hasNext
		newLeaf.locHash = L.ent.locHash
		newLeaf.locColor = L.ent.locColor
		firstLoc, firstIdx = locOld, liOld
	} else { // k < oldKey: prev → new → old → L.next
		newLeaf.hasNext = true
		newLeaf.setLoc(locOld)
		oldLeaf.hasNext = L.ent.hasNext
		oldLeaf.locHash = L.ent.locHash
		oldLeaf.locColor = L.ent.locColor
		firstLoc, firstIdx = locNew, liNew
	}
	_ = firstIdx
	if prevFound {
		pm := p.modify(prev.ref, prev.ent)
		pm.hasNext = true
		pm.setLoc(firstLoc)
	} else {
		if _, ok := p.snapshot(0); !ok {
			return false
		}
		p.setMin(firstLoc)
	}

	// Ancestors whose max was L now have the larger of the two leaves.
	oldLLoc := L.loc()
	for i := range path[:len(path)-1] {
		n := &path[i]
		if n.ent.kind == kindLeaf {
			continue
		}
		if !n.ent.hasLoc || n.ent.maxLeafLoc() == oldLLoc {
			m := p.modify(n.ref, n.ent)
			m.hasLoc = true
			m.setLoc(bigLoc)
		}
	}
	return true
}

// placeChain converts L (path's terminal leaf, name k[:j]) into the head of
// a chain of jump nodes covering symbols syms[j..d), ending at a new regular
// branch node R at depth d with child bits {sNew, sOld}. Returns R's write
// index and color.
func (tr *Trie) placeChain(p *plan, path []pathNode, syms []byte, j, d int, hD uint64, sNew, sOld byte) (int, uint8, bool) {
	L := &path[len(path)-1]

	// R is placed first so jump nodes can reference child colors; jumps are
	// then placed bottom-up.
	var rBitmap uint64
	rBitmap = bitmapSet(rBitmap, sNew)
	rBitmap = bitmapSet(rBitmap, sOld)
	rIdx, rLoc := p.place(hD, entry{
		kind:         kindInternal,
		lastSym:      syms[d-1],
		parentIsJump: true,
		w1:           rBitmap,
	})
	if rIdx < 0 {
		return -1, 0, false
	}

	// Segment [j, d) into jump groups of ≤ maxJumpSymbols, bottom-up.
	// seg boundaries: head group starts at j and reuses L's entry.
	n := d - j
	nGroups := (n + maxJumpSymbols - 1) / maxJumpSymbols
	childColor := rLoc.color
	// Place groups from the last (deepest) to the second; the first group
	// rewrites L's entry.
	for g := nGroups - 1; g >= 1; g-- {
		start := j + g*maxJumpSymbols
		end := start + maxJumpSymbols
		if end > d {
			end = d
		}
		hStart := L.hash
		for m := j; m < start; m++ {
			hStart = p.t.step(hStart, syms[m])
		}
		idx, loc := p.place(hStart, entry{
			kind:         kindJump,
			lastSym:      syms[start-1],
			parentIsJump: true,
			jumpLen:      uint8(end - start),
			w1:           packJumpSymbols(syms[start:end]),
			childColor:   childColor,
		})
		if idx < 0 {
			return -1, 0, false
		}
		childColor = loc.color
	}
	headEnd := j + maxJumpSymbols
	if headEnd > d {
		headEnd = d
	}
	hm := p.modify(L.ref, L.ent)
	hm.kind = kindJump
	hm.recIdx = 0
	hm.hasNext = false
	hm.hasLoc = false
	hm.jumpLen = uint8(headEnd - j)
	hm.w1 = packJumpSymbols(syms[j:headEnd])
	hm.childColor = childColor
	return rIdx, rLoc.color, true
}

// planJumpSplit handles soJumpMismatch: jump node J (depth j, jumpLen m)
// diverges from the key at offset off (global symbol index idx).
func (tr *Trie) planJumpSplit(p *plan, path []pathNode, syms []byte, idx, off int, k []byte, v uint64) bool {
	J := &path[len(path)-1]
	j := J.depth
	m := int(J.ent.jumpLen)
	sOld := J.ent.jumpSymbol(off)
	sNew := syms[idx]

	// Hash of k[:idx] — step through the matched jump prefix.
	hR := J.hash
	for q := j; q < idx; q++ {
		hR = p.t.step(hR, syms[q])
	}
	hOld := p.t.step(hR, sOld)
	hNew := p.t.step(hR, sNew)

	oldMaxLoc := J.ent.maxLeafLoc()
	oldHasLoc := J.ent.hasLoc

	// Branch node R.
	var rBitmap uint64
	rBitmap = bitmapSet(rBitmap, sOld)
	rBitmap = bitmapSet(rBitmap, sNew)
	var rIdx = -1
	var rColor uint8
	if off == 0 {
		rm := p.modify(J.ref, J.ent)
		rm.kind = kindInternal
		rm.jumpLen = 0
		rm.childColor = 0
		rm.w1 = rBitmap
		rColor = J.ent.color
	} else {
		var rLoc locator
		rIdx, rLoc = p.place(hR, entry{
			kind:         kindInternal,
			lastSym:      syms[idx-1],
			parentIsJump: true,
			w1:           rBitmap,
		})
		if rIdx < 0 {
			return false
		}
		rColor = rLoc.color
		jm := p.modify(J.ref, J.ent)
		jm.jumpLen = uint8(off)
		jm.w1 = packJumpSymbols(symsOfJump(&J.ent, 0, off))
		jm.childColor = rColor
	}

	// Old branch below R.
	if off+1 < m {
		si, _ := p.place(hOld, entry{
			kind:        kindJump,
			lastSym:     sOld,
			parentColor: rColor,
			jumpLen:     uint8(m - off - 1),
			w1:          packJumpSymbols(symsOfJump(&J.ent, off+1, m)),
			childColor:  J.ent.childColor,
			hasLoc:      oldHasLoc,
			locHash:     oldMaxLoc.hash,
			locColor:    oldMaxLoc.color,
		})
		if si < 0 {
			return false
		}
	} else {
		// J's original child becomes R's direct child: its parentColor
		// becomes meaningful.
		oc, ocRef, ok := p.t.childByColor(hOld, sOld, J.ent.childColor, J.ref)
		if !ok {
			return false
		}
		om := p.modify(ocRef, oc)
		om.parentColor = rColor
		om.parentIsJump = false
	}

	// New leaf.
	rec := tr.recs.alloc(k, v)
	li, lloc := p.place(hNew, entry{
		kind: kindLeaf, lastSym: sNew, parentColor: rColor, recIdx: rec,
	})
	if li < 0 {
		tr.recs.release(rec)
		return false
	}

	// Subtree-max locators.
	bigLoc := lloc
	if sOld > sNew {
		bigLoc = oldMaxLoc
	}
	if rIdx >= 0 {
		r := p.entOf(rIdx)
		r.hasLoc = true
		r.setLoc(bigLoc)
		jm := p.modify(J.ref, J.ent) // returns existing mod
		jm.hasLoc = true
		jm.setLoc(bigLoc)
	} else {
		rm := p.modify(J.ref, J.ent)
		rm.hasLoc = true
		rm.setLoc(bigLoc)
	}

	if tr.cfg.DisableLeafList {
		return true
	}

	// Predecessor: the old subtree's max when the new key branches above it;
	// otherwise an ancestor walk.
	var pred predLeaf
	var predFound bool
	if sNew > sOld {
		if !oldHasLoc {
			return false
		}
		var ok bool
		pred, ok = p.t.maxLeafOf(J)
		if !ok {
			return false
		}
		predFound = true
		p.addRef(pred.ref)
	} else {
		var vbuf [8]entryRef
		vset := vbuf[:0]
		var ok bool
		pred, predFound, ok = p.t.predViaAncestors(path[:len(path)-1], syms, &vset)
		if !ok {
			return false
		}
		for _, r := range vset {
			p.addRef(r)
		}
	}

	matchLoc := oldMaxLoc
	matchValid := sNew > sOld // ancestors tracking the old subtree max
	return tr.linkLeaf(p, path[:len(path)-1], li, lloc, pred, predFound, matchLoc, matchValid)
}

// symsOfJump extracts jump symbols [from, to) of e into a fresh slice.
func symsOfJump(e *entry, from, to int) []byte {
	out := make([]byte, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, e.jumpSymbol(i))
	}
	return out
}
