package core

import "repro/internal/keys"

// LookupLevels returns the cache-line addresses a lookup of k touches, one
// slice per trie level: the two candidate buckets of each node on the
// root-to-leaf path, plus the record line. Levels are what the memory
// simulator needs to model the prefetched (independent) probe schedule of
// Algorithm 1 — including the superfluous accesses of §4.7: both buckets
// are fetched per node, and jump nodes do not reduce the probe count (the
// probes for symbols compressed into a jump node are issued anyway).
func (tr *Trie) LookupLevels(k []byte) [][]uint64 {
	t := tr.tbl.Load()
	var sbuf [96]byte
	syms := keys.AppendSymbols(sbuf[:0], k)

	var levels [][]uint64
	lineFor := func(b uint64) uint64 { return b * bucketWords * 8 / 64 }
	addLevel := func(h uint64) {
		b1, b2, _ := t.bucketsOf(h)
		levels = append(levels, []uint64{lineFor(b1), lineFor(b2)})
	}

	// Walk the real structure to find the unique-prefix depth; every symbol
	// consumed issues a probe level, even inside jump nodes (§4.7).
	root, rootRef, ok := tr.tryFindRoot(t)
	if !ok {
		return nil
	}
	cur := pathNode{ent: root, ref: rootRef}
	h := uint64(0)
	for i := 0; i < len(syms); {
		s := syms[i]
		h = t.step(h, s)
		addLevel(h)
		switch cur.ent.kind {
		case kindInternal:
			if !bitmapHas(cur.ent.w1, s) {
				return levels
			}
		case kindJump:
			off := i - cur.depth
			if cur.ent.jumpSymbol(off) != s {
				return levels
			}
			if off+1 < int(cur.ent.jumpLen) {
				i++
				continue
			}
		default:
			return levels
		}
		child, ref, cok := t.findChild(&cur, h, s, cur.ent.kind == kindJump)
		if !cok {
			return levels
		}
		cur = pathNode{ent: child, ref: ref, depth: i + 1, hash: h}
		i++
		if child.kind == kindLeaf {
			// Final dependent access: the record (key comparison, §4.4).
			levels = append(levels, []uint64{1<<40 + uint64(child.recIdx)*32/64})
			return levels
		}
	}
	return levels
}
