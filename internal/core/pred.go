package core

import "math/bits"

// Predecessor search (§4.4, Figure 5): ascend the search path until an
// ancestor has a child smaller than the path's branch symbol, then follow
// that child's subtree-max locator straight to the predecessor leaf. The
// locator skips the whole down-traversal, which could otherwise not be
// parallelized (the max leaf's key is unknown).

// predLeaf describes a predecessor leaf found by the walk.
type predLeaf struct {
	ent  entry
	ref  entryRef
	hash uint64
}

func (p *predLeaf) loc() locator { return locator{p.hash, p.ent.color} }

// maxSetBitBelow returns the largest symbol < s present in bitmap w, or -1.
func maxSetBitBelow(w uint64, s byte) int {
	masked := w & (1<<uint(s) - 1)
	if masked == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(masked)
}

// predViaAncestors finds the predecessor of the key whose branch symbols are
// syms, walking up the recorded ancestors nodes[0..len). For each regular
// ancestor at depth d the branch symbol is syms[d]; jump ancestors cannot
// branch and are skipped. Buckets examined along the way are appended to
// vset for validation by the caller.
//
// Returns found=false when the key has no predecessor (it would be the
// global minimum), ok=false on concurrent conflict (restart the operation).
func (t *table) predViaAncestors(nodes []pathNode, syms []byte, vset *[]entryRef) (p predLeaf, found, ok bool) {
	for i := len(nodes) - 1; i >= 0; i-- {
		n := &nodes[i]
		if n.ent.kind != kindInternal {
			continue
		}
		s := syms[n.depth]
		sib := maxSetBitBelow(n.ent.w1, s)
		if sib < 0 {
			continue
		}
		hs := t.step(n.hash, byte(sib))
		child, ref, cok := t.searchChildOfRegular(hs, byte(sib), n.ref, n.ent.color)
		if !cok {
			return predLeaf{}, false, false
		}
		*vset = append(*vset, ref)
		if child.kind == kindLeaf {
			return predLeaf{ent: child, ref: ref, hash: hs}, true, true
		}
		// Follow the sibling's subtree-max locator to the predecessor leaf.
		ml := child.maxLeafLoc()
		leaf, lref, lok := t.followLocator(ml, ref)
		if !lok {
			return predLeaf{}, false, false
		}
		if leaf.kind != kindLeaf {
			return predLeaf{}, false, false
		}
		*vset = append(*vset, lref)
		return predLeaf{ent: leaf, ref: lref, hash: ml.hash}, true, true
	}
	return predLeaf{}, false, true
}

// maxLeafOf resolves node's subtree-max locator to its leaf. node must be an
// internal or jump node with a valid locator.
func (t *table) maxLeafOf(n *pathNode) (predLeaf, bool) {
	ml := n.ent.maxLeafLoc()
	leaf, lref, ok := t.followLocator(ml, n.ref)
	if !ok || leaf.kind != kindLeaf {
		return predLeaf{}, false
	}
	return predLeaf{ent: leaf, ref: lref, hash: ml.hash}, true
}
