package core

import (
	"sync"
	"sync/atomic"
)

// recordStore holds the key-value records that leaves point to. Keys are
// copied into large append-only chunks and addressed by (chunk, offset), so
// the store contains almost no Go pointers — mirroring the paper's use of a
// contiguous allocator (jemalloc + huge pages) and keeping the Go GC out of
// the hot path.
//
// Optimistic readers may hold a record index whose leaf has concurrently
// been deleted and the slot reused. Safety relies on two properties:
//
//  1. A slot's (chunk, offset, length) triple is packed into ONE uint64 read
//     and written atomically, so a reader sees some complete triple — stale
//     perhaps, torn never — and every published triple references key bytes
//     fully written before the triple was stored.
//  2. Chunk bytes are append-only and never overwritten, so a stale triple
//     yields stale-but-intact data.
//
// Callers must still re-validate the leaf's bucket version after acting on
// a record read; a reused slot implies the leaf was deleted, which bumps the
// version and restarts the reader.
//
// Slot layout (stride 2):
//
//	word 0: chunk<<33 | offset<<13 | keyLen   (keyLen ≤ 8191 ≥ MaxKeyLen)
//	word 1: value (mutable; YCSB update workloads write it in place)
const (
	recChunkSize  = 1 << 20
	recSlotStride = 2
	recLenBits    = 13
	recPosBits    = 20
)

// Chunks are allocated at full fixed length and filled by copy, never by
// append: reassigning a slice header that readers load concurrently would
// itself be a race.
type recordStore struct {
	mu     sync.Mutex
	slots  atomic.Pointer[[]uint64]
	chunks atomic.Pointer[[][]byte]
	free   []uint32 // freed slot indices (under mu)
	used   int      // live slot count (under mu)
	curPos int      // fill position in the active chunk (under mu)
}

func newRecordStore(capHint int) *recordStore {
	rs := &recordStore{}
	slots := make([]uint64, 0, recSlotStride*maxInt(capHint, 64))
	rs.slots.Store(&slots)
	chunks := make([][]byte, 0, 8)
	rs.chunks.Store(&chunks)
	return rs
}

// alloc stores (key, value) and returns the new record index. len(key) must
// be ≤ MaxKeyLen (< recChunkSize). The returned index must be published to
// readers only through a seqlock-protected entry write.
func (rs *recordStore) alloc(key []byte, value uint64) uint32 {
	rs.mu.Lock()
	defer rs.mu.Unlock()

	chunks := *rs.chunks.Load()
	var chunkIdx, pos uint64
	if len(chunks) == 0 || recChunkSize-rs.curPos < len(key) {
		c := make([]byte, recChunkSize)
		copy(c, key)
		nc := append(chunks, c)
		rs.chunks.Store(&nc)
		chunkIdx, pos = uint64(len(nc)-1), 0
		rs.curPos = len(key)
	} else {
		last := len(chunks) - 1
		pos = uint64(rs.curPos)
		copy(chunks[last][rs.curPos:], key)
		chunkIdx = uint64(last)
		rs.curPos += len(key)
	}

	var idx uint32
	if n := len(rs.free); n > 0 {
		idx = rs.free[n-1]
		rs.free = rs.free[:n-1]
	} else {
		slots := *rs.slots.Load()
		if len(slots)+recSlotStride > cap(slots) {
			grown := make([]uint64, len(slots), 2*cap(slots)+recSlotStride*64)
			copy(grown, slots)
			rs.slots.Store(&grown)
			slots = grown
		}
		slots = slots[:len(slots)+recSlotStride]
		rs.slots.Store(&slots)
		idx = uint32(len(slots)/recSlotStride - 1)
	}
	sl := *rs.slots.Load()
	base := int(idx) * recSlotStride
	meta := chunkIdx<<(recPosBits+recLenBits) | pos<<recLenBits | uint64(len(key))
	atomic.StoreUint64(&sl[base+1], value)
	atomic.StoreUint64(&sl[base], meta)
	rs.used++
	return idx
}

// release returns a slot to the free list. Key bytes are not reclaimed until
// the trie is resized (the paper's implementation has no deletions at all;
// see DESIGN.md).
func (rs *recordStore) release(idx uint32) {
	rs.mu.Lock()
	rs.free = append(rs.free, idx)
	rs.used--
	rs.mu.Unlock()
}

// key returns the key bytes of record idx. The slice aliases immutable chunk
// storage. The caller must re-validate the leaf it got idx from afterwards:
// a concurrent delete-and-reuse makes this read stale (but never torn).
func (rs *recordStore) key(idx uint32) []byte {
	sl := *rs.slots.Load()
	base := int(idx) * recSlotStride
	if base+1 >= len(sl) {
		return nil
	}
	meta := atomic.LoadUint64(&sl[base])
	klen := meta & (1<<recLenBits - 1)
	pos := meta >> recLenBits & (1<<recPosBits - 1)
	ci := meta >> (recPosBits + recLenBits)
	chunks := *rs.chunks.Load()
	if ci >= uint64(len(chunks)) {
		return nil
	}
	c := chunks[ci]
	if pos+klen > uint64(len(c)) {
		return nil
	}
	return c[pos : pos+klen : pos+klen]
}

func (rs *recordStore) value(idx uint32) uint64 {
	sl := *rs.slots.Load()
	base := int(idx) * recSlotStride
	if base+1 >= len(sl) {
		return 0
	}
	return atomic.LoadUint64(&sl[base+1])
}

func (rs *recordStore) setValue(idx uint32, v uint64) {
	sl := *rs.slots.Load()
	base := int(idx) * recSlotStride
	if base+1 >= len(sl) {
		return
	}
	atomic.StoreUint64(&sl[base+1], v)
}

// memoryBytes reports the store's slot-metadata footprint (the "pointers to
// key-value pairs" the paper counts as index overhead) and the key-bytes
// footprint (which the paper excludes).
func (rs *recordStore) memoryBytes() (slotBytes, keyBytes int64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	slots := *rs.slots.Load()
	chunks := *rs.chunks.Load()
	keyBytes = int64(len(chunks)) * recChunkSize
	return int64(cap(slots)) * 8, keyBytes
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
