package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/keys"
)

func newTestTrie(capacity int) *Trie {
	return New(Config{CapacityHint: capacity, AutoResize: true})
}

func TestEmptyTrie(t *testing.T) {
	tr := newTestTrie(16)
	if tr.Len() != 0 {
		t.Fatal("new trie not empty")
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("Get on empty trie found a key")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty trie")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty trie")
	}
	it, err := tr.Seek(nil)
	if err != nil {
		t.Fatal(err)
	}
	if it.Valid() {
		t.Fatal("iterator valid on empty trie")
	}
}

func TestSingleKey(t *testing.T) {
	tr := newTestTrie(16)
	if _, err := tr.Set([]byte("hello"), 42); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get([]byte("hello")); !ok || v != 42 {
		t.Fatalf("Get = %d,%v want 42,true", v, ok)
	}
	if _, ok := tr.Get([]byte("hellp")); ok {
		t.Fatal("found absent key")
	}
	if _, ok := tr.Get([]byte("hell")); ok {
		t.Fatal("found absent prefix key")
	}
	if _, ok := tr.Get([]byte("helloo")); ok {
		t.Fatal("found absent extension key")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	k, v, ok := tr.Min()
	if !ok || string(k) != "hello" || v != 42 {
		t.Fatalf("Min = %q,%d,%v", k, v, ok)
	}
	k, v, ok = tr.Max()
	if !ok || string(k) != "hello" || v != 42 {
		t.Fatalf("Max = %q,%d,%v", k, v, ok)
	}
}

func TestUpdateValue(t *testing.T) {
	tr := newTestTrie(16)
	mustSet(t, tr, []byte("k"), 1)
	mustSet(t, tr, []byte("k"), 2)
	if v, _ := tr.Get([]byte("k")); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after update", tr.Len())
	}
}

func TestPrefixPairs(t *testing.T) {
	// Keys where one is a byte-prefix of the other exercise the terminator
	// symbol handling.
	tr := newTestTrie(64)
	pairs := [][]byte{
		[]byte("a"), []byte("ab"), []byte("abc"), []byte("abcd"),
		[]byte(""), []byte("b"), []byte("ba"),
	}
	for i, k := range pairs {
		mustSet(t, tr, k, uint64(i))
	}
	for i, k := range pairs {
		if v, ok := tr.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v want %d", k, v, ok, i)
		}
	}
	checkOrder(t, tr, pairs)
}

func TestSharedPrefixChains(t *testing.T) {
	// Long shared prefixes force jump-node creation and splitting.
	tr := newTestTrie(128)
	base := "this-is-a-very-long-common-prefix-shared-by-all-keys/"
	var ks [][]byte
	for i := 0; i < 40; i++ {
		ks = append(ks, []byte(fmt.Sprintf("%s%04d", base, i*7)))
	}
	for i, k := range ks {
		mustSet(t, tr, k, uint64(i))
	}
	for i, k := range ks {
		if v, ok := tr.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v want %d", k, v, ok, i)
		}
	}
	checkOrder(t, tr, ks)
	st := tr.Stats()
	if st.JumpNodes == 0 {
		t.Fatal("expected jump nodes for long common prefixes")
	}
}

func TestJumpSplitDeep(t *testing.T) {
	// Insert a key, then keys diverging at every position of its jump chain.
	tr := newTestTrie(512)
	long := bytes.Repeat([]byte("x"), 30)
	mustSet(t, tr, long, 0)
	var ks [][]byte
	ks = append(ks, long)
	for i := 1; i < len(long); i++ {
		k := append([]byte(nil), long[:i]...)
		k = append(k, 'a')
		mustSet(t, tr, k, uint64(i))
		ks = append(ks, k)
	}
	for i, k := range ks {
		if v, ok := tr.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v want %d", k, v, ok, i)
		}
	}
	checkOrder(t, tr, ks)
}

func TestRandomModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newTestTrie(512)
	model := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := randKey(rng, 1+rng.Intn(24))
		v := rng.Uint64()
		mustSet(t, tr, k, v)
		model[string(k)] = v
		if i%97 == 0 {
			// Occasionally update an existing key.
			for mk := range model {
				mustSet(t, tr, []byte(mk), v+1)
				model[mk] = v + 1
				break
			}
		}
	}
	verifyModel(t, tr, model)
}

func TestFixed8ByteKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := newTestTrie(4096)
	model := map[string]uint64{}
	for i := 0; i < 20000; i++ {
		k := keys.Uint64Key(rng.Uint64())
		model[string(k)] = uint64(i)
		mustSet(t, tr, k, uint64(i))
	}
	verifyModel(t, tr, model)
	st := tr.Stats()
	if st.NodesPerKey > 2.0 {
		t.Fatalf("nodes/key = %.2f, expected < 2 for random keys", st.NodesPerKey)
	}
}

func TestSequentialKeys(t *testing.T) {
	tr := newTestTrie(4096)
	model := map[string]uint64{}
	for i := 0; i < 10000; i++ {
		k := keys.Uint64Key(uint64(i))
		model[string(k)] = uint64(i)
		mustSet(t, tr, k, uint64(i))
	}
	verifyModel(t, tr, model)
}

func TestSeekSemantics(t *testing.T) {
	tr := newTestTrie(64)
	for _, k := range []string{"b", "d", "f"} {
		mustSet(t, tr, []byte(k), uint64(k[0]))
	}
	cases := []struct {
		seek string
		want string // "" = invalid
	}{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"d", "d"},
		{"e", "f"}, {"f", "f"}, {"g", ""},
	}
	for _, c := range cases {
		it, err := tr.Seek([]byte(c.seek))
		if err != nil {
			t.Fatal(err)
		}
		if c.want == "" {
			if it.Valid() {
				t.Fatalf("Seek(%q) valid at %q, want end", c.seek, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != c.want {
			t.Fatalf("Seek(%q) = %q, want %q", c.seek, it.Key(), c.want)
		}
	}
}

func TestPredecessorSuccessor(t *testing.T) {
	tr := newTestTrie(256)
	var ks [][]byte
	for i := 0; i < 100; i++ {
		k := keys.Uint64Key(uint64(i * 10))
		ks = append(ks, k)
		mustSet(t, tr, k, uint64(i))
	}
	for i := 0; i < 1000; i++ {
		probe := keys.Uint64Key(uint64(i))
		wantPred := -1
		for j := range ks {
			if bytes.Compare(ks[j], probe) <= 0 {
				wantPred = j
			}
		}
		k, _, ok := tr.Predecessor(probe)
		if wantPred < 0 {
			if ok {
				t.Fatalf("Predecessor(%d) = %x, want none", i, k)
			}
		} else if !ok || !bytes.Equal(k, ks[wantPred]) {
			t.Fatalf("Predecessor(%d) = %x,%v want %x", i, k, ok, ks[wantPred])
		}
		wantSucc := -1
		for j := len(ks) - 1; j >= 0; j-- {
			if bytes.Compare(ks[j], probe) >= 0 {
				wantSucc = j
			}
		}
		k, _, ok = tr.Successor(probe)
		if wantSucc < 0 {
			if ok {
				t.Fatalf("Successor(%d) = %x, want none", i, k)
			}
		} else if !ok || !bytes.Equal(k, ks[wantSucc]) {
			t.Fatalf("Successor(%d) = %x,%v want %x", i, k, ok, ks[wantSucc])
		}
	}
}

func TestScanCount(t *testing.T) {
	tr := newTestTrie(256)
	for i := 0; i < 100; i++ {
		mustSet(t, tr, keys.Uint64Key(uint64(i)), uint64(i))
	}
	var got []uint64
	n, err := tr.Scan(keys.Uint64Key(10), 25, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if err != nil || n != 25 {
		t.Fatalf("Scan n=%d err=%v", n, err)
	}
	for i, v := range got {
		if v != uint64(10+i) {
			t.Fatalf("scan[%d] = %d, want %d", i, v, 10+i)
		}
	}
	// Early stop: fn rejects v=5, so keys 0..5 are visited.
	n, _ = tr.Scan(nil, 100, func(k []byte, v uint64) bool { return v < 5 })
	if n != 6 {
		t.Fatalf("early-stop scan visited %d, want 6", n)
	}
}

func TestResizeGrowth(t *testing.T) {
	tr := New(Config{CapacityHint: 8, AutoResize: true})
	model := map[string]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		k := randKey(rng, 1+rng.Intn(16))
		model[string(k)] = uint64(i)
		mustSet(t, tr, k, uint64(i))
	}
	verifyModel(t, tr, model)
	if g := tr.gen.Load(); g == 0 {
		t.Fatal("expected at least one resize")
	}
}

func TestTableFullWithoutResize(t *testing.T) {
	tr := New(Config{CapacityHint: 8, AutoResize: false})
	rng := rand.New(rand.NewSource(4))
	var sawFull bool
	for i := 0; i < 5000; i++ {
		_, err := tr.Set(randKey(rng, 8), uint64(i))
		if err == ErrTableFull {
			sawFull = true
			break
		}
		must(t, err)
	}
	if !sawFull {
		t.Fatal("expected ErrTableFull on a fixed-size table")
	}
}

func TestDisableLeafList(t *testing.T) {
	tr := New(Config{CapacityHint: 256, DisableLeafList: true, AutoResize: true})
	rng := rand.New(rand.NewSource(5))
	model := map[string]uint64{}
	for i := 0; i < 2000; i++ {
		k := randKey(rng, 8)
		model[string(k)] = uint64(i)
		mustSet(t, tr, k, uint64(i))
	}
	for k, v := range model {
		if got, ok := tr.Get([]byte(k)); !ok || got != v {
			t.Fatalf("Get(%x) = %d,%v want %d", k, got, ok, v)
		}
	}
	if _, err := tr.Seek(nil); err != ErrScansDisabled {
		t.Fatalf("Seek err = %v, want ErrScansDisabled", err)
	}
}

func TestStats(t *testing.T) {
	tr := newTestTrie(4096)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		mustSet(t, tr, keys.Uint64Key(rng.Uint64()), uint64(i))
	}
	st := tr.Stats()
	if st.Leaves != tr.Len() {
		t.Fatalf("leaves %d != keys %d", st.Leaves, tr.Len())
	}
	if st.BytesPerKey <= 0 || st.PaperBytesPerKey <= 0 {
		t.Fatal("memory accounting missing")
	}
	if st.LoadFactor <= 0 || st.LoadFactor > 1 {
		t.Fatalf("load factor %f out of range", st.LoadFactor)
	}
}

// --- helpers ---

func mustSet(t *testing.T, tr *Trie, k []byte, v uint64) {
	t.Helper()
	if _, err := tr.Set(k, v); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func randKey(rng *rand.Rand, n int) []byte {
	k := make([]byte, n)
	rng.Read(k)
	return k
}

// checkOrder verifies a full iteration visits exactly ks in sorted order.
func checkOrder(t *testing.T, tr *Trie, ks [][]byte) {
	t.Helper()
	sorted := make([][]byte, len(ks))
	copy(sorted, ks)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	it, err := tr.Seek(nil)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.Valid() {
		if i >= len(sorted) {
			t.Fatalf("iteration yielded extra key %q", it.Key())
		}
		if !bytes.Equal(it.Key(), sorted[i]) {
			t.Fatalf("iteration[%d] = %q, want %q", i, it.Key(), sorted[i])
		}
		i++
		it.Next()
	}
	if i != len(sorted) {
		t.Fatalf("iteration yielded %d keys, want %d", i, len(sorted))
	}
}

func verifyModel(t *testing.T, tr *Trie, model map[string]uint64) {
	t.Helper()
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", tr.Len(), len(model))
	}
	for k, v := range model {
		got, ok := tr.Get([]byte(k))
		if !ok || got != v {
			t.Fatalf("Get(%x) = %d,%v want %d", k, got, ok, v)
		}
	}
	var sorted []string
	for k := range model {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	it, err := tr.Seek(nil)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for it.Valid() {
		if i >= len(sorted) {
			t.Fatalf("extra key %x in iteration", it.Key())
		}
		if string(it.Key()) != sorted[i] {
			t.Fatalf("iteration[%d] = %x, want %x", i, it.Key(), sorted[i])
		}
		if it.Value() != model[sorted[i]] {
			t.Fatalf("iteration[%d] value = %d, want %d", i, it.Value(), model[sorted[i]])
		}
		i++
		it.Next()
	}
	if i != len(sorted) {
		t.Fatalf("iteration yielded %d keys, want %d", i, len(sorted))
	}
}
