package core

import (
	"runtime"
	"sync/atomic"
)

// bucketWords is the stride of one bucket in the flat word array: one
// version/lock word followed by four 3-word entries. The paper co-locates a
// 32-bit seqlock with four 15-byte entries in one 64-byte cache line
// (Figure 4); our Go layout is 104 bytes (see entry.go for why).
const bucketWords = 1 + entriesPerBucket*3

// table is one immutable-geometry bucketized cuckoo hash table. Resizing
// builds a new table and atomically swaps the trie's pointer to it, so all
// geometry here is fixed for the table's lifetime.
type table struct {
	hasher
	words []uint64 // len = buckets * bucketWords
}

func newTable(buckets uint64, seed int64) *table {
	return &table{
		hasher: newHasher(buckets, seed),
		words:  make([]uint64, buckets*bucketWords),
	}
}

func (t *table) versionAddr(b uint64) *uint64 { return &t.words[b*bucketWords] }

func (t *table) loadVersion(b uint64) uint64 {
	return atomic.LoadUint64(t.versionAddr(b))
}

// slotRef names one entry slot in the table.
type slotRef struct {
	bucket uint64
	slot   int
}

// entryRef is a slotRef plus the bucket version observed when the entry was
// read. Writers CAS the version from this value to lock-and-validate in one
// step (§5: "simultaneously locks the buckets and verifies they have not
// changed ... using an atomic compare-and-swap").
type entryRef struct {
	slotRef
	ver uint64
}

// readSlot atomically snapshots one slot under the bucket seqlock.
// ok is false if a writer intervened; the caller retries.
func (t *table) readSlot(b uint64, slot int) (e entry, ver uint64, ok bool) {
	base := b*bucketWords + 1 + uint64(slot)*3
	v := t.loadVersion(b)
	if v&1 != 0 {
		return entry{}, 0, false
	}
	w0 := atomic.LoadUint64(&t.words[base])
	w1 := atomic.LoadUint64(&t.words[base+1])
	w2 := atomic.LoadUint64(&t.words[base+2])
	if t.loadVersion(b) != v {
		return entry{}, 0, false
	}
	return decodeEntry(w0, w1, w2), v, true
}

// bucketSnap is a consistent snapshot of one bucket.
type bucketSnap struct {
	ver     uint64
	entries [entriesPerBucket]entry
}

// readBucket snapshots a whole bucket. Spins briefly while a writer holds the
// seqlock.
func (t *table) readBucket(b uint64) (bucketSnap, bool) {
	for spin := 0; spin < 64; spin++ {
		v := t.loadVersion(b)
		if v&1 != 0 {
			if spin > 16 {
				runtime.Gosched()
			}
			continue
		}
		var s bucketSnap
		s.ver = v
		base := b*bucketWords + 1
		for i := 0; i < entriesPerBucket; i++ {
			w0 := atomic.LoadUint64(&t.words[base+uint64(i)*3])
			w1 := atomic.LoadUint64(&t.words[base+uint64(i)*3+1])
			w2 := atomic.LoadUint64(&t.words[base+uint64(i)*3+2])
			s.entries[i] = decodeEntry(w0, w1, w2)
		}
		if t.loadVersion(b) == v {
			return s, true
		}
	}
	return bucketSnap{}, false
}

// writeSlot stores an entry into a slot. The caller must hold the bucket's
// seqlock (odd version). Stores are atomic so concurrent seqlock readers see
// no torn words (they will discard the read anyway when the version check
// fails).
func (t *table) writeSlot(b uint64, slot int, e entry) {
	base := b*bucketWords + 1 + uint64(slot)*3
	w0, w1, w2 := e.encode()
	atomic.StoreUint64(&t.words[base], w0)
	atomic.StoreUint64(&t.words[base+1], w1)
	atomic.StoreUint64(&t.words[base+2], w2)
}

func (t *table) clearSlot(b uint64, slot int) {
	t.writeSlot(b, slot, entry{})
}

// tryLock CAS-locks bucket b, validating that its version still equals ver.
func (t *table) tryLock(b uint64, ver uint64) bool {
	if ver&1 != 0 {
		return false
	}
	return atomic.CompareAndSwapUint64(t.versionAddr(b), ver, ver+1)
}

// unlock releases bucket b. bump selects whether the content changed
// (readers must retry: version advances to ver+2) or not (version restored).
func (t *table) unlock(b uint64, ver uint64, bump bool) {
	if bump {
		atomic.StoreUint64(t.versionAddr(b), ver+2)
	} else {
		atomic.StoreUint64(t.versionAddr(b), ver)
	}
}

// findInBucket scans a bucket snapshot for a live entry with the given tag,
// primacy and color. Returns the slot index or -1.
func (s *bucketSnap) findByColor(tag uint8, primary bool, color uint8) int {
	for i := range s.entries {
		e := &s.entries[i]
		if e.kind != kindEmpty && e.tag == tag && e.primary == primary && e.color == color {
			return i
		}
	}
	return -1
}

func (s *bucketSnap) freeSlot() int {
	for i := range s.entries {
		if s.entries[i].kind == kindEmpty {
			return i
		}
	}
	return -1
}

// lockSet acquires a set of bucket seqlocks in sorted order, validating each
// bucket's recorded version. All-or-nothing: any failure releases everything.
// Sorted acquisition is not required for safety (acquisition never blocks)
// but reduces livelock between writers with overlapping sets.
type lockSet struct {
	buckets []uint64
	vers    []uint64
	n       int
}

func (ls *lockSet) reset() { ls.n = 0 }

// add registers bucket b with expected version ver. Duplicate buckets are
// merged; conflicting expected versions fail the eventual acquire.
func (ls *lockSet) add(b uint64, ver uint64) {
	for i := 0; i < ls.n; i++ {
		if ls.buckets[i] == b {
			if ls.vers[i] != ver {
				// Two observations of the same bucket disagree: mark
				// poisoned so acquire fails and the operation restarts.
				ls.vers[i] = ^uint64(0)
			}
			return
		}
	}
	if ls.n < len(ls.buckets) {
		ls.buckets[ls.n] = b
		ls.vers[ls.n] = ver
	} else {
		ls.buckets = append(ls.buckets, b)
		ls.vers = append(ls.vers, ver)
	}
	ls.n++
}

func (ls *lockSet) sort() {
	// Insertion sort: sets are small (O(path length)).
	for i := 1; i < ls.n; i++ {
		b, v := ls.buckets[i], ls.vers[i]
		j := i - 1
		for j >= 0 && ls.buckets[j] > b {
			ls.buckets[j+1], ls.vers[j+1] = ls.buckets[j], ls.vers[j]
			j--
		}
		ls.buckets[j+1], ls.vers[j+1] = b, v
	}
}

// acquire locks every bucket in the set. On failure everything is released
// and acquire reports false; the caller restarts its operation.
func (ls *lockSet) acquire(t *table) bool {
	ls.sort()
	for i := 0; i < ls.n; i++ {
		if !t.tryLock(ls.buckets[i], ls.vers[i]) {
			for j := i - 1; j >= 0; j-- {
				t.unlock(ls.buckets[j], ls.vers[j], false)
			}
			return false
		}
	}
	return true
}

// release unlocks all buckets, bumping versions (content changed).
func (ls *lockSet) release(t *table, bump bool) {
	for i := 0; i < ls.n; i++ {
		t.unlock(ls.buckets[i], ls.vers[i], bump)
	}
}

func (ls *lockSet) holds(b uint64) bool {
	for i := 0; i < ls.n; i++ {
		if ls.buckets[i] == b {
			return true
		}
	}
	return false
}
