package core

import "sync/atomic"

// Cuckoo relocations. When both candidate buckets of a new entry are full, a
// chain of entries is relocated, each to its alternate bucket, to free a
// slot (§2, §4.2). Key elimination makes this possible without stored keys:
// an entry's tag plus its current bucket and primacy determine its full hash
// and hence its alternate bucket.
//
// Relocations never change the logical trie (locators are (hash, color),
// not addresses), so each move is an independent two-bucket critical
// section; concurrent readers ride over them via the FindChild retry loop
// (§5: "if there is a concurrent relocation, the node will eventually be
// found in a later iteration").

type kickEdge struct {
	from     slotRef
	w0       uint64 // expected encoded entry (identity check at apply time)
	w1, w2   uint64
	to       uint64
	newEntry entry
}

// makeRoom tries to free a slot in one of the candidate buckets of hash h.
func (tr *Trie) makeRoom(t *table, h uint64) bool {
	for attempt := 0; attempt < 8; attempt++ {
		chain, ok := t.findEvictionChain(h, tr.cfg.MaxKicks)
		if !ok {
			return false
		}
		if t.applyChain(chain) {
			return true
		}
	}
	return false
}

// findEvictionChain BFS-searches buckets reachable by relocation from the two
// candidate buckets of h until a bucket with a free slot is found. Returns
// the move sequence ordered root-to-free; the caller applies it in reverse.
func (t *table) findEvictionChain(h uint64, maxNodes int) ([]kickEdge, bool) {
	b1, b2, _ := t.bucketsOf(h)

	type bfsNode struct {
		bucket uint64
		parent int // index into nodes; -1 for roots
		edge   kickEdge
	}
	nodes := make([]bfsNode, 0, maxNodes)
	nodes = append(nodes, bfsNode{bucket: b1, parent: -1})
	if b2 != b1 {
		nodes = append(nodes, bfsNode{bucket: b2, parent: -1})
	}
	seen := map[uint64]bool{b1: true, b2: true}

	for qi := 0; qi < len(nodes) && len(nodes) < maxNodes; qi++ {
		b := nodes[qi].bucket
		snap, ok := t.readBucket(b)
		if !ok {
			continue
		}
		if snap.freeSlot() >= 0 && nodes[qi].parent != -1 {
			// Collect the chain root→...→here.
			var chain []kickEdge
			for i := qi; nodes[i].parent != -1; i = nodes[i].parent {
				chain = append(chain, nodes[i].edge)
			}
			// Reverse to root-to-free order.
			for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
				chain[l], chain[r] = chain[r], chain[l]
			}
			return chain, true
		}
		if snap.freeSlot() >= 0 && nodes[qi].parent == -1 {
			// A root already has space; nothing to do.
			return nil, true
		}
		for slot := 0; slot < entriesPerBucket; slot++ {
			e := snap.entries[slot]
			if e.kind == kindEmpty {
				continue
			}
			alt := t.altBucket(b, e.tag, e.primary)
			if seen[alt] {
				continue
			}
			seen[alt] = true
			moved := e
			moved.primary = !e.primary
			w0, w1, w2 := e.encode()
			nodes = append(nodes, bfsNode{
				bucket: alt,
				parent: qi,
				edge: kickEdge{
					from:     slotRef{b, slot},
					w0:       w0,
					w1:       w1,
					w2:       w2,
					to:       alt,
					newEntry: moved,
				},
			})
			if len(nodes) >= maxNodes {
				break
			}
		}
	}
	return nil, false
}

// applyChain performs the relocations last-to-first, each as a two-bucket
// locked move with content revalidation.
func (t *table) applyChain(chain []kickEdge) bool {
	for i := len(chain) - 1; i >= 0; i-- {
		if !t.applyMove(&chain[i]) {
			return false
		}
	}
	return true
}

func (t *table) applyMove(e *kickEdge) bool {
	fb, tb := e.from.bucket, e.to
	vf := t.loadVersion(fb)
	vt := t.loadVersion(tb)
	if fb == tb {
		return false
	}
	// Lock in ascending order to reduce writer livelock.
	first, second := fb, tb
	v1, v2 := vf, vt
	if first > second {
		first, second = second, first
		v1, v2 = v2, v1
	}
	if !t.tryLock(first, v1) {
		return false
	}
	if !t.tryLock(second, v2) {
		t.unlock(first, v1, false)
		return false
	}
	ok := false
	// Revalidate: source slot still holds the expected entry and the
	// destination still has room.
	base := fb*bucketWords + 1 + uint64(e.from.slot)*3
	if atomic.LoadUint64(&t.words[base]) == e.w0 &&
		atomic.LoadUint64(&t.words[base+1]) == e.w1 &&
		atomic.LoadUint64(&t.words[base+2]) == e.w2 {
		free := -1
		for s := 0; s < entriesPerBucket; s++ {
			tbase := tb*bucketWords + 1 + uint64(s)*3
			if atomic.LoadUint64(&t.words[tbase])&3 == kindEmpty {
				free = s
				break
			}
		}
		if free >= 0 {
			t.writeSlot(tb, free, e.newEntry)
			t.clearSlot(fb, e.from.slot)
			ok = true
		}
	}
	t.unlock(second, v2, ok)
	t.unlock(first, v1, ok)
	return ok
}
