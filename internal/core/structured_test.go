package core

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// TestStructuredKeySliceResize is the regression test for the unseeded
// symbol hash: az keys are fixed-format decimal strings, and a contiguous
// lexicographic slice of them (exactly what a sampled-boundary range shard
// receives) carries differential symbol structure that the linear hash
// step preserved at EVERY table size — so once a color class overflowed,
// no amount of resize doubling could clear it and AutoResize inserts
// failed with ErrTableFull. With the per-table seeded symbol permutation,
// each resize attempt gets an independent hash function and the load must
// succeed at a tight capacity hint.
func TestStructuredKeySliceResize(t *testing.T) {
	ks := dataset.Generate(dataset.AZ, 5000, 1)
	sorted := make([][]byte, len(ks))
	copy(sorted, ks)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	lo, hi := sorted[len(sorted)/2], sorted[3*len(sorted)/4]

	// The third quartile of the keyspace, in the original shuffled stream
	// order — the exact sub-stream a 4-shard sampled router hands shard 2.
	var part [][]byte
	for _, k := range ks {
		if bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0 {
			part = append(part, k)
		}
	}
	if len(part) < 1000 {
		t.Fatalf("quartile slice has only %d keys", len(part))
	}
	tr := New(Config{CapacityHint: len(part), AutoResize: true})
	for i, k := range part {
		if _, err := tr.Set(k, uint64(i)); err != nil {
			t.Fatalf("Set(%q) after %d structured keys: %v", k, i, err)
		}
	}
	for i, k := range part {
		if v, ok := tr.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v want %d", k, v, ok, i)
		}
	}
}
