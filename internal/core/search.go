package core

import (
	"bytes"
	"sync/atomic"

	"repro/internal/keys"
)

// Search outcomes.
const (
	soLeaf         = iota // descent reached a leaf
	soMissing             // a regular node lacks the child bit for the next symbol
	soJumpMismatch        // a jump node's compressed symbol differs from the key's
	soRestart             // concurrent conflict; restart with a fresh table pointer
)

// pathNode is one node on the root-to-terminal descent path.
type pathNode struct {
	ent   entry
	ref   entryRef
	depth int    // name length in symbols
	hash  uint64 // H(name)
}

func (p *pathNode) loc() locator { return locator{p.hash, p.ent.color} }

// searchState is the result of a path-recording descent.
type searchState struct {
	path    []pathNode
	outcome int
	idx     int // symbol index where the descent stopped (soMissing/soJumpMismatch)
	jumpOff int // offset within the terminal jump node (soJumpMismatch)
}

func (st *searchState) terminal() *pathNode { return &st.path[len(st.path)-1] }

// Raw word-0 matching masks: candidate filtering happens on a single atomic
// load per slot, and only the matching entry is fully decoded. Field
// positions are defined in entry.go.
const (
	matchMaskByParent = uint64(0xf)<<2 | 1<<6 | uint64(0x3f)<<7 | uint64(7)<<16 | 1<<32
	matchMaskByColor  = uint64(0xf)<<2 | 1<<6 | uint64(0x3f)<<7 | uint64(7)<<13
)

func wantByParent(tag uint8, primary bool, lastSym byte, parentColor uint8) uint64 {
	w := uint64(tag&0xf)<<2 | uint64(lastSym&0x3f)<<7 | uint64(parentColor&7)<<16
	if primary {
		w |= 1 << 6
	}
	return w
}

func wantByColor(tag uint8, primary bool, lastSym byte, color uint8) uint64 {
	w := uint64(tag&0xf)<<2 | uint64(lastSym&0x3f)<<7 | uint64(color&7)<<13
	if primary {
		w |= 1 << 6
	}
	return w
}

// scanBucketRaw finds a live slot whose word 0 matches (want, mask) in
// bucket b, snapshotting it under the seqlock. found=false with ok=true
// means a consistent read found nothing.
func (t *table) scanBucketRaw(b uint64, want, mask uint64) (e entry, ref entryRef, found, ok bool) {
	base := b * bucketWords
	v := atomic.LoadUint64(&t.words[base])
	if v&1 != 0 {
		return entry{}, entryRef{}, false, false
	}
	for i := 0; i < entriesPerBucket; i++ {
		w0 := atomic.LoadUint64(&t.words[base+1+uint64(i)*3])
		if w0&3 == kindEmpty || w0&mask != want {
			continue
		}
		w1 := atomic.LoadUint64(&t.words[base+1+uint64(i)*3+1])
		w2 := atomic.LoadUint64(&t.words[base+1+uint64(i)*3+2])
		if atomic.LoadUint64(&t.words[base]) != v {
			return entry{}, entryRef{}, false, false
		}
		return decodeEntry(w0, w1, w2), entryRef{slotRef{b, i}, v}, true, true
	}
	if atomic.LoadUint64(&t.words[base]) != v {
		return entry{}, entryRef{}, false, false
	}
	return entry{}, entryRef{}, false, true
}

// childByColor is FindChild for jump nodes: the child is identified by its
// own color (stored in the jump node) rather than by parent color, because a
// jump node's hash cannot be peeled from its child's (§4.3). Colors are
// unique among live entries with the same hash, so the match is exact.
func (t *table) childByColor(h uint64, lastSym byte, color uint8, parent entryRef) (entry, entryRef, bool) {
	b1, b2, tag := t.bucketsOf(h)
	for spin := 0; spin < 4096; spin++ {
		if e, ref, found, ok := t.scanBucketRaw(b1, wantByColor(tag, true, lastSym, color), matchMaskByColor); ok && found {
			if t.loadVersion(parent.bucket) != parent.ver {
				return entry{}, entryRef{}, false
			}
			return e, ref, true
		}
		if e, ref, found, ok := t.scanBucketRaw(b2, wantByColor(tag, false, lastSym, color), matchMaskByColor); ok && found {
			if t.loadVersion(parent.bucket) != parent.ver {
				return entry{}, entryRef{}, false
			}
			return e, ref, true
		}
		if t.loadVersion(parent.bucket) != parent.ver {
			return entry{}, entryRef{}, false
		}
	}
	return entry{}, entryRef{}, false
}

// findChild locates the child of node cur for symbol s, where h is the
// child's hash. It handles both regular and jump parents. ok=false means
// concurrent conflict (restart).
func (t *table) findChild(cur *pathNode, h uint64, s byte, jumpEnd bool) (entry, entryRef, bool) {
	if cur.ent.kind == kindJump && jumpEnd {
		return t.childByColor(h, s, cur.ent.childColor, cur.ref)
	}
	// Child of a regular node. The child may itself be a jump node with a
	// valid parentColor; search both kinds.
	e, ref, ok := t.searchChildOfRegular(h, s, cur.ref, cur.ent.color)
	return e, ref, ok
}

// searchChildOfRegular is the paper's SearchByParent: it matches a live
// entry with (tag, lastSym, parentColor) — regular, jump, or leaf — as the
// child of an already-verified regular node. Entries whose parent is a jump
// node carry no meaningful parentColor and are skipped (parentIsJump), which
// makes the verification exact: among same-hash entries, only the true child
// of the verified parent can match, because a trie node has at most one
// child per symbol (§4.2).
func (t *table) searchChildOfRegular(h uint64, lastSym byte, parent entryRef, parentColor uint8) (entry, entryRef, bool) {
	b1, b2, tag := t.bucketsOf(h)
	for spin := 0; spin < 4096; spin++ {
		// The mask includes parentIsJump (must be 0): jump-node children
		// carry no meaningful parentColor and must never match.
		if e, ref, found, ok := t.scanBucketRaw(b1, wantByParent(tag, true, lastSym, parentColor), matchMaskByParent); ok && found {
			if t.loadVersion(parent.bucket) != parent.ver {
				return entry{}, entryRef{}, false
			}
			return e, ref, true
		}
		if e, ref, found, ok := t.scanBucketRaw(b2, wantByParent(tag, false, lastSym, parentColor), matchMaskByParent); ok && found {
			if t.loadVersion(parent.bucket) != parent.ver {
				return entry{}, entryRef{}, false
			}
			return e, ref, true
		}
		if t.loadVersion(parent.bucket) != parent.ver {
			return entry{}, entryRef{}, false
		}
	}
	return entry{}, entryRef{}, false
}

// searchPath descends the trie for the symbol sequence syms, recording every
// node visited. This is Algorithm 1 with path recording for writers.
func (tr *Trie) searchPath(t *table, syms []byte, path []pathNode) ([]pathNode, searchState) {
	root, rootRef, ok := tr.tryFindRoot(t)
	if !ok {
		return path, searchState{outcome: soRestart}
	}
	path = path[:0]
	path = append(path, pathNode{ent: root, ref: rootRef, depth: 0, hash: 0})
	cur := &path[0]
	h := uint64(0)
	for i := 0; i < len(syms); {
		s := syms[i]
		h = t.step(h, s)
		switch cur.ent.kind {
		case kindInternal:
			if !bitmapHas(cur.ent.w1, s) {
				return path, searchState{path: path, outcome: soMissing, idx: i}
			}
		case kindJump:
			off := i - cur.depth
			if cur.ent.jumpSymbol(off) != s {
				return path, searchState{path: path, outcome: soJumpMismatch, idx: i, jumpOff: off}
			}
			if off+1 < int(cur.ent.jumpLen) {
				i++
				continue
			}
		default:
			// Reached a node that is no longer internal/jump: concurrent
			// modification slipped past a version check window; restart.
			return path, searchState{outcome: soRestart}
		}
		jumpEnd := cur.ent.kind == kindJump
		child, ref, ok := t.findChild(cur, h, s, jumpEnd)
		if !ok {
			return path, searchState{outcome: soRestart}
		}
		path = append(path, pathNode{ent: child, ref: ref, depth: i + 1, hash: h})
		cur = &path[len(path)-1]
		i++
		if child.kind == kindLeaf {
			return path, searchState{path: path, outcome: soLeaf, idx: i}
		}
	}
	// The terminator symbol cannot have children, so a complete consumption
	// of syms without reaching a leaf indicates a torn read; restart.
	return path, searchState{outcome: soRestart}
}

// tryFindRoot locates the root with bounded retries.
func (tr *Trie) tryFindRoot(t *table) (entry, entryRef, bool) {
	for spin := 0; spin < 4096; spin++ {
		e, ref, ok := t.findByLocator(locator{0, uint8(tr.rootColor.Load())})
		if ok {
			return e, ref, true
		}
	}
	return entry{}, entryRef{}, false
}

// Get looks up key k and returns its value. This is the paper's lookup: a
// trie search (not a plain hash lookup, because the trie stores unique
// prefixes) followed by a comparison against the full key stored in the
// record (§4.4).
func (tr *Trie) Get(k []byte) (uint64, bool) {
	if len(k) > MaxKeyLen {
		return 0, false
	}
	var sbuf [96]byte
	syms := keys.AppendSymbols(sbuf[:0], k)
	for {
		t := tr.tbl.Load()
		v, found, ok := tr.getOnce(t, syms, k)
		if ok {
			return v, found
		}
	}
}

// getOnce performs one lookup attempt. ok=false requests a restart.
func (tr *Trie) getOnce(t *table, syms []byte, k []byte) (val uint64, found, ok bool) {
	root, rootRef, rok := tr.tryFindRoot(t)
	if !rok {
		return 0, false, false
	}
	cur := pathNode{ent: root, ref: rootRef}
	h := uint64(0)
	for i := 0; i < len(syms); {
		s := syms[i]
		h = t.step(h, s)
		switch cur.ent.kind {
		case kindInternal:
			if !bitmapHas(cur.ent.w1, s) {
				return 0, false, true
			}
		case kindJump:
			off := i - cur.depth
			if cur.ent.jumpSymbol(off) != s {
				return 0, false, true
			}
			if off+1 < int(cur.ent.jumpLen) {
				i++
				continue
			}
		default:
			return 0, false, false
		}
		child, ref, cok := t.findChild(&cur, h, s, cur.ent.kind == kindJump)
		if !cok {
			return 0, false, false
		}
		cur = pathNode{ent: child, ref: ref, depth: i + 1, hash: h}
		i++
		if child.kind == kindLeaf {
			if child.dirty {
				return 0, false, false
			}
			rk := tr.recs.key(child.recIdx)
			match := bytes.Equal(rk, k)
			val := tr.recs.value(child.recIdx)
			// Re-validate the leaf: if it was deleted meanwhile, its record
			// slot may have been reused and the read above is stale.
			if t.loadVersion(ref.bucket) != ref.ver {
				return 0, false, false
			}
			if !match {
				return 0, false, true
			}
			return val, true, true
		}
	}
	return 0, false, false
}

// Contains reports whether k is present.
func (tr *Trie) Contains(k []byte) bool {
	_, ok := tr.Get(k)
	return ok
}
