package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/keys"
)

func TestDeleteSimple(t *testing.T) {
	tr := newTestTrie(64)
	mustSet(t, tr, []byte("a"), 1)
	mustSet(t, tr, []byte("b"), 2)
	mustSet(t, tr, []byte("c"), 3)
	checkInv(t, tr)
	if !tr.Delete([]byte("b")) {
		t.Fatal("Delete(b) = false")
	}
	checkInv(t, tr)
	if _, ok := tr.Get([]byte("b")); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := tr.Get([]byte("a")); !ok || v != 1 {
		t.Fatal("sibling lost after delete")
	}
	if tr.Delete([]byte("b")) {
		t.Fatal("double delete succeeded")
	}
	if tr.Delete([]byte("zz")) {
		t.Fatal("delete of absent key succeeded")
	}
	checkOrder(t, tr, [][]byte{[]byte("a"), []byte("c")})
}

func TestDeleteLastKey(t *testing.T) {
	tr := newTestTrie(16)
	mustSet(t, tr, []byte("only"), 1)
	if !tr.Delete([]byte("only")) {
		t.Fatal("delete failed")
	}
	checkInv(t, tr)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on emptied trie")
	}
	// Trie remains usable.
	mustSet(t, tr, []byte("again"), 2)
	checkInv(t, tr)
	if v, ok := tr.Get([]byte("again")); !ok || v != 2 {
		t.Fatal("reinsert after emptying failed")
	}
}

func TestDeleteHoistsSibling(t *testing.T) {
	// Two keys with a long common prefix build a jump chain; deleting one
	// must collapse the tail and hoist the survivor.
	tr := newTestTrie(128)
	a := []byte("shared-long-prefix-0000/a")
	b := []byte("shared-long-prefix-0000/b")
	mustSet(t, tr, a, 1)
	mustSet(t, tr, b, 2)
	checkInv(t, tr)
	st := tr.Stats()
	if st.JumpNodes == 0 {
		t.Fatal("expected jump chain")
	}
	if !tr.Delete(a) {
		t.Fatal("delete failed")
	}
	checkInv(t, tr)
	if v, ok := tr.Get(b); !ok || v != 2 {
		t.Fatal("survivor lost")
	}
	st = tr.Stats()
	if st.SlotsUsed != 2 { // root + hoisted leaf
		t.Fatalf("expected full tail collapse, %d slots used", st.SlotsUsed)
	}
	// And the other direction.
	mustSet(t, tr, a, 1)
	checkInv(t, tr)
	if !tr.Delete(b) {
		t.Fatal("delete failed")
	}
	checkInv(t, tr)
	if v, ok := tr.Get(a); !ok || v != 1 {
		t.Fatal("survivor lost")
	}
}

func TestDeleteConvertsToJump(t *testing.T) {
	// Parent with two children where the survivor is an interior subtree:
	// the parent must become a jump node.
	tr := newTestTrie(256)
	ks := [][]byte{
		[]byte("xx-a"),
		[]byte("xx-branch-one"),
		[]byte("xx-branch-two"),
	}
	for i, k := range ks {
		mustSet(t, tr, k, uint64(i))
	}
	checkInv(t, tr)
	if !tr.Delete(ks[0]) {
		t.Fatal("delete failed")
	}
	checkInv(t, tr)
	for _, k := range ks[1:] {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("lost %q", k)
		}
	}
	checkOrder(t, tr, ks[1:])
}

func TestDeleteRandomModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newTestTrie(1024)
	model := map[string]uint64{}
	var live []string
	for round := 0; round < 6000; round++ {
		if len(live) == 0 || rng.Intn(100) < 55 {
			k := randKey(rng, 1+rng.Intn(16))
			if _, dup := model[string(k)]; dup {
				continue
			}
			mustSet(t, tr, k, uint64(round))
			model[string(k)] = uint64(round)
			live = append(live, string(k))
		} else {
			i := rng.Intn(len(live))
			k := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !tr.Delete([]byte(k)) {
				t.Fatalf("Delete(%x) = false for live key", k)
			}
			delete(model, k)
		}
		if round%500 == 499 {
			checkInv(t, tr)
			verifyModel(t, tr, model)
		}
	}
	checkInv(t, tr)
	verifyModel(t, tr, model)
}

func TestDeleteAllInOrder(t *testing.T) {
	for _, order := range []string{"asc", "desc", "random"} {
		t.Run(order, func(t *testing.T) {
			tr := newTestTrie(512)
			n := 500
			var ks [][]byte
			for i := 0; i < n; i++ {
				k := keys.Uint64Key(uint64(i * 1000003 % 100000))
				ks = append(ks, k)
				mustSet(t, tr, k, uint64(i))
			}
			switch order {
			case "desc":
				sort.Slice(ks, func(i, j int) bool { return bytes.Compare(ks[i], ks[j]) > 0 })
			case "asc":
				sort.Slice(ks, func(i, j int) bool { return bytes.Compare(ks[i], ks[j]) < 0 })
			case "random":
				rand.New(rand.NewSource(2)).Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
			}
			for i, k := range ks {
				if !tr.Delete(k) {
					t.Fatalf("delete %d failed", i)
				}
				if i%100 == 99 {
					checkInv(t, tr)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after deleting all", tr.Len())
			}
			checkInv(t, tr)
		})
	}
}

func TestDeletePrefixFamilies(t *testing.T) {
	// Delete within families of prefix-related keys, which stress the
	// terminator-leaf edge cases.
	tr := newTestTrie(256)
	var ks [][]byte
	for _, base := range []string{"p", "q"} {
		k := base
		for i := 0; i < 8; i++ {
			ks = append(ks, []byte(k))
			k += fmt.Sprintf("%c", 'a'+i)
		}
	}
	for i, k := range ks {
		mustSet(t, tr, k, uint64(i))
	}
	checkInv(t, tr)
	// Delete every other key.
	model := map[string]uint64{}
	for i, k := range ks {
		model[string(k)] = uint64(i)
	}
	for i := 0; i < len(ks); i += 2 {
		if !tr.Delete(ks[i]) {
			t.Fatalf("delete %q failed", ks[i])
		}
		delete(model, string(ks[i]))
		checkInv(t, tr)
	}
	verifyModel(t, tr, model)
}

func TestDeleteMinMaxMaintenance(t *testing.T) {
	tr := newTestTrie(256)
	for i := 0; i < 50; i++ {
		mustSet(t, tr, keys.Uint64Key(uint64(i)), uint64(i))
	}
	// Repeatedly delete the minimum.
	for i := 0; i < 25; i++ {
		k, _, ok := tr.Min()
		if !ok || keys.Uint64FromKey(k) != uint64(i) {
			t.Fatalf("Min = %x at round %d", k, i)
		}
		if !tr.Delete(k) {
			t.Fatal("delete min failed")
		}
	}
	checkInv(t, tr)
	// Repeatedly delete the maximum.
	for i := 49; i >= 40; i-- {
		k, _, ok := tr.Max()
		if !ok || keys.Uint64FromKey(k) != uint64(i) {
			t.Fatalf("Max = %x at round %d", k, i)
		}
		if !tr.Delete(k) {
			t.Fatal("delete max failed")
		}
	}
	checkInv(t, tr)
	if tr.Len() != 15 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteThenResize(t *testing.T) {
	tr := New(Config{CapacityHint: 16, AutoResize: true})
	model := map[string]uint64{}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		k := randKey(rng, 1+rng.Intn(12))
		model[string(k)] = uint64(i)
		mustSet(t, tr, k, uint64(i))
		if i%3 == 0 {
			for mk := range model {
				tr.Delete([]byte(mk))
				delete(model, mk)
				break
			}
		}
	}
	checkInv(t, tr)
	verifyModel(t, tr, model)
}

func checkInv(t *testing.T, tr *Trie) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
}
