package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/keys"
)

// TestMultiGetBasic cross-checks MultiGet against Get on a loaded trie with
// hits, misses, and duplicate keys in one batch.
func TestMultiGetBasic(t *testing.T) {
	tr := New(Config{CapacityHint: 1 << 14, AutoResize: true})
	rng := rand.New(rand.NewSource(51))
	n := 20000
	for i := 0; i < n; i++ {
		mustSet(t, tr, keys.Uint64Key(uint64(i)*3), uint64(i))
	}
	for _, bs := range []int{1, 2, 7, 8, 64, 100, 500} {
		batch := make([][]byte, bs)
		for j := range batch {
			batch[j] = keys.Uint64Key(uint64(rng.Intn(3 * n))) // ~1/3 hit rate
		}
		if bs > 1 {
			batch[bs-1] = batch[0]
		}
		vals := make([]uint64, bs)
		found := make([]bool, bs)
		tr.MultiGet(batch, vals, found)
		for j, k := range batch {
			wv, wok := tr.Get(k)
			if found[j] != wok || (wok && vals[j] != wv) {
				t.Fatalf("batch %d: MultiGet[%d] = %d,%v; Get = %d,%v",
					bs, j, vals[j], found[j], wv, wok)
			}
		}
	}
}

// TestMultiGetVariableKeys exercises the staged hash ladders across keys of
// very different lengths (different descent depths and jump nodes) in the
// same batch.
func TestMultiGetVariableKeys(t *testing.T) {
	tr := New(Config{CapacityHint: 1 << 12, AutoResize: true})
	rng := rand.New(rand.NewSource(52))
	var stored [][]byte
	for i := 0; i < 5000; i++ {
		k := make([]byte, 1+rng.Intn(40))
		rng.Read(k)
		if _, err := tr.Set(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		stored = append(stored, k)
	}
	batch := make([][]byte, 128)
	for j := range batch {
		if j%4 == 0 {
			k := make([]byte, 1+rng.Intn(40))
			rng.Read(k)
			batch[j] = k
		} else {
			batch[j] = stored[rng.Intn(len(stored))]
		}
	}
	vals := make([]uint64, len(batch))
	found := make([]bool, len(batch))
	tr.MultiGet(batch, vals, found)
	for j, k := range batch {
		wv, wok := tr.Get(k)
		if found[j] != wok || (wok && vals[j] != wv) {
			t.Fatalf("MultiGet[%d] (len %d) = %d,%v; Get = %d,%v",
				j, len(k), vals[j], found[j], wv, wok)
		}
	}
}

// TestMultiSetAdded verifies the batched write path's added accounting.
func TestMultiSetAdded(t *testing.T) {
	tr := New(Config{CapacityHint: 1 << 10, AutoResize: true})
	ks := make([][]byte, 100)
	vals := make([]uint64, 100)
	for i := range ks {
		ks[i] = keys.Uint64Key(uint64(i))
		vals[i] = uint64(i)
	}
	errs := make([]error, len(ks))
	if added := tr.MultiSet(ks, vals, errs); added != len(ks) {
		t.Fatalf("fresh MultiSet added %d", added)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
	if added := tr.MultiSet(ks, vals, nil); added != 0 {
		t.Fatalf("repeat MultiSet added %d", added)
	}
	if tr.Len() != len(ks) {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestConcurrentMultiGet runs batched readers against concurrent writers:
// stable keys must always be found with their original values, regardless of
// the churn triggering conflict fallbacks or table resizes mid-batch.
func TestConcurrentMultiGet(t *testing.T) {
	tr := New(Config{CapacityHint: 1 << 12, AutoResize: true})
	const stable = 2000
	for i := 0; i < stable; i++ {
		mustSet(t, tr, keys.Uint64Key(uint64(i)*2+1), uint64(i))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	writers := 2
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for !stop.Load() {
				v := uint64(w+1)<<50 | uint64(rng.Int63n(1<<30))*2
				if _, err := tr.Set(keys.Uint64Key(v), v); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
			}
		}(w)
	}

	readers := 2
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + r)))
			const bs = 32
			batch := make([][]byte, bs)
			idx := make([]int, bs)
			vals := make([]uint64, bs)
			found := make([]bool, bs)
			for !stop.Load() {
				for j := 0; j < bs; j++ {
					idx[j] = rng.Intn(stable)
					batch[j] = keys.Uint64Key(uint64(idx[j])*2 + 1)
				}
				tr.MultiGet(batch, vals, found)
				for j := 0; j < bs; j++ {
					if !found[j] || vals[j] != uint64(idx[j]) {
						errs <- errFmt("stable key %d: MultiGet %d,%v",
							idx[j], vals[j], found[j])
						return
					}
				}
			}
		}(r)
	}

	timeout := 2 * time.Second
	if testing.Short() {
		timeout = 300 * time.Millisecond
	}
	select {
	case err := <-errs:
		stop.Store(true)
		wg.Wait()
		t.Fatal(err)
	case <-time.After(timeout):
		stop.Store(true)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
