package core

import (
	"bytes"
	"math/bits"

	"repro/internal/keys"
)

// Deletion (§4.5): find the leaf and its predecessor, clear the leaf's bit
// in its parent's bitmap, unlink it from the leaf list, update subtree-max
// locators that pointed at it, and collapse the surrounding structure:
//
//   - if the parent is left with a single child that is a leaf, the whole
//     single-leaf subtree (the "tail") is replaced by that leaf, hoisted to
//     the shallowest position (past any jump nodes directly above);
//   - if the single remaining child is an interior node, the parent becomes
//     a jump node toward it (path compression), merging with the child when
//     the child is itself a short-enough jump node.
//
// Hoisting moves a leaf, changing its locator; every reference to the old
// locator (a predecessor's next pointer, ancestors' subtree-max, the trie
// minimum) is rewritten in the same critical section.
//
// The paper's artifact omits deletions (§6.1); this implements the design
// described in the paper as an extension.

// Delete removes key k. It reports whether the key was present.
func (tr *Trie) Delete(k []byte) bool {
	if len(k) > MaxKeyLen {
		return false
	}
	var sbuf [96]byte
	syms := keys.AppendSymbols(sbuf[:0], k)
	var pbuf [32]pathNode
	path := pbuf[:0]
	for {
		t := tr.tbl.Load()
		var st int
		st, path = tr.deleteOnce(t, syms, k, path)
		switch st {
		case insDone:
			return true
		case insFull: // not present
			return false
		}
	}
}

func (tr *Trie) deleteOnce(t *table, syms []byte, k []byte, path []pathNode) (int, []pathNode) {
	var st searchState
	path, st = tr.searchPath(t, syms, path)
	if st.outcome == soRestart {
		return insRetry, path
	}
	if st.outcome != soLeaf {
		return insFull, path
	}
	L := &path[len(path)-1]
	if !bytes.Equal(tr.recs.key(L.ent.recIdx), k) {
		if t.loadVersion(L.ref.bucket) != L.ref.ver {
			return insRetry, path // stale record read
		}
		return insFull, path
	}
	P := &path[len(path)-2]
	if P.ent.kind != kindInternal {
		// A leaf's parent is always regular (jump children are never
		// leaves); a mismatch means a torn read.
		return insRetry, path
	}
	s := L.ent.lastSym
	lLoc := L.loc()

	p := newPlan(t)
	defer p.recycle()
	for i := range path {
		p.addRef(path[i].ref)
	}

	// Predecessor of k among remaining keys.
	var pred predLeaf
	var predFound bool
	if !tr.cfg.DisableLeafList {
		var vbuf [8]entryRef
		vset := vbuf[:0]
		var ok bool
		pred, predFound, ok = t.predViaAncestors(path[:len(path)-1], syms, &vset)
		if !ok {
			return insRetry, path
		}
		for _, r := range vset {
			p.addRef(r)
		}
	}

	// Subtree-max rule: ancestors whose max was L now have pred as max.
	if !tr.cfg.DisableLeafList {
		for i := range path[:len(path)-1] {
			n := &path[i]
			if n.ent.kind == kindLeaf || !n.ent.hasLoc {
				continue
			}
			if n.ent.maxLeafLoc() != lLoc {
				continue
			}
			m := p.modify(n.ref, n.ent)
			if predFound {
				m.setLoc(pred.loc())
			} else {
				// Only a now-empty subtree can lose its max with no
				// predecessor anywhere; that happens only at the root.
				m.hasLoc = false
				m.locHash = 0
				m.locColor = 0
			}
		}
	}

	// Unlink from the leaf list.
	if !tr.cfg.DisableLeafList {
		if predFound {
			pm := p.modify(pred.ref, pred.ent)
			pm.hasNext = L.ent.hasNext
			pm.locHash = L.ent.locHash
			pm.locColor = L.ent.locColor
		} else {
			if _, ok := p.snapshot(0); !ok {
				return insRetry, path
			}
			if L.ent.hasNext {
				p.setMin(L.ent.nextLeafLoc())
			} else {
				p.clearMin()
			}
		}
	}

	// Structural update around the parent.
	pm := p.modify(P.ref, P.ent)
	pm.w1 = bitmapClear(pm.w1, s)

	var moved bool
	var cOldLoc, cNewLoc locator
	if len(path) > 2 { // P is not the root
		remaining := pm.w1
		if popcount33(remaining) == 1 {
			s2 := byte(lowestSetBit(remaining))
			hC := t.step(P.hash, s2)
			C, cRef, ok := t.searchChildOfRegular(hC, s2, P.ref, P.ent.color)
			if !ok {
				return insRetry, path
			}
			p.addRef(cRef)
			if C.kind == kindLeaf {
				// Hoist C to the shallowest position above P whose parent
				// is not a jump node.
				hostIdx := len(path) - 2
				for hostIdx > 1 && path[hostIdx-1].ent.kind == kindJump {
					hostIdx--
				}
				host := &path[hostIdx]
				cOldLoc = locator{hC, C.color}
				cNewLoc = host.loc()
				moved = true

				hm := p.modify(host.ref, host.ent)
				keep := *hm // after any subtree-max rule edits
				hm.kind = kindLeaf
				hm.tag = keep.tag
				hm.primary = keep.primary
				hm.lastSym = keep.lastSym
				hm.color = keep.color
				hm.parentColor = keep.parentColor
				hm.parentIsJump = keep.parentIsJump
				hm.dirty = false
				hm.jumpLen = 0
				hm.childColor = 0
				hm.hasLoc = false
				hm.w1 = 0
				hm.recIdx = C.recIdx
				if C.hasNext && C.nextLeafLoc() == lLoc {
					// C's successor was the deleted leaf: skip over it.
					hm.hasNext = L.ent.hasNext
					hm.locHash = L.ent.locHash
					hm.locColor = L.ent.locColor
				} else {
					hm.hasNext = C.hasNext
					hm.locHash = C.locHash
					hm.locColor = C.locColor
				}

				// The leaf pointing at C must be retargeted. If k < kc the
				// pointer is pred→L→C and the pred.next update above already
				// routes to C (via L.next == C); translation below fixes it
				// to the new location. If kc < k, C's own predecessor is
				// found above P.
				if s > s2 && !tr.cfg.DisableLeafList {
					var vbuf [8]entryRef
					vset := vbuf[:0]
					prevC, prevFound, ok := t.predViaAncestors(path[:len(path)-2], syms, &vset)
					if !ok {
						return insRetry, path
					}
					for _, r := range vset {
						p.addRef(r)
					}
					if prevFound {
						if prevC.ref.slotRef != cRef.slotRef {
							pv := p.modify(prevC.ref, prevC.ent)
							pv.setLoc(cNewLoc)
							pv.hasNext = true
						}
					} else {
						if _, ok := p.snapshot(0); !ok {
							return insRetry, path
						}
						p.setMin(cNewLoc)
					}
				}

				// Ancestors above the host whose subtree-max was C must
				// track it to its new position.
				if !tr.cfg.DisableLeafList {
					for i := 0; i < hostIdx; i++ {
						n := &path[i]
						if n.ent.kind == kindLeaf || !n.ent.hasLoc {
							continue
						}
						if n.ent.maxLeafLoc() == cOldLoc {
							m := p.modify(n.ref, n.ent)
							m.setLoc(cNewLoc)
						}
					}
				}

				// Remove the tail: everything strictly between host and L,
				// plus C's old slot.
				for i := hostIdx + 1; i < len(path)-1; i++ {
					p.clearEntry(path[i].ref)
				}
				p.clearEntry(cRef)
			} else {
				// Convert P into a jump node toward C; merge if C is a
				// short jump.
				pm.kind = kindJump
				if C.kind == kindJump && 1+int(C.jumpLen) <= maxJumpSymbols {
					symsM := make([]byte, 0, maxJumpSymbols)
					symsM = append(symsM, s2)
					for i := 0; i < int(C.jumpLen); i++ {
						symsM = append(symsM, C.jumpSymbol(i))
					}
					pm.jumpLen = uint8(len(symsM))
					pm.w1 = packJumpSymbols(symsM)
					pm.childColor = C.childColor
					p.clearEntry(cRef)
				} else {
					pm.jumpLen = 1
					pm.w1 = packJumpSymbols([]byte{s2})
					pm.childColor = C.color
					cm := p.modify(cRef, C)
					cm.parentIsJump = true
					cm.parentColor = 0
				}
			}
		}
	}

	// Remove the leaf itself.
	p.clearEntry(L.ref)

	// Translate every reference to C's old locator (the hoist moved it).
	if moved {
		for i := range p.mods {
			e := &p.mods[i].ent
			translateLoc(e, cOldLoc, cNewLoc)
		}
		for i := range p.writes {
			translateLoc(&p.writes[i].ent, cOldLoc, cNewLoc)
		}
		if p.minUpdate && !p.minClear && p.newMin == cOldLoc {
			p.newMin = cNewLoc
		}
	}

	if p.failed {
		return insRetry, path
	}
	if !p.apply(tr) {
		return insRetry, path
	}
	tr.recs.release(L.ent.recIdx)
	tr.count.Add(-1)
	return insDone, path
}

// translateLoc rewrites e's locator word if it references from.
func translateLoc(e *entry, from, to locator) {
	switch e.kind {
	case kindLeaf:
		if e.hasNext && e.nextLeafLoc() == from {
			e.setLoc(to)
		}
	case kindInternal, kindJump:
		if e.hasLoc && e.maxLeafLoc() == from {
			e.setLoc(to)
		}
	}
}

func popcount33(w uint64) int   { return bits.OnesCount64(w) }
func lowestSetBit(w uint64) int { return bits.TrailingZeros64(w) }
