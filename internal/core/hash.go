// Package core implements the Cuckoo Trie (Zeitak & Morrison, SOSP 2021):
// an ordered index that stores path-compressed trie nodes in a bucketized
// cuckoo hash table keyed by node names (key prefixes), with *key
// elimination* — entries store only their last symbol, a small tag, a color,
// and their parent's color — so that the table needs constant space per node
// regardless of key length, while a whole root-to-leaf path can be probed
// with independent (parallelizable) memory reads.
package core

import "math/rand"

// Table geometry constants. The paper configures t=16 tags and four-entry
// buckets (§4.2, Figure 4) and R=2^5..2^6 for the peelable hash; we use R=64
// so that data symbols (6 bits after the terminator shift) fit.
const (
	entriesPerBucket = 4
	tagCount         = 16 // t: number of tag values; h mod t is stored per entry
	tagShift         = 4  // log2(tagCount)
	hashR            = 64 // R in the peelable hash; must exceed the max symbol
	numColors        = 8  // 2B colors for B-entry buckets (§4.2)
	maxJumpSymbols   = 9  // symbols packed per jump node (6 bits each, 54 bits)
)

// hasher computes the paper's peelable hash over symbol sequences for a table
// with S buckets. The hash domain is [0, S·t). Peelability — the property
// that h(x) is recoverable from h(x·c) and c — is what lets entry
// verification work without stored keys; the trie never *computes* the peel
// function, it only relies on its existence (§4.2, footnote 5).
//
//	h(ε)   = 0
//	h(x·c) = ⌊(h(x)⊕c)/R⌋ + (S·t/R)·((h(x)⊕c) mod R)
type hasher struct {
	buckets uint64 // S; power of two, ≥ 64 so that R | S·t
	mask    uint64 // S-1
	mult    uint64 // S·t/R = S/4
	kickTab [tagCount]uint64
	// symTab is a seeded permutation of the symbol alphabet, applied before
	// the peelable mix. Without it the hash depends only on the geometry
	// and the raw symbols, so a structured key set (fixed-format decimal
	// strings, say) whose node names collide DIFFERENTIALLY — pairwise XOR
	// patterns the linear step preserves — collides at every table size,
	// and a resize can never clear the over-full color class. A per-table
	// permutation keeps peelability (it is a bijection composed with the
	// peelable step) while giving every resize attempt an independent hash
	// function.
	symTab [hashR]byte
}

func newHasher(buckets uint64, seed int64) hasher {
	if buckets&(buckets-1) != 0 || buckets < hashR {
		panic("core: bucket count must be a power of two >= 64")
	}
	h := hasher{buckets: buckets, mask: buckets - 1, mult: buckets * tagCount / hashR}
	rng := rand.New(rand.NewSource(seed))
	for i := range h.kickTab {
		// f: [0,t) -> [0,S): random bucket offsets for the alternate bucket.
		// Offsets must be nonzero so B1 != B2 (otherwise an entry could not
		// be relocated).
		for {
			v := rng.Uint64() & h.mask
			if v != 0 {
				h.kickTab[i] = v
				break
			}
		}
	}
	for i, p := range rng.Perm(hashR) {
		h.symTab[i] = byte(p)
	}
	return h
}

// step extends hash h with one symbol. h must be in [0, S·t).
func (hs *hasher) step(h uint64, sym byte) uint64 {
	v := h ^ uint64(hs.symTab[sym])
	return v/hashR + hs.mult*(v%hashR)
}

// hashKey hashes the first n symbols of the symbol sequence syms.
func (hs *hasher) hashSyms(syms []byte, n int) uint64 {
	h := uint64(0)
	for i := 0; i < n; i++ {
		h = hs.step(h, syms[i])
	}
	return h
}

// bucketsOf returns the two candidate buckets and the tag for hash h.
// B1 = ⌊h/t⌋; B2 = (B1 + f(h mod t)) mod S (§4.2).
func (hs *hasher) bucketsOf(h uint64) (b1, b2 uint64, tag uint8) {
	tag = uint8(h & (tagCount - 1))
	b1 = h >> tagShift
	b2 = (b1 + hs.kickTab[tag]) & hs.mask
	return
}

// hashOf reconstructs the full hash of an entry from its current bucket, its
// tag, and whether it resides in its primary bucket. This is what makes
// cuckoo relocations possible without storing keys.
func (hs *hasher) hashOf(bucket uint64, tag uint8, primary bool) uint64 {
	b1 := bucket
	if !primary {
		b1 = (bucket - hs.kickTab[tag]) & hs.mask
	}
	return b1<<tagShift | uint64(tag)
}

// altBucket returns the other candidate bucket for an entry currently in
// bucket with the given tag/primacy.
func (hs *hasher) altBucket(bucket uint64, tag uint8, primary bool) uint64 {
	if primary {
		return (bucket + hs.kickTab[tag]) & hs.mask
	}
	return (bucket - hs.kickTab[tag]) & hs.mask
}
