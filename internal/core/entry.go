package core

// Entry encoding. Each hash table entry is one trie node, packed into three
// 64-bit words so that readers can snapshot it with three atomic loads under
// the bucket seqlock. The paper packs entries into 15 bytes (Figure 4); Go's
// race-checked memory model requires word-granular atomics, so we spend 24
// bytes and report both layouts in the memory accounting (see stats.go and
// DESIGN.md §3).
//
// Word 0 (metadata + record index):
//
//	bits  0-1   kind (empty / internal / jump / leaf)
//	bits  2-5   tag: h mod t
//	bit   6     primary: entry is in its primary bucket B1
//	bits  7-12  lastSymbol: final symbol of this node's name
//	bits 13-15  color: unique among live entries with the same hash
//	bits 16-18  parentColor: color of the parent entry (regular nodes)
//	bit   19    dirty: leaf made transiently inconsistent / deleted (§5)
//	bits 20-23  jumpLen: number of compressed symbols (jump nodes)
//	bits 24-26  locColor: color half of the locator in word 2
//	bits 27-29  childColor: color of a jump node's sole child
//	bit   30    hasNext: leaf has a successor (word 2 locator valid)
//	bit   31    hasLoc: subtree-max locator valid (internal/jump)
//	bit   32    parentIsJump: this node is the sole child of a jump node, so
//	            its parentColor field is meaningless and the entry must never
//	            match a SearchByParent probe (leaves are never jump children,
//	            so the bit does not collide with their record index)
//	bits 33-63  record index (leaves)
//
// Word 1: child bitmap (internal, 33 bits) | packed jump symbols (jump,
// 6 bits each) | unused (leaf).
//
// Word 2: locator hash — subtree-max leaf for internal/jump nodes, next leaf
// in key order for leaves. A locator is (hash, color): it survives cuckoo
// relocations, unlike a memory address (§4.4).
const (
	kindEmpty    = 0
	kindInternal = 1
	kindJump     = 2
	kindLeaf     = 3
)

type entry struct {
	kind         uint8
	tag          uint8
	primary      bool
	lastSym      byte
	color        uint8
	parentColor  uint8
	dirty        bool
	jumpLen      uint8
	locColor     uint8
	childColor   uint8
	hasNext      bool
	hasLoc       bool
	parentIsJump bool
	recIdx       uint32
	w1           uint64 // bitmap | jump symbols
	locHash      uint64 // subtree-max (internal/jump) or next-leaf (leaf) hash
}

func (e *entry) encode() (w0, w1, w2 uint64) {
	w0 = uint64(e.kind) & 3
	w0 |= uint64(e.tag&0xf) << 2
	if e.primary {
		w0 |= 1 << 6
	}
	w0 |= uint64(e.lastSym&0x3f) << 7
	w0 |= uint64(e.color&7) << 13
	w0 |= uint64(e.parentColor&7) << 16
	if e.dirty {
		w0 |= 1 << 19
	}
	w0 |= uint64(e.jumpLen&0xf) << 20
	w0 |= uint64(e.locColor&7) << 24
	w0 |= uint64(e.childColor&7) << 27
	if e.hasNext {
		w0 |= 1 << 30
	}
	if e.hasLoc {
		w0 |= 1 << 31
	}
	if e.parentIsJump {
		w0 |= 1 << 32
	}
	w0 |= uint64(e.recIdx&0x7fffffff) << 33
	return w0, e.w1, e.locHash
}

func decodeEntry(w0, w1, w2 uint64) entry {
	return entry{
		kind:         uint8(w0 & 3),
		tag:          uint8(w0 >> 2 & 0xf),
		primary:      w0>>6&1 != 0,
		lastSym:      byte(w0 >> 7 & 0x3f),
		color:        uint8(w0 >> 13 & 7),
		parentColor:  uint8(w0 >> 16 & 7),
		dirty:        w0>>19&1 != 0,
		jumpLen:      uint8(w0 >> 20 & 0xf),
		locColor:     uint8(w0 >> 24 & 7),
		childColor:   uint8(w0 >> 27 & 7),
		hasNext:      w0>>30&1 != 0,
		hasLoc:       w0>>31&1 != 0,
		parentIsJump: w0>>32&1 != 0,
		recIdx:       uint32(w0 >> 33 & 0x7fffffff),
		w1:           w1,
		locHash:      w2,
	}
}

// jumpSymbol returns the i'th compressed symbol of a jump node.
func (e *entry) jumpSymbol(i int) byte {
	return byte(e.w1 >> (6 * uint(i)) & 0x3f)
}

// packJumpSymbols packs syms (len ≤ maxJumpSymbols) into a word-1 value.
func packJumpSymbols(syms []byte) uint64 {
	var w uint64
	for i, s := range syms {
		w |= uint64(s&0x3f) << (6 * uint(i))
	}
	return w
}

// bitmap helpers: word 1 of an internal node has bit s set iff the node has a
// child whose next symbol is s.
func bitmapHas(w uint64, sym byte) bool     { return w>>uint(sym)&1 != 0 }
func bitmapSet(w uint64, sym byte) uint64   { return w | 1<<uint(sym) }
func bitmapClear(w uint64, sym byte) uint64 { return w &^ (1 << uint(sym)) }

// locator identifies a node's entry independently of relocations: the full
// key hash plus the entry's color (Figure 4).
type locator struct {
	hash  uint64
	color uint8
}

func (e *entry) maxLeafLoc() locator  { return locator{e.locHash, e.locColor} }
func (e *entry) nextLeafLoc() locator { return locator{e.locHash, e.locColor} }

func (e *entry) setLoc(l locator) {
	e.locHash = l.hash
	e.locColor = l.color
}
