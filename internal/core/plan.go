package core

import "sync"

// A plan accumulates a writer's intended changes — new entries to place and
// existing entries to overwrite — computed optimistically from consistent
// bucket snapshots. Applying the plan CAS-locks every involved bucket,
// validating that nothing changed since it was read (§5), then writes and
// releases. Any validation failure aborts the whole plan and the operation
// restarts from scratch.

type plannedWrite struct {
	b    uint64
	slot int
	ent  entry
}

type plannedMod struct {
	ref entryRef
	ent entry
}

type snapCacheEnt struct {
	b    uint64
	snap bucketSnap
}

type colorUse struct {
	hash uint64
	mask uint8
}

type plan struct {
	t     *table
	locks lockSet
	dirty []uint64 // buckets whose content the plan changes

	writes []plannedWrite
	mods   []plannedMod

	snaps     []snapCacheEnt
	colorUses []colorUse
	taken     []slotRef // slots consumed by earlier placements in this plan

	minUpdate bool
	newMin    locator
	minClear  bool

	needRoom     bool
	needRoomHash uint64
	colorsFull   bool // all colors for some hash taken: only a resize helps
	failed       bool
}

// Plans are pooled: writers build and apply several per second per core,
// and the slice-backed bookkeeping would otherwise dominate insert cost.
var planPool = sync.Pool{New: func() any { return &plan{} }}

func newPlan(t *table) *plan {
	p := planPool.Get().(*plan)
	p.reset(t)
	return p
}

// recycle returns the plan to the pool. The caller must not touch it after.
func (p *plan) recycle() { planPool.Put(p) }

func (p *plan) reset(t *table) {
	p.t = t
	p.locks.reset()
	p.dirty = p.dirty[:0]
	p.writes = p.writes[:0]
	p.mods = p.mods[:0]
	p.snaps = p.snaps[:0]
	p.colorUses = p.colorUses[:0]
	p.taken = p.taken[:0]
	p.minUpdate = false
	p.minClear = false
	p.needRoom = false
	p.colorsFull = false
	p.failed = false
}

// snapshot returns a cached consistent snapshot of bucket b, registering its
// version for lock-time validation. The snapshot is returned by value: the
// cache slice may grow and relocate.
func (p *plan) snapshot(b uint64) (bucketSnap, bool) {
	for i := range p.snaps {
		if p.snaps[i].b == b {
			return p.snaps[i].snap, true
		}
	}
	s, ok := p.t.readBucket(b)
	if !ok {
		p.failed = true
		return bucketSnap{}, false
	}
	p.snaps = append(p.snaps, snapCacheEnt{b, s})
	p.locks.add(b, s.ver)
	return s, true
}

// addRef registers an already-read entry's bucket version for validation.
func (p *plan) addRef(ref entryRef) { p.locks.add(ref.bucket, ref.ver) }

func (p *plan) markDirty(b uint64) {
	for _, d := range p.dirty {
		if d == b {
			return
		}
	}
	p.dirty = append(p.dirty, b)
}

func (p *plan) slotTaken(b uint64, slot int) bool {
	for _, s := range p.taken {
		if s.bucket == b && s.slot == slot {
			return true
		}
	}
	return false
}

// usedColors returns the set (as a bitmask) of colors already used by live
// entries with the given hash, across both candidate buckets, including
// colors assigned by this plan.
func (p *plan) usedColors(h uint64) (uint8, bool) {
	b1, b2, tag := p.t.bucketsOf(h)
	var mask uint8
	s1, ok := p.snapshot(b1)
	if !ok {
		return 0, false
	}
	for i := range s1.entries {
		e := &s1.entries[i]
		if e.kind != kindEmpty && e.tag == tag && e.primary {
			mask |= 1 << e.color
		}
	}
	s2, ok := p.snapshot(b2)
	if !ok {
		return 0, false
	}
	for i := range s2.entries {
		e := &s2.entries[i]
		if e.kind != kindEmpty && e.tag == tag && !e.primary {
			mask |= 1 << e.color
		}
	}
	for _, cu := range p.colorUses {
		if cu.hash == h {
			mask |= cu.mask
		}
	}
	return mask, true
}

// place allocates a slot and a color for a new entry with hash h and
// registers the write. The prototype's identity fields (tag, primary, color)
// are filled in. Returns the write index (for later field patching) and the
// entry's locator. On failure the plan is marked needRoom (no free slot) or
// failed (transient read conflict / colors exhausted).
func (p *plan) place(h uint64, proto entry) (int, locator) {
	if p.failed || p.needRoom {
		return -1, locator{}
	}
	used, ok := p.usedColors(h)
	if !ok {
		return -1, locator{}
	}
	var color uint8 = 0xff
	for c := uint8(0); c < numColors; c++ {
		if used&(1<<c) == 0 {
			color = c
			break
		}
	}
	if color == 0xff {
		// All colors for this hash are taken. Relocation cannot help (colors
		// are per-hash across both buckets); only a resize — with its new
		// geometry and hash values — resolves this.
		p.colorsFull = true
		return -1, locator{}
	}
	b1, b2, tag := p.t.bucketsOf(h)
	s1, ok1 := p.snapshot(b1)
	s2, ok2 := p.snapshot(b2)
	if !ok1 || !ok2 {
		return -1, locator{}
	}
	bsel, slot, primary := uint64(0), -1, true
	for i := range s1.entries {
		if s1.entries[i].kind == kindEmpty && !p.slotTaken(b1, i) {
			bsel, slot, primary = b1, i, true
			break
		}
	}
	if slot < 0 {
		for i := range s2.entries {
			if s2.entries[i].kind == kindEmpty && !p.slotTaken(b2, i) {
				bsel, slot, primary = b2, i, false
				break
			}
		}
	}
	if slot < 0 {
		p.needRoom = true
		p.needRoomHash = h
		return -1, locator{}
	}
	proto.tag = tag
	proto.primary = primary
	proto.color = color
	p.taken = append(p.taken, slotRef{bsel, slot})
	p.colorUses = append(p.colorUses, colorUse{h, 1 << color})
	p.writes = append(p.writes, plannedWrite{bsel, slot, proto})
	return len(p.writes) - 1, locator{h, color}
}

// entOf returns a mutable pointer to a placed entry for field patching.
func (p *plan) entOf(writeIdx int) *entry { return &p.writes[writeIdx].ent }

// modify registers (or returns the already-registered) overwrite of an
// existing entry. The returned pointer is mutated by the caller.
func (p *plan) modify(ref entryRef, cur entry) *entry {
	p.addRef(ref)
	for i := range p.mods {
		if p.mods[i].ref.slotRef == ref.slotRef {
			return &p.mods[i].ent
		}
	}
	p.mods = append(p.mods, plannedMod{ref, cur})
	return &p.mods[len(p.mods)-1].ent
}

// clearEntry registers removal of an existing entry.
func (p *plan) clearEntry(ref entryRef) {
	e := p.modify(ref, entry{})
	*e = entry{}
}

// setMin schedules an update of the trie's min-leaf locator. The caller must
// have registered bucket 0 (the convention serializing min updates).
func (p *plan) setMin(l locator) { p.minUpdate, p.newMin, p.minClear = true, l, false }
func (p *plan) clearMin()        { p.minUpdate, p.minClear = true, true }

// apply executes the plan atomically with respect to readers and other
// writers. Reports whether the plan committed.
func (p *plan) apply(tr *Trie) bool {
	if p.failed || p.needRoom {
		return false
	}
	if !p.locks.acquire(p.t) {
		return false
	}
	for i := range p.writes {
		w := &p.writes[i]
		if !p.locks.holds(w.b) {
			// Placement bucket must have been registered via snapshot.
			panic("core: plan write to unlocked bucket")
		}
		p.t.writeSlot(w.b, w.slot, w.ent)
		p.markDirty(w.b)
	}
	for i := range p.mods {
		m := &p.mods[i]
		p.t.writeSlot(m.ref.bucket, m.ref.slot, m.ent)
		p.markDirty(m.ref.bucket)
	}
	if p.minUpdate {
		if p.minClear {
			tr.minLoc.Store(0)
		} else {
			tr.minLoc.Store(packMinLoc(p.newMin))
		}
		p.markDirty(0)
	}
	p.releaseAll()
	return true
}

func (p *plan) releaseAll() {
	ls := &p.locks
	for i := 0; i < ls.n; i++ {
		bump := false
		for _, d := range p.dirty {
			if d == ls.buckets[i] {
				bump = true
				break
			}
		}
		p.t.unlock(ls.buckets[i], ls.vers[i], bump)
	}
}
