package core

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/keys"
)

// Batched lookups. A single Cuckoo Trie lookup already enjoys intra-key MLP:
// every level's candidate buckets are computable from the key alone, so the
// probes of one root-to-leaf descent are independent DRAM accesses (§4.4).
// MultiGet generalizes the argument *across* keys: a server draining a
// pipeline of point lookups has no dependencies between requests either, so
// the batch is resolved level-synchronously in two repeating phases —
//
//  1. stage: compute the full hash ladder H(k[:1])..H(k[:n]) for every key
//     up front and touch (prefetch) the candidate buckets of each key's next
//     probe, issuing all of the batch's independent misses back-to-back;
//  2. resolve: advance every key by one probe, which now mostly hits cache.
//
// Keys that hit a concurrency conflict (torn read, table resize) fall back
// to the single-key Get, which carries its own retry loop.

// prefetch touches bucket b's first cache line so a subsequent probe of the
// bucket is likely a cache hit. The atomic load cannot be elided by the
// compiler, making it a portable stand-in for a prefetch instruction.
func (t *table) prefetch(b uint64) {
	atomic.LoadUint64(&t.words[b*bucketWords])
}

// mgScratch is MultiGet's reusable per-batch working memory.
type mgScratch struct {
	states []mgState
	syms   []byte
	hashes []uint64
}

var mgScratchPool = sync.Pool{New: func() any { return new(mgScratch) }}

// mgState tracks one key's in-flight descent.
type mgState struct {
	syms   []byte
	hashes []uint64 // hashes[i] = H(syms[:i]) under the current table
	cur    pathNode
	i      int // next symbol index to consume
	done   bool
	retry  bool // resolve via single-key Get at the end
}

// nextProbeHash returns the hash of the next child this key will fetch: for
// a regular node that is the next symbol's extension; for a jump node it is
// the hash at the jump's end, since the intermediate symbols are compared
// in-entry without probing.
func (st *mgState) nextProbeHash() (uint64, bool) {
	switch st.cur.ent.kind {
	case kindInternal:
		if st.i+1 < len(st.hashes) {
			return st.hashes[st.i+1], true
		}
	case kindJump:
		if end := st.cur.depth + int(st.cur.ent.jumpLen); end < len(st.hashes) {
			return st.hashes[end], true
		}
	}
	return 0, false
}

// MultiGet looks up a batch of keys, overlapping the independent probes of
// all descents. vals and found must each have at least len(ks) elements.
func (tr *Trie) MultiGet(ks [][]byte, vals []uint64, found []bool) {
	n := len(ks)
	if n == 0 {
		return
	}
	if n == 1 {
		vals[0], found[0] = tr.Get(ks[0])
		return
	}
	t := tr.tbl.Load()
	root, rootRef, rok := tr.tryFindRoot(t)

	// Flat per-batch scratch, pooled so the steady-state batch path is
	// allocation-free: the states, the symbol expansions, and the hash
	// ladders live in three buffers sliced per key.
	totalSyms := 0
	for j := 0; j < n; j++ {
		if len(ks[j]) <= MaxKeyLen {
			totalSyms += keys.NumSymbols(ks[j])
		}
	}
	sc := mgScratchPool.Get().(*mgScratch)
	defer mgScratchPool.Put(sc)
	if cap(sc.states) < n {
		sc.states = make([]mgState, n)
	}
	if cap(sc.syms) < totalSyms {
		sc.syms = make([]byte, 0, totalSyms)
	}
	if cap(sc.hashes) < totalSyms+n {
		sc.hashes = make([]uint64, 0, totalSyms+n)
	}
	states := sc.states[:n]
	for j := range states {
		states[j] = mgState{} // pooled memory: clear stale done/retry flags
	}
	symBuf := sc.syms[:0]
	hashBuf := sc.hashes[:0]

	active := 0
	for j := 0; j < n; j++ {
		st := &states[j]
		if len(ks[j]) > MaxKeyLen {
			vals[j], found[j] = 0, false
			st.done = true
			continue
		}
		if !rok {
			st.retry = true
			continue
		}
		// Stage phase: symbols and the whole hash ladder, computed before any
		// probe resolves, so every level's bucket addresses are known up front.
		lo := len(symBuf)
		symBuf = keys.AppendSymbols(symBuf, ks[j])
		st.syms = symBuf[lo:len(symBuf):len(symBuf)]
		hlo := len(hashBuf)
		hashBuf = append(hashBuf, 0)
		h := uint64(0)
		for _, s := range st.syms {
			h = t.step(h, s)
			hashBuf = append(hashBuf, h)
		}
		st.hashes = hashBuf[hlo:len(hashBuf):len(hashBuf)]
		st.cur = pathNode{ent: root, ref: rootRef, depth: 0, hash: 0}
		active++
	}

	touch := func() {
		for j := range states {
			st := &states[j]
			if st.done || st.retry {
				continue
			}
			if h, ok := st.nextProbeHash(); ok {
				b1, b2, _ := t.bucketsOf(h)
				t.prefetch(b1)
				t.prefetch(b2)
			}
		}
	}

	touch()
	for active > 0 {
		for j := range states {
			st := &states[j]
			if st.done || st.retry {
				continue
			}
			tr.mgAdvance(t, st, ks[j], vals, found, j)
			if st.done || st.retry {
				active--
			}
		}
		if active > 0 {
			touch()
		}
	}

	for j := range states {
		if states[j].retry {
			vals[j], found[j] = tr.Get(ks[j])
		}
	}
}

// mgAdvance performs one probe step of key j's descent: it consumes in-entry
// jump symbols without memory accesses, then fetches exactly one child (or
// reaches a terminal miss/leaf). Conflicts mark the key for single-Get retry.
func (tr *Trie) mgAdvance(t *table, st *mgState, k []byte, vals []uint64, found []bool, j int) {
	cur := &st.cur
	for {
		if st.i >= len(st.syms) {
			// The terminator cannot have children: torn read, retry.
			st.retry = true
			return
		}
		s := st.syms[st.i]
		switch cur.ent.kind {
		case kindInternal:
			if !bitmapHas(cur.ent.w1, s) {
				vals[j], found[j] = 0, false
				st.done = true
				return
			}
		case kindJump:
			off := st.i - cur.depth
			if cur.ent.jumpSymbol(off) != s {
				vals[j], found[j] = 0, false
				st.done = true
				return
			}
			if off+1 < int(cur.ent.jumpLen) {
				st.i++
				continue
			}
		default:
			st.retry = true
			return
		}
		h := st.hashes[st.i+1]
		child, ref, ok := t.findChild(cur, h, s, cur.ent.kind == kindJump)
		if !ok {
			st.retry = true
			return
		}
		st.cur = pathNode{ent: child, ref: ref, depth: st.i + 1, hash: h}
		st.i++
		if child.kind == kindLeaf {
			if child.dirty {
				st.retry = true
				return
			}
			rk := tr.recs.key(child.recIdx)
			match := bytes.Equal(rk, k)
			val := tr.recs.value(child.recIdx)
			if t.loadVersion(ref.bucket) != ref.ver {
				st.retry = true
				return
			}
			if match {
				vals[j], found[j] = val, true
			} else {
				vals[j], found[j] = 0, false
			}
			st.done = true
		}
		return
	}
}

// MultiSet inserts or updates a batch of keys. Writes mutate shared buckets,
// so they execute sequentially; the batch form exists for interface symmetry
// and single-call convenience. errs, when non-nil, receives per-key errors;
// the return value counts newly added keys.
func (tr *Trie) MultiSet(ks [][]byte, vals []uint64, errs []error) int {
	added := 0
	for i, k := range ks {
		a, err := tr.Set(k, vals[i])
		if errs != nil {
			errs[i] = err
		}
		if err == nil && a {
			added++
		}
	}
	return added
}
