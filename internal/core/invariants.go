package core

import (
	"bytes"
	"fmt"
)

// CheckInvariants walks the whole trie and verifies its structural
// invariants. It is intended for tests and debugging on a quiescent trie
// (no concurrent writers); it is not part of the hot path.
//
// Checked invariants:
//
//  1. every child reachable from the root exists in the table and verifies
//     (tag, last symbol, parent linkage);
//  2. colors are unique among live same-hash entries;
//  3. every internal non-root node has ≥ 2 children; every jump node's
//     child exists and is not a leaf;
//  4. each internal/jump node's subtree-max locator points to the maximal
//     leaf of its subtree;
//  5. the leaf linked list visits exactly the trie's leaves in ascending
//     key order, starting at the trie minimum;
//  6. the number of leaves equals Len().
func (tr *Trie) CheckInvariants() error {
	t := tr.tbl.Load()
	root, rootRef, ok := tr.tryFindRoot(t)
	if !ok {
		return fmt.Errorf("root not found")
	}
	c := &checker{tr: tr, t: t}
	maxLoc, hasMax, err := c.walk(root, rootRef, 0, nil)
	if err != nil {
		return err
	}
	if !tr.cfg.DisableLeafList {
		if root.hasLoc != hasMax {
			return fmt.Errorf("root hasLoc=%v but subtree max present=%v", root.hasLoc, hasMax)
		}
		if hasMax && root.maxLeafLoc() != maxLoc {
			return fmt.Errorf("root subtree-max locator mismatch")
		}
	}
	if c.leaves != tr.Len() {
		return fmt.Errorf("walk found %d leaves, Len()=%d", c.leaves, tr.Len())
	}
	if !tr.cfg.DisableLeafList {
		if err := c.checkLeafList(); err != nil {
			return err
		}
	}
	if err := c.checkColors(); err != nil {
		return err
	}
	return nil
}

type checker struct {
	tr     *Trie
	t      *table
	leaves int
	keys   [][]byte // leaf keys in DFS (= sorted) order
	locs   []locator
}

// walk recursively checks node e (hash h, name prefix of key being built).
// Returns the subtree-max locator.
func (c *checker) walk(e entry, ref entryRef, h uint64, name []byte) (locator, bool, error) {
	switch e.kind {
	case kindLeaf:
		c.leaves++
		key := c.tr.recs.key(e.recIdx)
		c.keys = append(c.keys, append([]byte(nil), key...))
		loc := locator{h, e.color}
		c.locs = append(c.locs, loc)
		return loc, true, nil
	case kindJump:
		if e.jumpLen == 0 || int(e.jumpLen) > maxJumpSymbols {
			return locator{}, false, fmt.Errorf("jump node with bad length %d", e.jumpLen)
		}
		hc := h
		for i := 0; i < int(e.jumpLen); i++ {
			s := e.jumpSymbol(i)
			if s > maxSymbol {
				return locator{}, false, fmt.Errorf("jump symbol %d out of range", s)
			}
			hc = c.t.step(hc, s)
		}
		last := e.jumpSymbol(int(e.jumpLen) - 1)
		child, cref, ok := c.t.lockedFindChildByColor(hc, last, e.childColor)
		if !ok {
			return locator{}, false, fmt.Errorf("jump child missing (name %x)", name)
		}
		if child.kind == kindLeaf {
			return locator{}, false, fmt.Errorf("jump node child is a leaf")
		}
		if !child.parentIsJump {
			return locator{}, false, fmt.Errorf("jump child lacks parentIsJump")
		}
		ml, hm, err := c.walk(child, entryRef{cref, 0}, hc, name)
		if err != nil {
			return locator{}, false, err
		}
		if !c.tr.cfg.DisableLeafList {
			if !hm || !e.hasLoc || e.maxLeafLoc() != ml {
				return locator{}, false, fmt.Errorf("jump subtree-max mismatch")
			}
		}
		return ml, true, nil
	case kindInternal:
		nchild := 0
		var maxLoc locator
		var hasMax bool
		for s := 0; s <= maxSymbol; s++ {
			if !bitmapHas(e.w1, byte(s)) {
				continue
			}
			nchild++
			hc := c.t.step(h, byte(s))
			child, cref, ok := c.t.lockedFindChildByParent(hc, byte(s), e.color)
			if !ok {
				return locator{}, false, fmt.Errorf("child sym %d missing under %x", s, name)
			}
			if child.parentIsJump {
				return locator{}, false, fmt.Errorf("regular child has parentIsJump set")
			}
			ml, hm, err := c.walk(child, entryRef{cref, 0}, hc, name)
			if err != nil {
				return locator{}, false, err
			}
			if hm {
				maxLoc, hasMax = ml, true
			}
		}
		isRoot := h == 0 && e.color == uint8(c.tr.rootColor.Load()) && e.lastSym == rootLastSym
		if !isRoot && nchild < 2 {
			return locator{}, false, fmt.Errorf("non-root internal node with %d children", nchild)
		}
		if !isRoot && !c.tr.cfg.DisableLeafList {
			if !e.hasLoc || !hasMax || e.maxLeafLoc() != maxLoc {
				return locator{}, false, fmt.Errorf("internal subtree-max mismatch (nchild=%d)", nchild)
			}
		}
		return maxLoc, hasMax, nil
	}
	return locator{}, false, fmt.Errorf("walk reached empty entry")
}

// checkLeafList verifies the linked list matches the DFS leaf order.
func (c *checker) checkLeafList() error {
	for i := 1; i < len(c.keys); i++ {
		if bytes.Compare(c.keys[i-1], c.keys[i]) >= 0 {
			return fmt.Errorf("DFS keys out of order at %d: %x >= %x", i, c.keys[i-1], c.keys[i])
		}
	}
	minLoc, valid := unpackMinLoc(c.tr.minLoc.Load())
	if len(c.keys) == 0 {
		if valid {
			return fmt.Errorf("minLoc set on empty trie")
		}
		return nil
	}
	if !valid {
		return fmt.Errorf("minLoc unset on non-empty trie")
	}
	if minLoc != c.locs[0] {
		return fmt.Errorf("minLoc does not reference the smallest leaf")
	}
	cur := minLoc
	for i := 0; ; i++ {
		e, _, ok := c.t.lockedFind(cur)
		if !ok || e.kind != kindLeaf {
			return fmt.Errorf("leaf list broken at %d", i)
		}
		if i >= len(c.locs) {
			return fmt.Errorf("leaf list longer than leaf count")
		}
		if cur != c.locs[i] {
			return fmt.Errorf("leaf list order mismatch at %d", i)
		}
		key := c.tr.recs.key(e.recIdx)
		if !bytes.Equal(key, c.keys[i]) {
			return fmt.Errorf("leaf list key mismatch at %d", i)
		}
		if !e.hasNext {
			if i != len(c.locs)-1 {
				return fmt.Errorf("leaf list ends early at %d/%d", i, len(c.locs))
			}
			return nil
		}
		cur = e.nextLeafLoc()
	}
}

// checkColors verifies color uniqueness per hash.
func (c *checker) checkColors() error {
	t := c.t
	type hc struct {
		h     uint64
		color uint8
	}
	seen := map[hc]bool{}
	for b := uint64(0); b < t.buckets; b++ {
		for s := 0; s < entriesPerBucket; s++ {
			base := b*bucketWords + 1 + uint64(s)*3
			e := decodeEntry(t.words[base], t.words[base+1], t.words[base+2])
			if e.kind == kindEmpty {
				continue
			}
			h := t.hashOf(b, e.tag, e.primary)
			k := hc{h, e.color}
			if seen[k] {
				return fmt.Errorf("duplicate (hash,color) = (%d,%d)", h, e.color)
			}
			seen[k] = true
		}
	}
	return nil
}
