package core

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Config controls a Trie's geometry and features.
type Config struct {
	// CapacityHint is the expected number of keys. The hash table is sized so
	// that this many keys reach roughly the paper's 85% load factor
	// (≈1.25 trie nodes per random key, §4.6).
	CapacityHint int
	// LoadFactor is the target table load factor used for sizing; the paper
	// uses 0.85 (§6.1).
	LoadFactor float64
	// Seed seeds the kick table and the hash's symbol permutation; fixed
	// default for reproducibility. Each resize derives a fresh seed from
	// the new geometry, so repeated rebuild attempts use independent hash
	// functions (see hasher.symTab).
	Seed int64
	// AutoResize doubles the table when an insertion cannot find room. The
	// paper's implementation omits automatic resizing (§6.1); ours supports
	// it as an extension but defaults off to match the paper.
	AutoResize bool
	// DisableLeafList disables maintenance of the sorted leaf linked list and
	// subtree-max locators. Range scans become unavailable. This is the
	// ablation of §6.2 (footnote 10): without the list, insert throughput
	// approaches ARTOLC's.
	DisableLeafList bool
	// MaxKicks bounds the cuckoo eviction search depth.
	MaxKicks int
}

func (c *Config) fill() {
	if c.CapacityHint <= 0 {
		c.CapacityHint = 1024
	}
	if c.LoadFactor <= 0 || c.LoadFactor >= 1 {
		c.LoadFactor = 0.85
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed5eed
	}
	if c.MaxKicks <= 0 {
		c.MaxKicks = 128
	}
}

// bucketsFor returns the power-of-two bucket count for an expected key count.
func bucketsFor(keys int, loadFactor float64) uint64 {
	// Random data costs ~1.25 nodes/key (§4.6); we size for 1.30 — ~4%
	// headroom — so mildly prefix-heavy datasets don't immediately trip a
	// resize. Pathological datasets still need more; AutoResize covers them.
	nodes := float64(keys) * 1.30
	want := nodes / (entriesPerBucket * loadFactor)
	b := uint64(hashR)
	for float64(b) < want {
		b <<= 1
	}
	return b
}

// Errors returned by Trie operations.
var (
	// ErrTableFull is returned when an insertion cannot find room and
	// AutoResize is disabled (matching the paper's fixed-size tables).
	ErrTableFull = errors.New("cuckootrie: hash table full (enable AutoResize or raise CapacityHint)")
	// ErrKeyTooLong is returned for keys whose jump-chain bookkeeping would
	// overflow the packed entry fields.
	ErrKeyTooLong = errors.New("cuckootrie: key too long")
	// ErrScansDisabled is returned by ordered operations when the leaf list
	// is disabled.
	ErrScansDisabled = errors.New("cuckootrie: ordered operations disabled (DisableLeafList)")
)

// MaxKeyLen is the maximum supported key length in bytes.
const MaxKeyLen = 1 << 12

// rootLastSym is the root entry's sentinel last-symbol value (> any symbol).
const rootLastSym = 0x3f

// Trie is a Cuckoo Trie: a linearizable, concurrently-accessible ordered
// index from byte-string keys to uint64 values.
type Trie struct {
	cfg  Config
	tbl  atomic.Pointer[table]
	recs *recordStore

	count atomic.Int64

	// rootColor is the root entry's color; the root's hash is 0 by
	// definition (name ε), so (0, rootColor) is its permanent locator.
	// Atomic because resize rewrites it concurrently with lock-free readers;
	// the table-pointer swap orders the two for readers of the new table.
	rootColor atomic.Uint32

	// minLoc is the locator of the minimum leaf, packed as
	// hash<<4 | color<<1 | valid. Ops that change it must hold bucket 0's
	// lock, serializing updates; readers load it atomically.
	minLoc atomic.Uint64

	resizeMu sync.Mutex
	gen      atomic.Uint64 // resize generation, bumped on table swap
}

func packMinLoc(l locator) uint64 { return l.hash<<4 | uint64(l.color)<<1 | 1 }
func unpackMinLoc(v uint64) (locator, bool) {
	return locator{hash: v >> 4, color: uint8(v >> 1 & 7)}, v&1 != 0
}

// New creates an empty Cuckoo Trie.
func New(cfg Config) *Trie {
	cfg.fill()
	tr := &Trie{cfg: cfg, recs: newRecordStore(cfg.CapacityHint)}
	t := newTable(bucketsFor(cfg.CapacityHint, cfg.LoadFactor), cfg.Seed)
	// Install the root: name ε, hash 0, an internal node with no children.
	// Its lastSym is a sentinel no real symbol can equal (symbols are ≤ 32),
	// so the root can never falsely match a child search for another entry
	// that hashes to 0 (e.g. the empty key's leaf).
	root := entry{kind: kindInternal, tag: 0, primary: true, color: 0, lastSym: rootLastSym}
	b1, _, _ := t.bucketsOf(0)
	t.writeSlot(b1, 0, root)
	tr.rootColor.Store(0)
	tr.tbl.Store(t)
	return tr
}

// Len returns the number of keys currently stored.
func (tr *Trie) Len() int { return int(tr.count.Load()) }

// findRoot locates the root entry in table t.
func (tr *Trie) findRoot(t *table) (entry, entryRef) {
	for {
		e, ref, ok := t.findByLocator(locator{0, uint8(tr.rootColor.Load())})
		if ok {
			return e, ref
		}
		// The root always exists; a miss means a racing relocation.
	}
}

// findByLocator resolves a locator to its entry. ok is false only on
// transient contention; the caller should retry (and revalidate whatever
// produced the locator if the retry limit is hit — see followLocator).
func (t *table) findByLocator(l locator) (entry, entryRef, bool) {
	b1, b2, tag := t.bucketsOf(l.hash)
	if s, ok := t.readBucket(b1); ok {
		if i := s.findByColor(tag, true, l.color); i >= 0 {
			return s.entries[i], entryRef{slotRef{b1, i}, s.ver}, true
		}
	} else {
		return entry{}, entryRef{}, false
	}
	if s, ok := t.readBucket(b2); ok {
		if i := s.findByColor(tag, false, l.color); i >= 0 {
			return s.entries[i], entryRef{slotRef{b2, i}, s.ver}, true
		}
	} else {
		return entry{}, entryRef{}, false
	}
	return entry{}, entryRef{}, false
}

// followLocator resolves a locator, retrying across concurrent relocations.
// src is the entry the locator was read from. The source's bucket version is
// re-checked after every resolution attempt — including successful ones:
// a (hash, color) pair can be freed and reused by unrelated keys, so a
// locator is only trustworthy while its source is unchanged (§5: following a
// next pointer re-reads the version of the source leaf). Invariant: while
// src is unchanged, the target exists and is current (every writer that
// moves or deletes a node updates all locators referencing it in the same
// critical section).
func (t *table) followLocator(l locator, src entryRef) (entry, entryRef, bool) {
	for spin := 0; ; spin++ {
		e, ref, ok := t.findByLocator(l)
		if t.loadVersion(src.bucket) != src.ver {
			return entry{}, entryRef{}, false
		}
		if ok {
			return e, ref, true
		}
		if spin > 1024 {
			// Table likely swapped under us (resize poisons old buckets as
			// locked, but src might be in a still-even bucket). Fail so the
			// caller reloads the table pointer.
			return entry{}, entryRef{}, false
		}
	}
}
