package core

import (
	"bytes"

	"repro/internal/keys"
)

// Range iteration (§4.4): the range start is located with a predecessor
// search (ascend the trie, follow a subtree-max locator), then iteration
// follows the sorted leaf linked list. Locators — not addresses — link the
// leaves, so iteration survives cuckoo relocations; a version re-check on the
// current leaf detects concurrent structural changes, after which the
// iterator resynchronizes with a fresh search from the root (§5).

// leafPos is a resolved position on the leaf list.
type leafPos struct {
	ent  entry
	ref  entryRef
	hash uint64
}

// seekLeaf finds the leaf with the smallest key ≥ k. found=false means no
// such key; ok=false asks the caller to retry on a fresh table pointer.
func (tr *Trie) seekLeaf(t *table, k []byte, syms []byte) (leafPos, bool, bool) {
	if tr.count.Load() == 0 {
		return leafPos{}, false, true
	}
	var pbuf [32]pathNode
	path, st := tr.searchPath(t, syms, pbuf[:0])
	if st.outcome == soRestart {
		return leafPos{}, false, false
	}
	term := st.terminal()

	var pred predLeaf
	var predFound bool
	switch st.outcome {
	case soLeaf:
		rec := tr.recs.key(term.ent.recIdx)
		ge := bytes.Compare(rec, k) >= 0
		if t.loadVersion(term.ref.bucket) != term.ref.ver {
			return leafPos{}, false, false // stale record read
		}
		if ge {
			// The lone key sharing our prefix is ≥ k: it is the successor.
			return leafPos{term.ent, term.ref, term.hash}, true, true
		}
		pred, predFound = predLeaf{term.ent, term.ref, term.hash}, true
	case soMissing:
		var vset []entryRef
		var ok bool
		pred, predFound, ok = t.predViaAncestors(path, syms, &vset)
		if !ok {
			return leafPos{}, false, false
		}
	case soJumpMismatch:
		sOld := term.ent.jumpSymbol(st.jumpOff)
		sNew := syms[st.idx]
		if sNew > sOld {
			var ok bool
			pred, ok = t.maxLeafOf(term)
			if !ok {
				return leafPos{}, false, false
			}
			predFound = true
		} else {
			var vset []entryRef
			var ok bool
			pred, predFound, ok = t.predViaAncestors(path[:len(path)-1], syms, &vset)
			if !ok {
				return leafPos{}, false, false
			}
		}
	}

	if !predFound {
		// k is below the minimum: start at the minimum leaf.
		packed := tr.minLoc.Load()
		minLoc, valid := unpackMinLoc(packed)
		if !valid {
			return leafPos{}, false, true
		}
		e, ref, ok := t.findByLocator(minLoc)
		// Guard against locator reuse: the minimum changing implies the
		// resolved entry may be unrelated.
		if tr.minLoc.Load() != packed {
			return leafPos{}, false, false
		}
		if !ok || e.kind != kindLeaf {
			return leafPos{}, false, false
		}
		return leafPos{e, ref, minLoc.hash}, true, true
	}
	if !pred.ent.hasNext {
		return leafPos{}, false, true
	}
	nl := pred.ent.nextLeafLoc()
	e, ref, ok := t.followLocator(nl, pred.ref)
	if !ok || e.kind != kindLeaf {
		return leafPos{}, false, false
	}
	return leafPos{e, ref, nl.hash}, true, true
}

// Iterator walks keys in ascending order.
type Iterator struct {
	tr      *Trie
	t       *table
	pos     leafPos
	key     []byte
	scratch []byte
	val     uint64
	valid   bool
}

// Seek returns an iterator positioned at the smallest key ≥ start. With a
// nil start it is positioned at the minimum key.
func (tr *Trie) Seek(start []byte) (*Iterator, error) {
	if tr.cfg.DisableLeafList {
		return nil, ErrScansDisabled
	}
	it := &Iterator{tr: tr}
	it.seek(start)
	return it, nil
}

func (it *Iterator) seek(start []byte) {
	tr := it.tr
	var sbuf [96]byte
	for {
		t := tr.tbl.Load()
		it.t = t
		if start == nil {
			packed := tr.minLoc.Load()
			minLoc, valid := unpackMinLoc(packed)
			if !valid {
				it.valid = false
				return
			}
			e, ref, ok := t.findByLocator(minLoc)
			if tr.minLoc.Load() != packed {
				continue
			}
			if !ok || e.kind != kindLeaf {
				continue
			}
			if !it.loadPos(leafPos{e, ref, minLoc.hash}) {
				continue
			}
			return
		}
		syms := keys.AppendSymbols(sbuf[:0], start)
		pos, found, ok := tr.seekLeaf(t, start, syms)
		if !ok {
			continue
		}
		if !found {
			it.valid = false
			return
		}
		if !it.loadPos(pos) {
			continue
		}
		return
	}
}

// loadPos copies pos's record into the iterator and commits it only after
// re-validating the leaf's bucket version: the record read may be stale if
// the leaf was deleted mid-copy. On failure the iterator's previous state is
// preserved so callers can resynchronize from the last valid key.
func (it *Iterator) loadPos(pos leafPos) bool {
	key := it.tr.recs.key(pos.ent.recIdx)
	it.scratch = append(it.scratch[:0], key...)
	val := it.tr.recs.value(pos.ent.recIdx)
	if it.t.loadVersion(pos.ref.bucket) != pos.ref.ver {
		return false
	}
	it.key = append(it.key[:0], it.scratch...)
	it.val = val
	it.pos = pos
	it.valid = true
	return true
}

// NewCursor returns an unpositioned iterator for cursor-style use: position
// it with Seek, then walk with Next. With the leaf list disabled the cursor
// is never valid, matching Scan's behavior.
func (tr *Trie) NewCursor() *Iterator { return &Iterator{tr: tr} }

// Seek repositions the iterator at the smallest key ≥ start (the minimum key
// when start is nil) and reports whether such a key exists. It implements
// the index.Cursor interface.
func (it *Iterator) Seek(start []byte) bool {
	if it.tr.cfg.DisableLeafList {
		it.valid = false
		return false
	}
	it.seek(start)
	return it.valid
}

// Close invalidates the iterator and releases its buffers (index.Cursor).
func (it *Iterator) Close() {
	it.valid = false
	it.key = nil
	it.scratch = nil
	it.t = nil
}

// Valid reports whether the iterator is positioned on a key.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current key. The slice is owned by the iterator and is
// overwritten by Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iterator) Value() uint64 { return it.val }

// Next advances to the next key in order. It returns false at the end.
func (it *Iterator) Next() bool {
	if !it.valid {
		return false
	}
	if !it.pos.ent.hasNext {
		it.valid = false
		return false
	}
	nl := it.pos.ent.nextLeafLoc()
	e, ref, ok := it.t.followLocator(nl, it.pos.ref)
	if !ok || e.kind != kindLeaf || !it.loadPos(leafPos{e, ref, nl.hash}) {
		// The current leaf changed under us (or the table was resized):
		// resynchronize by searching for the first key > the last valid one.
		cur := append([]byte(nil), it.key...)
		it.seekGreater(cur)
	}
	return it.valid
}

// seekGreater positions the iterator at the smallest key strictly greater
// than k.
func (it *Iterator) seekGreater(k []byte) {
	it.seek(k)
	if it.valid && bytes.Equal(it.key, k) {
		if !it.Next() {
			it.valid = false
		}
	}
}

// Min returns the smallest key and its value.
func (tr *Trie) Min() (key []byte, val uint64, ok bool) {
	if tr.cfg.DisableLeafList {
		return nil, 0, false
	}
	for {
		t := tr.tbl.Load()
		packed := tr.minLoc.Load()
		minLoc, valid := unpackMinLoc(packed)
		if !valid {
			return nil, 0, false
		}
		e, _, lok := t.findByLocator(minLoc)
		if !lok || e.kind != kindLeaf {
			continue
		}
		k := append([]byte(nil), tr.recs.key(e.recIdx)...)
		v := tr.recs.value(e.recIdx)
		if tr.minLoc.Load() != packed {
			continue
		}
		return k, v, true
	}
}

// Max returns the largest key and its value.
func (tr *Trie) Max() (key []byte, val uint64, ok bool) {
	if tr.cfg.DisableLeafList {
		return nil, 0, false
	}
	for {
		t := tr.tbl.Load()
		root, ref, rok := tr.tryFindRoot(t)
		if !rok {
			continue
		}
		if !root.hasLoc {
			return nil, 0, false
		}
		leaf, _, lok := t.followLocator(root.maxLeafLoc(), ref)
		if !lok || leaf.kind != kindLeaf {
			continue
		}
		k := append([]byte(nil), tr.recs.key(leaf.recIdx)...)
		return k, tr.recs.value(leaf.recIdx), true
	}
}

// Successor returns the smallest key ≥ k (inclusive successor).
func (tr *Trie) Successor(k []byte) (key []byte, val uint64, ok bool) {
	it, err := tr.Seek(k)
	if err != nil || !it.Valid() {
		return nil, 0, false
	}
	return append([]byte(nil), it.Key()...), it.Value(), true
}

// Predecessor returns the largest key ≤ k.
func (tr *Trie) Predecessor(k []byte) (key []byte, val uint64, ok bool) {
	if tr.cfg.DisableLeafList {
		return nil, 0, false
	}
	var sbuf [96]byte
	syms := keys.AppendSymbols(sbuf[:0], k)
	for {
		t := tr.tbl.Load()
		if tr.count.Load() == 0 {
			return nil, 0, false
		}
		var pbuf [32]pathNode
		path, st := tr.searchPath(t, syms, pbuf[:0])
		if st.outcome == soRestart {
			continue
		}
		term := st.terminal()
		var pred predLeaf
		var found bool
		switch st.outcome {
		case soLeaf:
			rec := tr.recs.key(term.ent.recIdx)
			if bytes.Compare(rec, k) <= 0 {
				pred, found = predLeaf{term.ent, term.ref, term.hash}, true
			} else {
				var vset []entryRef
				var pok bool
				pred, found, pok = t.predViaAncestors(path[:len(path)-1], syms, &vset)
				if !pok {
					continue
				}
			}
		case soMissing:
			var vset []entryRef
			var pok bool
			pred, found, pok = t.predViaAncestors(path, syms, &vset)
			if !pok {
				continue
			}
		case soJumpMismatch:
			sOld := term.ent.jumpSymbol(st.jumpOff)
			if syms[st.idx] > sOld {
				var pok bool
				pred, pok = t.maxLeafOf(term)
				if !pok {
					continue
				}
				found = true
			} else {
				var vset []entryRef
				var pok bool
				pred, found, pok = t.predViaAncestors(path[:len(path)-1], syms, &vset)
				if !pok {
					continue
				}
			}
		}
		if !found {
			return nil, 0, false
		}
		key = append([]byte(nil), tr.recs.key(pred.ent.recIdx)...)
		val = tr.recs.value(pred.ent.recIdx)
		if t.loadVersion(pred.ref.bucket) != pred.ref.ver {
			continue
		}
		return key, val, true
	}
}

// Scan calls fn for up to n keys in ascending order starting at the smallest
// key ≥ start, stopping early if fn returns false. It returns the number of
// keys visited.
func (tr *Trie) Scan(start []byte, n int, fn func(key []byte, val uint64) bool) (int, error) {
	it, err := tr.Seek(start)
	if err != nil {
		return 0, err
	}
	visited := 0
	for it.Valid() && visited < n {
		visited++
		if !fn(it.Key(), it.Value()) {
			break
		}
		if !it.Next() {
			break
		}
	}
	return visited, nil
}
