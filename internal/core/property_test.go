package core

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

// Property: entry encoding round-trips exactly for every field combination.
func TestEntryEncodeRoundTrip(t *testing.T) {
	f := func(kind, tag, lastSym, color, parentColor, jumpLen, locColor, childColor uint8,
		primary, dirty, hasNext, hasLoc, parentIsJump bool, recIdx uint32, w1, locHash uint64) bool {
		e := entry{
			kind:         kind & 3,
			tag:          tag & 0xf,
			primary:      primary,
			lastSym:      lastSym & 0x3f,
			color:        color & 7,
			parentColor:  parentColor & 7,
			dirty:        dirty,
			jumpLen:      jumpLen & 0xf,
			locColor:     locColor & 7,
			childColor:   childColor & 7,
			hasNext:      hasNext,
			hasLoc:       hasLoc,
			parentIsJump: parentIsJump,
			recIdx:       recIdx & 0x7fffffff,
			w1:           w1,
			locHash:      locHash,
		}
		got := decodeEntry(e.encode())
		return got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the hash function is peelable — h(x) is recoverable from
// (h(x·c), c) — which is what makes key elimination sound (§4.2). We verify
// the existence claim directly: step is injective in h for each fixed c.
func TestHashPeelable(t *testing.T) {
	hs := newHasher(1<<12, 42)
	domain := hs.buckets * tagCount
	f := func(h1, h2 uint64, c uint8) bool {
		a, b := h1%domain, h2%domain
		sym := c % 33
		if a == b {
			return true
		}
		// Distinct parent hashes must yield distinct child hashes.
		return hs.step(a, sym) != hs.step(b, sym)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// Property: step stays within the hash domain.
func TestHashDomain(t *testing.T) {
	hs := newHasher(1<<10, 7)
	domain := hs.buckets * tagCount
	f := func(h uint64, c uint8) bool {
		return hs.step(h%domain, c%33) < domain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// Property: hashOf inverts bucketsOf — an entry's full hash is recoverable
// from (bucket, tag, primary), which is what makes relocations possible
// without stored keys.
func TestHashOfInvertsBuckets(t *testing.T) {
	hs := newHasher(1<<12, 13)
	domain := hs.buckets * tagCount
	f := func(h uint64) bool {
		hh := h % domain
		b1, b2, tag := hs.bucketsOf(hh)
		return hs.hashOf(b1, tag, true) == hh && hs.hashOf(b2, tag, false) == hh &&
			hs.altBucket(b1, tag, true) == b2 && hs.altBucket(b2, tag, false) == b1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random operation sequence leaves the trie equivalent to a
// reference model and structurally sound.
func TestRandomOpSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(Config{CapacityHint: 64, AutoResize: true})
		model := map[string]uint64{}
		var live []string
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // insert/update
				k := make([]byte, rng.Intn(10))
				rng.Read(k)
				v := rng.Uint64()
				if _, err := tr.Set(k, v); err != nil {
					return false
				}
				if _, ok := model[string(k)]; !ok {
					live = append(live, string(k))
				}
				model[string(k)] = v
			case 5, 6: // delete
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				k := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if !tr.Delete([]byte(k)) {
					return false
				}
				delete(model, k)
			case 7: // lookup
				k := make([]byte, rng.Intn(10))
				rng.Read(k)
				v, ok := tr.Get(k)
				mv, mok := model[string(k)]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 8: // predecessor against the model
				k := make([]byte, rng.Intn(6))
				rng.Read(k)
				pk, _, ok := tr.Predecessor(k)
				var want string
				found := false
				for mk := range model {
					if mk <= string(k) && (!found || mk > want) {
						want, found = mk, true
					}
				}
				if ok != found || (ok && string(pk) != want) {
					return false
				}
			case 9: // full-order check
				var ks []string
				for mk := range model {
					ks = append(ks, mk)
				}
				sort.Strings(ks)
				it, err := tr.Seek(nil)
				if err != nil {
					return false
				}
				for _, want := range ks {
					if !it.Valid() || string(it.Key()) != want {
						return false
					}
					it.Next()
				}
				if it.Valid() {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: keys that differ only in their tail bytes (worst case for the
// symbol codec's padding) are stored and ordered correctly.
func TestTailByteKeys(t *testing.T) {
	f := func(base []byte, a, b uint8) bool {
		if len(base) > 20 {
			base = base[:20]
		}
		if a == b {
			return true
		}
		tr := New(Config{CapacityHint: 16, AutoResize: true})
		k1 := append(append([]byte(nil), base...), a)
		k2 := append(append([]byte(nil), base...), b)
		tr.Set(k1, 1)
		tr.Set(k2, 2)
		tr.Set(base, 3)
		if v, ok := tr.Get(k1); !ok || v != 1 {
			return false
		}
		if v, ok := tr.Get(k2); !ok || v != 2 {
			return false
		}
		minK, _, ok := tr.Min()
		if !ok || !bytes.Equal(minK, base) {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the symbol codec and trie agree on key ordering for arbitrary
// key pairs routed through a real trie.
func TestTrieOrderMatchesBytes(t *testing.T) {
	f := func(a, b, c []byte) bool {
		ks := [][]byte{a, b, c}
		tr := New(Config{CapacityHint: 16, AutoResize: true})
		uniq := map[string]bool{}
		for _, k := range ks {
			if len(k) > 32 {
				k = k[:32]
			}
			if _, err := tr.Set(k, 1); err != nil {
				return false
			}
			uniq[string(k)] = true
		}
		var want []string
		for k := range uniq {
			want = append(want, k)
		}
		sort.Strings(want)
		it, err := tr.Seek(nil)
		if err != nil {
			return false
		}
		for _, w := range want {
			if !it.Valid() || string(it.Key()) != w {
				return false
			}
			it.Next()
		}
		return !it.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// sanity: NumSymbols consistent with SymbolAt panics guard.
func TestSymbolConsistency(t *testing.T) {
	f := func(k []byte) bool {
		if len(k) > 64 {
			k = k[:64]
		}
		n := keys.NumSymbols(k)
		for i := 0; i < n; i++ {
			s := keys.SymbolAt(k, i)
			if s > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
