package core

import "errors"

// Resizing. The hash function's domain is [0, S·t), so every node's hash —
// and hence its buckets — changes with the table size, and the table stores
// no keys to rehash from. The trie is therefore rebuilt by a DFS that
// reconstructs node names symbol-by-symbol. The paper describes an
// incremental scheme ([33], §5); ours is stop-the-world: the old table's
// buckets are all CAS-locked (draining writers), the new table is built,
// and the trie's table pointer is swapped. Old-table locks are never
// released, so stragglers holding the stale pointer fail their next version
// check and reload. In-flight reads that complete on the old table observed
// a consistent pre-resize state, which is linearizable because a resize
// changes no logical content.
//
// Within the unpublished new table, entries are addressed by locator (hash,
// color), never by slot: evictions during the rebuild may relocate them.

var errResizeRace = errors.New("cuckootrie: concurrent resize")

func (tr *Trie) resize(old *table) error {
	tr.resizeMu.Lock()
	defer tr.resizeMu.Unlock()
	if tr.tbl.Load() != old {
		return nil // another goroutine already resized
	}

	// Quiesce: lock every bucket of the old table.
	locked := make([]uint64, old.buckets)
	for b := uint64(0); b < old.buckets; b++ {
		for {
			v := old.loadVersion(b)
			if v&1 == 0 && old.tryLock(b, v) {
				locked[b] = v
				break
			}
		}
	}

	// Hash collisions are a function of S (the hash depends only on the
	// geometry and the symbols), and colliding internal nodes propagate
	// collisions to equal-symbol descendants; if one doubling still has an
	// over-full color class, keep doubling — a different S reshuffles every
	// hash value.
	var b *rebuilder
	var err error
	for factor := uint64(2); factor <= 16; factor *= 2 {
		nt := newTable(old.buckets*factor, tr.cfg.Seed+int64(old.buckets*factor))
		b = &rebuilder{src: old, dst: nt, tr: tr}
		if err = b.run(); err == nil {
			break
		}
	}
	if err != nil {
		for i := uint64(0); i < old.buckets; i++ {
			old.unlock(i, locked[i], false)
		}
		return err
	}
	tr.rootColor.Store(uint32(b.newRootColor))
	if b.minValid {
		tr.minLoc.Store(packMinLoc(b.minLoc))
	} else {
		tr.minLoc.Store(0)
	}
	tr.gen.Add(1)
	tr.tbl.Store(b.dst)
	// Old-table locks intentionally left held; the table is garbage.
	return nil
}

// maxSymbol is the largest symbol value (terminator 0 .. data 32).
const maxSymbol = 32

// rebuilder copies the trie from src to dst via DFS, assigning fresh hashes
// and colors, recomputing subtree-max locators bottom-up and re-chaining the
// leaf list left-to-right (DFS in ascending symbol order visits leaves in
// key order).
type rebuilder struct {
	src, dst *table
	tr       *Trie

	newRootColor uint8
	minLoc       locator
	minValid     bool

	prevLeaf struct {
		valid bool
		loc   locator
	}
}

func (b *rebuilder) run() error {
	rootOld, _, ok := b.src.lockedFind(locator{0, uint8(b.tr.rootColor.Load())})
	if !ok {
		return errResizeRace
	}
	color, err := b.insertEntry(0, rootOld)
	if err != nil {
		return err
	}
	b.newRootColor = color
	rootLoc := locator{0, color}
	maxLoc, hasMax, err := b.copyChildren(rootOld, 0, 0, rootLoc)
	if err != nil {
		return err
	}
	b.patchLoc(rootLoc, maxLoc, hasMax)
	return nil
}

// copyChildren copies the children of node old with old/new hashes oldHash/
// newHash and new-table locator newLoc. Returns the subtree-max locator.
func (b *rebuilder) copyChildren(old entry, oldHash, newHash uint64, newLoc locator) (locator, bool, error) {
	switch old.kind {
	case kindLeaf:
		return locator{}, false, nil
	case kindJump:
		oh, nh := oldHash, newHash
		for i := 0; i < int(old.jumpLen); i++ {
			s := old.jumpSymbol(i)
			oh = b.src.step(oh, s)
			nh = b.dst.step(nh, s)
		}
		lastSym := old.jumpSymbol(int(old.jumpLen) - 1)
		childOld, _, ok := b.src.lockedFindChildByColor(oh, lastSym, old.childColor)
		if !ok {
			return locator{}, false, errResizeRace
		}
		return b.copyNode(childOld, oh, nh, newLoc, true)
	case kindInternal:
		var maxLoc locator
		var hasMax bool
		for s := 0; s <= maxSymbol; s++ {
			if !bitmapHas(old.w1, byte(s)) {
				continue
			}
			oh := b.src.step(oldHash, byte(s))
			ch := b.dst.step(newHash, byte(s))
			childOld, _, ok := b.src.lockedFindChildByParent(oh, byte(s), old.color)
			if !ok {
				return locator{}, false, errResizeRace
			}
			ml, hm, err := b.copyNode(childOld, oh, ch, newLoc, false)
			if err != nil {
				return locator{}, false, err
			}
			if hm {
				maxLoc, hasMax = ml, true
			}
		}
		return maxLoc, hasMax, nil
	}
	return locator{}, false, errResizeRace
}

// copyNode copies one node and its subtree. parentLoc is the parent's
// new-table locator; parentIsJump selects the child-linking scheme.
func (b *rebuilder) copyNode(old entry, oldHash, newHash uint64, parentLoc locator, parentIsJump bool) (locator, bool, error) {
	ne := old
	ne.parentIsJump = parentIsJump
	if parentIsJump {
		ne.parentColor = 0
	} else {
		ne.parentColor = parentLoc.color
	}
	if ne.kind == kindLeaf {
		ne.hasNext = false
		ne.locHash = 0
		ne.locColor = 0
	}
	color, err := b.insertEntry(newHash, ne)
	if err != nil {
		return locator{}, false, err
	}
	myLoc := locator{newHash, color}
	if parentIsJump {
		b.patchChildColor(parentLoc, color)
	}
	if old.kind == kindLeaf {
		if b.prevLeaf.valid {
			b.patchNext(b.prevLeaf.loc, myLoc)
		} else {
			b.minLoc, b.minValid = myLoc, true
		}
		b.prevLeaf.valid = true
		b.prevLeaf.loc = myLoc
		return myLoc, true, nil
	}
	maxLoc, hasMax, err := b.copyChildren(old, oldHash, newHash, myLoc)
	if err != nil {
		return locator{}, false, err
	}
	b.patchLoc(myLoc, maxLoc, hasMax)
	return maxLoc, hasMax, nil
}

// insertEntry places an entry into the new (unpublished, single-threaded)
// table, running evictions as needed. Returns the assigned color.
func (b *rebuilder) insertEntry(h uint64, e entry) (uint8, error) {
	t := b.dst
	b1, b2, tag := t.bucketsOf(h)
	var used uint8
	scan := func(bk uint64, primary bool) int {
		free := -1
		for s := 0; s < entriesPerBucket; s++ {
			ee := b.rawEntry(bk, s)
			if ee.kind == kindEmpty {
				if free < 0 {
					free = s
				}
				continue
			}
			if ee.tag == tag && ee.primary == primary {
				used |= 1 << ee.color
			}
		}
		return free
	}
	f1 := scan(b1, true)
	f2 := scan(b2, false)
	color := uint8(0xff)
	for c := uint8(0); c < numColors; c++ {
		if used&(1<<c) == 0 {
			color = c
			break
		}
	}
	if color == 0xff {
		return 0, ErrTableFull
	}
	e.tag = tag
	e.color = color
	if f1 >= 0 {
		e.primary = true
		t.writeSlot(b1, f1, e)
		return color, nil
	}
	if f2 >= 0 {
		e.primary = false
		t.writeSlot(b2, f2, e)
		return color, nil
	}
	chain, ok := t.findEvictionChain(h, 512)
	if !ok || !t.applyChain(chain) {
		return 0, ErrTableFull
	}
	return b.insertEntry(h, e)
}

func (b *rebuilder) rawEntry(bk uint64, slot int) entry {
	t := b.dst
	base := bk*bucketWords + 1 + uint64(slot)*3
	return decodeEntry(t.words[base], t.words[base+1], t.words[base+2])
}

func (b *rebuilder) patch(l locator, f func(*entry)) {
	e, ref, ok := b.dst.lockedFind(l)
	if !ok {
		panic("cuckootrie: rebuild patch target missing")
	}
	f(&e)
	b.dst.writeSlot(ref.bucket, ref.slot, e)
}

func (b *rebuilder) patchLoc(l locator, target locator, has bool) {
	b.patch(l, func(e *entry) {
		e.hasLoc = has
		if has {
			e.setLoc(target)
		}
	})
}

func (b *rebuilder) patchNext(l locator, target locator) {
	b.patch(l, func(e *entry) {
		e.hasNext = true
		e.setLoc(target)
	})
}

func (b *rebuilder) patchChildColor(l locator, c uint8) {
	b.patch(l, func(e *entry) { e.childColor = c })
}

// lockedFind* read a quiesced (or unpublished) table directly, without
// seqlock choreography.
func (t *table) lockedFind(l locator) (entry, slotRef, bool) {
	b1, b2, tag := t.bucketsOf(l.hash)
	for _, bc := range [2]struct {
		b       uint64
		primary bool
	}{{b1, true}, {b2, false}} {
		for s := 0; s < entriesPerBucket; s++ {
			base := bc.b*bucketWords + 1 + uint64(s)*3
			e := decodeEntry(t.words[base], t.words[base+1], t.words[base+2])
			if e.kind != kindEmpty && e.tag == tag && e.primary == bc.primary && e.color == l.color {
				return e, slotRef{bc.b, s}, true
			}
		}
	}
	return entry{}, slotRef{}, false
}

func (t *table) lockedFindChildByParent(h uint64, lastSym byte, parentColor uint8) (entry, slotRef, bool) {
	b1, b2, tag := t.bucketsOf(h)
	for _, bc := range [2]struct {
		b       uint64
		primary bool
	}{{b1, true}, {b2, false}} {
		for s := 0; s < entriesPerBucket; s++ {
			base := bc.b*bucketWords + 1 + uint64(s)*3
			e := decodeEntry(t.words[base], t.words[base+1], t.words[base+2])
			if e.kind != kindEmpty && e.tag == tag && e.primary == bc.primary &&
				!e.parentIsJump && e.lastSym == lastSym && e.parentColor == parentColor {
				return e, slotRef{bc.b, s}, true
			}
		}
	}
	return entry{}, slotRef{}, false
}

func (t *table) lockedFindChildByColor(h uint64, lastSym byte, color uint8) (entry, slotRef, bool) {
	b1, b2, tag := t.bucketsOf(h)
	for _, bc := range [2]struct {
		b       uint64
		primary bool
	}{{b1, true}, {b2, false}} {
		for s := 0; s < entriesPerBucket; s++ {
			base := bc.b*bucketWords + 1 + uint64(s)*3
			e := decodeEntry(t.words[base], t.words[base+1], t.words[base+2])
			if e.kind != kindEmpty && e.tag == tag && e.primary == bc.primary &&
				e.lastSym == lastSym && e.color == color {
				return e, slotRef{bc.b, s}, true
			}
		}
	}
	return entry{}, slotRef{}, false
}
