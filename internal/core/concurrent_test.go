package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/keys"
)

func TestConcurrentInserts(t *testing.T) {
	tr := New(Config{CapacityHint: 1 << 15, AutoResize: true})
	workers := runtime.GOMAXPROCS(0)
	perWorker := 4000
	if testing.Short() {
		perWorker = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := keys.Uint64Key(uint64(w)<<48 | uint64(rng.Int63n(1<<40)))
				if _, err := tr.Set(k, uint64(w)); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	checkInv(t, tr)
	// All inserted keys must be present.
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWorker; i++ {
			k := keys.Uint64Key(uint64(w)<<48 | uint64(rng.Int63n(1<<40)))
			if _, ok := tr.Get(k); !ok {
				t.Fatalf("key from worker %d missing", w)
			}
		}
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	tr := New(Config{CapacityHint: 1 << 14, AutoResize: true})
	// Stable keys that are never touched by writers.
	const stable = 2000
	for i := 0; i < stable; i++ {
		mustSet(t, tr, keys.Uint64Key(uint64(i)*2+1), uint64(i))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers insert and delete disjoint churn keys.
	writers := 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine []uint64
			for !stop.Load() {
				if len(mine) == 0 || rng.Intn(2) == 0 {
					v := uint64(w+1)<<50 | uint64(rng.Int63n(1<<30))*2
					if _, err := tr.Set(keys.Uint64Key(v), v); err != nil {
						t.Errorf("Set: %v", err)
						return
					}
					mine = append(mine, v)
				} else {
					i := rng.Intn(len(mine))
					tr.Delete(keys.Uint64Key(mine[i]))
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
			}
		}(w)
	}

	// Readers verify the stable keys continuously.
	readers := 4
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for !stop.Load() {
				i := rng.Intn(stable)
				v, ok := tr.Get(keys.Uint64Key(uint64(i)*2 + 1))
				if !ok || v != uint64(i) {
					errs <- errFmt("stable key %d: got %d,%v", i, v, ok)
					return
				}
			}
		}(r)
	}

	// Scanners iterate and check ordering invariants.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			it, err := tr.Seek(nil)
			if err != nil {
				errs <- err
				return
			}
			var prev []byte
			n := 0
			for it.Valid() && n < 3000 {
				if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
					errs <- errFmt("scan order violation: %x >= %x", prev, it.Key())
					return
				}
				prev = append(prev[:0], it.Key()...)
				n++
				it.Next()
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	iters := 200
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		runtime.Gosched()
	}
	// Let the workers churn for a bit of wall time.
	for i := 0; i < 50; i++ {
		if _, ok := tr.Get(keys.Uint64Key(3)); !ok {
			t.Fatal("stable key lost")
		}
		runtime.Gosched()
	}
	stop.Store(true)
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	checkInv(t, tr)
	for i := 0; i < stable; i++ {
		if v, ok := tr.Get(keys.Uint64Key(uint64(i)*2 + 1)); !ok || v != uint64(i) {
			t.Fatalf("stable key %d lost after churn", i)
		}
	}
}

func TestConcurrentDisjointDeletes(t *testing.T) {
	tr := New(Config{CapacityHint: 1 << 14, AutoResize: true})
	n := 20000
	if testing.Short() {
		n = 4000
	}
	for i := 0; i < n; i++ {
		mustSet(t, tr, keys.Uint64Key(uint64(i)), uint64(i))
	}
	workers := 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if !tr.Delete(keys.Uint64Key(uint64(i))) {
					t.Errorf("delete %d failed", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after concurrent delete of all", tr.Len())
	}
	checkInv(t, tr)
}

func TestConcurrentSameKeyUpserts(t *testing.T) {
	tr := New(Config{CapacityHint: 1 << 10, AutoResize: true})
	const hotKeys = 16
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := keys.Uint64Key(uint64(rng.Intn(hotKeys)))
				if _, err := tr.Set(k, uint64(w)); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	checkInv(t, tr)
	if tr.Len() != hotKeys {
		t.Fatalf("Len = %d, want %d", tr.Len(), hotKeys)
	}
}

func errFmt(format string, args ...any) error { return fmt.Errorf(format, args...) }
