package core

// Stats reports structural and memory statistics, matching the paper's
// memory-overhead accounting (§6.5): the index's own memory including
// pointers to key-value pairs but excluding the key-value bytes themselves.
type Stats struct {
	Keys        int
	Buckets     uint64
	SlotsTotal  int
	SlotsUsed   int
	LoadFactor  float64
	NodesPerKey float64

	InternalNodes int
	JumpNodes     int
	Leaves        int

	// TableBytes is the Go table's actual footprint (24-byte entries + one
	// version word per bucket). PaperTableBytes is what the paper's layout
	// (64-byte buckets: 4×15-byte entries + 4-byte seqlock) would occupy at
	// the same bucket count.
	TableBytes      int64
	PaperTableBytes int64
	// RecordPtrBytes is the per-key record bookkeeping (the "pointer to the
	// key-value pair" the paper charges to the index).
	RecordPtrBytes int64
	// KeyBytes is the stored key data (excluded from index overhead).
	KeyBytes int64

	// BytesPerKey / PaperBytesPerKey are the headline Figure 11 numbers.
	BytesPerKey      float64
	PaperBytesPerKey float64
}

// Stats scans the table; it is not linearizable with concurrent writers.
func (tr *Trie) Stats() Stats {
	t := tr.tbl.Load()
	var s Stats
	s.Keys = int(tr.count.Load())
	s.Buckets = t.buckets
	s.SlotsTotal = int(t.buckets) * entriesPerBucket
	for b := uint64(0); b < t.buckets; b++ {
		snap, ok := t.readBucket(b)
		if !ok {
			continue
		}
		for i := range snap.entries {
			switch snap.entries[i].kind {
			case kindInternal:
				s.InternalNodes++
			case kindJump:
				s.JumpNodes++
			case kindLeaf:
				s.Leaves++
			}
		}
	}
	s.SlotsUsed = s.InternalNodes + s.JumpNodes + s.Leaves
	if s.SlotsTotal > 0 {
		s.LoadFactor = float64(s.SlotsUsed) / float64(s.SlotsTotal)
	}
	if s.Keys > 0 {
		s.NodesPerKey = float64(s.SlotsUsed) / float64(s.Keys)
	}
	s.TableBytes = int64(t.buckets) * bucketWords * 8
	s.PaperTableBytes = int64(t.buckets) * 64
	slotBytes, keyBytes := tr.recs.memoryBytes()
	s.RecordPtrBytes = slotBytes
	s.KeyBytes = keyBytes
	if s.Keys > 0 {
		s.BytesPerKey = float64(s.TableBytes+s.RecordPtrBytes) / float64(s.Keys)
		// Paper layout: 64-byte buckets plus an 8-byte record pointer per key.
		s.PaperBytesPerKey = float64(s.PaperTableBytes+int64(s.Keys)*8) / float64(s.Keys)
	}
	return s
}
