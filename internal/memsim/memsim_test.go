package memsim

import "testing"

func lines(addrs ...uint64) []uint64 { return addrs }

func TestSerialVsPrefetched(t *testing.T) {
	// 8 levels, 2 lines each, all cold: serial pays one DRAM latency per
	// level; prefetched overlaps everything up to the MSHR limit.
	var levels [][]uint64
	for i := 0; i < 8; i++ {
		levels = append(levels, lines(uint64(1000+i*2), uint64(1001+i*2)))
	}
	cfg := Default()
	cfg.CacheLines = 1 // effectively no cache
	serial := New(cfg).Run(SerialLevels(levels, 10))
	pref := New(cfg).Run(PrefetchedLevels(levels, 5, 10))
	if serial.DRAMAccesses != 16 || pref.DRAMAccesses != 16 {
		t.Fatalf("DRAM accesses: serial %d, prefetched %d, want 16", serial.DRAMAccesses, pref.DRAMAccesses)
	}
	if serial.StallCycles < 8*cfg.DRAMLatency-cfg.DRAMLatency/2 {
		t.Fatalf("serial stall %d too low for 8 dependent levels", serial.StallCycles)
	}
	if pref.Cycles >= serial.Cycles {
		t.Fatalf("prefetched (%d cycles) not faster than serial (%d)", pref.Cycles, serial.Cycles)
	}
	// The headline Figure 2 property: effective latency ratio ≈ overlap factor.
	effSerial := float64(serial.StallCycles) / float64(serial.DRAMAccesses)
	effPref := float64(pref.StallCycles) / float64(pref.DRAMAccesses)
	if effPref*2 > effSerial {
		t.Fatalf("effective latency: prefetched %.1f vs serial %.1f, want >=2x gap", effPref, effSerial)
	}
}

func TestMSHRLimit(t *testing.T) {
	// 24 independent accesses with 2 MSHRs must take ≥ 12 DRAM latencies.
	cfg := Default()
	cfg.MSHRs = 2
	cfg.CacheLines = 1
	var acc []Access
	for i := 0; i < 24; i++ {
		acc = append(acc, Access{Addr: uint64(5000 + i)})
	}
	r := New(cfg).Run(acc)
	if r.StallCycles < 12*cfg.DRAMLatency-cfg.DRAMLatency {
		t.Fatalf("stall %d violates MSHR limit", r.StallCycles)
	}
}

func TestCacheHits(t *testing.T) {
	cfg := Default()
	sim := New(cfg)
	acc := []Access{{Addr: 1}, {Addr: 2}}
	first := sim.Run(acc)
	second := sim.Run(acc)
	if first.DRAMAccesses != 2 || second.DRAMAccesses != 0 || second.LLCHits != 2 {
		t.Fatalf("cache behaviour wrong: first %+v second %+v", first, second)
	}
	if second.Cycles >= first.Cycles {
		t.Fatal("cached run not faster")
	}
}

func TestAggregate(t *testing.T) {
	var agg Aggregate
	agg.Add(Result{Cycles: 100, ExecCycles: 40, StallCycles: 60, DRAMAccesses: 3})
	agg.Add(Result{Cycles: 200, ExecCycles: 60, StallCycles: 140, DRAMAccesses: 7})
	cyc, exec, stall, dram := agg.PerOp()
	if cyc != 150 || exec != 50 || stall != 100 || dram != 5 {
		t.Fatalf("PerOp = %v %v %v %v", cyc, exec, stall, dram)
	}
	if agg.EffectiveDRAMLatency() != 20 {
		t.Fatalf("eff latency = %v", agg.EffectiveDRAMLatency())
	}
}
