// Package memsim models the memory-system behaviour the paper measures with
// CPU performance counters (Figure 2, Table 3): an out-of-order core with a
// limited number of miss-status-holding registers (MSHRs) in front of a
// last-level cache and DRAM. Index code paths describe each operation as a
// DAG of cache-line accesses; the simulator schedules the DAG with
// MSHR-limited overlap and reports execution vs stall cycles, DRAM access
// counts, and effective per-access latency.
//
// This substitutes for hardware we do not control from Go (no prefetch
// intrinsics, no PMU access — see DESIGN.md §3). Parameters default to the
// paper's platform: Skylake cores with 12 MSHRs (§6.1), ~190-cycle DRAM
// loads, prefetch depth D=5.
package memsim

import "container/list"

// Access is one cache-line read in an operation's dependency DAG.
type Access struct {
	// Addr is the cache-line-granular address (any stable identifier).
	Addr uint64
	// Deps are indices of accesses whose data must arrive before this
	// access's address is known. Independent accesses (the Cuckoo Trie's
	// probes, or lines within one B-tree node) have equal/empty deps.
	Deps []int32
	// Exec is the number of execution cycles spent on this access's data
	// after it arrives (comparisons, bitmap tests, hashing).
	Exec int32
}

// Config sets the simulated memory system.
type Config struct {
	DRAMLatency int // cycles for an LLC miss (paper's effective serial ≈ 100+)
	LLCLatency  int // cycles for an LLC hit
	MSHRs       int // max outstanding misses (12 on Skylake, §4.1/§6.1)
	BaseExec    int // fixed per-operation execution cycles
	CacheLines  int // LLC capacity in lines (shared across ops in a run)
}

// Default matches the paper's platform (§6.1): Xeon Gold 6132, DDR4-2666.
func Default() Config {
	return Config{
		DRAMLatency: 190,
		LLCLatency:  40,
		MSHRs:       12,
		BaseExec:    60,
		CacheLines:  1 << 15, // 2 MB worth of 64-byte lines per-core share
	}
}

// Result summarizes one simulated operation.
type Result struct {
	Cycles       int
	ExecCycles   int
	StallCycles  int
	DRAMAccesses int
	LLCHits      int
}

// Sim simulates a sequence of operations sharing an LRU last-level cache,
// so hot structures (tree tops, table-internal metadata) stay cached across
// operations exactly as they would on hardware.
type Sim struct {
	cfg   Config
	lru   *list.List
	where map[uint64]*list.Element
}

// New creates a simulator.
func New(cfg Config) *Sim {
	return &Sim{cfg: cfg, lru: list.New(), where: make(map[uint64]*list.Element)}
}

// touch consults and updates the LRU cache; reports whether addr hit.
func (s *Sim) touch(addr uint64) bool {
	if e, ok := s.where[addr]; ok {
		s.lru.MoveToFront(e)
		return true
	}
	e := s.lru.PushFront(addr)
	s.where[addr] = e
	if s.lru.Len() > s.cfg.CacheLines {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.where, back.Value.(uint64))
	}
	return false
}

// Run schedules one operation's access DAG and returns its timing.
//
// Scheduling model: an access becomes READY when all its dependencies have
// completed. LLC hits complete LLCLatency after ready. Misses additionally
// wait for one of the MSHRs; the MSHR is held for the full DRAM latency.
// This captures both effects the paper describes (§4.1): dependent accesses
// serialize, and at most #MSHR independent misses overlap.
func (s *Sim) Run(accesses []Access) Result {
	n := len(accesses)
	res := Result{ExecCycles: s.cfg.BaseExec}
	if n == 0 {
		res.Cycles = res.ExecCycles
		return res
	}
	complete := make([]int, n)
	// MSHR free times (a min-slot array; MSHRs is small).
	mshr := make([]int, s.cfg.MSHRs)
	finish := 0
	for i := range accesses {
		a := &accesses[i]
		ready := 0
		for _, d := range a.Deps {
			if complete[d] > ready {
				ready = complete[d]
			}
		}
		if s.touch(a.Addr) {
			complete[i] = ready + s.cfg.LLCLatency
			res.LLCHits++
		} else {
			// Take the earliest-free MSHR.
			best := 0
			for m := 1; m < len(mshr); m++ {
				if mshr[m] < mshr[best] {
					best = m
				}
			}
			start := ready
			if mshr[best] > start {
				start = mshr[best]
			}
			complete[i] = start + s.cfg.DRAMLatency
			mshr[best] = complete[i]
			res.DRAMAccesses++
		}
		res.ExecCycles += int(a.Exec)
		if complete[i] > finish {
			finish = complete[i]
		}
	}
	res.Cycles = finish + res.ExecCycles
	res.StallCycles = res.Cycles - res.ExecCycles
	return res
}

// Aggregate accumulates results over many operations.
type Aggregate struct {
	Ops          int
	Cycles       int64
	ExecCycles   int64
	StallCycles  int64
	DRAMAccesses int64
}

// Add accumulates one result.
func (a *Aggregate) Add(r Result) {
	a.Ops++
	a.Cycles += int64(r.Cycles)
	a.ExecCycles += int64(r.ExecCycles)
	a.StallCycles += int64(r.StallCycles)
	a.DRAMAccesses += int64(r.DRAMAccesses)
}

// PerOp returns per-operation means.
func (a *Aggregate) PerOp() (cycles, exec, stall, dram float64) {
	if a.Ops == 0 {
		return
	}
	n := float64(a.Ops)
	return float64(a.Cycles) / n, float64(a.ExecCycles) / n,
		float64(a.StallCycles) / n, float64(a.DRAMAccesses) / n
}

// EffectiveDRAMLatency is the paper's Figure 2 metric: stall cycles per
// DRAM access — ≈3× lower for the Cuckoo Trie thanks to overlap.
func (a *Aggregate) EffectiveDRAMLatency() float64 {
	if a.DRAMAccesses == 0 {
		return 0
	}
	return float64(a.StallCycles) / float64(a.DRAMAccesses)
}

// SerialLevels builds the access DAG of a conventional pointer-chasing
// index: each level's lines depend on the previous level's lines (the
// address of level i+1 is read from level i), while lines WITHIN a level
// (one wide node) are independent and can overlap (§3.2: "some of their
// per-node DRAM accesses may be overlapped").
func SerialLevels(levels [][]uint64, execPerLevel int32) []Access {
	var out []Access
	var prev []int32
	for _, lines := range levels {
		var cur []int32
		for _, addr := range lines {
			out = append(out, Access{Addr: addr, Deps: prev, Exec: execPerLevel})
			cur = append(cur, int32(len(out)-1))
		}
		prev = cur
	}
	return out
}

// PrefetchedLevels builds the Cuckoo Trie's access DAG (Algorithm 1): the
// first depth levels are prefetched up-front (no dependencies); the probe
// for level i > depth is issued when the search processes level i-depth, so
// it depends on that level's lines. Lines within a level (the two candidate
// buckets) are always independent.
func PrefetchedLevels(levels [][]uint64, depth int, execPerLevel int32) []Access {
	var out []Access
	levelIdx := make([][]int32, len(levels))
	for li, lines := range levels {
		var deps []int32
		if li >= depth {
			deps = levelIdx[li-depth]
		}
		for _, addr := range lines {
			out = append(out, Access{Addr: addr, Deps: deps, Exec: execPerLevel})
			levelIdx[li] = append(levelIdx[li], int32(len(out)-1))
		}
	}
	return out
}
