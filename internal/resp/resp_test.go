package resp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCommandRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteCommand([]byte("ZADD"), []byte("key"), []byte("member with spaces"), []byte("42"))
	w.Flush()
	r := NewReader(&buf)
	cmd, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmd) != 4 || string(cmd[0]) != "ZADD" || string(cmd[2]) != "member with spaces" {
		t.Fatalf("cmd = %q", cmd)
	}
}

func TestReplyKinds(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSimple("OK")
	w.WriteInt(-7)
	w.WriteBulk([]byte("data"))
	w.WriteBulk(nil)
	w.WriteArrayHeader(2)
	w.WriteBulk([]byte("a"))
	w.WriteInt(1)
	w.WriteError("boom")
	w.Flush()
	r := NewReader(&buf)
	if v, _ := r.ReadReply(); v != "OK" {
		t.Fatalf("simple = %v", v)
	}
	if v, _ := r.ReadReply(); v != int64(-7) {
		t.Fatalf("int = %v", v)
	}
	if v, _ := r.ReadReply(); string(v.([]byte)) != "data" {
		t.Fatalf("bulk = %v", v)
	}
	if v, _ := r.ReadReply(); v.([]byte) != nil {
		t.Fatalf("null bulk = %v", v)
	}
	if v, _ := r.ReadReply(); len(v.([]interface{})) != 2 {
		t.Fatalf("array = %v", v)
	}
	if v, _ := r.ReadReply(); v.(error).Error() != "ERR boom" {
		t.Fatalf("error = %v", v)
	}
}

func TestBinarySafety(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payload := []byte{0, 1, 2, '\r', '\n', 0xff}
	w.WriteCommand([]byte("SET"), payload)
	w.Flush()
	r := NewReader(&buf)
	cmd, err := r.ReadCommand()
	if err != nil || !bytes.Equal(cmd[1], payload) {
		t.Fatalf("binary payload mangled: %q, %v", cmd, err)
	}
}

func TestMalformedInput(t *testing.T) {
	for _, in := range []string{"*2\r\n$1\r\na\r\n", "*1\r\n$5\r\nab\r\n", "*x\r\n"} {
		r := NewReader(bytes.NewBufferString(in))
		if _, err := r.ReadCommand(); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

func TestCommandBuffered(t *testing.T) {
	mk := func(in string) *Reader {
		r := NewReader(bytes.NewBufferString(in))
		// Prime the bufio buffer so Buffered/Peek see the bytes.
		r.br.Peek(1)
		return r
	}
	complete := []string{
		"*1\r\n$4\r\nPING\r\n",
		"*3\r\n$6\r\nZSCORE\r\n$1\r\ns\r\n$1\r\nm\r\n",
		"PING\r\n",                 // inline
		"*x\r\n",                   // malformed: errors without blocking
		"*2\r\nnope\r\n",           // malformed bulk header
		"*1\r\n$4\r\nPING\r\nrest", // complete + trailing partial
	}
	for _, in := range complete {
		if !mk(in).CommandBuffered() {
			t.Errorf("CommandBuffered(%q) = false, want true", in)
		}
	}
	partial := []string{
		"",
		"*3\r\n",
		"*3\r\n$6\r\nZSC",
		"*3\r\n$6\r\nZSCORE\r\n$1\r\ns\r\n$1\r\n", // payload bytes missing
		"PING", // inline without newline
	}
	for _, in := range partial {
		if mk(in).CommandBuffered() {
			t.Errorf("CommandBuffered(%q) = true, want false", in)
		}
	}
	if NewReader(bytes.NewBufferString("")).CommandBuffered() {
		t.Error("CommandBuffered on empty reader")
	}
}

// TestLengthCapRejected: declared lengths beyond the 1<<30 cap are protocol
// errors everywhere a peer can declare one — bulk payloads in commands,
// bulk and array headers in replies. The old parser accepted any int that
// fit in 31 bits and allocated the buffer up front, so "$2147483647" from
// an unauthenticated client reserved ~2 GB before a single payload byte
// arrived; the fixed parser must fail with ErrProtocol (not an io error
// after a doomed allocation-and-read).
func TestLengthCapRejected(t *testing.T) {
	huge := []string{"2147483647", "1073741825"} // > 1<<30
	for _, n := range huge {
		r := NewReader(strings.NewReader("*1\r\n$" + n + "\r\n"))
		if _, err := r.ReadCommand(); !errors.Is(err, ErrProtocol) {
			t.Errorf("command bulk $%s: err = %v, want ErrProtocol", n, err)
		}
		r = NewReader(strings.NewReader("$" + n + "\r\n"))
		if _, err := r.ReadReply(); !errors.Is(err, ErrProtocol) {
			t.Errorf("reply bulk $%s: err = %v, want ErrProtocol", n, err)
		}
		r = NewReader(strings.NewReader("*" + n + "\r\n"))
		if _, err := r.ReadReply(); !errors.Is(err, ErrProtocol) {
			t.Errorf("reply array *%s: err = %v, want ErrProtocol", n, err)
		}
	}
	// At the cap is still accepted as a length (the read then fails on the
	// missing payload, which is a different error) — the cap bounds
	// declared lengths, it does not shrink the protocol.
	r := NewReader(strings.NewReader("$1073741824\r\n"))
	if _, err := r.ReadReply(); errors.Is(err, ErrProtocol) {
		t.Errorf("reply bulk at cap: err = %v, want a read error, not ErrProtocol", err)
	}
	// Negative lengths other than -1 are malformed, not nulls.
	r = NewReader(strings.NewReader("$-2\r\n"))
	if _, err := r.ReadReply(); !errors.Is(err, ErrProtocol) {
		t.Errorf("reply bulk $-2: err = %v, want ErrProtocol", err)
	}
}

// TestNullBulkInCommandRejected: a $-1 element inside a command array must
// be a protocol error. The old readBulk mapped it to a nil slice, so
// "ZADD <nil> ..." flowed into the keyspace as a nil key — a value the
// store can never address again.
func TestNullBulkInCommandRejected(t *testing.T) {
	r := NewReader(strings.NewReader("*3\r\n$6\r\nZSCORE\r\n$-1\r\n$1\r\nm\r\n"))
	cmd, err := r.ReadCommand()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("command with null bulk: cmd = %q, err = %v, want ErrProtocol", cmd, err)
	}
}

// TestAggregateParseErrorConsumesFrame: a malformed value inside an array
// reply must surface an error only after the whole aggregate frame is
// consumed, so the next ReadReply returns the NEXT top-level reply — the
// invariant pipelining clients rely on to drain past bad replies. A broken
// frame (unknown type byte) must instead report a non-frame-safe error.
func TestAggregateParseErrorConsumesFrame(t *testing.T) {
	r := NewReader(strings.NewReader("*3\r\n:1\r\n:bad\r\n:2\r\n:7\r\n"))
	if _, err := r.ReadReply(); err == nil {
		t.Fatal("array with malformed element reported no error")
	} else if !FrameSafe(err) {
		t.Fatalf("value-parse error %v not frame-safe", err)
	}
	v, err := r.ReadReply()
	if err != nil || v != int64(7) {
		t.Fatalf("reply after consumed aggregate = %v, %v; want 7", v, err)
	}
	// Framing errors are not frame-safe.
	r = NewReader(strings.NewReader("?junk\r\n"))
	if _, err := r.ReadReply(); err == nil || FrameSafe(err) {
		t.Fatalf("framing error = %v; want non-frame-safe error", err)
	}
}

// TestAggregateFramingErrorWins: when an aggregate holds BOTH a frame-safe
// element error and a later framing error, the framing error must be
// reported — the frame was not fully consumed, and labeling it frame-safe
// would let pipelining clients drain a desynchronized stream.
func TestAggregateFramingErrorWins(t *testing.T) {
	r := NewReader(strings.NewReader("*3\r\n:bad\r\n?junk\r\n:7\r\n"))
	if _, err := r.ReadReply(); err == nil {
		t.Fatal("array with framing error reported no error")
	} else if FrameSafe(err) {
		t.Fatalf("mid-frame abort %v reported as frame-safe", err)
	}
}
