// Package resp implements the RESP2 wire protocol (the Redis serialization
// protocol) used by the full-system benchmark (§6.8): enough of the protocol
// to run YCSB-style workloads against the mini-Redis server over loopback
// TCP with pipelining.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// ErrProtocol reports malformed input.
var ErrProtocol = errors.New("resp: protocol error")

// Reader decodes RESP values.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r with the default 64 KiB buffer.
func NewReader(r io.Reader) *Reader { return &Reader{br: bufio.NewReaderSize(r, 64<<10)} }

// NewReaderSize wraps r with an explicit buffer size. A many-connection
// server sizes per-connection buffers down (a pipeline batch fits in a few
// KiB); clients and replication feeds keep the large default.
func NewReaderSize(r io.Reader, size int) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, size)}
}

// Inner exposes the underlying buffered reader. Replication needs it: a
// PSYNC handshake runs over RESP, then the same connection switches to a
// raw frame stream — which must continue from this buffer, or bytes the
// RESP reader already pulled in would be lost.
func (r *Reader) Inner() *bufio.Reader { return r.br }

// Buffered reports how many decoded-but-unread bytes sit in the reader's
// buffer — nonzero when the client has pipelined further commands behind the
// one just read.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// CommandBuffered reports whether a COMPLETE command is already buffered, so
// that the next ReadCommand cannot block on the network. This is what lets a
// server drain a pipeline into one batch without withholding replies from a
// client that has only sent part of its next command: Buffered() alone
// counts raw bytes and would be nonzero for a half-received command.
// Malformed buffered input reports true — ReadCommand will fail on it
// without blocking.
func (r *Reader) CommandBuffered() bool {
	buf, err := r.br.Peek(r.br.Buffered())
	if err != nil || len(buf) == 0 {
		return false
	}
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return false // first line still incomplete
	}
	if buf[0] != '*' {
		return true // inline command: one full line is a full command
	}
	n, ok := parseBufferedInt(buf[1:i])
	if !ok || n <= 0 {
		return true // protocol error: ReadCommand errors without blocking
	}
	rest := buf[i+1:]
	for j := 0; j < n; j++ {
		k := bytes.IndexByte(rest, '\n')
		if k < 0 {
			return false
		}
		if rest[0] != '$' {
			return true
		}
		ln, ok := parseBufferedInt(rest[1:k])
		if !ok || ln < 0 {
			return true
		}
		need := k + 1 + ln + 2 // length line + payload + CRLF
		if len(rest) < need {
			return false
		}
		rest = rest[need:]
	}
	return true
}

// parseBufferedInt parses a decimal from a RESP length line, tolerating the
// trailing '\r'.
func parseBufferedInt(b []byte) (int, bool) {
	if len(b) > 0 && b[len(b)-1] == '\r' {
		b = b[:len(b)-1]
	}
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, false
		}
	}
	return n, true
}

// maxLen caps any length prefix a peer can declare ($n bulk payloads and
// *n reply arrays), mirroring parseBufferedInt's bound: without it a
// client sending "$2147483647" forces a ~2 GB allocation before a single
// payload byte arrives. Lengths beyond the cap are protocol errors, not
// values to be honored.
const maxLen = 1 << 30

// parseLen parses a RESP length prefix (the digits after '$' or '*'): a
// non-negative decimal capped at maxLen, or exactly "-1" (the null
// marker), which returns -1. Anything else — other negatives, garbage,
// overflow — is ErrProtocol.
func parseLen(b []byte) (int, error) {
	if len(b) == 2 && b[0] == '-' && b[1] == '1' {
		return -1, nil
	}
	if len(b) == 0 {
		return 0, ErrProtocol
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, ErrProtocol
		}
		n = n*10 + int(c-'0')
		if n > maxLen {
			return 0, ErrProtocol
		}
	}
	return n, nil
}

// ReadCommand reads a client command: an array of bulk strings.
func (r *Reader) ReadCommand() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, ErrProtocol
	}
	if line[0] != '*' {
		// Inline command (space-separated), supported for debugging.
		var parts [][]byte
		cur := []byte{}
		for _, c := range line[:] {
			if c == ' ' {
				if len(cur) > 0 {
					parts = append(parts, cur)
					cur = []byte{}
				}
				continue
			}
			cur = append(cur, c)
		}
		if len(cur) > 0 {
			parts = append(parts, cur)
		}
		return parts, nil
	}
	n, err := parseLen(line[1:])
	if err != nil || n < 0 || n > 1024 {
		return nil, ErrProtocol
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		b, err := r.readBulk()
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, ErrProtocol
	}
	return line[:len(line)-2], nil
}

// readBulk reads one bulk string of a command array. Null bulks ($-1) are
// rejected: inside a command a nil argument has no meaning — it would flow
// into the store as a nil key/member — and real Redis likewise refuses it.
func (r *Reader) readBulk() ([]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, ErrProtocol
	}
	n, err := parseLen(line[1:])
	if err != nil || n < 0 {
		return nil, ErrProtocol
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, ErrProtocol
	}
	return buf[:n], nil
}

// ReadReply reads one server reply, returning it as one of:
// string (simple), error, int64, []byte (bulk, nil for null), or
// []interface{} (array).
func (r *Reader) ReadReply() (interface{}, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, ErrProtocol
	}
	switch line[0] {
	case '+':
		return string(line[1:]), nil
	case '-':
		return errors.New(string(line[1:])), nil
	case ':':
		return strconv.ParseInt(string(line[1:]), 10, 64)
	case '$':
		n, err := parseLen(line[1:])
		if err != nil {
			return nil, ErrProtocol
		}
		if n < 0 {
			return []byte(nil), nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, err
		}
		return buf[:n], nil
	case '*':
		n, err := parseLen(line[1:])
		if err != nil {
			return nil, ErrProtocol
		}
		if n < 0 {
			return []interface{}(nil), nil
		}
		// Pre-size from the declared count, but bounded: the count is
		// peer-controlled and each slot is an interface header, so honoring
		// a huge n would allocate gigabytes before any element arrives.
		out := make([]interface{}, 0, min(n, 1024))
		var firstErr error
		for i := 0; i < n; i++ {
			v, err := r.ReadReply()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				if FrameSafe(err) {
					// The malformed element's bytes were consumed: keep
					// reading the remaining elements so the whole aggregate
					// frame is consumed and the stream stays in sync.
					continue
				}
				// A framing/transport error aborts mid-frame; it must win
				// over an earlier frame-safe element error or callers would
				// wrongly treat the stream as still in sync.
				return nil, err
			}
			out = append(out, v)
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return out, nil
	}
	return nil, ErrProtocol
}

// FrameSafe reports whether a ReadReply error left the stream at a reply
// frame boundary — the malformed value's bytes were fully consumed, so the
// next read starts at the next reply and pipelining clients can safely
// drain past the error. Value-parse errors (an unparsable integer in a
// fully-read line) are frame-safe; ErrProtocol and transport errors are
// not: after them the reader's position within the stream is unknown.
func FrameSafe(err error) bool {
	var ne *strconv.NumError
	return errors.As(err, &ne)
}

// Writer encodes RESP values with buffering; call Flush after a pipeline.
type Writer struct {
	bw *bufio.Writer
	// errs counts error replies encoded through WriteError/WriteErrorCode.
	// A server observing per-command error counters reads it before and
	// after a handler: the delta says whether that command errored without
	// the handler having to report its outcome through a second channel.
	// Plain (not atomic): a Writer is owned by one goroutine at a time.
	errs uint64
}

// NewWriter wraps w with the default 64 KiB buffer.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriterSize(w, 64<<10)} }

// NewWriterSize wraps w with an explicit buffer size (see NewReaderSize).
func NewWriterSize(w io.Writer, size int) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, size)}
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteCommand encodes a command as an array of bulk strings.
func (w *Writer) WriteCommand(args ...[]byte) error {
	fmt.Fprintf(w.bw, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(w.bw, "$%d\r\n", len(a))
		w.bw.Write(a)
		w.bw.WriteString("\r\n")
	}
	return nil
}

// WriteRaw writes raw bytes through the writer's buffer — the escape hatch
// a replication feed uses to ship WAL record frames on a connection whose
// handshake ran over RESP.
func (w *Writer) WriteRaw(b []byte) error {
	_, err := w.bw.Write(b)
	return err
}

// WriteSimple writes a +OK style reply.
func (w *Writer) WriteSimple(s string) { fmt.Fprintf(w.bw, "+%s\r\n", s) }

// WriteError writes an -ERR reply.
func (w *Writer) WriteError(s string) {
	w.errs++
	fmt.Fprintf(w.bw, "-ERR %s\r\n", s)
}

// WriteErrorCode writes an error reply whose leading word is an explicit
// error code (e.g. "READONLY ...", "NOPERM ..."), not the generic ERR.
func (w *Writer) WriteErrorCode(s string) {
	w.errs++
	fmt.Fprintf(w.bw, "-%s\r\n", s)
}

// ErrorsWritten returns how many error replies this writer has encoded.
func (w *Writer) ErrorsWritten() uint64 { return w.errs }

// WriteInt writes an integer reply.
func (w *Writer) WriteInt(v int64) { fmt.Fprintf(w.bw, ":%d\r\n", v) }

// WriteBulk writes a bulk string (nil → null).
func (w *Writer) WriteBulk(b []byte) {
	if b == nil {
		w.bw.WriteString("$-1\r\n")
		return
	}
	fmt.Fprintf(w.bw, "$%d\r\n", len(b))
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

// WriteArrayHeader begins an array reply of n elements.
func (w *Writer) WriteArrayHeader(n int) { fmt.Fprintf(w.bw, "*%d\r\n", n) }
