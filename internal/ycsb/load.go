package ycsb

import "repro/internal/index"

// LoadPhase runs the YCSB LOAD phase: insert keys[i] → i through the
// index's bulk-load path (index.BulkLoad) — the partitioned concurrent
// ingest for sharded engines, chunked MultiSet for everything else. It
// returns the number of keys newly added (== len(keys) for a duplicate-
// free dataset) and the first insert error.
func LoadPhase(ix index.Index, keys [][]byte) (int, error) {
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i)
	}
	return index.BulkLoad(ix, keys, vals)
}
