package ycsb

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/skiplist"
)

func TestMixesSumToOne(t *testing.T) {
	for _, w := range []Workload{Load, A, B, C, D, E, F} {
		r, u, i, s, m := Mix(w)
		if sum := r + u + i + s + m; sum < 0.999 || sum > 1.001 {
			t.Fatalf("workload %s ratios sum to %f", w, sum)
		}
	}
}

func TestOperationRatios(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 2000, 1)
	g := NewGenerator(B, Uniform, keys, 1800, 9)
	counts := map[Op]int{}
	for i := 0; i < 20000; i++ {
		op, _, _ := g.Next()
		counts[op]++
	}
	reads := float64(counts[OpRead]) / 20000
	if reads < 0.92 || reads > 0.98 {
		t.Fatalf("YCSB-B read ratio %.3f, want ~0.95", reads)
	}
}

func TestRunAgainstIndex(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 3000, 2)
	for _, w := range []Workload{A, B, C, D, E, F} {
		ix := skiplist.New(1)
		loaded := 2500
		for i := 0; i < loaded; i++ {
			ix.Set(keys[i], uint64(i))
		}
		g := NewGenerator(w, Uniform, keys, loaded, 3)
		if done := g.Run(ix, 5000); done != 5000 {
			t.Fatalf("workload %s completed %d/5000 ops", w, done)
		}
	}
}

func TestRunBatched(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 3000, 2)
	for _, w := range []Workload{A, B, C, D} {
		for _, batch := range []int{1, 8, 64} {
			ix := skiplist.New(1)
			loaded := 2500
			for i := 0; i < loaded; i++ {
				ix.Set(keys[i], uint64(i))
			}
			g := NewGenerator(w, Uniform, keys, loaded, 3)
			if done := g.RunBatched(ix, 5000, batch); done != 5000 {
				t.Fatalf("workload %s batch %d completed %d/5000 ops", w, batch, done)
			}
		}
	}
}

func TestInsertAccounting(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 2000, 5)
	ix := skiplist.New(1)
	loaded := 1000
	for i := 0; i < loaded; i++ {
		ix.Set(keys[i], uint64(i))
	}
	g := NewGenerator(D, Uniform, keys, loaded, 6)
	g.Run(ix, 4000)
	// Workload D is 5% inserts of fresh keys: every insert must have added.
	if g.NewKeys() == 0 {
		t.Fatal("no inserts recorded for workload D")
	}
	if want := ix.Len() - loaded; g.NewKeys() != want {
		t.Fatalf("NewKeys = %d, index grew by %d", g.NewKeys(), want)
	}
}

// TestLatestDistributionCoversLoadedKeys is the regression test for the
// Latest-distribution drift: once the first workload-phase insert happened,
// the old pickKey sampled only the insert pool and never the loaded
// keyspace again, so workload D reads stopped touching loaded records.
// The fix samples the combined loaded+inserted sequence, so a large share
// of reads must still hit loaded keys throughout the run.
func TestLatestDistributionCoversLoadedKeys(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 2000, 7)
	loaded := 1800
	loadedSet := map[string]bool{}
	for _, k := range keys[:loaded] {
		loadedSet[string(k)] = true
	}
	g := NewGenerator(D, Latest, keys, loaded, 8)
	reads, loadedHits, lateLoadedHits := 0, 0, 0
	for i := 0; i < 20000; i++ {
		op, k, _ := g.Next()
		if op != OpRead {
			continue
		}
		reads++
		if loadedSet[string(k)] {
			loadedHits++
			if g.inserted > 0 {
				lateLoadedHits++
			}
		}
	}
	if reads == 0 {
		t.Fatal("workload D produced no reads")
	}
	if g.inserted == 0 {
		t.Fatal("workload D produced no inserts")
	}
	if frac := float64(loadedHits) / float64(reads); frac < 0.10 {
		t.Fatalf("Latest reads hit loaded keys %.1f%% of the time; the loaded keyspace has drifted out of the distribution", frac*100)
	}
	// The drift specifically started after the first insert.
	if lateLoadedHits == 0 {
		t.Fatal("no loaded-key reads after the first insert")
	}
}

// TestLatestSkewsRecent: the fix must keep the distribution's point — the
// most recently inserted keys are read far more often per key than the
// middle of the loaded keyspace.
func TestLatestSkewsRecent(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 4000, 13)
	loaded := 3600
	g := NewGenerator(D, Latest, keys, loaded, 14)
	for g.inserted < len(g.extra) { // fix the population, then sample
		g.nextInsertKey()
	}
	counts := map[string]int{}
	for i := 0; i < 100000; i++ {
		counts[string(g.pickKey())]++
	}
	recent := 0 // the 10 most recently inserted keys
	for i := g.inserted - 10; i < g.inserted; i++ {
		recent += counts[string(g.insertedKey(i))]
	}
	middle := 0 // same-size slice from the middle of the loaded keyspace
	for i := loaded / 2; i < loaded/2+10; i++ {
		middle += counts[string(keys[i])]
	}
	if recent <= middle*2 {
		t.Fatalf("recent keys read %d times vs middle %d: no recency skew", recent, middle)
	}
}

// TestLatestTracksSynthesizedInserts: when the pre-generated pool runs out,
// synthesized insert keys must be tracked so "latest" stays accurate, and
// pickKey must be able to return them.
func TestLatestTracksSynthesizedInserts(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 110, 9)
	g := NewGenerator(D, Latest, keys, 100, 10) // only 10 pre-generated inserts
	for i := 0; i < 40; i++ {
		if k := g.nextInsertKey(); k == nil {
			t.Fatal("nextInsertKey returned nil")
		}
	}
	if g.inserted != 40 {
		t.Fatalf("inserted = %d after 40 inserts, want 40", g.inserted)
	}
	if len(g.synth) != 30 {
		t.Fatalf("synthesized overflow tracked %d keys, want 30", len(g.synth))
	}
	synthSet := map[string]bool{}
	for _, k := range g.synth {
		synthSet[string(k)] = true
	}
	hits := 0
	for i := 0; i < 20000; i++ {
		if synthSet[string(g.pickKey())] {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("Latest never picked a synthesized insert key")
	}
}

// TestLoadPhase: the LOAD phase goes through the bulk-load path and leaves
// the index exactly as incremental Sets would — keys[i] → i, all added.
func TestLoadPhase(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 2000, 5)
	ix := skiplist.New(3)
	added, err := LoadPhase(ix, keys)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(keys) || ix.Len() != len(keys) {
		t.Fatalf("LoadPhase added %d, Len %d, want %d", added, ix.Len(), len(keys))
	}
	for i, k := range keys {
		if v, ok := ix.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get(keys[%d]) = %d,%v want %d", i, v, ok, i)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 1000, 3)
	g := NewGenerator(C, Zipfian, keys, 1000, 4)
	counts := map[string]int{}
	for i := 0; i < 50000; i++ {
		_, k, _ := g.Next()
		counts[string(k)]++
	}
	maxN := 0
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 50000/1000*5 {
		t.Fatalf("zipfian max key count %d shows no skew", maxN)
	}
}
