package ycsb

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/skiplist"
)

func TestMixesSumToOne(t *testing.T) {
	for _, w := range []Workload{Load, A, B, C, D, E, F} {
		r, u, i, s, m := Mix(w)
		if sum := r + u + i + s + m; sum < 0.999 || sum > 1.001 {
			t.Fatalf("workload %s ratios sum to %f", w, sum)
		}
	}
}

func TestOperationRatios(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 2000, 1)
	g := NewGenerator(B, Uniform, keys, 1800, 9)
	counts := map[Op]int{}
	for i := 0; i < 20000; i++ {
		op, _, _ := g.Next()
		counts[op]++
	}
	reads := float64(counts[OpRead]) / 20000
	if reads < 0.92 || reads > 0.98 {
		t.Fatalf("YCSB-B read ratio %.3f, want ~0.95", reads)
	}
}

func TestRunAgainstIndex(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 3000, 2)
	for _, w := range []Workload{A, B, C, D, E, F} {
		ix := skiplist.New(1)
		loaded := 2500
		for i := 0; i < loaded; i++ {
			ix.Set(keys[i], uint64(i))
		}
		g := NewGenerator(w, Uniform, keys, loaded, 3)
		if done := g.Run(ix, 5000); done != 5000 {
			t.Fatalf("workload %s completed %d/5000 ops", w, done)
		}
	}
}

func TestRunBatched(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 3000, 2)
	for _, w := range []Workload{A, B, C, D} {
		for _, batch := range []int{1, 8, 64} {
			ix := skiplist.New(1)
			loaded := 2500
			for i := 0; i < loaded; i++ {
				ix.Set(keys[i], uint64(i))
			}
			g := NewGenerator(w, Uniform, keys, loaded, 3)
			if done := g.RunBatched(ix, 5000, batch); done != 5000 {
				t.Fatalf("workload %s batch %d completed %d/5000 ops", w, batch, done)
			}
		}
	}
}

func TestInsertAccounting(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 2000, 5)
	ix := skiplist.New(1)
	loaded := 1000
	for i := 0; i < loaded; i++ {
		ix.Set(keys[i], uint64(i))
	}
	g := NewGenerator(D, Uniform, keys, loaded, 6)
	g.Run(ix, 4000)
	// Workload D is 5% inserts of fresh keys: every insert must have added.
	if g.NewKeys() == 0 {
		t.Fatal("no inserts recorded for workload D")
	}
	if want := ix.Len() - loaded; g.NewKeys() != want {
		t.Fatalf("NewKeys = %d, index grew by %d", g.NewKeys(), want)
	}
}

func TestZipfianSkew(t *testing.T) {
	keys := dataset.Generate(dataset.Rand8, 1000, 3)
	g := NewGenerator(C, Zipfian, keys, 1000, 4)
	counts := map[string]int{}
	for i := 0; i < 50000; i++ {
		_, k, _ := g.Next()
		counts[string(k)]++
	}
	maxN := 0
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 50000/1000*5 {
		t.Fatalf("zipfian max key count %d shows no skew", maxN)
	}
}
