// Package ycsb implements the Yahoo! Cloud Serving Benchmark workload mixes
// the paper evaluates (Table 2): LOAD plus workloads A–F, with uniform,
// zipfian, and latest request distributions. The defaults match the
// reference YCSB implementation as the paper does (§6.1): uniform query
// distribution, scan lengths uniform in [1, 100].
package ycsb

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/index"
)

// Op is a single workload operation.
type Op byte

// Operation types.
const (
	OpInsert Op = iota
	OpRead
	OpUpdate
	OpScan
	OpRMW // read-modify-write
)

// Workload names a YCSB mix.
type Workload string

// The paper's workloads (Table 2).
const (
	Load Workload = "LOAD" // 100% inserts
	A    Workload = "A"    // 50% reads, 50% updates
	B    Workload = "B"    // 95% reads, 5% updates
	C    Workload = "C"    // 100% reads
	D    Workload = "D"    // 95% reads (latest), 5% inserts
	E    Workload = "E"    // 95% scans, 5% inserts
	F    Workload = "F"    // 50% reads, 50% read-modify-writes
)

// PointWorkloads are the point-operation mixes of Figures 7 and 8.
var PointWorkloads = []Workload{Load, A, B, C, D, F}

// Distribution selects how read/update targets are drawn.
type Distribution int

// Request distributions.
const (
	Uniform Distribution = iota
	Zipfian
	Latest
)

// Mix returns the operation ratios of a workload.
func Mix(w Workload) (read, update, insert, scan, rmw float64) {
	switch w {
	case Load:
		return 0, 0, 1, 0, 0
	case A:
		return 0.5, 0.5, 0, 0, 0
	case B:
		return 0.95, 0.05, 0, 0, 0
	case C:
		return 1, 0, 0, 0, 0
	case D:
		return 0.95, 0, 0.05, 0, 0
	case E:
		return 0, 0, 0.05, 0.95, 0
	case F:
		return 0.5, 0, 0, 0, 0.5
	}
	panic("ycsb: unknown workload " + string(w))
}

// Generator produces an operation stream for one worker thread.
type Generator struct {
	w        Workload
	dist     Distribution
	rng      *rand.Rand
	zipf     *rand.Zipf
	keys     [][]byte // loaded keys, index [0, loaded)
	extra    [][]byte // keys available for workload-phase inserts
	synth    [][]byte // synthesized inserts once extra is exhausted
	loaded   int
	inserted int // workload-phase inserts issued (extra + synthesized)
	newKeys  int // inserts that actually added a key (Set added-flag)
	maxScan  int
}

// NewGenerator creates a per-thread operation generator. keys[0:loaded] are
// already in the index; keys[loaded:] feed workload-phase inserts (D and E).
func NewGenerator(w Workload, dist Distribution, keys [][]byte, loaded int, seed int64) *Generator {
	g := &Generator{
		w:       w,
		dist:    dist,
		rng:     rand.New(rand.NewSource(seed)),
		keys:    keys[:loaded],
		extra:   keys[loaded:],
		loaded:  loaded,
		maxScan: 100,
	}
	if dist == Zipfian {
		// YCSB's default zipfian constant is 0.99.
		g.zipf = rand.NewZipf(g.rng, 1.001, 10, uint64(maxI(loaded-1, 1)))
	}
	return g
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pickKey selects a target key per the request distribution.
func (g *Generator) pickKey() []byte {
	switch g.dist {
	case Zipfian:
		n := g.loaded
		if n == 0 {
			return nil
		}
		return g.keys[int(g.zipf.Uint64())%n]
	case Latest:
		// Recency-skewed sample over the COMBINED loaded+inserted key
		// sequence: position total-1 is the most recently inserted key, and
		// the loaded keyspace sits below the workload-phase inserts, so
		// reads keep touching loaded records as YCSB's Latest distribution
		// specifies (clustered near, not confined to, the newest keys).
		total := g.loaded + g.inserted
		if total == 0 {
			return nil
		}
		off := int(float64(total) * g.rng.ExpFloat64() / 4)
		if off >= total {
			off = total - 1
		}
		idx := total - 1 - off
		if idx < g.loaded {
			return g.keys[idx]
		}
		return g.insertedKey(idx - g.loaded)
	default:
		n := g.loaded
		if n == 0 {
			return nil
		}
		return g.keys[g.rng.Intn(n)]
	}
}

// insertedKey returns the i-th workload-phase insert (0 = oldest): the
// pre-generated pool first, then the synthesized overflow keys.
func (g *Generator) insertedKey(i int) []byte {
	if i < len(g.extra) {
		return g.extra[i]
	}
	return g.synth[i-len(g.extra)]
}

// nextInsertKey returns a fresh key for insert operations.
func (g *Generator) nextInsertKey() []byte {
	if g.inserted < len(g.extra) {
		k := g.extra[g.inserted]
		g.inserted++
		return k
	}
	// Exhausted the pre-generated pool: synthesize, and track the key so
	// the Latest distribution's notion of "most recent" stays accurate.
	k := make([]byte, 8)
	g.rng.Read(k)
	g.synth = append(g.synth, k)
	g.inserted++
	return k
}

// Next returns the next operation: its type, target key, and scan length.
func (g *Generator) Next() (Op, []byte, int) {
	read, update, insert, scan, _ := Mix(g.w)
	r := g.rng.Float64()
	switch {
	case r < insert:
		return OpInsert, g.nextInsertKey(), 0
	case r < insert+read:
		return OpRead, g.pickKey(), 0
	case r < insert+read+update:
		return OpUpdate, g.pickKey(), 0
	case r < insert+read+update+scan:
		return OpScan, g.pickKey(), 1 + g.rng.Intn(g.maxScan)
	default:
		return OpRMW, g.pickKey(), 0
	}
}

// Run executes ops operations against ix and returns the number completed.
// The scan callback touches each element, modeling YCSB's row decoding.
func (g *Generator) Run(ix index.Index, ops int) int {
	var sink uint64
	done := 0
	for i := 0; i < ops; i++ {
		op, key, scanLen := g.Next()
		if key == nil {
			continue
		}
		switch op {
		case OpInsert:
			added, err := ix.Set(key, uint64(i))
			if err != nil {
				return done
			}
			if added {
				g.newKeys++
			}
		case OpRead:
			v, _ := ix.Get(key)
			sink += v
		case OpUpdate:
			if _, err := ix.Set(key, uint64(i)); err != nil {
				return done
			}
		case OpScan:
			ix.Scan(key, scanLen, func(k []byte, v uint64) bool {
				sink += v + uint64(len(k))
				return true
			})
		case OpRMW:
			v, _ := ix.Get(key)
			if _, err := ix.Set(key, v+1); err != nil {
				return done
			}
		}
		done++
	}
	sinkVar.Add(sink)
	return done
}

// RunBatched executes ops operations like Run, but drains read operations
// through MultiGet in batches of up to batch keys — the regime of a server
// emptying a pipeline of independent requests, where an MLP-aware engine
// overlaps the batch's DRAM misses (paper §4.4 generalized across keys).
// Reads accumulate until the batch fills or a mutating/scan operation
// arrives, which flushes the pending batch first to preserve operation
// order. Returns the number of operations completed.
func (g *Generator) RunBatched(ix index.Index, ops, batch int) int {
	if batch < 1 {
		batch = 1
	}
	var sink uint64
	done := 0
	pending := make([][]byte, 0, batch)
	vals := make([]uint64, batch)
	found := make([]bool, batch)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		ix.MultiGet(pending, vals, found)
		for j := range pending {
			sink += vals[j]
		}
		done += len(pending)
		pending = pending[:0]
	}
	for i := 0; i < ops; i++ {
		op, key, scanLen := g.Next()
		if key == nil {
			continue
		}
		if op == OpRead {
			pending = append(pending, key)
			if len(pending) == batch {
				flush()
			}
			continue
		}
		flush()
		switch op {
		case OpInsert:
			added, err := ix.Set(key, uint64(i))
			if err != nil {
				return done
			}
			if added {
				g.newKeys++
			}
		case OpUpdate:
			if _, err := ix.Set(key, uint64(i)); err != nil {
				return done
			}
		case OpScan:
			ix.Scan(key, scanLen, func(k []byte, v uint64) bool {
				sink += v + uint64(len(k))
				return true
			})
		case OpRMW:
			v, _ := ix.Get(key)
			if _, err := ix.Set(key, v+1); err != nil {
				return done
			}
		}
		done++
	}
	flush()
	sinkVar.Add(sink)
	return done
}

// NewKeys reports how many workload-phase inserts actually added a key (as
// opposed to colliding with an existing one), per the Set added-flag — the
// accounting YCSB needs to validate insert mixes.
func (g *Generator) NewKeys() int { return g.newKeys }

// sinkVar defeats dead-code elimination of benchmark reads. Atomic: the
// bench harness runs one Generator per thread, and they all land here.
var sinkVar atomic.Uint64
