package persist_test

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/persist"
)

// TestGroupCommitMultiWriter: the tentpole contract — N concurrent writers
// Append then park on Commit; every Commit returns with its record durable,
// and recovery after a clean close sees every acknowledged write.
func TestGroupCommitMultiWriter(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := wal.Append(persist.OpSet, "", u64key(uint64(g*perWriter+i)), uint64(i))
				if err != nil {
					errs[g] = err
					return
				}
				if err := wal.Commit(lsn); err != nil {
					errs[g] = err
					return
				}
				if d := wal.DurableLSN(); d < lsn {
					errs[g] = errors.New("Commit returned before DurableLSN covered the record")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil || got.Len() != writers*perWriter {
		t.Fatalf("recovered %d records, want %d (%v)", got.Len(), writers*perWriter, err)
	}
}

// TestGroupCommitStickyErrorFanOut: an injected fsync failure must fail
// EVERY parked writer — not just the next Append — and poison the WAL for
// everything after it.
func TestGroupCommitStickyErrorFanOut(t *testing.T) {
	dir := t.TempDir()
	injected := errors.New("injected fsync failure")
	var fail atomic.Bool
	wal, err := persist.OpenWAL(dir, persist.WALOptions{
		Policy: persist.FsyncGroup,
		// A long coalescing window so all writers are parked on the same
		// batch before the poisoned fsync runs.
		GroupMaxDelay: 100 * time.Millisecond,
		FsyncFn: func(f *os.File) error {
			if fail.Load() {
				return injected
			}
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fail.Store(true)
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lsn, err := wal.Append(persist.OpSet, "", u64key(uint64(g)), 1)
			if err != nil {
				errs[g] = err
				return
			}
			errs[g] = wal.Commit(lsn)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, injected) {
			t.Fatalf("parked writer %d got %v, want the injected fsync error", g, err)
		}
	}
	// Sticky: the WAL must refuse further appends rather than acknowledge
	// writes it can never make durable.
	if _, err := wal.Append(persist.OpSet, "", []byte("after"), 1); !errors.Is(err, injected) {
		t.Fatalf("Append after poisoned sync = %v, want sticky error", err)
	}
	if err := wal.Commit(0); err != nil {
		// LSN 0 was durable before the failure; Commit below the watermark
		// stays satisfiable.
		t.Fatalf("Commit(0) = %v, want nil", err)
	}
	if err := wal.Close(); !errors.Is(err, injected) {
		t.Fatalf("Close = %v, want the sticky sync error surfaced", err)
	}
}

// TestCloseWithParkedWriters: Close during a pending group sync must
// complete that sync and release every parked writer with its durability
// intact — no goroutine leak, no writer stuck, no acknowledged loss. The
// fsync is blocked on a gate so the writers are provably parked when Close
// is called.
func TestCloseWithParkedWriters(t *testing.T) {
	dir := t.TempDir()
	var gate atomic.Bool
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	wal, err := persist.OpenWAL(dir, persist.WALOptions{
		Policy:        persist.FsyncGroup,
		GroupMaxDelay: -1, // sync immediately; the gate is the only delay
		FsyncFn: func(f *os.File) error {
			if gate.Load() {
				started <- struct{}{}
				<-release
			}
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.Store(true)
	const writers = 8
	// Append everything up front (appends only buffer under FsyncGroup), so
	// Close below cannot race an Append; the goroutines park on Commit.
	lsns := make([]uint64, writers)
	for g := 0; g < writers; g++ {
		if lsns[g], err = wal.Append(persist.OpSet, "", u64key(uint64(g)), 1); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = wal.Commit(lsns[g])
		}(g)
	}
	<-started // the syncer is inside the blocked fsync: writers are parked
	time.Sleep(10 * time.Millisecond)
	closeErr := make(chan error, 1)
	go func() { closeErr <- wal.Close() }()
	// Close must be waiting on the syncer, not force-closing the file out
	// from under it. Release the gate and everything must drain.
	time.Sleep(10 * time.Millisecond)
	gate.Store(false)
	close(release)
	if err := <-closeErr; err != nil {
		t.Fatalf("Close = %v", err)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d parked at Close got %v, want nil (sync completed)", g, err)
		}
	}
	got, _, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil || got.Len() != writers {
		t.Fatalf("recovered %d, want %d (%v)", got.Len(), writers, err)
	}
}

// TestGroupRotation: under group/async the syncer owns segment rotation;
// with a tiny SegmentBytes the log must still rotate, stay recoverable,
// and keep LSNs continuous across boundaries.
func TestGroupRotation(t *testing.T) {
	for _, pol := range []persist.FsyncPolicy{persist.FsyncGroup, persist.FsyncAsync} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			wal, err := persist.OpenWAL(dir, persist.WALOptions{
				Policy:        pol,
				SegmentBytes:  256,
				GroupMaxDelay: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 100
			var last uint64
			for i := 0; i < n; i++ {
				if last, err = wal.Append(persist.OpSet, "", u64key(uint64(i)), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := wal.Commit(last); err != nil {
				t.Fatal(err)
			}
			if segs := walSegmentNames(t, dir); len(segs) < 2 {
				t.Fatalf("no rotation happened: %d segment(s) for %d records at SegmentBytes=256", len(segs), n)
			}
			if err := wal.Close(); err != nil {
				t.Fatal(err)
			}
			got, res, err := persist.RecoverIndex(dir, mkIndex)
			if err != nil || got.Len() != n {
				t.Fatalf("recovered %d, want %d (%v)", got.Len(), n, err)
			}
			if res.LastLSN != last {
				t.Fatalf("recovery LastLSN = %d, want %d", res.LastLSN, last)
			}
		})
	}
}

// TestCommitInlineUnderNonGroupPolicies: Commit is a universal durability
// barrier — under policies without a syncer it syncs inline instead of
// parking, so WAIT-style callers can rely on it regardless of -fsync.
func TestCommitInlineUnderNonGroupPolicies(t *testing.T) {
	for _, pol := range []persist.FsyncPolicy{persist.FsyncNo, persist.FsyncEverySec, persist.FsyncAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			defer wal.Close()
			var last uint64
			for i := 0; i < 10; i++ {
				if last, err = wal.Append(persist.OpSet, "", u64key(uint64(i)), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := wal.Commit(last); err != nil {
				t.Fatal(err)
			}
			if d := wal.DurableLSN(); d < last {
				t.Fatalf("DurableLSN = %d after Commit(%d)", d, last)
			}
			if err := wal.Commit(last + 1); err == nil {
				t.Fatal("Commit past the last assigned LSN must error, not park forever")
			}
		})
	}
}

// TestAsyncDurableWatermark: FsyncAsync promises the watermark catches up
// on its own — no Commit, no Sync — within a few group cycles.
func TestAsyncDurableWatermark(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncAsync})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	var last uint64
	for i := 0; i < 20; i++ {
		if last, err = wal.Append(persist.OpSet, "", u64key(uint64(i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for wal.DurableLSN() < last {
		if time.Now().After(deadline) {
			t.Fatalf("DurableLSN stuck at %d, want ≥ %d", wal.DurableLSN(), last)
		}
		time.Sleep(time.Millisecond)
	}
	if got := wal.AppendedBytes(); got <= 0 {
		t.Fatalf("AppendedBytes = %d, want > 0", got)
	}
}
