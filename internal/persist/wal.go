package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WAL segment layout:
//
//	header (16 bytes, unframed): magic "CTWAL1\x00\x00" + first LSN (u64 LE)
//	record frame: op (u8), LSN (u64 LE), uvarint(len(set)), set,
//	              uvarint(len(key)), key, [val (u64 LE) when op == OpSet]
//
// Segments are named wal-<firstLSN 16hex>.log and rotate at SegmentBytes;
// LSNs increase by one per record across segment boundaries, so segment i
// covers exactly [first_i, first_{i+1}) and compaction can drop a segment
// by comparing its successor's first LSN against the snapshot LSN without
// reading it.

const (
	walMagic     = "CTWAL1\x00\x00"
	walHeaderLen = 16

	// DefaultSegmentBytes rotates WAL segments at 64 MiB: large enough
	// that rotation cost is noise, small enough that compaction after a
	// snapshot reclaims space promptly.
	DefaultSegmentBytes = 64 << 20
)

// ErrWALClosed reports an append to a closed WAL.
var ErrWALClosed = errors.New("persist: WAL closed")

func walName(firstLSN uint64) string { return fmt.Sprintf("wal-%016x.log", firstLSN) }

func parseWalName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	return lsn, err == nil
}

// DefaultGroupMaxDelay is the group syncer's coalescing window: after the
// first unsynced append is noticed, the syncer waits this long for more
// writers to join the batch before issuing the flush+fsync. Small enough
// that a parked writer's latency stays in the low milliseconds, large
// enough that a pipelined burst lands in one fsync.
const DefaultGroupMaxDelay = 2 * time.Millisecond

// WALOptions configure OpenWAL. The zero value means FsyncEverySec and
// DefaultSegmentBytes.
type WALOptions struct {
	Policy FsyncPolicy
	// SegmentBytes is the rotation threshold; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// FloorLSN guarantees the first LSN assigned after open is strictly
	// greater than it. Pass the recovery Result's LastLSN: a durable
	// snapshot can be AHEAD of the on-disk WAL after a crash (the snapshot
	// fsyncs immediately; an everysec/no-policy WAL tail may not have made
	// it), and deriving the next LSN from the WAL tail alone would then
	// reuse LSNs the snapshot already covers — acknowledged post-restart
	// writes would be silently skipped by the next recovery's LSN filter.
	FloorLSN uint64
	// GroupMaxDelay bounds how long the FsyncGroup/FsyncAsync syncer waits
	// to coalesce a batch before fsyncing: 0 means DefaultGroupMaxDelay,
	// negative means no artificial delay (the fsync duration itself is the
	// only batching window). Ignored under other policies.
	GroupMaxDelay time.Duration
	// FsyncFn overrides how a segment file reaches stable storage (default
	// (*os.File).Sync). A seam for fault injection in tests and for
	// platforms preferring fdatasync.
	FsyncFn func(*os.File) error
}

// WAL is a segmented append-only log. Appends are safe for concurrent use;
// each is assigned the next LSN under the WAL's mutex, so LSN order is the
// order records reach the log.
type WAL struct {
	mu      sync.Mutex
	dir     string
	opts    WALOptions
	f       *os.File
	bw      *bufio.Writer
	written int64 // bytes in the current segment, header included
	next    uint64
	encBuf  []byte
	closed  bool
	syncErr error // sticky background fsync failure, surfaced on Append

	durable  uint64 // highest LSN known to be fsynced to stable storage
	appended int64  // cumulative record bytes this session (auto-rewrite budget input)
	finished bool   // Close ran its final sync: Commit waiters must not park

	// commitCond (on mu) wakes Commit waiters whenever durable advances, a
	// sticky sync error lands, or Close finishes — every parked writer
	// re-checks its LSN against the watermark, so one fsync releases a whole
	// pipeline and one failure fans out to all of them.
	commitCond *sync.Cond
	// onAppend, when set, observes every appended record — called under the
	// WAL mutex with the record's LSN and its complete wire frame, so
	// observation order is exactly LSN order (the property a replication
	// fan-out needs). The frame aliases the WAL's encode buffer and must be
	// copied if retained.
	onAppend func(op Op, lsn uint64, frame []byte)

	met WALMetrics // always-on durability histograms (see walmetrics.go)

	stop chan struct{} // everysec flusher shutdown
	done chan struct{}

	syncCond   *sync.Cond    // wakes the group syncer when unsynced appends exist
	syncerDone chan struct{} // closed when the group syncer exits
}

// fsync pushes f to stable storage through the configured seam, recording
// the duration — every fsync the WAL issues (policy syncs, rotations, the
// final close) lands in the same histogram.
func (w *WAL) fsync(f *os.File) error {
	start := time.Now()
	var err error
	if w.opts.FsyncFn != nil {
		err = w.opts.FsyncFn(f)
	} else {
		err = f.Sync()
	}
	w.met.Fsync.RecordDuration(int64(time.Since(start)))
	return err
}

// OpenWAL opens (creating if needed) the WAL in dir for appending. An
// existing newest segment is scanned to find the next LSN, and a torn tail
// left by a crash is truncated away — appending after a torn record would
// hide everything behind it from replay, so the write path repairs what
// the read path (Recover) merely tolerates.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.GroupMaxDelay == 0 {
		opts.GroupMaxDelay = DefaultGroupMaxDelay
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts, next: 1, met: newWALMetrics()}
	w.commitCond = sync.NewCond(&w.mu)
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if w.next <= opts.FloorLSN {
			w.next = opts.FloorLSN + 1
		}
		if err := w.createSegment(w.next); err != nil {
			return nil, err
		}
	} else {
		if err := w.adoptSegment(segs[len(segs)-1]); err != nil {
			return nil, err
		}
		if w.next <= opts.FloorLSN {
			// LSNs may jump forward within the adopted segment; the segment
			// still covers [its first LSN, the next segment's), so replay
			// and compaction are unaffected by the gap.
			w.next = opts.FloorLSN + 1
		}
	}
	// Everything on disk at open is the recovery baseline: durable by
	// definition as far as this session's acknowledgements are concerned.
	w.durable = w.next - 1
	switch opts.Policy {
	case FsyncEverySec:
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop()
	case FsyncGroup, FsyncAsync:
		w.syncCond = sync.NewCond(&w.mu)
		w.syncerDone = make(chan struct{})
		go w.groupSyncLoop()
	}
	return w, nil
}

// adoptSegment repairs and reopens the newest existing segment for append:
// it scans the records to find the last assigned LSN, truncates anything
// after the last intact frame, and positions the writer at the new end.
func (w *WAL) adoptSegment(seg walSegment) error {
	f, err := os.OpenFile(filepath.Join(w.dir, seg.name), os.O_RDWR, 0)
	if err != nil {
		return err
	}
	first, lastLSN, goodOff, _, err := scanSegment(f, seg.lsn, nil)
	if err != nil {
		f.Close()
		return err
	}
	if goodOff < walHeaderLen {
		// Header itself missing or torn: rewrite it in place.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		var hdr [walHeaderLen]byte
		copy(hdr[:8], walMagic)
		binary.LittleEndian.PutUint64(hdr[8:], seg.lsn)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return err
		}
		goodOff = walHeaderLen
		first, lastLSN = seg.lsn, seg.lsn-1
	} else if err := f.Truncate(goodOff); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w.next = lastLSN + 1
	if lastLSN < first {
		w.next = first // empty segment: the header names the next LSN
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.written = goodOff
	return nil
}

// createSegment starts a fresh segment whose first record will be firstLSN.
func (w *WAL) createSegment(firstLSN uint64) error {
	path := filepath.Join(w.dir, walName(firstLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:8], walMagic)
	binary.LittleEndian.PutUint64(hdr[8:], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := w.fsync(f); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.written = walHeaderLen
	return nil
}

// Append logs one record and returns its LSN. Durability depends on the
// fsync policy; rotation to a new segment happens after the append that
// crosses SegmentBytes, so a record never spans segments.
func (w *WAL) Append(op Op, set string, key []byte, val uint64) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	if w.syncErr != nil {
		return 0, w.syncErr
	}
	lsn := w.next
	frame := AppendRecordFrame(w.encBuf[:0], op, lsn, set, key, val)
	w.encBuf = frame
	if _, err := w.bw.Write(frame); err != nil {
		return 0, err
	}
	w.next++
	w.written += int64(len(frame))
	w.appended += int64(len(frame))
	if w.onAppend != nil {
		// Under w.mu: fan-out subscribers see records in LSN order.
		w.onAppend(op, lsn, frame)
	}
	switch w.opts.Policy {
	case FsyncAlways:
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncGroup, FsyncAsync:
		// The record is only buffered; wake the group syncer and return.
		// Rotation is the syncer's job under these policies — it may be
		// fsyncing w.f outside the mutex right now, so nothing else is
		// allowed to close the segment file out from under it.
		w.syncCond.Signal()
		return lsn, nil
	}
	if w.written >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// rotateLocked seals the current segment (flush + fsync, so the boundary
// is durable under every policy) and starts the next one.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return w.createSegment(w.next)
}

func (w *WAL) syncLocked() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.fsync(w.f); err != nil {
		return err
	}
	if w.next-1 > w.durable {
		w.durable = w.next - 1
		w.commitCond.Broadcast()
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the current segment.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	return w.syncLocked()
}

// DurableLSN returns the highest LSN known to have reached stable storage —
// the async-ack watermark: a crash can lose only records past it.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// AppendedBytes returns the cumulative record bytes appended this session,
// monotone across rotations — callers diff it against a saved watermark to
// estimate the replay cost accumulated since their last snapshot.
func (w *WAL) AppendedBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Commit blocks until every record with LSN ≤ lsn is durable, and is the
// park-on-LSN half of group commit: under FsyncGroup/FsyncAsync the caller
// sleeps on the commit condition while the syncer batches fsyncs, so N
// pipelined writers are released by one fsync instead of issuing N. Under
// the other policies it syncs inline when the watermark hasn't caught up
// (a durability barrier that works everywhere, e.g. for WAIT). A sticky
// sync error fails every parked and future Commit; after Close, waiters
// whose LSN the final sync did not cover get ErrWALClosed.
//
// Callers must not hold locks that the append path needs while parked —
// in miniredis terms: never call Commit with cmdMu or a per-stripe write
// mutex held, or the writers that would have shared this fsync deadlock
// behind the barrier (ctvet's lockorder analyzer enforces this).
func (w *WAL) Commit(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn >= w.next {
		return fmt.Errorf("persist: Commit(%d) past last assigned LSN %d", lsn, w.next-1)
	}
	if w.durable < lsn {
		// Only waits are samples: a Commit the watermark already covers
		// costs nothing and would drown the park distribution in zeros.
		start := time.Now()
		defer func() { w.met.CommitWait.RecordDuration(int64(time.Since(start))) }()
	}
	for w.durable < lsn {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.finished {
			return ErrWALClosed
		}
		if w.syncCond == nil {
			// No syncer under this policy: make the tail durable inline.
			if err := w.syncLocked(); err != nil {
				return err
			}
			continue
		}
		w.commitCond.Wait()
	}
	return nil
}

// SetOnAppend installs the append observer (see the field comment). Call
// it before the first Append — typically between opening the WAL and
// starting to serve writes; installing it while appends are in flight is a
// race.
func (w *WAL) SetOnAppend(fn func(op Op, lsn uint64, frame []byte)) {
	w.mu.Lock()
	w.onAppend = fn
	w.mu.Unlock()
}

// LSN returns the last assigned LSN (0 before the first append).
func (w *WAL) LSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next - 1
}

// Dir returns the WAL's data directory.
func (w *WAL) Dir() string { return w.dir }

// Close flushes, fsyncs and closes the WAL. A cleanly closed WAL loses
// nothing under any fsync policy. Background goroutines are stopped before
// the segment file is touched, so a group sync pending at Close completes
// (its parked writers are released with their durability intact) — or, if
// the final sync fails, every parked writer gets the error; either way no
// waiter is left parked and no goroutine leaks.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	if w.syncCond != nil {
		w.syncCond.Signal()
	}
	w.mu.Unlock()
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	if w.syncerDone != nil {
		// The syncer drains everything buffered (it may be mid-fsync on w.f
		// right now, which is why the file must not be closed yet) and exits
		// once durable has caught up or a sync error poisoned the WAL.
		<-w.syncerDone
	}
	w.mu.Lock()
	err := w.bw.Flush()
	if serr := w.fsync(w.f); err == nil {
		err = serr
	}
	if err == nil && w.next-1 > w.durable {
		w.durable = w.next - 1
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = w.syncErr
	} else if w.syncErr == nil {
		w.syncErr = err // poison: late Commit callers must not report durability
	}
	w.finished = true
	w.commitCond.Broadcast()
	w.mu.Unlock()
	return err
}

// flushLoop is the FsyncEverySec background flusher.
func (w *WAL) flushLoop() {
	defer close(w.done)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				if err := w.syncLocked(); err != nil && w.syncErr == nil {
					// Surface the failure on the next Append instead of
					// silently accepting writes that cannot become durable.
					w.syncErr = err
				}
			}
			w.mu.Unlock()
		}
	}
}

// groupSyncLoop is the FsyncGroup/FsyncAsync syncer: one goroutine that
// coalesces everything buffered since the last sync into a single
// flush+fsync, advances the durable watermark, and wakes every Commit
// waiter at or below it. The fsync itself runs OUTSIDE the WAL mutex
// against a captured *os.File, so appends keep buffering (and the fan-out
// keeps publishing) while the disk works — the fsync duration is itself a
// batching window. The syncer owns rotation under these policies, which is
// what makes the captured file safe: nothing else closes w.f while the
// syncer lives. It must never take locks outside the WAL — in particular
// no miniredis stripe/write mutexes — since writers park on its progress
// while holding none (ctvet's lockorder analyzer enforces the protocol).
func (w *WAL) groupSyncLoop() {
	defer close(w.syncerDone)
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		for w.durable == w.next-1 && !w.closed && w.syncErr == nil {
			w.syncCond.Wait()
		}
		if w.syncErr != nil {
			w.commitCond.Broadcast()
			return
		}
		if w.durable == w.next-1 {
			return // closed and fully durable: Close finishes up
		}
		if w.opts.GroupMaxDelay > 0 && !w.closed {
			// Coalescing window: let more writers join this batch. Skipped
			// when closing so shutdown drains at full speed.
			w.mu.Unlock()
			time.Sleep(w.opts.GroupMaxDelay)
			w.mu.Lock()
		}
		if err := w.bw.Flush(); err != nil {
			w.failLocked(err)
			return
		}
		// Capture the batch boundary and the file, then fsync unlocked:
		// records appended during the fsync buffer behind it and form the
		// next batch.
		target := w.next - 1
		f := w.f
		w.mu.Unlock()
		err := w.fsync(f)
		w.mu.Lock()
		if err != nil {
			w.failLocked(err)
			return
		}
		if target > w.durable {
			w.met.BatchSize.Record(target - w.durable)
			w.durable = target
			w.commitCond.Broadcast()
		}
		if w.written >= w.opts.SegmentBytes {
			// rotateLocked re-syncs inline (records may have landed during
			// the unlocked fsync), seals the segment and opens the next one.
			if err := w.rotateLocked(); err != nil {
				w.failLocked(err)
				return
			}
		}
	}
}

// failLocked records the sticky sync error and fails every parked writer.
// Called under w.mu. After it, Append and Commit return the error forever:
// a WAL that cannot promise durability must not keep acknowledging.
func (w *WAL) failLocked(err error) {
	if w.syncErr == nil {
		w.syncErr = err
	}
	w.commitCond.Broadcast()
}

type walSegment struct {
	lsn  uint64
	name string
}

// listSegments returns dir's WAL segments ascending by first LSN.
func listSegments(dir string) ([]walSegment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []walSegment
	for _, e := range ents {
		if lsn, ok := parseWalName(e.Name()); ok {
			segs = append(segs, walSegment{lsn: lsn, name: e.Name()})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].lsn < segs[j].lsn })
	return segs, nil
}

// decodeRecord parses one WAL frame payload into rec. The key aliases the
// payload buffer and is valid only until the next frame is read.
func decodeRecord(payload []byte, rec *Record) error {
	if len(payload) < 9 {
		return errTorn
	}
	op := Op(payload[0])
	if op != OpSet && op != OpDelete && op != OpFlushAll && op != OpPing {
		return errTorn
	}
	rec.Op = op
	rec.LSN = binary.LittleEndian.Uint64(payload[1:9])
	rest := payload[9:]
	setLen, rest, err := takeUvarint(rest)
	if err != nil {
		return err
	}
	setB, rest, err := takeBytes(rest, setLen)
	if err != nil {
		return err
	}
	rec.Set = string(setB)
	keyLen, rest, err := takeUvarint(rest)
	if err != nil {
		return err
	}
	rec.Key, rest, err = takeBytes(rest, keyLen)
	if err != nil {
		return err
	}
	rec.Val = 0
	if op == OpSet {
		if rec.Val, _, err = takeU64(rest); err != nil {
			return err
		}
	}
	return nil
}

// scanSegment reads a segment from its start, calling apply (when non-nil)
// for each intact record. It returns the header's first LSN, the last
// intact record's LSN (first-1 when there are none), the byte offset just
// past the last intact frame, and whether the scan stopped at a torn frame
// rather than a clean end. A missing or damaged header (including a first
// LSN disagreeing with the filename) reports torn with goodOff 0. apply
// errors abort the scan and are returned verbatim.
func scanSegment(r io.Reader, nameLSN uint64, apply func(*Record) error) (first, last uint64, goodOff int64, torn bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [walHeaderLen]byte
	if _, herr := io.ReadFull(br, hdr[:]); herr != nil {
		return nameLSN, nameLSN - 1, 0, true, nil
	}
	if !bytes.Equal(hdr[:8], []byte(walMagic)) {
		return nameLSN, nameLSN - 1, 0, true, nil
	}
	first = binary.LittleEndian.Uint64(hdr[8:])
	if first != nameLSN {
		return nameLSN, nameLSN - 1, 0, true, nil
	}
	return scanSegmentRecords(br, first, apply)
}

// scanSegmentRecords is scanSegment after the header: it decodes frames
// until a clean EOF or a torn frame.
func scanSegmentRecords(br io.Reader, first uint64, apply func(*Record) error) (_, last uint64, goodOff int64, torn bool, err error) {
	fr := frameReader{r: br}
	last = first - 1
	var rec Record
	for {
		payload, ferr := fr.next()
		if ferr == io.EOF {
			return first, last, walHeaderLen + fr.off, false, nil
		}
		if ferr != nil {
			return first, last, walHeaderLen + fr.off, true, nil
		}
		if derr := decodeRecord(payload, &rec); derr != nil {
			// An intact frame with an undecodable payload: same trust level
			// as a CRC failure — treat as the end of usable data.
			return first, last, walHeaderLen + fr.off - frameSize(len(payload)), true, nil
		}
		last = rec.LSN
		if apply != nil {
			if aerr := apply(&rec); aerr != nil {
				return first, last, walHeaderLen + fr.off, false, aerr
			}
		}
	}
}

// replayWAL applies every record with LSN > after, in LSN order, across
// all segments in dir. A torn tail on the NEWEST segment is the normal
// crash residue and ends replay cleanly; a torn frame in any older segment
// means records known to exist (the next segment's) would be skipped, so
// it is reported as ErrCorrupt instead. Segments entirely at or below
// `after` are skipped without being read.
func replayWAL(dir string, after uint64, apply func(*Record) error) (last uint64, replayed int, torn bool, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, 0, false, err
	}
	if len(segs) > 0 && segs[0].lsn > after+1 {
		// The earliest surviving segment starts beyond what the snapshot
		// covers: records in (after, segs[0].lsn) existed once (compaction
		// only drops a segment when a snapshot at or past its end is
		// durable) but are in neither the snapshot we recovered nor the
		// WAL — typically the newest snapshot was damaged and recovery
		// fell back past what compaction assumed. Serving the survivors as
		// if they were everything would silently report massive data loss
		// as success.
		return after, 0, false, fmt.Errorf(
			"%w: WAL starts at LSN %d but recovery has state only through LSN %d (snapshot covering the gap is missing or invalid)",
			ErrCorrupt, segs[0].lsn, after)
	}
	last = after
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].lsn <= after+1 {
			continue // every record in this segment is ≤ after
		}
		f, err := os.Open(filepath.Join(dir, seg.name))
		if err != nil {
			return last, replayed, false, err
		}
		_, segLast, _, segTorn, err := scanSegment(f, seg.lsn, func(rec *Record) error {
			if rec.LSN <= after {
				return nil
			}
			if err := apply(rec); err != nil {
				return err
			}
			replayed++
			return nil
		})
		f.Close()
		if err != nil {
			return last, replayed, false, err
		}
		if segLast > last {
			last = segLast
		}
		if segTorn {
			if i != len(segs)-1 {
				return last, replayed, false, fmt.Errorf(
					"%w: WAL segment %s has a torn frame but newer segments exist", ErrCorrupt, seg.name)
			}
			return last, replayed, true, nil
		}
	}
	return last, replayed, false, nil
}

// RemoveObsolete deletes snapshots older than keepLSN and WAL segments
// whose every record is already covered by the snapshot at keepLSN (the
// segment's successor starts at or below keepLSN+1). The newest segment is
// always kept — it is the live append target. Called after a successful
// snapshot; failures are returned but the store stays correct without
// compaction, only larger.
func RemoveObsolete(dir string, keepLSN uint64) error {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, lsn := range snaps {
		if lsn < keepLSN {
			if err := os.Remove(filepath.Join(dir, snapName(lsn))); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].lsn <= keepLSN+1 {
			if err := os.Remove(filepath.Join(dir, seg.name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
