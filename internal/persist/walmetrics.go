package persist

import "repro/internal/metrics"

// WALMetrics exposes the WAL's always-on durability histograms. The three
// distributions are the observable shape of the fsync schedule: how long
// each fsync takes, how long Commit callers sat parked on the durable
// watermark, and how many records each group-commit fsync covered (the
// coalescing win group mode exists for). Recording is lock-free
// (internal/metrics) and runs on the hot path under every policy, so a
// server can surface them in INFO without a measurement mode.
type WALMetrics struct {
	// Fsync is the duration of every fsync issued through the WAL's seam
	// (nanoseconds): policy-driven syncs, rotations and the final close.
	Fsync *metrics.Histogram
	// CommitWait is the time Commit callers spent blocked before their LSN
	// became durable (nanoseconds). Commits that found the watermark
	// already past their LSN record nothing.
	CommitWait *metrics.Histogram
	// BatchSize is the number of records each group-syncer fsync made
	// durable — the batch the coalescing window collected. Only the
	// FsyncGroup/FsyncAsync syncer records it.
	BatchSize *metrics.Histogram
}

func newWALMetrics() WALMetrics {
	return WALMetrics{
		Fsync:      metrics.New(),
		CommitWait: metrics.New(),
		BatchSize:  metrics.New(),
	}
}

// Metrics returns the WAL's durability histograms. The histograms are safe
// for concurrent snapshotting while appends continue.
func (w *WAL) Metrics() WALMetrics { return w.met }
