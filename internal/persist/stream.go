package persist

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
)

// This file is the WAL's wire face: the same record framing the segment
// files use, exposed so internal/repl can ship the log over a TCP
// connection. A replication stream is a sequence of record frames —
// identical bytes to what Append writes into a segment, minus the segment
// header — so a replica's applier and crash recovery share one decoder.

// AppendRecordFrame appends one complete record frame (length prefix,
// encoded record, CRC32-C) to dst and returns the extended slice. It is the
// exact bytes Append would write for the same record, so frames from the
// live WAL, from segment files, and from this encoder are interchangeable
// on a replication stream. OpPing frames (wire-only heartbeats, never
// written to segment files) are encoded the same way with an empty set and
// key.
func AppendRecordFrame(dst []byte, op Op, lsn uint64, set string, key []byte, val uint64) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, byte(op))
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = appendUvarint(dst, uint64(len(set)))
	dst = append(dst, set...)
	dst = appendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	if op == OpSet {
		dst = binary.LittleEndian.AppendUint64(dst, val)
	}
	payload := dst[start+4:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
}

// RecordReader decodes a stream of record frames (a replication feed). The
// decoded record's Key aliases an internal buffer reused by the next call;
// callers that retain it must copy.
type RecordReader struct {
	br *bufio.Reader
	fr frameReader
}

// NewRecordReader reads record frames from br. Taking the bufio.Reader
// (not a plain io.Reader) is deliberate: the replication handshake runs
// over RESP first, and the record stream must continue from the same
// buffer or bytes the RESP reader already pulled in would be lost.
func NewRecordReader(br *bufio.Reader) *RecordReader {
	return &RecordReader{br: br, fr: frameReader{r: br}}
}

// Next decodes the next record into rec. io.EOF reports a cleanly closed
// stream at a frame boundary; ErrCorrupt reports a torn or undecodable
// frame (on a live TCP stream that means the connection died mid-frame —
// the caller resyncs by reconnecting, never by skipping bytes).
func (rr *RecordReader) Next(rec *Record) error {
	payload, err := rr.fr.next()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return ErrCorrupt
	}
	if err := decodeRecord(payload, rec); err != nil {
		return ErrCorrupt
	}
	return nil
}

// Buffered reports whether a COMPLETE record frame is already buffered, so
// the next Next cannot block on the network. The replica's applier uses it
// to drain everything the primary already sent into one apply batch
// without withholding acks while waiting for more.
func (rr *RecordReader) Buffered() bool {
	buf, err := rr.br.Peek(rr.br.Buffered())
	if err != nil || len(buf) < 4 {
		return false
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	if n > maxFrameLen {
		return true // torn frame: Next fails on it without blocking
	}
	return uint64(len(buf)) >= uint64(n)+8
}

// DecodeSnapshotStream decodes a snapshot image from r — the full-sync
// payload a primary ships, byte-identical to a snap-<lsn>.snap file — and
// returns its LSN and per-set contents, validated exactly like a snapshot
// file (magic, trailer count and LSN) except for the filename check, which
// a stream does not have.
func DecodeSnapshotStream(r io.Reader) (lsn uint64, sets []SnapshotSet, err error) {
	return decodeSnapshot(r, "snapshot stream")
}

// OldestWALLSN returns the first LSN of the oldest retained WAL segment,
// or ok=false when the directory holds no segments. Replication uses it to
// decide whether a replica's requested LSN can still be served from the
// log (partial sync) or has been compacted away (full sync).
func OldestWALLSN(dir string) (lsn uint64, ok bool) {
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		return 0, false
	}
	return segs[0].lsn, nil == err
}

// ReplayRecords streams every on-disk WAL record with LSN > after, in LSN
// order, to apply — replayWAL without the recovery bookkeeping. The
// replication feed uses it to catch a replica up from segment files when
// the in-memory fan-out buffer has already evicted the records it needs. A
// torn tail on the newest segment ends the stream cleanly (the writer's
// buffer simply has not reached the file yet); a gap below `after+1`
// (compaction outran the reader) reports ErrCorrupt, which the feed treats
// as "fallen behind retention" and resolves with a fresh full sync.
func ReplayRecords(dir string, after uint64, apply func(*Record) error) (last uint64, err error) {
	last, _, _, err = replayWAL(dir, after, apply)
	return last, err
}
