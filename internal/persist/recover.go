package persist

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/index"
)

// Factory builds the index for one recovered set. capacityHint is the
// snapshot's recorded key count for the set (0 for sets born from WAL
// replay alone).
type Factory func(set string, capacityHint int) index.Index

// Result reports what Recover rebuilt.
type Result struct {
	// Sets maps set name → rebuilt index. Empty (not nil) when the
	// directory holds no data.
	Sets map[string]index.Index
	// SnapshotLSN is the LSN of the snapshot that seeded the state (0 when
	// recovery started from an empty state).
	SnapshotLSN uint64
	// SnapshotPath is the snapshot file used, "" when none.
	SnapshotPath string
	// SnapshotKeys is the number of key-value pairs bulk-loaded from it.
	SnapshotKeys int
	// LastLSN is the highest LSN observed in the WAL (or the snapshot LSN
	// when the WAL adds nothing); the next append after recovery gets
	// LastLSN+1.
	LastLSN uint64
	// Replayed is the number of WAL records applied on top of the snapshot.
	Replayed int
	// TornTail reports that the newest WAL segment ended in a torn frame —
	// the normal residue of a crash; everything before it was applied.
	TornTail bool
}

// Recover rebuilds a data directory's state: it loads the newest VALID
// snapshot — each set bulk-loaded through index.BulkLoad, so a sharded
// index with an untrained sampled router derives its shard boundaries from
// the full snapshot stream — then replays every WAL record with LSN above
// the snapshot's, in order. Invalid snapshots (torn, trailer missing,
// checksum-damaged) are skipped in favour of the next older one; the
// MANIFEST is consulted first but never trusted over the file's own
// trailer. A missing or empty directory recovers to the empty state.
//
// Recover is read-only: it never truncates or deletes. Open the WAL for
// appending (OpenWAL repairs the torn tail) only after recovery.
func Recover(dir string, factory Factory) (*Result, error) {
	res := &Result{Sets: map[string]index.Index{}}
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return res, nil
	}

	// 1. Pick the newest valid snapshot: manifest's candidate first, then
	// every snapshot in the directory, newest to oldest.
	var candidates []uint64
	if lsn, ok := readManifest(dir); ok {
		candidates = append(candidates, lsn)
	}
	all, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	for _, lsn := range all {
		if len(candidates) == 0 || lsn != candidates[0] {
			candidates = append(candidates, lsn)
		}
	}
	var sets []SnapshotSet
	for _, lsn := range candidates {
		path := filepath.Join(dir, snapName(lsn))
		slsn, ssets, err := readSnapshot(path)
		if err != nil {
			continue // invalid or unreadable: fall back to an older one
		}
		res.SnapshotLSN, res.SnapshotPath, sets = slsn, path, ssets
		break
	}

	// 2. Bulk-load the snapshot, one BulkLoad per set over its whole
	// stream.
	for _, s := range sets {
		hint := s.LenHint
		if hint < len(s.Keys) {
			hint = len(s.Keys)
		}
		ix := factory(s.Set, hint)
		if _, err := index.BulkLoad(ix, s.Keys, s.Vals); err != nil {
			return nil, fmt.Errorf("persist: bulk-loading snapshot set %q: %w", s.Set, err)
		}
		res.Sets[s.Set] = ix
		res.SnapshotKeys += len(s.Keys)
	}

	// 3. Replay the WAL tail.
	last, replayed, torn, err := replayWAL(dir, res.SnapshotLSN, func(rec *Record) error {
		switch rec.Op {
		case OpSet:
			ix, ok := res.Sets[rec.Set]
			if !ok {
				ix = factory(rec.Set, 0)
				res.Sets[rec.Set] = ix
			}
			_, err := ix.Set(rec.Key, rec.Val)
			return err
		case OpDelete:
			if ix, ok := res.Sets[rec.Set]; ok {
				ix.Delete(rec.Key)
			}
			return nil
		case OpFlushAll:
			clear(res.Sets)
			return nil
		}
		return fmt.Errorf("%w: unknown op %d at LSN %d", ErrCorrupt, rec.Op, rec.LSN)
	})
	if err != nil {
		return nil, err
	}
	res.LastLSN, res.Replayed, res.TornTail = last, replayed, torn
	return res, nil
}

// Keys sums the recovered sets' key counts.
func (r *Result) Keys() int {
	total := 0
	for _, ix := range r.Sets {
		total += ix.Len()
	}
	return total
}

// SaveIndex snapshots a single unnamed index — the single-index form used
// by indextest and the bench harness; servers with a named keyspace use
// WriteSnapshot directly. lsn must cover every WAL record already applied
// to ix (pass wal.LSN(), or 0 when there is no WAL).
func SaveIndex(dir string, lsn uint64, ix index.Index) (string, error) {
	return WriteSnapshot(dir, lsn, []SetSnapshot{{
		Set:     "",
		Cursor:  ix.NewCursor(),
		LenHint: ix.Len(),
	}})
}

// RecoverIndex is Recover for a single unnamed index: it returns the
// rebuilt index (a fresh empty one from mk when the directory holds no
// data) alongside the full Result.
func RecoverIndex(dir string, mk func(capacity int) index.Index) (index.Index, *Result, error) {
	res, err := Recover(dir, func(set string, hint int) index.Index {
		if hint < 16 {
			hint = 16
		}
		return mk(hint)
	})
	if err != nil {
		return nil, nil, err
	}
	ix, ok := res.Sets[""]
	if !ok {
		ix = mk(16)
		res.Sets[""] = ix
	}
	return ix, res, nil
}
