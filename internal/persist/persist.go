// Package persist makes the memory-only engines durable: a point-in-time
// snapshot file serialized through any index.Index's ordered Cursor, a
// segmented append-only write-ahead log, and a recovery path that rebuilds
// the keyspace by bulk-loading the newest valid snapshot and replaying the
// WAL records logged after it.
//
// On-disk layout of a data directory:
//
//	MANIFEST                  points at the current snapshot (text, atomic)
//	snap-<lsn16hex>.snap      snapshot of everything logged at LSN ≤ lsn
//	wal-<lsn16hex>.log        WAL segment whose first record has that LSN
//
// Both file kinds share one frame format: a 4-byte little-endian payload
// length, the payload, and a 4-byte CRC32-C of the payload. A frame that is
// short, over-long, or fails its CRC marks the end of usable data — in the
// newest WAL segment that is the torn tail a crash legitimately leaves
// behind, and recovery keeps every record before it; anywhere else it is
// corruption and recovery reports it instead of silently dropping data.
//
// Durability contract: write operations are logged after they apply
// (Redis-AOF style), so a crash loses at most the unsynced tail permitted
// by the fsync policy — nothing on FsyncAlways, nothing ACKNOWLEDGED on
// FsyncGroup (writers park on WAL.Commit until the group syncer's fsync
// covers their LSN), up to one group cycle past the DurableLSN watermark on
// FsyncAsync, up to a second of writes on FsyncEverySec, up to the OS flush
// interval on FsyncNo. Snapshots are
// written to a temp file, fsynced, and renamed, so a crashed snapshot never
// shadows a good older one; replay after a snapshot at LSN L applies only
// records with LSN > L, and every record type is idempotent, so a record
// landing both in the snapshot (a write that raced the snapshot cursor) and
// in the replayed tail converges to the same state.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// FsyncPolicy says when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncEverySec flushes and fsyncs the WAL about once per second from a
	// background goroutine: a crash loses at most the last second of writes.
	// The Redis AOF default, and the default here.
	FsyncEverySec FsyncPolicy = iota
	// FsyncAlways fsyncs after every append: no acknowledged write is ever
	// lost, at the cost of one fsync per operation (group commit is a noted
	// follow-up).
	FsyncAlways
	// FsyncNo leaves flushing to the OS: fastest, loses up to the kernel's
	// writeback interval on a crash (still nothing on a clean close).
	FsyncNo
	// FsyncGroup is group commit: appends only buffer the record, and a
	// single syncer goroutine coalesces everything buffered since the last
	// sync into one flush+fsync. Writers that need durability park on their
	// record's LSN via WAL.Commit and are woken once the durable watermark
	// passes it — one fsync acknowledges a whole pipeline of writes. An
	// acknowledged (Commit-returned) write is never lost; the cost per
	// writer is at most one group cycle (GroupMaxDelay + one fsync), not
	// one fsync per operation.
	FsyncGroup
	// FsyncAsync is group commit without the wait: the same syncer batches
	// fsyncs continuously, but callers are expected NOT to park on Commit —
	// they acknowledge immediately and expose the DurableLSN watermark
	// (WAIT/INFO style) so clients can see how far durability lags the ack.
	// A crash loses at most the records past the watermark, typically a few
	// milliseconds of writes rather than everysec's full second.
	FsyncAsync
)

// ParseFsyncPolicy maps the ctredis flag spelling to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "everysec":
		return FsyncEverySec, nil
	case "no":
		return FsyncNo, nil
	case "group":
		return FsyncGroup, nil
	case "async":
		return FsyncAsync, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, everysec, no, group or async)", s)
}

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncEverySec:
		return "everysec"
	case FsyncNo:
		return "no"
	case FsyncGroup:
		return "group"
	case FsyncAsync:
		return "async"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Op is a WAL record type.
type Op uint8

const (
	// OpSet maps a key to a value within a set.
	OpSet Op = 1
	// OpDelete removes a key from a set.
	OpDelete Op = 2
	// OpFlushAll drops every set (mini-Redis FLUSHALL). Set and key are
	// empty.
	OpFlushAll Op = 3
	// OpPing is a replication-stream heartbeat: it carries the LSN of the
	// last record shipped on that stream (so an idle replica can still ack
	// and measure lag) and is never written to a WAL segment — it exists
	// only on the wire.
	OpPing Op = 4
)

// Record is one decoded WAL entry.
type Record struct {
	Op  Op
	LSN uint64
	Set string // namespace ("" for single-index stores)
	Key []byte // valid only until the next record is decoded
	Val uint64 // meaningful for OpSet only
}

// ErrCorrupt reports damage recovery cannot safely skip: a bad frame that
// is not the torn tail of the newest WAL segment, or a snapshot whose
// structure is inconsistent. Wrapped errors carry the file and offset.
var ErrCorrupt = errors.New("persist: corrupt data")

// castagnoli is the CRC32-C table shared by snapshot and WAL frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxFrameLen bounds a declared frame length so a torn length prefix never
// forces a giant allocation; snapshot batches and WAL records are far
// smaller by construction.
const maxFrameLen = 1 << 26

// errTorn marks the point where a file stops being decodable: short frame,
// CRC mismatch, or an implausible length. The WAL reader converts it to a
// tolerated end-of-data on the newest segment and to ErrCorrupt elsewhere.
var errTorn = errors.New("persist: torn frame")

// writeFrame appends one length-prefixed CRC-framed payload to w.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(crc[:])
	return err
}

// frameSize is the on-disk size of a frame with an n-byte payload.
func frameSize(n int) int64 { return int64(n) + 8 }

// frameReader decodes frames from a byte stream, reusing one payload
// buffer. It distinguishes a clean end (io.EOF exactly at a frame
// boundary) from a torn frame (errTorn).
type frameReader struct {
	r   io.Reader
	buf []byte
	off int64 // byte offset of the NEXT frame, i.e. bytes cleanly consumed
}

// next returns the next frame's payload, valid until the following call.
// io.EOF means a clean end at a frame boundary; errTorn means the stream
// died mid-frame or the frame failed its CRC.
func (fr *frameReader) next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return nil, errTorn
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return nil, errTorn
	}
	var crcb [4]byte
	if _, err := io.ReadFull(fr.r, crcb[:]); err != nil {
		return nil, errTorn
	}
	if binary.LittleEndian.Uint32(crcb[:]) != crc32.Checksum(fr.buf, castagnoli) {
		return nil, errTorn
	}
	fr.off += frameSize(len(fr.buf))
	return fr.buf, nil
}

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// takeUvarint decodes a uvarint from the front of b, returning the value
// and the remainder, or an error on malformed input.
func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTorn
	}
	return v, b[n:], nil
}

// takeBytes slices n bytes off the front of b.
func takeBytes(b []byte, n uint64) ([]byte, []byte, error) {
	if uint64(len(b)) < n {
		return nil, nil, errTorn
	}
	return b[:n], b[n:], nil
}

// takeU64 decodes a little-endian uint64 off the front of b.
func takeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errTorn
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}
