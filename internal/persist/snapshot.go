package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file layout:
//
//	header (16 bytes, unframed): magic "CTSNAP1\x00" + LSN (u64 LE)
//	set frame:      0x01, uvarint(len(name)), name, u64 key-count hint
//	kv batch frame: 0x02, uvarint(n), n × { uvarint(len(key)), key, u64 val }
//	trailer frame:  0xFF, u64 total kv count, u64 LSN (must match header)
//
// A snapshot is valid only when the header magic matches, the header LSN
// matches the filename, and the trailer's count and LSN check out — an
// interrupted write (which the temp-file rename normally prevents from
// ever being visible) reads as invalid, and recovery falls back to the
// next older snapshot.

const (
	snapMagic     = "CTSNAP1\x00"
	snapHeaderLen = 16

	frameSet     = 0x01
	frameKVBatch = 0x02
	frameTrailer = 0xFF

	// snapBatchKVs bounds how many key-value pairs share one frame: enough
	// to amortize the 8-byte frame overhead and the CRC, small enough that
	// the reader's frame buffer stays modest.
	snapBatchKVs = 512
)

// snapName returns the snapshot filename for a given LSN.
func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// parseSnapName extracts the LSN from a snapshot filename.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
	return lsn, err == nil
}

// KeyValueCursor is the subset of index.Cursor the snapshot writer drives:
// Seek(nil) then Next until invalid. It is satisfied by index.Cursor, kept
// local so the writer has no opinion about the rest of the index API.
type KeyValueCursor interface {
	Seek(start []byte) bool
	Valid() bool
	Key() []byte
	Value() uint64
	Next() bool
	Close()
}

// SetSnapshot names one set's cursor for WriteSnapshot. The writer takes
// ownership of the cursor and closes it.
type SetSnapshot struct {
	Set string
	// Cursor iterates the set in key order. For a consistent point-in-time
	// image the caller either quiesces writers or uses a concurrent-safe
	// engine; keys written while the cursor runs may or may not appear, and
	// recovery converges either way because their WAL records replay
	// idempotently (see the package comment).
	Cursor KeyValueCursor
	// LenHint is recorded in the set frame as the recovery factory's
	// capacity hint (typically Index.Len() at snapshot time; approximate is
	// fine).
	LenHint int
}

// WriteSnapshot serializes the given sets at the given LSN into dir,
// atomically: the data is staged in a temp file, fsynced, renamed to
// snap-<lsn>.snap, and the directory is fsynced; then the MANIFEST is
// pointed at it the same way. Cursors are closed before return. It returns
// the final snapshot path.
func WriteSnapshot(dir string, lsn uint64, sets []SetSnapshot) (string, error) {
	defer func() {
		for _, s := range sets {
			if s.Cursor != nil {
				s.Cursor.Close()
			}
		}
	}()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	final := filepath.Join(dir, snapName(lsn))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	// Best-effort cleanup on any failure path; harmless after success.
	defer os.Remove(tmp)
	defer f.Close()

	bw := bufio.NewWriterSize(f, 1<<16)
	var hdr [snapHeaderLen]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:], lsn)
	if _, err := bw.Write(hdr[:]); err != nil {
		return "", err
	}

	total := uint64(0)
	payload := make([]byte, 0, 1<<14)
	for _, s := range sets {
		payload = payload[:0]
		payload = append(payload, frameSet)
		payload = appendUvarint(payload, uint64(len(s.Set)))
		payload = append(payload, s.Set...)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(s.LenHint))
		if err := writeFrame(bw, payload); err != nil {
			return "", err
		}
		c := s.Cursor
		if c == nil {
			continue
		}
		inBatch := 0
		batch := make([]byte, 0, 1<<14)
		flushBatch := func() error {
			if inBatch == 0 {
				return nil
			}
			payload = payload[:0]
			payload = append(payload, frameKVBatch)
			payload = appendUvarint(payload, uint64(inBatch))
			payload = append(payload, batch...)
			err := writeFrame(bw, payload)
			batch, inBatch = batch[:0], 0
			return err
		}
		for ok := c.Seek(nil); ok; ok = c.Next() {
			k := c.Key()
			batch = appendUvarint(batch, uint64(len(k)))
			batch = append(batch, k...)
			batch = binary.LittleEndian.AppendUint64(batch, c.Value())
			total++
			if inBatch++; inBatch >= snapBatchKVs {
				if err := flushBatch(); err != nil {
					return "", err
				}
			}
		}
		if err := flushBatch(); err != nil {
			return "", err
		}
	}
	payload = payload[:0]
	payload = append(payload, frameTrailer)
	payload = binary.LittleEndian.AppendUint64(payload, total)
	payload = binary.LittleEndian.AppendUint64(payload, lsn)
	if err := writeFrame(bw, payload); err != nil {
		return "", err
	}
	if err := bw.Flush(); err != nil {
		return "", err
	}
	if err := f.Sync(); err != nil {
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	if err := writeManifest(dir, snapName(lsn), lsn); err != nil {
		return "", err
	}
	return final, nil
}

// SnapshotSet is one decoded snapshot section: the whole set's keys and
// values in key order, ready for one index.BulkLoad call (so an untrained
// sampled router sees the complete stream and derives balanced boundaries
// from it).
type SnapshotSet struct {
	Set     string
	LenHint int
	Keys    [][]byte
	Vals    []uint64
}

// readSnapshot decodes and validates a snapshot file. Any structural
// problem — bad magic, LSN mismatch, torn frame, missing or inconsistent
// trailer — returns an error wrapping ErrCorrupt; the caller treats the
// file as invalid and falls back.
func readSnapshot(path string) (lsn uint64, sets []SnapshotSet, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	lsn, sets, err = decodeSnapshot(f, path)
	if err != nil {
		return 0, nil, err
	}
	if nameLSN, ok := parseSnapName(filepath.Base(path)); !ok || nameLSN != lsn {
		return 0, nil, fmt.Errorf("%w: %s: header LSN %d does not match filename", ErrCorrupt, path, lsn)
	}
	return lsn, sets, nil
}

// decodeSnapshot decodes a snapshot image from r; name labels errors (a
// file path, or "snapshot stream" for a replication full sync).
func decodeSnapshot(r io.Reader, name string) (lsn uint64, sets []SnapshotSet, err error) {
	path := name
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: %s: short header", ErrCorrupt, path)
	}
	if !bytes.Equal(hdr[:8], []byte(snapMagic)) {
		return 0, nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	lsn = binary.LittleEndian.Uint64(hdr[8:])

	fr := frameReader{r: br}
	var cur *SnapshotSet
	total := uint64(0)
	sealed := false
	for {
		payload, ferr := fr.next()
		if ferr == io.EOF {
			if !sealed {
				return 0, nil, fmt.Errorf("%w: %s: missing trailer", ErrCorrupt, path)
			}
			return lsn, sets, nil
		}
		if ferr != nil {
			return 0, nil, fmt.Errorf("%w: %s: bad frame at offset %d", ErrCorrupt, path, snapHeaderLen+fr.off)
		}
		if sealed {
			return 0, nil, fmt.Errorf("%w: %s: data after trailer", ErrCorrupt, path)
		}
		if len(payload) == 0 {
			return 0, nil, fmt.Errorf("%w: %s: empty frame", ErrCorrupt, path)
		}
		kind, rest := payload[0], payload[1:]
		switch kind {
		case frameSet:
			nameLen, rest, err := takeUvarint(rest)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %s: bad set frame", ErrCorrupt, path)
			}
			name, rest, err := takeBytes(rest, nameLen)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %s: bad set frame", ErrCorrupt, path)
			}
			hint, _, err := takeU64(rest)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %s: bad set frame", ErrCorrupt, path)
			}
			sets = append(sets, SnapshotSet{Set: string(name), LenHint: int(hint)})
			cur = &sets[len(sets)-1]
		case frameKVBatch:
			if cur == nil {
				return 0, nil, fmt.Errorf("%w: %s: kv batch before any set frame", ErrCorrupt, path)
			}
			n, rest, err := takeUvarint(rest)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %s: bad kv batch", ErrCorrupt, path)
			}
			for i := uint64(0); i < n; i++ {
				var klen uint64
				var kb []byte
				var val uint64
				if klen, rest, err = takeUvarint(rest); err == nil {
					if kb, rest, err = takeBytes(rest, klen); err == nil {
						val, rest, err = takeU64(rest)
					}
				}
				if err != nil {
					return 0, nil, fmt.Errorf("%w: %s: bad kv batch", ErrCorrupt, path)
				}
				// The frame buffer is reused; keys must be copied out.
				cur.Keys = append(cur.Keys, append([]byte(nil), kb...))
				cur.Vals = append(cur.Vals, val)
				total++
			}
		case frameTrailer:
			count, rest, err := takeU64(rest)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %s: bad trailer", ErrCorrupt, path)
			}
			tlsn, _, err := takeU64(rest)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %s: bad trailer", ErrCorrupt, path)
			}
			if count != total || tlsn != lsn {
				return 0, nil, fmt.Errorf("%w: %s: trailer mismatch (count %d vs %d, lsn %d vs %d)",
					ErrCorrupt, path, count, total, tlsn, lsn)
			}
			sealed = true
		default:
			return 0, nil, fmt.Errorf("%w: %s: unknown frame kind %#x", ErrCorrupt, path, kind)
		}
	}
}

// listSnapshots returns the snapshot LSNs present in dir, descending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var lsns []uint64
	for _, e := range ents {
		if lsn, ok := parseSnapName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	return lsns, nil
}

// --- MANIFEST ---
//
// The manifest is a two-line text file naming the current snapshot:
//
//	ctpersist v1
//	snapshot snap-<lsn16hex>.snap lsn <decimal>
//
// It is advisory: recovery prefers it (O(1) instead of probing every
// snapshot), but a missing, stale, or corrupt manifest only costs a
// directory scan — the snapshot trailer remains the source of validity.

const manifestName = "MANIFEST"

func writeManifest(dir, snap string, lsn uint64) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	body := fmt.Sprintf("ctpersist v1\nsnapshot %s lsn %d\n", snap, lsn)
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readManifest returns the manifest's snapshot LSN, or ok=false when the
// manifest is missing or unparseable (never an error: it is advisory).
func readManifest(dir string) (lsn uint64, ok bool) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, false
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 2 || lines[0] != "ctpersist v1" {
		return 0, false
	}
	var snap string
	if _, err := fmt.Sscanf(lines[1], "snapshot %s lsn %d", &snap, &lsn); err != nil {
		return 0, false
	}
	nameLSN, okName := parseSnapName(snap)
	if !okName || nameLSN != lsn {
		return 0, false
	}
	return lsn, true
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
