package persist_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/sharded"
	"repro/internal/skiplist"
)

func mkIndex(capacity int) index.Index { return skiplist.New(7) }

func u64key(v uint64) []byte { return []byte(fmt.Sprintf("k%08d", v)) }

// collect returns an index's full ordered (key, value) stream.
func collect(ix index.Index) []string {
	var out []string
	ix.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
		return true
	})
	return out
}

// assertEqual fails unless a and b hold exactly the same keys and values.
func assertEqual(t *testing.T, a, b index.Index) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len mismatch: %d vs %d", a.Len(), b.Len())
	}
	as, bs := collect(a), collect(b)
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("stream[%d]: %s vs %s", i, as[i], bs[i])
		}
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]persist.FsyncPolicy{
		"always": persist.FsyncAlways, "everysec": persist.FsyncEverySec, "no": persist.FsyncNo,
	} {
		got, err := persist.ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := persist.ParseFsyncPolicy("fsync-maybe"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	res, err := persist.Recover(filepath.Join(t.TempDir(), "never-created"), nil)
	if err != nil || len(res.Sets) != 0 || res.LastLSN != 0 {
		t.Fatalf("missing dir: %+v, %v", res, err)
	}
	dir := t.TempDir()
	ix, res, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil || ix.Len() != 0 || res.SnapshotLSN != 0 {
		t.Fatalf("empty dir: len=%d %+v, %v", ix.Len(), res, err)
	}
}

// TestSnapshotWALRoundtrip is the core durability cycle: apply + log a
// random mixed stream, snapshot mid-way, keep logging, recover, and the
// rebuilt index must be element-for-element identical to the live one.
// The replayed count proves records at or below the snapshot LSN were
// filtered, not re-applied.
func TestSnapshotWALRoundtrip(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	live := mkIndex(0)
	rng := rand.New(rand.NewSource(7))
	apply := func(n int) {
		for i := 0; i < n; i++ {
			k := u64key(uint64(rng.Intn(500)))
			if rng.Intn(4) == 0 && live.Len() > 0 {
				if live.Delete(k) {
					if _, err := wal.Append(persist.OpDelete, "", k, 0); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			v := uint64(rng.Intn(1 << 20))
			if _, err := live.Set(k, v); err != nil {
				t.Fatal(err)
			}
			if _, err := wal.Append(persist.OpSet, "", k, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(1000)
	snapLSN := wal.LSN()
	if _, err := persist.SaveIndex(dir, snapLSN, live); err != nil {
		t.Fatal(err)
	}
	apply(400)
	tail := int(wal.LSN() - snapLSN)
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	got, res, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, live, got)
	if res.SnapshotLSN != snapLSN {
		t.Fatalf("SnapshotLSN = %d, want %d", res.SnapshotLSN, snapLSN)
	}
	if res.Replayed != tail {
		t.Fatalf("Replayed = %d, want only the %d post-snapshot records", res.Replayed, tail)
	}
	if res.LastLSN != snapLSN+uint64(tail) || res.TornTail {
		t.Fatalf("LastLSN=%d TornTail=%v", res.LastLSN, res.TornTail)
	}
}

// TestWALOnlyRecovery: no snapshot at all — the WAL alone rebuilds state.
func TestWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	live := mkIndex(0)
	for i := 0; i < 100; i++ {
		k := u64key(uint64(i))
		live.Set(k, uint64(i))
		if lsn, err := wal.Append(persist.OpSet, "", k, uint64(i)); err != nil || lsn != uint64(i+1) {
			t.Fatalf("Append #%d = lsn %d, %v", i, lsn, err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	got, res, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, live, got)
	if res.Replayed != 100 || res.SnapshotLSN != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestSegmentRotation: a tiny segment threshold forces many segments; LSNs
// stay continuous across them, replay walks them all in order, and after a
// snapshot RemoveObsolete drops exactly the fully-covered ones.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	live := mkIndex(0)
	for i := 0; i < 300; i++ {
		k := u64key(uint64(i))
		live.Set(k, uint64(i))
		if _, err := wal.Append(persist.OpSet, "", k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walSegmentNames(t, dir)
	if len(segs) < 4 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	got, res, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, live, got)
	if res.Replayed != 300 {
		t.Fatalf("Replayed = %d", res.Replayed)
	}

	// Snapshot at the current head, then compact: only the newest segment
	// (the live append target) survives, and recovery still works.
	if _, err := persist.SaveIndex(dir, res.LastLSN, live); err != nil {
		t.Fatal(err)
	}
	if err := persist.RemoveObsolete(dir, res.LastLSN); err != nil {
		t.Fatal(err)
	}
	if left := walSegmentNames(t, dir); len(left) != 1 || left[0] != segs[len(segs)-1] {
		t.Fatalf("compaction left %v, want only %s", left, segs[len(segs)-1])
	}
	got2, res2, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, live, got2)
	if res2.Replayed != 0 {
		t.Fatalf("post-compaction Replayed = %d, want 0 (snapshot covers all)", res2.Replayed)
	}
}

func walSegmentNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// TestTornTailMatrix truncates the WAL at EVERY byte offset of its final
// record and asserts recovery never errors, keeps every prior record, and
// flags the tail as torn whenever the cut lands mid-frame. This is the
// crash model: a record was being written when the machine died.
func TestTornTailMatrix(t *testing.T) {
	// Build a reference WAL once: 20 records, the last with a distinctive
	// key so its absence is checkable.
	master := t.TempDir()
	wal, err := persist.OpenWAL(master, persist.WALOptions{Policy: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := wal.Append(persist.OpSet, "", u64key(uint64(i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walSegmentNames(t, master)
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	full, err := os.ReadFile(filepath.Join(master, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record's start by replaying sizes: every record here
	// is identical-length, so it is (file - header) / n records back.
	recSize := (len(full) - 16) / n
	if 16+recSize*n != len(full) {
		t.Fatalf("unexpected layout: %d bytes, %d-byte records", len(full), recSize)
	}
	lastStart := len(full) - recSize

	for cut := lastStart; cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segs[0]), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res, err := persist.RecoverIndex(dir, mkIndex)
		if err != nil {
			t.Fatalf("cut at %d: recovery errored: %v", cut, err)
		}
		if got.Len() != n-1 {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, got.Len(), n-1)
		}
		if _, ok := got.Get(u64key(n - 1)); ok {
			t.Fatalf("cut at %d: truncated final record resurfaced", cut)
		}
		if _, ok := got.Get(u64key(n - 2)); !ok {
			t.Fatalf("cut at %d: lost an intact prior record", cut)
		}
		wantTorn := cut != lastStart // cutting exactly at the boundary is a clean end
		if res.TornTail != wantTorn {
			t.Fatalf("cut at %d: TornTail = %v, want %v", cut, res.TornTail, wantTorn)
		}
		if res.Replayed != n-1 {
			t.Fatalf("cut at %d: Replayed = %d", cut, res.Replayed)
		}

		// The write path must repair what the read path tolerated: OpenWAL
		// truncates the torn tail and the next append must land and replay.
		w2, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo})
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		lsn, err := w2.Append(persist.OpSet, "", []byte("after-crash"), 777)
		if err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		if lsn != uint64(n) { // record n-1 was torn away, its LSN is reused
			t.Fatalf("cut at %d: post-repair LSN = %d, want %d", cut, lsn, n)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		got2, res2, err := persist.RecoverIndex(dir, mkIndex)
		if err != nil || res2.TornTail {
			t.Fatalf("cut at %d: post-repair recovery: %+v, %v", cut, res2, err)
		}
		if v, ok := got2.Get([]byte("after-crash")); !ok || v != 777 {
			t.Fatalf("cut at %d: post-repair append lost", cut)
		}
	}
}

// TestTornMiddleSegmentIsCorrupt: a torn frame with newer segments after
// it is NOT crash residue — replaying past it would silently drop known
// records, so recovery must refuse.
func TestTornMiddleSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := wal.Append(persist.OpSet, "", u64key(uint64(i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walSegmentNames(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %v", segs)
	}
	// Flip a byte in the middle of the first segment's record area.
	p := filepath.Join(dir, segs[0])
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[16+10] ^= 0xFF
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := persist.RecoverIndex(dir, mkIndex); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("recovery over mid-stream corruption = %v, want ErrCorrupt", err)
	}
}

// TestSnapshotFallback: a damaged newest snapshot (even one the MANIFEST
// points at) is skipped in favour of the next older valid one, and the WAL
// replays from the OLDER snapshot's LSN so nothing is lost.
func TestSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	live := mkIndex(0)
	logSet := func(i int) {
		k := u64key(uint64(i))
		live.Set(k, uint64(i))
		if _, err := wal.Append(persist.OpSet, "", k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		logSet(i)
	}
	oldLSN := wal.LSN()
	if _, err := persist.SaveIndex(dir, oldLSN, live); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 80; i++ {
		logSet(i)
	}
	newLSN := wal.LSN()
	newPath, err := persist.SaveIndex(dir, newLSN, live)
	if err != nil {
		t.Fatal(err)
	}
	for i := 80; i < 90; i++ {
		logSet(i)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage the newest snapshot: lop off its trailer.
	st, err := os.Stat(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newPath, st.Size()-10); err != nil {
		t.Fatal(err)
	}

	got, res, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, live, got)
	if res.SnapshotLSN != oldLSN {
		t.Fatalf("fell back to LSN %d, want %d", res.SnapshotLSN, oldLSN)
	}
	if res.Replayed != int(wal.LSN()-oldLSN) {
		t.Fatalf("Replayed = %d, want %d", res.Replayed, wal.LSN()-oldLSN)
	}

	// With the manifest gone entirely, the directory scan still finds the
	// right state.
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	got2, _, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, live, got2)
}

// TestFlushAllReplay: an OpFlushAll record wipes every set on replay; only
// later writes survive — the ordering FLUSHALL durability depends on.
func TestFlushAllReplay(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := wal.Append(persist.OpSet, "s1", u64key(uint64(i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wal.Append(persist.OpFlushAll, "", nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Append(persist.OpSet, "s2", []byte("survivor"), 1); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := persist.Recover(dir, func(set string, hint int) index.Index { return mkIndex(hint) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 1 || res.Sets["s2"] == nil || res.Sets["s2"].Len() != 1 {
		t.Fatalf("sets after flush replay: %v", res.Sets)
	}
}

// TestNamespacedSnapshot: WriteSnapshot with several named sets recovers
// each into its own index, with the recorded length hints.
func TestNamespacedSnapshot(t *testing.T) {
	dir := t.TempDir()
	a, b := mkIndex(0), mkIndex(0)
	for i := 0; i < 64; i++ {
		a.Set(u64key(uint64(i)), uint64(i))
	}
	for i := 0; i < 16; i++ {
		b.Set([]byte(fmt.Sprintf("b%03d", i)), uint64(i*2))
	}
	_, err := persist.WriteSnapshot(dir, 0, []persist.SetSnapshot{
		{Set: "alpha", Cursor: a.NewCursor(), LenHint: a.Len()},
		{Set: "beta", Cursor: b.NewCursor(), LenHint: b.Len()},
		{Set: "empty", Cursor: mkIndex(0).NewCursor(), LenHint: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	hints := map[string]int{}
	res, err := persist.Recover(dir, func(set string, hint int) index.Index {
		hints[set] = hint
		return mkIndex(hint)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 3 {
		t.Fatalf("recovered %d sets", len(res.Sets))
	}
	assertEqual(t, a, res.Sets["alpha"])
	assertEqual(t, b, res.Sets["beta"])
	if res.Sets["empty"].Len() != 0 {
		t.Fatal("empty set grew keys")
	}
	if hints["alpha"] != 64 || hints["beta"] != 16 {
		t.Fatalf("capacity hints = %v", hints)
	}
}

// TestSampledRouterTrainsFromSnapshotStream: recovering into an empty
// 4-shard index with an UNTRAINED sampled router must train the boundaries
// from the snapshot's bulk-load stream — the recovered index spreads keys
// across shards instead of degenerating to shard 0.
func TestSampledRouterTrainsFromSnapshotStream(t *testing.T) {
	dir := t.TempDir()
	src := mkIndex(0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		k := make([]byte, 1+rng.Intn(18))
		rng.Read(k)
		src.Set(k, uint64(i))
	}
	if _, err := persist.SaveIndex(dir, 0, src); err != nil {
		t.Fatal(err)
	}
	got, _, err := persist.RecoverIndex(dir, func(c int) index.Index {
		return sharded.NewWithRouter(4, c, mkIndex, sharded.NewSampledRouter)
	})
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, src, got)
	sx := got.(*sharded.Index)
	sr := sx.Router().(*sharded.SampledRouter)
	if !sr.Trained() {
		t.Fatal("sampled router not trained by snapshot bulk load")
	}
	lens := sx.ShardLens()
	maxLen, total := 0, 0
	for _, l := range lens {
		total += l
		if l > maxLen {
			maxLen = l
		}
	}
	if ratio := float64(maxLen) / (float64(total) / float64(len(lens))); ratio > 1.5 {
		t.Fatalf("snapshot-trained boundaries unbalanced: shard lens %v (max/mean %.2f)", lens, ratio)
	}
}

// TestFsyncPolicies: every policy survives the append→close→recover cycle;
// everysec's background flusher makes unclosed appends durable within ~1s
// (checked via file growth, not a crash, to keep the test hermetic).
func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []persist.FsyncPolicy{persist.FsyncAlways, persist.FsyncEverySec, persist.FsyncNo, persist.FsyncGroup, persist.FsyncAsync} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if _, err := wal.Append(persist.OpSet, "", u64key(uint64(i)), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := wal.Sync(); err != nil {
				t.Fatal(err)
			}
			// After an explicit Sync the records must be on disk even with
			// the writer still open.
			segs := walSegmentNames(t, dir)
			b, err := os.ReadFile(filepath.Join(dir, segs[0]))
			if err != nil {
				t.Fatal(err)
			}
			if len(b) <= 16 {
				t.Fatalf("policy %v: synced segment still empty", pol)
			}
			if err := wal.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := wal.Append(persist.OpSet, "", []byte("x"), 1); !errors.Is(err, persist.ErrWALClosed) {
				t.Fatalf("append after close = %v", err)
			}
			got, _, err := persist.RecoverIndex(dir, mkIndex)
			if err != nil || got.Len() != 50 {
				t.Fatalf("policy %v: recovered %d, %v", pol, got.Len(), err)
			}
		})
	}
}

// TestFloorLSNAfterSnapshotAheadOfWAL: a crash can leave a durable
// snapshot AHEAD of the on-disk WAL (snapshots fsync immediately; an
// everysec WAL tail may not have made it). Reopening the WAL with the
// recovery result's LastLSN as the floor must keep new LSNs strictly
// above the snapshot's, or post-restart acknowledged writes would be
// filtered out by the NEXT recovery.
func TestFloorLSNAfterSnapshotAheadOfWAL(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	live := mkIndex(0)
	const n = 50
	for i := 0; i < n; i++ {
		k := u64key(uint64(i))
		live.Set(k, uint64(i))
		if _, err := wal.Append(persist.OpSet, "", k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot at LSN 50 — durable. Then simulate the lost unsynced WAL
	// tail: truncate the segment back to 40 records.
	if _, err := persist.SaveIndex(dir, n, live); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walSegmentNames(t, dir)
	segPath := filepath.Join(dir, segs[0])
	b, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	recSize := (len(b) - 16) / n
	if err := os.Truncate(segPath, int64(16+recSize*40)); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery state comes from the snapshot (LastLSN 50).
	got, res, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil || got.Len() != n || res.LastLSN != n {
		t.Fatalf("recovery after lost tail: len=%d res=%+v err=%v", got.Len(), res, err)
	}
	w2, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo, FloorLSN: res.LastLSN})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w2.Append(persist.OpSet, "", []byte("post-restart"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != n+1 {
		t.Fatalf("post-restart LSN = %d, want %d (snapshot-covered LSN reused)", lsn, n+1)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got2.Get([]byte("post-restart")); !ok {
		t.Fatal("acknowledged post-restart write lost to LSN reuse")
	}
	if got2.Len() != n+1 {
		t.Fatalf("final Len = %d, want %d", got2.Len(), n+1)
	}
}

// TestRecoverDetectsLSNGap: once compaction has dropped WAL segments a
// snapshot covers, that snapshot is the only copy of their records. If it
// is later damaged, recovery must refuse (the surviving WAL starts past
// the state it has) rather than serve the tail as if it were everything.
func TestRecoverDetectsLSNGap(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	live := mkIndex(0)
	for i := 0; i < 200; i++ {
		k := u64key(uint64(i))
		live.Set(k, uint64(i))
		if _, err := wal.Append(persist.OpSet, "", k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lsn := wal.LSN()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath, err := persist.SaveIndex(dir, lsn, live)
	if err != nil {
		t.Fatal(err)
	}
	if err := persist.RemoveObsolete(dir, lsn); err != nil {
		t.Fatal(err)
	}
	// Damage the now-only snapshot.
	st, err := os.Stat(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snapPath, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := persist.RecoverIndex(dir, mkIndex); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("recovery with a gapped WAL = %v, want ErrCorrupt", err)
	}
}

// TestSnapshotRejectsGarbage: random junk with a snapshot filename is
// invalid, never fatal, and never shadows the WAL's data.
func TestSnapshotRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	wal, err := persist.OpenWAL(dir, persist.WALOptions{Policy: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Append(persist.OpSet, "", []byte("real"), 9); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xAB}, 200)
	if err := os.WriteFile(filepath.Join(dir, "snap-00000000000000ff.snap"), junk, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res, err := persist.RecoverIndex(dir, mkIndex)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotLSN != 0 || got.Len() != 1 {
		t.Fatalf("garbage snapshot was believed: %+v len=%d", res, got.Len())
	}
}
