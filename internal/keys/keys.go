// Package keys converts byte-string keys into the 5-bit symbol streams used
// by the Cuckoo Trie, and provides order-preserving key encoders for common
// fixed-width types.
//
// The paper configures the Cuckoo Trie with 5-bit symbols (§6.1). A key of n
// bytes is viewed as a bit string (MSB first) and cut into ⌈8n/5⌉ symbols;
// the final symbol is zero-padded. Every key is then terminated with an extra
// terminator symbol so that no key's symbol sequence is a prefix of another
// key's (the paper's trie stores unique prefixes, which requires this
// property, cf. §4).
//
// To keep the symbol order consistent with byte-lexicographic key order even
// in the presence of zero padding, data symbols are shifted up by one
// (values 1..32) and the terminator is symbol 0, the minimum. With this
// encoding:
//
//   - distinct keys have distinct symbol sequences,
//   - no sequence is a proper prefix of another, and
//   - lexicographic order on symbol sequences equals lexicographic order on
//     the original byte strings.
package keys

import "encoding/binary"

const (
	// SymbolBits is the number of payload bits per symbol.
	SymbolBits = 5
	// Terminator is the symbol appended to every key. It is the minimum
	// symbol value so that a key sorts before all of its extensions.
	Terminator = 0
	// MinData and MaxData bound the shifted data symbol values.
	MinData = 1
	MaxData = 32
	// AlphabetSize is the number of distinct symbols (terminator included).
	AlphabetSize = 33
)

// NumSymbols returns the number of symbols in the encoding of k, including
// the trailing terminator.
func NumSymbols(k []byte) int {
	return (8*len(k)+SymbolBits-1)/SymbolBits + 1
}

// DataSymbols returns the number of non-terminator symbols of k.
func DataSymbols(k []byte) int {
	return (8*len(k) + SymbolBits - 1) / SymbolBits
}

// SymbolAt returns the i'th symbol of k. It panics if i is out of range.
// Data symbols are in [MinData, MaxData]; the final symbol is Terminator.
func SymbolAt(k []byte, i int) byte {
	data := (8*len(k) + SymbolBits - 1) / SymbolBits
	if i == data {
		return Terminator
	}
	if i < 0 || i > data {
		panic("keys: symbol index out of range")
	}
	bit := i * SymbolBits
	idx := bit >> 3
	off := uint(bit & 7)
	v := uint16(k[idx]) << 8
	if idx+1 < len(k) {
		v |= uint16(k[idx+1])
	}
	return byte((v>>(11-off))&0x1f) + MinData
}

// AppendSymbols appends the full symbol sequence of k (terminator included)
// to dst and returns the extended slice.
func AppendSymbols(dst []byte, k []byte) []byte {
	n := NumSymbols(k)
	for i := 0; i < n; i++ {
		dst = append(dst, SymbolAt(k, i))
	}
	return dst
}

// CommonPrefixLen returns the length (in symbols) of the longest common
// prefix of the symbol sequences of a and b.
func CommonPrefixLen(a, b []byte) int {
	na, nb := NumSymbols(a), NumSymbols(b)
	n := na
	if nb < n {
		n = nb
	}
	for i := 0; i < n; i++ {
		if SymbolAt(a, i) != SymbolAt(b, i) {
			return i
		}
	}
	return n
}

// CompareSymbols compares a and b by their symbol sequences, returning
// -1, 0, or +1. It must agree with bytes.Compare; this is checked by the
// package's property tests.
func CompareSymbols(a, b []byte) int {
	na, nb := NumSymbols(a), NumSymbols(b)
	n := na
	if nb < n {
		n = nb
	}
	for i := 0; i < n; i++ {
		sa, sb := SymbolAt(a, i), SymbolAt(b, i)
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		}
	}
	switch {
	case na < nb:
		return -1
	case na > nb:
		return 1
	}
	return 0
}

// Uint64Key encodes v as an 8-byte big-endian key whose byte order matches
// numeric order.
func Uint64Key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Uint64FromKey decodes a key produced by Uint64Key.
func Uint64FromKey(k []byte) uint64 {
	return binary.BigEndian.Uint64(k)
}

// AppendUint64Key appends the big-endian encoding of v to dst.
func AppendUint64Key(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}
