package keys

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNumSymbols(t *testing.T) {
	cases := []struct {
		n    int // key length in bytes
		want int // symbols incl. terminator
	}{
		{0, 1}, {1, 3}, {2, 5}, {3, 6}, {4, 8}, {5, 9}, {8, 14}, {10, 17}, {16, 27},
	}
	for _, c := range cases {
		k := make([]byte, c.n)
		if got := NumSymbols(k); got != c.want {
			t.Errorf("NumSymbols(len %d) = %d, want %d", c.n, got, c.want)
		}
		if got := DataSymbols(k); got != c.want-1 {
			t.Errorf("DataSymbols(len %d) = %d, want %d", c.n, got, c.want-1)
		}
	}
}

func TestSymbolAtKnown(t *testing.T) {
	// 0xFF 0x00 = bits 11111111 00000000 -> 11111 111|00 00000|0 pad
	k := []byte{0xff, 0x00}
	want := []byte{31 + MinData, 28 + MinData, 0 + MinData, 0 + MinData, Terminator}
	got := AppendSymbols(nil, k)
	if !bytes.Equal(got, want) {
		t.Fatalf("symbols(%x) = %v, want %v", k, got, want)
	}
}

func TestSymbolRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := make([]byte, rng.Intn(20))
		rng.Read(k)
		n := NumSymbols(k)
		for i := 0; i < n-1; i++ {
			s := SymbolAt(k, i)
			if s < MinData || s > MaxData {
				t.Fatalf("data symbol %d of %x out of range: %d", i, k, s)
			}
		}
		if SymbolAt(k, n-1) != Terminator {
			t.Fatalf("last symbol of %x is not terminator", k)
		}
	}
}

func TestSymbolAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	SymbolAt([]byte{1}, 99)
}

// Property: symbol-sequence order equals byte-lexicographic order.
func TestOrderPreservation(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		return CompareSymbols(a, b) == bytes.Compare(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct keys yield distinct symbol sequences, and no sequence is
// a proper prefix of another.
func TestNoPrefixProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		sa := AppendSymbols(nil, a)
		sb := AppendSymbols(nil, b)
		if bytes.Equal(sa, sb) {
			return false
		}
		if len(sa) <= len(sb) && bytes.Equal(sa, sb[:len(sa)]) {
			return false
		}
		if len(sb) < len(sa) && bytes.Equal(sb, sa[:len(sb)]) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the terminator appears exactly once, at the end.
func TestTerminatorOnlyAtEnd(t *testing.T) {
	f := func(k []byte) bool {
		syms := AppendSymbols(nil, k)
		for i, s := range syms {
			if (s == Terminator) != (i == len(syms)-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := []byte("hello world")
	b := []byte("hello there")
	got := CommonPrefixLen(a, b)
	// Shared bytes: "hello " = 6 bytes = 48 bits; symbols diverge at or after
	// floor(48/5) = 9 full shared symbols... compute via reference.
	sa := AppendSymbols(nil, a)
	sb := AppendSymbols(nil, b)
	want := 0
	for want < len(sa) && want < len(sb) && sa[want] == sb[want] {
		want++
	}
	if got != want {
		t.Fatalf("CommonPrefixLen = %d, want %d", got, want)
	}
	if got := CommonPrefixLen(a, a); got != NumSymbols(a) {
		t.Fatalf("CommonPrefixLen(a,a) = %d, want %d", got, NumSymbols(a))
	}
}

func TestUint64KeyRoundTripAndOrder(t *testing.T) {
	f := func(x, y uint64) bool {
		kx, ky := Uint64Key(x), Uint64Key(y)
		if Uint64FromKey(kx) != x {
			return false
		}
		c := bytes.Compare(kx, ky)
		switch {
		case x < y:
			return c < 0
		case x > y:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendUint64Key(t *testing.T) {
	got := AppendUint64Key([]byte{0xaa}, 0x0102030405060708)
	want := []byte{0xaa, 1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
}

func BenchmarkSymbolAt(b *testing.B) {
	k := []byte("benchmark-key-16")
	n := NumSymbols(k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SymbolAt(k, i%n)
	}
}
