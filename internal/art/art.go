// Package art implements the Adaptive Radix Tree (Leis et al., ICDE'13)
// with optimistic lock coupling (Leis et al., DaMoN'16) — the paper's
// "ARTOLC" baseline (§6.1). Inner nodes adapt among 4/16/48/256-way
// layouts; single-child chains are path-compressed into node prefixes.
//
// Readers are lock-free: they validate per-node versions after every racy
// read (the OLC protocol). To stay race-detector-clean in Go, all fields a
// reader may touch are accessed through atomics: child pointers, packed key
// bytes, prefixes (replaced wholesale behind an atomic pointer), and child
// counts.
package art

import "sync/atomic"

// node kinds
const (
	kind4 = iota
	kind16
	kind48
	kind256
	kindLeaf
)

// version word: bit 0 = locked, bit 1 = obsolete, rest = counter.
const (
	vLocked   = 1
	vObsolete = 2
)

type node struct {
	version atomic.Uint64
	kind    uint8

	// Inner-node fields.
	prefix   atomic.Pointer[[]byte]
	leafHere atomic.Pointer[node] // leaf whose key ends exactly at this node
	num      atomic.Int32
	keyWords [2]uint64   // kind4/16: packed child key bytes (atomic)
	idx      *[32]uint64 // kind48: 256-byte child index (0=empty, else slot+1)
	children []atomic.Pointer[node]

	// Leaf fields (kindLeaf).
	key []byte
	val atomic.Uint64
}

func newInner(kind uint8, prefix []byte) *node {
	n := &node{kind: kind}
	p := append([]byte(nil), prefix...)
	n.prefix.Store(&p)
	switch kind {
	case kind4:
		n.children = make([]atomic.Pointer[node], 4)
	case kind16:
		n.children = make([]atomic.Pointer[node], 16)
	case kind48:
		n.children = make([]atomic.Pointer[node], 48)
		n.idx = new([32]uint64)
	case kind256:
		n.children = make([]atomic.Pointer[node], 256)
	}
	return n
}

func newLeaf(key []byte, val uint64) *node {
	l := &node{kind: kindLeaf, key: append([]byte(nil), key...)}
	l.val.Store(val)
	return l
}

// --- OLC primitives ---

func (n *node) rVersion() (uint64, bool) {
	for spin := 0; spin < 4096; spin++ {
		v := n.version.Load()
		if v&vLocked == 0 {
			return v, v&vObsolete == 0
		}
	}
	return 0, false
}

func (n *node) check(v uint64) bool { return n.version.Load() == v }

func (n *node) upgrade(v uint64) bool {
	return n.version.CompareAndSwap(v, v|vLocked)
}

func (n *node) unlock()         { n.version.Add(4 - vLocked) }
func (n *node) unlockObsolete() { n.version.Add(4 - vLocked + vObsolete) }

// --- packed key-byte helpers (kind4/16) ---

func (n *node) keyAt(i int) byte {
	w := atomic.LoadUint64(&n.keyWords[i>>3])
	return byte(w >> (uint(i&7) * 8))
}

func (n *node) setKeyAt(i int, b byte) {
	w := atomic.LoadUint64(&n.keyWords[i>>3])
	sh := uint(i&7) * 8
	w = w&^(0xff<<sh) | uint64(b)<<sh
	atomic.StoreUint64(&n.keyWords[i>>3], w)
}

// --- child access (readers must validate the version afterwards) ---

func (n *node) findChild(b byte) *node {
	switch n.kind {
	case kind4, kind16:
		num := int(n.num.Load())
		for i := 0; i < num && i < len(n.children); i++ {
			if n.keyAt(i) == b {
				return n.children[i].Load()
			}
		}
	case kind48:
		w := atomic.LoadUint64(&n.idx[b>>3])
		slot := byte(w >> (uint(b&7) * 8))
		if slot != 0 {
			return n.children[slot-1].Load()
		}
	case kind256:
		return n.children[b].Load()
	}
	return nil
}

// addChild inserts under lock. Caller guarantees space.
func (n *node) addChild(b byte, c *node) {
	switch n.kind {
	case kind4, kind16:
		i := int(n.num.Load())
		n.children[i].Store(c)
		n.setKeyAt(i, b)
		n.num.Add(1)
	case kind48:
		// Slots can have holes after removals: find a free one.
		i := -1
		for s := range n.children {
			if n.children[s].Load() == nil {
				i = s
				break
			}
		}
		n.children[i].Store(c)
		w := atomic.LoadUint64(&n.idx[b>>3])
		sh := uint(b&7) * 8
		w = w&^(0xff<<sh) | uint64(i+1)<<sh
		atomic.StoreUint64(&n.idx[b>>3], w)
		n.num.Add(1)
	case kind256:
		n.children[b].Store(c)
		n.num.Add(1)
	}
}

func (n *node) full() bool {
	switch n.kind {
	case kind4:
		return n.num.Load() >= 4
	case kind16:
		return n.num.Load() >= 16
	case kind48:
		return n.num.Load() >= 48
	}
	return false
}

// grown returns a copy of n with the next larger kind.
func (n *node) grown() *node {
	var g *node
	switch n.kind {
	case kind4:
		g = newInner(kind16, *n.prefix.Load())
	case kind16:
		g = newInner(kind48, *n.prefix.Load())
	case kind48:
		g = newInner(kind256, *n.prefix.Load())
	default:
		panic("art: grow of node256")
	}
	g.leafHere.Store(n.leafHere.Load())
	n.forEachChild(func(b byte, c *node) { g.addChild(b, c) })
	return g
}

// forEachChild visits children in ascending key-byte order. Caller must hold
// the lock or tolerate races.
func (n *node) forEachChild(fn func(b byte, c *node)) {
	switch n.kind {
	case kind4, kind16:
		num := int(n.num.Load())
		type kv struct {
			b byte
			c *node
		}
		var tmp [16]kv
		cnt := 0
		for i := 0; i < num; i++ {
			c := n.children[i].Load()
			if c != nil {
				tmp[cnt] = kv{n.keyAt(i), c}
				cnt++
			}
		}
		for i := 1; i < cnt; i++ {
			for j := i; j > 0 && tmp[j-1].b > tmp[j].b; j-- {
				tmp[j-1], tmp[j] = tmp[j], tmp[j-1]
			}
		}
		for i := 0; i < cnt; i++ {
			fn(tmp[i].b, tmp[i].c)
		}
	case kind48:
		for b := 0; b < 256; b++ {
			w := atomic.LoadUint64(&n.idx[b>>3])
			slot := byte(w >> (uint(b&7) * 8))
			if slot != 0 {
				if c := n.children[slot-1].Load(); c != nil {
					fn(byte(b), c)
				}
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			if c := n.children[b].Load(); c != nil {
				fn(byte(b), c)
			}
		}
	}
}

// removeChild removes the entry for byte b under lock.
func (n *node) removeChild(b byte) {
	switch n.kind {
	case kind4, kind16:
		num := int(n.num.Load())
		for i := 0; i < num; i++ {
			if n.keyAt(i) == b {
				last := num - 1
				n.children[i].Store(n.children[last].Load())
				n.setKeyAt(i, n.keyAt(last))
				n.children[last].Store(nil)
				n.num.Add(-1)
				return
			}
		}
	case kind48:
		w := atomic.LoadUint64(&n.idx[b>>3])
		sh := uint(b&7) * 8
		slot := byte(w >> sh)
		if slot == 0 {
			return
		}
		n.children[slot-1].Store(nil)
		atomic.StoreUint64(&n.idx[b>>3], w&^(0xff<<sh))
		n.num.Add(-1)
	case kind256:
		if n.children[b].Load() != nil {
			n.children[b].Store(nil)
			n.num.Add(-1)
		}
	}
}
