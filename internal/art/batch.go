package art

import "repro/internal/index"

// Index v2 batch and cursor operations, satisfied with the shared loop-based
// fallbacks: this engine's probes are dependent memory accesses, so there is
// no cross-key MLP to harvest by interleaving them (unlike the Cuckoo Trie).

// MultiGet implements index.Index with one Get per key.
func (t *Tree) MultiGet(keys [][]byte, vals []uint64, found []bool) {
	index.FallbackMultiGet(t, keys, vals, found)
}

// MultiSet implements index.Index with one Set per key.
func (t *Tree) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	return index.FallbackMultiSet(t, keys, vals, errs)
}

// NewCursor implements index.Index with a paginated cursor over Scan.
func (t *Tree) NewCursor() index.Cursor { return index.NewScanCursor(t) }
