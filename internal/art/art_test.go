package art

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBasic(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("empty tree found key")
	}
	keys := []string{"a", "ab", "abc", "b", "ba", "hello", "hell", "help", "", "zzzz"}
	for i, k := range keys {
		if _, err := tr.Set([]byte(k), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		if v, ok := tr.Get([]byte(k)); !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v want %d", k, v, ok, i)
		}
	}
	if _, ok := tr.Get([]byte("he")); ok {
		t.Fatal("found absent key")
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Set([]byte("hello"), 99)
	if v, _ := tr.Get([]byte("hello")); v != 99 {
		t.Fatal("update failed")
	}
	if tr.Len() != len(keys) {
		t.Fatal("update changed Len")
	}
}

func TestNodeGrowth(t *testing.T) {
	// Fan a single node through 4 → 16 → 48 → 256.
	tr := New()
	for i := 0; i < 256; i++ {
		k := []byte{'p', byte(i)}
		if _, err := tr.Set(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 256; i++ {
		if v, ok := tr.Get([]byte{'p', byte(i)}); !ok || v != uint64(i) {
			t.Fatalf("Get(p%d) = %d,%v", i, v, ok)
		}
	}
}

func TestRandomModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	model := map[string]uint64{}
	for i := 0; i < 20000; i++ {
		k := make([]byte, 1+rng.Intn(20))
		rng.Read(k)
		model[string(k)] = uint64(i)
		tr.Set(k, uint64(i))
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(model))
	}
	for k, v := range model {
		if got, ok := tr.Get([]byte(k)); !ok || got != v {
			t.Fatalf("Get(%x) = %d,%v want %d", k, got, ok, v)
		}
	}
	// Full ordered scan equals the sorted model.
	var want []string
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	tr.Scan(nil, 1<<30, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan yielded %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %x, want %x", i, got[i], want[i])
		}
	}
}

func TestScanBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i*2))
		tr.Set(k[:], uint64(i*2))
	}
	var got []uint64
	start := make([]byte, 8)
	binary.BigEndian.PutUint64(start, 31)
	tr.Scan(start, 5, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	want := []uint64{32, 34, 36, 38, 40}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i))
		tr.Set(k[:], uint64(i))
	}
	for i := 0; i < 1000; i += 2 {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i))
		if !tr.Delete(k[:]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i))
		_, ok := tr.Get(k[:])
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) = %v", i, ok)
		}
	}
}

func TestConcurrent(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	workers := 8
	per := 5000
	if testing.Short() {
		per = 500
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				var k [8]byte
				binary.BigEndian.PutUint64(k[:], uint64(w)<<40|uint64(rng.Int63n(1<<32)))
				tr.Set(k[:], uint64(w))
				tr.Get(k[:])
			}
		}(w)
	}
	// Concurrent scanners.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 20; r++ {
			var prev []byte
			tr.Scan(nil, 100000, func(k []byte, v uint64) bool {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Errorf("scan out of order")
					return false
				}
				prev = append(prev[:0], k...)
				return true
			})
		}
	}()
	wg.Wait()
	// Verify all keys.
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < per; i++ {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], uint64(w)<<40|uint64(rng.Int63n(1<<32)))
			if _, ok := tr.Get(k[:]); !ok {
				t.Fatalf("worker %d key missing", w)
			}
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], rand.Uint64())
		tr.Set(k[:], 1)
	}
	m := tr.MemoryOverheadBytes()
	perKey := float64(m) / float64(tr.Len())
	if perKey < 8 || perKey > 500 {
		t.Fatalf("implausible bytes/key: %.1f", perKey)
	}
}
