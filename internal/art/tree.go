package art

import (
	"bytes"
	"sync/atomic"
)

// Tree is a concurrently-usable adaptive radix tree (ARTOLC).
type Tree struct {
	root *node // fixed kind256 root: never replaced, simplifying OLC
	size atomic.Int64
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: newInner(kind256, nil)}
}

// Name implements index.Index.
func (t *Tree) Name() string { return "ARTOLC" }

// Len returns the number of stored keys.
func (t *Tree) Len() int { return int(t.size.Load()) }

// ConcurrentSafe implements index.Concurrent.
func (t *Tree) ConcurrentSafe() bool { return true }

// commonPrefix returns the length of the longest common prefix of a and b.
func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) (uint64, bool) {
restart:
	n := t.root
	v, ok := n.rVersion()
	if !ok {
		goto restart
	}
	depth := 0
	for {
		prefix := *n.prefix.Load()
		if len(prefix) > 0 {
			if len(key)-depth < len(prefix) || !bytes.Equal(key[depth:depth+len(prefix)], prefix) {
				if !n.check(v) {
					goto restart
				}
				return 0, false
			}
			depth += len(prefix)
		}
		if depth == len(key) {
			l := n.leafHere.Load()
			if !n.check(v) {
				goto restart
			}
			if l == nil {
				return 0, false
			}
			return l.val.Load(), true
		}
		b := key[depth]
		child := n.findChild(b)
		if !n.check(v) {
			goto restart
		}
		if child == nil {
			return 0, false
		}
		if child.kind == kindLeaf {
			val := child.val.Load()
			match := bytes.Equal(child.key, key)
			if !n.check(v) {
				goto restart
			}
			if !match {
				return 0, false
			}
			return val, true
		}
		cv, cok := child.rVersion()
		if !cok || !n.check(v) {
			goto restart
		}
		n, v = child, cv
		depth++
	}
}

// Set inserts or updates key. added reports whether key was newly inserted.
func (t *Tree) Set(key []byte, value uint64) (added bool, err error) {
restart:
	var parent *node
	var pv uint64
	var pb byte
	n := t.root
	v, ok := n.rVersion()
	if !ok {
		goto restart
	}
	depth := 0
	for {
		prefix := *n.prefix.Load()
		cpl := commonPrefix(prefix, key[depth:])
		if cpl < len(prefix) {
			// Split the prefix: a new node4 holds the common part, with the
			// old node (suffix prefix) and the new branch below it.
			if parent == nil {
				goto restart // root has an empty prefix; cannot happen
			}
			if !parent.upgrade(pv) {
				goto restart
			}
			if !n.upgrade(v) {
				parent.unlock()
				goto restart
			}
			nn := newInner(kind4, prefix[:cpl])
			suffix := append([]byte(nil), prefix[cpl+1:]...)
			branchByte := prefix[cpl]
			nn.addChild(branchByte, n)
			if depth+cpl == len(key) {
				nn.leafHere.Store(newLeaf(key, value))
			} else {
				nn.addChild(key[depth+cpl], newLeaf(key, value))
			}
			n.prefix.Store(&suffix)
			parent.swapChild(pb, nn)
			n.unlock()
			parent.unlock()
			t.size.Add(1)
			return true, nil
		}
		depth += cpl
		if depth == len(key) {
			// Key terminates at this node.
			if !n.upgrade(v) {
				goto restart
			}
			if l := n.leafHere.Load(); l != nil {
				l.val.Store(value)
				n.unlock()
				return false, nil
			}
			n.leafHere.Store(newLeaf(key, value))
			n.unlock()
			t.size.Add(1)
			return true, nil
		}
		b := key[depth]
		child := n.findChild(b)
		if !n.check(v) {
			goto restart
		}
		if child == nil {
			if n.full() {
				// Grow: replace n in its parent with a larger copy.
				if parent == nil {
					goto restart // root is kind256, never full
				}
				if !parent.upgrade(pv) {
					goto restart
				}
				if !n.upgrade(v) {
					parent.unlock()
					goto restart
				}
				g := n.grown()
				g.addChild(b, newLeaf(key, value))
				parent.swapChild(pb, g)
				n.unlockObsolete()
				parent.unlock()
				t.size.Add(1)
				return true, nil
			}
			if !n.upgrade(v) {
				goto restart
			}
			if c2 := n.findChild(b); c2 != nil {
				n.unlock()
				goto restart
			}
			n.addChild(b, newLeaf(key, value))
			n.unlock()
			t.size.Add(1)
			return true, nil
		}
		if child.kind == kindLeaf {
			if !n.upgrade(v) {
				goto restart
			}
			if bytes.Equal(child.key, key) {
				child.val.Store(value)
				n.unlock()
				return false, nil
			}
			// Replace the leaf with an inner node holding both keys.
			lk := child.key
			cp := commonPrefix(lk[depth+1:], key[depth+1:])
			nn := newInner(kind4, key[depth+1:depth+1+cp])
			d2 := depth + 1 + cp
			switch {
			case d2 == len(key):
				nn.leafHere.Store(newLeaf(key, value))
				nn.addChild(lk[d2], child)
			case d2 == len(lk):
				nn.leafHere.Store(child)
				nn.addChild(key[d2], newLeaf(key, value))
			default:
				nn.addChild(key[d2], newLeaf(key, value))
				nn.addChild(lk[d2], child)
			}
			n.swapChild(b, nn)
			n.unlock()
			t.size.Add(1)
			return true, nil
		}
		cv, cok := child.rVersion()
		if !cok || !n.check(v) {
			goto restart
		}
		parent, pv, pb = n, v, b
		n, v = child, cv
		depth++
	}
}

// swapChild replaces the child for byte b. Caller holds the lock.
func (n *node) swapChild(b byte, c *node) {
	switch n.kind {
	case kind4, kind16:
		num := int(n.num.Load())
		for i := 0; i < num; i++ {
			if n.keyAt(i) == b {
				n.children[i].Store(c)
				return
			}
		}
	case kind48:
		w := atomic.LoadUint64(&n.idx[b>>3])
		slot := byte(w >> (uint(b&7) * 8))
		if slot != 0 {
			n.children[slot-1].Store(c)
		}
	case kind256:
		n.children[b].Store(c)
	}
}

// Delete removes key. Nodes are not merged or shrunk (the evaluated
// workloads are insert/lookup/scan dominated, as in the paper).
func (t *Tree) Delete(key []byte) bool {
restart:
	n := t.root
	v, ok := n.rVersion()
	if !ok {
		goto restart
	}
	depth := 0
	for {
		prefix := *n.prefix.Load()
		cpl := commonPrefix(prefix, key[depth:])
		if cpl < len(prefix) {
			if !n.check(v) {
				goto restart
			}
			return false
		}
		depth += cpl
		if depth == len(key) {
			if !n.upgrade(v) {
				goto restart
			}
			l := n.leafHere.Load()
			if l == nil {
				n.unlock()
				return false
			}
			n.leafHere.Store(nil)
			n.unlock()
			t.size.Add(-1)
			return true
		}
		b := key[depth]
		child := n.findChild(b)
		if !n.check(v) {
			goto restart
		}
		if child == nil {
			return false
		}
		if child.kind == kindLeaf {
			if !n.upgrade(v) {
				goto restart
			}
			if !bytes.Equal(child.key, key) {
				n.unlock()
				return false
			}
			n.removeChild(b)
			n.unlock()
			t.size.Add(-1)
			return true
		}
		cv, cok := child.rVersion()
		if !cok || !n.check(v) {
			goto restart
		}
		n, v = child, cv
		depth++
	}
}
