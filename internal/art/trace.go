package art

import (
	"bytes"
	"reflect"
)

// LookupLevels returns the cache lines a lookup touches, one slice per tree
// level — serial pointer chasing: each level's address comes from the
// previous level (§3.2). Node addresses are the Go pointers themselves, so
// the simulator's LRU cache sees the real sharing of hot top levels. Wide
// nodes span multiple lines; the lines of one node can overlap.
func (t *Tree) LookupLevels(key []byte) [][]uint64 {
	var levels [][]uint64
	n := t.root
	depth := 0
	for n != nil {
		addr := uint64(reflect.ValueOf(n).Pointer())
		lines := []uint64{addr / 64}
		switch n.kind {
		case kind16:
			lines = append(lines, addr/64+1)
		case kind48:
			lines = append(lines, addr/64+1, addr/64+2)
		case kind256:
			// 256 pointers = 32 lines; a lookup touches the header + the
			// child slot's line.
			lines = append(lines, addr/64+1+uint64(0))
			if depth < len(key) {
				lines = append(lines, addr/64+2+uint64(key[depth])/8)
			}
		case kindLeaf:
			levels = append(levels, []uint64{addr / 64})
			return levels
		}
		levels = append(levels, lines)
		prefix := *n.prefix.Load()
		if len(prefix) > 0 {
			if len(key)-depth < len(prefix) || !bytes.Equal(key[depth:depth+len(prefix)], prefix) {
				return levels
			}
			depth += len(prefix)
		}
		if depth >= len(key) {
			if l := n.leafHere.Load(); l != nil {
				levels = append(levels, []uint64{uint64(reflect.ValueOf(l).Pointer()) / 64})
			}
			return levels
		}
		n = n.findChild(key[depth])
		depth++
	}
	return levels
}
