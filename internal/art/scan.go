package art

import "bytes"

// Range scans walk the radix tree in key order with optimistic validation:
// any version conflict restarts the scan at the last emitted key. Like the
// paper's indexes, scans are not atomic with concurrent writers (§5).

type scanStatus int

const (
	scanOK scanStatus = iota
	scanStop
	scanRetry
)

// Scan visits up to limit keys ≥ start in ascending order.
func (t *Tree) Scan(start []byte, limit int, fn func(key []byte, value uint64) bool) int {
	if limit <= 0 {
		return 0
	}
	visited := 0
	bound := append([]byte(nil), start...)
	var last []byte
	strict := false
	for visited < limit {
		emitted := 0
		// The walk reads bound through its own slice headers, so it must not
		// be mutated mid-pass (a shorter emitted key would splice with the old
		// bound's tail and cut off live subtrees); record the last emitted key
		// separately and advance bound only between passes.
		status := t.scanOnce(bound, strict, limit-visited, &emitted, func(k []byte, v uint64) bool {
			last = append(last[:0], k...)
			return fn(k, v)
		})
		visited += emitted
		if emitted > 0 {
			bound = append(bound[:0], last...)
		}
		switch status {
		case scanRetry:
			strict = emitted > 0 || strict
			continue
		case scanStop:
			return visited
		case scanOK:
			// The whole tree was walked: nothing further to emit.
			return visited
		}
	}
	return visited
}

func (t *Tree) scanOnce(bound []byte, strict bool, limit int, emitted *int, fn func([]byte, uint64) bool) scanStatus {
	v, ok := t.root.rVersion()
	if !ok {
		return scanRetry
	}
	return t.scanNode(t.root, v, 0, bound, strict, true, limit, emitted, fn)
}

// scanNode emits the subtree's keys in order. constrained indicates the
// lower bound can still cut into this subtree; once a branch byte exceeds
// the bound, descendants are emitted unconditionally.
func (t *Tree) scanNode(n *node, v uint64, depth int, bound []byte, strict bool,
	constrained bool, limit int, emitted *int, fn func([]byte, uint64) bool) scanStatus {

	prefix := *n.prefix.Load()
	if constrained && len(prefix) > 0 {
		rest := bound[depth:]
		m := len(prefix)
		if len(rest) < m {
			m = len(rest)
		}
		switch bytes.Compare(prefix[:m], rest[:m]) {
		case -1:
			if !n.check(v) {
				return scanRetry
			}
			return scanOK // whole subtree below the bound
		case 1:
			constrained = false // whole subtree above the bound
		default:
			if len(rest) <= len(prefix) {
				constrained = false
				if len(rest) < len(prefix) {
					// bound is a proper prefix: everything here is larger
					// except possibly an exact-equality leaf handled below.
				}
			}
		}
	}
	depth += len(prefix)

	// Leaf terminating at this node: smallest key in the subtree.
	if l := n.leafHere.Load(); l != nil {
		key, val := l.key, l.val.Load()
		if !n.check(v) {
			return scanRetry
		}
		if admit(key, bound, strict, constrained) {
			*emitted++
			if !fn(key, val) {
				return scanStop
			}
			if *emitted >= limit {
				return scanStop
			}
		}
	}

	var boundByte int = -1
	if constrained && depth < len(bound) {
		boundByte = int(bound[depth])
	}

	type kv struct {
		b byte
		c *node
	}
	var kids []kv
	n.forEachChild(func(b byte, c *node) { kids = append(kids, kv{b, c}) })
	if !n.check(v) {
		return scanRetry
	}
	for _, k := range kids {
		if boundByte >= 0 && int(k.b) < boundByte {
			continue
		}
		childConstrained := constrained && int(k.b) == boundByte
		c := k.c
		if c.kind == kindLeaf {
			key, val := c.key, c.val.Load()
			if !n.check(v) {
				return scanRetry
			}
			if admit(key, bound, strict, childConstrained) {
				*emitted++
				if !fn(key, val) {
					return scanStop
				}
				if *emitted >= limit {
					return scanStop
				}
			}
			continue
		}
		cv, cok := c.rVersion()
		if !cok || !n.check(v) {
			return scanRetry
		}
		if st := t.scanNode(c, cv, depth+1, bound, strict, childConstrained, limit, emitted, fn); st != scanOK {
			return st
		}
	}
	return scanOK
}

// admit decides whether key passes the lower bound.
func admit(key, bound []byte, strict, constrained bool) bool {
	if !constrained {
		if strict {
			return bytes.Compare(key, bound) > 0
		}
		return bytes.Compare(key, bound) >= 0
	}
	c := bytes.Compare(key, bound)
	if strict {
		return c > 0
	}
	return c >= 0
}

// MemoryOverheadBytes counts node structures, child arrays, prefixes, and
// per-leaf bookkeeping (key header + value), excluding key bytes (§6.5).
func (t *Tree) MemoryOverheadBytes() int64 {
	var total int64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.kind == kindLeaf {
			total += 64 // leaf node struct: headers + value word
			return
		}
		total += 96 // inner node fixed fields
		total += int64(cap(*n.prefix.Load()))
		total += int64(len(n.children)) * 8
		if n.idx != nil {
			total += 256
		}
		if l := n.leafHere.Load(); l != nil {
			walk(l)
		}
		n.forEachChild(func(b byte, c *node) { walk(c) })
	}
	walk(t.root)
	return total
}
