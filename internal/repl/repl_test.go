package repl

import (
	"net"
	"testing"
	"time"

	"repro/internal/persist"
)

func testManager(t *testing.T, fanout int) *Manager {
	t.Helper()
	m := NewManager(Config{Dir: t.TempDir(), FanoutBytes: fanout})
	t.Cleanup(m.Close)
	return m
}

// register wires a fake replica connection into the manager the way Serve
// does, without a real handshake — enough to drive the ack bookkeeping.
func register(t *testing.T, m *Manager) *feedConn {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	fc := &feedConn{conn: c1, addr: "test"}
	m.mu.Lock()
	m.replicas[fc] = struct{}{}
	m.mu.Unlock()
	return fc
}

// TestFanoutRingEviction: the ring retains at most FanoutBytes of frames
// (always keeping the newest), evicts from the oldest end, and keeps
// entries contiguous in LSN so the feed's fast path stays correct.
func TestFanoutRingEviction(t *testing.T) {
	const fanout = 1024
	m := testManager(t, fanout)
	frame := make([]byte, 100)
	for lsn := uint64(1); lsn <= 100; lsn++ {
		m.Publish(persist.OpSet, lsn, frame)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastLSN != 100 {
		t.Fatalf("lastLSN = %d, want 100", m.lastLSN)
	}
	live := m.ring[m.ringHead:]
	if len(live) == 0 {
		t.Fatal("ring evicted everything including the newest frame")
	}
	if got := live[len(live)-1].lsn; got != 100 {
		t.Fatalf("newest retained LSN = %d, want 100", got)
	}
	if m.ringB > fanout {
		t.Fatalf("ring holds %d bytes, over the %d budget", m.ringB, fanout)
	}
	bytes := 0
	for i, e := range live {
		bytes += len(e.frame)
		if i > 0 && e.lsn != live[i-1].lsn+1 {
			t.Fatalf("ring LSNs not contiguous: %d after %d", e.lsn, live[i-1].lsn)
		}
	}
	if bytes != m.ringB {
		t.Fatalf("ringB = %d, live frames hold %d", m.ringB, bytes)
	}
	if m.ring[m.ringHead].lsn == 1 {
		t.Fatal("100 x 100B frames under a 1KiB budget must have evicted LSN 1")
	}
}

// TestPublishCopiesFrame: the WAL reuses its encode buffer across appends,
// so Publish must copy — a retained frame must not change when the
// caller's buffer is rewritten.
func TestPublishCopiesFrame(t *testing.T) {
	m := testManager(t, DefaultFanoutBytes)
	buf := []byte{1, 2, 3}
	m.Publish(persist.OpSet, 1, buf)
	buf[0] = 99
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ring[m.ringHead].frame[0] != 1 {
		t.Fatal("published frame aliases the caller's buffer")
	}
}

// TestAckBookkeeping: acks are monotone per replica, AckedCount counts
// replicas at-or-above an LSN, and WaitAcks resolves immediately when
// already satisfied, on a later ack, or at its timeout with the count at
// that moment.
func TestAckBookkeeping(t *testing.T) {
	m := testManager(t, DefaultFanoutBytes)
	a, b := register(t, m), register(t, m)

	m.updateAck(a, 10)
	m.updateAck(a, 5) // stale ack must not regress the cursor
	if a.acked != 10 {
		t.Fatalf("acked = %d after a stale ack, want 10", a.acked)
	}
	if got := m.AckedCount(10); got != 1 {
		t.Fatalf("AckedCount(10) = %d, want 1", got)
	}
	if got := m.WaitAcks(10, 1, 0); got != 1 {
		t.Fatalf("already-satisfied WaitAcks = %d, want 1", got)
	}
	if got := m.WaitAcks(10, 0, 0); got != 1 {
		t.Fatalf("WaitAcks with n=0 = %d, want the current count 1", got)
	}

	// A waiter parked on the second replica resolves when its ack lands.
	done := make(chan int, 1)
	go func() { done <- m.WaitAcks(10, 2, 30*time.Second) }()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	m.updateAck(b, 12)
	select {
	case got := <-done:
		if got != 2 {
			t.Fatalf("WaitAcks after second ack = %d, want 2", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAcks did not wake on the satisfying ack")
	}

	// Timeout path: nothing acks 100, the count at expiry comes back.
	start := time.Now()
	if got := m.WaitAcks(100, 1, 50*time.Millisecond); got != 0 {
		t.Fatalf("timed-out WaitAcks = %d, want 0", got)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("WaitAcks returned before its timeout")
	}
}

// TestInvalidatePartialBelow: the fence is monotone and every connected
// replica is kicked (its connection closed) so it must resync.
func TestInvalidatePartialBelow(t *testing.T) {
	m := testManager(t, DefaultFanoutBytes)
	fc := register(t, m)

	m.InvalidatePartialBelow(40)
	m.InvalidatePartialBelow(20) // lower fence must not win
	m.mu.Lock()
	minPart, kicked := m.minPart, fc.kicked
	m.mu.Unlock()
	if minPart != 40 {
		t.Fatalf("minPart = %d, want 40", minPart)
	}
	if !kicked {
		t.Fatal("connected replica not kicked by InvalidatePartialBelow")
	}
	fc.conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := fc.conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("kicked replica's connection still open")
	}
}

// TestWaitAcksUnblocksOnClose: a parked WAIT must not outlive the manager.
func TestWaitAcksUnblocksOnClose(t *testing.T) {
	m := NewManager(Config{Dir: t.TempDir()})
	register(t, m)
	done := make(chan int, 1)
	go func() { done <- m.WaitAcks(1, 1, 0) }()
	time.Sleep(10 * time.Millisecond)
	m.Close()
	select {
	case got := <-done:
		if got != 0 {
			t.Fatalf("WaitAcks after Close = %d, want 0", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAcks still parked after Close")
	}
}
