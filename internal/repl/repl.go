// Package repl ships the write-ahead log to read replicas over RESP —
// PR 5's segmented, LSN-ordered WAL (internal/persist) is already a
// replication log; this package streams it.
//
// Wire protocol. A replica dials the primary's ordinary RESP port and
// speaks RESP for the handshake:
//
//	REPLCONF listening-port <port>   (optional; names the replica in INFO)
//	PSYNC <lastAppliedLSN>           (0 for a fresh replica)
//
// The primary replies with one of:
//
//	+FULLSYNC <snapshotLSN> <bytes>  a freshly cut snapshot follows: exactly
//	                                 <bytes> of snap-file image (the persist
//	                                 CRC32-C frame format), then the live
//	                                 record stream from snapshotLSN+1
//	+CONTINUE <lastAppliedLSN>       the replica's LSN is still covered by
//	                                 retained WAL segments: the record
//	                                 stream alone follows, from lastLSN+1
//
// After the reply the connection stops being RESP in the primary→replica
// direction: it carries WAL record frames (byte-identical to segment-file
// frames) in strict LSN order, plus OpPing heartbeats carrying the last
// shipped LSN. In the replica→primary direction the replica keeps sending
// RESP commands — REPLCONF ACK <lsn> after each applied batch — which the
// primary reads on a per-replica goroutine to drive WAIT and INFO lag.
//
// The feed is an in-memory fan-out buffer backed by segment files: every
// WAL append publishes its encoded frame into a bounded ring (under the
// WAL's own mutex, so publish order is LSN order); a feed that has fallen
// behind the ring's retention catches up by replaying segment files, and
// one that has fallen behind the segment-retention window (compaction
// removed what it needs) is disconnected so the replica reconnects into a
// fresh full sync — degradation, never an error.
package repl

import (
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/persist"
	"repro/internal/resp"
)

// DefaultFanoutBytes bounds the in-memory frame ring: enough to cover the
// WAL writer's 64 KiB bufio (frames not yet visible in segment files) plus
// a healthy replica's in-flight window, small enough to be negligible
// against the keyspace.
const DefaultFanoutBytes = 4 << 20

// Config configures a primary-side Manager.
type Config struct {
	// Dir is the primary's WAL directory (segment files back the fan-out
	// ring for replicas that outrun it).
	Dir string
	// LastLSN seeds the published LSN — pass the WAL's LSN at attach time;
	// records at or below it live only in files.
	LastLSN uint64
	// FanoutBytes bounds the in-memory frame ring; 0 means
	// DefaultFanoutBytes.
	FanoutBytes int
	// CutSnapshot produces a fresh snapshot for a full sync: it must cut
	// (or reuse) a snapshot covering every write up to its returned LSN and
	// return the file's path. On the mini-Redis server this is a SAVE.
	CutSnapshot func() (lsn uint64, path string, err error)
}

// ReplicaInfo is one connected replica's state for INFO replication.
type ReplicaInfo struct {
	Addr  string // advertised listening address when known, remote addr otherwise
	Acked uint64 // last LSN the replica confirmed applied
}

// feedConn is the primary's per-replica state: the connection, its ack
// cursor, and the kick flag that tells its feed to stop.
type feedConn struct {
	conn   net.Conn
	addr   string
	acked  uint64
	kicked bool
}

// waiter parks one WAIT caller until n replicas ack lsn.
type waiter struct {
	lsn uint64
	n   int
	ch  chan struct{}
}

// Manager is the primary side of replication: it fans the live WAL out to
// every registered replica and tracks their acknowledged LSNs.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // broadcast: new record published / feed state change
	lastLSN  uint64     // last published LSN
	minPart  uint64     // LSNs below this may not partial-sync (see InvalidatePartialBelow)
	ring     []ringEnt  // fan-out ring, ascending LSN, contiguous
	ringHead int        // index of the oldest retained entry
	ringB    int        // retained bytes
	replicas map[*feedConn]struct{}
	waiters  map[*waiter]struct{}
	closed   bool

	stopTick chan struct{} // heartbeat ticker shutdown
	doneTick chan struct{}
}

type ringEnt struct {
	lsn   uint64
	frame []byte
}

// NewManager creates a primary-side replication manager. Wire its Publish
// into the WAL via SetOnAppend before serving writes.
func NewManager(cfg Config) *Manager {
	if cfg.FanoutBytes <= 0 {
		cfg.FanoutBytes = DefaultFanoutBytes
	}
	m := &Manager{
		cfg:      cfg,
		lastLSN:  cfg.LastLSN,
		replicas: map[*feedConn]struct{}{},
		waiters:  map[*waiter]struct{}{},
		stopTick: make(chan struct{}),
		doneTick: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	go m.heartbeatLoop()
	return m
}

// Publish enters one appended record into the fan-out ring. It is called
// from the WAL's append hook, under the WAL mutex, so calls arrive in LSN
// order; frame is copied (the WAL reuses its encode buffer).
func (m *Manager) Publish(op persist.Op, lsn uint64, frame []byte) {
	cp := append([]byte(nil), frame...)
	m.mu.Lock()
	m.ring = append(m.ring, ringEnt{lsn: lsn, frame: cp})
	m.ringB += len(cp)
	for m.ringB > m.cfg.FanoutBytes && m.ringHead < len(m.ring)-1 {
		m.ringB -= len(m.ring[m.ringHead].frame)
		m.ring[m.ringHead].frame = nil
		m.ringHead++
	}
	if m.ringHead > 0 && m.ringHead >= len(m.ring)/2 {
		m.ring = append(m.ring[:0], m.ring[m.ringHead:]...)
		m.ringHead = 0
	}
	m.lastLSN = lsn
	m.mu.Unlock()
	m.cond.Broadcast()
}

// LastLSN returns the last published LSN.
func (m *Manager) LastLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastLSN
}

// Replicas returns the connected replicas' info, feed-registration order
// not guaranteed.
func (m *Manager) Replicas() []ReplicaInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ReplicaInfo, 0, len(m.replicas))
	for fc := range m.replicas {
		out = append(out, ReplicaInfo{Addr: fc.addr, Acked: fc.acked})
	}
	return out
}

// AckedCount reports how many connected replicas have acknowledged lsn.
func (m *Manager) AckedCount(lsn uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ackedCountLocked(lsn)
}

func (m *Manager) ackedCountLocked(lsn uint64) int {
	n := 0
	for fc := range m.replicas {
		if fc.acked >= lsn {
			n++
		}
	}
	return n
}

// WaitAcks parks until at least n replicas have acknowledged lsn, the
// timeout elapses (0 = wait forever), or the manager closes; it returns
// the number of replicas acknowledging lsn at that moment — WAIT's reply.
func (m *Manager) WaitAcks(lsn uint64, n int, timeout time.Duration) int {
	m.mu.Lock()
	if m.closed || n <= 0 || m.ackedCountLocked(lsn) >= n {
		c := m.ackedCountLocked(lsn)
		m.mu.Unlock()
		return c
	}
	w := &waiter{lsn: lsn, n: n, ch: make(chan struct{}, 1)}
	m.waiters[w] = struct{}{}
	m.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-w.ch:
	case <-timer:
	case <-m.stopTick:
	}
	m.mu.Lock()
	delete(m.waiters, w)
	c := m.ackedCountLocked(lsn)
	m.mu.Unlock()
	return c
}

// updateAck records a replica's REPLCONF ACK and releases satisfied
// waiters.
func (m *Manager) updateAck(fc *feedConn, lsn uint64) {
	m.mu.Lock()
	if lsn > fc.acked {
		fc.acked = lsn
	}
	for w := range m.waiters {
		if m.ackedCountLocked(w.lsn) >= w.n {
			select {
			case w.ch <- struct{}{}:
			default:
			}
		}
	}
	m.mu.Unlock()
}

// InvalidatePartialBelow forbids partial syncs from LSNs below lsn and
// disconnects every connected replica. The mini-Redis server calls it
// after a bulk preload: preloaded keys bypass the WAL, so any replica
// whose state predates the preload — connected and streaming, or
// reconnecting with an older LSN — can only converge through a fresh full
// sync.
func (m *Manager) InvalidatePartialBelow(lsn uint64) {
	m.mu.Lock()
	if lsn > m.minPart {
		m.minPart = lsn
	}
	m.mu.Unlock()
	m.DisconnectAll()
}

// DisconnectAll kicks every connected replica; each reconnects and resyncs
// (partial where still possible) on its own.
func (m *Manager) DisconnectAll() {
	m.mu.Lock()
	for fc := range m.replicas {
		fc.kicked = true
		fc.conn.Close()
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Close kicks every replica, stops the heartbeat, and wakes every waiter.
// The manager must not be used after.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for fc := range m.replicas {
		fc.kicked = true
		fc.conn.Close()
	}
	m.mu.Unlock()
	close(m.stopTick)
	<-m.doneTick
	m.cond.Broadcast()
}

// heartbeatLoop wakes idle feeds twice a second so they can emit OpPing
// frames (sync.Cond has no timed wait).
func (m *Manager) heartbeatLoop() {
	defer close(m.doneTick)
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-m.stopTick:
			return
		case <-t.C:
			m.cond.Broadcast()
		}
	}
}

// Serve handles one replica connection after the server read its PSYNC
// command: it answers the handshake (cutting a snapshot for a full sync),
// then feeds the record stream until the connection dies or the manager
// kicks it. It blocks for the connection's lifetime and owns conn's close.
// listenAddr, when non-empty, is the replica's advertised address
// (REPLCONF listening-port) used for INFO.
func (m *Manager) Serve(conn net.Conn, rr *resp.Reader, rw *resp.Writer, replicaLSN uint64, listenAddr string) {
	defer conn.Close()

	m.mu.Lock()
	closed, last, minPart := m.closed, m.lastLSN, m.minPart
	m.mu.Unlock()
	if closed {
		rw.WriteError("replication shutting down")
		rw.Flush() //ctvet:ignore best-effort error reply during shutdown; the feed is over either way
		return
	}

	// Partial sync iff every record in (replicaLSN, last] is still
	// obtainable: the replica is not ahead of us, not behind the preload
	// fence, and not behind the oldest retained segment.
	oldest, haveWAL := persist.OldestWALLSN(m.cfg.Dir)
	partial := replicaLSN > 0 &&
		replicaLSN <= last &&
		replicaLSN >= minPart &&
		haveWAL && replicaLSN+1 >= oldest

	start := replicaLSN // stream records with LSN > start
	if partial {
		rw.WriteSimple(fmt.Sprintf("CONTINUE %d", replicaLSN))
		if err := rw.Flush(); err != nil {
			return
		}
	} else {
		lsn, path, err := m.cfg.CutSnapshot()
		if err != nil {
			rw.WriteError("full sync snapshot: " + err.Error())
			rw.Flush() //ctvet:ignore best-effort error reply on a failed handshake; the replica reconnects and retries
			return
		}
		f, err := os.Open(path)
		if err != nil {
			rw.WriteError("full sync snapshot: " + err.Error())
			rw.Flush() //ctvet:ignore best-effort error reply on a failed handshake; the replica reconnects and retries
			return
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			rw.WriteError("full sync snapshot: " + err.Error())
			rw.Flush() //ctvet:ignore best-effort error reply on a failed handshake; the replica reconnects and retries
			return
		}
		rw.WriteSimple(fmt.Sprintf("FULLSYNC %d %d", lsn, st.Size()))
		if err := rw.Flush(); err != nil {
			f.Close()
			return
		}
		// The snapshot image ships as raw bytes on the same connection. A
		// concurrent compaction may unlink the file mid-copy; the open fd
		// keeps the bytes readable.
		_, err = io.Copy(conn, f)
		f.Close()
		if err != nil {
			return
		}
		start = lsn
	}

	addr := conn.RemoteAddr().String()
	if listenAddr != "" {
		addr = listenAddr
	}
	// acked starts at 0, not at the sync point: the replica has not applied
	// anything yet, and WAIT must report applied state, not shipped state.
	// The replica's first REPLCONF ACK (sent as soon as its sync completes)
	// raises it truthfully.
	fc := &feedConn{conn: conn, addr: addr}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.replicas[fc] = struct{}{}
	m.mu.Unlock()

	go m.readAcks(fc, rr)
	m.feed(fc, start)

	m.mu.Lock()
	delete(m.replicas, fc)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// readAcks consumes the replica→primary direction: RESP commands, of which
// only REPLCONF ACK <lsn> matters. Any read error ends the feed too (the
// connection is closed, which unblocks a feed parked in a write).
func (m *Manager) readAcks(fc *feedConn, rr *resp.Reader) {
	defer fc.conn.Close()
	for {
		cmd, err := rr.ReadCommand()
		if err != nil {
			return
		}
		if len(cmd) == 3 && eqFold(cmd[0], "REPLCONF") && eqFold(cmd[1], "ACK") {
			if lsn, err := strconv.ParseUint(string(cmd[2]), 10, 64); err == nil {
				m.updateAck(fc, lsn)
			}
		}
	}
}

// feed streams records with LSN > start to one replica, in LSN order: from
// the fan-out ring when it still holds them, from segment files when the
// ring has evicted them, and as OpPing heartbeats when idle.
func (m *Manager) feed(fc *feedConn, start uint64) {
	bw := resp.NewWriter(fc.conn)
	next := start + 1 // LSN the replica needs next
	var scratch []byte
	lastSend := time.Now()

	for {
		m.mu.Lock()
		for !m.closed && !fc.kicked && next > m.lastLSN && time.Since(lastSend) < time.Second {
			m.cond.Wait()
		}
		if m.closed || fc.kicked {
			m.mu.Unlock()
			return
		}
		if next > m.lastLSN {
			m.mu.Unlock()
			// Idle: heartbeat with the last shipped LSN. Everything ≤ next-1
			// was sent on this stream, so the replica may ack it.
			scratch = persist.AppendRecordFrame(scratch[:0], persist.OpPing, next-1, "", nil, 0)
			if err := writeAll(bw, scratch); err != nil {
				return
			}
			lastSend = time.Now()
			continue
		}
		// Ring fast path: copy out the retained frames ≥ next (references —
		// frames are immutable once published), send outside the lock.
		var frames [][]byte
		if m.ringHead < len(m.ring) && m.ring[m.ringHead].lsn <= next {
			for i := m.ringHead; i < len(m.ring); i++ {
				if m.ring[i].lsn >= next {
					frames = append(frames, m.ring[i].frame)
					next = m.ring[i].lsn + 1
				}
			}
		}
		m.mu.Unlock()

		if len(frames) > 0 {
			for _, fr := range frames {
				if err := writeAll(bw, fr); err != nil {
					return
				}
			}
			lastSend = time.Now()
			continue
		}

		// The ring has evicted what the replica needs: catch up from
		// segment files. Reaching neither file nor ring coverage means
		// compaction outran this replica — disconnect; it reconnects into a
		// full sync.
		sent := 0
		last, err := persist.ReplayRecords(m.cfg.Dir, next-1, func(rec *persist.Record) error {
			scratch = persist.AppendRecordFrame(scratch[:0], rec.Op, rec.LSN, rec.Set, rec.Key, rec.Val)
			sent++
			return writeAll(bw, scratch)
		})
		if err != nil {
			return // gap (ErrCorrupt → full resync on reconnect) or dead conn
		}
		if last >= next {
			next = last + 1
		}
		if sent > 0 {
			lastSend = time.Now()
		}
		m.mu.Lock()
		behindRing := m.ringHead < len(m.ring) && m.ring[m.ringHead].lsn > next
		m.mu.Unlock()
		if sent == 0 && behindRing {
			// Files end before the ring begins and nothing moved: the
			// records in between are gone (compacted away behind this
			// replica). Deliberate policy, not failure: drop the connection
			// and let the replica's reconnect resolve to a fresh full sync.
			return
		}
	}
}

// writeAll writes b and flushes — record frames must not sit in the bufio
// while the feed parks waiting for the next record.
func writeAll(bw *resp.Writer, b []byte) error {
	if err := bw.WriteRaw(b); err != nil {
		return err
	}
	return bw.Flush()
}

func eqFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		d := s[i]
		if 'a' <= d && d <= 'z' {
			d -= 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}
