package repl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/resp"
)

// Target is the store a replica session applies the primary's log to. The
// mini-Redis server implements it; the session guarantees single-goroutine,
// LSN-ordered calls.
type Target interface {
	// FlushAll drops every set — a full sync replaces the whole keyspace,
	// and an OpFlushAll record replicates a primary-side FLUSHALL.
	FlushAll()
	// LoadSnapshot bulk-loads a full-sync image, one set per SnapshotSet
	// (the same shape crash recovery bulk-loads, so untrained sampled
	// routers train from the sync stream exactly as they do from a local
	// snapshot).
	LoadSnapshot(sets []persist.SnapshotSet) error
	// ApplyBatch applies decoded records in order. Keys and set names are
	// owned by the batch (already copied off the wire).
	ApplyBatch(recs []persist.Record) error
}

// ReplicaConfig configures a replica session.
type ReplicaConfig struct {
	// Addr is the primary's RESP address.
	Addr string
	// ListenAddr advertises this replica's own serving address to the
	// primary (REPLCONF listening-port) so INFO can name it; optional.
	ListenAddr string
	// Target receives the replicated state.
	Target Target
	// ResumeFrom seeds the applied LSN: a replica re-attaching to the same
	// primary offers it in PSYNC for a partial resync. 0 for a fresh sync.
	ResumeFrom uint64
	// ReconnectDelay is the pause between connection attempts; 0 means
	// 100 ms.
	ReconnectDelay time.Duration
}

// ReplicaStats counts a session's sync history — what the partial-sync
// tests assert: resuming applies each record exactly once (Records is
// exact, not at-least), and falling behind retention shows up as an extra
// full sync rather than an error.
type ReplicaStats struct {
	FullSyncs    int
	PartialSyncs int
	Records      uint64 // records applied (snapshot keys not included)
	SnapshotKeys uint64 // keys bulk-loaded by full syncs
}

// Replica is a running replica session: a background loop that connects to
// the primary, syncs, applies the record stream, and reconnects (resuming
// from its applied LSN) whenever the link drops.
type Replica struct {
	cfg     ReplicaConfig
	applied atomic.Uint64
	linkUp  atomic.Bool
	stop    chan struct{}
	done    chan struct{}

	mu    sync.Mutex
	conn  net.Conn // current connection, for Stop to unblock reads
	stats ReplicaStats
}

// StartReplica starts replicating from cfg.Addr into cfg.Target. Stop the
// returned session to detach.
func StartReplica(cfg ReplicaConfig) *Replica {
	if cfg.ReconnectDelay <= 0 {
		cfg.ReconnectDelay = 100 * time.Millisecond
	}
	r := &Replica{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	r.applied.Store(cfg.ResumeFrom)
	go r.run()
	return r
}

// Stop detaches: the session's connection is closed and its loop exits.
// The target keeps whatever state was applied.
func (r *Replica) Stop() {
	r.mu.Lock()
	select {
	case <-r.stop:
		r.mu.Unlock()
		<-r.done
		return
	default:
	}
	close(r.stop)
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	<-r.done
}

// Applied returns the last LSN applied to the target.
func (r *Replica) Applied() uint64 { return r.applied.Load() }

// LinkUp reports whether the session is currently synced and streaming.
func (r *Replica) LinkUp() bool { return r.linkUp.Load() }

// MasterAddr returns the primary's address.
func (r *Replica) MasterAddr() string { return r.cfg.Addr }

// Stats returns a copy of the session's sync counters.
func (r *Replica) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// run is the reconnect loop.
func (r *Replica) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		err := r.syncOnce()
		r.linkUp.Store(false)
		if err == nil {
			return // stopped
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.cfg.ReconnectDelay):
		}
	}
}

// stopped reports whether Stop was called.
func (r *Replica) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// syncOnce runs one connection's lifetime: dial, handshake, sync, stream.
// It returns nil only when the session was stopped; any other exit is an
// error to be retried.
func (r *Replica) syncOnce() error {
	conn, err := net.DialTimeout("tcp", r.cfg.Addr, 3*time.Second)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.stopped() {
		r.mu.Unlock()
		conn.Close()
		return nil
	}
	r.conn = conn
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		conn.Close()
	}()

	rr := resp.NewReader(conn)
	rw := resp.NewWriter(conn)

	if r.cfg.ListenAddr != "" {
		if _, _, err := net.SplitHostPort(r.cfg.ListenAddr); err == nil {
			_, port, _ := net.SplitHostPort(r.cfg.ListenAddr)
			if err := rw.WriteCommand([]byte("REPLCONF"), []byte("listening-port"), []byte(port)); err != nil {
				return err
			}
			if err := rw.Flush(); err != nil {
				return err
			}
			if _, err := rr.ReadReply(); err != nil {
				return err
			}
		}
	}

	offer := r.applied.Load()
	if err := rw.WriteCommand([]byte("PSYNC"), []byte(strconv.FormatUint(offer, 10))); err != nil {
		return err
	}
	if err := rw.Flush(); err != nil {
		return err
	}
	reply, err := rr.ReadReply()
	if err != nil {
		return err
	}
	line, ok := reply.(string)
	if !ok {
		if e, isErr := reply.(error); isErr {
			return fmt.Errorf("repl: primary refused sync: %w", e)
		}
		return fmt.Errorf("repl: unexpected PSYNC reply %T", reply)
	}

	switch {
	case strings.HasPrefix(line, "FULLSYNC "):
		var lsn, size uint64
		if _, err := fmt.Sscanf(line, "FULLSYNC %d %d", &lsn, &size); err != nil {
			return fmt.Errorf("repl: bad FULLSYNC reply %q", line)
		}
		// The snapshot image follows as exactly size raw bytes — decoded
		// from the same buffered reader the RESP handshake used.
		snapLSN, sets, err := persist.DecodeSnapshotStream(io.LimitReader(rr.Inner(), int64(size)))
		if err != nil {
			return err
		}
		if snapLSN != lsn {
			return fmt.Errorf("repl: snapshot stream LSN %d does not match FULLSYNC %d", snapLSN, lsn)
		}
		// Replace, never merge: the image is the primary's whole keyspace.
		r.cfg.Target.FlushAll()
		if err := r.cfg.Target.LoadSnapshot(sets); err != nil {
			return err
		}
		keys := uint64(0)
		for _, s := range sets {
			keys += uint64(len(s.Keys))
		}
		r.mu.Lock()
		r.stats.FullSyncs++
		r.stats.SnapshotKeys += keys
		r.mu.Unlock()
		r.applied.Store(lsn)
	case strings.HasPrefix(line, "CONTINUE "):
		var lsn uint64
		if _, err := fmt.Sscanf(line, "CONTINUE %d", &lsn); err != nil {
			return fmt.Errorf("repl: bad CONTINUE reply %q", line)
		}
		if lsn != offer {
			return fmt.Errorf("repl: CONTINUE at %d, offered %d", lsn, offer)
		}
		r.mu.Lock()
		r.stats.PartialSyncs++
		r.mu.Unlock()
	default:
		return fmt.Errorf("repl: unexpected PSYNC reply %q", line)
	}

	r.linkUp.Store(true)

	// Acks ride the replica→primary direction of the same connection. The
	// ack goroutine is its sole writer after the handshake; the applier
	// signals it after every batch so WAIT resolves promptly, and a ticker
	// keeps lag observable when the stream idles.
	ackSig := make(chan struct{}, 1)
	ackDone := make(chan struct{})
	go r.ackLoop(conn, ackSig, ackDone)
	defer func() { <-ackDone }()
	defer conn.Close() // unblocks the ack goroutine's ticker loop exit path

	err = r.applyStream(rr, ackSig)
	close(ackSig)
	if r.stopped() {
		return nil
	}
	return err
}

// ackLoop sends REPLCONF ACK <applied> whenever the applier signals and at
// least once a second. It exits when sig closes or a write fails.
func (r *Replica) ackLoop(conn net.Conn, sig chan struct{}, done chan struct{}) {
	defer close(done)
	w := resp.NewWriter(conn)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	send := func() bool {
		// An ACK that fails to serialize or flush must not look sent: the
		// primary's WAIT accounting trusts these offsets.
		if err := w.WriteCommand([]byte("REPLCONF"), []byte("ACK"),
			[]byte(strconv.FormatUint(r.applied.Load(), 10))); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	if !send() {
		return
	}
	for {
		select {
		case _, ok := <-sig:
			if !ok {
				return
			}
			if !send() {
				return
			}
		case <-t.C:
			if !send() {
				return
			}
		}
	}
}

// applyBatchMax bounds how many records one ApplyBatch call carries (and
// therefore how long a serial server's command lock is held per batch).
const applyBatchMax = 256

// applyStream decodes record frames and applies them in batches: the first
// record blocks, then everything already buffered joins the batch, so a
// burst applies under one lock acquisition and acks once.
func (r *Replica) applyStream(rr *resp.Reader, ackSig chan struct{}) error {
	rec := persist.NewRecordReader(rr.Inner())
	batch := make([]persist.Record, 0, applyBatchMax)
	var cur persist.Record
	for {
		if err := rec.Next(&cur); err != nil {
			if err == io.EOF {
				return errors.New("repl: primary closed the stream")
			}
			return err
		}
		batch = batch[:0]
		last := r.applied.Load()
		add := func(rc *persist.Record) {
			if rc.LSN <= last && rc.Op != persist.OpPing {
				return // already applied (defensive; the primary filters by LSN)
			}
			if rc.Op == persist.OpPing {
				// Heartbeat: everything ≤ its LSN was shipped on this stream
				// before it, so it only advances the applied cursor.
				if rc.LSN > last {
					last = rc.LSN
				}
				return
			}
			batch = append(batch, persist.Record{
				Op:  rc.Op,
				LSN: rc.LSN,
				Set: rc.Set,
				Key: append([]byte(nil), rc.Key...),
				Val: rc.Val,
			})
			last = rc.LSN
		}
		add(&cur)
		for len(batch) < applyBatchMax && rec.Buffered() {
			if err := rec.Next(&cur); err != nil {
				return err
			}
			add(&cur)
		}
		if len(batch) > 0 {
			if err := r.cfg.Target.ApplyBatch(batch); err != nil {
				return err
			}
			r.mu.Lock()
			r.stats.Records += uint64(len(batch))
			r.mu.Unlock()
		}
		r.applied.Store(last)
		select {
		case ackSig <- struct{}{}:
		default:
		}
	}
}
