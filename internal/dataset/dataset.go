// Package dataset generates the paper's five evaluation datasets (Table 1)
// as deterministic, seeded synthetic equivalents — the real OSM, Amazon and
// Reddit dumps are not redistributable, so we match their index-relevant
// structure: key length distribution and shared-prefix (unique-prefix)
// structure. Table 1 of EXPERIMENTS.md compares the generated statistics
// against the paper's.
package dataset

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/keys"
)

// Name identifies one of the paper's datasets.
type Name string

// The paper's five datasets (Table 1).
const (
	Rand8  Name = "rand-8"  // 8-byte uniform random keys
	Rand16 Name = "rand-16" // 16-byte uniform random keys
	OSM    Name = "osm"     // 64-bit Morton-encoded geographic coordinates
	AZ     Name = "az"      // Amazon-review-style (item, user, time) tuples
	Reddit Name = "reddit"  // username-like strings
)

// All lists the datasets in the paper's presentation order.
var All = []Name{Rand8, Rand16, OSM, AZ, Reddit}

// Generate returns n distinct keys of the named dataset, shuffled, with a
// deterministic seed (the paper shuffles and deduplicates all datasets).
func Generate(name Name, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([][]byte, 0, n)
	add := func(k []byte) bool {
		if seen[string(k)] {
			return false
		}
		seen[string(k)] = true
		out = append(out, k)
		return true
	}
	for len(out) < n {
		switch name {
		case Rand8:
			k := make([]byte, 8)
			rng.Read(k)
			add(k)
		case Rand16:
			k := make([]byte, 16)
			rng.Read(k)
			add(k)
		case OSM:
			add(osmKey(rng))
		case AZ:
			add(azKey(rng))
		case Reddit:
			add(redditKey(rng))
		default:
			panic("dataset: unknown dataset " + string(name))
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// osmKey emulates osmc64: a 64-bit cell number from Morton-interleaved
// latitude/longitude of a random location. Locations cluster over land
// masses; we approximate with a mixture of dense clusters (cities) and a
// uniform background, giving the slightly longer unique prefixes Table 1
// reports for osm versus rand-8 (36.8 vs 28.9 bits).
func osmKey(rng *rand.Rand) []byte {
	var lat, lon float64
	if rng.Intn(100) < 70 {
		// Clustered around one of 512 fixed "cities".
		city := rng.Intn(512)
		crng := rand.New(rand.NewSource(int64(city) * 7919))
		clat := crng.Float64()*160 - 80
		clon := crng.Float64()*360 - 180
		lat = clamp(clat+rng.NormFloat64()*0.5, -85, 85)
		lon = wrap(clon + rng.NormFloat64()*0.5)
	} else {
		lat = rng.Float64()*170 - 85
		lon = rng.Float64()*360 - 180
	}
	x := uint32((lon + 180) / 360 * float64(1<<32-1))
	y := uint32((lat + 90) / 180 * float64(1<<32-1))
	var m [8]byte
	binary.BigEndian.PutUint64(m[:], morton(x, y))
	return m[:]
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func wrap(v float64) float64 {
	for v < -180 {
		v += 360
	}
	for v > 180 {
		v -= 360
	}
	return v
}

// morton interleaves the bits of x and y.
func morton(x, y uint32) uint64 {
	return spread(uint64(x))<<1 | spread(uint64(y))
}

func spread(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// azKey emulates the Az1 dataset: (item ID, user ID, time) tuples from
// Amazon reviews, ≈35.7-byte keys with LONG common prefixes — popular items
// have many reviews sharing the item-ID prefix. This is the paper's
// worst-case dataset for the Cuckoo Trie (§4.7, §6.2).
func azKey(rng *rand.Rand) []byte {
	// Zipf over items: a few items get most reviews.
	z := rand.NewZipf(rng, 1.3, 4, 1<<20)
	item := z.Uint64()
	user := rng.Uint64() % (1 << 40)
	t := 1_300_000_000 + rng.Int63n(300_000_000)
	return []byte(fmt.Sprintf("B%09dA%013dT%011d", item, user, t))
}

// redditKey emulates the Reddit username dump: short lowercase strings,
// mean length ≈10.9, with common stems ("the", "mr", years, etc.).
func redditKey(rng *rand.Rand) []byte {
	var stems = []string{"", "", "", "the", "mr", "its", "x", "real", "im", "dark", "lil"}
	var suffixes = []string{"", "", "123", "2016", "2017", "_", "xx", "7"}
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789_-"
	stem := stems[rng.Intn(len(stems))]
	suffix := suffixes[rng.Intn(len(suffixes))]
	core := 3 + rng.Intn(10)
	b := make([]byte, 0, len(stem)+core+len(suffix))
	b = append(b, stem...)
	for i := 0; i < core; i++ {
		b = append(b, letters[rng.Intn(len(letters))])
	}
	b = append(b, suffix...)
	return b
}

// Stats summarizes a dataset as Table 1 does.
type Stats struct {
	Name            Name
	Keys            int
	AvgKeyBytes     float64
	AvgUniquePrefix float64 // average unique-prefix length in BITS
}

// Measure computes Table 1's statistics for a key set: average key size and
// average unique-prefix size in bits (the shortest prefix distinguishing
// each key from all others, computed against its sorted neighbors).
func Measure(name Name, ks [][]byte) Stats {
	st := Stats{Name: name, Keys: len(ks)}
	if len(ks) == 0 {
		return st
	}
	var totalLen int64
	for _, k := range ks {
		totalLen += int64(len(k))
	}
	st.AvgKeyBytes = float64(totalLen) / float64(len(ks))

	sorted := make([][]byte, len(ks))
	copy(sorted, ks)
	sortKeys(sorted)
	var totalBits int64
	for i, k := range sorted {
		// Unique prefix bits = 1 + max(lcp with previous, lcp with next).
		lcp := 0
		if i > 0 {
			if l := bitLCP(sorted[i-1], k); l > lcp {
				lcp = l
			}
		}
		if i+1 < len(sorted) {
			if l := bitLCP(k, sorted[i+1]); l > lcp {
				lcp = l
			}
		}
		u := lcp + 1
		if u > len(k)*8 {
			u = len(k) * 8
		}
		totalBits += int64(u)
	}
	st.AvgUniquePrefix = float64(totalBits) / float64(len(sorted))
	return st
}

func bitLCP(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			x := a[i] ^ b[i]
			bits := 0
			for x&0x80 == 0 {
				x <<= 1
				bits++
			}
			return i*8 + bits
		}
	}
	return n * 8
}

func sortKeys(ks [][]byte) {
	sort.Slice(ks, func(i, j int) bool { return bytes.Compare(ks[i], ks[j]) < 0 })
}

// SymbolStats reports trie-level statistics used by the design notes.
func SymbolStats(ks [][]byte) (avgSymbols float64) {
	var total int64
	for _, k := range ks {
		total += int64(keys.NumSymbols(k))
	}
	if len(ks) == 0 {
		return 0
	}
	return float64(total) / float64(len(ks))
}
