package dataset

import (
	"testing"
)

func TestGenerateDeterministicAndDistinct(t *testing.T) {
	for _, name := range All {
		a := Generate(name, 2000, 7)
		b := Generate(name, 2000, 7)
		if len(a) != 2000 {
			t.Fatalf("%s: %d keys", name, len(a))
		}
		seen := map[string]bool{}
		for i := range a {
			if string(a[i]) != string(b[i]) {
				t.Fatalf("%s not deterministic", name)
			}
			if seen[string(a[i])] {
				t.Fatalf("%s has duplicates", name)
			}
			seen[string(a[i])] = true
		}
	}
}

func TestTable1Shape(t *testing.T) {
	// The datasets must reproduce Table 1's qualitative structure.
	st := map[Name]Stats{}
	for _, name := range All {
		ks := Generate(name, 20000, 1)
		st[name] = Measure(name, ks)
	}
	if st[Rand8].AvgKeyBytes != 8 || st[Rand16].AvgKeyBytes != 16 || st[OSM].AvgKeyBytes != 8 {
		t.Fatal("fixed-width datasets have wrong key size")
	}
	if st[AZ].AvgKeyBytes < 30 || st[AZ].AvgKeyBytes > 42 {
		t.Fatalf("az key size %.1f, want ~35.7", st[AZ].AvgKeyBytes)
	}
	if st[Reddit].AvgKeyBytes < 8 || st[Reddit].AvgKeyBytes > 14 {
		t.Fatalf("reddit key size %.1f, want ~10.9", st[Reddit].AvgKeyBytes)
	}
	// Unique-prefix ordering: az >> reddit > osm > rand-8 ≈ rand-16.
	if !(st[AZ].AvgUniquePrefix > st[Reddit].AvgUniquePrefix &&
		st[Reddit].AvgUniquePrefix > st[OSM].AvgUniquePrefix &&
		st[OSM].AvgUniquePrefix > st[Rand8].AvgUniquePrefix) {
		t.Fatalf("unique prefix ordering broken: az=%.1f reddit=%.1f osm=%.1f rand8=%.1f",
			st[AZ].AvgUniquePrefix, st[Reddit].AvgUniquePrefix,
			st[OSM].AvgUniquePrefix, st[Rand8].AvgUniquePrefix)
	}
	if d := st[Rand8].AvgUniquePrefix - st[Rand16].AvgUniquePrefix; d > 1 || d < -1 {
		t.Fatal("rand-8 and rand-16 should have equal unique prefixes")
	}
}

func TestBitLCP(t *testing.T) {
	if got := bitLCP([]byte{0xff}, []byte{0xfe}); got != 7 {
		t.Fatalf("bitLCP = %d, want 7", got)
	}
	if got := bitLCP([]byte{0xab}, []byte{0xab, 1}); got != 8 {
		t.Fatalf("bitLCP prefix = %d, want 8", got)
	}
}
