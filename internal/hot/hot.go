// Package hot implements a height-optimized-trie-like baseline standing in
// for HOT (Binna et al., SIGMOD'18) in the paper's evaluation (§6.1). HOT
// packs a binary PATRICIA trie into wide compound nodes whose fanout adapts
// to the number of discriminating bits. We implement the underlying binary
// PATRICIA (crit-bit) structure directly — which captures HOT's two headline
// properties in the paper's figures: the LOWEST memory per key of all
// baselines (≈ one small node per key) and purely serial pointer-chased
// lookups (no MLP) — but not HOT's intra-node SIMD search; see DESIGN.md
// for the substitution note. A global RWMutex provides thread safety.
package hot

import (
	"bytes"
	"sync"
)

// node is either an internal crit-bit node (leaf == nil) or a leaf holder.
type node struct {
	// Internal: first bit position where the two subtrees differ. Bit
	// positions address the key as a bit string, byte-length-extended: bit
	// i of key k is bitAt(k, i), with "past the end" reading as 0 and a
	// virtual length-terminator ensuring prefixes sort first.
	critBit     int
	left, right *node
	// minLeaf is the smallest leaf of the subtree (internal nodes only);
	// it supports ordered seeks for range scans.
	minLeaf *node

	// Leaf.
	key []byte
	val uint64
}

// subMin returns the minimum leaf of n's subtree.
func (n *node) subMin() *node {
	if n.isLeaf() {
		return n
	}
	return n.minLeaf
}

func (n *node) isLeaf() bool { return n.left == nil && n.right == nil }

// bitAt treats keys as: 8 bits per byte, then a 1 "present" bit per byte
// position to separate a key from its extensions (crit-bit's standard
// length-disambiguation trick, byte granularity).
func bitAt(k []byte, i int) int {
	byteIdx := i / 9
	off := i % 9
	if byteIdx >= len(k) {
		return 0
	}
	if off == 0 {
		return 1 // "byte present" marker
	}
	return int(k[byteIdx] >> (8 - off) & 1)
}

// firstDiffBit returns the first differing bit position of a and b in the
// 9-bit-per-byte encoding, or -1 if equal.
func firstDiffBit(a, b []byte) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < (n+1)*9; i++ {
		if bitAt(a, i) != bitAt(b, i) {
			return i
		}
	}
	return -1
}

// Tree is the HOT-like index.
type Tree struct {
	mu   sync.RWMutex
	root *node
	size int
}

// New creates an empty tree.
func New() *Tree { return &Tree{} }

// Name implements index.Index.
func (t *Tree) Name() string { return "HOT" }

// Len returns the number of stored keys.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// ConcurrentSafe implements index.Concurrent.
func (t *Tree) ConcurrentSafe() bool { return true }

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	if n == nil {
		return 0, false
	}
	for !n.isLeaf() {
		if bitAt(key, n.critBit) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	if bytes.Equal(n.key, key) {
		return n.val, true
	}
	return 0, false
}

// Set inserts or updates key. added reports whether key was newly inserted.
func (t *Tree) Set(key []byte, value uint64) (added bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		t.root = &node{key: append([]byte(nil), key...), val: value}
		t.size = 1
		return true, nil
	}
	// Find the best-matching leaf.
	n := t.root
	for !n.isLeaf() {
		if bitAt(key, n.critBit) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	diff := firstDiffBit(n.key, key)
	if diff < 0 {
		n.val = value
		return false, nil
	}
	nl := &node{key: append([]byte(nil), key...), val: value}
	// Insert the new internal node at the position where diff fits: walk
	// from the root until reaching a node with critBit > diff or a leaf,
	// maintaining subtree-min pointers along the way.
	link := &t.root
	for {
		cur := *link
		if cur.isLeaf() || cur.critBit > diff {
			inner := &node{critBit: diff}
			if bitAt(key, diff) == 0 {
				inner.left, inner.right = nl, cur
			} else {
				inner.left, inner.right = cur, nl
			}
			inner.minLeaf = inner.left.subMin()
			*link = inner
			t.size++
			return true, nil
		}
		if !cur.isLeaf() && bytes.Compare(key, cur.minLeaf.key) < 0 {
			cur.minLeaf = nl
		}
		if bitAt(key, cur.critBit) == 0 {
			link = &cur.left
		} else {
			link = &cur.right
		}
	}
}

// Delete removes key, recomputing subtree-min pointers along the path.
func (t *Tree) Delete(key []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		return false
	}
	var path []*node
	var parentLink **node
	link := &t.root
	for {
		cur := *link
		if cur.isLeaf() {
			if !bytes.Equal(cur.key, key) {
				return false
			}
			if parentLink == nil {
				t.root = nil
			} else {
				p := *parentLink
				if p.left == cur {
					*parentLink = p.right
				} else {
					*parentLink = p.left
				}
			}
			// The spliced-out parent is gone; refresh ancestors' minima.
			for i := len(path) - 2; i >= 0; i-- {
				path[i].minLeaf = path[i].left.subMin()
			}
			t.size--
			return true
		}
		path = append(path, cur)
		parentLink = link
		if bitAt(key, cur.critBit) == 0 {
			link = &cur.left
		} else {
			link = &cur.right
		}
	}
}

// Scan visits up to n keys ≥ start in ascending order. The seek compares
// start against right-subtree minima, so it descends straight to the first
// qualifying leaf and walks in-order from there.
func (t *Tree) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil || n <= 0 {
		return 0
	}
	var stack []*node
	nd := t.root
	for !nd.isLeaf() {
		if bytes.Compare(start, nd.right.subMin().key) <= 0 {
			stack = append(stack, nd.right)
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	visited := 0
	emit := func(l *node) bool {
		if bytes.Compare(l.key, start) < 0 {
			return true
		}
		visited++
		if !fn(l.key, l.val) {
			return false
		}
		return visited < n
	}
	if !emit(nd) {
		return visited
	}
	for len(stack) > 0 {
		nd = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for !nd.isLeaf() {
			stack = append(stack, nd.right)
			nd = nd.left
		}
		if !emit(nd) {
			return visited
		}
	}
	return visited
}

// MemoryOverheadBytes counts nodes (compound-packing would shrink internal
// nodes further; we report the raw crit-bit structures), excluding key
// bytes.
func (t *Tree) MemoryOverheadBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total int64
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.isLeaf() {
			total += 40 // key header + value + node overhead share
			return
		}
		total += 24 // critBit + two pointers
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return total
}
