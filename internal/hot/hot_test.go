package hot_test

import (
	"bytes"
	"testing"

	"repro/internal/hot"
	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return hot.New() }, indextest.Options{})
}

func TestPrefixKeysOrder(t *testing.T) {
	// The 9-bit byte encoding must sort prefixes before extensions.
	tr := hot.New()
	ks := [][]byte{[]byte("a"), []byte("aa"), []byte("ab"), []byte("b"), []byte("")}
	for i, k := range ks {
		tr.Set(k, uint64(i))
	}
	var got [][]byte
	tr.Scan(nil, 10, func(k []byte, v uint64) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	want := [][]byte{[]byte(""), []byte("a"), []byte("aa"), []byte("ab"), []byte("b")}
	if len(got) != len(want) {
		t.Fatalf("scan %d keys", len(got))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
