package hot

import "reflect"

// compoundSpan is the number of crit-bit levels HOT packs into one compound
// node (≤32-way fanout). Our baseline stores the binary PATRICIA directly;
// for the memory simulation we model HOT's packing: every compoundSpan
// crit-bit nodes on a path share one-to-two cache lines, which is what makes
// HOT shallow (its whole point) while remaining serial across compounds.
const compoundSpan = 5

// LookupLevels returns the simulated cache lines per compound level.
func (t *Tree) LookupLevels(key []byte) [][]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var levels [][]uint64
	n := t.root
	step := 0
	var groupAddr uint64
	for n != nil {
		if n.isLeaf() {
			levels = append(levels, []uint64{uint64(reflect.ValueOf(n).Pointer()) / 64})
			return levels
		}
		if step%compoundSpan == 0 {
			groupAddr = uint64(reflect.ValueOf(n).Pointer()) / 64
			levels = append(levels, []uint64{groupAddr, groupAddr + 1})
		}
		step++
		if bitAt(key, n.critBit) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	return levels
}
