// Package btree implements an STX-style in-memory B+-tree: a cache-conscious
// comparison-based ordered index with wide nodes, sorted key arrays, binary
// search within nodes, and linked leaves for fast range scans. It is the
// paper's "STX" baseline (§6.1, [4]/TLX): single-threaded, like the
// original.
package btree

import (
	"bytes"
	"sort"
)

// Fanout parameters (TLX uses node sizes tuned to cache lines; 32/64 slots
// give comparable height for our key sizes).
const (
	innerSlots = 32
	leafSlots  = 64
)

type leaf struct {
	keys [][]byte
	vals []uint64
	next *leaf
}

type inner struct {
	// keys[i] is the smallest key of children[i+1]'s subtree.
	keys     [][]byte
	children []any // *inner or *leaf
}

// Tree is a single-threaded B+-tree from byte-string keys to uint64 values.
type Tree struct {
	root  any // *inner, *leaf, or nil
	size  int
	depth int
}

// New creates an empty tree.
func New() *Tree { return &Tree{} }

// Name implements index.Index.
func (t *Tree) Name() string { return "STX-BTree" }

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	l := t.findLeaf(key)
	if l == nil {
		return 0, false
	}
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], key) >= 0 })
	if i < len(l.keys) && bytes.Equal(l.keys[i], key) {
		return l.vals[i], true
	}
	return 0, false
}

func (t *Tree) findLeaf(key []byte) *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case nil:
			return nil
		case *leaf:
			return v
		case *inner:
			i := sort.Search(len(v.keys), func(i int) bool { return bytes.Compare(v.keys[i], key) > 0 })
			n = v.children[i]
		}
	}
}

// Set inserts or updates key. added reports whether key was newly inserted.
func (t *Tree) Set(key []byte, value uint64) (added bool, err error) {
	if t.root == nil {
		l := &leaf{keys: make([][]byte, 0, leafSlots), vals: make([]uint64, 0, leafSlots)}
		l.keys = append(l.keys, cloneKey(key))
		l.vals = append(l.vals, value)
		t.root = l
		t.size = 1
		t.depth = 1
		return true, nil
	}
	splitKey, splitNode, grew := t.insert(t.root, key, value)
	if splitNode != nil {
		r := &inner{
			keys:     [][]byte{splitKey},
			children: []any{t.root, splitNode},
		}
		t.root = r
		t.depth++
	}
	if grew {
		t.size++
	}
	return grew, nil
}

// insert descends into n. Returns a (separator, new right sibling) pair when
// n split, and whether a new key was added.
func (t *Tree) insert(n any, key []byte, value uint64) ([]byte, any, bool) {
	switch v := n.(type) {
	case *leaf:
		i := sort.Search(len(v.keys), func(i int) bool { return bytes.Compare(v.keys[i], key) >= 0 })
		if i < len(v.keys) && bytes.Equal(v.keys[i], key) {
			v.vals[i] = value
			return nil, nil, false
		}
		v.keys = append(v.keys, nil)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = cloneKey(key)
		v.vals = append(v.vals, 0)
		copy(v.vals[i+1:], v.vals[i:])
		v.vals[i] = value
		if len(v.keys) <= leafSlots {
			return nil, nil, true
		}
		mid := len(v.keys) / 2
		right := &leaf{
			keys: append(make([][]byte, 0, leafSlots), v.keys[mid:]...),
			vals: append(make([]uint64, 0, leafSlots), v.vals[mid:]...),
			next: v.next,
		}
		v.keys = v.keys[:mid]
		v.vals = v.vals[:mid]
		v.next = right
		return right.keys[0], right, true
	case *inner:
		i := sort.Search(len(v.keys), func(i int) bool { return bytes.Compare(v.keys[i], key) > 0 })
		sk, sn, grew := t.insert(v.children[i], key, value)
		if sn == nil {
			return nil, nil, grew
		}
		v.keys = append(v.keys, nil)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = sk
		v.children = append(v.children, nil)
		copy(v.children[i+2:], v.children[i+1:])
		v.children[i+1] = sn
		if len(v.children) <= innerSlots {
			return nil, nil, grew
		}
		mid := len(v.keys) / 2
		sepUp := v.keys[mid]
		right := &inner{
			keys:     append([][]byte(nil), v.keys[mid+1:]...),
			children: append([]any(nil), v.children[mid+1:]...),
		}
		v.keys = v.keys[:mid]
		v.children = v.children[:mid+1]
		return sepUp, right, grew
	}
	panic("btree: bad node type")
}

// Delete removes key.
func (t *Tree) Delete(key []byte) bool {
	// STX-style lazy deletion: remove from the leaf; underfull leaves are
	// tolerated (rebalancing is elided as scans skip empty leaves). This
	// matches the benchmark usage, where STX sees no delete-heavy workloads.
	l := t.findLeaf(key)
	if l == nil {
		return false
	}
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], key) >= 0 })
	if i >= len(l.keys) || !bytes.Equal(l.keys[i], key) {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	t.size--
	return true
}

// Scan visits up to n keys ≥ start in order.
func (t *Tree) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	l := t.findLeaf(start)
	if l == nil {
		return 0
	}
	i := sort.Search(len(l.keys), func(i int) bool { return bytes.Compare(l.keys[i], start) >= 0 })
	visited := 0
	for l != nil && visited < n {
		for ; i < len(l.keys) && visited < n; i++ {
			visited++
			if !fn(l.keys[i], l.vals[i]) {
				return visited
			}
		}
		l = l.next
		i = 0
	}
	return visited
}

// MemoryOverheadBytes counts node structures and per-key bookkeeping
// (slice headers + value + key pointer), excluding key bytes (§6.5).
func (t *Tree) MemoryOverheadBytes() int64 {
	var total int64
	var walk func(n any)
	walk = func(n any) {
		switch v := n.(type) {
		case *leaf:
			// next ptr + slice headers + per-slot key header (24B) and value.
			total += 8 + 48 + int64(cap(v.keys))*24 + int64(cap(v.vals))*8
		case *inner:
			total += 48 + int64(cap(v.keys))*24 + int64(cap(v.children))*16
			for _, c := range v.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return total
}

func cloneKey(k []byte) []byte { return append([]byte(nil), k...) }
