package btree_test

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return btree.New() }, indextest.Options{})
}

func TestDeepSplits(t *testing.T) {
	// Sequential inserts force splits at every level.
	tr := btree.New()
	n := 50_000
	for i := 0; i < n; i++ {
		k := []byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
		if _, err := tr.Set(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Scan must visit all keys in order.
	prev := -1
	count := tr.Scan(nil, n+10, func(k []byte, v uint64) bool {
		if int(v) <= prev {
			t.Fatalf("disorder at %d after %d", v, prev)
		}
		prev = int(v)
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d", count)
	}
}
