package btree

import (
	"bytes"
	"reflect"
	"sort"
)

// LookupLevels returns the cache lines a lookup touches per level. B+-tree
// nodes are wide: binary search inside a node touches ~log2(slots) key
// headers plus the key bytes — those intra-node lines overlap, but levels
// are serial (§3.2: STX's per-node accesses partially overlap, the path
// does not).
func (t *Tree) LookupLevels(key []byte) [][]uint64 {
	var levels [][]uint64
	n := t.root
	for n != nil {
		switch v := n.(type) {
		case *leaf:
			addr := uint64(reflect.ValueOf(v).Pointer())
			// Binary search over up to 64 keys: ~6 probed slots, each
			// touching a header line and a key-bytes line.
			levels = append(levels, []uint64{addr / 64, addr/64 + 3, addr/64 + 7, addr/64 + 11, addr/64 + 14, addr/64 + 18})
			return levels
		case *inner:
			addr := uint64(reflect.ValueOf(v).Pointer())
			levels = append(levels, []uint64{addr / 64, addr/64 + 2, addr/64 + 5, addr/64 + 8, addr/64 + 11})
			i := sort.Search(len(v.keys), func(i int) bool { return bytes.Compare(v.keys[i], key) > 0 })
			n = v.children[i]
		default:
			return levels
		}
	}
	return levels
}
