package mlpindex

import "repro/internal/index"

// Index v2 batch and cursor operations, satisfied with the shared loop-based
// fallbacks: a MlpIndex lookup is already a single direct hash probe, so a
// batch has little cross-key staging to gain, and the engine has no ordered
// iteration (the cursor is never valid, like Scan).

// MultiGet implements index.Index with one Get per key.
func (ix *Index) MultiGet(keys [][]byte, vals []uint64, found []bool) {
	index.FallbackMultiGet(ix, keys, vals, found)
}

// MultiSet implements index.Index with one Set per key.
func (ix *Index) MultiSet(keys [][]byte, vals []uint64, errs []error) int {
	return index.FallbackMultiSet(ix, keys, vals, errs)
}

// NewCursor implements index.Index with a paginated cursor over Scan.
func (ix *Index) NewCursor() index.Cursor { return index.NewScanCursor(ix) }
