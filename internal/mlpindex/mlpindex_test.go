package mlpindex_test

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/mlpindex"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(capacity int) index.Index { return mlpindex.New(capacity) },
		indextest.Options{FixedKeyLen: 8, NoScan: true, NoDelete: true})
}

func TestRejectsBadKeyLength(t *testing.T) {
	ix := mlpindex.New(64)
	if _, err := ix.Set([]byte("short"), 1); err != mlpindex.ErrBadKeyLen {
		t.Fatalf("err = %v", err)
	}
	if _, ok := ix.Get([]byte("short")); ok {
		t.Fatal("found bad-length key")
	}
}

func TestGrowth(t *testing.T) {
	ix := mlpindex.New(16) // deliberately undersized: must grow
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 20000)
	for i := range keys {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], rng.Uint64())
		keys[i] = k[:]
		if _, err := ix.Set(k[:], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		if v, ok := ix.Get(k); !ok || v != uint64(i) {
			t.Fatalf("Get after growth = %d,%v want %d", v, ok, i)
		}
	}
}
