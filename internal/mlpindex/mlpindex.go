// Package mlpindex reimplements MlpIndex (Xu, 2018), the only prior
// MLP-aware index the paper compares against (§6.7): a hashed trie
// representation that stores FULL keys in its hash table entries rather than
// using key elimination. Consequently it supports only fixed 8-byte keys,
// has no range scans and no concurrency — and uses roughly 3× the Cuckoo
// Trie's memory, which is exactly the trade-off Figure 12 shows.
//
// Lookups probe the full key's entry directly (one hash probe, the keys are
// embedded in the leaves, saving the Cuckoo Trie's record dereference —
// which is why MlpIndex wins Figure 12's speed panels). Inserts maintain
// entries for every key prefix with per-node child bitmaps, the
// memory-hungry part.
package mlpindex

import "errors"

// KeyLen is the only supported key length.
const KeyLen = 8

// ErrBadKeyLen is returned for keys that are not exactly 8 bytes.
var ErrBadKeyLen = errors.New("mlpindex: only 8-byte keys are supported")

// entry is an open-addressing hash table slot holding one trie node with
// its full (prefix) key embedded — no key elimination.
type entry struct {
	used     bool
	isLeaf   bool
	plen     uint8     // prefix length in bytes (1..8)
	prefix   [8]byte   // full embedded prefix
	children [4]uint64 // child bitmap over the next byte (non-leaf)
	value    uint64    // leaf value
}

// Index is a single-threaded MLP-aware hashed trie for 8-byte keys.
type Index struct {
	tab  []entry
	mask uint64
	size int
	used int
}

// New creates an index sized for capacity keys. MlpIndex tables are sized
// up-front, like the paper's runs ("each index is initialized to the
// minimal size that allows loading the dataset", §6.7).
func New(capacity int) *Index {
	// ~8 prefix nodes per key in the worst case; random 8-byte keys share
	// prefixes heavily at the top, so ~2.5 slots per key suffices at a
	// comfortable load factor.
	want := float64(capacity) * 3.5
	n := uint64(1024)
	for float64(n) < want {
		n <<= 1
	}
	return &Index{tab: make([]entry, n), mask: n - 1}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "MlpIndex" }

// Len returns the number of stored keys.
func (ix *Index) Len() int { return ix.size }

func hash(p []byte) uint64 {
	// FNV-1a over the prefix, mixed; cheap and adequate for table probing.
	h := uint64(1469598103934665603)
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= uint64(len(p)) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// slotFor finds the slot for prefix p (linear probing). Returns the slot
// index and whether it is occupied by p.
func (ix *Index) slotFor(p []byte) (uint64, bool) {
	i := hash(p) & ix.mask
	for {
		e := &ix.tab[i]
		if !e.used {
			return i, false
		}
		if int(e.plen) == len(p) && matches(e, p) {
			return i, true
		}
		i = (i + 1) & ix.mask
	}
}

func matches(e *entry, p []byte) bool {
	for j := range p {
		if e.prefix[j] != p[j] {
			return false
		}
	}
	return true
}

// Get returns the value stored for key. A single direct probe of the full
// key's entry suffices: the hashed representation needs no descent, and the
// embedded key avoids the pointer dereference the Cuckoo Trie pays (§6.7).
func (ix *Index) Get(key []byte) (uint64, bool) {
	if len(key) != KeyLen {
		return 0, false
	}
	i, ok := ix.slotFor(key)
	if !ok || !ix.tab[i].isLeaf {
		return 0, false
	}
	return ix.tab[i].value, true
}

// Set inserts or updates key, creating prefix nodes along the path. added
// reports whether key was newly inserted.
func (ix *Index) Set(key []byte, value uint64) (added bool, err error) {
	if len(key) != KeyLen {
		return false, ErrBadKeyLen
	}
	if ix.used*10 >= len(ix.tab)*9 {
		ix.grow()
	}
	i, ok := ix.slotFor(key)
	if ok {
		ix.tab[i].value = value
		return false, nil
	}
	e := &ix.tab[i]
	e.used = true
	e.isLeaf = true
	e.plen = KeyLen
	copy(e.prefix[:], key)
	e.value = value
	ix.used++
	ix.size++
	// Create/extend prefix nodes with child bitmaps.
	for l := KeyLen - 1; l >= 1; l-- {
		j, exists := ix.slotFor(key[:l])
		pe := &ix.tab[j]
		nb := key[l]
		if exists {
			pe.children[nb>>6] |= 1 << (nb & 63)
			return true, nil // all shorter prefixes already exist
		}
		pe.used = true
		pe.plen = uint8(l)
		copy(pe.prefix[:], key[:l])
		pe.children[nb>>6] |= 1 << (nb & 63)
		ix.used++
	}
	return true, nil
}

func (ix *Index) grow() {
	old := ix.tab
	ix.tab = make([]entry, len(old)*2)
	ix.mask = uint64(len(ix.tab) - 1)
	ix.used = 0
	for k := range old {
		if !old[k].used {
			continue
		}
		i, _ := ix.slotFor(old[k].prefix[:old[k].plen])
		ix.tab[i] = old[k]
		ix.used++
	}
}

// Delete is unsupported (as in the original MlpIndex).
func (ix *Index) Delete(key []byte) bool { return false }

// Scan is unsupported: MlpIndex has no range queries (§6.7).
func (ix *Index) Scan(start []byte, n int, fn func(key []byte, value uint64) bool) int {
	return 0
}

// MemoryOverheadBytes reports the table footprint: large fixed-size entries
// with embedded keys and 256-way bitmaps — ≈3× the Cuckoo Trie (Figure 12).
func (ix *Index) MemoryOverheadBytes() int64 {
	return int64(len(ix.tab)) * 56
}
